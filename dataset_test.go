package adawave_test

// Public-API equivalence tests for the flat Dataset path: adawave.Dataset
// and [][]float64 must produce identical labels through the facade (the
// internal equivalence gates live in internal/core; these exercise the
// library the way an external user would).

import (
	"testing"

	"adawave"
)

func TestDatasetFacadeMatchesSlices(t *testing.T) {
	data := adawave.RunningExample(7)
	c, err := adawave.NewClusterer(adawave.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Cluster(data.Points)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ClusterDataset(data.Flat())
	if err != nil {
		t.Fatal(err)
	}
	if want.NumClusters != got.NumClusters || want.Threshold != got.Threshold {
		t.Fatalf("diverged: %d/%v vs %d/%v",
			want.NumClusters, want.Threshold, got.NumClusters, got.Threshold)
	}
	for i := range want.Labels {
		if want.Labels[i] != got.Labels[i] {
			t.Fatalf("label %d: want %d, got %d", i, want.Labels[i], got.Labels[i])
		}
	}
}

func TestDatasetFacadeMultiResolution(t *testing.T) {
	data := adawave.SyntheticEvaluation(300, 0.5, 7)
	c, err := adawave.NewClusterer(adawave.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ClusterMultiResolution(data.Points, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ClusterMultiResolutionDataset(data.Flat(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("levels: want %d, got %d", len(want), len(got))
	}
	for l := range want {
		for i := range want[l].Labels {
			if want[l].Labels[i] != got[l].Labels[i] {
				t.Fatalf("level %d label %d: want %d, got %d",
					l+1, i, want[l].Labels[i], got[l].Labels[i])
			}
		}
	}
}

func TestDatasetBuilders(t *testing.T) {
	ds := adawave.NewDataset(2, 4)
	ds.AppendRow([]float64{0, 0})
	ds.AppendRow([]float64{1, 1})
	if ds.N != 2 || ds.D != 2 {
		t.Fatalf("builder shape: %dx%d", ds.N, ds.D)
	}
	if _, err := adawave.FromSlices([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows must error")
	}
	from, err := adawave.FromSlices([][]float64{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range from.Data {
		if ds.Data[i] != v {
			t.Fatalf("builders diverge at %d: %v vs %v", i, ds.Data[i], v)
		}
	}
}
