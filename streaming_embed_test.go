package adawave

import (
	"bytes"
	"errors"
	"testing"
)

// TestSessionEmbeddingFacade: the streaming property suite lifted into the
// embedded space, on the exported surface. A random projection fits
// data-independently, so a session fed by batches must match the one-shot
// embedded run bit for bit through appends and removals; the checkpoint
// round-trip must restore the fitted embedder (labels identical through
// both the shared-engine and standalone restore paths); and restoring under
// a different embedding spec is the typed ErrEmbeddingMismatch.
func TestSessionEmbeddingFacade(t *testing.T) {
	data := HighDimMixture(4, 200, 16, 3, 0.2, 7)
	clusterer, err := New(
		WithEmbedding(RandomProjection(3, 11)),
		WithScale(24),
		WithWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	sess := clusterer.NewSession()
	for off := 0; off < len(data.Points); off += 301 {
		end := off + 301
		if end > len(data.Points) {
			end = len(data.Points)
		}
		if err := sess.AppendPoints(data.Points[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Remove([]int{3, 50, 51, 400}); err != nil {
		t.Fatal(err)
	}
	survivors := make([][]float64, 0, len(data.Points)-4)
	for i, p := range data.Points {
		if i == 3 || i == 50 || i == 51 || i == 400 {
			continue
		}
		survivors = append(survivors, p)
	}
	want, err := clusterer.Cluster(survivors)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Labels()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Labels {
		if got[i] != want.Labels[i] {
			t.Fatalf("label %d: got %d, want %d", i, got[i], want.Labels[i])
		}
	}

	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	shared, err := clusterer.RestoreSession(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	standalone, err := RestoreSession(bytes.NewReader(buf.Bytes()), clusterer.Config(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, restored := range []*Session{shared, standalone} {
		after, err := restored.Labels()
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if after[i] != got[i] {
				t.Fatalf("label %d after restore: got %d, want %d", i, after[i], got[i])
			}
		}
	}

	// A different embedding spec (different seed counts) must refuse with
	// the typed refinement, which still matches the broad mismatch root.
	other := clusterer.Config()
	other.Embedding = RandomProjection(3, 12)
	_, err = RestoreSession(bytes.NewReader(buf.Bytes()), other, 1)
	if !errors.Is(err, ErrEmbeddingMismatch) || !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("restore under different seed: got %v, want ErrEmbeddingMismatch", err)
	}
	none := clusterer.Config()
	none.Embedding = Embedding{}
	if _, err := RestoreSession(bytes.NewReader(buf.Bytes()), none, 1); !errors.Is(err, ErrEmbeddingMismatch) {
		t.Fatalf("restore without embedding: got %v, want ErrEmbeddingMismatch", err)
	}
}
