// Command adawave-serve exposes streaming AdaWave sessions over HTTP JSON:
// create a session, POST point batches into it over time (JSON arrays or
// chunked CSV bodies), and read labels or multi-resolution results from the
// warm engine — each read pays only the grid-side stages, never a full
// requantization of the history.
//
// Usage:
//
//	adawave-serve [-addr :8321] [-workers 0] [-timeout 30s]
//	              [-shutdown-timeout 10s] [-csv-batch 8192]
//	              [-max-body-bytes 268435456] [-max-sessions 64]
//	              [-max-points 10000000]
//	              [-data-dir DIR] [-wal-sync always|interval|never]
//	              [-wal-sync-interval 1s] [-checkpoint-interval 1m]
//
// Endpoints:
//
//	POST   /sessions                       create a session (optional JSON config body)
//	GET    /sessions                       list sessions
//	POST   /sessions/{id}/points          append a batch (JSON {"points":[[…]]} or a text/csv
//	                                      body; a CSV label column, if present, is ignored)
//	DELETE /sessions/{id}/points          remove points (JSON {"indices":[…]})
//	GET    /sessions/{id}/labels          cluster the current point set, return labels + diagnostics
//	GET    /sessions/{id}/multiresolution multi-level results (?levels=L)
//	POST   /sessions/{id}/checkpoint      force a checkpoint now (admin; requires -data-dir)
//	DELETE /sessions/{id}                 drop the session (and its on-disk state)
//
// Every request is bounded by the -timeout request-scoped deadline, and the
// process drains in-flight requests on SIGINT/SIGTERM before exiting.
//
// With -data-dir set, sessions are durable: every acknowledged mutation is
// journaled to a per-session write-ahead log (fsynced per -wal-sync), a
// background checkpointer periodically folds the log into a full binary
// checkpoint, and a restarted process recovers every session — newest
// checkpoint plus WAL tail, torn trailing records discarded — with labels
// bit-identical to the uninterrupted session. See store.go for the layout.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adawave"
	"adawave/internal/core"
	"adawave/internal/dataio"
	"adawave/internal/grid"
	"adawave/internal/persist"
	"adawave/internal/pointset"
)

// serverOptions bundles the serving configuration; zero values select the
// documented defaults, and an empty dataDir disables persistence.
type serverOptions struct {
	workers         int
	timeout         time.Duration
	csvBatch        int
	maxBody         int64
	maxSessions     int
	maxPoints       int
	dataDir         string
	walSync         persist.SyncPolicy
	walSyncInterval time.Duration
	ckptInterval    time.Duration
}

// server holds the session registry: one adawave.Session per id, each safe
// for one writer and many readers, so concurrent label reads on a warm
// session share its cached result. With persistence enabled it also owns
// the background checkpointer and WAL-fsync tickers.
type server struct {
	workers     int
	timeout     time.Duration
	csvBatch    int
	maxBody     int64
	maxSessions int
	maxPoints   int

	pers            *persistence // nil when -data-dir is unset
	walSyncInterval time.Duration
	ckptInterval    time.Duration
	stop            chan struct{}
	bg              sync.WaitGroup
	closeOnce       sync.Once

	mu       sync.RWMutex
	sessions map[string]*serveSession
	nextID   atomic.Uint64
}

// serveSession pairs a Session with the server-side writer lock and its
// on-disk state. The Session itself is safe for one writer and many
// readers; writeMu serializes HTTP mutation requests (and checkpoints) so
// that contract holds even when two clients POST to the same session — and
// so the CSV rollback's "the appended points are the tail" assumption is
// enforced, not assumed. files (nil without -data-dir) is guarded by
// writeMu too.
type serveSession struct {
	writeMu sync.Mutex
	sess    *adawave.Session
	files   *sessionFiles
}

func newServer(opts serverOptions) (*server, error) {
	if opts.csvBatch <= 0 {
		opts.csvBatch = 8192
	}
	if opts.maxBody <= 0 {
		opts.maxBody = 256 << 20
	}
	if opts.maxSessions <= 0 {
		opts.maxSessions = 64
	}
	if opts.maxPoints <= 0 {
		opts.maxPoints = 10_000_000
	}
	s := &server{
		workers:         opts.workers,
		timeout:         opts.timeout,
		csvBatch:        opts.csvBatch,
		maxBody:         opts.maxBody,
		maxSessions:     opts.maxSessions,
		maxPoints:       opts.maxPoints,
		walSyncInterval: opts.walSyncInterval,
		ckptInterval:    opts.ckptInterval,
		stop:            make(chan struct{}),
		sessions:        make(map[string]*serveSession),
	}
	if opts.dataDir != "" {
		pers, err := openPersistence(opts.dataDir, opts.walSync)
		if err != nil {
			return nil, err
		}
		s.pers = pers
		recovered, maxID := pers.recoverSessions(opts.workers)
		s.sessions = recovered
		s.nextID.Store(maxID)
		s.startBackground()
	}
	return s, nil
}

// startBackground launches the periodic checkpointer and, under the
// interval fsync policy, the WAL sync ticker.
func (s *server) startBackground() {
	if s.ckptInterval > 0 {
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			t := time.NewTicker(s.ckptInterval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.checkpointDirty()
				}
			}
		}()
	}
	if s.pers.policy == persist.SyncInterval {
		interval := s.walSyncInterval
		if interval <= 0 {
			interval = time.Second
		}
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					for _, ss := range s.snapshotSessions() {
						if ss.files != nil {
							if err := ss.files.wal.Sync(); err != nil {
								log.Printf("adawave-serve: wal sync: %v", err)
							}
						}
					}
				}
			}
		}()
	}
}

// snapshotSessions copies the registry under the read lock.
func (s *server) snapshotSessions() []*serveSession {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*serveSession, 0, len(s.sessions))
	for _, ss := range s.sessions {
		out = append(out, ss)
	}
	return out
}

// checkpointDirty checkpoints every session whose WAL has grown since its
// last checkpoint, truncating the log.
func (s *server) checkpointDirty() {
	for _, ss := range s.snapshotSessions() {
		ss.writeMu.Lock()
		if ss.files != nil && (ss.files.wal.Records() > 0 || ss.files.broken) {
			if _, err := ss.checkpointLocked(); err != nil {
				log.Printf("adawave-serve: background checkpoint: %v", err)
			}
		}
		ss.writeMu.Unlock()
	}
}

// Close stops the background goroutines and closes every session's WAL
// (flushing buffered records). It does not checkpoint; recovery replays the
// log on the next boot.
func (s *server) Close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.bg.Wait()
		for _, ss := range s.snapshotSessions() {
			ss.writeMu.Lock()
			if ss.files != nil {
				if err := ss.files.wal.Close(); err != nil {
					log.Printf("adawave-serve: wal close: %v", err)
				}
			}
			ss.writeMu.Unlock()
		}
	})
}

// handler wires the routes and wraps them in the request body cap and the
// request-scoped timeout.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.createSession)
	mux.HandleFunc("GET /sessions", s.listSessions)
	mux.HandleFunc("POST /sessions/{id}/points", s.appendPoints)
	mux.HandleFunc("DELETE /sessions/{id}/points", s.removePoints)
	mux.HandleFunc("GET /sessions/{id}/labels", s.labels)
	mux.HandleFunc("GET /sessions/{id}/multiresolution", s.multiResolution)
	mux.HandleFunc("POST /sessions/{id}/checkpoint", s.checkpointSession)
	mux.HandleFunc("DELETE /sessions/{id}", s.deleteSession)
	var h http.Handler = mux
	if s.timeout > 0 {
		h = http.TimeoutHandler(h, s.timeout, `{"error":"request timed out"}`)
	}
	limited := h
	h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Cap every body so one oversized POST cannot exhaust memory; a
		// breach surfaces as a decode/read error on the handler's path.
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		limited.ServeHTTP(w, r)
	})
	return h
}

// sessionConfig is the JSON body of POST /sessions; every field is
// optional and defaults to the paper's parameter-free configuration.
type sessionConfig struct {
	Scale           *int     `json:"scale"`
	Levels          *int     `json:"levels"`
	Basis           string   `json:"basis"`
	Connectivity    string   `json:"connectivity"`
	CoeffEpsilon    *float64 `json:"coeffEpsilon"`
	MinClusterCells *int     `json:"minClusterCells"`
	MinClusterMass  *float64 `json:"minClusterMass"`
}

func (s *server) createSession(w http.ResponseWriter, r *http.Request) {
	cfg := adawave.DefaultConfig()
	if r.Body != nil {
		var sc sessionConfig
		dec := json.NewDecoder(r.Body)
		if err := dec.Decode(&sc); err != nil && err != io.EOF {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad config: %v", err))
			return
		}
		if sc.Scale != nil {
			cfg.Scale = *sc.Scale
		}
		if sc.Levels != nil {
			cfg.Levels = *sc.Levels
		}
		if sc.Basis != "" {
			basis, err := adawave.BasisByName(sc.Basis)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err.Error())
				return
			}
			cfg.Basis = basis
		}
		switch sc.Connectivity {
		case "", "faces":
		case "full":
			cfg.Connectivity = grid.Full
		default:
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown connectivity %q (want faces or full)", sc.Connectivity))
			return
		}
		if sc.CoeffEpsilon != nil {
			cfg.CoeffEpsilon = *sc.CoeffEpsilon
		}
		if sc.MinClusterCells != nil {
			cfg.MinClusterCells = *sc.MinClusterCells
		}
		if sc.MinClusterMass != nil {
			cfg.MinClusterMass = *sc.MinClusterMass
		}
	}
	sess, err := adawave.NewSession(cfg, s.workers)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	id := "s" + strconv.FormatUint(s.nextID.Add(1), 10)
	ss := &serveSession{sess: sess}
	if s.pers != nil {
		files, err := s.pers.create(id, core.ConfigFingerprint(sess.Config()))
		if err != nil {
			writeErr(w, http.StatusInternalServerError, fmt.Sprintf("session storage: %v", err))
			return
		}
		ss.files = files
	}
	s.mu.Lock()
	if len(s.sessions) >= s.maxSessions {
		s.mu.Unlock()
		if ss.files != nil {
			ss.files.wal.Close()
			os.RemoveAll(ss.files.dir)
		}
		writeErr(w, http.StatusTooManyRequests, fmt.Sprintf("session limit %d reached", s.maxSessions))
		return
	}
	s.sessions[id] = ss
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{"id": id})
}

func (s *server) listSessions(w http.ResponseWriter, r *http.Request) {
	type row struct {
		ID     string `json:"id"`
		Points int    `json:"points"`
		Dim    int    `json:"dim"`
	}
	// Snapshot the registry first: Len/Dim take each session's own lock,
	// which a long recompute holds, and blocking on it while holding the
	// registry lock would stall session creation server-wide.
	s.mu.RLock()
	type entry struct {
		id   string
		sess *serveSession
	}
	entries := make([]entry, 0, len(s.sessions))
	for id, sess := range s.sessions {
		entries = append(entries, entry{id, sess})
	}
	s.mu.RUnlock()
	rows := make([]row, 0, len(entries))
	for _, e := range entries {
		rows = append(rows, row{ID: e.id, Points: e.sess.sess.Len(), Dim: e.sess.sess.Dim()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": rows})
}

// lookup resolves {id}; a miss writes the 404 and returns nil.
func (s *server) lookup(w http.ResponseWriter, r *http.Request) *serveSession {
	id := r.PathValue("id")
	s.mu.RLock()
	sess := s.sessions[id]
	s.mu.RUnlock()
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
	}
	return sess
}

func (s *server) appendPoints(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(w, r)
	if ss == nil {
		return
	}
	// One mutation request at a time per session: this upholds the
	// Session's one-writer contract across HTTP clients and guarantees the
	// rollback below only ever removes this request's own points.
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	sess := ss.sess
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	var appended int
	switch ct {
	case "text/csv":
		// Chunked ingestion: the body streams through the batch reader in
		// -csv-batch chunks, so a large upload is never JSON-materialized at
		// once. On a mid-stream error — a parse failure, or the request
		// deadline expiring (checked between chunks, since TimeoutHandler
		// answers 503 but does not stop this goroutine) — the already-
		// appended chunks are rolled back, so a failed upload is atomic and
		// a client retry cannot duplicate points. The upload is journaled as
		// ONE record after it fully succeeds, never per chunk: a crash
		// mid-upload must leave nothing in the log (the client saw an error
		// and will re-send the whole body), so the crash-recovered session
		// holds no half-applied upload to duplicate. The journal copy
		// (uploaded) is bounded by the upload itself, which the session
		// retains anyway.
		ctx := r.Context()
		var uploaded *pointset.Dataset
		if ss.files != nil {
			uploaded = &pointset.Dataset{}
		}
		err := dataio.EachBatch(r.Body, s.csvBatch, func(ds *pointset.Dataset, labels []int) error {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("ingestion aborted: %w", err)
			}
			if sess.Len()+ds.N > s.maxPoints {
				return fmt.Errorf("session point limit %d reached", s.maxPoints)
			}
			if err := sess.Append(ds); err != nil {
				return err
			}
			appended += ds.N
			if uploaded != nil {
				uploaded.D = ds.D
				uploaded.Data = append(uploaded.Data, ds.Data[:ds.N*ds.D]...)
				uploaded.N += ds.N
			}
			return nil
		})
		if err == nil && uploaded != nil && uploaded.N > 0 {
			err = ss.journalAppend(uploaded)
		}
		if err != nil {
			if appended > 0 {
				n := sess.Len()
				idx := make([]int, appended)
				for i := range idx {
					idx[i] = n - appended + i
				}
				if rerr := sess.Remove(idx); rerr != nil {
					writeErr(w, http.StatusInternalServerError,
						fmt.Sprintf("%v (and rolling back %d appended points failed: %v)", err, appended, rerr))
					return
				}
			}
			writeErr(w, bodyErrStatus(err), err.Error())
			return
		}
	default:
		var body struct {
			Points [][]float64 `json:"points"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, bodyErrStatus(err), fmt.Sprintf("bad batch: %v", err))
			return
		}
		// After the deadline TimeoutHandler has already answered 503;
		// mutating anyway would make a client retry duplicate the batch.
		if err := r.Context().Err(); err != nil {
			return
		}
		if sess.Len()+len(body.Points) > s.maxPoints {
			writeErr(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("session point limit %d reached", s.maxPoints))
			return
		}
		ds, err := pointset.FromSlices(body.Points)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := sess.Append(ds); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := ss.journalAppend(ds); err != nil {
			// The batch is not durable: roll it back so the 500 keeps the
			// mutation at-most-once under client retries.
			if ds.N > 0 {
				n := sess.Len()
				idx := make([]int, ds.N)
				for i := range idx {
					idx[i] = n - ds.N + i
				}
				if rerr := sess.Remove(idx); rerr != nil {
					err = fmt.Errorf("%v (and rolling back failed: %v)", err, rerr)
				}
			}
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
		appended = ds.N
	}
	writeJSON(w, http.StatusOK, map[string]any{"appended": appended, "points": sess.Len()})
}

func (s *server) removePoints(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(w, r)
	if ss == nil {
		return
	}
	var body struct {
		Indices []int `json:"indices"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, bodyErrStatus(err), fmt.Sprintf("bad body: %v", err))
		return
	}
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	// As with appends: once the deadline answered 503, removing anyway
	// would make a client retry double-remove shifted indices.
	if err := r.Context().Err(); err != nil {
		return
	}
	if err := ss.sess.Remove(body.Indices); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := ss.journalRemove(body.Indices); err != nil {
		// A removal cannot be rolled back; the fallback checkpoint inside
		// journalRemove already tried to capture the state, so a failure
		// here means the session is marked broken and further mutations are
		// refused until a checkpoint succeeds.
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": len(body.Indices), "points": ss.sess.Len()})
}

// resultJSON is the serialized form of one clustering result.
type resultJSON struct {
	Labels           []int   `json:"labels,omitempty"`
	NumClusters      int     `json:"numClusters"`
	Noise            int     `json:"noise"`
	Threshold        float64 `json:"threshold"`
	Levels           int     `json:"levels"`
	Scale            int     `json:"scale"`
	CellsQuantized   int     `json:"cellsQuantized"`
	CellsTransformed int     `json:"cellsTransformed"`
	CellsKept        int     `json:"cellsKept"`
}

func toResultJSON(res *adawave.Result, withLabels bool) resultJSON {
	out := resultJSON{
		NumClusters:      res.NumClusters,
		Noise:            res.NoiseCount(),
		Threshold:        res.Threshold,
		Levels:           res.Levels,
		Scale:            res.Scale,
		CellsQuantized:   res.CellsQuantized,
		CellsTransformed: res.CellsTransformed,
		CellsKept:        res.CellsKept,
	}
	if withLabels {
		out.Labels = res.Labels
	}
	return out
}

func (s *server) labels(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(w, r)
	if ss == nil {
		return
	}
	res, err := ss.sess.Result()
	if err != nil {
		writeReadErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toResultJSON(res, true))
}

func (s *server) multiResolution(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(w, r)
	if ss == nil {
		return
	}
	maxLevels := 3
	if v := r.URL.Query().Get("levels"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad levels %q", v))
			return
		}
		maxLevels = n
	}
	withLabels := r.URL.Query().Get("labels") != "false"
	results, err := ss.sess.MultiResolution(maxLevels)
	if err != nil {
		writeReadErr(w, err)
		return
	}
	out := make([]resultJSON, len(results))
	for i, res := range results {
		out[i] = toResultJSON(res, withLabels)
	}
	writeJSON(w, http.StatusOK, map[string]any{"levels": out})
}

// checkpointSession is the admin endpoint: force a checkpoint now (folding
// the WAL into a fresh full-state file and truncating the log), e.g. before
// a planned deploy to make the subsequent recovery O(read) with no replay.
func (s *server) checkpointSession(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(w, r)
	if ss == nil {
		return
	}
	if ss.files == nil {
		writeErr(w, http.StatusConflict, "persistence is disabled (start with -data-dir)")
		return
	}
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	seq, err := ss.checkpointLocked()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, fmt.Sprintf("checkpoint: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"seq": seq, "points": ss.sess.Len()})
}

func (s *server) deleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ss, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	if ss.files != nil {
		// Dropping the session drops its durable state too; in-flight
		// mutations finished before the registry delete (or 404 after it).
		ss.writeMu.Lock()
		ss.files.wal.Close()
		if err := os.RemoveAll(ss.files.dir); err != nil {
			log.Printf("adawave-serve: remove session dir: %v", err)
		}
		ss.writeMu.Unlock()
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeReadErr maps clustering-read failures: an empty session is the
// caller's sequencing problem (409); errors the client can fix by changing
// its data or session configuration — a non-finite coordinate, a grid too
// small for the configured levels, a transform-densified high-dimensional
// grid — are 422; everything else (engine invariants, IO) is an internal
// fault and must say so with a 500, not blame the request.
func writeReadErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, grid.ErrNoPoints):
		writeErr(w, http.StatusConflict, "session has no points")
	case errors.Is(err, grid.ErrInvalidInput):
		writeErr(w, http.StatusUnprocessableEntity, err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// bodyErrStatus distinguishes a server-side durability failure (500: the
// client did nothing wrong) and an over-limit body (413: split and retry)
// from malformed input (400: don't retry).
func bodyErrStatus(err error) int {
	if errors.Is(err, errDurability) {
		return http.StatusInternalServerError
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}
