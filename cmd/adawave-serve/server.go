// Command adawave-serve exposes streaming AdaWave sessions over HTTP JSON:
// create a session, POST point batches into it over time (JSON arrays or
// chunked CSV bodies), and read labels or multi-resolution results from the
// warm engine — each read pays only the grid-side stages, never a full
// requantization of the history.
//
// Usage:
//
//	adawave-serve [-addr :8321] [-workers 0] [-timeout 30s]
//	              [-shutdown-timeout 10s] [-csv-batch 8192]
//	              [-max-body-bytes 268435456] [-max-sessions 64]
//	              [-max-points 10000000]
//	              [-data-dir DIR] [-wal-sync always|interval|never]
//	              [-wal-sync-interval 1s] [-checkpoint-interval 1m]
//
// Endpoints (v1, the versioned wire contract of internal/api):
//
//	GET    /healthz                           liveness + session count
//	GET    /v1/metrics                        per-route request/latency counters (expvar-style JSON)
//	POST   /v1/sessions                       create a session (optional JSON config body)
//	GET    /v1/sessions                       list sessions
//	GET    /v1/sessions/{id}                  session detail (points, dim, cells, checkpoint seq)
//	POST   /v1/sessions/{id}/points           append a batch (JSON {"points":[[…]]} or a text/csv
//	                                          body; a CSV label column, if present, is ignored)
//	DELETE /v1/sessions/{id}/points           remove points (JSON {"indices":[…]})
//	GET    /v1/sessions/{id}/labels           cluster the current point set; JSON by default,
//	                                          chunked NDJSON stream under Accept: application/x-ndjson
//	GET    /v1/sessions/{id}/multiresolution  multi-level results (?levels=L)
//	POST   /v1/sessions/{id}/checkpoint       force a checkpoint now (admin; requires -data-dir)
//	DELETE /v1/sessions/{id}                  drop the session (and its on-disk state)
//
// The pre-v1 unversioned /sessions... routes remain as deprecated aliases
// (one rewrite shim onto the /v1 handlers, marked with a Deprecation
// header). Errors are a structured envelope {"error":{code,message}} with
// the stable code vocabulary of internal/api.
//
// The -timeout request-scoped deadline rides the request context: the
// ctx-aware engine aborts in-flight compute at the next shard boundary
// (504 deadline_exceeded), a client disconnect aborts it the same way (499
// logged as a client abort, never a 5xx), and a mutation queued behind a
// long writer gives up at its deadline instead of blocking. The one wait
// the deadline does not cut short is a read arriving while ANOTHER
// request's recompute holds the session lock — it waits for that compute,
// which is itself bounded by its own request's deadline. The process
// drains in-flight requests on SIGINT/SIGTERM before exiting.
//
// With -data-dir set, sessions are durable: every acknowledged mutation is
// journaled to a per-session write-ahead log (fsynced per -wal-sync), a
// background checkpointer periodically folds the log into a full binary
// checkpoint, and a restarted process recovers every session — newest
// checkpoint plus WAL tail, torn trailing records discarded — with labels
// bit-identical to the uninterrupted session. See store.go for the layout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adawave"
	"adawave/internal/api"
	"adawave/internal/cluster"
	"adawave/internal/core"
	"adawave/internal/dataio"
	"adawave/internal/grid"
	"adawave/internal/persist"
	"adawave/internal/pointset"
	"adawave/internal/sched"
)

// serverOptions bundles the serving configuration; zero values select the
// documented defaults, and an empty dataDir disables persistence.
type serverOptions struct {
	workers         int
	timeout         time.Duration
	csvBatch        int
	maxBody         int64
	maxSessions     int
	maxPoints       int
	dataDir         string
	walSync         persist.SyncPolicy
	walSyncInterval time.Duration
	ckptInterval    time.Duration

	// Multi-tenant governance (see tenant.go): the API-key → tenant map,
	// the default per-tenant quota (zero fields = unlimited), and the
	// residency budget the eviction manager enforces (0 = unbounded;
	// requires dataDir, since eviction parks sessions on their checkpoints).
	tenants          map[string]string
	quota            sched.Quota
	maxResident      int
	maxResidentBytes int64

	// Cluster role (see replicate.go): "" or "standalone" serves alone;
	// "primary" additionally exposes the replication feed; "follower"
	// replicates followerOf's sessions and serves reads + replication only
	// until promoted. peers is informational (reported in status).
	// clusterSecret, when set, is required (constant-time compared) on every
	// /v1/replication/ request and sent on every feed request this node
	// makes — the feed hands out full session data and promote mutates the
	// topology, so neither may be open to arbitrary callers.
	role          string
	followerOf    string
	peers         []string
	clusterSecret string

	// Replication cadence overrides (zero = the cluster package defaults of
	// 1s poll / 500ms retry); tests tighten these to keep failover drills fast.
	replicaPoll  time.Duration
	replicaRetry time.Duration
}

// server holds the session registry: one adawave.Session per id, each safe
// for one writer and many readers, so concurrent label reads on a warm
// session share its cached result. With persistence enabled it also owns
// the background checkpointer and WAL-fsync tickers.
type server struct {
	workers     int
	timeout     time.Duration
	csvBatch    int
	maxBody     int64
	maxSessions int
	maxPoints   int

	pers            *persistence // nil when -data-dir is unset
	walSyncInterval time.Duration
	ckptInterval    time.Duration
	stop            chan struct{}
	bg              sync.WaitGroup
	closeOnce       sync.Once
	metrics         *serverMetrics

	// Resource governance: the process-wide worker pool every request's
	// fan-out draws shards from (fair across tenants), the quota governor,
	// the API-key → tenant map, and the residency budget (see tenant.go).
	pool             *sched.Pool
	gov              *sched.Governor
	tenants          map[string]string
	maxResident      int
	maxResidentBytes int64

	// Cluster state (see replicate.go). role is atomic because a follower
	// flips to primary at promote time while requests are in flight;
	// replica is the follower's replication engine (nil otherwise).
	role          atomic.Value // string
	followerOf    string
	peers         []string
	clusterSecret string
	replica       *cluster.ReplicaSet
	promoteMu     sync.Mutex

	mu       sync.RWMutex
	sessions map[string]*serveSession
	nextID   atomic.Uint64
}

// serveSession pairs a Session with the server-side writer lock and its
// on-disk state. The Session itself is safe for one writer and many
// readers; the writer lock serializes HTTP mutation requests (and
// checkpoints) so that contract holds even when two clients POST to the
// same session — and so the CSV rollback's "the appended points are the
// tail" assumption is enforced, not assumed. files (nil without -data-dir)
// is guarded by the writer lock too.
//
// The lock is a 1-slot channel semaphore rather than a sync.Mutex so a
// handler queued behind a long writer (a multi-minute CSV upload holds the
// lock for its whole body) can give up when its request deadline expires or
// its client disconnects: lockWrite answers 504/499 at the deadline instead
// of blocking unresponsively until the writer finishes.
// The Session pointer lives behind live (atomic): the eviction manager
// parks an idle session on its checkpoint and clears the pointer, and the
// next touch rehydrates it under hydrateMu (single-flight; see tenant.go).
// Handlers obtain the session through acquire, never by loading live
// directly. lastPoints/lastDim cache the shape so listing sessions never
// rehydrates one; lastTouch orders the eviction LRU.
type serveSession struct {
	writeSem chan struct{}
	files    *sessionFiles
	id       string
	tenant   string
	cfg      adawave.Config
	workers  int

	hydrateMu  sync.Mutex
	live       atomic.Pointer[adawave.Session]
	lastTouch  atomic.Int64 // unix nanos of the last request touching this session
	lastPoints atomic.Int64
	lastDim    atomic.Int64
}

func newServeSession(id, tenant string, sess *adawave.Session, files *sessionFiles, workers int) *serveSession {
	ss := &serveSession{
		writeSem: make(chan struct{}, 1),
		files:    files,
		id:       id,
		tenant:   tenant,
		cfg:      sess.Config(),
		workers:  workers,
	}
	ss.live.Store(sess)
	ss.touch()
	ss.cacheShape(sess)
	return ss
}

// lockWrite acquires the session writer lock, giving up with the context's
// taxonomy error if ctx dies first (background callers pass
// context.Background(), which never does). The caller must unlockWrite
// after a nil return.
func (ss *serveSession) lockWrite(ctx context.Context) error {
	select {
	case ss.writeSem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return grid.CtxErr(ctx)
	}
}

func (ss *serveSession) unlockWrite() { <-ss.writeSem }

func newServer(opts serverOptions) (*server, error) {
	if opts.csvBatch <= 0 {
		opts.csvBatch = 8192
	}
	if opts.maxBody <= 0 {
		opts.maxBody = 256 << 20
	}
	if opts.maxSessions <= 0 {
		opts.maxSessions = 64
	}
	if opts.maxPoints <= 0 {
		opts.maxPoints = 10_000_000
	}
	if (opts.maxResident > 0 || opts.maxResidentBytes > 0) && opts.dataDir == "" {
		return nil, errors.New("-max-resident-sessions/-max-resident-bytes require -data-dir (eviction parks sessions on their checkpoints)")
	}
	if opts.role == "" {
		opts.role = roleStandalone
	}
	switch opts.role {
	case roleStandalone:
	case rolePrimary:
		if opts.dataDir == "" {
			return nil, errors.New("-role=primary requires -data-dir (replication streams the write-ahead log)")
		}
	case roleFollower:
		if opts.dataDir == "" {
			return nil, errors.New("-role=follower requires -data-dir (replicated state is journaled locally)")
		}
		if opts.followerOf == "" {
			return nil, errors.New("-role=follower requires -follower-of (the primary's base URL)")
		}
	default:
		return nil, fmt.Errorf("unknown -role %q (want standalone, primary or follower)", opts.role)
	}
	s := &server{
		workers:          opts.workers,
		timeout:          opts.timeout,
		csvBatch:         opts.csvBatch,
		maxBody:          opts.maxBody,
		maxSessions:      opts.maxSessions,
		maxPoints:        opts.maxPoints,
		walSyncInterval:  opts.walSyncInterval,
		ckptInterval:     opts.ckptInterval,
		pool:             sched.NewPool(opts.workers),
		gov:              sched.NewGovernor(opts.quota),
		tenants:          opts.tenants,
		maxResident:      opts.maxResident,
		maxResidentBytes: opts.maxResidentBytes,
		followerOf:       opts.followerOf,
		peers:            opts.peers,
		clusterSecret:    opts.clusterSecret,
		stop:             make(chan struct{}),
		sessions:         make(map[string]*serveSession),
		metrics:          newServerMetrics(),
	}
	s.role.Store(opts.role)
	if opts.dataDir != "" {
		pers, err := openPersistence(opts.dataDir, opts.walSync)
		if err != nil {
			s.pool.Close()
			return nil, err
		}
		s.pers = pers
		if opts.role == roleFollower {
			// The replication engine owns every session directory on a
			// follower: it recovers them itself (so a follower restarted
			// after its primary died can still be promoted) and keeps them
			// current from the primary's stream. The serving registry stays
			// empty until a promote hands the warm sessions over.
			s.replica = cluster.NewReplicaSet(cluster.ReplicaOptions{
				Primary: opts.followerOf,
				Root:    filepath.Join(opts.dataDir, "sessions"),
				Workers: opts.workers,
				Policy:  opts.walSync,
				Poll:    opts.replicaPoll,
				Retry:   opts.replicaRetry,
				Secret:  opts.clusterSecret,
			})
			s.replica.Start()
			s.startBackground()
			return s, nil
		}
		recovered, maxID := pers.recoverSessions(opts.workers)
		s.sessions = recovered
		s.nextID.Store(maxID)
		// Seed the governor with the recovered footprints so quotas survive a
		// restart (cells re-enter the accounting at each session's next fold).
		for _, ss := range recovered {
			if sess := ss.live.Load(); sess != nil {
				s.gov.AddPoints(ss.tenant, int64(sess.Len()))
			}
		}
		s.startBackground()
		s.enforceResidency()
	}
	return s, nil
}

// startBackground launches the periodic checkpointer and, under the
// interval fsync policy, the WAL sync ticker.
func (s *server) startBackground() {
	if s.ckptInterval > 0 {
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			t := time.NewTicker(s.ckptInterval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.checkpointDirty()
				}
			}
		}()
	}
	if s.maxResident > 0 || s.maxResidentBytes > 0 {
		// Safety-net residency sweep: appends grow resident bytes without a
		// rehydration to trigger enforcement, so re-check periodically.
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			t := time.NewTicker(5 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.enforceResidency()
				}
			}
		}()
	}
	if s.pers.policy == persist.SyncInterval {
		interval := s.walSyncInterval
		if interval <= 0 {
			interval = time.Second
		}
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					for _, ss := range s.snapshotSessions() {
						if ss.files != nil {
							if err := ss.files.wal.Sync(); err != nil {
								log.Printf("adawave-serve: wal sync: %v", err)
							}
						}
					}
				}
			}
		}()
	}
}

// snapshotSessions copies the registry under the read lock.
func (s *server) snapshotSessions() []*serveSession {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*serveSession, 0, len(s.sessions))
	for _, ss := range s.sessions {
		out = append(out, ss)
	}
	return out
}

// checkpointDirty checkpoints every session whose WAL has grown since its
// last checkpoint, truncating the log. Evicted sessions are skipped: their
// WAL is empty by construction (eviction checkpoints first, and every
// mutation rehydrates).
func (s *server) checkpointDirty() {
	for _, ss := range s.snapshotSessions() {
		ss.lockWrite(context.Background())
		if ss.resident() && ss.files != nil && (ss.files.wal.Records() > 0 || ss.files.broken) {
			if _, err := ss.checkpointLocked(); err != nil {
				log.Printf("adawave-serve: background checkpoint: %v", err)
			}
		}
		ss.unlockWrite()
	}
}

// Close stops the background goroutines and closes every session's WAL
// (flushing buffered records). It does not checkpoint; recovery replays the
// log on the next boot.
func (s *server) Close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.bg.Wait()
		if s.replica != nil {
			s.replica.Close()
		}
		for _, ss := range s.snapshotSessions() {
			ss.lockWrite(context.Background())
			if ss.files != nil {
				if err := ss.files.wal.Close(); err != nil {
					log.Printf("adawave-serve: wal close: %v", err)
				}
			}
			ss.unlockWrite()
		}
		s.pool.Close()
	})
}

// handler wires the versioned routes (each instrumented with the per-route
// metrics) and layers the middleware: body cap → request-id propagation →
// legacy-route shim → tenant resolution + quota admission → request-scoped
// deadline → mux.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.healthz))
	mux.HandleFunc("GET /v1/metrics", s.instrument("metrics", s.metricsHandler))
	mux.HandleFunc("POST /v1/sessions", s.instrument("create_session", s.createSession))
	mux.HandleFunc("GET /v1/sessions", s.instrument("list_sessions", s.listSessions))
	mux.HandleFunc("GET /v1/sessions/{id}", s.instrument("session_detail", s.sessionDetail))
	mux.HandleFunc("POST /v1/sessions/{id}/points", s.instrument("append_points", s.appendPoints))
	mux.HandleFunc("DELETE /v1/sessions/{id}/points", s.instrument("remove_points", s.removePoints))
	mux.HandleFunc("GET /v1/sessions/{id}/labels", s.instrument("labels", s.labels))
	mux.HandleFunc("GET /v1/sessions/{id}/multiresolution", s.instrument("multiresolution", s.multiResolution))
	mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", s.instrument("checkpoint", s.checkpointSession))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("delete_session", s.deleteSession))
	mux.HandleFunc("GET /v1/tenants/{id}/usage", s.instrument("tenant_usage", s.tenantUsage))

	// Cluster replication feed (see replicate.go): a primary serves the
	// session list, checkpoint downloads and the long-lived WAL frame
	// stream; a follower serves promote. All of them bypass the request
	// deadline (the stream is long-lived by design) and the tenant QPS
	// admission (node-to-node traffic must not consume tenant quota) — and
	// all of them sit behind the cluster secret when one is configured,
	// since they hand out full session data and rewire the topology.
	mux.HandleFunc("GET /v1/replication/sessions", s.instrument("replication_sessions", s.clusterAuth(s.replicationSessions)))
	mux.HandleFunc("GET /v1/replication/sessions/{id}/checkpoint", s.instrument("replication_checkpoint", s.clusterAuth(s.replicationCheckpoint)))
	mux.HandleFunc("GET /v1/replication/sessions/{id}/wal", s.instrument("replication_wal", s.clusterAuth(s.replicationWAL)))
	mux.HandleFunc("POST /v1/replication/promote", s.instrument("replication_promote", s.clusterAuth(s.promoteHandler)))
	mux.HandleFunc("GET /v1/replication/status", s.instrument("replication_status", s.clusterAuth(s.replicationStatus)))

	var h http.Handler = mux
	h = s.withRole(h)
	h = s.withDeadline(h)
	h = s.withTenant(h)
	h = legacyShim(h)
	h = requestIDMiddleware(h)
	h = s.bodyCap(h)
	return h
}

// configFromAPI layers an api.SessionConfig over the paper's parameter-free
// defaults; every unset field keeps its default.
func configFromAPI(sc *api.SessionConfig) (adawave.Config, error) {
	cfg := adawave.DefaultConfig()
	if sc.Scale != nil {
		cfg.Scale = *sc.Scale
	}
	if sc.Levels != nil {
		cfg.Levels = *sc.Levels
	}
	if sc.Basis != "" {
		basis, err := adawave.BasisByName(sc.Basis)
		if err != nil {
			return cfg, err
		}
		cfg.Basis = basis
	}
	switch sc.Connectivity {
	case "", "faces":
	case "full":
		cfg.Connectivity = grid.Full
	default:
		return cfg, fmt.Errorf("unknown connectivity %q (want faces or full)", sc.Connectivity)
	}
	if sc.CoeffEpsilon != nil {
		cfg.CoeffEpsilon = *sc.CoeffEpsilon
	}
	if sc.MinClusterCells != nil {
		cfg.MinClusterCells = *sc.MinClusterCells
	}
	if sc.MinClusterMass != nil {
		cfg.MinClusterMass = *sc.MinClusterMass
	}
	if sc.Embedding != nil {
		cfg.Embedding = adawave.Embedding{Kind: sc.Embedding.Kind, K: sc.Embedding.K, Seed: sc.Embedding.Seed}
		if err := cfg.Embedding.Validate(); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// embeddingDTO renders a config's embedding spec for the wire; nil when the
// session runs without one.
func embeddingDTO(e adawave.Embedding) *api.EmbeddingSpec {
	if !e.Enabled() {
		return nil
	}
	return &api.EmbeddingSpec{Kind: e.Kind, K: e.K, Seed: e.Seed}
}

func (s *server) createSession(w http.ResponseWriter, r *http.Request) {
	var sc api.SessionConfig
	if r.Body != nil {
		if err := json.NewDecoder(r.Body).Decode(&sc); err != nil && err != io.EOF {
			writeCode(w, http.StatusBadRequest, api.CodeInvalidInput, fmt.Sprintf("bad config: %v", err))
			return
		}
	}
	cfg, err := configFromAPI(&sc)
	if err != nil {
		writeCode(w, http.StatusBadRequest, api.CodeInvalidInput, err.Error())
		return
	}
	sess, err := adawave.NewSession(cfg, s.workers)
	if err != nil {
		writeCode(w, http.StatusBadRequest, api.CodeInvalidInput, err.Error())
		return
	}
	tenant := sched.TenantFrom(r.Context())
	// A router pins the id it placed on the ring via the session-id header,
	// so placement happens before creation; direct clients let the server
	// mint one.
	id := r.Header.Get(api.HeaderSessionID)
	if id != "" {
		if !validSessionID(id) {
			writeCode(w, http.StatusBadRequest, api.CodeInvalidInput,
				fmt.Sprintf("bad %s %q (want 1-64 chars of [a-zA-Z0-9_-])", api.HeaderSessionID, id))
			return
		}
		s.mu.RLock()
		_, taken := s.sessions[id]
		s.mu.RUnlock()
		if taken {
			writeCode(w, http.StatusConflict, api.CodeConflict, fmt.Sprintf("session %q already exists", id))
			return
		}
	} else {
		id = "s" + strconv.FormatUint(s.nextID.Add(1), 10)
	}
	ss := newServeSession(id, tenant, sess, nil, s.workers)
	if s.pers != nil {
		files, err := s.pers.create(id, core.ConfigFingerprint(sess.Config()), tenant)
		if err != nil {
			writeCode(w, http.StatusInternalServerError, api.CodeInternal, fmt.Sprintf("session storage: %v", err))
			return
		}
		ss.files = files
	}
	s.mu.Lock()
	if len(s.sessions) >= s.maxSessions {
		s.mu.Unlock()
		if ss.files != nil {
			ss.files.wal.Close()
			os.RemoveAll(ss.files.dir)
		}
		writeCode(w, http.StatusTooManyRequests, api.CodeSessionLimit, fmt.Sprintf("session limit %d reached", s.maxSessions))
		return
	}
	if _, taken := s.sessions[id]; taken {
		// Two creates raced the same pinned id; the loser backs off. Its WAL
		// handle is closed but the directory is left alone — it belongs to
		// the winner now.
		s.mu.Unlock()
		if ss.files != nil {
			ss.files.wal.Close()
		}
		writeCode(w, http.StatusConflict, api.CodeConflict, fmt.Sprintf("session %q already exists", id))
		return
	}
	s.sessions[id] = ss
	s.mu.Unlock()
	s.enforceResidency()
	writeJSON(w, http.StatusCreated, api.CreateSessionResponse{ID: id, Tenant: tenant})
}

func (s *server) listSessions(w http.ResponseWriter, r *http.Request) {
	// Shapes come from the cached lastPoints/lastDim (refreshed whenever the
	// session is live), so listing never rehydrates an evicted session and
	// never queues behind a long recompute holding a session's own lock.
	entries := s.snapshotSessions()
	rows := make([]api.SessionInfo, 0, len(entries))
	for _, ss := range entries {
		points, dim := ss.shape()
		rows = append(rows, api.SessionInfo{
			ID: ss.id, Points: points, Dim: dim,
			Tenant: ss.tenant, Resident: ss.resident(),
		})
	}
	// A follower's registry is empty; its warm replicas are the sessions it
	// would serve after a promote, so list them.
	if s.replica != nil {
		for _, id := range s.replica.IDs() {
			if sess, tenant, ok := s.replica.Lookup(id); ok {
				rows = append(rows, api.SessionInfo{
					ID: id, Points: sess.Len(), Dim: sess.Dim(),
					Tenant: tenant, Resident: true,
				})
			}
		}
	}
	writeJSON(w, http.StatusOK, api.ListSessionsResponse{Sessions: rows})
}

// healthz is the liveness probe: always 200 while the process serves.
func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.sessions)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, api.HealthzResponse{Status: "ok", Sessions: n})
}

// sessionDetail answers GET /v1/sessions/{id}: shape, live-grid cell count
// (pending mutations folded, cancellable via the request context) and the
// durability state. On a follower the registry is empty and the detail is
// served from the warm replica instead — including the replication lag,
// which is how an operator (or a test) observes a follower catching up.
func (s *server) sessionDetail(w http.ResponseWriter, r *http.Request) {
	if s.replica != nil {
		s.mu.RLock()
		_, inRegistry := s.sessions[r.PathValue("id")]
		s.mu.RUnlock()
		if !inRegistry {
			s.replicaDetail(w, r)
			return
		}
	}
	ss := s.lookup(w, r)
	if ss == nil {
		return
	}
	sess, err := ss.acquire(s)
	if err != nil {
		writeCode(w, http.StatusInternalServerError, api.CodeInternal, fmt.Sprintf("rehydrate: %v", err))
		return
	}
	detail := api.SessionDetail{
		ID: ss.id, Points: sess.Len(), Dim: sess.Dim(),
		Tenant: ss.tenant, Resident: true, ResidentBytes: sess.ResidentBytes(),
		Embedding: embeddingDTO(sess.Config().Embedding),
	}
	if detail.Points > 0 {
		cells, err := sess.CellsContext(r.Context())
		if err != nil {
			s.writeReadErr(w, r, err)
			return
		}
		detail.Cells = cells
		s.gov.SetSessionCells(ss.tenant, ss.id, cells)
	}
	if ss.files != nil {
		// ckptSeq is atomic, so this monitoring read never queues behind a
		// long mutation holding the writer lock.
		detail.Durable = true
		detail.LastCheckpointSeq = ss.files.ckptSeq.Load()
		if role, _ := s.role.Load().(string); role == rolePrimary {
			seq := ss.files.wal.Seq()
			detail.Replication = &api.ReplicationStatus{Role: rolePrimary, AppliedSeq: seq, PrimarySeq: seq}
		}
	}
	writeJSON(w, http.StatusOK, detail)
}

// lookup resolves {id}; a miss writes the 404 and returns nil. A hit counts
// as a touch for the eviction LRU.
func (s *server) lookup(w http.ResponseWriter, r *http.Request) *serveSession {
	id := r.PathValue("id")
	s.mu.RLock()
	sess := s.sessions[id]
	s.mu.RUnlock()
	if sess == nil {
		writeCode(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown session %q", id))
		return nil
	}
	sess.touch()
	return sess
}

func (s *server) appendPoints(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(w, r)
	if ss == nil {
		return
	}
	// One mutation request at a time per session: this upholds the
	// Session's one-writer contract across HTTP clients and guarantees the
	// rollback below only ever removes this request's own points. Queued
	// writers give up at their request deadline (504) or on client
	// disconnect (499) instead of blocking unresponsively.
	if err := ss.lockWrite(r.Context()); err != nil {
		s.writeReadErr(w, r, err)
		return
	}
	defer ss.unlockWrite()
	sess, err := ss.acquire(s)
	if err != nil {
		writeCode(w, http.StatusInternalServerError, api.CodeInternal, fmt.Sprintf("rehydrate: %v", err))
		return
	}
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	var appended int
	switch ct {
	case "text/csv":
		// Chunked ingestion: the body streams through the batch reader in
		// -csv-batch chunks, so a large upload is never JSON-materialized at
		// once. On a mid-stream error — a parse failure, or the request
		// deadline expiring (checked between chunks, since TimeoutHandler
		// answers 503 but does not stop this goroutine) — the already-
		// appended chunks are rolled back, so a failed upload is atomic and
		// a client retry cannot duplicate points. The upload is journaled as
		// ONE record after it fully succeeds, never per chunk: a crash
		// mid-upload must leave nothing in the log (the client saw an error
		// and will re-send the whole body), so the crash-recovered session
		// holds no half-applied upload to duplicate. The journal copy
		// (uploaded) is bounded by the upload itself, which the session
		// retains anyway.
		ctx := r.Context()
		var uploaded *pointset.Dataset
		if ss.files != nil {
			uploaded = &pointset.Dataset{}
		}
		err := dataio.EachBatch(r.Body, s.csvBatch, func(ds *pointset.Dataset, labels []int) error {
			if sess.Len()+ds.N > s.maxPoints {
				return errPointLimit(s.maxPoints)
			}
			// Tenant points quota, admitted per chunk against the committed
			// footprint plus this upload's own progress; a breach rolls the
			// whole upload back below (429, nothing committed).
			if qe := s.gov.AdmitPoints(ss.tenant, int64(appended+ds.N)); qe != nil {
				return qe
			}
			// AppendContext refuses the chunk once the request deadline
			// expired or the client went away, so an aborted upload stops
			// between chunks and rolls back below.
			if err := sess.AppendContext(ctx, ds); err != nil {
				return err
			}
			appended += ds.N
			if uploaded != nil {
				uploaded.D = ds.D
				uploaded.Data = append(uploaded.Data, ds.Data[:ds.N*ds.D]...)
				uploaded.N += ds.N
			}
			return nil
		})
		if err == nil && uploaded != nil && uploaded.N > 0 {
			err = ss.journalAppend(uploaded)
		}
		if err != nil {
			if appended > 0 {
				n := sess.Len()
				idx := make([]int, appended)
				for i := range idx {
					idx[i] = n - appended + i
				}
				// The rollback runs on a fresh context: it must succeed even
				// when the failure being rolled back is the request's own
				// dead context.
				if rerr := sess.Remove(idx); rerr != nil {
					writeCode(w, http.StatusInternalServerError, api.CodeInternal,
						fmt.Sprintf("%v (and rolling back %d appended points failed: %v)", err, appended, rerr))
					return
				}
			}
			s.writeBodyErr(w, r, err)
			return
		}
	default:
		var body api.AppendRequest
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			s.writeBodyErr(w, r, fmt.Errorf("bad batch: %w", err))
			return
		}
		if sess.Len()+len(body.Points) > s.maxPoints {
			writeCode(w, http.StatusRequestEntityTooLarge, api.CodePointLimit, errPointLimit(s.maxPoints).Error())
			return
		}
		if qe := s.gov.AdmitPoints(ss.tenant, int64(len(body.Points))); qe != nil {
			s.writeQuotaErr(w, qe)
			return
		}
		ds, err := pointset.FromSlices(body.Points)
		if err != nil {
			writeCode(w, http.StatusBadRequest, api.CodeInvalidInput, err.Error())
			return
		}
		// AppendContext refuses the mutation once the deadline expired or
		// the client went away: a client retry must never duplicate the
		// batch it believes failed.
		if err := sess.AppendContext(r.Context(), ds); err != nil {
			s.writeMutationErr(w, r, err)
			return
		}
		if err := ss.journalAppend(ds); err != nil {
			// The batch is not durable: roll it back so the 500 keeps the
			// mutation at-most-once under client retries.
			if ds.N > 0 {
				n := sess.Len()
				idx := make([]int, ds.N)
				for i := range idx {
					idx[i] = n - ds.N + i
				}
				if rerr := sess.Remove(idx); rerr != nil {
					err = fmt.Errorf("%v (and rolling back failed: %v)", err, rerr)
				}
			}
			writeCode(w, http.StatusInternalServerError, api.CodeDurability, err.Error())
			return
		}
		appended = ds.N
	}
	s.gov.AddPoints(ss.tenant, int64(appended))
	ss.cacheShape(sess)
	writeJSON(w, http.StatusOK, api.AppendResponse{Appended: appended, Points: sess.Len()})
}

// errPointLimit is the over-cap mutation error, recognized by writeBodyErr
// so the CSV path classifies it 413 point_limit like the JSON path.
type pointLimitError int

func errPointLimit(limit int) error { return pointLimitError(limit) }

func (e pointLimitError) Error() string {
	return fmt.Sprintf("session point limit %d reached", int(e))
}

func (s *server) removePoints(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(w, r)
	if ss == nil {
		return
	}
	var body api.RemoveRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.writeBodyErr(w, r, fmt.Errorf("bad body: %w", err))
		return
	}
	if err := ss.lockWrite(r.Context()); err != nil {
		s.writeReadErr(w, r, err)
		return
	}
	defer ss.unlockWrite()
	sess, err := ss.acquire(s)
	if err != nil {
		writeCode(w, http.StatusInternalServerError, api.CodeInternal, fmt.Sprintf("rehydrate: %v", err))
		return
	}
	// RemoveContext refuses the mutation once the deadline expired or the
	// client went away: a client retry must never double-remove shifted
	// indices.
	if err := sess.RemoveContext(r.Context(), body.Indices); err != nil {
		s.writeMutationErr(w, r, err)
		return
	}
	if err := ss.journalRemove(body.Indices); err != nil {
		// A removal cannot be rolled back; the fallback checkpoint inside
		// journalRemove already tried to capture the state, so a failure
		// here means the session is marked broken and further mutations are
		// refused until a checkpoint succeeds.
		writeCode(w, http.StatusInternalServerError, api.CodeDurability, err.Error())
		return
	}
	s.gov.AddPoints(ss.tenant, -int64(len(body.Indices)))
	ss.cacheShape(sess)
	writeJSON(w, http.StatusOK, api.RemoveResponse{Removed: len(body.Indices), Points: sess.Len()})
}

func toAPIResult(res *adawave.Result, withLabels bool) api.Result {
	out := api.Result{
		NumClusters:      res.NumClusters,
		Noise:            res.NoiseCount(),
		Threshold:        res.Threshold,
		Levels:           res.Levels,
		Scale:            res.Scale,
		CellsQuantized:   res.CellsQuantized,
		CellsTransformed: res.CellsTransformed,
		CellsKept:        res.CellsKept,
	}
	if withLabels {
		out.Labels = res.Labels
	}
	return out
}

// ndjsonChunk is how many labels each streamed NDJSON line carries.
const ndjsonChunk = 8192

// wantsNDJSON reports whether the client negotiated the streaming label
// representation.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

func (s *server) labels(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(w, r)
	if ss == nil {
		return
	}
	sess, err := ss.acquire(s)
	if err != nil {
		writeCode(w, http.StatusInternalServerError, api.CodeInternal, fmt.Sprintf("rehydrate: %v", err))
		return
	}
	// Concurrent-folds quota: the tenant's compute passes are bounded, so a
	// tenant spamming label reads queues behind its own limit, not everyone
	// else's latency.
	release, qe := s.gov.AcquireFold(ss.tenant)
	if qe != nil {
		s.writeQuotaErr(w, qe)
		return
	}
	defer release()
	// The request context rides into the pipeline: a client disconnect or
	// the request deadline aborts the compute at the next shard boundary
	// and the session stays exactly as it was.
	res, err := sess.ResultContext(r.Context())
	if err != nil {
		s.writeReadErr(w, r, err)
		return
	}
	s.gov.SetSessionCells(ss.tenant, ss.id, res.CellsQuantized)
	if wantsNDJSON(r) {
		s.streamLabels(w, r, res)
		return
	}
	writeJSON(w, http.StatusOK, toAPIResult(res, true))
}

// streamLabels writes the NDJSON representation: one meta line, then the
// label vector in ndjsonChunk-sized lines, each flushed as soon as it is
// encoded — a million-label session streams in constant server memory
// instead of materializing one giant JSON array.
func (s *server) streamLabels(w http.ResponseWriter, r *http.Request, res *adawave.Result) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	var meta api.LabelsMeta
	meta.Meta.Result = toAPIResult(res, false)
	meta.Meta.Points = len(res.Labels)
	meta.Meta.Chunk = ndjsonChunk
	if err := enc.Encode(meta); err != nil {
		return
	}
	_ = rc.Flush()
	for off := 0; off < len(res.Labels); off += ndjsonChunk {
		if r.Context().Err() != nil {
			// The 200 header is long gone, so instrument() cannot see this
			// abort by status; record it explicitly so a mid-stream hang-up
			// still shows in the clientAborts counter and the abort log.
			s.noteStreamAbort(r, "labels")
			return
		}
		end := off + ndjsonChunk
		if end > len(res.Labels) {
			end = len(res.Labels)
		}
		if err := enc.Encode(api.LabelsChunk{Offset: off, Labels: res.Labels[off:end]}); err != nil {
			return
		}
		_ = rc.Flush()
	}
}

// noteStreamAbort records a client disconnect that landed mid-stream,
// after the status line was already written: the route's clientAborts
// counter is bumped directly (the 200 already on the wire can't be
// reclassified) and the abort is logged like a pre-compute 499.
func (s *server) noteStreamAbort(r *http.Request, route string) {
	s.metrics.register(route).clientAborts.Add(1)
	log.Printf("adawave-serve: request %s %s %s: stream aborted by client disconnect",
		requestIDFrom(r.Context()), r.Method, r.URL.Path)
}

func (s *server) multiResolution(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(w, r)
	if ss == nil {
		return
	}
	maxLevels := 3
	if v := r.URL.Query().Get("levels"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeCode(w, http.StatusBadRequest, api.CodeInvalidInput, fmt.Sprintf("bad levels %q", v))
			return
		}
		maxLevels = n
	}
	withLabels := r.URL.Query().Get("labels") != "false"
	sess, err := ss.acquire(s)
	if err != nil {
		writeCode(w, http.StatusInternalServerError, api.CodeInternal, fmt.Sprintf("rehydrate: %v", err))
		return
	}
	release, qe := s.gov.AcquireFold(ss.tenant)
	if qe != nil {
		s.writeQuotaErr(w, qe)
		return
	}
	defer release()
	results, err := sess.MultiResolutionContext(r.Context(), maxLevels)
	if err != nil {
		s.writeReadErr(w, r, err)
		return
	}
	out := make([]api.Result, len(results))
	for i, res := range results {
		out[i] = toAPIResult(res, withLabels)
	}
	writeJSON(w, http.StatusOK, api.MultiResolutionResponse{Levels: out})
}

// checkpointSession is the admin endpoint: force a checkpoint now (folding
// the WAL into a fresh full-state file and truncating the log), e.g. before
// a planned deploy to make the subsequent recovery O(read) with no replay.
func (s *server) checkpointSession(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(w, r)
	if ss == nil {
		return
	}
	if ss.files == nil {
		writeCode(w, http.StatusConflict, api.CodeConflict, "persistence is disabled (start with -data-dir)")
		return
	}
	if err := ss.lockWrite(r.Context()); err != nil {
		s.writeReadErr(w, r, err)
		return
	}
	defer ss.unlockWrite()
	sess, err := ss.acquire(s)
	if err != nil {
		writeCode(w, http.StatusInternalServerError, api.CodeInternal, fmt.Sprintf("rehydrate: %v", err))
		return
	}
	seq, err := ss.checkpointLocked()
	if err != nil {
		writeCode(w, http.StatusInternalServerError, api.CodeInternal, fmt.Sprintf("checkpoint: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, api.CheckpointResponse{Seq: seq, Points: sess.Len()})
}

func (s *server) deleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ss, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeCode(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	if ss.files != nil {
		// Dropping the session drops its durable state too; in-flight
		// mutations finished before the registry delete (or 404 after it).
		ss.lockWrite(context.Background())
		ss.files.wal.Close()
		if err := os.RemoveAll(ss.files.dir); err != nil {
			log.Printf("adawave-serve: remove session dir: %v", err)
		}
		ss.unlockWrite()
	}
	points, _ := ss.shape()
	s.gov.DropSession(ss.tenant, ss.id, points)
	w.WriteHeader(http.StatusNoContent)
}

// writeReadErr maps pipeline failures through the taxonomy (api.Classify):
// an empty session is the caller's sequencing problem (409 no_points);
// errors the client can fix by changing its data or session configuration —
// a non-finite coordinate, a grid too small for the configured levels, a
// transform-densified high-dimensional grid — are 422 invalid_input; a
// pipeline aborted by the client's own disconnect is 499 canceled and is
// logged as a client abort, never counted as a server error; an expired
// request deadline is 504 deadline_exceeded; everything else (engine
// invariants, IO) is an internal fault and must say so with a 500, not
// blame the request.
func (s *server) writeReadErr(w http.ResponseWriter, r *http.Request, err error) {
	status, code := api.Classify(err)
	if status == http.StatusTooManyRequests && code == api.CodeResourceExhausted {
		// Quota rejections carry the Retry-After header and the structured
		// details of the backpressure contract.
		s.writeQuotaErr(w, err)
		return
	}
	switch status {
	case api.StatusClientClosedRequest:
		// The response is written into a torn-down connection; the log line
		// (and the 499 in the metrics) is the observable record.
		log.Printf("adawave-serve: request %s %s %s: pipeline aborted by client disconnect: %v",
			requestIDFrom(r.Context()), r.Method, r.URL.Path, err)
	case http.StatusConflict:
		if code == api.CodeNoPoints {
			writeCode(w, status, code, "session has no points")
			return
		}
	}
	writeCode(w, status, code, err.Error())
}

// writeMutationErr maps a session mutation failure: an input-shaped error —
// a dimension mismatch, an out-of-range or duplicate remove index — is the
// caller's mistake and answers 400 invalid_input (not the 422 of a failed
// read, and never a 500 that would blame the server); everything else (a
// dead context, an internal fault) routes through writeReadErr.
func (s *server) writeMutationErr(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, adawave.ErrInvalidInput) {
		writeCode(w, http.StatusBadRequest, api.CodeInvalidInput, err.Error())
		return
	}
	s.writeReadErr(w, r, err)
}

// writeBodyErr maps request-body failures: a durability fault is the
// server's (500), an over-cap body or point count is retryable-after-split
// (413), a dead request context classifies as 499/504, anything else is
// malformed input (400).
func (s *server) writeBodyErr(w http.ResponseWriter, r *http.Request, err error) {
	var ple pointLimitError
	_, code := api.Classify(err)
	switch {
	case errors.Is(err, errDurability):
		writeCode(w, http.StatusInternalServerError, api.CodeDurability, err.Error())
	case errors.As(err, &ple):
		writeCode(w, http.StatusRequestEntityTooLarge, api.CodePointLimit, err.Error())
	case code == api.CodeTooLarge || code == api.CodeCanceled ||
		code == api.CodeDeadlineExceeded || code == api.CodeResourceExhausted:
		s.writeReadErr(w, r, err)
	default:
		writeCode(w, http.StatusBadRequest, api.CodeInvalidInput, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeCode writes the structured v1 error envelope.
func writeCode(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, api.ErrorResponse{Error: api.ErrorBody{Code: code, Message: msg}})
}
