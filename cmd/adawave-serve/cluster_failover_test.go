package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"adawave"
	"adawave/internal/api"
	"adawave/internal/datasets"
	"adawave/internal/persist"
	"adawave/internal/synth"
)

// clusterPair starts a primary and a follower replicating it, both
// in-process, with tightened replication cadence so failover drills finish
// in test time.
func clusterPair(t *testing.T, workers int) (primary, follower *httptest.Server, srvP, srvF *server) {
	t.Helper()
	srvP = mustServer(t, serverOptions{
		workers: workers, timeout: 60 * time.Second,
		dataDir: filepath.Join(t.TempDir(), "data"),
		walSync: persist.SyncNever, role: rolePrimary,
	})
	primary = httptest.NewServer(srvP.handler())
	t.Cleanup(primary.Close)
	srvF = followerOfURL(t, workers, primary.URL)
	follower = httptest.NewServer(srvF.handler())
	t.Cleanup(follower.Close)
	return primary, follower, srvP, srvF
}

func followerOfURL(t *testing.T, workers int, primaryURL string) *server {
	t.Helper()
	return mustServer(t, serverOptions{
		workers: workers, timeout: 60 * time.Second,
		dataDir: filepath.Join(t.TempDir(), "data"),
		walSync: persist.SyncNever, role: roleFollower,
		followerOf:  primaryURL,
		replicaPoll: 50 * time.Millisecond, replicaRetry: 25 * time.Millisecond,
	})
}

// waitCaughtUp polls the follower's replication status until the session's
// applied sequence reaches wantSeq with a live stream.
func waitCaughtUp(t *testing.T, follower *httptest.Server, id string, wantSeq uint64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	var last api.ReplicationStatusResponse
	for time.Now().Before(deadline) {
		doJSON(t, follower, "GET", "/v1/replication/status", "", nil, http.StatusOK, &last)
		if st, ok := last.Sessions[id]; ok && st.AppliedSeq >= wantSeq && st.Lag == 0 && st.Connected {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("follower never caught up to seq %d: %+v", wantSeq, last.Sessions[id])
}

// primaryWALSeq reads the primary's durable WAL position for one session
// from its replication feed — the number a follower's lag is measured
// against.
func primaryWALSeq(t *testing.T, primary *httptest.Server, id string) uint64 {
	t.Helper()
	var list api.ReplicationSessionsResponse
	doJSON(t, primary, "GET", "/v1/replication/sessions", "", nil, http.StatusOK, &list)
	for _, row := range list.Sessions {
		if row.ID == id {
			return row.WALSeq
		}
	}
	t.Fatalf("session %s not in primary replication feed: %+v", id, list.Sessions)
	return 0
}

func getLabels(t *testing.T, ts *httptest.Server, base string) (labels []int, clusters int) {
	t.Helper()
	var out struct {
		Labels      []int `json:"labels"`
		NumClusters int   `json:"numClusters"`
	}
	doJSON(t, ts, "GET", base+"/labels", "", nil, http.StatusOK, &out)
	return out.Labels, out.NumClusters
}

// TestKillAndPromoteProperty is the cluster acceptance gate: random
// append/remove splits of the Fig. 2 / Fig. 7 / dermatology fixtures are
// driven through a primary while a follower replicates the WAL stream (with
// a mid-sequence checkpoint forcing the checkpoint re-sync path); the
// primary is then killed without any graceful handoff and the promoted
// follower must serve labels bit-identical to the lost primary's. Runs
// under -race in CI.
func TestKillAndPromoteProperty(t *testing.T) {
	derm, err := datasets.ByName("dermatology", 1)
	if err != nil {
		t.Fatal(err)
	}
	fixtures := []struct {
		name string
		pts  [][]float64
		cfg  string // POST /v1/sessions body; "" keeps the defaults
	}{
		{"fig2", synth.RunningExampleSized(400, 1).Points, ""},
		{"fig7", synth.Evaluation(300, 0.8, 1).Points, ""},
		// Auto-scale + an explicit basis, so the config fingerprint the
		// follower provisions from carries non-default fields.
		{"dermatology", derm.Points, `{"scale":0,"basis":"haar"}`},
	}
	for fi, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(fi)*977 + 31))
			primary, follower, _, _ := clusterPair(t, 1)

			var cfgBody []byte
			if fx.cfg != "" {
				cfgBody = []byte(fx.cfg)
			}
			var created struct {
				ID string `json:"id"`
			}
			doJSON(t, primary, "POST", "/sessions", "application/json", cfgBody, http.StatusCreated, &created)
			base := "/sessions/" + created.ID

			// Random append/remove split, journaled on the primary; one random
			// step also checkpoints, so the follower exercises the 409
			// replication_restart → full re-sync path mid-stream, not just the
			// happy tail.
			n, live := len(fx.pts), 0
			ckptAt, steps := 1+rng.Intn(5), 0
			for off := 0; off < n; {
				b := 1 + rng.Intn(n-off)
				if rng.Intn(3) > 0 && n-off > 10 {
					b = 1 + rng.Intn((n-off)/3+1)
				}
				body, err := json.Marshal(map[string]any{"points": fx.pts[off : off+b]})
				if err != nil {
					t.Fatal(err)
				}
				doJSON(t, primary, "POST", base+"/points", "application/json", body, http.StatusOK, nil)
				off += b
				live += b
				steps++
				if rng.Intn(2) == 0 && live > 20 {
					nrm := 1 + rng.Intn(live/10+1)
					idx := rng.Perm(live)[:nrm]
					rmBody, err := json.Marshal(map[string]any{"indices": idx})
					if err != nil {
						t.Fatal(err)
					}
					doJSON(t, primary, "DELETE", base+"/points", "application/json", rmBody, http.StatusOK, nil)
					live -= nrm
					steps++
				}
				if steps >= ckptAt && ckptAt > 0 {
					doJSON(t, primary, "POST", base+"/checkpoint", "", nil, http.StatusOK, nil)
					ckptAt = 0
				}
			}

			wantLabels, wantClusters := getLabels(t, primary, base)
			if len(wantLabels) != live {
				t.Fatalf("primary labels: %d, want %d", len(wantLabels), live)
			}
			waitCaughtUp(t, follower, created.ID, primaryWALSeq(t, primary, created.ID))

			// The lag is observable where the issue says it is: the follower's
			// session detail carries the replication block.
			var detail api.SessionDetail
			doJSON(t, follower, "GET", "/v1/sessions/"+created.ID, "", nil, http.StatusOK, &detail)
			if detail.Replication == nil || detail.Replication.Role != roleFollower {
				t.Fatalf("follower detail missing replication block: %+v", detail.Replication)
			}
			if detail.Points != live {
				t.Fatalf("follower replica holds %d points, want %d", detail.Points, live)
			}

			// Kill the primary: tear every open connection (the follower's
			// live stream included), then stop the listener. No graceful
			// handoff — the follower has only what it already replicated.
			primary.CloseClientConnections()
			primary.Close()

			var prom api.PromoteResponse
			doJSON(t, follower, "POST", "/v1/replication/promote", "", nil, http.StatusOK, &prom)
			if prom.Role != rolePrimary || prom.Promoted != 1 {
				t.Fatalf("promote: %+v", prom)
			}

			gotLabels, gotClusters := getLabels(t, follower, base)
			if gotClusters != wantClusters || len(gotLabels) != len(wantLabels) {
				t.Fatalf("promoted: %d clusters / %d labels, want %d / %d",
					gotClusters, len(gotLabels), wantClusters, len(wantLabels))
			}
			for i := range wantLabels {
				if gotLabels[i] != wantLabels[i] {
					t.Fatalf("label %d: got %d, want %d", i, gotLabels[i], wantLabels[i])
				}
			}

			// The promoted node is a full primary: it takes mutations and
			// serves its own replication feed.
			body, _ := json.Marshal(map[string]any{"points": fx.pts[:5]})
			doJSON(t, follower, "POST", base+"/points", "application/json", body, http.StatusOK, nil)
			if seq := primaryWALSeq(t, follower, created.ID); seq == 0 {
				t.Fatal("promoted node serves no replication feed")
			}
		})
	}
}

// TestFollowerResumesAcrossTornStream tears the replication stream in the
// middle of a frame — one complete record, then half of the next — and
// requires the follower to reconnect from its applied sequence and converge
// without duplicate application. The tear is injected by a chopping proxy
// between follower and primary, so the cut lands mid-record
// deterministically rather than whenever a connection reset happens to
// arrive.
func TestFollowerResumesAcrossTornStream(t *testing.T) {
	srvP := mustServer(t, serverOptions{
		workers: 1, timeout: 60 * time.Second,
		dataDir: filepath.Join(t.TempDir(), "data"),
		walSync: persist.SyncNever, role: rolePrimary,
	})
	primary := httptest.NewServer(srvP.handler())
	defer primary.Close()

	// Two records on the primary before the follower ever connects, so the
	// first stream has a frame to tear.
	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, primary, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	base := "/sessions/" + created.ID
	data := adawave.SyntheticEvaluation(120, 0.5, 7)
	post := func(ts *httptest.Server, pts [][]float64) {
		body, err := json.Marshal(map[string]any{"points": pts})
		if err != nil {
			t.Fatal(err)
		}
		doJSON(t, ts, "POST", base+"/points", "application/json", body, http.StatusOK, nil)
	}
	post(primary, data.Points[:400])
	post(primary, data.Points[400:800])

	pu, err := url.Parse(primary.URL)
	if err != nil {
		t.Fatal(err)
	}
	pass := httputil.NewSingleHostReverseProxy(pu)
	pass.FlushInterval = -1
	var torn, walStreams atomic.Int32
	chop := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/wal") {
			pass.ServeHTTP(w, r)
			return
		}
		walStreams.Add(1)
		if !torn.CompareAndSwap(0, 1) {
			pass.ServeHTTP(w, r)
			return
		}
		// First stream: relay frame 1 whole, frame 2 torn mid-record, then
		// end the response — the follower's reader dies inside a frame.
		resp, err := http.Get(primary.URL + r.URL.Path + "?" + r.URL.RawQuery)
		if err != nil || resp.StatusCode != http.StatusOK {
			http.Error(w, "upstream", http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		br := bufio.NewReader(resp.Body)
		f1, _, err1 := persist.ReadFrame(br)
		f2, _, err2 := persist.ReadFrame(br)
		if err1 != nil || err2 != nil {
			http.Error(w, fmt.Sprintf("frames: %v %v", err1, err2), http.StatusBadGateway)
			return
		}
		w.Header().Set(api.HeaderWALSeq, resp.Header.Get(api.HeaderWALSeq))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(f1)
		w.Write(f2[:len(f2)/2])
	}))
	defer chop.Close()

	srvF := followerOfURL(t, 1, chop.URL)
	follower := httptest.NewServer(srvF.handler())
	defer follower.Close()

	waitCaughtUp(t, follower, created.ID, 2)
	if walStreams.Load() < 2 {
		t.Fatalf("follower converged over %d wal streams, want ≥ 2 (torn + resume)", walStreams.Load())
	}

	// More appends after the resume ride the healthy stream.
	post(primary, data.Points[800:])
	wantLabels, wantClusters := getLabels(t, primary, base)
	waitCaughtUp(t, follower, created.ID, primaryWALSeq(t, primary, created.ID))

	var prom api.PromoteResponse
	doJSON(t, follower, "POST", "/v1/replication/promote", "", nil, http.StatusOK, &prom)
	if prom.Promoted != 1 {
		t.Fatalf("promote: %+v", prom)
	}
	gotLabels, gotClusters := getLabels(t, follower, base)
	if gotClusters != wantClusters || len(gotLabels) != len(wantLabels) {
		// A duplicate application would inflate the point count here.
		t.Fatalf("promoted: %d clusters / %d labels, want %d / %d",
			gotClusters, len(gotLabels), wantClusters, len(wantLabels))
	}
	for i := range wantLabels {
		if gotLabels[i] != wantLabels[i] {
			t.Fatalf("label %d: got %d, want %d", i, gotLabels[i], wantLabels[i])
		}
	}
}

// TestFollowerRoleGate: a follower answers reads about its replicas but
// sends every mutation back to the primary with 409 not_primary — and the
// gate opens in place once promoted.
func TestFollowerRoleGate(t *testing.T) {
	primary, follower, _, _ := clusterPair(t, 1)
	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, primary, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	doJSON(t, primary, "POST", "/sessions/"+created.ID+"/points", "application/json",
		[]byte(`{"points":[[1,2],[3,4],[5,6]]}`), http.StatusOK, nil)
	waitCaughtUp(t, follower, created.ID, 1)

	// Mutations and label reads are refused with the routing hint...
	var env api.ErrorResponse
	doJSON(t, follower, "POST", "/v1/sessions", "", nil, http.StatusConflict, &env)
	if env.Error.Code != api.CodeNotPrimary {
		t.Fatalf("create on follower: code %q, want %q", env.Error.Code, api.CodeNotPrimary)
	}
	doJSON(t, follower, "GET", "/v1/sessions/"+created.ID+"/labels", "", nil, http.StatusConflict, &env)
	if env.Error.Code != api.CodeNotPrimary {
		t.Fatalf("labels on follower: code %q, want %q", env.Error.Code, api.CodeNotPrimary)
	}
	// ...while health, metrics (with the replication block) and listings
	// answer locally.
	doJSON(t, follower, "GET", "/healthz", "", nil, http.StatusOK, nil)
	var metrics api.MetricsResponse
	doJSON(t, follower, "GET", "/v1/metrics", "", nil, http.StatusOK, &metrics)
	if metrics.Replication == nil || metrics.Replication.Role != roleFollower {
		t.Fatalf("follower metrics missing replication overview: %+v", metrics.Replication)
	}
	var listed api.ListSessionsResponse
	doJSON(t, follower, "GET", "/v1/sessions", "", nil, http.StatusOK, &listed)
	if len(listed.Sessions) != 1 || listed.Sessions[0].ID != created.ID {
		t.Fatalf("follower listing: %+v", listed.Sessions)
	}

	doJSON(t, follower, "POST", "/v1/replication/promote", "", nil, http.StatusOK, nil)
	doJSON(t, follower, "GET", "/v1/sessions/"+created.ID+"/labels", "", nil, http.StatusOK, nil)
}

// TestFollowerDetectsPrimaryHistoryRewrite: a primary that lost its WAL
// tail (crash under -wal-sync=interval, disk restored from backup) restarts
// with a log ending BELOW the follower's applied sequence, then re-issues
// the same sequence numbers for new, different mutations. The follower must
// treat the regressed stream-open header as a divergence signal and rebuild
// from a fresh checkpoint instead of silently applying divergent frames
// that pass the contiguity check. The rewrite is simulated by a proxy that
// answers one WAL subscription with a doctored (regressed) sequence header.
func TestFollowerDetectsPrimaryHistoryRewrite(t *testing.T) {
	srvP := mustServer(t, serverOptions{
		workers: 1, timeout: 60 * time.Second,
		dataDir: filepath.Join(t.TempDir(), "data"),
		walSync: persist.SyncNever, role: rolePrimary,
	})
	primary := httptest.NewServer(srvP.handler())
	defer primary.Close()

	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, primary, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	base := "/sessions/" + created.ID
	data := adawave.SyntheticEvaluation(90, 0.5, 11)
	post := func(pts [][]float64) {
		body, err := json.Marshal(map[string]any{"points": pts})
		if err != nil {
			t.Fatal(err)
		}
		doJSON(t, primary, "POST", base+"/points", "application/json", body, http.StatusOK, nil)
	}
	post(data.Points[:300])
	post(data.Points[300:600])

	pu, err := url.Parse(primary.URL)
	if err != nil {
		t.Fatal(err)
	}
	pass := httputil.NewSingleHostReverseProxy(pu)
	pass.FlushInterval = -1
	var doctor atomic.Bool
	var ckptFetches atomic.Int32
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/checkpoint") {
			ckptFetches.Add(1)
		}
		if strings.HasSuffix(r.URL.Path, "/wal") && doctor.CompareAndSwap(true, false) {
			// One stream open impersonating the rewritten primary: the log
			// now claims to end at seq 1 while the follower applied 2.
			w.Header().Set(api.HeaderWALSeq, "1")
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			return
		}
		pass.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	srvF := followerOfURL(t, 1, proxy.URL)
	follower := httptest.NewServer(srvF.handler())
	defer follower.Close()

	waitCaughtUp(t, follower, created.ID, 2)
	baseFetches := ckptFetches.Load()

	// Tear the live stream; the reconnect lands on the doctored header.
	doctor.Store(true)
	proxy.CloseClientConnections()

	deadline := time.Now().Add(10 * time.Second)
	for ckptFetches.Load() == baseFetches && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if ckptFetches.Load() == baseFetches {
		t.Fatal("follower never re-synced from a checkpoint after the sequence regression")
	}

	// The rebuilt replica converges on the real primary's state and is
	// promotable with the correct labels.
	wantLabels, wantClusters := getLabels(t, primary, base)
	waitCaughtUp(t, follower, created.ID, primaryWALSeq(t, primary, created.ID))
	var prom api.PromoteResponse
	doJSON(t, follower, "POST", "/v1/replication/promote", "", nil, http.StatusOK, &prom)
	if prom.Promoted != 1 {
		t.Fatalf("promote: %+v", prom)
	}
	gotLabels, gotClusters := getLabels(t, follower, base)
	if gotClusters != wantClusters || len(gotLabels) != len(wantLabels) {
		t.Fatalf("promoted: %d clusters / %d labels, want %d / %d",
			gotClusters, len(gotLabels), wantClusters, len(wantLabels))
	}
	for i := range wantLabels {
		if gotLabels[i] != wantLabels[i] {
			t.Fatalf("label %d: got %d, want %d", i, gotLabels[i], wantLabels[i])
		}
	}
}

// TestReplicationAuthGate: with -cluster-secret set, every /v1/replication/
// endpoint refuses requests without the credential (the feed hands out full
// session data; promote rewires the topology), while a follower and a
// router carrying the same secret work end to end.
func TestReplicationAuthGate(t *testing.T) {
	const secret = "s3cret-drill"
	srvP := mustServer(t, serverOptions{
		workers: 1, timeout: 60 * time.Second,
		dataDir: filepath.Join(t.TempDir(), "data"),
		walSync: persist.SyncNever, role: rolePrimary,
		clusterSecret: secret,
	})
	primary := httptest.NewServer(srvP.handler())
	defer primary.Close()

	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/replication/sessions"},
		{"GET", "/v1/replication/status"},
		{"POST", "/v1/replication/promote"},
	} {
		var env api.ErrorResponse
		doJSON(t, primary, probe.method, probe.path, "", nil, http.StatusUnauthorized, &env)
		if env.Error.Code != api.CodeUnauthorized {
			t.Fatalf("%s %s: code %q, want %q", probe.method, probe.path, env.Error.Code, api.CodeUnauthorized)
		}
	}
	// A wrong secret is as refused as a missing one.
	req, err := http.NewRequest("GET", primary.URL+"/v1/replication/sessions", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.HeaderClusterSecret, "wrong")
	resp, err := primary.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong secret answered %d, want 401", resp.StatusCode)
	}

	// Tenant traffic is untouched by the gate.
	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, primary, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	doJSON(t, primary, "POST", "/sessions/"+created.ID+"/points", "application/json",
		[]byte(`{"points":[[1,2],[3,4],[5,6]]}`), http.StatusOK, nil)

	// A follower started with the matching secret replicates end to end…
	srvF := mustServer(t, serverOptions{
		workers: 1, timeout: 60 * time.Second,
		dataDir: filepath.Join(t.TempDir(), "data"),
		walSync: persist.SyncNever, role: roleFollower,
		followerOf:  primary.URL,
		replicaPoll: 50 * time.Millisecond, replicaRetry: 25 * time.Millisecond,
		clusterSecret: secret,
	})
	follower := httptest.NewServer(srvF.handler())
	defer follower.Close()

	deadline := time.Now().Add(10 * time.Second)
	var detail api.SessionDetail
	for time.Now().Before(deadline) {
		r, err := http.Get(follower.URL + "/v1/sessions/" + created.ID)
		if err == nil {
			err = json.NewDecoder(r.Body).Decode(&detail)
			r.Body.Close()
			if err == nil && detail.Points == 3 && detail.Replication != nil && detail.Replication.Lag == 0 {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if detail.Points != 3 {
		t.Fatalf("authed follower never replicated the session: %+v", detail)
	}

	// …and the authed promote (what the router sends under -cluster-secret)
	// succeeds where the bare one was refused.
	preq, err := http.NewRequest("POST", follower.URL+"/v1/replication/promote", nil)
	if err != nil {
		t.Fatal(err)
	}
	preq.Header.Set(api.HeaderClusterSecret, secret)
	presp, err := follower.Client().Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	var prom api.PromoteResponse
	err = json.NewDecoder(presp.Body).Decode(&prom)
	presp.Body.Close()
	if err != nil || presp.StatusCode != http.StatusOK || prom.Promoted != 1 {
		t.Fatalf("authed promote: status %d, %+v, %v", presp.StatusCode, prom, err)
	}
}

// TestDroppedReplicaQuarantined: when the primary's session list omits a
// replicated id the follower drops the replica — but parks its directory
// under sessions/.quarantine instead of deleting it, because an omitted id
// is also what a primary restarted against a fresh data dir looks like, and
// then the follower holds the only surviving copy.
func TestDroppedReplicaQuarantined(t *testing.T) {
	primary, follower, _, srvF := clusterPair(t, 1)
	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, primary, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	doJSON(t, primary, "POST", "/sessions/"+created.ID+"/points", "application/json",
		[]byte(`{"points":[[1,2],[3,4],[5,6]]}`), http.StatusOK, nil)
	waitCaughtUp(t, follower, created.ID, 1)

	doJSON(t, primary, "DELETE", "/v1/sessions/"+created.ID, "", nil, http.StatusNoContent, nil)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var listed api.ListSessionsResponse
		doJSON(t, follower, "GET", "/v1/sessions", "", nil, http.StatusOK, &listed)
		if len(listed.Sessions) == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	live := filepath.Join(srvF.pers.root, "sessions", created.ID)
	quarantined := filepath.Join(srvF.pers.root, "sessions", ".quarantine", created.ID)
	if _, err := os.Stat(live); !os.IsNotExist(err) {
		t.Fatalf("dropped replica's live directory still present (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(quarantined, "wal.log")); err != nil {
		t.Fatalf("quarantined journal missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(quarantined, "config.json")); err != nil {
		t.Fatalf("quarantined config missing: %v", err)
	}

	// A promote after the drop must not resurrect the session.
	var prom api.PromoteResponse
	doJSON(t, follower, "POST", "/v1/replication/promote", "", nil, http.StatusOK, &prom)
	if prom.Promoted != 0 {
		t.Fatalf("promote resurrected a dropped session: %+v", prom)
	}
}
