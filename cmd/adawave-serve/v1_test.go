package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"adawave"
	"adawave/client"
	"adawave/internal/core"
	"adawave/internal/dataio"
	"adawave/internal/synth"
)

// TestServeV1ClientLifecycle drives the full v1 surface through the typed
// adawave/client package: healthz → create → detail → append (JSON + CSV) →
// labels (JSON and NDJSON stream, asserted identical to the in-process
// library) → multiresolution → metrics → remove → checkpoint-conflict →
// delete. This doubles as the client package's end-to-end test.
func TestServeV1ClientLifecycle(t *testing.T) {
	srv := mustServer(t, serverOptions{workers: 2, timeout: 30 * time.Second, csvBatch: 64})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	cl := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	ctx := context.Background()

	hz, err := cl.Healthz(ctx)
	if err != nil || hz.Status != "ok" || hz.Sessions != 0 {
		t.Fatalf("healthz: %+v, %v", hz, err)
	}

	id, err := cl.CreateSession(ctx, nil)
	if err != nil || id == "" {
		t.Fatalf("create: %q, %v", id, err)
	}

	// Reading an empty session maps to the taxonomy across the wire.
	if _, err := cl.Labels(ctx, id); !errors.Is(err, adawave.ErrNoPoints) {
		t.Fatalf("empty labels: %v must match adawave.ErrNoPoints", err)
	}

	data := adawave.SyntheticEvaluation(200, 0.5, 3)
	half := len(data.Points) / 2
	if _, err := cl.Append(ctx, id, data.Points[:half]); err != nil {
		t.Fatal(err)
	}
	var csvBody bytes.Buffer
	if err := dataio.WriteCSV(&csvBody, data.Points[half:], nil); err != nil {
		t.Fatal(err)
	}
	ap, err := cl.AppendCSV(ctx, id, &csvBody)
	if err != nil || ap.Points != len(data.Points) {
		t.Fatalf("csv append: %+v, %v", ap, err)
	}

	want, err := adawave.Cluster(data.Points, adawave.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Labels(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != want.NumClusters || len(res.Labels) != len(want.Labels) {
		t.Fatalf("labels: %d clusters / %d labels, want %d / %d", res.NumClusters, len(res.Labels), want.NumClusters, len(want.Labels))
	}
	for i := range want.Labels {
		if res.Labels[i] != want.Labels[i] {
			t.Fatalf("label %d: got %d, want %d", i, res.Labels[i], want.Labels[i])
		}
	}

	// The NDJSON stream reassembles to the same labels, and its meta equals
	// the JSON diagnostics.
	streamed := make([]int, len(want.Labels))
	meta, err := cl.LabelsStream(ctx, id, func(off int, labels []int) error {
		copy(streamed[off:], labels)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumClusters != want.NumClusters || meta.Threshold != res.Threshold {
		t.Fatalf("NDJSON meta: %+v", meta)
	}
	for i := range want.Labels {
		if streamed[i] != want.Labels[i] {
			t.Fatalf("streamed label %d: got %d, want %d", i, streamed[i], want.Labels[i])
		}
	}

	detail, err := cl.Session(ctx, id)
	if err != nil || detail.Points != len(data.Points) || detail.Dim != 2 || detail.Cells <= 0 || detail.Durable {
		t.Fatalf("detail: %+v, %v", detail, err)
	}
	if detail.Cells != res.CellsQuantized {
		t.Fatalf("detail cells %d != result cellsQuantized %d", detail.Cells, res.CellsQuantized)
	}

	levels, err := cl.MultiResolution(ctx, id, 3)
	if err != nil || len(levels) == 0 || levels[0].Levels != 1 {
		t.Fatalf("multiresolution: %+v, %v", levels, err)
	}
	for i := range levels[0].Labels {
		if levels[0].Labels[i] != want.Labels[i] {
			t.Fatalf("level-1 label %d diverges from single-level result", i)
		}
	}

	if _, err := cl.Remove(ctx, id, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if list, err := cl.ListSessions(ctx); err != nil || len(list) != 1 || list[0].Points != len(data.Points)-3 {
		t.Fatalf("list: %+v, %v", list, err)
	}

	// Checkpointing without -data-dir is a conflict, delivered typed.
	if _, err := cl.Checkpoint(ctx, id); err == nil {
		t.Fatal("checkpoint without -data-dir must fail")
	} else {
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
			t.Fatalf("checkpoint error: %v", err)
		}
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Routes["labels"].Requests < 2 || m.Routes["append_points"].Requests < 2 {
		t.Fatalf("metrics did not count the traffic: %+v", m.Routes)
	}
	if m.Routes["labels"].Errors != 0 {
		t.Fatalf("labels route recorded server errors: %+v", m.Routes["labels"])
	}

	if err := cl.DeleteSession(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Labels(ctx, id); err == nil {
		t.Fatal("deleted session still serves")
	}
}

// legacyPairCase is one request replayed against both surfaces.
type legacyPairCase struct {
	name        string
	method      string
	path        string // legacy path; the v1 path is "/v1" + path
	contentType string
	body        string
}

// TestServeLegacyAliasByteIdentical proves the deprecated unversioned routes
// are pure aliases: the same request sequence against two fresh servers —
// one through /sessions..., one through /v1/sessions... — produces
// byte-identical bodies and statuses at every step, and the legacy surface
// additionally carries the Deprecation header.
func TestServeLegacyAliasByteIdentical(t *testing.T) {
	mk := func() *httptest.Server {
		srv := mustServer(t, serverOptions{workers: 1, timeout: 30 * time.Second, csvBatch: 4, maxPoints: 50})
		ts := httptest.NewServer(srv.handler())
		t.Cleanup(ts.Close)
		return ts
	}
	legacy, v1 := mk(), mk()

	cases := []legacyPairCase{
		{"create", "POST", "/sessions", "application/json", `{"scale":64}`},
		{"list", "GET", "/sessions", "", ""},
		{"append", "POST", "/sessions/s1/points", "application/json", `{"points":[[0,0],[0.1,0.1],[0.9,0.9],[1,1]]}`},
		{"append-csv", "POST", "/sessions/s1/points", "text/csv", "0.5,0.5\n0.6,0.6\n"},
		{"labels", "GET", "/sessions/s1/labels", "", ""},
		{"detail", "GET", "/sessions/s1", "", ""},
		{"multires", "GET", "/sessions/s1/multiresolution?levels=2", "", ""},
		{"remove", "DELETE", "/sessions/s1/points", "application/json", `{"indices":[0]}`},
		{"labels-after-remove", "GET", "/sessions/s1/labels", "", ""},
		{"bad-levels", "GET", "/sessions/s1/multiresolution?levels=zero", "", ""},
		{"missing-session", "GET", "/sessions/s999/labels", "", ""},
		{"over-limit", "POST", "/sessions/s1/points", "text/csv", strings.Repeat("0.2,0.2\n", 60)},
		{"checkpoint-conflict", "POST", "/sessions/s1/checkpoint", "", ""},
		{"delete", "DELETE", "/sessions/s1", "", ""},
		{"deleted-404", "GET", "/sessions/s1/labels", "", ""},
	}
	issue := func(ts *httptest.Server, c legacyPairCase, path string) (int, string, http.Header) {
		var rd io.Reader
		if c.body != "" {
			rd = strings.NewReader(c.body)
		}
		req, err := http.NewRequest(c.method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if c.contentType != "" {
			req.Header.Set("Content-Type", c.contentType)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(raw), resp.Header
	}
	for _, c := range cases {
		lCode, lBody, lHdr := issue(legacy, c, c.path)
		vCode, vBody, vHdr := issue(v1, c, "/v1"+c.path)
		if lCode != vCode {
			t.Fatalf("%s: status legacy %d != v1 %d", c.name, lCode, vCode)
		}
		if lBody != vBody {
			t.Fatalf("%s: body diverges\nlegacy: %s\nv1:     %s", c.name, lBody, vBody)
		}
		if lHdr.Get("Deprecation") != "true" {
			t.Fatalf("%s: legacy response must carry Deprecation header", c.name)
		}
		if vHdr.Get("Deprecation") != "" {
			t.Fatalf("%s: v1 response must not carry Deprecation header", c.name)
		}
	}
}

// TestServeWriterLockRespectsDeadline: a mutation queued behind a long
// writer (e.g. a multi-minute CSV upload holding the session writer lock)
// must give up at its request deadline with 504 instead of blocking
// unresponsively until the writer finishes — and must not have mutated.
func TestServeWriterLockRespectsDeadline(t *testing.T) {
	srv := mustServer(t, serverOptions{workers: 1, timeout: 300 * time.Millisecond})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	cl := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	ctx := context.Background()
	id, err := cl.CreateSession(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Append(ctx, id, [][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	srv.mu.RLock()
	ss := srv.sessions[id]
	srv.mu.RUnlock()
	if err := ss.lockWrite(ctx); err != nil { // impersonate a long writer
		t.Fatal(err)
	}
	t0 := time.Now()
	_, err = cl.Append(ctx, id, [][]float64{{5, 6}})
	ss.unlockWrite()
	if err == nil {
		t.Fatal("queued append succeeded while the writer lock was held")
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("queued append: %v (want 504)", err)
	}
	if waited := time.Since(t0); waited > 5*time.Second {
		t.Fatalf("queued append blocked %v instead of honoring the 300ms deadline", waited)
	}
	res, err := cl.Labels(ctx, id)
	if err != nil || len(res.Labels) != 2 {
		t.Fatalf("session after refused mutation: %+v, %v (want the original 2 points)", res, err)
	}
}

// TestServeClientDisconnectAbortsPipeline is the acceptance e2e: on a
// ≥50k-point session, a client that hangs up mid-labels-compute aborts the
// in-flight pipeline (observed through the 499 client-abort counter on
// /v1/metrics — the wire-visible rendering of the cancellation test hooks),
// and the session stays fully usable, serving labels bit-identical to the
// in-process library afterwards. The core stage hook gates the pipeline at
// the threshold stage so the cancel deterministically lands mid-compute.
func TestServeClientDisconnectAbortsPipeline(t *testing.T) {
	srv := mustServer(t, serverOptions{workers: 2, timeout: 30 * time.Second, csvBatch: 8192})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	cl := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	ctx := context.Background()

	id, err := cl.CreateSession(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := synth.RunningExampleSized(52_000, 9)
	var csvBody bytes.Buffer
	if err := dataio.WriteCSV(&csvBody, data.Points, nil); err != nil {
		t.Fatal(err)
	}
	if ap, err := cl.AppendCSV(ctx, id, &csvBody); err != nil || ap.Points != len(data.Points) {
		t.Fatalf("append: %+v, %v", ap, err)
	}

	aborted := false
	for attempt := 0; attempt < 10 && !aborted; attempt++ {
		started := make(chan struct{})
		release := make(chan struct{})
		var once sync.Once
		core.SetStageHook(func(stage string) {
			if stage == core.StageThreshold {
				once.Do(func() {
					close(started)
					<-release
				})
			}
		})
		rctx, rcancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := cl.Labels(rctx, id)
			done <- err
		}()
		<-started // the pipeline is provably in flight
		rcancel() // client hangs up
		// Give the server a beat to observe the closed connection, then let
		// the gated pipeline hit its next cancellation poll.
		time.Sleep(150 * time.Millisecond)
		close(release)
		if err := <-done; err == nil {
			t.Fatal("cancelled labels call returned success on the client")
		}
		core.SetStageHook(nil)

		m, err := cl.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		aborted = m.Routes["labels"].ClientAborts >= 1
	}
	if !aborted {
		t.Fatal("client disconnect never aborted the in-flight pipeline (no 499 recorded)")
	}

	// The aborted session serves the bit-identical labels on the next read,
	// through the NDJSON stream for good measure (52k points → 7 chunks).
	want, err := adawave.Cluster(data.Points, adawave.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, len(want.Labels))
	meta, err := cl.LabelsStream(ctx, id, func(off int, labels []int) error {
		copy(got[off:], labels)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumClusters != want.NumClusters {
		t.Fatalf("clusters after abort: got %d, want %d", meta.NumClusters, want.NumClusters)
	}
	for i := range want.Labels {
		if got[i] != want.Labels[i] {
			t.Fatalf("label %d after abort: got %d, want %d", i, got[i], want.Labels[i])
		}
	}
}
