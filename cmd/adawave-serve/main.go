package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var (
		addr            = flag.String("addr", ":8321", "listen address")
		workers         = flag.Int("workers", 0, "worker goroutines per pipeline stage (0 = all processors)")
		timeout         = flag.Duration("timeout", 30*time.Second, "request-scoped deadline for every endpoint")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for draining in-flight requests on SIGINT/SIGTERM")
		csvBatch        = flag.Int("csv-batch", 8192, "rows per chunk when ingesting text/csv bodies")
		maxBody         = flag.Int64("max-body-bytes", 256<<20, "largest accepted request body")
		maxSessions     = flag.Int("max-sessions", 64, "most concurrent sessions")
		maxPoints       = flag.Int("max-points", 10_000_000, "most points per session")
	)
	flag.Parse()

	srv := newServer(*workers, *timeout, *csvBatch, *maxBody, *maxSessions, *maxPoints)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("adawave-serve listening on %s (request timeout %s)", *addr, *timeout)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "adawave-serve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("adawave-serve: draining (up to %s)", *shutdownTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("adawave-serve: forced close: %v", err)
			hs.Close()
		}
	}
}
