package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adawave/internal/persist"
	"adawave/internal/sched"
)

// splitPeers parses the informational -peers list.
func splitPeers(spec string) []string {
	var out []string
	for _, p := range strings.Split(spec, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

func main() {
	var (
		addr            = flag.String("addr", ":8321", "listen address")
		workers         = flag.Int("workers", 0, "worker goroutines per pipeline stage (0 = all processors)")
		timeout         = flag.Duration("timeout", 30*time.Second, "request-scoped deadline for every endpoint")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for draining in-flight requests on SIGINT/SIGTERM")
		csvBatch        = flag.Int("csv-batch", 8192, "rows per chunk when ingesting text/csv bodies")
		maxBody         = flag.Int64("max-body-bytes", 256<<20, "largest accepted request body")
		maxSessions     = flag.Int("max-sessions", 64, "most concurrent sessions")
		maxPoints       = flag.Int("max-points", 10_000_000, "most points per session")
		dataDir         = flag.String("data-dir", "", "directory for durable session state (checkpoints + write-ahead logs); empty disables persistence")
		walSync         = flag.String("wal-sync", "always", "WAL fsync policy: always (durable before the response), interval (periodic), never (OS-scheduled)")
		walSyncInterval = flag.Duration("wal-sync-interval", time.Second, "fsync period under -wal-sync=interval")
		ckptInterval    = flag.Duration("checkpoint-interval", time.Minute, "how often the background checkpointer folds grown WALs into checkpoints (0 disables)")
		tenants         = flag.String("tenants", "", "API-key → tenant map as comma-separated key=tenant pairs; empty serves every request under the default tenant")
		quotaPoints     = flag.Int64("quota-points", 0, "per-tenant cap on total points across sessions (0 = unlimited)")
		quotaCells      = flag.Int64("quota-cells", 0, "per-tenant cap on total occupied grid cells across sessions (0 = unlimited)")
		quotaFolds      = flag.Int("quota-folds", 0, "per-tenant cap on concurrent compute passes (0 = unlimited)")
		quotaQPS        = flag.Float64("quota-qps", 0, "per-tenant request-rate cap over a sliding 10s window (0 = unlimited)")
		maxResident     = flag.Int("max-resident-sessions", 0, "most sessions resident in memory; colder ones evict to their checkpoints (0 = unbounded, requires -data-dir)")
		maxResidentByte = flag.Int64("max-resident-bytes", 0, "resident-memory budget across sessions in bytes (0 = unbounded, requires -data-dir)")
		role            = flag.String("role", "standalone", "cluster role: standalone, primary (serves the replication feed; requires -data-dir) or follower (replicates -follower-of until promoted; requires -data-dir)")
		followerOf      = flag.String("follower-of", "", "base URL of the primary to replicate (required with -role=follower)")
		peers           = flag.String("peers", "", "comma-separated base URLs of the other cluster nodes (informational; reported in replication status)")
		clusterSecret   = flag.String("cluster-secret", "", "shared secret required on every /v1/replication/ request and sent on replication feed calls; empty leaves the endpoints open (single-trust-domain deployments only)")
	)
	flag.Parse()

	policy, err := persist.ParseSyncPolicy(*walSync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adawave-serve: %v\n", err)
		os.Exit(2)
	}
	tenantMap, err := parseTenants(*tenants)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adawave-serve: %v\n", err)
		os.Exit(2)
	}
	srv, err := newServer(serverOptions{
		workers:         *workers,
		timeout:         *timeout,
		csvBatch:        *csvBatch,
		maxBody:         *maxBody,
		maxSessions:     *maxSessions,
		maxPoints:       *maxPoints,
		dataDir:         *dataDir,
		walSync:         policy,
		walSyncInterval: *walSyncInterval,
		ckptInterval:    *ckptInterval,
		tenants:         tenantMap,
		quota: sched.Quota{
			MaxPoints:          *quotaPoints,
			MaxCells:           *quotaCells,
			MaxConcurrentFolds: *quotaFolds,
			MaxQPS:             *quotaQPS,
		},
		maxResident:      *maxResident,
		maxResidentBytes: *maxResidentByte,
		role:             *role,
		followerOf:       strings.TrimRight(*followerOf, "/"),
		peers:            splitPeers(*peers),
		clusterSecret:    *clusterSecret,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "adawave-serve: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	switch {
	case *role == "follower":
		log.Printf("adawave-serve listening on %s (role follower of %s, data dir %s, wal sync %s)", *addr, *followerOf, *dataDir, policy)
	case *dataDir != "":
		log.Printf("adawave-serve listening on %s (role %s, request timeout %s, data dir %s, wal sync %s)", *addr, *role, *timeout, *dataDir, policy)
	default:
		log.Printf("adawave-serve listening on %s (request timeout %s)", *addr, *timeout)
	}

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			srv.Close()
			fmt.Fprintf(os.Stderr, "adawave-serve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("adawave-serve: draining (up to %s)", *shutdownTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("adawave-serve: forced close: %v", err)
			hs.Close()
		}
	}
	// Flush and close the WALs after the last in-flight mutation drained.
	srv.Close()
}
