package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"adawave"
	"adawave/internal/core"
	"adawave/internal/embed"
	"adawave/internal/grid"
	"adawave/internal/persist"
	"adawave/internal/pointset"
	"adawave/internal/sched"
)

// Durable session storage. With -data-dir set, every session owns one
// directory under <data-dir>/sessions/<id>/:
//
//	config.json          the session's configuration fingerprint
//	checkpoint-<seq>.awc newest full-state checkpoint; <seq> is the last
//	                     WAL sequence number it folds in
//	wal.log              write-ahead log of mutations after that sequence
//
// Every acknowledged mutation is journaled to the WAL after it applies (only
// successful mutations are logged, so replay can never fail on a valid log).
// A checkpoint — background, admin-triggered, or the fallback when a WAL
// write fails — serializes the full session under the per-session writer
// lock to a temp file, fsyncs, renames it into place and truncates the WAL.
// Boot-time recovery walks the session directories: newest restorable
// checkpoint, then the WAL tail with sequences above the checkpoint's,
// discarding any torn trailing record. Because AdaWave's grid masses are
// additive, each replayed batch folds into the restored grid by one
// O(cells) merge, and the recovered session's labels are bit-identical to
// the uninterrupted session's.

// errDurability tags mutation failures caused by the persistence layer (WAL
// append and the checkpoint fallback both failed): the handler answers 500,
// not a 4xx that would blame the client.
var errDurability = errors.New("durability failure")

const (
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".awc"
)

// persistence is the server-wide durable-storage root.
type persistence struct {
	root   string
	policy persist.SyncPolicy
}

func openPersistence(dir string, policy persist.SyncPolicy) (*persistence, error) {
	if err := os.MkdirAll(filepath.Join(dir, "sessions"), 0o755); err != nil {
		return nil, fmt.Errorf("data dir: %w", err)
	}
	return &persistence{root: dir, policy: policy}, nil
}

func (p *persistence) sessionDir(id string) string {
	return filepath.Join(p.root, "sessions", id)
}

// sessionFiles is one session's on-disk state. All fields are guarded by
// the owning serveSession's writer lock, with two exceptions: the WAL
// additionally locks itself (so the background fsync ticker may call
// wal.Sync concurrently), and ckptSeq is atomic so the read-only detail
// endpoint can report it without queueing behind a long mutation.
type sessionFiles struct {
	dir     string
	wal     *persist.WAL
	ckptSeq atomic.Uint64 // sequence covered by the newest on-disk checkpoint
	broken  bool          // double durability failure: mutations refused
}

// create provisions the directory, fingerprint, tenant marker and WAL of a
// new session. The tenant lives in its own small file — not in config.json,
// whose contents are the engine-config fingerprint and must round-trip
// through core.ConfigFingerprint byte for byte.
func (p *persistence) create(id string, meta persist.ConfigMeta, tenant string) (*sessionFiles, error) {
	dir := p.sessionDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cfg, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "config.json"), cfg, 0o644); err != nil {
		return nil, err
	}
	if tenant != "" && tenant != sched.DefaultTenant {
		if err := os.WriteFile(filepath.Join(dir, "tenant"), []byte(tenant+"\n"), 0o644); err != nil {
			return nil, err
		}
	}
	wal, err := persist.OpenWAL(filepath.Join(dir, "wal.log"), p.policy)
	if err != nil {
		return nil, err
	}
	return &sessionFiles{dir: dir, wal: wal}, nil
}

// tenantOf reads a session directory's tenant marker; absence (all sessions
// predating multi-tenancy, and default-tenant sessions, which write none)
// means the default tenant.
func tenantOf(dir string) string {
	raw, err := os.ReadFile(filepath.Join(dir, "tenant"))
	if err != nil {
		return sched.DefaultTenant
	}
	if t := strings.TrimSpace(string(raw)); t != "" {
		return t
	}
	return sched.DefaultTenant
}

// configFromMeta rebuilds the adawave.Config a recovered session runs
// under, then verifies it re-renders to exactly the stored fingerprint
// through core.ConfigFingerprint — the same canonical renderer session
// creation and checkpointing use — so the serving layer cannot drift from
// the checkpoint format. Only threshold strategies this server can create
// (the default) are restorable.
func configFromMeta(m persist.ConfigMeta) (adawave.Config, error) {
	cfg := adawave.DefaultConfig()
	cfg.Scale = m.Scale
	cfg.Levels = m.Levels
	basis, err := adawave.BasisByName(m.Basis)
	if err != nil {
		return cfg, err
	}
	cfg.Basis = basis
	switch m.Connectivity {
	case "faces":
		cfg.Connectivity = grid.Faces
	case "full":
		cfg.Connectivity = grid.Full
	default:
		return cfg, fmt.Errorf("unknown connectivity %q", m.Connectivity)
	}
	cfg.CoeffEpsilon = m.CoeffEpsilon
	cfg.MinClusterCells = m.MinClusterCells
	cfg.MinClusterMass = m.MinClusterMass
	if m.Embedding != "" {
		sp, err := embed.ParseSpec(m.Embedding)
		if err != nil {
			return cfg, err
		}
		cfg.Embedding = sp
	}
	if got := core.ConfigFingerprint(cfg); got != m {
		return cfg, fmt.Errorf("config fingerprint does not round-trip (stored %+v, rebuilt %+v)", m, got)
	}
	return cfg, nil
}

// journalAppend logs an acknowledged append. On a WAL failure it falls back
// to an immediate checkpoint (which captures the batch and truncates the
// log); only a double failure is reported, tagged errDurability.
func (ss *serveSession) journalAppend(ds *pointset.Dataset) error {
	if ss.files == nil || ds.N == 0 {
		return nil
	}
	if ss.files.broken {
		return fmt.Errorf("%w: session storage needs a successful checkpoint", errDurability)
	}
	if _, err := ss.files.wal.AppendBatch(ds); err != nil {
		return ss.checkpointFallback(err)
	}
	return nil
}

// journalRemove is journalAppend for removals.
func (ss *serveSession) journalRemove(indices []int) error {
	if ss.files == nil || len(indices) == 0 {
		return nil
	}
	if ss.files.broken {
		return fmt.Errorf("%w: session storage needs a successful checkpoint", errDurability)
	}
	if _, err := ss.files.wal.AppendRemove(indices); err != nil {
		return ss.checkpointFallback(err)
	}
	return nil
}

// checkpointFallback tries to re-establish durability after a WAL write
// failed; a second failure marks the session broken (mutations are refused
// until an admin-triggered checkpoint succeeds).
func (ss *serveSession) checkpointFallback(walErr error) error {
	if _, err := ss.checkpointLocked(); err != nil {
		ss.files.broken = true
		return fmt.Errorf("%w: wal append: %v; checkpoint fallback: %v", errDurability, walErr, err)
	}
	log.Printf("adawave-serve: wal append failed (%v); state captured by fallback checkpoint", walErr)
	return nil
}

// checkpointLocked writes a full checkpoint and truncates the WAL. The
// caller holds the writer lock and the session is resident. On success the
// session's storage is healthy again.
func (ss *serveSession) checkpointLocked() (seq uint64, err error) {
	sess := ss.live.Load()
	if sess == nil {
		return 0, errors.New("checkpoint of an evicted session")
	}
	fl := ss.files
	seq = fl.wal.Seq()
	tmp := filepath.Join(fl.dir, "checkpoint.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	if err := sess.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	final := filepath.Join(fl.dir, ckptName(seq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	syncDir(fl.dir)
	// The WAL's records are all ≤ seq now; truncate. A crash between the
	// rename and this truncation is safe: replay skips records ≤ seq.
	if err := fl.wal.Reset(); err != nil {
		return 0, err
	}
	// Older checkpoints are strictly dominated; sweep them.
	if entries, err := os.ReadDir(fl.dir); err == nil {
		for _, e := range entries {
			if s, ok := ckptSeqOf(e.Name()); ok && s != seq {
				os.Remove(filepath.Join(fl.dir, e.Name()))
			}
		}
	}
	fl.ckptSeq.Store(seq)
	fl.broken = false
	return seq, nil
}

func ckptName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, seq, ckptSuffix)
}

func ckptSeqOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// syncDir fsyncs a directory so a just-renamed checkpoint survives power
// loss; best-effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// loadSessionDir recovers one session directory: fingerprint → engine,
// newest restorable checkpoint → warm session, WAL tail replay (records
// above the checkpoint's sequence; a torn trailing record is discarded).
// It returns the live session ready to serve, with its reopened WAL.
func loadSessionDir(dir string, workers int, policy persist.SyncPolicy) (*adawave.Session, *sessionFiles, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "config.json"))
	if err != nil {
		return nil, nil, err
	}
	var meta persist.ConfigMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, nil, fmt.Errorf("config.json: %w", err)
	}
	cfg, err := configFromMeta(meta)
	if err != nil {
		return nil, nil, fmt.Errorf("config.json: %w", err)
	}

	// Newest checkpoint first; on a restore failure fall back to older ones
	// (normally at most one exists — older files mean a crash interrupted
	// the post-checkpoint sweep).
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type ckpt struct {
		name string
		seq  uint64
	}
	var ckpts []ckpt
	for _, e := range entries {
		if seq, ok := ckptSeqOf(e.Name()); ok {
			ckpts = append(ckpts, ckpt{e.Name(), seq})
		}
	}
	sort.Slice(ckpts, func(a, b int) bool { return ckpts[a].seq > ckpts[b].seq })

	var sess *adawave.Session
	var ckptSeq, newestSeq uint64
	if len(ckpts) > 0 {
		newestSeq = ckpts[0].seq
	}
	for _, c := range ckpts {
		f, err := os.Open(filepath.Join(dir, c.name))
		if err != nil {
			continue
		}
		restored, rerr := adawave.RestoreSession(f, cfg, workers)
		f.Close()
		if rerr != nil {
			log.Printf("adawave-serve: checkpoint %s unrestorable: %v", c.name, rerr)
			continue
		}
		sess, ckptSeq = restored, c.seq
		break
	}
	if sess == nil {
		// No (restorable) checkpoint: an empty session replays the whole log.
		if sess, err = adawave.NewSession(cfg, workers); err != nil {
			return nil, nil, err
		}
	}

	walPath := filepath.Join(dir, "wal.log")
	lastSeq, _, err := persist.ReplayInto(walPath, ckptSeq, sess)
	if err != nil {
		return nil, nil, fmt.Errorf("wal replay: %w", err)
	}
	// If recovery had to fall back past the newest checkpoint (it existed
	// but would not restore), the WAL must still cover every sequence the
	// newest checkpoint had folded in — otherwise mutations this server
	// acknowledged are gone, and serving the stale state as if it were
	// current would be a silent data loss. Refuse instead; the directory is
	// left untouched for inspection.
	if ckptSeq < newestSeq && lastSeq < newestSeq {
		return nil, nil, fmt.Errorf("newest checkpoint (seq %d) unrestorable and wal ends at seq %d: acknowledged state missing", newestSeq, lastSeq)
	}
	wal, err := persist.OpenWAL(walPath, policy)
	if err != nil {
		return nil, nil, err
	}
	// A fresh log (no checkpoint, no records — or a log orphaned by a
	// crash before its first record) must not restart sequences below an
	// existing checkpoint's.
	wal.SkipTo(ckptSeq)
	files := &sessionFiles{dir: dir, wal: wal}
	files.ckptSeq.Store(ckptSeq)
	return sess, files, nil
}

// recoverSessions restores every session directory under the root,
// returning the live sessions and the highest numeric id seen (so new ids
// never collide with recovered or unrecoverable ones). A directory that
// fails to recover is logged and left untouched for inspection.
func (p *persistence) recoverSessions(workers int) (map[string]*serveSession, uint64) {
	out := make(map[string]*serveSession)
	var maxID uint64
	root := filepath.Join(p.root, "sessions")
	entries, err := os.ReadDir(root)
	if err != nil {
		return out, 0
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		if n, err := strconv.ParseUint(strings.TrimPrefix(id, "s"), 10, 64); err == nil && n > maxID {
			maxID = n
		}
		dir := filepath.Join(root, id)
		sess, files, err := loadSessionDir(dir, workers, p.policy)
		if err != nil {
			log.Printf("adawave-serve: session %s not recovered: %v", id, err)
			continue
		}
		out[id] = newServeSession(id, tenantOf(dir), sess, files, workers)
		log.Printf("adawave-serve: recovered session %s (%d points, wal seq %d)", id, sess.Len(), files.wal.Seq())
	}
	return out, maxID
}
