package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"

	"adawave"
	"adawave/internal/cluster"
	"adawave/internal/persist"
	"adawave/internal/pointset"
	"adawave/internal/sched"
)

// Durable session storage. With -data-dir set, every session owns one
// directory under <data-dir>/sessions/<id>/:
//
//	config.json          the session's configuration fingerprint
//	checkpoint-<seq>.awc newest full-state checkpoint; <seq> is the last
//	                     WAL sequence number it folds in
//	wal.log              write-ahead log of mutations after that sequence
//
// Every acknowledged mutation is journaled to the WAL after it applies (only
// successful mutations are logged, so replay can never fail on a valid log).
// A checkpoint — background, admin-triggered, or the fallback when a WAL
// write fails — serializes the full session under the per-session writer
// lock to a temp file, fsyncs, renames it into place and truncates the WAL.
// Boot-time recovery walks the session directories: newest restorable
// checkpoint, then the WAL tail with sequences above the checkpoint's,
// discarding any torn trailing record. Because AdaWave's grid masses are
// additive, each replayed batch folds into the restored grid by one
// O(cells) merge, and the recovered session's labels are bit-identical to
// the uninterrupted session's.

// errDurability tags mutation failures caused by the persistence layer (WAL
// append and the checkpoint fallback both failed): the handler answers 500,
// not a 4xx that would blame the client.
var errDurability = errors.New("durability failure")

// persistence is the server-wide durable-storage root.
type persistence struct {
	root   string
	policy persist.SyncPolicy
}

func openPersistence(dir string, policy persist.SyncPolicy) (*persistence, error) {
	if err := os.MkdirAll(filepath.Join(dir, "sessions"), 0o755); err != nil {
		return nil, fmt.Errorf("data dir: %w", err)
	}
	return &persistence{root: dir, policy: policy}, nil
}

func (p *persistence) sessionDir(id string) string {
	return filepath.Join(p.root, "sessions", id)
}

// sessionFiles is one session's on-disk state. All fields are guarded by
// the owning serveSession's writer lock, with two exceptions: the WAL
// additionally locks itself (so the background fsync ticker may call
// wal.Sync concurrently), and ckptSeq is atomic so the read-only detail
// endpoint can report it without queueing behind a long mutation.
type sessionFiles struct {
	dir     string
	wal     *persist.WAL
	ckptSeq atomic.Uint64 // sequence covered by the newest on-disk checkpoint
	broken  bool          // double durability failure: mutations refused
}

// create provisions the directory, fingerprint, tenant marker and WAL of a
// new session. The tenant lives in its own small file — not in config.json,
// whose contents are the engine-config fingerprint and must round-trip
// through core.ConfigFingerprint byte for byte.
func (p *persistence) create(id string, meta persist.ConfigMeta, tenant string) (*sessionFiles, error) {
	dir := p.sessionDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cfg, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "config.json"), cfg, 0o644); err != nil {
		return nil, err
	}
	if tenant != "" && tenant != sched.DefaultTenant {
		if err := os.WriteFile(filepath.Join(dir, "tenant"), []byte(tenant+"\n"), 0o644); err != nil {
			return nil, err
		}
	}
	wal, err := persist.OpenWAL(filepath.Join(dir, "wal.log"), p.policy)
	if err != nil {
		return nil, err
	}
	return &sessionFiles{dir: dir, wal: wal}, nil
}

// tenantOf reads a session directory's tenant marker; absence (all sessions
// predating multi-tenancy, and default-tenant sessions, which write none)
// means the default tenant.
func tenantOf(dir string) string {
	raw, err := os.ReadFile(filepath.Join(dir, "tenant"))
	if err != nil {
		return sched.DefaultTenant
	}
	if t := strings.TrimSpace(string(raw)); t != "" {
		return t
	}
	return sched.DefaultTenant
}

// configFromMeta rebuilds the adawave.Config a recovered session runs
// under; the session-directory layout and its fingerprint round-trip check
// live in internal/cluster, shared with the replication path.
func configFromMeta(m persist.ConfigMeta) (adawave.Config, error) {
	return cluster.ConfigFromMeta(m)
}

// journalAppend logs an acknowledged append. On a WAL failure it falls back
// to an immediate checkpoint (which captures the batch and truncates the
// log); only a double failure is reported, tagged errDurability.
func (ss *serveSession) journalAppend(ds *pointset.Dataset) error {
	if ss.files == nil || ds.N == 0 {
		return nil
	}
	if ss.files.broken {
		return fmt.Errorf("%w: session storage needs a successful checkpoint", errDurability)
	}
	if _, err := ss.files.wal.AppendBatch(ds); err != nil {
		return ss.checkpointFallback(err)
	}
	return nil
}

// journalRemove is journalAppend for removals.
func (ss *serveSession) journalRemove(indices []int) error {
	if ss.files == nil || len(indices) == 0 {
		return nil
	}
	if ss.files.broken {
		return fmt.Errorf("%w: session storage needs a successful checkpoint", errDurability)
	}
	if _, err := ss.files.wal.AppendRemove(indices); err != nil {
		return ss.checkpointFallback(err)
	}
	return nil
}

// checkpointFallback tries to re-establish durability after a WAL write
// failed; a second failure marks the session broken (mutations are refused
// until an admin-triggered checkpoint succeeds).
func (ss *serveSession) checkpointFallback(walErr error) error {
	if _, err := ss.checkpointLocked(); err != nil {
		ss.files.broken = true
		return fmt.Errorf("%w: wal append: %v; checkpoint fallback: %v", errDurability, walErr, err)
	}
	log.Printf("adawave-serve: wal append failed (%v); state captured by fallback checkpoint", walErr)
	return nil
}

// checkpointLocked writes a full checkpoint and truncates the WAL. The
// caller holds the writer lock and the session is resident. On success the
// session's storage is healthy again.
func (ss *serveSession) checkpointLocked() (seq uint64, err error) {
	sess := ss.live.Load()
	if sess == nil {
		return 0, errors.New("checkpoint of an evicted session")
	}
	fl := ss.files
	seq = fl.wal.Seq()
	tmp := filepath.Join(fl.dir, "checkpoint.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	if err := sess.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	final := filepath.Join(fl.dir, ckptName(seq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	syncDir(fl.dir)
	// The WAL's records are all ≤ seq now; truncate. A crash between the
	// rename and this truncation is safe: replay skips records ≤ seq.
	if err := fl.wal.Reset(); err != nil {
		return 0, err
	}
	// Older checkpoints are strictly dominated; sweep them.
	if entries, err := os.ReadDir(fl.dir); err == nil {
		for _, e := range entries {
			if s, ok := ckptSeqOf(e.Name()); ok && s != seq {
				os.Remove(filepath.Join(fl.dir, e.Name()))
			}
		}
	}
	fl.ckptSeq.Store(seq)
	fl.broken = false
	return seq, nil
}

func ckptName(seq uint64) string { return cluster.CheckpointFileName(seq) }

func ckptSeqOf(name string) (uint64, bool) { return cluster.CheckpointSeqOf(name) }

// syncDir fsyncs a directory so a just-renamed checkpoint survives power
// loss; best-effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// loadSessionDir recovers one session directory through the shared layout
// code in internal/cluster (fingerprint → engine, newest restorable
// checkpoint → warm session, WAL tail replay with the torn trailing record
// discarded), adapting the result to the serving layer's sessionFiles.
func loadSessionDir(dir string, workers int, policy persist.SyncPolicy) (*adawave.Session, *sessionFiles, error) {
	sess, disk, err := cluster.LoadSessionDir(dir, workers, policy)
	if err != nil {
		return nil, nil, err
	}
	files := &sessionFiles{dir: disk.Dir, wal: disk.WAL}
	files.ckptSeq.Store(disk.CkptSeq)
	return sess, files, nil
}

// recoverSessions restores every session directory under the root,
// returning the live sessions and the highest numeric id seen (so new ids
// never collide with recovered or unrecoverable ones). A directory that
// fails to recover is logged and left untouched for inspection.
func (p *persistence) recoverSessions(workers int) (map[string]*serveSession, uint64) {
	out := make(map[string]*serveSession)
	var maxID uint64
	root := filepath.Join(p.root, "sessions")
	entries, err := os.ReadDir(root)
	if err != nil {
		return out, 0
	}
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			// Dot-dirs hold quarantined replica state (see
			// internal/cluster), never live sessions.
			continue
		}
		id := e.Name()
		if n, err := strconv.ParseUint(strings.TrimPrefix(id, "s"), 10, 64); err == nil && n > maxID {
			maxID = n
		}
		dir := filepath.Join(root, id)
		sess, files, err := loadSessionDir(dir, workers, p.policy)
		if err != nil {
			log.Printf("adawave-serve: session %s not recovered: %v", id, err)
			continue
		}
		out[id] = newServeSession(id, tenantOf(dir), sess, files, workers)
		log.Printf("adawave-serve: recovered session %s (%d points, wal seq %d)", id, sess.Len(), files.wal.Seq())
	}
	return out, maxID
}
