package main

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"adawave"
	"adawave/client"
	"adawave/internal/api"
	"adawave/internal/persist"
)

// TestServeEmbeddingSessionE2E: the embedding front-end across the wire —
// a session created with an embedding spec echoes it in its detail, labels
// match the local embedded run bit for bit, and a kill + restart recovers
// the fitted embedder from the checkpoint + WAL so the labels survive the
// crash unchanged.
func TestServeEmbeddingSessionE2E(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	opts := serverOptions{workers: 2, timeout: 30 * time.Second, dataDir: dataDir, walSync: persist.SyncAlways}
	srv1 := mustServer(t, opts)
	ts1 := httptest.NewServer(srv1.handler())
	defer ts1.Close()
	cl := client.New(ts1.URL, client.WithHTTPClient(ts1.Client()))
	ctx := context.Background()

	data := adawave.HighDimMixture(4, 150, 16, 3, 0.2, 5)
	spec := &api.EmbeddingSpec{Kind: "rp", K: 3, Seed: 21}
	scale := 24
	id, err := cl.CreateSession(ctx, &api.SessionConfig{Scale: &scale, Embedding: spec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Append(ctx, id, data.Points[:400]); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Append(ctx, id, data.Points[400:]); err != nil {
		t.Fatal(err)
	}
	detail, err := cl.Session(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if detail.Embedding == nil || *detail.Embedding != *spec {
		t.Fatalf("detail embedding: got %+v, want %+v", detail.Embedding, spec)
	}

	local, err := adawave.New(
		adawave.WithEmbedding(adawave.RandomProjection(3, 21)),
		adawave.WithScale(scale),
	)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Cluster(data.Points)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Labels(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Labels {
		if res.Labels[i] != want.Labels[i] {
			t.Fatalf("label %d: got %d, want %d", i, res.Labels[i], want.Labels[i])
		}
	}

	if _, err := cl.Checkpoint(ctx, id); err != nil {
		t.Fatal(err)
	}
	// Kill + restart: recovery must restore the fitted projection, not
	// refit it on whatever the WAL replays first.
	srv2 := mustServer(t, opts)
	ts2 := httptest.NewServer(srv2.handler())
	defer ts2.Close()
	cl2 := client.New(ts2.URL, client.WithHTTPClient(ts2.Client()))
	detail2, err := cl2.Session(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if detail2.Embedding == nil || *detail2.Embedding != *spec {
		t.Fatalf("recovered detail embedding: got %+v, want %+v", detail2.Embedding, spec)
	}
	res2, err := cl2.Labels(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Labels {
		if res2.Labels[i] != want.Labels[i] {
			t.Fatalf("recovered label %d: got %d, want %d", i, res2.Labels[i], want.Labels[i])
		}
	}
}

// TestServeEmbeddingSpecValidation: a bad embedding spec in the create body
// is the caller's fault, reported before any session exists.
func TestServeEmbeddingSpecValidation(t *testing.T) {
	srv := mustServer(t, serverOptions{workers: 1, timeout: 10 * time.Second})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	cl := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	for _, spec := range []*api.EmbeddingSpec{
		{Kind: "umap", K: 2},
		{Kind: "pca", K: 0},
	} {
		if _, err := cl.CreateSession(context.Background(), &api.SessionConfig{Embedding: spec}); err == nil {
			t.Fatalf("spec %+v must be rejected", spec)
		}
	}
}

// TestEmbeddingMismatchWireCode: ErrEmbeddingMismatch classifies to the
// dedicated 409 embedding_mismatch (not swallowed by the broad
// config_mismatch it wraps), and the client maps the code back onto both
// taxonomy roots.
func TestEmbeddingMismatchWireCode(t *testing.T) {
	status, code := api.Classify(persist.ErrEmbeddingMismatch)
	if status != 409 || code != api.CodeEmbeddingMismatch {
		t.Fatalf("classified as %d %s, want 409 %s", status, code, api.CodeEmbeddingMismatch)
	}
	status, code = api.Classify(persist.ErrConfigMismatch)
	if status != 409 || code != api.CodeConfigMismatch {
		t.Fatalf("bare config mismatch classified as %d %s", status, code)
	}
	wire := &client.APIError{Status: 409, Code: api.CodeEmbeddingMismatch}
	if !errors.Is(wire, adawave.ErrEmbeddingMismatch) || !errors.Is(wire, adawave.ErrConfigMismatch) {
		t.Fatal("embedding_mismatch must match both ErrEmbeddingMismatch and ErrConfigMismatch")
	}
	broad := &client.APIError{Status: 409, Code: api.CodeConfigMismatch}
	if errors.Is(broad, adawave.ErrEmbeddingMismatch) {
		t.Fatal("config_mismatch must not match the embedding refinement")
	}
	if !errors.Is(broad, adawave.ErrConfigMismatch) {
		t.Fatal("config_mismatch must match ErrConfigMismatch")
	}
}
