package main

// Multi-tenant resource governance: API-key → tenant extraction, quota
// admission, the tenant usage endpoint, and the session eviction manager.
//
// Every request is tagged with a tenant — the one its X-API-Key maps to
// under -tenants, or "default" when no key is sent — and that tenant rides
// the request context into the engine together with the process-wide worker
// pool (internal/sched), so all fan-out stages draw shards from one fairly
// scheduled pool instead of spawning per-request goroutines. Quotas
// (-quota-points, -quota-cells, -quota-folds, -quota-qps) are enforced at
// admission: an over-quota request answers 429 resource_exhausted with a
// Retry-After header and the machine-readable details of the backpressure
// contract, and nothing executes.
//
// The eviction manager bounds resident memory by -max-resident-sessions and
// -max-resident-bytes: when the budget is exceeded, the least recently
// touched idle session is checkpointed (truncating its WAL, so the
// checkpoint alone is the complete state) and its live pointer cleared; the
// next request touching it rehydrates from that checkpoint, bit-identical.
// Sessions whose writer lock is held are never evicted, so a mutation or
// checkpoint in flight always completes against the object it started with.

import (
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"adawave"
	"adawave/internal/api"
	"adawave/internal/sched"
)

// parseTenants parses the -tenants flag: comma-separated key=tenant pairs
// (e.g. "k1=alice,k2=bob,k3=bob" — several keys may share a tenant).
func parseTenants(spec string) (map[string]string, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(spec, ",") {
		key, tenant, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || key == "" || tenant == "" {
			return nil, fmt.Errorf("bad -tenants entry %q (want key=tenant)", pair)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("duplicate API key in -tenants")
		}
		out[key] = tenant
	}
	return out, nil
}

// withTenant resolves the request's tenant from X-API-Key, applies the QPS
// admission quota, and attaches tenant + worker pool to the request context
// so the engine's fan-out stages draw from the shared pool under the
// tenant's fair-scheduler queue. /healthz is exempt from admission — a
// liveness probe must not be rate-limited into flapping.
func (s *server) withTenant(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tenant := sched.DefaultTenant
		if key := r.Header.Get("X-API-Key"); key != "" && len(s.tenants) > 0 {
			t, ok := s.tenants[key]
			if !ok {
				writeCode(w, http.StatusForbidden, api.CodeInvalidInput, "unknown API key")
				return
			}
			tenant = t
		}
		ctx := sched.WithTenant(sched.WithPool(r.Context(), s.pool), tenant)
		r = r.WithContext(ctx)
		// /healthz and the node-to-node replication endpoints are exempt
		// from admission: a liveness probe must not be rate-limited into
		// flapping, and a follower catching up must not consume the quota
		// of the tenants whose data it replicates.
		if r.URL.Path != "/healthz" && !strings.HasPrefix(r.URL.Path, "/v1/replication/") {
			if qe := s.gov.AdmitRequest(tenant); qe != nil {
				s.writeQuotaErr(w, qe)
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// writeQuotaErr renders a quota rejection as the standardized backpressure
// contract: 429, a Retry-After header, and the resource_exhausted envelope
// whose details say which quota, the tenant's standing, and when to retry.
func (s *server) writeQuotaErr(w http.ResponseWriter, err error) {
	details, retry, ok := api.QuotaDetails(err)
	if !ok {
		retry = time.Second
	}
	w.Header().Set("Retry-After", strconv.FormatInt(int64(retry/time.Second), 10))
	writeJSON(w, http.StatusTooManyRequests, api.ErrorResponse{Error: api.ErrorBody{
		Code:    api.CodeResourceExhausted,
		Message: err.Error(),
		Details: details,
	}})
}

// tenantUsage answers GET /v1/tenants/{id}/usage: the governor's accounting
// (points, cells, folds, observed QPS, quota limits) merged with the
// registry's residency view.
func (s *server) tenantUsage(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("id")
	u := s.gov.Usage(tenant)
	out := api.TenantUsage{
		Tenant: tenant,
		Points: u.Points,
		Cells:  u.Cells,
		Folds:  u.Folds,
		QPS:    u.QPS,
		Quota: api.QuotaLimits{
			MaxPoints:          u.Quota.MaxPoints,
			MaxCells:           u.Quota.MaxCells,
			MaxConcurrentFolds: u.Quota.MaxConcurrentFolds,
			MaxQPS:             u.Quota.MaxQPS,
		},
	}
	for _, ss := range s.snapshotSessions() {
		if ss.tenant != tenant {
			continue
		}
		out.Sessions++
		if sess := ss.live.Load(); sess != nil {
			out.ResidentSessions++
			out.ResidentBytes += sess.ResidentBytes()
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- session eviction & rehydration ----

func (ss *serveSession) resident() bool { return ss.live.Load() != nil }

func (ss *serveSession) touch() { ss.lastTouch.Store(time.Now().UnixNano()) }

// cacheShape refreshes the lock-free shape cache the session list (and the
// governor teardown) reads so neither ever rehydrates an evicted session.
func (ss *serveSession) cacheShape(sess *adawave.Session) {
	ss.lastPoints.Store(int64(sess.Len()))
	ss.lastDim.Store(int64(sess.Dim()))
}

// shape returns the session's point count and dimensionality without
// rehydrating: live sessions answer directly, evicted ones from the cache.
func (ss *serveSession) shape() (points, dim int) {
	if sess := ss.live.Load(); sess != nil {
		ss.cacheShape(sess)
	}
	return int(ss.lastPoints.Load()), int(ss.lastDim.Load())
}

// acquire returns the session's live engine object, transparently
// rehydrating it from its checkpoint if the eviction manager parked it.
// Callers mutating the session hold the writer lock first (lock order:
// writeSem → hydrateMu, same as the evictor).
func (ss *serveSession) acquire(s *server) (*adawave.Session, error) {
	ss.touch()
	if sess := ss.live.Load(); sess != nil {
		return sess, nil
	}
	return ss.rehydrate(s)
}

// rehydrate restores the session from its newest checkpoint, single-flight
// under hydrateMu. Eviction only ever parks a session right after a
// successful checkpoint truncated its WAL, so the checkpoint alone is the
// complete state and replaying nothing is correct.
func (ss *serveSession) rehydrate(s *server) (*adawave.Session, error) {
	ss.hydrateMu.Lock()
	defer ss.hydrateMu.Unlock()
	if sess := ss.live.Load(); sess != nil {
		return sess, nil
	}
	if ss.files == nil {
		return nil, fmt.Errorf("session %s evicted without durable state", ss.id)
	}
	path := filepath.Join(ss.files.dir, ckptName(ss.files.ckptSeq.Load()))
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rehydrate %s: %w", ss.id, err)
	}
	defer f.Close()
	sess, err := adawave.RestoreSession(f, ss.cfg, ss.workers)
	if err != nil {
		return nil, fmt.Errorf("rehydrate %s: %w", ss.id, err)
	}
	ss.live.Store(sess)
	ss.cacheShape(sess)
	log.Printf("adawave-serve: session %s rehydrated (%d points)", ss.id, sess.Len())
	// Making this session resident may push the fleet over budget; evict
	// someone colder (this session was just touched, so the LRU passes it
	// over while any other candidate exists).
	s.enforceResidency()
	return sess, nil
}

// evictLocked checkpoints the session and clears its live pointer. The
// caller holds the writer lock, so no mutation is in flight; readers still
// computing on the old object finish safely against it (a Session stays
// valid until unreferenced — the checkpoint waited for their lock anyway).
func (ss *serveSession) evictLocked() bool {
	sess := ss.live.Load()
	if sess == nil || ss.files == nil || ss.files.broken {
		return false
	}
	ss.cacheShape(sess)
	if _, err := ss.checkpointLocked(); err != nil {
		log.Printf("adawave-serve: evict %s: checkpoint failed, keeping resident: %v", ss.id, err)
		return false
	}
	ss.live.Store(nil)
	return true
}

// enforceResidency evicts least-recently-touched idle sessions until the
// resident count and byte estimate fit the configured budget. Sessions with
// a held writer lock (a mutation or checkpoint in flight) are skipped this
// round; if every candidate is busy the budget is allowed to overshoot
// temporarily rather than block request traffic.
func (s *server) enforceResidency() {
	if s.maxResident <= 0 && s.maxResidentBytes <= 0 {
		return
	}
	for {
		var resident int
		var bytes int64
		var cands []*serveSession
		for _, ss := range s.snapshotSessions() {
			sess := ss.live.Load()
			if sess == nil {
				continue
			}
			resident++
			bytes += sess.ResidentBytes()
			if ss.files != nil {
				cands = append(cands, ss)
			}
		}
		over := (s.maxResident > 0 && resident > s.maxResident) ||
			(s.maxResidentBytes > 0 && bytes > s.maxResidentBytes)
		if !over || len(cands) == 0 {
			return
		}
		sort.Slice(cands, func(a, b int) bool {
			return cands[a].lastTouch.Load() < cands[b].lastTouch.Load()
		})
		evicted := false
		for _, ss := range cands {
			select {
			case ss.writeSem <- struct{}{}: // idle: nothing holds the writer lock
			default:
				continue
			}
			ok := ss.evictLocked()
			ss.unlockWrite()
			if ok {
				log.Printf("adawave-serve: session %s evicted to checkpoint (residency budget)", ss.id)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}
