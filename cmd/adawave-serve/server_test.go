package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"adawave"
	"adawave/internal/dataio"
)

// mustServer builds a server from opts, failing the test on error and
// closing it (stopping background goroutines, flushing WALs) at cleanup.
func mustServer(t *testing.T, opts serverOptions) *server {
	t.Helper()
	srv, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// doJSON issues one request against the test server and decodes the JSON
// response into out (skipped when out is nil).
func doJSON(t *testing.T, ts *httptest.Server, method, path, contentType string, body []byte, wantCode int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d (want %d): %s", method, path, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad json %q: %v", method, path, raw, err)
		}
	}
}

// TestServeLifecycle is the CI smoke test: create session → append (JSON and
// chunked CSV) → read labels (asserted bit-identical to the one-shot
// library call) → multi-resolution → remove → delete → 404.
func TestServeLifecycle(t *testing.T) {
	srv := mustServer(t, serverOptions{workers: 2, timeout: 30 * time.Second, csvBatch: 64})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	data := adawave.SyntheticEvaluation(200, 0.5, 3)
	half := len(data.Points) / 2

	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, ts, "POST", "/sessions", "application/json", []byte(`{"scale":128}`), http.StatusCreated, &created)
	if created.ID == "" {
		t.Fatal("no session id")
	}
	base := "/sessions/" + created.ID

	// Reading an empty session is a sequencing error, not a crash.
	doJSON(t, ts, "GET", base+"/labels", "", nil, http.StatusConflict, nil)

	// First half as a JSON batch.
	batch, err := json.Marshal(map[string]any{"points": data.Points[:half]})
	if err != nil {
		t.Fatal(err)
	}
	var appended struct {
		Appended int `json:"appended"`
		Points   int `json:"points"`
	}
	doJSON(t, ts, "POST", base+"/points", "application/json", batch, http.StatusOK, &appended)
	if appended.Points != half {
		t.Fatalf("points after JSON batch: got %d, want %d", appended.Points, half)
	}

	// Second half as a CSV body, streamed through the chunked reader.
	var csvBody bytes.Buffer
	if err := dataio.WriteCSV(&csvBody, data.Points[half:], nil); err != nil {
		t.Fatal(err)
	}
	doJSON(t, ts, "POST", base+"/points", "text/csv", csvBody.Bytes(), http.StatusOK, &appended)
	if appended.Points != len(data.Points) || appended.Appended != len(data.Points)-half {
		t.Fatalf("points after CSV batch: got %d/%d", appended.Appended, appended.Points)
	}

	var got struct {
		Labels      []int `json:"labels"`
		NumClusters int   `json:"numClusters"`
	}
	doJSON(t, ts, "GET", base+"/labels", "", nil, http.StatusOK, &got)

	want, err := adawave.Cluster(data.Points, adawave.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClusters != want.NumClusters || len(got.Labels) != len(want.Labels) {
		t.Fatalf("served result: %d clusters / %d labels, want %d / %d",
			got.NumClusters, len(got.Labels), want.NumClusters, len(want.Labels))
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label %d: got %d, want %d", i, got.Labels[i], want.Labels[i])
		}
	}

	var multi struct {
		Levels []struct {
			Levels      int   `json:"levels"`
			NumClusters int   `json:"numClusters"`
			Labels      []int `json:"labels"`
		} `json:"levels"`
	}
	doJSON(t, ts, "GET", base+"/multiresolution?levels=3", "", nil, http.StatusOK, &multi)
	if len(multi.Levels) == 0 || multi.Levels[0].Levels != 1 {
		t.Fatalf("multiresolution: %+v", multi.Levels)
	}
	for i := range multi.Levels[0].Labels {
		if multi.Levels[0].Labels[i] != want.Labels[i] {
			t.Fatalf("level-1 label %d diverges from single-level result", i)
		}
	}

	var removed struct {
		Points int `json:"points"`
	}
	doJSON(t, ts, "DELETE", base+"/points", "application/json", []byte(`{"indices":[0,1,2]}`), http.StatusOK, &removed)
	if removed.Points != len(data.Points)-3 {
		t.Fatalf("points after removal: got %d", removed.Points)
	}
	doJSON(t, ts, "GET", base+"/labels", "", nil, http.StatusOK, &got)
	if len(got.Labels) != len(data.Points)-3 {
		t.Fatalf("labels after removal: got %d", len(got.Labels))
	}

	var listed struct {
		Sessions []struct {
			ID     string `json:"id"`
			Points int    `json:"points"`
		} `json:"sessions"`
	}
	doJSON(t, ts, "GET", "/sessions", "", nil, http.StatusOK, &listed)
	if len(listed.Sessions) != 1 || listed.Sessions[0].Points != len(data.Points)-3 {
		t.Fatalf("session list: %+v", listed.Sessions)
	}

	doJSON(t, ts, "DELETE", base, "", nil, http.StatusNoContent, nil)
	doJSON(t, ts, "GET", base+"/labels", "", nil, http.StatusNotFound, nil)
	doJSON(t, ts, "DELETE", base, "", nil, http.StatusNotFound, nil)
}

// TestServeConcurrentReaders hammers labels reads while batches stream in —
// the race-detector rendering of the one-writer-many-readers contract.
func TestServeConcurrentReaders(t *testing.T) {
	srv := mustServer(t, serverOptions{workers: 2, timeout: 30 * time.Second})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, ts, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	base := "/sessions/" + created.ID

	data := adawave.SyntheticEvaluation(120, 0.4, 5)
	first, err := json.Marshal(map[string]any{"points": data.Points[:50]})
	if err != nil {
		t.Fatal(err)
	}
	doJSON(t, ts, "POST", base+"/points", "application/json", first, http.StatusOK, nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := ts.Client().Get(ts.URL + base + "/labels")
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for off := 50; off < len(data.Points); off += 37 {
		end := off + 37
		if end > len(data.Points) {
			end = len(data.Points)
		}
		batch, err := json.Marshal(map[string]any{"points": data.Points[off:end]})
		if err != nil {
			t.Fatal(err)
		}
		doJSON(t, ts, "POST", base+"/points", "application/json", batch, http.StatusOK, nil)
	}
	close(stop)
	wg.Wait()

	var got struct {
		Labels []int `json:"labels"`
	}
	doJSON(t, ts, "GET", base+"/labels", "", nil, http.StatusOK, &got)
	if len(got.Labels) != len(data.Points) {
		t.Fatalf("labels: got %d, want %d", len(got.Labels), len(data.Points))
	}
}

// TestServeBadRequests covers the 4xx surface.
func TestServeBadRequests(t *testing.T) {
	srv := mustServer(t, serverOptions{workers: 1, timeout: 30 * time.Second})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	doJSON(t, ts, "POST", "/sessions", "application/json", []byte(`{"scale":1}`), http.StatusBadRequest, nil)
	doJSON(t, ts, "POST", "/sessions", "application/json", []byte(`{"basis":"nope"}`), http.StatusBadRequest, nil)
	doJSON(t, ts, "POST", "/sessions", "application/json", []byte(`{"connectivity":"diagonal"}`), http.StatusBadRequest, nil)
	doJSON(t, ts, "POST", "/sessions/s999/points", "application/json", []byte(`{"points":[[1,2]]}`), http.StatusNotFound, nil)

	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, ts, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	base := "/sessions/" + created.ID
	doJSON(t, ts, "POST", base+"/points", "application/json", []byte(`{"points":[[1,2],[3]]}`), http.StatusBadRequest, nil)
	doJSON(t, ts, "POST", base+"/points", "text/csv", []byte("x0,x1\n1,2\n3\n"), http.StatusBadRequest, nil)
	// A failed CSV upload must be atomic: no partial rows survive it.
	var listed struct {
		Sessions []struct {
			Points int `json:"points"`
		} `json:"sessions"`
	}
	doJSON(t, ts, "GET", "/sessions", "", nil, http.StatusOK, &listed)
	if len(listed.Sessions) != 1 || listed.Sessions[0].Points != 0 {
		t.Fatalf("failed uploads must roll back: %+v", listed.Sessions)
	}
	// A dimension mismatch against the session is the caller's mistake: 400
	// invalid_input, never a 500 that would blame (and page) the server.
	doJSON(t, ts, "POST", base+"/points", "application/json", []byte(`{"points":[[1,2]]}`), http.StatusOK, nil)
	doJSON(t, ts, "POST", base+"/points", "application/json", []byte(`{"points":[[1,2,3]]}`), http.StatusBadRequest, nil)
	doJSON(t, ts, "DELETE", base+"/points", "application/json", []byte(`{"indices":[5]}`), http.StatusBadRequest, nil)
	doJSON(t, ts, "GET", base+"/multiresolution?levels=zero", "", nil, http.StatusBadRequest, nil)
	doJSON(t, ts, "GET", base+"/multiresolution?levels=-1", "", nil, http.StatusBadRequest, nil)
}

// TestServeCSVRollback: a CSV upload that fails after whole chunks were
// already appended must roll those chunks back — failed ingestion is
// atomic, so a client retry cannot duplicate points.
func TestServeCSVRollback(t *testing.T) {
	srv := mustServer(t, serverOptions{workers: 1, timeout: 30 * time.Second, csvBatch: 2}) // 2-row chunks
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, ts, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	base := "/sessions/" + created.ID
	// Pre-existing points must survive the rollback untouched.
	doJSON(t, ts, "POST", base+"/points", "application/json", []byte(`{"points":[[9,9],[8,8]]}`), http.StatusOK, nil)
	// Rows 1–4 form two full chunks that append successfully; row 5 is
	// malformed and fails mid-stream.
	bad := "1,2\n3,4\n5,6\n7,8\nnope,0\n"
	doJSON(t, ts, "POST", base+"/points", "text/csv", []byte(bad), http.StatusBadRequest, nil)
	var listed struct {
		Sessions []struct {
			Points int `json:"points"`
		} `json:"sessions"`
	}
	doJSON(t, ts, "GET", "/sessions", "", nil, http.StatusOK, &listed)
	if len(listed.Sessions) != 1 || listed.Sessions[0].Points != 2 {
		t.Fatalf("failed upload must roll back to the 2 pre-existing points: %+v", listed.Sessions)
	}
}

// TestServeResourceCaps: the session-count and per-session point limits
// answer 429/413 instead of letting a client grow memory without bound.
func TestServeResourceCaps(t *testing.T) {
	srv := mustServer(t, serverOptions{workers: 1, timeout: 30 * time.Second, csvBatch: 2, maxSessions: 2, maxPoints: 5})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, ts, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	doJSON(t, ts, "POST", "/sessions", "", nil, http.StatusCreated, nil)
	doJSON(t, ts, "POST", "/sessions", "", nil, http.StatusTooManyRequests, nil)
	base := "/sessions/" + created.ID
	doJSON(t, ts, "POST", base+"/points", "application/json", []byte(`{"points":[[1,2],[3,4],[5,6]]}`), http.StatusOK, nil)
	doJSON(t, ts, "POST", base+"/points", "application/json", []byte(`{"points":[[1,2],[3,4],[5,6]]}`), http.StatusRequestEntityTooLarge, nil)
	// The CSV path enforces the same cap mid-stream (classified 413
	// point_limit like the JSON path) and rolls back its own chunks,
	// leaving exactly the pre-existing 3 points.
	doJSON(t, ts, "POST", base+"/points", "text/csv", []byte("1,2\n3,4\n5,6\n7,8\n"), http.StatusRequestEntityTooLarge, nil)
	var listed struct {
		Sessions []struct {
			ID     string `json:"id"`
			Points int    `json:"points"`
		} `json:"sessions"`
	}
	doJSON(t, ts, "GET", "/sessions", "", nil, http.StatusOK, &listed)
	for _, row := range listed.Sessions {
		if row.ID == created.ID && row.Points != 3 {
			t.Fatalf("capped session must keep its 3 points, got %d", row.Points)
		}
	}
}

// TestServeRequestTimeout: the request-scoped deadline rides the request
// context into the engine, so a request that cannot finish in time answers
// 504 deadline_exceeded — and, because the ctx-aware mutation path refuses
// to apply after the deadline, the session is left untouched (a client
// retry cannot duplicate the batch).
func TestServeRequestTimeout(t *testing.T) {
	srv := mustServer(t, serverOptions{workers: 1, timeout: time.Nanosecond})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, ts, "POST", "/v1/sessions", "", nil, http.StatusCreated, &created)
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions/"+created.ID+"/points",
		"application/json", bytes.NewReader([]byte(`{"points":[[1,2],[3,4]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status: got %d, want %d", resp.StatusCode, http.StatusGatewayTimeout)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte("deadline_exceeded")) {
		t.Fatalf("timeout body: %s", body)
	}
}

// TestServeAppendEquivalence streams a dataset over HTTP in many batch
// shapes; the served labels must be bit-identical regardless of batching.
func TestServeAppendEquivalence(t *testing.T) {
	srv := mustServer(t, serverOptions{workers: 1, timeout: 30 * time.Second, csvBatch: 16})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	data := adawave.SyntheticEvaluation(100, 0.3, 11)
	want, err := adawave.Cluster(data.Points, adawave.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []int{13, 77, len(data.Points)} {
		var created struct {
			ID string `json:"id"`
		}
		doJSON(t, ts, "POST", "/sessions", "", nil, http.StatusCreated, &created)
		base := "/sessions/" + created.ID
		for off := 0; off < len(data.Points); off += step {
			end := off + step
			if end > len(data.Points) {
				end = len(data.Points)
			}
			batch, err := json.Marshal(map[string]any{"points": data.Points[off:end]})
			if err != nil {
				t.Fatal(err)
			}
			doJSON(t, ts, "POST", base+"/points", "application/json", batch, http.StatusOK, nil)
		}
		var got struct {
			Labels []int `json:"labels"`
		}
		doJSON(t, ts, "GET", base+"/labels", "", nil, http.StatusOK, &got)
		for i := range want.Labels {
			if got.Labels[i] != want.Labels[i] {
				t.Fatalf("step %d: label %d: got %d, want %d", step, i, got.Labels[i], want.Labels[i])
			}
		}
		doJSON(t, ts, "DELETE", base, "", nil, http.StatusNoContent, nil)
	}
}
