package main

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"adawave/internal/api"
	"adawave/internal/cluster"
	"adawave/internal/core"
	"adawave/internal/persist"
)

// Cluster roles. A standalone node serves alone (the default, and the whole
// story before cluster mode). A primary serves traffic AND exposes the
// replication feed below. A follower runs the replication engine against
// -follower-of, serves only health, metrics, read-only listings and the
// replication endpoints, and becomes a primary when the router POSTs
// promote. The replication feed is pull-based: the follower asks for the
// session list, downloads each session's newest checkpoint, then tails the
// WAL over a long-lived response — the primary keeps no per-follower state,
// so a follower can crash and re-attach with nothing to clean up.
const (
	roleStandalone = "standalone"
	rolePrimary    = "primary"
	roleFollower   = "follower"
)

// walStreamPoll is how long the WAL stream handler naps when the log has no
// new frames; the poll only bounds idle-stream latency (a busy log streams
// back-to-back), so replication lag under load is write-speed, not this.
const walStreamPoll = 25 * time.Millisecond

// validSessionID bounds router-pinned ids to the same shape server-minted
// ids have: path-safe, short, no separators.
func validSessionID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// clusterAuth gates a /v1/replication/ handler behind the shared cluster
// secret: the feed hands out every tenant's full session data and promote
// permanently rewires replication, so with -cluster-secret set no request
// is served without the matching credential. With no secret configured the
// endpoints stay open — a single-trust-domain deployment — which the
// cluster quickstart documents alongside the flag.
func (s *server) clusterAuth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.clusterSecret != "" &&
			subtle.ConstantTimeCompare([]byte(r.Header.Get(api.HeaderClusterSecret)), []byte(s.clusterSecret)) != 1 {
			writeCode(w, http.StatusUnauthorized, api.CodeUnauthorized,
				fmt.Sprintf("missing or wrong %s (this node runs with -cluster-secret)", api.HeaderClusterSecret))
			return
		}
		next(w, r)
	}
}

func (s *server) currentRole() string {
	role, _ := s.role.Load().(string)
	return role
}

func (s *server) isFollower() bool { return s.currentRole() == roleFollower }

// withRole gates the route table by cluster role: a follower accepts
// health, metrics, the replication endpoints and read-only session listings
// (its warm replicas, observable mid-catch-up), and answers 409 not_primary
// to everything else — mutations and label reads belong on the primary
// until a promote flips the role, at which point this middleware stands
// aside without a restart.
func (s *server) withRole(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.isFollower() || followerAllows(r) {
			next.ServeHTTP(w, r)
			return
		}
		writeCode(w, http.StatusConflict, api.CodeNotPrimary,
			"this node is a follower; send mutations and reads to its primary (or the cluster router)")
	})
}

// followerAllows reports whether a follower serves the request itself.
// legacyShim has already normalized pre-v1 paths when this runs.
func followerAllows(r *http.Request) bool {
	p := r.URL.Path
	switch {
	case p == "/healthz", p == "/v1/metrics":
		return true
	case strings.HasPrefix(p, "/v1/replication/"):
		return true
	case r.Method == http.MethodGet && p == "/v1/sessions":
		return true
	case r.Method == http.MethodGet && strings.HasPrefix(p, "/v1/sessions/") &&
		!strings.Contains(strings.TrimPrefix(p, "/v1/sessions/"), "/"):
		// Session detail only — labels/multiresolution subpaths stay on the
		// primary, which has read-your-writes consistency.
		return true
	}
	return false
}

// replicationSessions answers GET /v1/replication/sessions: the durable
// sessions a follower should replicate, each with its config fingerprint
// (so the follower rebuilds an identical engine) and current checkpoint/WAL
// sequences.
func (s *server) replicationSessions(w http.ResponseWriter, r *http.Request) {
	if s.isFollower() {
		writeCode(w, http.StatusConflict, api.CodeNotPrimary, "followers do not serve the replication feed")
		return
	}
	if s.pers == nil {
		writeCode(w, http.StatusConflict, api.CodeConflict, "persistence is disabled (start with -data-dir)")
		return
	}
	rows := make([]api.ReplicationSessionInfo, 0)
	for _, ss := range s.snapshotSessions() {
		if ss.files == nil {
			continue
		}
		points, dim := ss.shape()
		rows = append(rows, api.ReplicationSessionInfo{
			ID: ss.id, Tenant: ss.tenant,
			Config:        core.ConfigFingerprint(ss.cfg),
			CheckpointSeq: ss.files.ckptSeq.Load(),
			WALSeq:        ss.files.wal.Seq(),
			Points:        points, Dim: dim,
		})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].ID < rows[b].ID })
	writeJSON(w, http.StatusOK, api.ReplicationSessionsResponse{Role: s.currentRole(), Sessions: rows})
}

// replicationCheckpoint streams the session's newest checkpoint file, its
// folded-in sequence in a header; 204 (seq 0) when the session has never
// checkpointed — the follower then starts empty and lets the WAL stream
// carry the whole history. The file is served from a plain os.Open: once
// the fd is open, the post-checkpoint sweep unlinking the file cannot hurt
// the transfer. The open itself races the sweep, so a vanished path is
// retried against the then-newest file.
func (s *server) replicationCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.isFollower() {
		writeCode(w, http.StatusConflict, api.CodeNotPrimary, "followers do not serve the replication feed")
		return
	}
	ss := s.lookup(w, r)
	if ss == nil {
		return
	}
	if ss.files == nil {
		writeCode(w, http.StatusConflict, api.CodeConflict, "persistence is disabled (start with -data-dir)")
		return
	}
	for attempt := 0; attempt < 4; attempt++ {
		path, seq, ok := cluster.NewestCheckpoint(ss.files.dir)
		if !ok {
			w.Header().Set(api.HeaderCheckpointSeq, "0")
			w.WriteHeader(http.StatusNoContent)
			return
		}
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			writeCode(w, http.StatusInternalServerError, api.CodeInternal, fmt.Sprintf("checkpoint open: %v", err))
			return
		}
		defer f.Close()
		w.Header().Set(api.HeaderCheckpointSeq, strconv.FormatUint(seq, 10))
		w.Header().Set("Content-Type", "application/octet-stream")
		if fi, err := f.Stat(); err == nil {
			w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
		}
		w.WriteHeader(http.StatusOK)
		if _, err := io.Copy(w, f); err != nil {
			log.Printf("adawave-serve: checkpoint transfer %s: %v", ss.id, err)
		}
		return
	}
	writeCode(w, http.StatusInternalServerError, api.CodeInternal, "checkpoint kept being replaced; retry")
}

// replicationWAL answers GET /v1/replication/sessions/{id}/wal?from=N: a
// long-lived stream of WAL frames with sequence > N, shipped verbatim —
// the follower journals the same bytes it applies, so the two logs are
// byte-identical. The stream reads through a Tailer (its own fd, bounded by
// the WAL's acknowledged size, so it never sees a half-written record) and
// ends cleanly when the log is reset by a checkpoint or a record is torn;
// the follower reconnects from its last applied sequence. A from below the
// newest checkpoint's sequence cannot be served — those frames are gone —
// and answers 409 replication_restart, directing the follower to a full
// checkpoint re-sync.
func (s *server) replicationWAL(w http.ResponseWriter, r *http.Request) {
	if s.isFollower() {
		writeCode(w, http.StatusConflict, api.CodeNotPrimary, "followers do not serve the replication feed")
		return
	}
	ss := s.lookup(w, r)
	if ss == nil {
		return
	}
	if ss.files == nil {
		writeCode(w, http.StatusConflict, api.CodeConflict, "persistence is disabled (start with -data-dir)")
		return
	}
	var from uint64
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeCode(w, http.StatusBadRequest, api.CodeInvalidInput, fmt.Sprintf("bad from %q", v))
			return
		}
		from = n
	}
	if ckpt := ss.files.ckptSeq.Load(); from < ckpt {
		writeCode(w, http.StatusConflict, api.CodeReplicationRestart,
			fmt.Sprintf("frames after seq %d start inside the checkpoint (seq %d); re-sync from the checkpoint", from, ckpt))
		return
	}
	t, err := ss.files.wal.NewTailer(from)
	if err != nil {
		writeCode(w, http.StatusInternalServerError, api.CodeInternal, fmt.Sprintf("wal tail: %v", err))
		return
	}
	defer t.Close()
	w.Header().Set(api.HeaderWALSeq, strconv.FormatUint(ss.files.wal.Seq(), 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	_ = rc.Flush()
	ctx := r.Context()
	for {
		frame, _, err := t.Next()
		switch {
		case err == nil:
			if _, werr := w.Write(frame); werr != nil {
				return // follower went away
			}
		case errors.Is(err, persist.ErrNoFrame):
			// Caught up: push what's buffered and wait for new appends.
			if ferr := rc.Flush(); ferr != nil {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-s.stop:
				return
			case <-time.After(walStreamPoll):
			}
		default:
			// ErrWALReset (a checkpoint folded the log) or a torn record:
			// end the stream cleanly at a frame boundary; the follower
			// reconnects from its applied sequence and either resumes or is
			// told to re-sync.
			_ = rc.Flush()
			return
		}
	}
}

// promoteHandler answers POST /v1/replication/promote: the failover hand-
// over. The replication engine stops, and every warm replica — session
// object, WAL, checkpoint sequence — moves into the serving registry; the
// role flips to primary and the withRole gate opens. The whole promote is
// a map handoff: no checkpoint restore, no WAL replay, which is what makes
// failover warm. Idempotent — repeat calls (a router retrying a lost
// response) answer 200 with nothing new promoted.
func (s *server) promoteHandler(w http.ResponseWriter, r *http.Request) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if !s.isFollower() {
		writeJSON(w, http.StatusOK, api.PromoteResponse{Role: s.currentRole(), Promoted: 0, Sessions: []string{}})
		return
	}
	promoted := s.replica.Promote()
	ids := make([]string, 0, len(promoted))
	var maxID uint64
	s.mu.Lock()
	for _, p := range promoted {
		files := &sessionFiles{dir: p.Disk.Dir, wal: p.Disk.WAL}
		files.ckptSeq.Store(p.Disk.CkptSeq)
		s.sessions[p.ID] = newServeSession(p.ID, p.Tenant, p.Session, files, s.workers)
		ids = append(ids, p.ID)
		if n, err := strconv.ParseUint(strings.TrimPrefix(p.ID, "s"), 10, 64); err == nil && n > maxID {
			maxID = n
		}
	}
	s.mu.Unlock()
	// Server-minted ids on this node must not collide with ones the lost
	// primary handed out.
	for n := s.nextID.Load(); maxID > n && !s.nextID.CompareAndSwap(n, maxID); n = s.nextID.Load() {
	}
	for _, p := range promoted {
		s.gov.AddPoints(p.Tenant, int64(p.Session.Len()))
	}
	s.role.Store(rolePrimary)
	log.Printf("adawave-serve: promoted to primary (%d sessions warm)", len(ids))
	writeJSON(w, http.StatusOK, api.PromoteResponse{Role: rolePrimary, Promoted: len(ids), Sessions: ids})
}

// replicationStatus answers GET /v1/replication/status.
func (s *server) replicationStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.replicationOverview())
}

// replicationOverview renders the node's replication standing: on a
// follower, per-session applied/primary sequences and the lag between them;
// on a primary, each durable session's WAL position (the number a
// follower's lag is measured against).
func (s *server) replicationOverview() *api.ReplicationStatusResponse {
	role := s.currentRole()
	out := &api.ReplicationStatusResponse{
		Role: role, Primary: s.followerOf, Peers: s.peers,
		Sessions: map[string]api.ReplicationStatus{},
	}
	if role == roleFollower && s.replica != nil {
		out.Sessions = s.replica.Status()
		return out
	}
	if role == rolePrimary {
		for _, ss := range s.snapshotSessions() {
			if ss.files == nil {
				continue
			}
			seq := ss.files.wal.Seq()
			out.Sessions[ss.id] = api.ReplicationStatus{Role: rolePrimary, AppliedSeq: seq, PrimarySeq: seq}
		}
	}
	return out
}

// replicaDetail serves GET /v1/sessions/{id} on a follower from the warm
// replica: the standard detail shape plus the replication block, whose lag
// is the promoted-staleness bound an operator watches.
func (s *server) replicaDetail(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, tenant, ok := s.replica.Lookup(id)
	if !ok {
		writeCode(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	detail := api.SessionDetail{
		ID: id, Points: sess.Len(), Dim: sess.Dim(),
		Tenant: tenant, Resident: true, ResidentBytes: sess.ResidentBytes(),
		Durable: true, Embedding: embeddingDTO(sess.Config().Embedding),
	}
	if detail.Points > 0 {
		// The replica applier is the session's one writer; this read is
		// concurrent with it the same way label reads are on a primary.
		cells, err := sess.CellsContext(r.Context())
		if err != nil {
			s.writeReadErr(w, r, err)
			return
		}
		detail.Cells = cells
	}
	if st, ok := s.replica.Status()[id]; ok {
		detail.Replication = &st
	}
	writeJSON(w, http.StatusOK, detail)
}
