package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adawave"
	"adawave/internal/api"
	"adawave/internal/core"
	"adawave/internal/datasets"
	"adawave/internal/grid"
	"adawave/internal/persist"
	"adawave/internal/pointset"
	"adawave/internal/synth"
)

// TestWriteReadErrClassification: the taxonomy-driven read-error mapping —
// empty session is the caller's sequencing (409 no_points), input-shaped
// failures the client can fix are 422 invalid_input, a pipeline aborted by
// the client's own disconnect is the 499 client-abort convention (never a
// 5xx that would page an operator for a hang-up), an expired request
// deadline is 504, a checkpoint/config divergence is 409 config_mismatch,
// and everything else is an internal fault that must answer 500 instead of
// blaming the request.
func TestWriteReadErrClassification(t *testing.T) {
	canceled := func() error {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		return grid.CtxErr(ctx)
	}()
	expired := func() error {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		return grid.CtxErr(ctx)
	}()
	cases := []struct {
		name     string
		err      error
		want     int
		wantCode string
	}{
		{"no-points", grid.ErrNoPoints, http.StatusConflict, api.CodeNoPoints},
		{"wrapped-no-points", fmt.Errorf("read: %w", grid.ErrNoPoints), http.StatusConflict, api.CodeNoPoints},
		{"invalid-input", fmt.Errorf("grid: point 3 has non-finite coordinate NaN in dimension 0: %w", grid.ErrInvalidInput), http.StatusUnprocessableEntity, api.CodeInvalidInput},
		{"wrapped-invalid-input", fmt.Errorf("engine: %w", fmt.Errorf("transform: %w", grid.ErrInvalidInput)), http.StatusUnprocessableEntity, api.CodeInvalidInput},
		{"canceled", canceled, api.StatusClientClosedRequest, api.CodeCanceled},
		{"wrapped-canceled", fmt.Errorf("labels: %w", canceled), api.StatusClientClosedRequest, api.CodeCanceled},
		{"raw-context-canceled", context.Canceled, api.StatusClientClosedRequest, api.CodeCanceled},
		{"deadline", expired, http.StatusGatewayTimeout, api.CodeDeadlineExceeded},
		{"wrapped-deadline", fmt.Errorf("labels: %w", expired), http.StatusGatewayTimeout, api.CodeDeadlineExceeded},
		{"raw-context-deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, api.CodeDeadlineExceeded},
		{"config-mismatch", fmt.Errorf("restore: %w", persist.ErrConfigMismatch), http.StatusConflict, api.CodeConfigMismatch},
		{"internal", errors.New("grid: invariant broken"), http.StatusInternalServerError, api.CodeInternal},
		{"io-fault", io.ErrUnexpectedEOF, http.StatusInternalServerError, api.CodeInternal},
	}
	srv := &server{metrics: newServerMetrics()}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest("GET", "/v1/sessions/s1/labels", nil)
			srv.writeReadErr(rec, req, tc.err)
			if rec.Code != tc.want {
				t.Fatalf("status: got %d, want %d", rec.Code, tc.want)
			}
			var env api.ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("envelope: %v (%s)", err, rec.Body.Bytes())
			}
			if env.Error.Code != tc.wantCode {
				t.Fatalf("code: got %q, want %q", env.Error.Code, tc.wantCode)
			}
		})
	}
}

// TestServeNonFiniteDataIs422: the full-path rendering — a NaN smuggled in
// through CSV (ParseFloat accepts "NaN") fails the read with 422, because
// removing the bad point is the client's fix.
func TestServeNonFiniteDataIs422(t *testing.T) {
	srv := mustServer(t, serverOptions{workers: 1, timeout: 30 * time.Second})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, ts, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	base := "/sessions/" + created.ID
	doJSON(t, ts, "POST", base+"/points", "text/csv", []byte("1,2\nNaN,0.5\n"), http.StatusOK, nil)
	doJSON(t, ts, "GET", base+"/labels", "", nil, http.StatusUnprocessableEntity, nil)
}

// copyDir snapshots a session directory — the on-disk state a crash at this
// instant would leave behind.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// mutation is one recorded step of a random append/remove sequence.
type mutation struct {
	batch   *pointset.Dataset
	indices []int
}

// applyAll replays a mutation prefix into a fresh session — the
// never-crashed reference.
func applyAll(t *testing.T, cfg adawave.Config, muts []mutation) *adawave.Session {
	t.Helper()
	sess, err := adawave.NewSession(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range muts {
		if m.batch != nil {
			err = sess.Append(m.batch)
		} else {
			err = sess.Remove(append([]int(nil), m.indices...))
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return sess
}

func assertLabelsEqual(t *testing.T, want, got *adawave.Session, ctx string) {
	t.Helper()
	if want.Len() == 0 {
		if got.Len() != 0 {
			t.Fatalf("%s: recovered %d points, want 0", ctx, got.Len())
		}
		return
	}
	wl, err := want.Labels()
	if err != nil {
		t.Fatal(err)
	}
	gl, err := got.Labels()
	if err != nil {
		t.Fatalf("%s: recovered labels: %v", ctx, err)
	}
	if len(gl) != len(wl) {
		t.Fatalf("%s: %d labels, want %d", ctx, len(gl), len(wl))
	}
	for i := range wl {
		if gl[i] != wl[i] {
			t.Fatalf("%s: label %d: got %d, want %d", ctx, i, gl[i], wl[i])
		}
	}
}

// TestCrashRecoveryProperty is the crash-point sweep: random append/remove
// splits of the Fig. 2 / Fig. 7 / dermatology fixtures are journaled through
// the production store (with a checkpoint dropped mid-sequence), the on-disk
// state is snapshotted after every WAL record — plus a variant torn mid-way
// through the final record — and every snapshot must recover to labels
// bit-identical to a never-crashed session that applied exactly the
// mutations the snapshot's log holds. Runs under -race in CI.
func TestCrashRecoveryProperty(t *testing.T) {
	derm, err := datasets.ByName("dermatology", 1)
	if err != nil {
		t.Fatal(err)
	}
	dermCfg := adawave.DefaultConfig()
	dermCfg.Scale = 0 // automatic scale: changes as the stream grows
	dermCfg.Basis = adawave.HaarBasis()
	fixtures := []struct {
		name string
		pts  [][]float64
		cfg  adawave.Config
	}{
		{"fig2", synth.RunningExampleSized(400, 1).Points, adawave.DefaultConfig()},
		{"fig7", synth.Evaluation(300, 0.8, 1).Points, adawave.DefaultConfig()},
		{"dermatology", derm.Points, dermCfg},
	}
	for fi, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(fi)*131 + 9))
			ds := pointset.MustFromSlices(fx.pts)
			root := t.TempDir()
			pers, err := openPersistence(filepath.Join(root, "data"), persist.SyncNever)
			if err != nil {
				t.Fatal(err)
			}
			files, err := pers.create("s1", core.ConfigFingerprint(mustConfig(t, fx.cfg)), "")
			if err != nil {
				t.Fatal(err)
			}
			sess, err := adawave.NewSession(fx.cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			ss := newServeSession("s1", "default", sess, files, 1)
			live := pers.sessionDir("s1")

			// Build the random mutation sequence, journaling each step with
			// the production helpers and snapshotting the directory after
			// every record. One random step also takes a full checkpoint, so
			// later snapshots exercise checkpoint + WAL-tail recovery.
			var muts []mutation
			var crashDirs []string
			var walSizes []int64
			snapshot := func() {
				if err := files.wal.Sync(); err != nil {
					t.Fatal(err)
				}
				dir := filepath.Join(root, fmt.Sprintf("crash-%03d", len(crashDirs)))
				copyDir(t, live, dir)
				crashDirs = append(crashDirs, dir)
				walSizes = append(walSizes, files.wal.Size())
			}
			snapshot() // crash before any mutation
			ckptAt := 1 + rng.Intn(6)
			off := 0
			for off < ds.N {
				b := 1 + rng.Intn(ds.N-off)
				if rng.Intn(3) > 0 && ds.N-off > 10 {
					b = 1 + rng.Intn((ds.N-off)/3+1)
				}
				batch := &pointset.Dataset{Data: ds.Data[off*ds.D : (off+b)*ds.D], N: b, D: ds.D}
				if err := sess.Append(batch); err != nil {
					t.Fatal(err)
				}
				if err := ss.journalAppend(batch); err != nil {
					t.Fatal(err)
				}
				muts = append(muts, mutation{batch: batch})
				off += b
				snapshot()
				if rng.Intn(2) == 0 && sess.Len() > 20 {
					nrm := 1 + rng.Intn(sess.Len()/10+1)
					idx := rng.Perm(sess.Len())[:nrm]
					if err := sess.Remove(append([]int(nil), idx...)); err != nil {
						t.Fatal(err)
					}
					if err := ss.journalRemove(idx); err != nil {
						t.Fatal(err)
					}
					muts = append(muts, mutation{indices: idx})
					snapshot()
				}
				if len(muts) == ckptAt {
					if _, err := ss.checkpointLocked(); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Every crash point must recover to the exact mutation prefix.
			for i, dir := range crashDirs {
				recovered, rf, err := loadSessionDir(dir, 1, persist.SyncNever)
				if err != nil {
					t.Fatalf("crash %d: recovery: %v", i, err)
				}
				rf.wal.Close()
				want := applyAll(t, fx.cfg, muts[:i])
				assertLabelsEqual(t, want, recovered, fmt.Sprintf("crash %d", i))
			}

			// Mid-record truncation: tear the last snapshot's final record at
			// a few interior offsets; recovery must fall back to the previous
			// record's state.
			last := len(crashDirs) - 1
			if last > 0 && walSizes[last] > walSizes[last-1]+2 {
				full, err := os.ReadFile(filepath.Join(crashDirs[last], "wal.log"))
				if err != nil {
					t.Fatal(err)
				}
				prev, end := walSizes[last-1], walSizes[last]
				for _, cut := range []int64{prev + 1, (prev + end) / 2, end - 1} {
					dir := filepath.Join(root, fmt.Sprintf("torn-%d", cut))
					copyDir(t, crashDirs[last], dir)
					if err := os.WriteFile(filepath.Join(dir, "wal.log"), full[:cut], 0o644); err != nil {
						t.Fatal(err)
					}
					recovered, rf, err := loadSessionDir(dir, 1, persist.SyncNever)
					if err != nil {
						t.Fatalf("torn at %d: recovery: %v", cut, err)
					}
					rf.wal.Close()
					want := applyAll(t, fx.cfg, muts[:last-1])
					assertLabelsEqual(t, want, recovered, fmt.Sprintf("torn at %d", cut))
				}
			}
		})
	}
}

// mustConfig validates through the facade so the fingerprint sees the same
// resolved configuration a served session would.
func mustConfig(t *testing.T, cfg adawave.Config) adawave.Config {
	t.Helper()
	c, err := adawave.NewClusterer(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c.Config()
}

// TestServeKillRestartE2E is the acceptance gate: an adawave-serve session
// holding ≥ 50k points, mutated mid-flight (appends, removals, a mid-stream
// admin checkpoint), dies without any graceful shutdown; a new process over
// the same data dir must recover it with labels bit-identical to the
// uninterrupted server's.
func TestServeKillRestartE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-point e2e")
	}
	dataDir := filepath.Join(t.TempDir(), "data")
	opts := serverOptions{workers: 2, timeout: 60 * time.Second, dataDir: dataDir, walSync: persist.SyncAlways}
	srv1 := mustServer(t, opts)
	ts1 := httptest.NewServer(srv1.handler())
	defer ts1.Close()

	data := adawave.SyntheticEvaluation(5200, 0.5, 42) // 52k points
	pts := data.Points
	if len(pts) < 50_000 {
		t.Fatalf("fixture has %d points, want ≥ 50k", len(pts))
	}
	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, ts1, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	base := "/sessions/" + created.ID

	post := func(ts *httptest.Server, batch [][]float64) {
		body, err := json.Marshal(map[string]any{"points": batch})
		if err != nil {
			t.Fatal(err)
		}
		doJSON(t, ts, "POST", base+"/points", "application/json", body, http.StatusOK, nil)
	}
	// First 30k, then an admin checkpoint, then the rest + removals in the
	// WAL tail — recovery must compose both.
	post(ts1, pts[:30_000])
	var ckpt struct {
		Seq    uint64 `json:"seq"`
		Points int    `json:"points"`
	}
	doJSON(t, ts1, "POST", base+"/checkpoint", "", nil, http.StatusOK, &ckpt)
	if ckpt.Points != 30_000 {
		t.Fatalf("checkpoint points: %d", ckpt.Points)
	}
	post(ts1, pts[30_000:45_000])
	rm := map[string]any{"indices": []int{0, 17, 300, 29_999, 44_000}}
	rmBody, _ := json.Marshal(rm)
	doJSON(t, ts1, "DELETE", base+"/points", "application/json", rmBody, http.StatusOK, nil)
	post(ts1, pts[45_000:])

	var want struct {
		Labels      []int `json:"labels"`
		NumClusters int   `json:"numClusters"`
	}
	doJSON(t, ts1, "GET", base+"/labels", "", nil, http.StatusOK, &want)
	if len(want.Labels) != len(pts)-5 {
		t.Fatalf("uninterrupted labels: %d, want %d", len(want.Labels), len(pts)-5)
	}

	// Kill: no graceful close, no final checkpoint — the new server sees
	// exactly what a crashed process left on disk.
	srv2 := mustServer(t, opts)
	ts2 := httptest.NewServer(srv2.handler())
	defer ts2.Close()

	var listed struct {
		Sessions []struct {
			ID     string `json:"id"`
			Points int    `json:"points"`
		} `json:"sessions"`
	}
	doJSON(t, ts2, "GET", "/sessions", "", nil, http.StatusOK, &listed)
	if len(listed.Sessions) != 1 || listed.Sessions[0].ID != created.ID || listed.Sessions[0].Points != len(pts)-5 {
		t.Fatalf("recovered registry: %+v", listed.Sessions)
	}
	var got struct {
		Labels      []int `json:"labels"`
		NumClusters int   `json:"numClusters"`
	}
	doJSON(t, ts2, "GET", base+"/labels", "", nil, http.StatusOK, &got)
	if got.NumClusters != want.NumClusters || len(got.Labels) != len(want.Labels) {
		t.Fatalf("recovered: %d clusters / %d labels, want %d / %d", got.NumClusters, len(got.Labels), want.NumClusters, len(want.Labels))
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label %d: got %d, want %d", i, got.Labels[i], want.Labels[i])
		}
	}
	// The recovered session is warm and writable: session ids must not
	// collide with the recovered one, and further mutations keep serving.
	doJSON(t, ts2, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	if created.ID == listed.Sessions[0].ID {
		t.Fatalf("new session id %s collides with the recovered one", created.ID)
	}
	post(ts2, pts[:10])
}

// TestServeCheckpointEndpoint covers the admin surface: disabled without
// -data-dir, 404 on unknown sessions, and a WAL-truncating checkpoint of an
// empty and a populated session.
func TestServeCheckpointEndpoint(t *testing.T) {
	// Without persistence the endpoint is a 409, not a crash.
	srv := mustServer(t, serverOptions{workers: 1, timeout: 30 * time.Second})
	ts := httptest.NewServer(srv.handler())
	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, ts, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	doJSON(t, ts, "POST", "/sessions/"+created.ID+"/checkpoint", "", nil, http.StatusConflict, nil)
	ts.Close()

	dataDir := filepath.Join(t.TempDir(), "data")
	srv = mustServer(t, serverOptions{workers: 1, timeout: 30 * time.Second, dataDir: dataDir, walSync: persist.SyncAlways})
	ts = httptest.NewServer(srv.handler())
	defer ts.Close()
	doJSON(t, ts, "POST", "/sessions/s404/checkpoint", "", nil, http.StatusNotFound, nil)
	doJSON(t, ts, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	base := "/sessions/" + created.ID
	// Checkpointing an empty session works (and is restorable).
	doJSON(t, ts, "POST", base+"/checkpoint", "", nil, http.StatusOK, nil)
	doJSON(t, ts, "POST", base+"/points", "application/json", []byte(`{"points":[[1,2],[3,4],[1,2]]}`), http.StatusOK, nil)
	var ck struct {
		Seq    uint64 `json:"seq"`
		Points int    `json:"points"`
	}
	doJSON(t, ts, "POST", base+"/checkpoint", "", nil, http.StatusOK, &ck)
	if ck.Points != 3 || ck.Seq == 0 {
		t.Fatalf("checkpoint response: %+v", ck)
	}
	// The WAL was truncated; the checkpoint alone must carry the state.
	var files []string
	entries, err := os.ReadDir(filepath.Join(dataDir, "sessions", created.ID))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		files = append(files, e.Name())
	}
	found := false
	for _, f := range files {
		if _, ok := ckptSeqOf(f); ok {
			found = true
		}
	}
	if !found {
		t.Fatalf("no checkpoint file in %v", files)
	}
	srv.Close()

	srv2 := mustServer(t, serverOptions{workers: 1, timeout: 30 * time.Second, dataDir: dataDir, walSync: persist.SyncAlways})
	ts2 := httptest.NewServer(srv2.handler())
	defer ts2.Close()
	var got struct {
		Labels []int `json:"labels"`
	}
	doJSON(t, ts2, "GET", base+"/labels", "", nil, http.StatusOK, &got)
	if len(got.Labels) != 3 {
		t.Fatalf("restored labels: %d, want 3", len(got.Labels))
	}
	// Deleting the session removes its directory.
	doJSON(t, ts2, "DELETE", base, "", nil, http.StatusNoContent, nil)
	if _, err := os.Stat(filepath.Join(dataDir, "sessions", created.ID)); !os.IsNotExist(err) {
		t.Fatalf("session dir must be removed, stat err: %v", err)
	}
}

// TestServeRecoveryEquivalenceCSV: a session fed over both ingestion paths
// (JSON and chunked CSV, including a rolled-back failing upload) recovers
// bit-identically — a CSV upload is journaled as one record only after it
// fully succeeds, so the failed upload leaves nothing in the log and the
// rollback needs no compensating record.
func TestServeRecoveryEquivalenceCSV(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	opts := serverOptions{workers: 1, timeout: 30 * time.Second, csvBatch: 8, dataDir: dataDir, walSync: persist.SyncAlways}
	srv1 := mustServer(t, opts)
	ts1 := httptest.NewServer(srv1.handler())
	defer ts1.Close()

	data := adawave.SyntheticEvaluation(60, 0.4, 4)
	var created struct {
		ID string `json:"id"`
	}
	doJSON(t, ts1, "POST", "/sessions", "", nil, http.StatusCreated, &created)
	base := "/sessions/" + created.ID

	var csvBody bytes.Buffer
	for _, p := range data.Points[:100] {
		fmt.Fprintf(&csvBody, "%v,%v\n", p[0], p[1])
	}
	doJSON(t, ts1, "POST", base+"/points", "text/csv", csvBody.Bytes(), http.StatusOK, nil)
	// A failing upload: three full chunks apply, then a parse error rolls
	// them back; the journal must carry both sides.
	bad := csvBody.String() + "oops,nope\n"
	doJSON(t, ts1, "POST", base+"/points", "text/csv", []byte(bad), http.StatusBadRequest, nil)
	body, _ := json.Marshal(map[string]any{"points": data.Points[100:]})
	doJSON(t, ts1, "POST", base+"/points", "application/json", body, http.StatusOK, nil)

	var want struct {
		Labels []int `json:"labels"`
	}
	doJSON(t, ts1, "GET", base+"/labels", "", nil, http.StatusOK, &want)
	if len(want.Labels) != len(data.Points) {
		t.Fatalf("labels before crash: %d, want %d", len(want.Labels), len(data.Points))
	}

	srv2 := mustServer(t, opts)
	ts2 := httptest.NewServer(srv2.handler())
	defer ts2.Close()
	var got struct {
		Labels []int `json:"labels"`
	}
	doJSON(t, ts2, "GET", base+"/labels", "", nil, http.StatusOK, &got)
	if len(got.Labels) != len(want.Labels) {
		t.Fatalf("recovered labels: %d, want %d", len(got.Labels), len(want.Labels))
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label %d: got %d, want %d", i, got.Labels[i], want.Labels[i])
		}
	}
}
