package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
)

// ridKey keys the request id in the request context.
type ridKey struct{}

// bootID distinguishes this process's generated request ids across restarts.
var bootID = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

var reqCounter atomic.Uint64

// requestIDMiddleware propagates X-Request-Id: an id supplied by the client
// (or an upstream proxy) is honored, otherwise one is generated, and either
// way it is echoed on the response and attached to the request context so
// log lines about this request are correlatable across hops.
func requestIDMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("%s-%d", bootID, reqCounter.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ridKey{}, id)))
	})
}

// requestIDFrom returns the propagated request id, or "-" outside the
// middleware (tests hitting handlers directly).
func requestIDFrom(ctx context.Context) string {
	if id, ok := ctx.Value(ridKey{}).(string); ok {
		return id
	}
	return "-"
}

// legacyShim keeps the pre-v1 unversioned routes alive as deprecated
// aliases: any /sessions... path is rewritten onto /v1/sessions... and
// served by the exact same handler, so the two surfaces cannot drift —
// byte-identical bodies, statuses and semantics. Responses served through
// the shim carry a Deprecation header pointing clients at /v1.
func legacyShim(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p := r.URL.Path; p == "/sessions" || strings.HasPrefix(p, "/sessions/") {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", `</v1`+p+`>; rel="successor-version"`)
			r2 := r.Clone(r.Context())
			r2.URL.Path = "/v1" + p
			next.ServeHTTP(w, r2)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withDeadline bounds every request by the -timeout request-scoped deadline
// via the request context — the ctx-aware pipeline aborts compute at the
// next shard boundary, frees the worker, and the handler answers 504
// (deadline_exceeded). This replaces http.TimeoutHandler, which buffered
// whole responses (breaking NDJSON streaming) and left the abandoned
// handler burning CPU after its 503.
func (s *server) withDeadline(next http.Handler) http.Handler {
	if s.timeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Replication streams are long-lived by design (a follower tails
		// the WAL for the life of the connection); the request deadline
		// would sever them every -timeout and force pointless reconnects.
		if strings.HasPrefix(r.URL.Path, "/v1/replication/") {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// bodyCap caps every request body so one oversized POST cannot exhaust
// memory; a breach surfaces as a MaxBytesError on the handler's read path
// and is classified 413 too_large.
func (s *server) bodyCap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		next.ServeHTTP(w, r)
	})
}
