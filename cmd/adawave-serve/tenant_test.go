package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"adawave"
	"adawave/client"
	"adawave/internal/persist"
	"adawave/internal/sched"
)

func TestParseTenants(t *testing.T) {
	if m, err := parseTenants(""); err != nil || m != nil {
		t.Fatalf("empty spec: %v, %v", m, err)
	}
	m, err := parseTenants("k1=alice, k2=bob,k3=bob")
	if err != nil || len(m) != 3 || m["k1"] != "alice" || m["k2"] != "bob" || m["k3"] != "bob" {
		t.Fatalf("spec: %v, %v", m, err)
	}
	for _, bad := range []string{"k1=alice,k1=bob", "nope", "k1=", "=alice"} {
		if _, err := parseTenants(bad); err == nil {
			t.Fatalf("spec %q must be rejected", bad)
		}
	}
}

// keyedJSON issues one request with an optional X-API-Key and returns status,
// body, and headers — the raw-wire view the typed client abstracts away.
func keyedJSON(t *testing.T, ts *httptest.Server, method, path, key, body string) (int, string, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw), resp.Header
}

// TestServeTenantKeysAndUsage: API keys resolve to tenants, unknown keys are
// refused, session DTOs carry the tenant, keyless requests fall into the
// default tenant, and GET /v1/tenants/{id}/usage reports per-tenant standing
// through the typed client.
func TestServeTenantKeysAndUsage(t *testing.T) {
	srv := mustServer(t, serverOptions{
		workers: 1, timeout: 30 * time.Second,
		tenants: map[string]string{"ka": "alice", "kb": "bob"},
		quota:   sched.Quota{MaxPoints: 10_000},
	})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	ctx := context.Background()

	// An unknown key is refused outright — not silently demoted to default.
	if code, body, _ := keyedJSON(t, ts, "GET", "/v1/sessions", "k-wrong", ""); code != http.StatusForbidden {
		t.Fatalf("unknown key: %d %s", code, body)
	}

	alice := client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithAPIKey("ka"))
	id, err := alice.CreateSession(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := adawave.SyntheticEvaluation(100, 0.5, 3)
	if _, err := alice.Append(ctx, id, data.Points); err != nil {
		t.Fatal(err)
	}
	detail, err := alice.Session(ctx, id)
	if err != nil || detail.Tenant != "alice" || !detail.Resident || detail.ResidentBytes <= 0 {
		t.Fatalf("detail: %+v, %v", detail, err)
	}
	list, err := alice.ListSessions(ctx)
	if err != nil || len(list) != 1 || list[0].Tenant != "alice" || !list[0].Resident {
		t.Fatalf("list: %+v, %v", list, err)
	}

	u, err := alice.Usage(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if u.Tenant != "alice" || u.Points != int64(len(data.Points)) || u.Sessions != 1 || u.ResidentSessions != 1 ||
		u.ResidentBytes <= 0 || u.Quota.MaxPoints != 10_000 || u.QPS <= 0 {
		t.Fatalf("alice usage: %+v", u)
	}
	if ub, err := alice.Usage(ctx, "bob"); err != nil || ub.Points != 0 || ub.Sessions != 0 {
		t.Fatalf("bob usage: %+v, %v", ub, err)
	}

	// A keyless request is served under the default tenant; its sessions are
	// invisible to (and do not count against) the named tenants.
	keyless := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	id2, err := keyless.CreateSession(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d2, err := keyless.Session(ctx, id2); err != nil || d2.Tenant != sched.DefaultTenant {
		t.Fatalf("keyless detail: %+v, %v", d2, err)
	}
	if u, err := keyless.Usage(ctx, "alice"); err != nil || u.Sessions != 1 {
		t.Fatalf("alice usage after keyless create: %+v, %v", u, err)
	}
}

// TestServeQuotaPoints429: an append that would breach the tenant's points
// quota is refused with 429 resource_exhausted, a Retry-After header, and the
// machine-readable standing in details — and nothing is committed, so the
// rejected batch can be resent after shrinking or cleanup.
func TestServeQuotaPoints429(t *testing.T) {
	data := adawave.SyntheticEvaluation(100, 0.5, 3)
	n := int64(len(data.Points))
	maxPoints := n + n/2 // one batch fits, a second breaches
	srv := mustServer(t, serverOptions{
		workers: 1, timeout: 30 * time.Second,
		tenants: map[string]string{"ka": "alice"},
		quota:   sched.Quota{MaxPoints: maxPoints},
	})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	ctx := context.Background()

	alice := client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithAPIKey("ka"))
	id, err := alice.CreateSession(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Append(ctx, id, data.Points); err != nil {
		t.Fatal(err)
	}
	_, err = alice.Append(ctx, id, data.Points) // n + n > n + n/2
	if err == nil {
		t.Fatal("over-quota append must be refused")
	}
	if !errors.Is(err, adawave.ErrResourceExhausted) {
		t.Fatalf("over-quota append: %v must match adawave.ErrResourceExhausted", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("over-quota append: %v (want 429)", err)
	}
	if apiErr.RetryAfter < time.Second {
		t.Fatalf("429 must carry a Retry-After hint, got %v", apiErr.RetryAfter)
	}
	if apiErr.Details["quota"] != "points" || apiErr.Details["tenant"] != "alice" ||
		apiErr.Details["limit"] != float64(maxPoints) {
		t.Fatalf("429 details: %+v", apiErr.Details)
	}
	// Nothing committed: the session and the governor both still hold the
	// first batch only.
	if d, err := alice.Session(ctx, id); err != nil || int64(d.Points) != n {
		t.Fatalf("session after rejected append: %+v, %v", d, err)
	}
	if u, err := alice.Usage(ctx, "alice"); err != nil || u.Points != n {
		t.Fatalf("usage after rejected append: %+v, %v", u, err)
	}
}

// TestServeQPSAdmission: the sliding-window request-rate quota rejects at
// admission with the backpressure contract, while /healthz stays exempt so
// liveness probing never flaps under a rate-limited tenant.
func TestServeQPSAdmission(t *testing.T) {
	srv := mustServer(t, serverOptions{
		workers: 1, timeout: 30 * time.Second,
		tenants: map[string]string{"kr": "rate"},
	})
	srv.gov.SetQuota("rate", sched.Quota{MaxQPS: 0.5}) // 5 requests per 10s window
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		if code, body, _ := keyedJSON(t, ts, "GET", "/v1/sessions", "kr", ""); code != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, code, body)
		}
	}
	code, body, hdr := keyedJSON(t, ts, "GET", "/v1/sessions", "kr", "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("6th request: %d %s (want 429)", code, body)
	}
	if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After header: %q", hdr.Get("Retry-After"))
	}
	var env struct {
		Error struct {
			Code    string         `json:"code"`
			Details map[string]any `json:"details"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("429 body: %s", body)
	}
	if env.Error.Code != "resource_exhausted" || env.Error.Details["quota"] != "qps" {
		t.Fatalf("429 envelope: %s", body)
	}
	// Liveness stays green for the throttled tenant.
	if code, body, _ := keyedJSON(t, ts, "GET", "/healthz", "kr", ""); code != http.StatusOK {
		t.Fatalf("healthz under throttle: %d %s", code, body)
	}
}

// TestServeClientRetryTransparent: the typed client configured WithRetry
// honors the 429's Retry-After hint and transparently resends, so a caller
// sees one successful Labels() even though the first attempt was refused by
// the concurrent-folds quota.
func TestServeClientRetryTransparent(t *testing.T) {
	srv := mustServer(t, serverOptions{
		workers: 1, timeout: 30 * time.Second,
		quota: sched.Quota{MaxConcurrentFolds: 1},
	})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	ctx := context.Background()

	plain := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	id, err := plain.CreateSession(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := adawave.SyntheticEvaluation(80, 0.5, 3)
	if _, err := plain.Append(ctx, id, data.Points); err != nil {
		t.Fatal(err)
	}
	want, err := adawave.Cluster(data.Points, adawave.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the default tenant's single fold slot, impersonating an
	// in-flight compute pass.
	release, qe := srv.gov.AcquireFold(sched.DefaultTenant)
	if qe != nil {
		t.Fatal(qe)
	}
	// Without retries the rejection surfaces typed.
	if _, err := plain.Labels(ctx, id); !errors.Is(err, adawave.ErrResourceExhausted) {
		release()
		t.Fatalf("labels under fold quota: %v must match adawave.ErrResourceExhausted", err)
	}
	// With retries the client backs off per the hint and succeeds once the
	// slot frees.
	go func() {
		time.Sleep(300 * time.Millisecond)
		release()
	}()
	retrying := client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithRetry(3))
	t0 := time.Now()
	res, err := retrying.Labels(ctx, id)
	if err != nil {
		t.Fatalf("retrying labels: %v", err)
	}
	if waited := time.Since(t0); waited < 500*time.Millisecond {
		t.Fatalf("retry succeeded after %v — it cannot have honored the 1s Retry-After hint", waited)
	}
	for i := range want.Labels {
		if res.Labels[i] != want.Labels[i] {
			t.Fatalf("label %d after retry: got %d, want %d", i, res.Labels[i], want.Labels[i])
		}
	}
}

// TestServeEvictRehydrateConcurrent is the property test: with a residency
// budget of one, two sessions ping-pong between resident and evicted while
// eight concurrent readers hammer both; every read must return labels
// bit-identical to the in-process library, every time, under -race.
func TestServeEvictRehydrateConcurrent(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	srv := mustServer(t, serverOptions{
		workers: 2, timeout: 30 * time.Second,
		dataDir: dataDir, walSync: persist.SyncAlways,
		maxResident: 1,
	})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	ctx := context.Background()
	cl := client.New(ts.URL, client.WithHTTPClient(ts.Client()))

	mkSession := func(n int, seed int64) (string, *adawave.Result, int) {
		data := adawave.SyntheticEvaluation(n, 0.5, seed)
		id, err := cl.CreateSession(ctx, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Append(ctx, id, data.Points); err != nil {
			t.Fatal(err)
		}
		want, err := adawave.Cluster(data.Points, adawave.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return id, want, len(data.Points)
	}
	id1, want1, pts1 := mkSession(300, 3)
	id2, want2, pts2 := mkSession(260, 7)

	// The budget of one forced an eviction; the list reports both shapes from
	// the cache without rehydrating either.
	list, err := cl.ListSessions(ctx)
	if err != nil || len(list) != 2 {
		t.Fatalf("list: %+v, %v", list, err)
	}
	resident := 0
	for _, row := range list {
		if row.Resident {
			resident++
		}
		wantPoints := map[string]int{id1: pts1, id2: pts2}[row.ID]
		if row.Points != wantPoints {
			t.Fatalf("evicted session %s must list its cached shape: got %d points, want %d", row.ID, row.Points, wantPoints)
		}
	}
	if resident != 1 {
		t.Fatalf("resident sessions after create burst: %d, want 1", resident)
	}

	// Eight readers, half per session, each forcing rehydrations that evict
	// the other session — the labels must be bit-identical on every read.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 8; r++ {
		id, want := id1, want1
		if r%2 == 1 {
			id, want = id2, want2
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := cl.Labels(ctx, id)
				if err != nil {
					errs <- fmt.Errorf("labels %s: %w", id, err)
					return
				}
				if res.NumClusters != want.NumClusters || len(res.Labels) != len(want.Labels) {
					errs <- fmt.Errorf("session %s: %d clusters / %d labels, want %d / %d",
						id, res.NumClusters, len(res.Labels), want.NumClusters, len(want.Labels))
					return
				}
				for j := range want.Labels {
					if res.Labels[j] != want.Labels[j] {
						errs <- fmt.Errorf("session %s read %d: label %d diverged after rehydrate: got %d, want %d",
							id, i, j, res.Labels[j], want.Labels[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced, the budget holds again.
	srv.enforceResidency()
	list, err = cl.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	resident = 0
	for _, row := range list {
		if row.Resident {
			resident++
		}
	}
	if resident > 1 {
		t.Fatalf("resident sessions after quiesce: %d, want ≤ 1", resident)
	}
}

// TestServeEightTenantBurst is the acceptance e2e of the governance stack:
// eight tenants burst concurrently — one with a 10× oversized session — under
// a per-tenant concurrent-folds quota and a residency budget smaller than the
// tenant count. Every tenant's reads succeed (transparently retrying through
// the typed client when quota-refused), the labels stay bit-identical to the
// in-process library across the evict/rehydrate churn, and the raw 429s carry
// the Retry-After contract.
func TestServeEightTenantBurst(t *testing.T) {
	const tenants = 8
	keys := make(map[string]string, tenants)
	for i := 0; i < tenants; i++ {
		keys[fmt.Sprintf("k%d", i)] = fmt.Sprintf("t%d", i)
	}
	dataDir := filepath.Join(t.TempDir(), "data")
	srv := mustServer(t, serverOptions{
		workers: 2, timeout: 30 * time.Second,
		tenants: keys,
		quota:   sched.Quota{MaxConcurrentFolds: 1},
		dataDir: dataDir, walSync: persist.SyncAlways,
		maxResident: 3,
	})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	ctx := context.Background()

	type tenantState struct {
		cl     *client.Client
		id     string
		want   *adawave.Result
		points int
	}
	states := make([]tenantState, tenants)
	for i := range states {
		n := 100
		if i == 0 {
			n = 1000 // the oversized tenant
		}
		data := adawave.SyntheticEvaluation(n, 0.5, int64(i+1))
		cl := client.New(ts.URL, client.WithHTTPClient(ts.Client()),
			client.WithAPIKey(fmt.Sprintf("k%d", i)), client.WithRetry(6))
		id, err := cl.CreateSession(ctx, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Append(ctx, id, data.Points); err != nil {
			t.Fatal(err)
		}
		want, err := adawave.Cluster(data.Points, adawave.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		states[i] = tenantState{cl: cl, id: id, want: want, points: len(data.Points)}
	}

	// Raw 429 check inside the contended setup: with t3's only fold slot
	// held, its labels read is refused with the full backpressure contract.
	release, qe := srv.gov.AcquireFold("t3")
	if qe != nil {
		t.Fatal(qe)
	}
	code, body, hdr := keyedJSON(t, ts, "GET", "/v1/sessions/"+states[3].id+"/labels", "k3", "")
	release()
	if code != http.StatusTooManyRequests {
		t.Fatalf("held fold slot: %d %s (want 429)", code, body)
	}
	if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After header: %q", hdr.Get("Retry-After"))
	}

	// The burst: two concurrent readers per tenant against a fold quota of
	// one, so intra-tenant contention produces real 429s the retrying client
	// must absorb — while the residency budget of three keeps evicting and
	// rehydrating sessions underneath.
	var wg sync.WaitGroup
	errs := make(chan error, tenants*2)
	for i := range states {
		st := states[i]
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for iter := 0; iter < 2; iter++ {
					res, err := st.cl.Labels(ctx, st.id)
					if err != nil {
						errs <- fmt.Errorf("tenant session %s: %w", st.id, err)
						return
					}
					for j := range st.want.Labels {
						if res.Labels[j] != st.want.Labels[j] {
							errs <- fmt.Errorf("session %s: label %d diverged under burst: got %d, want %d",
								st.id, j, res.Labels[j], st.want.Labels[j])
							return
						}
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The oversized tenant's accounting survived the churn, and the resident
	// set fits the budget once quiesced.
	if u, err := states[0].cl.Usage(ctx, "t0"); err != nil || u.Points != int64(states[0].points) || u.Sessions != 1 {
		t.Fatalf("t0 usage: %+v, %v", u, err)
	}
	srv.enforceResidency()
	resident := 0
	for _, ss := range srv.snapshotSessions() {
		if ss.resident() {
			resident++
		}
	}
	if resident > 3 {
		t.Fatalf("resident sessions after quiesce: %d, want ≤ 3", resident)
	}
}
