package main

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"adawave/internal/api"
)

// Per-route request counters and latency aggregates, exposed at
// GET /v1/metrics as expvar-style JSON (no external metrics dependency).
// Routes are registered statically when the handler table is built, so the
// request path is lock-free: four atomic adds per request.

// routeStats is one route's counters. Errors counts 5xx responses only;
// ClientAborts counts 499s — a disconnect-aborted pipeline is the client
// hanging up, not a server fault, and keeping the two apart is what makes
// the abort observable without polluting the error rate.
type routeStats struct {
	requests     atomic.Int64
	errors       atomic.Int64
	clientAborts atomic.Int64
	totalNanos   atomic.Int64
	maxNanos     atomic.Int64
}

// serverMetrics is the registry. The map is written only during route
// registration (before the server accepts traffic) and read-only afterwards.
type serverMetrics struct {
	start  time.Time
	mu     sync.Mutex
	routes map[string]*routeStats
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{start: time.Now(), routes: make(map[string]*routeStats)}
}

// register returns the stats cell for a route name, creating it on first
// use (registration happens once, at handler-table build time).
func (m *serverMetrics) register(route string) *routeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.routes[route]
	if st == nil {
		st = &routeStats{}
		m.routes[route] = st
	}
	return st
}

// snapshot renders the registry as the wire DTO.
func (m *serverMetrics) snapshot() api.MetricsResponse {
	out := api.MetricsResponse{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Routes:        make(map[string]api.RouteMetrics, len(m.routes)),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, st := range m.routes {
		out.Routes[name] = api.RouteMetrics{
			Requests:     st.requests.Load(),
			Errors:       st.errors.Load(),
			ClientAborts: st.clientAborts.Load(),
			TotalMs:      float64(st.totalNanos.Load()) / 1e6,
			MaxMs:        float64(st.maxNanos.Load()) / 1e6,
		}
	}
	return out
}

// statusRecorder captures the response status for the metrics counters.
// Unwrap lets http.ResponseController reach the underlying writer, so the
// NDJSON streaming handler's per-chunk Flush works through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code, r.wrote = code, true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps a handler with the per-route counters: request count,
// 5xx count, 499 client-abort count, total and max latency.
func (s *server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	st := s.metrics.register(route)
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		h(rec, r)
		elapsed := time.Since(t0).Nanoseconds()
		st.requests.Add(1)
		st.totalNanos.Add(elapsed)
		for {
			cur := st.maxNanos.Load()
			if elapsed <= cur || st.maxNanos.CompareAndSwap(cur, elapsed) {
				break
			}
		}
		switch {
		case rec.code >= http.StatusInternalServerError:
			st.errors.Add(1)
		case rec.code == api.StatusClientClosedRequest:
			st.clientAborts.Add(1)
		}
	}
}

// metricsHandler answers GET /v1/metrics. Nodes running with a cluster
// role also report their replication standing (per-session lag on a
// follower), so one metrics scrape observes both traffic and replication.
func (s *server) metricsHandler(w http.ResponseWriter, r *http.Request) {
	resp := s.metrics.snapshot()
	if role := s.currentRole(); role != roleStandalone {
		resp.Replication = s.replicationOverview()
	}
	writeJSON(w, http.StatusOK, resp)
}
