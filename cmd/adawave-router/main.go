// Command adawave-router is the cluster front door for adawave-serve
// nodes: it places sessions onto shards with a consistent-hash ring,
// proxies /v1 traffic to each session's active node, and drives failover —
// when a shard's primary stops answering, requests get 503 + Retry-After
// while the router promotes the follower, then traffic resumes against the
// promoted node with labels bit-identical to the lost primary's.
//
// Usage:
//
//	adawave-router -peers http://a:8321=http://a2:8321,http://b:8321=http://b2:8321
//	               [-addr :8320] [-vnodes 128] [-probe-interval 500ms]
//	               [-probe-timeout 2s] [-fail-threshold 2] [-retry-after 1s]
//	               [-shutdown-timeout 10s] [-cluster-secret SECRET]
//
// Each -peers entry is one shard as primary=follower base URLs (a bare URL
// is a shard with no follower, and no failover). The router itself is
// stateless: everything it knows is rebuilt from -peers at boot, so routers
// can be restarted or load-balanced freely.
//
// Endpoints beyond the proxied /v1 surface:
//
//	GET /healthz            router liveness
//	GET /v1/cluster/status  per-shard placement and failover state
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adawave/internal/cluster"
)

func main() {
	var (
		addr            = flag.String("addr", ":8320", "listen address")
		peers           = flag.String("peers", "", "comma-separated primary=follower base-URL pairs, one per shard (required)")
		vnodes          = flag.Int("vnodes", 128, "virtual nodes per shard on the placement ring")
		probeInterval   = flag.Duration("probe-interval", 500*time.Millisecond, "liveness probe cadence")
		probeTimeout    = flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
		failThreshold   = flag.Int("fail-threshold", 2, "consecutive probe misses before a failover starts")
		retryAfter      = flag.Duration("retry-after", time.Second, "Retry-After advertised while a failover is in flight")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for draining in-flight requests on SIGINT/SIGTERM")
		clusterSecret   = flag.String("cluster-secret", "", "shared secret sent on promote calls to nodes running with the same -cluster-secret")
	)
	flag.Parse()

	shards, err := cluster.ParseShards(*peers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adawave-router: %v\n", err)
		os.Exit(2)
	}
	router, err := cluster.NewRouter(cluster.RouterOptions{
		Shards:        shards,
		VNodes:        *vnodes,
		Client:        &http.Client{Timeout: *probeTimeout},
		ProbeInterval: *probeInterval,
		FailThreshold: *failThreshold,
		RetryAfter:    *retryAfter,
		ClusterSecret: *clusterSecret,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "adawave-router: %v\n", err)
		os.Exit(2)
	}
	router.Start()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           router.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("adawave-router listening on %s (%d shards, probe every %s, fail threshold %d)",
		*addr, len(shards), *probeInterval, *failThreshold)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			router.Stop()
			fmt.Fprintf(os.Stderr, "adawave-router: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		log.Printf("adawave-router: draining (up to %s)", *shutdownTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("adawave-router: forced close: %v", err)
			hs.Close()
		}
	}
	router.Stop()
}
