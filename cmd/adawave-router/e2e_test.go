package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"adawave"
	"adawave/client"
	"adawave/internal/api"
)

// TestClusterFailoverE2E is the real-process failover drill: two
// adawave-serve nodes (primary + follower) and one adawave-router, a 50k-
// point ingest through the router, then SIGKILL on the primary. The router
// must bridge the failover window (503 + Retry-After, absorbed by the
// client's idempotent retry) and the promoted follower must serve labels
// bit-identical to the lost primary's, all inside a hard deadline.
//
// Gated behind ADAWAVE_E2E=1: it builds and runs real binaries, which has
// no place in the ordinary unit-test sweep.
func TestClusterFailoverE2E(t *testing.T) {
	if os.Getenv("ADAWAVE_E2E") == "" {
		t.Skip("set ADAWAVE_E2E=1 to run the multi-process failover drill")
	}

	bin := t.TempDir()
	for _, target := range []string{"adawave-serve", "adawave-router"} {
		build := exec.Command("go", "build", "-o", filepath.Join(bin, target), "./cmd/"+target)
		build.Dir = "../.."
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", target, err, out)
		}
	}

	primaryAddr, followerAddr, routerAddr := freeAddr(t), freeAddr(t), freeAddr(t)
	primaryURL := "http://" + primaryAddr
	followerURL := "http://" + followerAddr
	routerURL := "http://" + routerAddr

	primary := startProc(t, filepath.Join(bin, "adawave-serve"),
		"-addr", primaryAddr, "-role", "primary",
		"-data-dir", filepath.Join(t.TempDir(), "data"), "-wal-sync", "never")
	startProc(t, filepath.Join(bin, "adawave-serve"),
		"-addr", followerAddr, "-role", "follower", "-follower-of", primaryURL,
		"-data-dir", filepath.Join(t.TempDir(), "data"), "-wal-sync", "never")
	startProc(t, filepath.Join(bin, "adawave-router"),
		"-addr", routerAddr, "-peers", primaryURL+"="+followerURL,
		"-probe-interval", "200ms", "-probe-timeout", "1s",
		"-fail-threshold", "2", "-retry-after", "1s")
	for _, u := range []string{primaryURL, followerURL, routerURL} {
		waitHealthz(t, u)
	}

	ctx := context.Background()
	cl := client.New(routerURL, client.WithRetry(8))
	id, err := cl.CreateSession(ctx, nil)
	if err != nil {
		t.Fatalf("create through router: %v", err)
	}

	data := adawave.SyntheticEvaluation(5000, 0.5, 42)
	pts := data.Points
	if len(pts) < 50_000 {
		t.Fatalf("fixture has %d points, want ≥ 50k", len(pts))
	}
	for off := 0; off < len(pts); off += 10_000 {
		end := off + 10_000
		if end > len(pts) {
			end = len(pts)
		}
		if _, err := cl.Append(ctx, id, pts[off:end]); err != nil {
			t.Fatalf("append [%d:%d] through router: %v", off, end, err)
		}
	}
	want, err := cl.Labels(ctx, id)
	if err != nil {
		t.Fatalf("labels before kill: %v", err)
	}
	if len(want.Labels) != len(pts) {
		t.Fatalf("labels before kill: %d, want %d", len(want.Labels), len(pts))
	}

	// The follower must hold everything before the primary is allowed to die
	// — a kill mid-catch-up tests the follower's journal, not failover.
	waitLagZero(t, followerURL, id, primarySeq(t, primaryURL, id))

	if err := primary.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}

	// Hard deadline for the whole failover: detection (2 × 200ms probes),
	// promotion, and the first successful read through the router.
	deadline := time.Now().Add(30 * time.Second)
	var got *api.Result
	for {
		got, err = cl.Labels(ctx, id)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never recovered label service: %v", err)
		}
		time.Sleep(200 * time.Millisecond)
	}
	if got.NumClusters != want.NumClusters || len(got.Labels) != len(want.Labels) {
		t.Fatalf("promoted: %d clusters / %d labels, want %d / %d",
			got.NumClusters, len(got.Labels), want.NumClusters, len(want.Labels))
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label %d: got %d, want %d", i, got.Labels[i], want.Labels[i])
		}
	}

	// The router's own account of the shard must agree: promoted, traffic on
	// the follower.
	resp, err := http.Get(routerURL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status api.RouterStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status.Shards) != 1 || status.Shards[0].State != "promoted" || status.Shards[0].Active != followerURL {
		t.Fatalf("router shard status: %+v", status.Shards)
	}

	// And the promoted node keeps taking writes.
	if _, err := cl.Append(ctx, id, pts[:100]); err != nil {
		t.Fatalf("append after failover: %v", err)
	}
}

// freeAddr reserves a loopback port and releases it for the process about
// to bind it.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func startProc(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

func waitHealthz(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", base)
}

// primarySeq reads the primary's durable WAL position for the session from
// its replication feed.
func primarySeq(t *testing.T, primaryURL, id string) uint64 {
	t.Helper()
	resp, err := http.Get(primaryURL + "/v1/replication/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list api.ReplicationSessionsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	for _, row := range list.Sessions {
		if row.ID == id {
			return row.WALSeq
		}
	}
	t.Fatalf("session %s not in primary replication feed: %+v", id, list.Sessions)
	return 0
}

// waitLagZero polls the follower's replication status until the session is
// fully applied (lag 0 at or past wantSeq) with a live stream.
func waitLagZero(t *testing.T, followerURL, id string, wantSeq uint64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var last api.ReplicationStatusResponse
	for time.Now().Before(deadline) {
		if resp, err := http.Get(followerURL + "/v1/replication/status"); err == nil {
			err := json.NewDecoder(resp.Body).Decode(&last)
			resp.Body.Close()
			if err == nil {
				if st, ok := last.Sessions[id]; ok && st.Lag == 0 && st.AppliedSeq >= wantSeq && st.Connected {
					return
				}
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("follower never caught up: %s", describe(last.Sessions[id]))
}

func describe(st api.ReplicationStatus) string {
	return fmt.Sprintf("applied %d / primary %d (lag %d, connected %v, lastError %q)",
		st.AppliedSeq, st.PrimarySeq, st.Lag, st.Connected, st.LastError)
}
