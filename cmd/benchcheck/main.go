// Command benchcheck compares two `go test -bench -json` snapshots and fails
// loudly when a benchmark regressed beyond an acceptance factor — the
// regression gate behind `make bench-json`, so a perf cliff lands as a red
// build instead of a silent drift in the committed BENCH_*.json trajectory.
//
//	benchcheck -old BENCH_5.json -new BENCH_6.json -factor 2
//
// Three units are gated per benchmark, each against the same factor: ns/op,
// and (when the snapshot was taken with -benchmem) B/op and allocs/op — a
// memory cliff is as much a regression as a time cliff. A unit with a zero
// baseline is skipped (nothing meaningful to ratio against), as is a unit
// absent from either snapshot. Every compared series prints one line — OK
// with the percentage delta, or REGRESSION with the ratio — so a passing run
// doubles as the review summary for a committed snapshot.
//
// Only benchmarks present in both snapshots are gated; benchmarks new in the
// current snapshot (no baseline yet) and ones retired from it are listed
// informationally. A snapshot of entirely new benchmarks passes with a
// warning — opening a new measurement axis must not fail the gate. The
// inputs are test2json streams: benchmark results ride on "output" actions
// as the standard testing.B result lines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// gatedUnits are the value/unit pairs of a testing.B result line the gate
// compares, in report order.
var gatedUnits = []string{"ns/op", "B/op", "allocs/op"}

// parse extracts name → unit → value from a test2json bench snapshot.
// test2json attributes a benchmark's result line (iterations, then
// value/unit pairs) to the bench via the Test field, so sub-benchmarks keep
// their full path and like compares with like.
func parse(path string) (map[string]map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gated := make(map[string]bool, len(gatedUnits))
	for _, u := range gatedUnits {
		gated[u] = true
	}
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // interleaved non-JSON noise is not this tool's problem
		}
		if ev.Action != "output" || !strings.HasPrefix(ev.Test, "Benchmark") {
			continue
		}
		fields := strings.Fields(ev.Output)
		// test2json sometimes delivers the name and the result as one
		// output event ("BenchmarkFoo \t 100\t 123 ns/op ...") and
		// sometimes as two (the name announcement, then the bare result
		// line) — a buffering accident, not a format guarantee. Strip the
		// name so both shapes parse; otherwise live benchmarks flicker in
		// and out of the gate between runs.
		if len(fields) > 0 && strings.HasPrefix(fields[0], "Benchmark") {
			fields = fields[1:]
		}
		// iterations  value unit  [value unit ...]
		for i := 1; i+1 < len(fields); i += 2 {
			if !gated[fields[i+1]] {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if out[ev.Test] == nil {
				out[ev.Test] = make(map[string]float64, len(gatedUnits))
			}
			out[ev.Test][fields[i+1]] = v
		}
	}
	return out, sc.Err()
}

func main() {
	oldPath := flag.String("old", "", "baseline bench snapshot (test2json)")
	newPath := flag.String("new", "", "current bench snapshot (test2json)")
	factor := flag.Float64("factor", 2, "fail when current ns/op, B/op or allocs/op exceeds baseline by this factor")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -old and -new are required")
		os.Exit(2)
	}
	oldRes, err := parse(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	newRes, err := parse(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	names := make([]string, 0, len(newRes))
	added := make([]string, 0)
	for name := range newRes {
		if _, ok := oldRes[name]; ok {
			names = append(names, name)
		} else {
			added = append(added, name)
		}
	}
	retired := make([]string, 0)
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			retired = append(retired, name)
		}
	}
	sort.Strings(names)
	sort.Strings(added)
	sort.Strings(retired)
	for _, name := range added {
		fmt.Printf("NEW        %-60s %12.0f ns/op (no baseline, not gated)\n", name, newRes[name]["ns/op"])
	}
	for _, name := range retired {
		fmt.Printf("RETIRED    %-60s %12.0f ns/op (absent from current snapshot)\n", name, oldRes[name]["ns/op"])
	}
	if len(names) == 0 {
		if len(added) > 0 {
			// A snapshot of entirely new benchmarks (a fresh axis, like the
			// scale benches) has nothing to gate yet — warn, don't fail.
			fmt.Printf("benchcheck: no common benchmarks; %d new, nothing to gate\n", len(added))
			return
		}
		if len(retired) > 0 {
			fmt.Fprintln(os.Stderr, "benchcheck: current snapshot has no benchmarks")
		} else {
			fmt.Fprintln(os.Stderr, "benchcheck: no benchmarks in either snapshot")
		}
		os.Exit(2)
	}
	var compared, failed int
	for _, name := range names {
		for _, unit := range gatedUnits {
			oldV, okOld := oldRes[name][unit]
			newV, okNew := newRes[name][unit]
			if !okOld || !okNew || oldV == 0 {
				// A zero baseline (an alloc-free benchmark growing its
				// first byte) has no meaningful ratio; absolute growth from
				// zero is caught the PR after it lands a baseline.
				continue
			}
			compared++
			ratio := newV / oldV
			if ratio > *factor {
				failed++
				fmt.Printf("REGRESSION %-60s %12.0f → %12.0f %-9s (%.2fx > %.2gx)\n",
					name, oldV, newV, unit, ratio, *factor)
				continue
			}
			// One line per passing series too, so the snapshot diff in review
			// reads as a delta table instead of silence-until-failure.
			fmt.Printf("OK         %-60s %12.0f → %12.0f %-9s (%+.1f%%)\n",
				name, oldV, newV, unit, (ratio-1)*100)
		}
	}
	fmt.Printf("benchcheck: %d benchmarks, %d unit series compared, %d regressed beyond %.2gx\n",
		len(names), compared, failed, *factor)
	if failed > 0 {
		os.Exit(1)
	}
}
