// Command synthgen writes the paper's synthetic datasets to CSV for use
// with cmd/adawave or external tools.
//
// Usage:
//
//	synthgen -dataset evaluation -noise 0.5 -per 5600 -out fig7.csv
//	synthgen -dataset running -out fig1.csv
//	synthgen -dataset roadmap -n 40000 -out roadmap.csv
//	synthgen -dataset glass -out glass.csv        (any Table I stand-in name)
//	synthgen -dataset blobs -k 4 -per 500 -dim 3 -out blobs.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"adawave"
	"adawave/internal/dataio"
)

func main() {
	var (
		dataset = flag.String("dataset", "evaluation", "evaluation, running, roadmap, blobs, or a Table I stand-in name")
		out     = flag.String("out", "", "output CSV path (required)")
		noise   = flag.Float64("noise", 0.5, "noise fraction for -dataset evaluation")
		per     = flag.Int("per", 5600, "points per cluster (evaluation, blobs)")
		n       = flag.Int("n", 0, "total size for -dataset roadmap (0 = default)")
		k       = flag.Int("k", 4, "cluster count for -dataset blobs")
		dim     = flag.Int("dim", 2, "dimensionality for -dataset blobs")
		std     = flag.Float64("std", 0.02, "cluster spread for -dataset blobs")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "synthgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var ds *adawave.LabeledDataset
	switch *dataset {
	case "evaluation":
		ds = adawave.SyntheticEvaluation(*per, *noise, *seed)
	case "running":
		ds = adawave.RunningExample(*seed)
	case "roadmap":
		ds = adawave.RoadmapData(*n, *seed)
	case "blobs":
		ds = adawave.Blobs(*k, *per, *dim, *std, *seed)
	default:
		var err error
		ds, err = adawave.StandIn(*dataset, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synthgen:", err)
			os.Exit(2)
		}
	}

	if err := dataio.WriteFile(*out, ds.Points, ds.Labels); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: n=%d d=%d clusters=%d noise=%.0f%% → %s\n",
		ds.Name, ds.N(), ds.Dim(), ds.NumClusters(), ds.NoiseFraction()*100, *out)
}
