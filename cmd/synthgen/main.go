// Command synthgen writes the paper's synthetic datasets to CSV for use
// with cmd/adawave or external tools, or streams arbitrarily large mixture
// datasets directly into the binary mapped-Dataset format consumed by the
// out-of-core pipeline (adawave.OpenMappedDataset / ClusterMappedFile).
//
// Usage:
//
//	synthgen -dataset evaluation -noise 0.5 -per 5600 -out fig7.csv
//	synthgen -dataset running -out fig1.csv
//	synthgen -dataset roadmap -n 40000 -out roadmap.csv
//	synthgen -dataset glass -out glass.csv        (any Table I stand-in name)
//	synthgen -dataset blobs -k 4 -per 500 -dim 3 -out blobs.csv
//	synthgen -dataset highd -k 5 -per 250 -dim 64 -rank 4 -noise 0.2 -out highd64.csv
//	synthgen -dataset imageseg -size 48 -out image_seg.csv
//
//	// 10M-point 2-D mixture streamed straight to a mapped file, O(1) memory:
//	synthgen -format mapped -n 10000000 -dim 2 -k 6 -noise 0.3 -seed 1 -out pts.awds
package main

import (
	"flag"
	"fmt"
	"os"

	"adawave"
	"adawave/internal/dataio"
	"adawave/internal/synth"
)

func main() {
	var (
		dataset = flag.String("dataset", "evaluation", "evaluation, running, roadmap, blobs, or a Table I stand-in name (csv format)")
		format  = flag.String("format", "csv", "csv (labeled text) or mapped (binary mapped-Dataset file, streamed)")
		out     = flag.String("out", "", "output path (required)")
		noise   = flag.Float64("noise", 0.5, "noise fraction (evaluation, mapped)")
		per     = flag.Int("per", 5600, "points per cluster (evaluation, blobs)")
		n       = flag.Int("n", 0, "total points: roadmap size (csv) or dataset size (mapped)")
		k       = flag.Int("k", 4, "cluster count (blobs, mapped)")
		dim     = flag.Int("dim", 2, "dimensionality (blobs, highd, mapped)")
		rank    = flag.Int("rank", 4, "signal-subspace dimensionality for -dataset highd")
		size    = flag.Int("size", 48, "image side length for -dataset imageseg")
		std     = flag.Float64("std", 0.02, "cluster spread for -dataset blobs")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "synthgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	if *format == "mapped" {
		if *n <= 0 {
			fmt.Fprintln(os.Stderr, "synthgen: -format mapped requires -n > 0")
			os.Exit(2)
		}
		if err := writeMapped(*out, *n, *dim, *k, *noise, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "synthgen:", err)
			os.Exit(1)
		}
		fmt.Printf("mixture: n=%d d=%d clusters=%d noise=%.0f%% → %s (mapped)\n",
			*n, *dim, *k, *noise*100, *out)
		return
	}
	if *format != "csv" {
		fmt.Fprintf(os.Stderr, "synthgen: unknown -format %q (csv or mapped)\n", *format)
		os.Exit(2)
	}

	var ds *adawave.LabeledDataset
	switch *dataset {
	case "evaluation":
		ds = adawave.SyntheticEvaluation(*per, *noise, *seed)
	case "running":
		ds = adawave.RunningExample(*seed)
	case "roadmap":
		ds = adawave.RoadmapData(*n, *seed)
	case "blobs":
		ds = adawave.Blobs(*k, *per, *dim, *std, *seed)
	case "highd":
		ds = adawave.HighDimMixture(*k, *per, *dim, *rank, *noise, *seed)
	case "imageseg":
		ds = adawave.ImageSegmentation(*size, *seed)
	default:
		var err error
		ds, err = adawave.StandIn(*dataset, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synthgen:", err)
			os.Exit(2)
		}
	}

	if err := dataio.WriteFile(*out, ds.Points, ds.Labels); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: n=%d d=%d clusters=%d noise=%.0f%% → %s\n",
		ds.Name, ds.N(), ds.Dim(), ds.NumClusters(), ds.NoiseFraction()*100, *out)
}

// writeMapped streams a StreamMixture dataset into a mapped-Dataset file:
// constant memory, one sequential write pass, no [][]float64 ever built.
func writeMapped(path string, n, dim, k int, noise float64, seed int64) error {
	w, err := adawave.CreateMappedDataset(path, dim)
	if err != nil {
		return err
	}
	if err := synth.StreamMixture(n, dim, k, noise, seed, w.AppendRow); err != nil {
		w.Close()
		os.Remove(path)
		return err
	}
	return w.Close()
}
