// Command experiments regenerates the tables and figures of the AdaWave
// paper's evaluation section.
//
// Usage:
//
//	experiments -list
//	experiments -run fig8 [-quick] [-seed 1] [-workers 1]
//	experiments -run all  [-quick] [-seed 1] [-workers 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"adawave/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id (fig2, fig5…fig10, table1, table2) or \"all\"")
		list    = flag.Bool("list", false, "list available experiments")
		quick   = flag.Bool("quick", false, "reduced workload sizes (CI scale)")
		seed    = flag.Int64("seed", 1, "random seed for data generation")
		workers = flag.Int("workers", 1, "AdaWave worker goroutines per pipeline stage (1 = sequential, the paper's single-threaded protocol; >1 parallelizes AdaWave only, skewing runtime figures)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n           paper: %s\n", e.ID, e.Title, e.Paper)
		}
		if *run == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opt := experiments.Options{Out: os.Stdout, Seed: *seed, Quick: *quick, Workers: *workers}
	if *run == "all" {
		for _, e := range experiments.All() {
			if err := e.Run(opt); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	if err := experiments.Run(*run, opt); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
