// Command adawave clusters a CSV point set with the AdaWave algorithm and
// writes the labeled result (or a terminal rendering) back out.
//
// Usage:
//
//	adawave -in points.csv [-out labeled.csv] [-scale 128] [-levels 1]
//	        [-basis cdf22] [-threshold adaptive|knee|quantile|fixed]
//	        [-quantile 0.8] [-fixed 5] [-workers 0] [-plot] [-stats]
//
// The input CSV has one point per row (optional x0…xd header); an existing
// “label” column is ignored for clustering but used to print an AMI score
// when present.
package main

import (
	"flag"
	"fmt"
	"os"

	"adawave"
	"adawave/internal/dataio"
)

func main() {
	var (
		in        = flag.String("in", "", "input CSV of points (required)")
		out       = flag.String("out", "", "output CSV with a label column (optional)")
		scale     = flag.Int("scale", 128, "grid cells per dimension (0 = automatic)")
		levels    = flag.Int("levels", 1, "wavelet decomposition levels")
		basisName = flag.String("basis", "cdf22", "wavelet basis: haar, db4 or cdf22")
		threshold = flag.String("threshold", "adaptive", "threshold strategy: adaptive, knee, quantile or fixed")
		quantile  = flag.Float64("quantile", 0.8, "drop fraction for -threshold quantile")
		fixed     = flag.Float64("fixed", 5, "absolute density for -threshold fixed")
		workers   = flag.Int("workers", 0, "worker goroutines per pipeline stage (0 = all processors)")
		plotOut   = flag.Bool("plot", false, "print an ASCII scatter of the clustering")
		stats     = flag.Bool("stats", false, "print per-stage cell counts and the density curve cut")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "adawave: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	ds, truth, err := dataio.ReadFileDataset(*in)
	if err != nil {
		fatal(err)
	}
	if ds == nil || ds.N == 0 {
		fatal(fmt.Errorf("no points in %s", *in))
	}

	cfg := adawave.DefaultConfig()
	cfg.Scale = *scale
	cfg.Levels = *levels
	basis, err := adawave.BasisByName(*basisName)
	if err != nil {
		fatal(err)
	}
	cfg.Basis = basis
	switch *threshold {
	case "adaptive":
		cfg.Threshold = adawave.ThreeSegmentFit{}
	case "knee":
		cfg.Threshold = adawave.SecondKnee{}
	case "quantile":
		cfg.Threshold = adawave.QuantileThreshold{Q: *quantile}
	case "fixed":
		cfg.Threshold = adawave.FixedThreshold{Value: *fixed}
	default:
		fatal(fmt.Errorf("unknown -threshold %q", *threshold))
	}

	clusterer, err := adawave.NewClusterer(cfg, *workers)
	if err != nil {
		fatal(err)
	}
	res, err := clusterer.ClusterDataset(ds)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("n=%d d=%d → %d clusters, %d noise points (%.1f%%)\n",
		ds.N, ds.D, res.NumClusters, res.NoiseCount(),
		100*float64(res.NoiseCount())/float64(ds.N))
	if truth != nil {
		fmt.Printf("AMI against the input's label column: %.3f\n",
			adawave.AMINonNoise(truth, res.Labels, adawave.NoiseLabel))
	}
	if *stats {
		fmt.Printf("cells: quantized=%d transformed=%d kept=%d\n",
			res.CellsQuantized, res.CellsTransformed, res.CellsKept)
		fmt.Printf("threshold: density %.4f at index %d of %d\n",
			res.Threshold, res.ThresholdIndex, len(res.Curve))
	}
	if *plotOut {
		fmt.Print(adawave.ScatterPlot(ds.Rows(), res.Labels, 78, 26))
	}
	if *out != "" {
		if err := dataio.WriteFileDataset(*out, ds, res.Labels); err != nil {
			fatal(err)
		}
		fmt.Printf("labeled points written to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adawave:", err)
	os.Exit(1)
}
