package adawave

import (
	"context"
	"io"

	"adawave/internal/core"
	"adawave/internal/pointset"
)

// Session is a long-lived, incrementally maintained clustering — the
// streaming counterpart of Clusterer. Feed points in over time with Append
// (and take them back out with Remove); the session keeps its sparse
// density grid warm between requests, folding each delta batch in by one
// O(cells) merge instead of requantizing every point, and lazily re-runs
// only the grid-side stages (wavelet transform, adaptive threshold,
// connected components) on the next read.
//
// The invalidation model: mutations never compute anything — they mark the
// session dirty and return. The first read after a mutation folds the
// pending deltas into the live grid and recomputes; subsequent reads of a
// clean session return the cached Result under a shared read lock. A
// Session is safe for one writer and many concurrent readers.
//
// Equivalence guarantee: after any sequence of Append and Remove calls the
// labels are bit-identical to a one-shot Clusterer.ClusterDataset over the
// current point set. The incremental merge is used only while it provably
// preserves the one-shot quantization frame; a batch that expands the
// bounding box, a removal that lets go of a boundary-touching point, or an
// automatic scale change falls back to full requantization, so the
// guarantee holds unconditionally.
type Session struct {
	s *core.Session
}

// NewSession validates cfg and returns an empty streaming session using the
// given number of worker goroutines per pipeline stage (≤ 0 selects
// runtime.GOMAXPROCS(0) at each call).
func NewSession(cfg Config, workers int) (*Session, error) {
	s, err := core.NewSession(cfg, workers)
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// NewSession returns an empty streaming session sharing this clusterer's
// configuration, workers and pooled buffers.
func (c *Clusterer) NewSession() *Session {
	return &Session{s: c.eng.NewSession()}
}

// Append adds a batch of points (copied; the caller keeps ownership of ds)
// and marks the session dirty. The first batch fixes the dimensionality.
func (s *Session) Append(ds *Dataset) error { return s.s.Append(ds) }

// AppendContext is Append with cancellation: a context already dead when the
// mutation would apply returns an ErrCanceled/ErrDeadlineExceeded-tagged
// error and leaves the session untouched.
func (s *Session) AppendContext(ctx context.Context, ds *Dataset) error {
	return s.s.AppendContext(ctx, ds)
}

// AppendPoints is Append for [][]float64 callers (one copy).
func (s *Session) AppendPoints(points [][]float64) error {
	ds, err := pointset.FromSlices(points)
	if err != nil {
		return err
	}
	return s.s.Append(ds)
}

// Remove deletes the points at the given indices in the session's current
// point order, preserving the order of the survivors.
func (s *Session) Remove(indices []int) error { return s.s.Remove(indices) }

// RemoveContext is Remove with cancellation (see AppendContext).
func (s *Session) RemoveContext(ctx context.Context, indices []int) error {
	return s.s.RemoveContext(ctx, indices)
}

// Labels returns the per-point labels of the current point set (appends
// keep arrival order; removals close the gaps), recomputing only if the
// session is dirty. The slice is shared — treat it as read-only.
func (s *Session) Labels() ([]int, error) { return s.s.Labels() }

// LabelsContext is Labels with cooperative cancellation (see ResultContext).
func (s *Session) LabelsContext(ctx context.Context) ([]int, error) {
	return s.s.LabelsContext(ctx)
}

// Result returns the full clustering result of the current point set,
// recomputing only if the session is dirty. The Result is shared between
// readers and must not be modified.
func (s *Session) Result() (*Result, error) { return s.s.Result() }

// ResultContext is Result with cooperative cancellation: the lazy fold and
// every recompute stage poll ctx at shard boundaries, and a cancelled read
// leaves the session exactly as before the call — pending mutations still
// pending, the live grid intact — so the next read recomputes the identical
// result. The error is matched by errors.Is against ErrCanceled or
// ErrDeadlineExceeded.
func (s *Session) ResultContext(ctx context.Context) (*Result, error) {
	return s.s.ResultContext(ctx)
}

// MultiResolution clusters the current point set at every decomposition
// level from 1 to maxLevels in one pass over the live grid, without
// re-quantizing any point.
func (s *Session) MultiResolution(maxLevels int) ([]*Result, error) {
	return s.s.MultiResolution(maxLevels)
}

// MultiResolutionContext is MultiResolution with cooperative cancellation;
// it computes on a private clone, so a cancelled call cannot disturb the
// session state.
func (s *Session) MultiResolutionContext(ctx context.Context, maxLevels int) ([]*Result, error) {
	return s.s.MultiResolutionContext(ctx, maxLevels)
}

// Len returns the current number of points.
func (s *Session) Len() int { return s.s.Len() }

// Dim returns the session's dimensionality (0 before the first append).
func (s *Session) Dim() int { return s.s.Dim() }

// Cells returns the number of occupied cells in the live base grid after
// folding any pending mutations.
func (s *Session) Cells() (int, error) { return s.s.Cells() }

// CellsContext is Cells with cooperative cancellation of the fold.
func (s *Session) CellsContext(ctx context.Context) (int, error) {
	return s.s.CellsContext(ctx)
}

// Config returns the session's (validated) configuration.
func (s *Session) Config() Config { return s.s.Config() }

// ResidentBytes estimates the session's resident heap footprint (points,
// live grid, cell memo, cached result) without folding pending mutations —
// the input to a serving layer's memory-budgeted eviction policy.
func (s *Session) ResidentBytes() int64 { return s.s.ResidentBytes() }

// Checkpoint serializes the session's full state — configuration
// fingerprint, point rows, memoized cell ids, quantizer frame and live
// grid — to w in a versioned, CRC-framed binary format. The write runs
// under the session's writer lock after folding any pending mutations, so a
// checkpoint is valid at any point in an append/remove sequence. Restore it
// with RestoreSession (or Clusterer.RestoreSession) under the identical
// configuration; the restored session reproduces this one's labels bit for
// bit and stays warm for further mutations.
func (s *Session) Checkpoint(w io.Writer) error { return s.s.Checkpoint(w) }

// CheckpointContext is Checkpoint with cooperative cancellation of the fold
// that precedes serialization; a cancelled call writes nothing.
func (s *Session) CheckpointContext(ctx context.Context, w io.Writer) error {
	return s.s.CheckpointContext(ctx, w)
}

// RestoreSession rebuilds a streaming session from a Checkpoint stream.
// cfg and workers configure the session's engine; cfg must match the
// checkpointing configuration (a mismatch is reported, never restored
// silently).
func RestoreSession(r io.Reader, cfg Config, workers int) (*Session, error) {
	eng, err := core.NewEngine(cfg, workers)
	if err != nil {
		return nil, err
	}
	s, err := core.RestoreSession(r, eng)
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// RestoreSession is RestoreSession sharing this clusterer's engine and
// pooled buffers (the streaming counterpart of NewSession).
func (c *Clusterer) RestoreSession(r io.Reader) (*Session, error) {
	s, err := core.RestoreSession(r, c.eng)
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}
