package adawave

import (
	"sync"
	"testing"
)

// TestSessionFacadeMatchesOneShot: the exported streaming Session must
// reproduce the one-shot ClusterDataset bit for bit after batched appends
// and removals, with concurrent readers (the facade rendering of the
// internal/core streaming equivalence gate, race-exercised in CI).
func TestSessionFacadeMatchesOneShot(t *testing.T) {
	data := SyntheticEvaluation(300, 0.6, 4)
	ds := data.Flat()

	clusterer, err := NewClusterer(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sess := clusterer.NewSession()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := sess.Result()
				if err == nil && res != nil {
					_ = res.Labels[0]
				}
			}
		}()
	}
	for off := 0; off < len(data.Points); off += 777 {
		end := off + 777
		if end > len(data.Points) {
			end = len(data.Points)
		}
		if err := sess.AppendPoints(data.Points[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if sess.Len() != ds.N || sess.Dim() != ds.D {
		t.Fatalf("shape: got %d/%d, want %d/%d", sess.Len(), sess.Dim(), ds.N, ds.D)
	}
	want, err := clusterer.ClusterDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Labels()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Labels) {
		t.Fatalf("labels: got %d, want %d", len(got), len(want.Labels))
	}
	for i := range want.Labels {
		if got[i] != want.Labels[i] {
			t.Fatalf("label %d: got %d, want %d", i, got[i], want.Labels[i])
		}
	}
	cells, err := sess.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if cells != want.CellsQuantized {
		t.Fatalf("cells: got %d, want %d", cells, want.CellsQuantized)
	}

	// Remove the first 100 points; the session must now match the one-shot
	// run over the survivors.
	idx := make([]int, 100)
	for i := range idx {
		idx[i] = i
	}
	if err := sess.Remove(idx); err != nil {
		t.Fatal(err)
	}
	survivors, err := FromSlices(data.Points[100:])
	if err != nil {
		t.Fatal(err)
	}
	wantAfter, err := clusterer.ClusterDataset(survivors)
	if err != nil {
		t.Fatal(err)
	}
	gotAfter, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	if gotAfter.NumClusters != wantAfter.NumClusters {
		t.Fatalf("clusters after removal: got %d, want %d", gotAfter.NumClusters, wantAfter.NumClusters)
	}
	for i := range wantAfter.Labels {
		if gotAfter.Labels[i] != wantAfter.Labels[i] {
			t.Fatalf("label %d after removal: got %d, want %d", i, gotAfter.Labels[i], wantAfter.Labels[i])
		}
	}

	// Multi-resolution from the live grid matches the one-shot pass.
	wantMulti, err := clusterer.ClusterMultiResolutionDataset(survivors, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotMulti, err := sess.MultiResolution(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMulti) != len(wantMulti) {
		t.Fatalf("levels: got %d, want %d", len(gotMulti), len(wantMulti))
	}
	for l := range wantMulti {
		for i := range wantMulti[l].Labels {
			if gotMulti[l].Labels[i] != wantMulti[l].Labels[i] {
				t.Fatalf("level %d label %d: got %d, want %d", l+1, i, gotMulti[l].Labels[i], wantMulti[l].Labels[i])
			}
		}
	}
}

// TestSessionFacadeValidation covers the exported error surface.
func TestSessionFacadeValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Scale = 1
	if _, err := NewSession(bad, 1); err == nil {
		t.Fatal("invalid config must error")
	}
	sess, err := NewSession(DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Labels(); err == nil {
		t.Fatal("empty session read must error")
	}
	if err := sess.AppendPoints([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged batch must error")
	}
	if sess.Config().Scale != DefaultConfig().Scale {
		t.Fatal("config must round-trip")
	}
}
