package adawave

// One benchmark per table/figure of the paper's evaluation (§V), plus
// ablation benches for the design choices DESIGN.md calls out. The benches
// report AMI (and domain metrics) via b.ReportMetric, so `go test -bench=.`
// doubles as a compact experiment regenerator; the full reports live in
// cmd/experiments.

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"adawave/internal/baselines/dbscan"
	"adawave/internal/baselines/kmeans"
	"adawave/internal/baselines/skinnydip"
	"adawave/internal/baselines/wavecluster"
	"adawave/internal/core"
	"adawave/internal/datasets"
	"adawave/internal/embed"
	"adawave/internal/grid"
	"adawave/internal/metrics"
	"adawave/internal/persist"
	"adawave/internal/pointset"
	"adawave/internal/sched"
	"adawave/internal/stats"
	"adawave/internal/synth"
	"adawave/internal/wavelet"
)

// BenchmarkFig2RunningExample times AdaWave on the Fig. 1/2 running example
// and reports the AMI the paper headline-quotes (0.76).
func BenchmarkFig2RunningExample(b *testing.B) {
	ds := synth.RunningExampleSized(800, 1)
	cfg := core.DefaultConfig()
	var ami float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Cluster(ds.Points, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ami = metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
	}
	b.ReportMetric(ami, "AMI")
}

// BenchmarkEngineFig2RunningExample times the parallel flat-grid engine on
// the exact workload of BenchmarkFig2RunningExample — the before/after pair
// for the engine: the map-based sequential pipeline above, the
// struct-of-arrays engine here at 1 worker (allocation win) and at
// GOMAXPROCS workers (parallel win). The AMI metric must not move: the
// engine is label-for-label identical to the sequential path.
func BenchmarkEngineFig2RunningExample(b *testing.B) {
	ds := synth.RunningExampleSized(800, 1)
	cfg := core.DefaultConfig()
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng, err := core.NewEngine(cfg, workers)
			if err != nil {
				b.Fatal(err)
			}
			var ami float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Cluster(ds.Points)
				if err != nil {
					b.Fatal(err)
				}
				ami = metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
			}
			b.ReportMetric(ami, "AMI")
		})
	}
}

// BenchmarkEngineFig9Roadmap is the engine's large-n counterpart of
// BenchmarkFig9Roadmap (20 000 road-network points): quantization and
// assignment dominate here, which is where the point shards parallelize.
func BenchmarkEngineFig9Roadmap(b *testing.B) {
	ds := datasets.Roadmap(20000, 1)
	cfg := core.DefaultConfig()
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng, err := core.NewEngine(cfg, workers)
			if err != nil {
				b.Fatal(err)
			}
			var ami float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Cluster(ds.Points)
				if err != nil {
					b.Fatal(err)
				}
				ami = metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
			}
			b.ReportMetric(ami, "AMI")
		})
	}
}

// BenchmarkEngineDatasetFig2RunningExample is the flat-Dataset rendering of
// BenchmarkEngineFig2RunningExample: same workload, but the points live in
// one row-major backing slice, each point's base cell is memoized during
// quantization, and assignment is a table lookup — the before/after pair
// for the point-major hot path.
func BenchmarkEngineDatasetFig2RunningExample(b *testing.B) {
	ds := synth.RunningExampleSized(800, 1)
	flat := ds.Flat()
	cfg := core.DefaultConfig()
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng, err := core.NewEngine(cfg, workers)
			if err != nil {
				b.Fatal(err)
			}
			var ami float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.ClusterDataset(flat)
				if err != nil {
					b.Fatal(err)
				}
				ami = metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
			}
			b.ReportMetric(ami, "AMI")
		})
	}
}

// BenchmarkCtxOverheadFig2 measures the cost of the context-first pipeline:
// the exact workload of BenchmarkEngineDatasetFig2RunningExample/workers=1,
// driven through ClusterDatasetContext with a live cancellable context — the
// worst case for the shard-boundary ctx.Err() polls, since a cancelable
// context's Err is an atomic load where Background's is a constant nil.
// Acceptance: ≤2 % over the ctx-free Fig. 2 numbers of BENCH_4.json.
func BenchmarkCtxOverheadFig2(b *testing.B) {
	ds := synth.RunningExampleSized(800, 1)
	flat := ds.Flat()
	cfg := core.DefaultConfig()
	eng, err := core.NewEngine(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ami float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.ClusterDatasetContext(ctx, flat)
		if err != nil {
			b.Fatal(err)
		}
		ami = metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
	}
	b.ReportMetric(ami, "AMI")
}

// BenchmarkEngineDatasetFig9Roadmap is the flat-Dataset rendering of
// BenchmarkEngineFig9Roadmap (20 000 road-network points), where per-point
// quantization and assignment dominate.
func BenchmarkEngineDatasetFig9Roadmap(b *testing.B) {
	ds := datasets.Roadmap(20000, 1)
	flat := ds.Flat()
	cfg := core.DefaultConfig()
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng, err := core.NewEngine(cfg, workers)
			if err != nil {
				b.Fatal(err)
			}
			var ami float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.ClusterDataset(flat)
				if err != nil {
					b.Fatal(err)
				}
				ami = metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
			}
			b.ReportMetric(ami, "AMI")
		})
	}
}

// BenchmarkMultiResolution times the 5-level multi-resolution pass — the
// workload where per-level assignment cost compounds — through the three
// paths: the sequential map pipeline, the engine's [][]float64 adapter, and
// the flat Dataset path whose per-level assignment is one cell pass plus a
// table lookup per point (O(cells·log cells + n) per level instead of
// O(n·d + n·log cells)).
func BenchmarkMultiResolution(b *testing.B) {
	for _, w := range []struct {
		name string
		ds   *synth.Dataset
	}{
		{"Fig2", synth.RunningExampleSized(800, 1)},
		{"Fig9Roadmap", datasets.Roadmap(20000, 1)},
	} {
		flat := w.ds.Flat()
		cfg := core.DefaultConfig()
		b.Run(w.name+"/sequential", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ClusterMultiResolution(w.ds.Points, cfg, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
		eng, err := core.NewEngine(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(w.name+"/engine-slices", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.ClusterMultiResolution(w.ds.Points, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(w.name+"/engine-dataset", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.ClusterMultiResolutionDataset(flat, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAssignNoiseToNearest times the paper's noise re-assignment
// protocol (3 centroid iterations over the Fig. 7 mixture at 75 % noise) —
// the O(n·k·d) stage whose nearest-centroid search shards across workers.
func BenchmarkAssignNoiseToNearest(b *testing.B) {
	ds := synth.Evaluation(2000, 0.75, 1)
	res, err := core.Cluster(ds.Points, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.AssignNoiseToNearestParallel(ds.Points, res.Labels, 3, workers)
			}
		})
	}
}

// BenchmarkEngineFig10Runtime mirrors BenchmarkFig10Runtime (the paper's
// linear-growth claim) on the parallel engine at GOMAXPROCS workers.
func BenchmarkEngineFig10Runtime(b *testing.B) {
	for _, per := range []int{250, 500, 1000, 2000} {
		ds := synth.Evaluation(per, 0.75, 1)
		b.Run(fmt.Sprintf("n=%d", ds.N()), func(b *testing.B) {
			eng, err := core.NewEngine(core.DefaultConfig(), 0)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := eng.Cluster(ds.Points); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlatTransform times the flat line-sweep DWT against the map
// scatter on the same occupied cells (see BenchmarkFig5Transform for the
// map engine's numbers).
func BenchmarkFlatTransform(b *testing.B) {
	ds := synth.RunningExampleSized(800, 1)
	q, err := grid.NewQuantizer(ds.Points, 128)
	if err != nil {
		b.Fatal(err)
	}
	f := grid.FlatFromGrid(q.Quantize(ds.Points))
	basis := wavelet.CDF22()
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				grid.TransformFlat(f.Clone(), basis, workers)
			}
		})
	}
}

// BenchmarkQuantizationFlat times the sharded flat quantizer against the
// map quantizer of BenchmarkQuantization on the same points.
func BenchmarkQuantizationFlat(b *testing.B) {
	ds := synth.Evaluation(1000, 0.5, 1)
	q, err := grid.NewQuantizer(ds.Points, 128)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f := q.QuantizeFlat(ds.Points, workers)
				if f.Len() == 0 {
					b.Fatal("empty grid")
				}
			}
		})
	}
}

// BenchmarkFig5Transform times the sparse 2-D DWT of the quantized running
// example (the paper's Fig. 5 illustration) and reports the outlier-cell
// reduction.
func BenchmarkFig5Transform(b *testing.B) {
	ds := synth.RunningExampleSized(800, 1)
	q, err := grid.NewQuantizer(ds.Points, 128)
	if err != nil {
		b.Fatal(err)
	}
	g := q.Quantize(ds.Points)
	basis := wavelet.CDF22()
	var kept int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := grid.Transform(g, basis)
		kept = t.Len()
	}
	b.ReportMetric(float64(g.Len()), "cells-in")
	b.ReportMetric(float64(kept), "cells-out")
}

// BenchmarkFig6Threshold times the adaptive threshold strategies on the
// sorted density curve of the Fig. 7 data (the paper's Fig. 6).
func BenchmarkFig6Threshold(b *testing.B) {
	ds := synth.Evaluation(1000, 0.5, 1)
	q, err := grid.NewQuantizer(ds.Points, 128)
	if err != nil {
		b.Fatal(err)
	}
	curve := grid.Transform(q.Quantize(ds.Points), wavelet.CDF22()).SortedDensities()
	for _, s := range []core.ThresholdStrategy{core.ThreeSegmentFit{}, core.SecondKnee{}} {
		b.Run(s.Name(), func(b *testing.B) {
			var idx int
			for i := 0; i < b.N; i++ {
				_, idx = s.Cut(curve)
			}
			b.ReportMetric(float64(idx), "cut-index")
			b.ReportMetric(float64(len(curve)), "curve-cells")
		})
	}
}

// BenchmarkFig7Generate times generation of the synthetic evaluation
// dataset at the paper's 50 % illustration noise.
func BenchmarkFig7Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := synth.Evaluation(1000, 0.5, int64(i+1))
		if ds.N() == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkFig8NoiseSweep reproduces the Fig. 8 series in miniature: the
// per-algorithm AMI at 20/50/80 % noise, reported as sub-benchmarks.
func BenchmarkFig8NoiseSweep(b *testing.B) {
	type alg struct {
		name string
		run  func(ds *synth.Dataset) ([]int, error)
	}
	algs := []alg{
		{"AdaWave", func(ds *synth.Dataset) ([]int, error) {
			r, err := core.Cluster(ds.Points, core.DefaultConfig())
			if err != nil {
				return nil, err
			}
			return r.Labels, nil
		}},
		{"SkinnyDip", func(ds *synth.Dataset) ([]int, error) {
			r, err := skinnydip.Cluster(ds.Points, skinnydip.Config{})
			if err != nil {
				return nil, err
			}
			return r.Labels, nil
		}},
		{"DBSCAN", func(ds *synth.Dataset) ([]int, error) {
			r, err := dbscan.Cluster(ds.Points, dbscan.Config{Eps: 0.03, MinPts: 8})
			if err != nil {
				return nil, err
			}
			return r.Labels, nil
		}},
		{"k-means", func(ds *synth.Dataset) ([]int, error) {
			r, err := kmeans.Cluster(ds.Points, kmeans.Config{K: 5, Seed: 1})
			if err != nil {
				return nil, err
			}
			return r.Labels, nil
		}},
		{"WaveCluster", func(ds *synth.Dataset) ([]int, error) {
			r, err := wavecluster.Cluster(ds.Points, wavecluster.DefaultConfig())
			if err != nil {
				return nil, err
			}
			return r.Labels, nil
		}},
	}
	for _, gamma := range []float64{0.2, 0.5, 0.8} {
		ds := synth.Evaluation(400, gamma, 1)
		for _, a := range algs {
			b.Run(fmt.Sprintf("gamma=%.0f%%/%s", gamma*100, a.name), func(b *testing.B) {
				var ami float64
				for i := 0; i < b.N; i++ {
					labels, err := a.run(ds)
					if err != nil {
						b.Fatal(err)
					}
					ami = metrics.AMINonNoise(ds.Labels, labels, synth.NoiseLabel)
				}
				b.ReportMetric(ami, "AMI")
			})
		}
	}
}

// BenchmarkTable1RealWorld times AdaWave (with the paper's noise-folding
// protocol) on each Table I stand-in small enough to bench.
func BenchmarkTable1RealWorld(b *testing.B) {
	for _, name := range []string{"seeds", "iris", "glass", "dumdh", "dermatology", "motor", "wholesale"} {
		ds, err := datasets.ByName(name, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Scale = 0
			if ds.Dim() > 8 {
				// The Table I protocol: long filters densify sparse
				// high-dimensional grids, Haar does not (DESIGN.md §4).
				cfg.Basis = wavelet.Haar()
			}
			var ami float64
			for i := 0; i < b.N; i++ {
				res, err := core.Cluster(ds.Points, cfg)
				if err != nil {
					b.Fatal(err)
				}
				labels := core.AssignNoiseToNearest(ds.Points, res.Labels, 3)
				ami = metrics.AMI(ds.Labels, labels)
			}
			b.ReportMetric(ami, "AMI")
		})
	}
}

// BenchmarkTable2GlassCorrelation times the Table II computation: Pearson
// correlation of every Glass attribute with the class.
func BenchmarkTable2GlassCorrelation(b *testing.B) {
	ds := datasets.Glass(1)
	class := make([]float64, ds.N())
	for i, l := range ds.Labels {
		class[i] = float64(l + 1)
	}
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worst = 0
		for j, want := range datasets.GlassTargetCorrelations {
			got := stats.Pearson(stats.Column(ds.Points, j), class)
			if d := got - want; d > worst {
				worst = d
			} else if -d > worst {
				worst = -d
			}
		}
	}
	b.ReportMetric(worst, "max-abs-deviation")
}

// BenchmarkFig9Roadmap times AdaWave on the simulated road network and
// reports the case-study AMI (paper: 0.735).
func BenchmarkFig9Roadmap(b *testing.B) {
	ds := datasets.Roadmap(20000, 1)
	cfg := core.DefaultConfig()
	var ami float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Cluster(ds.Points, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ami = metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
	}
	b.ReportMetric(ami, "AMI")
}

// BenchmarkFig10Runtime times AdaWave across growing n at the paper's 75 %
// noise — the linear-growth claim of Fig. 10. ns/op across the
// sub-benchmarks is the figure's AdaWave series.
func BenchmarkFig10Runtime(b *testing.B) {
	for _, per := range []int{250, 500, 1000, 2000} {
		ds := synth.Evaluation(per, 0.75, 1)
		b.Run(fmt.Sprintf("n=%d", ds.N()), func(b *testing.B) {
			cfg := core.DefaultConfig()
			for i := 0; i < b.N; i++ {
				if _, err := core.Cluster(ds.Points, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBasis compares the wavelet bases on the same workload —
// the paper's “flexibility of choosing basis” property.
func BenchmarkAblationBasis(b *testing.B) {
	ds := synth.Evaluation(700, 0.5, 1)
	for _, basis := range wavelet.Bases() {
		b.Run(basis.Name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Basis = basis
			var ami float64
			for i := 0; i < b.N; i++ {
				res, err := core.Cluster(ds.Points, cfg)
				if err != nil {
					b.Fatal(err)
				}
				ami = metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
			}
			b.ReportMetric(ami, "AMI")
		})
	}
}

// BenchmarkAblationLevels compares decomposition depths (multi-resolution).
func BenchmarkAblationLevels(b *testing.B) {
	ds := synth.Evaluation(700, 0.5, 1)
	for levels := 0; levels <= 3; levels++ {
		b.Run(fmt.Sprintf("levels=%d", levels), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Levels = levels
			var ami float64
			for i := 0; i < b.N; i++ {
				res, err := core.Cluster(ds.Points, cfg)
				if err != nil {
					b.Fatal(err)
				}
				ami = metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
			}
			b.ReportMetric(ami, "AMI")
		})
	}
}

// BenchmarkAblationThreshold compares the threshold strategies end to end —
// the adaptive elbow against the paper-sequential knee and the non-adaptive
// baselines (the core design choice AdaWave adds over WaveCluster).
func BenchmarkAblationThreshold(b *testing.B) {
	ds := synth.Evaluation(700, 0.7, 1)
	strategies := []core.ThresholdStrategy{
		core.ThreeSegmentFit{},
		core.SecondKnee{},
		core.QuantileThreshold{Q: 0.8},
		core.FixedThreshold{Value: 5},
	}
	for _, s := range strategies {
		b.Run(s.Name(), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Threshold = s
			var ami float64
			for i := 0; i < b.N; i++ {
				res, err := core.Cluster(ds.Points, cfg)
				if err != nil {
					b.Fatal(err)
				}
				ami = metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
			}
			b.ReportMetric(ami, "AMI")
		})
	}
}

// BenchmarkAblationConnectivity compares face vs full (diagonal included)
// neighbor relations in component labeling.
func BenchmarkAblationConnectivity(b *testing.B) {
	ds := synth.Evaluation(700, 0.5, 1)
	for _, tc := range []struct {
		name string
		conn grid.Connectivity
	}{{"faces", grid.Faces}, {"full", grid.Full}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Connectivity = tc.conn
			var ami float64
			for i := 0; i < b.N; i++ {
				res, err := core.Cluster(ds.Points, cfg)
				if err != nil {
					b.Fatal(err)
				}
				ami = metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
			}
			b.ReportMetric(ami, "AMI")
		})
	}
}

// BenchmarkAblationSparseVsDense compares the sparse scatter DWT against
// the dense per-row transform on the same occupied cells — the “grid
// labeling” memory/time trade the paper claims.
func BenchmarkAblationSparseVsDense(b *testing.B) {
	ds := synth.Evaluation(700, 0.5, 1)
	q, err := grid.NewQuantizer(ds.Points, 128)
	if err != nil {
		b.Fatal(err)
	}
	g := q.Quantize(ds.Points)
	basis := wavelet.CDF22()
	b.Run("sparse-grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			grid.Transform(g, basis)
		}
	})
	b.Run("dense-rows", func(b *testing.B) {
		// Materialize the full 128×128 grid and run the dense separable
		// transform — feasible only in low dimension.
		dense := make([][]float64, 128)
		for r := range dense {
			dense[r] = make([]float64, 128)
		}
		for k, v := range g.Cells {
			dense[k.Coord(1)][k.Coord(0)] = v
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Rows then columns.
			rows := make([][]float64, len(dense))
			for r := range dense {
				rows[r] = wavelet.Approx(dense[r], basis)
			}
			w := len(rows[0])
			col := make([]float64, len(rows))
			for c := 0; c < w; c++ {
				for r := range rows {
					col[r] = rows[r][c]
				}
				wavelet.Approx(col, basis)
			}
		}
	})
}

// BenchmarkQuantization times the linear-scan grid assignment (step 1).
func BenchmarkQuantization(b *testing.B) {
	ds := synth.Evaluation(1000, 0.5, 1)
	q, err := grid.NewQuantizer(ds.Points, 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := q.Quantize(ds.Points)
		if g.Len() == 0 {
			b.Fatal("empty grid")
		}
	}
}

// BenchmarkAMI times the evaluation metric itself on a large labeling.
func BenchmarkAMI(b *testing.B) {
	ds := synth.Evaluation(1000, 0.5, 1)
	res, err := core.Cluster(ds.Points, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
	}
}

// streamingFixture builds the streaming workload of the acceptance
// criterion: a 50 000-point road network as the warm history plus a 1 %
// delta batch of strictly interior points (copies of non-extreme rows), so
// appending the delta — and taking it back out — provably never moves the
// quantization bounding box and the warm path stays incremental.
func streamingFixture(b *testing.B) (warm, delta *pointset.Dataset) {
	data := datasets.Roadmap(50000, 1)
	warm = data.Flat()
	d := warm.D
	mins := append([]float64(nil), warm.Row(0)...)
	maxs := append([]float64(nil), warm.Row(0)...)
	for i := 0; i < warm.N; i++ {
		for j, v := range warm.Row(i) {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	delta = pointset.New(d, warm.N/100)
	for i := 0; i < warm.N && delta.N < warm.N/100; i++ {
		interior := true
		for j, v := range warm.Row(i) {
			if v == mins[j] || v == maxs[j] {
				interior = false
				break
			}
		}
		if interior {
			delta.AppendRow(warm.Row(i))
		}
	}
	return warm, delta
}

// BenchmarkSessionAppendRelabel measures the streaming hot path: append a
// 1 % delta batch into a warm 50 000-point Session and re-read the labels.
// Quantization is amortized — only the 500 delta points are quantized and
// folded in by one O(cells) merge; the grid-side stages re-run as usual.
// Each iteration removes the delta again (untimed) so the session stays at
// steady state. (The delta duplicates interior warm rows, so removal only
// decrements masses that stay ≥ 1 — no cell ever empties and the
// tombstone-sweep path is deliberately not part of this measurement.)
// Compare against BenchmarkColdRecluster50k, the same read served from
// scratch.
func BenchmarkSessionAppendRelabel(b *testing.B) {
	warm, delta := streamingFixture(b)
	sess, err := core.NewSession(core.DefaultConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := sess.Append(warm); err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Labels(); err != nil {
		b.Fatal(err)
	}
	idx := make([]int, delta.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.Append(delta); err != nil {
			b.Fatal(err)
		}
		labels, err := sess.Labels()
		if err != nil {
			b.Fatal(err)
		}
		if len(labels) != warm.N+delta.N {
			b.Fatalf("labels: got %d", len(labels))
		}
		b.StopTimer()
		for j := range idx {
			idx[j] = warm.N + j
		}
		if err := sess.Remove(idx); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkColdRecluster50k is the cold baseline for
// BenchmarkSessionAppendRelabel: the same 50 500-point union clustered from
// scratch (full quantization included) on every read.
func BenchmarkColdRecluster50k(b *testing.B) {
	warm, delta := streamingFixture(b)
	union := pointset.New(warm.D, warm.N+delta.N)
	union.Data = append(union.Data, warm.Data...)
	union.Data = append(union.Data, delta.Data...)
	union.N = warm.N + delta.N
	eng, err := core.NewEngine(core.DefaultConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.ClusterDataset(union)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Labels) != union.N {
			b.Fatalf("labels: got %d", len(res.Labels))
		}
	}
}

// BenchmarkWALAppend measures the write-ahead-log overhead every mutation
// of a durable adawave-serve session pays: framing + CRC + write of a 1 %
// (500-point) delta batch. policy=never isolates the serialization cost
// (the page cache absorbs the write); policy=always adds the fsync a
// zero-loss configuration pays before acknowledging.
func BenchmarkWALAppend(b *testing.B) {
	_, delta := streamingFixture(b)
	for _, policy := range []persist.SyncPolicy{persist.SyncNever, persist.SyncAlways} {
		b.Run("policy="+policy.String(), func(b *testing.B) {
			wal, err := persist.OpenWAL(filepath.Join(b.TempDir(), "wal.log"), policy)
			if err != nil {
				b.Fatal(err)
			}
			defer wal.Close()
			b.SetBytes(int64(8 * delta.N * delta.D))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := wal.AppendBatch(delta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColdRecovery50k measures crash recovery to first labels: restore
// a 50k-point session checkpoint, replay a two-record WAL tail (a 1 % append
// and a small removal), and serve the first read. Compare against
// BenchmarkColdRecluster50k — recovery replaces the full requantization with
// sequential reads plus one O(cells) merge per replayed record.
func BenchmarkColdRecovery50k(b *testing.B) {
	warm, delta := streamingFixture(b)
	cfg := core.DefaultConfig()
	sess, err := NewSession(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := sess.Append(warm); err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Labels(); err != nil {
		b.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := sess.Checkpoint(&ckpt); err != nil {
		b.Fatal(err)
	}
	walPath := filepath.Join(b.TempDir(), "wal.log")
	wal, err := persist.OpenWAL(walPath, persist.SyncNever)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := wal.AppendBatch(delta); err != nil {
		b.Fatal(err)
	}
	if _, err := wal.AppendRemove([]int{3, 1000, 2000}); err != nil {
		b.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		b.Fatal(err)
	}
	wantN := warm.N + delta.N - 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restored, err := RestoreSession(bytes.NewReader(ckpt.Bytes()), cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := persist.ReplayInto(walPath, 0, restored); err != nil {
			b.Fatal(err)
		}
		labels, err := restored.Labels()
		if err != nil {
			b.Fatal(err)
		}
		if len(labels) != wantN {
			b.Fatalf("recovered labels: got %d, want %d", len(labels), wantN)
		}
	}
}

// BenchmarkSchedulerFairness measures the DRR pool's dispatch overhead and
// fairness: the wall time of a small tenant's 64-shard fan-out on the shared
// worker pool, first alone, then while a greedy tenant floods the pool with
// 64-shard jobs of its own. The contended number is the latency bound the
// deficit-round-robin scheduler guarantees a small tenant — it must stay
// within a bounded factor of solo, not degrade with the greedy tenant's
// queue depth.
func BenchmarkSchedulerFairness(b *testing.B) {
	const shards = 64
	work := func(_, lo, hi int) {
		var sink float64
		for i := lo; i < hi; i++ {
			for k := 0; k < 200; k++ {
				sink += float64(i*k) * 1e-9
			}
		}
		if sink < 0 {
			b.Fatal("unreachable")
		}
	}
	b.Run("solo", func(b *testing.B) {
		pool := sched.NewPool(runtime.GOMAXPROCS(0))
		defer pool.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.Shards("small", shards, shards, work)
		}
	})
	b.Run("contended", func(b *testing.B) {
		pool := sched.NewPool(runtime.GOMAXPROCS(0))
		defer pool.Close()
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						pool.Shards("greedy", shards, shards, work)
					}
				}
			}()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.Shards("small", shards, shards, work)
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}

// BenchmarkEvictRehydrate50k measures the session eviction round trip the
// residency manager pays: serialize a warm 50k-point session to its
// checkpoint (evict) and restore it (rehydrate), per iteration. This is the
// cost of parking a cold tenant's session and the first-touch latency of
// bringing it back; compare BenchmarkColdRecluster50k for what rehydration
// saves over reclustering from raw points.
func BenchmarkEvictRehydrate50k(b *testing.B) {
	warm, _ := streamingFixture(b)
	cfg := core.DefaultConfig()
	sess, err := NewSession(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := sess.Append(warm); err != nil {
		b.Fatal(err)
	}
	labels, err := sess.Labels()
	if err != nil {
		b.Fatal(err)
	}
	var probe bytes.Buffer
	if err := sess.Checkpoint(&probe); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(probe.Len()))
	b.ResetTimer()
	var restored *Session
	for i := 0; i < b.N; i++ {
		var ckpt bytes.Buffer
		ckpt.Grow(probe.Len())
		if err := sess.Checkpoint(&ckpt); err != nil {
			b.Fatal(err)
		}
		restored, err = RestoreSession(bytes.NewReader(ckpt.Bytes()), cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// The round trip is only a win if it is lossless: the rehydrated session
	// must serve the bit-identical labels.
	got, err := restored.Labels()
	if err != nil {
		b.Fatal(err)
	}
	for i := range labels {
		if got[i] != labels[i] {
			b.Fatalf("label %d diverged after evict/rehydrate: got %d, want %d", i, got[i], labels[i])
		}
	}
}

// BenchmarkMergeThroughput measures the incremental grid merge alone:
// 2-way merging a 1 % delta grid into the live 50k-point grid, reported in
// cells/s over the cells both inputs carry.
func BenchmarkMergeThroughput(b *testing.B) {
	warm, delta := streamingFixture(b)
	q, err := grid.NewQuantizerDataset(warm, 128, 1)
	if err != nil {
		b.Fatal(err)
	}
	live, _ := q.QuantizeDataset(warm, 1)
	dg, _ := q.QuantizeDataset(delta, 1)
	cells := live.Len() + dg.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged, _, _ := grid.MergeFlat(live, dg)
		if merged.Len() < live.Len() {
			b.Fatal("merge lost cells")
		}
	}
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkGridFootprint measures resident bytes per occupied cell of the
// two grid representations on real quantized workloads — the flat
// struct-of-arrays layout against the block-compressed PackedGrid — and
// times the pack itself. The ≥2× compression floor is asserted, not just
// reported: the packed representation exists to shrink the resident set,
// and a format change that quietly loses the win should fail here.
func BenchmarkGridFootprint(b *testing.B) {
	mixture := pointset.New(3, 200_000)
	if err := synth.StreamMixture(200_000, 3, 6, 0.3, 1, func(row []float64) error {
		mixture.AppendRow(row)
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	fixtures := []struct {
		name  string
		ds    *pointset.Dataset
		scale int
	}{
		{"fig2", synth.RunningExampleSized(800, 1).Flat(), 128},
		{"mixture3d", mixture, 64},
	}
	for _, fx := range fixtures {
		b.Run(fx.name, func(b *testing.B) {
			q, err := grid.NewQuantizerDataset(fx.ds, fx.scale, 1)
			if err != nil {
				b.Fatal(err)
			}
			g, _ := q.QuantizeDataset(fx.ds, 1)
			var pg *grid.PackedGrid
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pg = grid.PackFlat(g)
			}
			b.StopTimer()
			cells := float64(g.Len())
			flatBytes := float64(len(g.Coords))*2 + float64(len(g.Vals))*8 + float64(len(g.Size))*8
			packedBytes := float64(pg.Bytes())
			b.ReportMetric(flatBytes/cells, "flat-B/cell")
			b.ReportMetric(packedBytes/cells, "packed-B/cell")
			if packedBytes*2 > flatBytes {
				b.Fatalf("packed grid %d B for %d cells (%.1f B/cell) misses the 2x floor against flat %.1f B/cell",
					pg.Bytes(), g.Len(), packedBytes/cells, flatBytes/cells)
			}
		})
	}
}

// BenchmarkEmbedFig2 times the embedding front-end where it can't help: the
// Fig. 2 running example is already 2-d, so PCA(2) buys nothing and its
// whole cost — covariance, the Jacobi solve, the projection pass — is
// front-end overhead over the raw pipeline. The pair bounds the price of
// leaving WithEmbedding on for low-dimensional data.
func BenchmarkEmbedFig2(b *testing.B) {
	ds := synth.RunningExampleSized(800, 1)
	for _, bc := range []struct {
		name string
		spec embed.Spec
	}{
		{"raw", embed.Spec{}},
		{"pca", embed.Spec{Kind: embed.KindPCA, K: 2}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Embedding = bc.spec
			var ami float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Cluster(ds.Points, cfg)
				if err != nil {
					b.Fatal(err)
				}
				ami = metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
			}
			b.ReportMetric(ami, "AMI")
		})
	}
}

// BenchmarkEmbedHighDim times the front-end on its real workload — the d=64
// noisy-mixture scenario projected to its rank-4 signal subspace. PCA pays a
// 64×64 covariance accumulation plus the Jacobi solve per fit; the seeded
// random projection fits in O(d·k) draws, so the pair separates fit cost
// from the shared projection + clustering cost.
func BenchmarkEmbedHighDim(b *testing.B) {
	ds := synth.HighDimMixture(5, 250, 64, 4, 0.2, 1)
	for _, bc := range []struct {
		name  string
		spec  embed.Spec
		scale int
	}{
		{"pca", embed.Spec{Kind: embed.KindPCA, K: 4}, 12},
		{"rp", embed.Spec{Kind: embed.KindRP, K: 4, Seed: 2}, 16},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Embedding = bc.spec
			cfg.Scale = bc.scale
			var ami float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Cluster(ds.Points, cfg)
				if err != nil {
					b.Fatal(err)
				}
				ami = metrics.AMI(ds.Labels, res.Labels)
			}
			b.ReportMetric(ami, "AMI")
		})
	}
}

// BenchmarkWALReplicationThroughput measures the full replication data
// path one streamed mutation pays on the follower side: the primary frames
// and writes a 1 % (500-point) append, a live Tailer picks the frame up
// through its own read fd, and the follower parses it, folds the batch into
// its warm 50k-point session and journals the identical bytes into its own
// WAL. This is the per-record pipeline a follower runs continuously; it is
// off the primary's mutation hot path entirely (the primary's own cost is
// BenchmarkWALAppend), so the number bounds replication lag under load, not
// client-visible latency.
func BenchmarkWALReplicationThroughput(b *testing.B) {
	warm, delta := streamingFixture(b)
	cfg := core.DefaultConfig()
	sess, err := NewSession(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := sess.Append(warm); err != nil {
		b.Fatal(err)
	}
	primary, err := persist.OpenWAL(filepath.Join(b.TempDir(), "primary.log"), persist.SyncNever)
	if err != nil {
		b.Fatal(err)
	}
	defer primary.Close()
	follower, err := persist.OpenWAL(filepath.Join(b.TempDir(), "follower.log"), persist.SyncNever)
	if err != nil {
		b.Fatal(err)
	}
	defer follower.Close()
	tail, err := primary.NewTailer(0)
	if err != nil {
		b.Fatal(err)
	}
	defer tail.Close()
	idx := make([]int, delta.N)
	b.SetBytes(int64(8 * delta.N * delta.D))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := primary.AppendBatch(delta); err != nil {
			b.Fatal(err)
		}
		frame, _, err := tail.Next()
		if err != nil {
			b.Fatal(err)
		}
		rec, err := persist.ParseFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Append(rec.Batch); err != nil {
			b.Fatal(err)
		}
		if _, err := follower.AppendFrame(frame); err != nil {
			b.Fatal(err)
		}
		// Keep the follower session at its 50k steady state; the removal is
		// bookkeeping outside the measured pipeline.
		b.StopTimer()
		for j := range idx {
			idx[j] = warm.N + j
		}
		if err := sess.Remove(idx); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkFailover50k measures the warm-failover handoff a promoted
// follower pays before serving its first read: the replica session already
// holds every streamed mutation (that is what warm means — no checkpoint
// restore, no WAL replay at promote time), so the handoff cost is one
// labels pass over the maintained grid with the freshly streamed tail
// folded in. Compare BenchmarkColdRecovery50k, the same first read served
// without a follower: checkpoint restore plus tail replay come first there.
func BenchmarkFailover50k(b *testing.B) {
	warm, delta := streamingFixture(b)
	cfg := core.DefaultConfig()
	sess, err := NewSession(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := sess.Append(warm); err != nil {
		b.Fatal(err)
	}
	idx := make([]int, delta.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A follower serves no reads, so at promote time the label cache is
		// cold and the last streamed frames are still pending; stage that
		// state outside the measured handoff.
		b.StopTimer()
		if err := sess.Append(delta); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		labels, err := sess.Labels()
		if err != nil {
			b.Fatal(err)
		}
		if len(labels) != warm.N+delta.N {
			b.Fatalf("labels: got %d", len(labels))
		}
		b.StopTimer()
		for j := range idx {
			idx[j] = warm.N + j
		}
		if err := sess.Remove(idx); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
