package adawave

import (
	"bytes"
	"testing"
)

// TestSessionCheckpointFacade: the exported Checkpoint/RestoreSession pair
// round-trips a mutated session bit-identically, through both the shared
// Clusterer engine and the standalone constructor.
func TestSessionCheckpointFacade(t *testing.T) {
	data := SyntheticEvaluation(300, 0.6, 9)
	clusterer, err := NewClusterer(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sess := clusterer.NewSession()
	if err := sess.AppendPoints(data.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Labels(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Remove([]int{10, 11, 40}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := sess.Labels()
	if err != nil {
		t.Fatal(err)
	}

	shared, err := clusterer.RestoreSession(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	standalone, err := RestoreSession(bytes.NewReader(buf.Bytes()), DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, restored := range []*Session{shared, standalone} {
		got, err := restored.Labels()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("labels: got %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("label %d: got %d, want %d", i, got[i], want[i])
			}
		}
	}

	// A mismatched configuration must refuse to restore.
	bad := DefaultConfig()
	bad.Basis = HaarBasis()
	if _, err := RestoreSession(bytes.NewReader(buf.Bytes()), bad, 1); err == nil {
		t.Fatal("config mismatch must not restore")
	}
}
