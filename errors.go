package adawave

import (
	"adawave/internal/grid"
	"adawave/internal/persist"
	"adawave/internal/sched"
)

// The exported error taxonomy. Every error returned by the package's
// clustering, streaming and persistence entry points is classified under
// exactly one of these roots, matched with errors.Is — the message text is
// for humans and carries no contract. Serving layers map the taxonomy to
// wire codes (see cmd/adawave-serve and the adawave/client package):
//
//	errors.Is(err, adawave.ErrInvalidInput)      the caller's data or the
//	                                             effective configuration is at
//	                                             fault (non-finite coordinate,
//	                                             grid too small for the
//	                                             decomposition depth, transform
//	                                             densified past the growth cap,
//	                                             connectivity unsupported at
//	                                             this dimensionality) — fix the
//	                                             input, then retry
//	errors.Is(err, adawave.ErrNoPoints)          a read on an empty dataset or
//	                                             session — a sequencing error,
//	                                             not a crash
//	errors.Is(err, adawave.ErrConfigMismatch)    a checkpoint restored under a
//	                                             configuration other than the
//	                                             one it was written with
//	errors.Is(err, adawave.ErrEmbeddingMismatch) the embedding-specific
//	                                             refinement: checkpoint and
//	                                             engine disagree on the
//	                                             embedding spec (it also
//	                                             matches ErrConfigMismatch)
//	errors.Is(err, adawave.ErrCanceled)          the caller's context was
//	                                             canceled mid-pipeline; the
//	                                             engine unwound cleanly and the
//	                                             call can simply be retried
//	errors.Is(err, adawave.ErrDeadlineExceeded)  the caller's context deadline
//	                                             expired mid-pipeline; same
//	                                             clean-unwind guarantee
//	errors.Is(err, adawave.ErrResourceExhausted) the request was refused at
//	                                             admission by a tenant quota or
//	                                             the server's residency budget;
//	                                             nothing executed — resend the
//	                                             identical request after the
//	                                             retry-after hint
//
// ErrCanceled and ErrDeadlineExceeded wrap the originating context error, so
// errors.Is(err, context.Canceled) / errors.Is(err, context.DeadlineExceeded)
// hold as well.
var (
	// ErrInvalidInput tags failures the caller can fix by changing the data
	// or the configuration.
	ErrInvalidInput = grid.ErrInvalidInput
	// ErrNoPoints reports a clustering request over zero points.
	ErrNoPoints = grid.ErrNoPoints
	// ErrConfigMismatch reports a session checkpoint restored under a
	// differing configuration fingerprint.
	ErrConfigMismatch = persist.ErrConfigMismatch
	// ErrEmbeddingMismatch reports the embedding-specific fingerprint
	// disagreement: the checkpoint was taken under one embedding spec and
	// restored under another (or one side has no embedding at all). It wraps
	// ErrConfigMismatch, so code matching the broad root keeps working.
	ErrEmbeddingMismatch = persist.ErrEmbeddingMismatch
	// ErrCanceled tags computation abandoned because the context was
	// canceled.
	ErrCanceled = grid.ErrCanceled
	// ErrDeadlineExceeded tags computation abandoned because the context
	// deadline expired.
	ErrDeadlineExceeded = grid.ErrDeadlineExceeded
	// ErrResourceExhausted tags a request refused at admission because a
	// tenant quota (points, cells, concurrent folds, request rate) or the
	// server's residency budget is exhausted. The request did not execute;
	// it can be resent verbatim after the rejection's retry-after hint (on
	// the wire: HTTP 429 with a Retry-After header and a resource_exhausted
	// error envelope).
	ErrResourceExhausted = sched.ErrResourceExhausted
)
