package adawave_test

import (
	"testing"

	"adawave"
)

// The facade tests exercise the library exactly the way an external user
// would: only through the public API.

func TestQuickstartFlow(t *testing.T) {
	ds := adawave.SyntheticEvaluation(1000, 0.5, 1)
	res, err := adawave.Cluster(ds.Points, adawave.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters < 3 || res.NumClusters > 8 {
		t.Fatalf("clusters = %d, want ≈5", res.NumClusters)
	}
	if got := adawave.AMINonNoise(ds.Labels, res.Labels, adawave.NoiseLabel); got < 0.55 {
		t.Fatalf("AMI = %v", got)
	}
}

func TestFacadeBases(t *testing.T) {
	if len(adawave.Bases()) != 5 {
		t.Fatalf("expected 5 built-in bases, got %d", len(adawave.Bases()))
	}
	b, err := adawave.BasisByName("haar")
	if err != nil || b.Name != "haar" {
		t.Fatalf("BasisByName: %v %v", b.Name, err)
	}
	names := map[string]string{
		adawave.HaarBasis().Name:  "haar",
		adawave.DB4Basis().Name:   "db4",
		adawave.DB6Basis().Name:   "db6",
		adawave.CDF22Basis().Name: "cdf22",
		adawave.CDF13Basis().Name: "cdf13",
	}
	for got, want := range names {
		if got != want {
			t.Fatalf("basis constructor returned %q, want %q", got, want)
		}
	}
	if _, err := adawave.BasisByName("unknown"); err == nil {
		t.Fatal("unknown basis should error")
	}
}

func TestFacadeMetrics(t *testing.T) {
	u := []int{0, 0, 1, 1}
	if adawave.AMI(u, u) < 0.999 || adawave.NMI(u, u) < 0.999 || adawave.ARI(u, u) < 0.999 {
		t.Fatal("identical partitions should score 1")
	}
}

func TestFacadeMultiResolution(t *testing.T) {
	ds := adawave.Blobs(3, 300, 2, 0.02, 2)
	rs, err := adawave.ClusterMultiResolution(ds.Points, adawave.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("levels = %d", len(rs))
	}
}

func TestFacadeAutoScale(t *testing.T) {
	if s := adawave.AutoScale(28000, 2); s != 128 {
		t.Fatalf("AutoScale(28000,2) = %d, want 128", s)
	}
	if s := adawave.AutoScale(366, 33); s != 4 {
		t.Fatalf("AutoScale(366,33) = %d, want 4", s)
	}
	cfg := adawave.DefaultConfig()
	cfg.Scale = 0 // auto
	ds := adawave.Blobs(2, 200, 2, 0.02, 3)
	if _, err := adawave.Cluster(ds.Points, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAssignNoise(t *testing.T) {
	ds := adawave.Blobs(2, 400, 2, 0.02, 4)
	res, err := adawave.Cluster(ds.Points, adawave.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	full := adawave.AssignNoiseToNearest(ds.Points, res.Labels, 2)
	for _, l := range full {
		if l == adawave.Noise {
			t.Fatal("noise remained after reassignment")
		}
	}
}
