package adawave

import "adawave/internal/grid"

// Connectivity selects the neighbor relation used when labeling connected
// components of the thresholded grid.
type Connectivity = grid.Connectivity

// Connectivity values: Faces connects cells differing by ±1 in exactly one
// dimension (2·d neighbors, the default); Full connects cells differing by
// at most 1 in every dimension (3^d−1 neighbors, limited to 8 dimensions).
const (
	Faces = grid.Faces
	Full  = grid.Full
)

// An Option configures a Clusterer built by New (and, through
// Clusterer.NewSession / Clusterer.RestoreSession, every streaming session
// that shares its engine). Options layer over DefaultConfig, so zero options
// reproduce the paper's parameter-free defaults exactly; WithConfig replaces
// the whole base configuration for callers migrating from NewClusterer.
type Option func(*settings)

// settings is the accumulated option state: the Config the engine validates
// plus the facade-level worker count and out-of-core memory budget.
type settings struct {
	cfg              Config
	workers          int
	maxResidentBytes int64
}

// WithConfig replaces the base configuration the remaining options layer
// over (the functional-options rendering of NewClusterer's cfg parameter).
func WithConfig(cfg Config) Option {
	return func(s *settings) { s.cfg = cfg }
}

// WithWorkers sets the number of worker goroutines per pipeline stage;
// n ≤ 0 selects runtime.GOMAXPROCS(0) at each call (the default).
func WithWorkers(n int) Option {
	return func(s *settings) { s.workers = n }
}

// WithMaxResidentBytes sets the resident-memory budget of the out-of-core
// entry points (ClusterDatasetExternal, ClusterMappedFile): the external
// radix sort sizes its point chunks and in-memory run budget so the run's
// per-point heap — label and cell-memo outputs, chunk working set, retained
// sorted runs — stays within n bytes, spilling sorted runs to temp files
// beyond it. n ≤ 0 selects the 512 MiB default. The budget does not cover
// the O(cells) grid, whose size is bounded by the scale and the data's
// occupancy, not by the point count.
func WithMaxResidentBytes(n int64) Option {
	return func(s *settings) { s.maxResidentBytes = n }
}

// WithBasis selects the wavelet filter bank (default CDF(2,2), the paper's
// choice; use HaarBasis for high-dimensional data).
func WithBasis(b Basis) Option {
	return func(s *settings) { s.cfg.Basis = b }
}

// WithScale sets the number of grid cells per dimension; 0 selects the
// automatic scale from the data size and dimensionality.
func WithScale(scale int) Option {
	return func(s *settings) { s.cfg.Scale = scale }
}

// WithLevels sets the wavelet decomposition depth (default 1; 0 skips the
// transform — the ablation configuration).
func WithLevels(levels int) Option {
	return func(s *settings) { s.cfg.Levels = levels }
}

// WithThreshold selects the noise-threshold strategy applied to the sorted
// density curve (default ThreeSegmentFit, the paper's adaptive elbow).
func WithThreshold(strategy ThresholdStrategy) Option {
	return func(s *settings) { s.cfg.Threshold = strategy }
}

// WithConnectivity selects the component neighbor relation (default Faces).
func WithConnectivity(c Connectivity) Option {
	return func(s *settings) { s.cfg.Connectivity = c }
}

// WithCoeffEpsilon sets the coefficient-denoising fraction: transformed
// cells below eps × (max cell density) are discarded before the adaptive
// threshold is estimated. Must be in [0, 1).
func WithCoeffEpsilon(eps float64) Option {
	return func(s *settings) { s.cfg.CoeffEpsilon = eps }
}

// WithMinClusterCells demotes components with fewer cells than n to noise
// (1 disables the filter).
func WithMinClusterCells(n int) Option {
	return func(s *settings) { s.cfg.MinClusterCells = n }
}

// WithMinClusterMass demotes components carrying less than frac of the
// heaviest component's density mass to noise (0 disables; the heaviest
// component is never demoted).
func WithMinClusterMass(frac float64) Option {
	return func(s *settings) { s.cfg.MinClusterMass = frac }
}

// WithEmbedding installs a dimensionality-reduction front-end (see PCA and
// RandomProjection) as the pipeline's first stage. The zero Embedding
// disables it. Sessions created from the clusterer fit the embedding once on
// their first appended batch and checkpoint the fitted parameters; restoring
// under a different embedding spec fails with ErrEmbeddingMismatch.
func WithEmbedding(e Embedding) Option {
	return func(s *settings) { s.cfg.Embedding = e }
}

// WithPackedCells selects the grid representation for grids that stay
// resident — a streaming session's live base grid and the out-of-core
// path's merged output. true (the default) stores them block-compressed
// (delta-coded bit-packed coordinates, bit-packed integer masses), cutting
// bytes per occupied cell several-fold; false keeps the flat
// struct-of-arrays layout. Labels are bit-identical either way, and
// checkpoints restore across either setting.
func WithPackedCells(on bool) Option {
	return func(s *settings) { s.cfg.PackedCells = on }
}

// New constructs a Clusterer from functional options layered over
// DefaultConfig — the context-first v1 construction path:
//
//	c, err := adawave.New(adawave.WithWorkers(8), adawave.WithBasis(adawave.HaarBasis()))
//	res, err := c.ClusterDatasetContext(ctx, ds)
//
// The same option set configures streaming sessions: c.NewSession() and
// c.RestoreSession(r) share the clusterer's engine, workers and pooled
// buffers. NewClusterer(cfg, workers) remains as the explicit-Config form;
// New(WithConfig(cfg), WithWorkers(workers)) is equivalent.
func New(opts ...Option) (*Clusterer, error) {
	s := settings{cfg: DefaultConfig()}
	for _, opt := range opts {
		opt(&s)
	}
	c, err := NewClusterer(s.cfg, s.workers)
	if err != nil {
		return nil, err
	}
	c.maxResidentBytes = s.maxResidentBytes
	return c, nil
}
