package adawave_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	adawave "adawave"
)

// TestFacadeExternalMappedRoundTrip drives the whole out-of-core facade:
// stream a dataset into a mapped file, cluster it via ClusterMappedFile
// under a small budget, and require bit-identical labels to the in-RAM
// ClusterDataset path.
func TestFacadeExternalMappedRoundTrip(t *testing.T) {
	ds := adawave.RunningExample(17).Flat()
	path := filepath.Join(t.TempDir(), "points.awds")
	w, err := adawave.CreateMappedDataset(path, ds.D)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.N; i++ {
		if err := w.AppendRow(ds.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := adawave.New(adawave.WithWorkers(2), adawave.WithMaxResidentBytes(32<<20))
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ClusterDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ClusterMappedFile(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClusters != want.NumClusters || got.Threshold != want.Threshold {
		t.Fatalf("external: %d clusters @ %v, want %d @ %v",
			got.NumClusters, got.Threshold, want.NumClusters, want.Threshold)
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label %d: got %d, want %d", i, got.Labels[i], want.Labels[i])
		}
	}

	// Torn file surfaces the typed error through the facade.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ClusterMappedFile(context.Background(), path); !errors.Is(err, adawave.ErrCorruptDataset) {
		t.Fatalf("truncated file error %v is not ErrCorruptDataset", err)
	}
}
