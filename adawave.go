package adawave

import (
	"context"

	"adawave/internal/core"
	"adawave/internal/embed"
	"adawave/internal/wavelet"
)

// Noise is the label assigned to points that belong to no cluster.
const Noise = core.Noise

// Config holds AdaWave parameters; start from DefaultConfig. See the field
// documentation on core.Config (re-exported here) for details.
type Config = core.Config

// Result is the outcome of one AdaWave run: per-point labels (Noise or
// 0…NumClusters−1), the adaptively chosen threshold, the sorted density
// curve it was chosen on, and cell-count diagnostics for each pipeline
// stage.
type Result = core.Result

// ThresholdStrategy chooses the noise-filtering density threshold from the
// descending sorted-density curve of the transformed grid.
type ThresholdStrategy = core.ThresholdStrategy

// Threshold strategies. ThreeSegmentFit is the paper's adaptive elbow
// (default); SecondKnee is the turning-angle rendering of Algorithm 4;
// QuantileThreshold and FixedThreshold are the non-adaptive baselines.
type (
	ThreeSegmentFit   = core.ThreeSegmentFit
	SecondKnee        = core.SecondKnee
	QuantileThreshold = core.QuantileThreshold
	FixedThreshold    = core.FixedThreshold
)

// Basis is a wavelet filter bank in density-preserving (DC gain 1)
// normalization.
type Basis = wavelet.Basis

// Embedding specifies the optional dimensionality-reduction front-end that
// runs as the pipeline's first stage: raw rows are projected to K dimensions
// and everything downstream — grid, transform, threshold, components,
// assignment — operates in the projected space. The zero value disables the
// stage. Construct with PCA or RandomProjection and install with
// WithEmbedding; the same clusterer then clusters, streams and checkpoints
// in the embedded space (a streaming session fits the embedding once, on its
// first appended batch, and never refits).
type Embedding = embed.Spec

// PCA returns an Embedding that projects rows onto their top k principal
// components, fitted deterministically on (a stride sample of) the data.
// Best when the data concentrates near a k-dimensional linear subspace and
// the fit may adapt to the data.
func PCA(k int) Embedding {
	return Embedding{Kind: embed.KindPCA, K: k}
}

// RandomProjection returns an Embedding that projects rows through a seeded
// sparse random matrix (Achlioptas ±√(3/k) entries) down to k dimensions.
// Data-independent: the matrix depends only on (k, seed, input dimension),
// so distances are preserved in the Johnson–Lindenstrauss sense and results
// are reproducible across datasets sharing a shape.
func RandomProjection(k int, seed int64) Embedding {
	return Embedding{Kind: embed.KindRP, K: k, Seed: seed}
}

// DefaultConfig returns the paper's default parameters: scale 128,
// CDF(2,2) basis, one decomposition level, face connectivity, and the
// adaptive three-segment threshold.
func DefaultConfig() Config { return core.DefaultConfig() }

// AutoScale returns the automatic grid scale for n points in d dimensions
// (used when Config.Scale is 0).
func AutoScale(n, d int) int { return core.AutoScale(n, d) }

// Cluster runs AdaWave on points (row-major, all rows the same length).
// It is deterministic and does not modify points.
func Cluster(points [][]float64, cfg Config) (*Result, error) {
	return core.Cluster(points, cfg)
}

// ClusterMultiResolution runs AdaWave at every wavelet decomposition level
// from 1 to maxLevels in one pass, returning one Result per level: finer
// levels separate nearby structures, coarser levels merge them.
func ClusterMultiResolution(points [][]float64, cfg Config, maxLevels int) ([]*Result, error) {
	return core.ClusterMultiResolution(points, cfg, maxLevels)
}

// Clusterer is a reusable AdaWave engine: quantization, the separable
// wavelet transform and point assignment run sharded across worker
// goroutines over a flat struct-of-arrays grid, and scratch buffers are
// pooled across calls. A single Clusterer is safe for concurrent Cluster
// calls, and its output does not depend on the worker count. With a
// dyadic-tap basis — Haar, CDF(2,2) (the default), CDF(1,3) — it matches
// the sequential Cluster function label for label; with DB4/DB6 (whose
// irrational taps make float accumulation order-sensitive) results can
// differ from the sequential path within floating-point rounding.
type Clusterer struct {
	eng              *core.Engine
	maxResidentBytes int64
}

// NewClusterer validates cfg and returns a clusterer using the given number
// of worker goroutines per pipeline stage (workers ≤ 0 selects
// runtime.GOMAXPROCS(0) at each call).
func NewClusterer(cfg Config, workers int) (*Clusterer, error) {
	eng, err := core.NewEngine(cfg, workers)
	if err != nil {
		return nil, err
	}
	return &Clusterer{eng: eng}, nil
}

// Cluster runs the parallel AdaWave pipeline on points (a thin adapter that
// copies the rows into a flat Dataset first; use ClusterDataset to skip the
// copy).
func (c *Clusterer) Cluster(points [][]float64) (*Result, error) {
	return c.eng.Cluster(points)
}

// ClusterContext is Cluster with cooperative cancellation: every pipeline
// stage polls ctx at its shard boundaries, and a cancelled run unwinds
// cleanly — pooled buffers returned, no partial result — reporting an error
// matched by errors.Is against ErrCanceled or ErrDeadlineExceeded (and the
// originating context sentinel). The ctx-free methods are thin
// context.Background() wrappers over these.
func (c *Clusterer) ClusterContext(ctx context.Context, points [][]float64) (*Result, error) {
	return c.eng.ClusterContext(ctx, points)
}

// ClusterDataset runs the parallel AdaWave pipeline on a flat row-major
// Dataset — the allocation-free point-facing entry point. Each point's base
// cell is memoized during quantization, so assignment is one array lookup
// per point.
func (c *Clusterer) ClusterDataset(ds *Dataset) (*Result, error) {
	return c.eng.ClusterDataset(ds)
}

// ClusterDatasetContext is ClusterDataset with cooperative cancellation
// (see ClusterContext).
func (c *Clusterer) ClusterDatasetContext(ctx context.Context, ds *Dataset) (*Result, error) {
	return c.eng.ClusterDatasetContext(ctx, ds)
}

// ClusterMultiResolution runs the parallel pipeline at every decomposition
// level from 1 to maxLevels, clustering the levels concurrently (adapter
// form of ClusterMultiResolutionDataset).
func (c *Clusterer) ClusterMultiResolution(points [][]float64, maxLevels int) ([]*Result, error) {
	return c.eng.ClusterMultiResolution(points, maxLevels)
}

// ClusterMultiResolutionContext is ClusterMultiResolution with cooperative
// cancellation (see ClusterContext).
func (c *Clusterer) ClusterMultiResolutionContext(ctx context.Context, points [][]float64, maxLevels int) ([]*Result, error) {
	return c.eng.ClusterMultiResolutionContext(ctx, points, maxLevels)
}

// ClusterMultiResolutionDataset is ClusterMultiResolution on a flat
// Dataset: points are quantized once, and every level's assignment is
// rebuilt from one pass over the grid cells instead of one search per
// point per level.
func (c *Clusterer) ClusterMultiResolutionDataset(ds *Dataset, maxLevels int) ([]*Result, error) {
	return c.eng.ClusterMultiResolutionDataset(ds, maxLevels)
}

// ClusterMultiResolutionDatasetContext is ClusterMultiResolutionDataset with
// cooperative cancellation (see ClusterContext).
func (c *Clusterer) ClusterMultiResolutionDatasetContext(ctx context.Context, ds *Dataset, maxLevels int) ([]*Result, error) {
	return c.eng.ClusterMultiResolutionDatasetContext(ctx, ds, maxLevels)
}

// Config returns the clusterer's (validated) configuration.
func (c *Clusterer) Config() Config { return c.eng.Config() }

// Workers returns the configured worker count (0 = all processors).
func (c *Clusterer) Workers() int { return c.eng.Workers() }

// AssignNoiseToNearest reassigns Noise-labeled points to the cluster with
// the nearest centroid (recomputed iterations times) — the paper's
// protocol for fully labeled datasets that contain no true noise class.
// The nearest-centroid search runs sharded across all processors; the
// result does not depend on the worker count.
func AssignNoiseToNearest(points [][]float64, labels []int, iterations int) []int {
	return core.AssignNoiseToNearest(points, labels, iterations)
}

// AssignNoiseToNearestParallel is AssignNoiseToNearest with an explicit
// worker count for the nearest-centroid search (≤ 0 = all processors).
func AssignNoiseToNearestParallel(points [][]float64, labels []int, iterations, workers int) []int {
	return core.AssignNoiseToNearestParallel(points, labels, iterations, workers)
}

// HaarBasis returns the Haar wavelet basis. Its one-to-one cell mapping
// makes it the right choice for high-dimensional data, where longer
// filters densify the sparse grid.
func HaarBasis() Basis { return wavelet.Haar() }

// DB4Basis returns the 4-tap Daubechies wavelet basis.
func DB4Basis() Basis { return wavelet.DB4() }

// DB6Basis returns the 6-tap Daubechies wavelet basis (three vanishing
// moments).
func DB6Basis() Basis { return wavelet.DB6() }

// CDF22Basis returns the Cohen-Daubechies-Feauveau (2,2) basis — the
// paper's default.
func CDF22Basis() Basis { return wavelet.CDF22() }

// CDF13Basis returns the Cohen-Daubechies-Feauveau (1,3) basis.
func CDF13Basis() Basis { return wavelet.CDF13() }

// BasisByName returns the basis named "haar", "db4", "db6", "cdf22" or
// "cdf13".
func BasisByName(name string) (Basis, error) { return wavelet.ByName(name) }

// Bases returns all built-in wavelet bases.
func Bases() []Basis { return wavelet.Bases() }
