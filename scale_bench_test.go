package adawave

// Scale-axis benchmarks for the out-of-core pipeline: 10M points as the
// committed BENCH series entry (BenchmarkExternal10M), 100M as an opt-in
// smoke behind ADAWAVE_BENCH_100M=1 (the file alone is 1.6 GB). Both
// stream a synthetic mixture into a mapped-Dataset file with O(1) memory,
// cluster it through ClusterDatasetExternal under an explicit resident
// budget, and assert — via a runtime.ReadMemStats sampler — that peak heap
// growth stayed within the budget the caller configured.

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adawave/internal/core"
	"adawave/internal/synth"
)

// buildMappedMixture writes an n-point dim-D mixture to path (once per
// process — the 10M file costs ~160 MB and ~10 s, so iterations share it).
func buildMappedMixture(b *testing.B, path string, n, dim int) {
	b.Helper()
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		return
	}
	w, err := CreateMappedDataset(path, dim)
	if err != nil {
		b.Fatal(err)
	}
	if err := synth.StreamMixture(n, dim, 6, 0.3, 1, w.AppendRow); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

// heapSampler polls HeapAlloc until stopped and records the maximum seen.
type heapSampler struct {
	peak atomic.Uint64
	stop chan struct{}
	done sync.WaitGroup
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{})}
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		var m runtime.MemStats
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			runtime.ReadMemStats(&m)
			if m.HeapAlloc > s.peak.Load() {
				s.peak.Store(m.HeapAlloc)
			}
			select {
			case <-s.stop:
				return
			case <-t.C:
			}
		}
	}()
	return s
}

func (s *heapSampler) finish() uint64 {
	close(s.stop)
	s.done.Wait()
	return s.peak.Load()
}

// runExternalScale clusters the mapped file at path under opts and asserts
// the peak heap growth stayed within budget. Returns points/s.
func runExternalScale(b *testing.B, path string, opts core.ExternalOptions) {
	b.Helper()
	m, err := OpenMappedDataset(path)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	c, err := New(WithWorkers(runtime.GOMAXPROCS(0)))
	if err != nil {
		b.Fatal(err)
	}
	// Tighten the GC so HeapAlloc tracks the live set: the budget bounds
	// what the pipeline keeps reachable, and a 100%-overshoot GC would
	// hide a 2× working-set bug behind normal collector slack.
	old := debug.SetGCPercent(30)
	defer debug.SetGCPercent(old)
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := startHeapSampler()
		res, err := c.ClusterDatasetExternalOptions(context.Background(), m.Dataset(), opts)
		if err != nil {
			b.Fatal(err)
		}
		peak := s.finish()
		if len(res.Labels) != m.N() {
			b.Fatalf("labels: got %d, want %d", len(res.Labels), m.N())
		}
		if res.NumClusters < 1 {
			b.Fatalf("no clusters found at scale n=%d", m.N())
		}
		growth := int64(peak) - int64(base.HeapAlloc)
		if growth > opts.MaxResidentBytes {
			b.Fatalf("peak heap growth %d MiB exceeds the %d MiB resident budget",
				growth>>20, opts.MaxResidentBytes>>20)
		}
		b.ReportMetric(float64(growth)/(1<<20), "peakMiB")
		b.ReportMetric(float64(res.NumClusters), "clusters")
	}
	b.StopTimer()
	b.ReportMetric(float64(m.N())*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkExternal10M is the scale-axis gate: 10 million 2-D points
// clustered out-of-core under a 256 MiB resident budget, with chunking and
// spill thresholds forced small enough that the run exercises multiple
// chunks and on-disk sorted runs (not one lucky in-RAM pass). The budget
// was 384 MiB before the block-compressed grid representation; the
// observed peak is ~160 MiB (the 120 MiB per-point outputs dominate), so
// 256 MiB gates real working-set regressions while leaving GC-slack
// headroom.
func BenchmarkExternal10M(b *testing.B) {
	path := filepath.Join(os.TempDir(), "adawave-bench-10m.awds")
	buildMappedMixture(b, path, 10_000_000, 2)
	b.Cleanup(func() { os.Remove(path) })
	runExternalScale(b, path, core.ExternalOptions{
		MaxResidentBytes: 256 << 20,
		ChunkPoints:      2_000_000,
		SpillBytes:       8 << 20,
	})
}

// BenchmarkExternal100M is the opt-in 100-million-point smoke (1.6 GB
// mapped file, several minutes of wall clock): set ADAWAVE_BENCH_100M=1.
func BenchmarkExternal100M(b *testing.B) {
	if os.Getenv("ADAWAVE_BENCH_100M") == "" {
		b.Skip("set ADAWAVE_BENCH_100M=1 to run the 100M-point scale smoke")
	}
	path := filepath.Join(os.TempDir(), "adawave-bench-100m.awds")
	buildMappedMixture(b, path, 100_000_000, 2)
	b.Cleanup(func() { os.Remove(path) })
	runExternalScale(b, path, core.ExternalOptions{
		MaxResidentBytes: 2 << 30,
		ChunkPoints:      8_000_000,
		SpillBytes:       64 << 20,
	})
}
