package pointset

import (
	"math"
	"testing"
)

func TestFromSlicesRoundTrip(t *testing.T) {
	points := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	ds, err := FromSlices(points)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N != 3 || ds.D != 2 {
		t.Fatalf("shape: got N=%d D=%d", ds.N, ds.D)
	}
	rows := ds.Rows()
	for i, p := range points {
		for j, v := range p {
			if ds.Row(i)[j] != v || rows[i][j] != v {
				t.Fatalf("row %d col %d: got %v/%v, want %v", i, j, ds.Row(i)[j], rows[i][j], v)
			}
		}
	}
	// Rows are views: mutating one must write through to the backing slice.
	rows[1][0] = math.Pi
	if ds.Data[2] != math.Pi {
		t.Fatalf("Rows must alias the backing slice, got %v", ds.Data[2])
	}
}

func TestFromSlicesRagged(t *testing.T) {
	if _, err := FromSlices([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged input must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromSlices must panic on ragged input")
		}
	}()
	MustFromSlices([][]float64{{1, 2}, {3}})
}

func TestFromSlicesEmpty(t *testing.T) {
	ds, err := FromSlices(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N != 0 || ds.D != 0 || len(ds.Rows()) != 0 {
		t.Fatalf("empty input: got N=%d D=%d", ds.N, ds.D)
	}
}

func TestAppendRow(t *testing.T) {
	ds := New(0, 4) // dimension adopted from the first row
	ds.AppendRow([]float64{1, 2, 3})
	ds.AppendRow([]float64{4, 5, 6})
	if ds.N != 2 || ds.D != 3 {
		t.Fatalf("shape after append: N=%d D=%d", ds.N, ds.D)
	}
	if got := ds.Row(1); got[0] != 4 || got[2] != 6 {
		t.Fatalf("row 1: got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AppendRow must panic on a mismatched row length")
		}
	}()
	ds.AppendRow([]float64{7})
}

func TestRowIsCapped(t *testing.T) {
	// Row views must not allow append to bleed into the next row.
	ds := MustFromSlices([][]float64{{1, 2}, {3, 4}})
	r := ds.Row(0)
	r = append(r, 99)
	if ds.Data[2] != 3 {
		t.Fatalf("append through a row view overwrote the next row: %v", ds.Data)
	}
	_ = r
}

func TestClone(t *testing.T) {
	ds := MustFromSlices([][]float64{{1, 2}})
	c := ds.Clone()
	c.Data[0] = 42
	if ds.Data[0] != 1 {
		t.Fatal("Clone must not share backing storage")
	}
}
