//go:build !unix

package pointset

import "os"

// mapFloats on platforms without syscall.Mmap decodes the payload into
// memory — OpenMapped still works, it just loses the out-of-core property.
func mapFloats(f *os.File, n, d int) ([]float64, []byte, error) {
	floats, err := readFloats(f, n, d)
	return floats, nil, err
}

// unmapFloats matches the unix signature; there is never a region to free.
func unmapFloats(mm []byte) error { return nil }
