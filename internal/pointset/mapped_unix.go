//go:build unix

package pointset

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// mapFloats returns the payload of an open mapped-Dataset file as a
// float64 slice. On a little-endian host it is a zero-copy read-only mmap
// view (the returned region must be released with unmapFloats); on a
// big-endian host the little-endian payload cannot be viewed in place, so
// it is decoded into memory and the region is nil.
func mapFloats(f *os.File, n, d int) ([]float64, []byte, error) {
	if n == 0 {
		return nil, nil, nil
	}
	if !hostLittleEndian() {
		floats, err := readFloats(f, n, d)
		return floats, nil, err
	}
	size := mappedHeaderSize + n*d*8
	mm, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("pointset: mmap %s: %w", f.Name(), err)
	}
	floats := unsafe.Slice((*float64)(unsafe.Pointer(&mm[mappedHeaderSize])), n*d)
	return floats, mm, nil
}

// unmapFloats releases a region returned by mapFloats.
func unmapFloats(mm []byte) error { return syscall.Munmap(mm) }
