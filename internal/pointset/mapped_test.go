package pointset

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// writeMapped writes rows into a fresh mapped-Dataset file and returns its
// path.
func writeMapped(t *testing.T, rows [][]float64, d int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ds.awds")
	w, err := CreateMapped(path, d)
	if err != nil {
		t.Fatalf("CreateMapped: %v", err)
	}
	for _, r := range rows {
		if err := w.AppendRow(r); err != nil {
			t.Fatalf("AppendRow: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

// TestMappedRoundTrip writes a random dataset and checks the mapped view is
// bit-identical to the in-RAM one, rows included.
func TestMappedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, d = 997, 3
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64() * 1e3
		}
		rows[i] = row
	}
	path := writeMapped(t, rows, d)

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer m.Close()
	if m.N() != n || m.Dim() != d {
		t.Fatalf("mapped shape %d×%d, want %d×%d", m.N(), m.Dim(), n, d)
	}
	ds := m.Dataset()
	want := MustFromSlices(rows)
	if ds.N != want.N || ds.D != want.D {
		t.Fatalf("dataset shape %d×%d, want %d×%d", ds.N, ds.D, want.N, want.D)
	}
	for i := 0; i < n; i++ {
		got, exp := ds.Row(i), want.Row(i)
		for j := range exp {
			if math.Float64bits(got[j]) != math.Float64bits(exp[j]) {
				t.Fatalf("row %d dim %d: got %v want %v", i, j, got[j], exp[j])
			}
		}
	}
	// Rows-view parity with the in-RAM Dataset.
	mr, wr := ds.Rows(), want.Rows()
	for i := range wr {
		for j := range wr[i] {
			if mr[i][j] != wr[i][j] {
				t.Fatalf("Rows()[%d][%d]: got %v want %v", i, j, mr[i][j], wr[i][j])
			}
		}
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
}

// TestMappedEmpty round-trips a zero-point file.
func TestMappedEmpty(t *testing.T) {
	path := writeMapped(t, nil, 4)
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer m.Close()
	if m.N() != 0 || m.Dim() != 4 {
		t.Fatalf("shape %d×%d, want 0×4", m.N(), m.Dim())
	}
}

// TestMappedCorrupt covers every rejection path: truncated payload,
// appended garbage, bad magic, absurd header fields, and a writer that
// never reached Close. Each must fail with the typed ErrCorruptDataset.
func TestMappedCorrupt(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	mutate := func(name string, f func(t *testing.T, path string)) {
		t.Run(name, func(t *testing.T) {
			path := writeMapped(t, rows, 2)
			f(t, path)
			m, err := OpenMapped(path)
			if err == nil {
				m.Close()
				t.Fatalf("OpenMapped accepted a corrupt file")
			}
			if !errors.Is(err, ErrCorruptDataset) {
				t.Fatalf("error %v is not ErrCorruptDataset", err)
			}
		})
	}
	mutate("truncated-payload", func(t *testing.T, path string) {
		st, _ := os.Stat(path)
		if err := os.Truncate(path, st.Size()-5); err != nil {
			t.Fatal(err)
		}
	})
	mutate("truncated-into-header", func(t *testing.T, path string) {
		if err := os.Truncate(path, mappedHeaderSize-1); err != nil {
			t.Fatal(err)
		}
	})
	mutate("trailing-garbage", func(t *testing.T, path string) {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	})
	mutate("bad-magic", func(t *testing.T, path string) {
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("NOTADATA"), 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
	})
	mutate("zero-dim", func(t *testing.T, path string) {
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		var b [8]byte
		if _, err := f.WriteAt(b[:], 16); err != nil {
			t.Fatal(err)
		}
		f.Close()
	})
	mutate("overflowing-count", func(t *testing.T, path string) {
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], 1<<62)
		if _, err := f.WriteAt(b[:], 8); err != nil {
			t.Fatal(err)
		}
		f.Close()
	})

	t.Run("unclosed-writer", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "torn.awds")
		w, err := CreateMapped(path, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if err := w.AppendRow(r); err != nil {
				t.Fatal(err)
			}
		}
		// Simulate a crash: flush the buffer so data is on disk, but never
		// Close — the header keeps its invalid placeholder count.
		if err := w.bw.Flush(); err != nil {
			t.Fatal(err)
		}
		w.f.Close()
		w.f = nil
		m, err := OpenMapped(path)
		if err == nil {
			m.Close()
			t.Fatalf("OpenMapped accepted an unfinalized file")
		}
		if !errors.Is(err, ErrCorruptDataset) {
			t.Fatalf("error %v is not ErrCorruptDataset", err)
		}
	})
}

// TestMappedRowMismatch checks AppendRow rejects ragged rows.
func TestMappedRowMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.awds")
	w, err := CreateMapped(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendRow([]float64{1, 2}); err == nil {
		t.Fatal("AppendRow accepted a short row")
	}
}
