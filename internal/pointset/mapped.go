package pointset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Mapped-Dataset file format: a fixed 32-byte header followed by the
// row-major float64 payload, everything little-endian.
//
//	offset  size  field
//	0       8     magic "AWDSET01" (format tag + version)
//	8       8     n — number of points (uint64)
//	16      8     d — dimensionality (uint64)
//	24      8     reserved, zero
//	32      n·d·8 coordinates, row-major IEEE-754 float64
//
// The header is 32 bytes so the payload starts 8-byte aligned: an mmap view
// can expose it as a []float64 directly, and a Dataset built over that view
// reads rows in place — no copy, no per-point allocation, resident memory
// bounded by the page cache instead of the Go heap. CreateMapped streams
// rows through a buffered writer and stamps the true point count only on
// Close (the placeholder count is deliberately invalid), so a torn or
// truncated file — crashed writer, partial copy, tail chopped off — never
// passes OpenMapped's exact length check and is reported as
// ErrCorruptDataset instead of being silently clustered short.

// mappedMagic identifies a mapped-Dataset file; the trailing "01" is the
// format version.
const mappedMagic = "AWDSET01"

// mappedHeaderSize is the fixed header length. It is a multiple of 8 so the
// float64 payload of a page-aligned mapping is itself 8-byte aligned.
const mappedHeaderSize = 32

// mappedMaxDim bounds the dimensionality a mapped file may declare — far
// above any real workload, low enough that a corrupt header cannot drive
// the size arithmetic into overflow.
const mappedMaxDim = 1 << 20

// ErrCorruptDataset tags a mapped-Dataset file that fails validation: wrong
// magic or version, an impossible header, or a payload whose length does not
// match the declared point count (torn write, truncation). Match it with
// errors.Is.
var ErrCorruptDataset = errors.New("pointset: corrupt mapped dataset")

// corrupt builds an ErrCorruptDataset-tagged error.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptDataset, fmt.Sprintf(format, args...))
}

// MappedWriter streams rows into a mapped-Dataset file. Rows are buffered
// and encoded on the fly, so writing an N-point dataset needs O(1) memory;
// Close finalizes the header with the true point count. A writer that never
// reaches Close leaves a file OpenMapped rejects as corrupt.
type MappedWriter struct {
	f   *os.File
	bw  *bufio.Writer
	d   int
	n   uint64
	buf []byte
}

// CreateMapped creates (or truncates) a mapped-Dataset file for
// d-dimensional points at path. Fill it with AppendRow and finalize with
// Close.
func CreateMapped(path string, d int) (*MappedWriter, error) {
	if d <= 0 || d > mappedMaxDim {
		return nil, fmt.Errorf("pointset: mapped dataset dimension must be in [1, %d], got %d", mappedMaxDim, d)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &MappedWriter{
		f:   f,
		bw:  bufio.NewWriterSize(f, 1<<20),
		d:   d,
		buf: make([]byte, 8*d),
	}
	// Placeholder header: the point count is all-ones, which no valid file
	// can carry, so a writer that dies before Close leaves a file that
	// fails OpenMapped's validation instead of reading as empty.
	hdr := make([]byte, mappedHeaderSize)
	copy(hdr, mappedMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], ^uint64(0))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(d))
	if _, err := w.bw.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Dim returns the writer's dimensionality.
func (w *MappedWriter) Dim() int { return w.d }

// N returns the number of rows appended so far.
func (w *MappedWriter) N() int { return int(w.n) }

// AppendRow appends one point. The row length must equal the writer's
// dimensionality.
func (w *MappedWriter) AppendRow(row []float64) error {
	if len(row) != w.d {
		return fmt.Errorf("pointset: appending row of dimension %d to %d-dimensional mapped dataset", len(row), w.d)
	}
	for j, v := range row {
		binary.LittleEndian.PutUint64(w.buf[8*j:], math.Float64bits(v))
	}
	if _, err := w.bw.Write(w.buf); err != nil {
		return err
	}
	w.n++
	return nil
}

// Close flushes buffered rows, stamps the final point count into the
// header, syncs, and closes the file. Only a Close that returns nil yields
// a file OpenMapped accepts. Close is idempotent.
func (w *MappedWriter) Close() error {
	if w.f == nil {
		return nil
	}
	f := w.f
	w.f = nil
	err := w.bw.Flush()
	if err == nil {
		var nbuf [8]byte
		binary.LittleEndian.PutUint64(nbuf[:], w.n)
		_, err = f.WriteAt(nbuf[:], 8)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Mapped is a read-only Dataset backed by a mapped-Dataset file. On unix
// the coordinates are a zero-copy mmap view — the payload never enters the
// Go heap, so datasets far larger than memory quantize under the OS page
// cache's management; elsewhere (and on big-endian hosts) the payload is
// decoded into memory once. Close unmaps the view; the Dataset (and every
// Row view into it) is invalid afterwards.
type Mapped struct {
	ds Dataset
	mm []byte // mmap region; nil when the payload was decoded into memory
}

// OpenMapped opens and validates a mapped-Dataset file. A file whose magic,
// header, or byte length does not check out fails with an
// ErrCorruptDataset-tagged error.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // the mapping, once established, outlives the descriptor
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < mappedHeaderSize {
		return nil, corrupt("%s is %d bytes, smaller than the %d-byte header", path, size, mappedHeaderSize)
	}
	var hdr [mappedHeaderSize]byte
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, mappedHeaderSize), hdr[:]); err != nil {
		return nil, err
	}
	if string(hdr[:8]) != mappedMagic {
		return nil, corrupt("%s: bad magic %q (want %q)", path, hdr[:8], mappedMagic)
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	d := binary.LittleEndian.Uint64(hdr[16:24])
	if d == 0 || d > mappedMaxDim {
		return nil, corrupt("%s: dimensionality %d out of range [1, %d]", path, d, mappedMaxDim)
	}
	const maxInt = uint64(^uint(0) >> 1)
	if n > maxInt/8/d {
		return nil, corrupt("%s: declared size %d×%d overflows this platform", path, n, d)
	}
	want := int64(mappedHeaderSize) + int64(n*d*8)
	if size != want {
		return nil, corrupt("%s: %d bytes on disk, header declares %d points × %d dims = %d bytes (torn or truncated write?)",
			path, size, n, d, want)
	}
	floats, mm, err := mapFloats(f, int(n), int(d))
	if err != nil {
		return nil, err
	}
	return &Mapped{
		ds: Dataset{Data: floats, N: int(n), D: int(d)},
		mm: mm,
	}, nil
}

// Dataset returns the mapped file as a read-only flat Dataset view — hand
// it to any Dataset-consuming entry point. Mutating its Data (or the slices
// Row/Rows return) is undefined: on unix the backing pages are mapped
// read-only and a write faults.
func (m *Mapped) Dataset() *Dataset { return &m.ds }

// N returns the number of points.
func (m *Mapped) N() int { return m.ds.N }

// Dim returns the dimensionality.
func (m *Mapped) Dim() int { return m.ds.D }

// Close releases the mapping. The Dataset view and every row slice derived
// from it are invalid after Close. Close is idempotent.
func (m *Mapped) Close() error {
	mm := m.mm
	m.mm = nil
	m.ds = Dataset{}
	if mm == nil {
		return nil
	}
	return unmapFloats(mm)
}

// hostLittleEndian reports whether the host stores multi-byte integers
// little-endian — the precondition for the zero-copy float64 view over the
// little-endian file payload.
func hostLittleEndian() bool {
	return binary.NativeEndian.Uint16([]byte{0x01, 0x00}) == 1
}

// readFloats is the portable payload loader: decode the little-endian
// payload of f into a fresh slice. It is the fallback where mmap is
// unavailable (non-unix builds, big-endian hosts) and costs one full copy
// of the payload in memory.
func readFloats(f *os.File, n, d int) ([]float64, error) {
	if n == 0 {
		return nil, nil
	}
	r := bufio.NewReaderSize(io.NewSectionReader(f, mappedHeaderSize, int64(n)*int64(d)*8), 1<<20)
	out := make([]float64, n*d)
	var buf [8]byte
	for i := range out {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("pointset: reading mapped dataset payload: %w", err)
		}
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return out, nil
}
