// Package pointset provides the flat row-major point container of the
// AdaWave hot path. The whole pipeline is dominated by per-point work —
// quantization and per-level label assignment — and a [][]float64 costs one
// heap allocation and one pointer chase per point. Dataset packs all
// coordinates into a single row-major backing slice, so sweeping n points is
// one sequential scan; Rows gives zero-copy [][]float64 views for code that
// still speaks slices, and FromSlices converts the other way (one copy).
package pointset

import "fmt"

// Dataset is a flat row-major point set: point i occupies
// Data[i*D : (i+1)*D]. N is the number of points and D the dimensionality.
// The zero value is an empty dataset of dimension 0.
type Dataset struct {
	// Data holds the coordinates, row-major, N·D values.
	Data []float64
	// N is the number of points.
	N int
	// D is the dimensionality of each point.
	D int
}

// New returns an empty dataset of dimensionality d with room for capacity
// rows (use AppendRow to fill it).
func New(d, capacity int) *Dataset {
	if d < 0 {
		panic(fmt.Sprintf("pointset: negative dimension %d", d))
	}
	return &Dataset{Data: make([]float64, 0, capacity*d), D: d}
}

// FromSlices copies points into a freshly allocated flat dataset. All rows
// must share the same length; a ragged input is reported as an error (the
// flat layout cannot represent it).
func FromSlices(points [][]float64) (*Dataset, error) {
	if len(points) == 0 {
		return &Dataset{}, nil
	}
	d := len(points[0])
	ds := &Dataset{Data: make([]float64, 0, len(points)*d), D: d}
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("pointset: inconsistent dimensions %d and %d (row %d)", d, len(p), i)
		}
		ds.Data = append(ds.Data, p...)
	}
	ds.N = len(points)
	return ds, nil
}

// MustFromSlices is FromSlices for inputs known to be rectangular; it panics
// on ragged rows.
func MustFromSlices(points [][]float64) *Dataset {
	ds, err := FromSlices(points)
	if err != nil {
		panic(err)
	}
	return ds
}

// Row returns point i as a view into the backing slice (no copy; mutating
// the returned slice mutates the dataset).
func (ds *Dataset) Row(i int) []float64 {
	return ds.Data[i*ds.D : (i+1)*ds.D : (i+1)*ds.D]
}

// AppendRow appends one point. The row length must equal D (a dataset
// created with dimension 0 adopts the first row's length).
func (ds *Dataset) AppendRow(row []float64) {
	if ds.N == 0 && ds.D == 0 {
		ds.D = len(row)
	}
	if len(row) != ds.D {
		panic(fmt.Sprintf("pointset: appending row of dimension %d to %d-dimensional dataset", len(row), ds.D))
	}
	ds.Data = append(ds.Data, row...)
	ds.N++
}

// Rows returns the dataset as [][]float64 without copying coordinates: each
// row is a view into the flat backing slice. The row headers themselves are
// one allocation.
func (ds *Dataset) Rows() [][]float64 {
	out := make([][]float64, ds.N)
	for i := range out {
		out[i] = ds.Row(i)
	}
	return out
}

// Clone returns a deep copy.
func (ds *Dataset) Clone() *Dataset {
	return &Dataset{Data: append([]float64(nil), ds.Data...), N: ds.N, D: ds.D}
}
