package core

import (
	"context"
	"fmt"

	"adawave/internal/embed"
	"adawave/internal/grid"
	"adawave/internal/pointset"
)

// The pipeline as an explicit, ordered stage list. Every clustering path —
// one-shot Cluster/ClusterDataset, the streaming Session's re-cluster, the
// out-of-core external path, and each level of a multi-resolution pass —
// runs a contiguous slice of the same six stages over a shared pipeState:
//
//	embed → quantize → transform → threshold → connect → assign
//
// Entry points differ only in where they enter the list: a one-shot call
// runs it from the top, a Session re-enters at transform with its live base
// grid, the external path swaps the quantize stage's implementation, and a
// multi-resolution finisher enters at threshold with a per-level transform.
// The stage runner emits each stage's name to the test hook and polls
// cancellation exactly once per boundary, so hook sequences and abort
// positions are identical to the previously fused code; the embed stage is
// skipped entirely (no hook emission) when no embedding is configured.

// pipeState carries one clustering pass's intermediate products between
// stages. A state is used by exactly one pass and never shared.
type pipeState struct {
	cfg Config
	w   int
	// levels is the transform depth reported in the Result and used by the
	// ancestor lookup; the transform stage sets it from cfg.Levels, and a
	// multi-resolution finisher pins it to its own level.
	levels int

	// ds is the input rowset; the embed stage replaces it with the
	// projection.
	ds *pointset.Dataset
	// emb is the fitted embedder. Normally the embed stage fits it on ds;
	// a caller that already holds a fitted embedder (a restored Session)
	// presets it and the stage only transforms.
	emb embed.Embedder
	// ext selects the out-of-core quantizer when non-nil.
	ext *ExternalOptions

	base           *grid.FlatGrid   // canonical base grid, flat form
	pbase          *grid.PackedGrid // canonical base grid, packed form
	abase          ancestorGrid     // whichever of the two assignment reads
	ids            []int32          // memoized point→cell indexes into the base
	cellsQuantized int

	t          *grid.FlatGrid // transformed (and coefficient-denoised) grid
	kept       *grid.FlatGrid // cells surviving the threshold
	keptLabels []int32        // per-kept-cell component labels

	res  *Result
	done bool // short-circuit: remaining stages have nothing to do

	// cleanups run (reverse order) when the pass finishes, success or not —
	// pooled buffers go back even on a cancelled run.
	cleanups []func()
}

// pipeStage is one named step of the stage list.
type pipeStage struct {
	name string
	run  func(*Engine, context.Context, *pipeState) error
}

// stageList is the pipeline. Slices of it are the re-entry points:
// stageList[stageFromTransform:] is the Session's path, stageList[stageFromThreshold:]
// a multi-resolution finisher's.
var stageList = []pipeStage{
	{StageEmbed, (*Engine).stageEmbed},
	{StageQuantize, (*Engine).stageQuantize},
	{StageTransform, (*Engine).stageTransform},
	{StageThreshold, (*Engine).stageThreshold},
	{StageConnect, (*Engine).stageConnect},
	{StageAssign, (*Engine).stageAssign},
}

// Indexes into stageList for the documented re-entry points.
const (
	stageFromTop       = 0
	stageFromTransform = 2
	stageFromThreshold = 3
	stagesThroughQuant = 2 // run [embed, quantize] only
)

// runStages executes a contiguous slice of the stage list over st and
// returns the finished Result. Each boundary notifies the test hook and
// polls cancellation; registered cleanups run on every exit path.
func (e *Engine) runStages(ctx context.Context, st *pipeState, stages []pipeStage) (*Result, error) {
	defer func() {
		for i := len(st.cleanups) - 1; i >= 0; i-- {
			st.cleanups[i]()
		}
	}()
	for _, s := range stages {
		if s.name == StageEmbed && !st.cfg.Embedding.Enabled() {
			continue
		}
		if err := stage(ctx, s.name); err != nil {
			return nil, err
		}
		if err := s.run(e, ctx, st); err != nil {
			return nil, err
		}
		if st.done {
			break
		}
	}
	return st.res, nil
}

// stageEmbed projects the input rows through the configured embedding. The
// embedder is fitted here, on the very rows being clustered, unless the
// caller preset a fitted one (a Session fits once at first append and then
// presets it forever, so its projection never drifts across folds).
func (e *Engine) stageEmbed(ctx context.Context, st *pipeState) error {
	if st.emb == nil {
		emb, err := embed.New(st.cfg.Embedding)
		if err != nil {
			return err
		}
		if err := emb.Fit(st.ds); err != nil {
			return err
		}
		st.emb = emb
	}
	pds, err := st.emb.Transform(st.ds)
	if err != nil {
		return err
	}
	if st.ext != nil {
		// The projected copy is resident; charge it against the external
		// budget so the quantizer's derived chunk sizes stay honest.
		budget := st.ext.MaxResidentBytes
		if budget <= 0 {
			budget = DefaultMaxResidentBytes
		}
		budget -= int64(len(pds.Data)) * 8
		if budget <= 0 {
			return grid.InvalidInput(fmt.Errorf(
				"core: resident budget cannot hold the %d×%d projected rows; raise WithMaxResidentBytes",
				pds.N, pds.D))
		}
		st.ext.MaxResidentBytes = budget
	}
	st.ds = pds
	return nil
}

// stageQuantize resolves the effective scale against the (possibly
// projected) rows and builds the canonical base grid plus the per-point
// cell memo — in RAM normally, through the spill-to-disk external sort when
// st.ext is set.
func (e *Engine) stageQuantize(ctx context.Context, st *pipeState) error {
	st.cfg = resolveScaleND(st.cfg, st.ds.N, st.ds.D)
	q, err := grid.NewQuantizerDatasetCtx(ctx, st.ds, st.cfg.Scale, st.w)
	if err != nil {
		return err
	}
	if st.ext != nil {
		ext, err := deriveExtSort(*st.ext, st.ds.N, st.ds.D)
		if err != nil {
			return err
		}
		if st.cfg.PackedCells {
			// The merged grid comes out block-compressed straight from the
			// loser-tree merge; downstream, only the transform's private
			// unpacking is ever materialized flat.
			st.pbase, st.ids, err = q.QuantizeDatasetExternalPackedCtx(ctx, st.ds, st.w, ext)
			return err
		}
		st.base, st.ids, err = q.QuantizeDatasetExternalCtx(ctx, st.ds, st.w, ext)
		return err
	}
	st.base, st.ids, err = q.QuantizeDatasetCtx(ctx, st.ds, st.w)
	return err
}

// stageTransform runs the separable wavelet chain and the preliminary
// coefficient denoising. A flat base is permuted in place and restored to
// canonical order on every path (the Session's live grid survives an
// abort); a packed base transforms a pooled private unpacking — the
// promotion point where bit-packed integer masses become float64 densities
// — and is never disturbed.
func (e *Engine) stageTransform(ctx context.Context, st *pipeState) error {
	st.levels = st.cfg.Levels
	if st.pbase != nil {
		st.abase = st.pbase
		st.cellsQuantized = st.pbase.Len()
		u := st.pbase.UnpackInto(e.getEmptyGrid())
		st.cleanups = append(st.cleanups, func() { e.putGrid(u) })
		if st.cfg.Levels > 0 {
			levels, err := grid.TransformLevelsFlatCtx(ctx, u, st.cfg.Basis, st.cfg.Levels, st.w)
			if err != nil {
				return err
			}
			st.t = levels[len(levels)-1]
		} else {
			// The ablation path skips the transform; u is already a private
			// copy, so coefficient dropping can run on it directly.
			st.t = u
		}
	} else {
		st.abase = st.base
		st.cellsQuantized = st.base.Len()
		if st.cfg.Levels > 0 {
			levels, err := grid.TransformLevelsFlatCtx(ctx, st.base, st.cfg.Basis, st.cfg.Levels, st.w)
			// The transform (failed, cancelled or complete) may have
			// permuted the base mid-flight; restore the canonical order the
			// memoized ids index into on every path.
			st.base.SortCanonical()
			if err != nil {
				return err
			}
			st.t = levels[len(levels)-1]
		} else {
			// The ablation path skips the transform; finish on a copy so
			// the base grid (and the ids into it) survives coefficient
			// dropping.
			st.t = st.base.Clone()
		}
	}
	dropLowCoefficientsFlat(st.t, st.cfg.CoeffEpsilon)
	return nil
}

// stageThreshold initializes the Result, sorts the density curve and picks
// the adaptive noise cut. An empty transformed grid short-circuits the rest
// of the pipeline: every point is noise.
func (e *Engine) stageThreshold(ctx context.Context, st *pipeState) error {
	res := &Result{
		CellsTransformed: st.t.Len(),
		Levels:           st.levels,
		Scale:            st.cfg.Scale,
	}
	res.Labels = make([]int, len(st.ids))
	st.res = res
	if st.t.Len() == 0 {
		for i := range res.Labels {
			res.Labels[i] = Noise
		}
		res.CellsQuantized = st.cellsQuantized
		st.done = true
		return nil
	}
	// Sort the density curve in a pooled buffer; Result.Curve gets an
	// exact-size copy because it outlives the call.
	buf, _ := e.curves.Get().(*[]float64)
	if buf == nil {
		buf = new([]float64)
	}
	*buf = st.t.SortedDensitiesInto(*buf)
	res.Curve = append(make([]float64, 0, len(*buf)), *buf...)
	e.curves.Put(buf)
	res.Threshold, res.ThresholdIndex = st.cfg.Threshold.Cut(res.Curve)
	kept := st.t.Threshold(res.Threshold)
	if kept.Len() == 0 {
		kept = st.t
	}
	res.CellsKept = kept.Len()
	st.kept = kept
	return nil
}

// stageConnect labels connected components of the surviving cells and
// renumbers them by decreasing mass, demoting sub-floor components to noise.
func (e *Engine) stageConnect(ctx context.Context, st *pipeState) error {
	comp, ncomp, err := grid.ComponentsFlatAutoCtx(ctx, st.kept, st.cfg.Connectivity, st.w)
	if err != nil {
		return err
	}
	st.keptLabels, st.res.NumClusters = relabelBySizeFlat(st.kept, comp, ncomp, st.cfg.MinClusterCells, st.cfg.MinClusterMass)
	return nil
}

// stageAssign maps every point back through the per-level ancestor table:
// one pass over the base cells builds the cell→label table, then assignment
// is a single array lookup per point (the table stores Noise as −1, which
// is the Noise label itself).
func (e *Engine) stageAssign(ctx context.Context, st *pipeState) error {
	tbl, _ := e.tables.Get().(*[]int32)
	if tbl == nil {
		tbl = new([]int32)
	}
	cellLabels, err := st.abase.AncestorLabelsCtx(ctx, *tbl, st.kept, st.levels, st.keptLabels, st.w)
	*tbl = cellLabels
	if err != nil {
		// The pooled table goes back even on a cancelled pass.
		e.tables.Put(tbl)
		return err
	}
	res, ids := st.res, st.ids
	grid.ParallelRangesCtx(ctx, len(ids), st.w, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			res.Labels[i] = int(cellLabels[ids[i]])
		}
	})
	e.tables.Put(tbl)
	res.CellsQuantized = st.cellsQuantized
	return nil
}
