package core

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"adawave/internal/grid"
	"adawave/internal/pointset"
)

// Engine is the parallel, allocation-lean AdaWave pipeline: quantization is
// sharded across workers with exactly-merged per-shard accumulators, the
// separable wavelet transform sweeps radix-sorted slice lines in parallel
// instead of rebuilding coordinate maps, components are labeled by
// union-find over sorted runs, and point assignment is a single array
// lookup per point through a memoized point→cell table. Scratch buffers are
// pooled (radix/transform buffers in internal/grid; per-level grid clones
// and density-curve buffers on the Engine itself), so a long-lived Engine
// serves many requests without per-call allocation storms. An Engine is
// safe for concurrent use.
//
// The point-facing layer is point-major: ClusterDataset and
// ClusterMultiResolutionDataset consume a flat row-major pointset.Dataset
// (one backing slice, no per-point allocation or pointer chase), each
// point's base-cell index is computed once during quantization, and every
// per-level assignment pass is rebuilt from one pass over the *cells* (the
// ancestor label table) instead of recomputing coordinates and searching
// per point. The [][]float64 entry points remain as thin copying adapters.
//
// The Engine's output does not depend on the worker count: shard merges
// sum integer masses exactly, each transform output cell is accumulated by
// exactly one worker in a fixed input order, and component numbering
// reproduces the map BFS order. For bases whose filter taps are dyadic
// rationals — Haar, CDF(2,2) (the default) and CDF(1,3) — the arithmetic
// is exact and the Engine matches the sequential reference Cluster label
// for label, threshold included. DB4/DB6 taps are irrational, so there the
// two paths (and individual runs of the map-based path itself, whose
// accumulation follows map iteration order) can differ within last-ULP
// rounding, which can move a cell that sits exactly on the threshold.
type Engine struct {
	cfg     Config
	workers int
	// grids pools the per-level transform clones of ClusterMultiResolution,
	// curves the sorted-density scratch and tables the ancestor label table
	// of every finishing pass, so clustering L levels does not allocate L
	// fresh copies of each.
	grids  sync.Pool
	curves sync.Pool
	tables sync.Pool
}

// NewEngine validates cfg and returns an engine running the given number of
// worker goroutines per stage (≤ 0 selects runtime.GOMAXPROCS(0) at each
// call). The configuration is fixed for the engine's lifetime.
func NewEngine(cfg Config, workers int) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, workers: workers}, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Workers returns the configured worker count (0 = GOMAXPROCS).
func (e *Engine) Workers() int {
	if e.workers <= 0 {
		return 0
	}
	return e.workers
}

func (e *Engine) effectiveWorkers() int {
	if e.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.workers
}

// getGrid clones src into a pooled FlatGrid; putGrid returns it.
func (e *Engine) getGrid(src *grid.FlatGrid) *grid.FlatGrid {
	return src.CloneInto(e.getEmptyGrid())
}

// getEmptyGrid takes a pooled FlatGrid without copying anything into it —
// the landing buffer for unpacking a compressed base grid.
func (e *Engine) getEmptyGrid() *grid.FlatGrid {
	g, _ := e.grids.Get().(*grid.FlatGrid)
	if g == nil {
		g = &grid.FlatGrid{}
	}
	return g
}

func (e *Engine) putGrid(g *grid.FlatGrid) { e.grids.Put(g) }

// ClusterParallel runs one AdaWave clustering through a throwaway Engine —
// the convenience form of NewEngine + Cluster for one-shot callers.
func ClusterParallel(points [][]float64, cfg Config, workers int) (*Result, error) {
	e, err := NewEngine(cfg, workers)
	if err != nil {
		return nil, err
	}
	return e.Cluster(points)
}

// Cluster runs the parallel AdaWave pipeline on points ([][]float64
// adapter: the rows are copied into a flat dataset first). The result is
// identical to the sequential Cluster for the same configuration.
func (e *Engine) Cluster(points [][]float64) (*Result, error) {
	return e.ClusterContext(context.Background(), points)
}

// ClusterContext is Cluster with cooperative cancellation: every pipeline
// stage polls ctx at its shard boundaries, and a cancelled run unwinds
// cleanly (pooled buffers returned, no partial result), reporting an
// ErrCanceled- or ErrDeadlineExceeded-tagged error.
func (e *Engine) ClusterContext(ctx context.Context, points [][]float64) (*Result, error) {
	if len(points) == 0 {
		return nil, grid.ErrNoPoints
	}
	ds, err := pointset.FromSlices(points)
	if err != nil {
		return nil, err
	}
	return e.ClusterDatasetContext(ctx, ds)
}

// ClusterDataset runs the parallel AdaWave pipeline on a flat row-major
// dataset — the allocation-free point-facing entry point. The result is
// identical to Cluster on the same rows.
func (e *Engine) ClusterDataset(ds *pointset.Dataset) (*Result, error) {
	return e.ClusterDatasetContext(context.Background(), ds)
}

// ClusterDatasetContext is ClusterDataset with cooperative cancellation
// (see ClusterContext).
func (e *Engine) ClusterDatasetContext(ctx context.Context, ds *pointset.Dataset) (*Result, error) {
	if ds == nil || ds.N == 0 {
		return nil, grid.ErrNoPoints
	}
	st := &pipeState{cfg: e.cfg, w: e.effectiveWorkers(), ds: ds}
	return e.runStages(ctx, st, stageList[stageFromTop:])
}

// clusterFromBase re-enters the stage list at the transform with an
// existing canonical base grid and memoized per-point cell ids — the
// streaming Session's path: a live grid maintained by incremental merges
// feeds the identical downstream stages, so an incrementally built base
// yields the same Result as a one-shot run, bit for bit. cfg must already
// be resolved (see resolveScaleND). base's cell order is permuted during
// the transform and restored to canonical before returning — on cancelled
// runs too, so a Session's live grid survives the abort intact; its masses
// are never modified.
func (e *Engine) clusterFromBase(ctx context.Context, base *grid.FlatGrid, ids []int32, cfg Config, w int) (*Result, error) {
	st := &pipeState{cfg: cfg, w: w, base: base, ids: ids}
	return e.runStages(ctx, st, stageList[stageFromTransform:])
}

// clusterFromPacked is clusterFromBase for a block-compressed base grid,
// the re-entry point of packed-cell Sessions and the packed external path.
// The transform stage runs on a pooled private unpacking, so the packed
// grid itself is never permuted, and the assignment stage streams ancestor
// labels block by block off the compressed base directly.
func (e *Engine) clusterFromPacked(ctx context.Context, base *grid.PackedGrid, ids []int32, cfg Config, w int) (*Result, error) {
	st := &pipeState{cfg: cfg, w: w, pbase: base, ids: ids}
	return e.runStages(ctx, st, stageList[stageFromTransform:])
}

// ClusterMultiResolution runs the pipeline at every decomposition level
// from 1 to maxLevels in a single pass ([][]float64 adapter), like the
// sequential ClusterMultiResolution (which ignores cfg.Levels): the
// transform chain is computed level by level, and the per-level threshold/
// components/assignment stages — data-independent between levels — run
// concurrently.
func (e *Engine) ClusterMultiResolution(points [][]float64, maxLevels int) ([]*Result, error) {
	return e.ClusterMultiResolutionContext(context.Background(), points, maxLevels)
}

// ClusterMultiResolutionContext is ClusterMultiResolution with cooperative
// cancellation across the transform chain and every level's finishing pass.
func (e *Engine) ClusterMultiResolutionContext(ctx context.Context, points [][]float64, maxLevels int) ([]*Result, error) {
	if len(points) == 0 {
		return nil, grid.ErrNoPoints
	}
	ds, err := pointset.FromSlices(points)
	if err != nil {
		return nil, err
	}
	return e.ClusterMultiResolutionDatasetContext(ctx, ds, maxLevels)
}

// ClusterMultiResolutionDataset is ClusterMultiResolution on a flat
// dataset. Quantization (and the point→cell memo) happens once; each
// level's assignment is rebuilt from one pass over the cells, so per-level
// cost is O(cells·log cells + n) instead of O(n·d + n·log cells).
func (e *Engine) ClusterMultiResolutionDataset(ds *pointset.Dataset, maxLevels int) ([]*Result, error) {
	return e.ClusterMultiResolutionDatasetContext(context.Background(), ds, maxLevels)
}

// ClusterMultiResolutionDatasetContext is ClusterMultiResolutionDataset with
// cooperative cancellation (see ClusterMultiResolutionContext).
func (e *Engine) ClusterMultiResolutionDatasetContext(ctx context.Context, ds *pointset.Dataset, maxLevels int) ([]*Result, error) {
	if maxLevels < 1 {
		maxLevels = 1
	}
	if ds == nil || ds.N == 0 {
		return nil, grid.ErrNoPoints
	}
	st := &pipeState{cfg: e.cfg, w: e.effectiveWorkers(), ds: ds}
	if _, err := e.runStages(ctx, st, stageList[:stagesThroughQuant]); err != nil {
		return nil, err
	}
	return e.multiResolutionFromBase(ctx, st.base, st.ids, st.cfg, maxLevels, st.w)
}

// multiResolutionFromBase is the post-quantization half of
// ClusterMultiResolutionDataset, shared with the streaming Session: the
// transform chain starts from an existing canonical base grid with memoized
// point ids, and the per-level finishing passes run concurrently. base's
// cell order is permuted by the first transform and restored to canonical
// before any finisher reads it (and before returning); masses are not
// modified.
func (e *Engine) multiResolutionFromBase(ctx context.Context, base *grid.FlatGrid, ids []int32, cfg Config, maxLevels, w int) ([]*Result, error) {
	// The transform chain ends once any dimension shrinks below two cells,
	// so levels beyond log2(max size) can never produce a result — clamp
	// before sizing the result slices, so a caller-supplied (possibly
	// attacker-supplied, via adawave-serve's ?levels=) count cannot force
	// a giant upfront allocation.
	maxUseful := 0
	for _, s := range base.Size {
		bits := 0
		for v := s; v >= 2; v >>= 1 {
			bits++
		}
		if bits > maxUseful {
			maxUseful = bits
		}
	}
	if maxLevels > maxUseful {
		maxLevels = maxUseful
	}
	cellsQuantized := base.Len()
	results := make([]*Result, maxLevels)
	errs := make([]error, maxLevels)
	var wg sync.WaitGroup
	cur := base
	levels := 0
	for level := 1; level <= maxLevels; level++ {
		tooSmall := false
		for _, s := range cur.Size {
			if s < 2 {
				tooSmall = true
				break
			}
		}
		if tooSmall {
			break
		}
		next, err := grid.TransformFlatCtx(ctx, cur, cfg.Basis, w)
		if level == 1 {
			// The first transform permuted the base grid's cell order in
			// place (cancelled or not); restore the canonical order the
			// memoized ids index into before any finisher reads it.
			base.SortCanonical()
		}
		if err != nil {
			// In-flight finishers of earlier levels drain before the
			// cancellation (or transform failure) is reported.
			wg.Wait()
			return nil, err
		}
		cur = next
		t := e.getGrid(cur)
		levels = level
		wg.Add(1)
		go func(level int, t *grid.FlatGrid) {
			defer wg.Done()
			defer e.putGrid(t)
			dropLowCoefficientsFlat(t, cfg.CoeffEpsilon)
			res, err := e.finishClusteringFlat(ctx, t, base, ids, level, cfg, w)
			if err != nil {
				errs[level-1] = err
				return
			}
			res.CellsQuantized = cellsQuantized
			results[level-1] = res
		}(level, t)
	}
	wg.Wait()
	for _, err := range errs[:levels] {
		if err != nil {
			return nil, err
		}
	}
	return results[:levels], nil
}

// dropLowCoefficientsFlat mirrors dropLowCoefficients on the flat grid.
func dropLowCoefficientsFlat(t *grid.FlatGrid, eps float64) {
	var maxD float64
	for _, v := range t.Vals {
		if v > maxD {
			maxD = v
		}
	}
	cut := eps * maxD
	if cut <= 0 {
		cut = 1e-12 // always remove zero/negative coefficients
	}
	t.DropBelow(cut)
}

// ancestorGrid is the assignment base of a finishing pass: either
// representation of the canonical quantization grid can map each of its
// cells to a kept-grid ancestor label (flat: AncestorLabelsIntoCtx; packed:
// block-parallel decode-and-lookup).
type ancestorGrid interface {
	AncestorLabelsCtx(ctx context.Context, dst []int32, kept *grid.FlatGrid, levels int, keptLabels []int32, workers int) ([]int32, error)
}

// finishClusteringFlat re-enters the stage list at the threshold — the
// per-level finisher of a multi-resolution pass (threshold, components,
// assignment on an already-transformed grid; steps 3–6 of Alg. 1). t must
// be in canonical cell order (quantization and the full transform guarantee
// it) and is owned by the caller; base is the canonical-order quantization
// grid (in either representation), read-only, and ids holds each point's
// memoized index into it.
func (e *Engine) finishClusteringFlat(ctx context.Context, t *grid.FlatGrid, base ancestorGrid, ids []int32, levels int, cfg Config, workers int) (*Result, error) {
	st := &pipeState{cfg: cfg, w: workers, t: t, abase: base, ids: ids, levels: levels}
	return e.runStages(ctx, st, stageList[stageFromThreshold:])
}

// relabelBySizeFlat is relabelBySize on flat component labels: renumber
// components 0…k−1 in decreasing mass order (ties by original id, which is
// the map engine's original label) and demote components below the
// cell-count or mass-fraction floor to −1, never demoting the heaviest.
// It returns the per-cell new labels and the surviving cluster count.
func relabelBySizeFlat(kept *grid.FlatGrid, comp []int32, ncomp, minCells int, minMassFrac float64) ([]int32, int) {
	cells := make([]int32, ncomp)
	mass := grid.ComponentMasses(kept, comp, ncomp)
	for _, l := range comp {
		cells[l]++
	}
	order := make([]int32, ncomp)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if mass[order[a]] != mass[order[b]] {
			return mass[order[a]] > mass[order[b]]
		}
		return order[a] < order[b]
	})
	remap := make([]int32, ncomp)
	next := int32(0)
	var heaviest float64
	if ncomp > 0 {
		heaviest = mass[order[0]]
	}
	for rank, c := range order {
		tooSmall := int(cells[c]) < minCells || (minMassFrac > 0 && mass[c] < minMassFrac*heaviest)
		if tooSmall && rank > 0 {
			remap[c] = -1
			continue
		}
		remap[c] = next
		next++
	}
	out := make([]int32, len(comp))
	for i, l := range comp {
		out[i] = remap[l]
	}
	return out, int(next)
}
