package core

import (
	"runtime"
	"sort"
	"sync"

	"adawave/internal/grid"
)

// Engine is the parallel, allocation-lean AdaWave pipeline: quantization is
// sharded across workers with exactly-merged per-shard accumulators, the
// separable wavelet transform sweeps radix-sorted slice lines in parallel
// instead of rebuilding coordinate maps, components are labeled by
// union-find over sorted runs, and point assignment fans out over point
// shards. Scratch buffers are pooled (in internal/grid), so a long-lived
// Engine serves many requests without per-call allocation storms. An Engine
// is safe for concurrent use.
//
// The Engine's output does not depend on the worker count: shard merges
// sum integer masses exactly, each transform output cell is accumulated by
// exactly one worker in a fixed input order, and component numbering
// reproduces the map BFS order. For bases whose filter taps are dyadic
// rationals — Haar, CDF(2,2) (the default) and CDF(1,3) — the arithmetic
// is exact and the Engine matches the sequential reference Cluster label
// for label, threshold included. DB4/DB6 taps are irrational, so there the
// two paths (and individual runs of the map-based path itself, whose
// accumulation follows map iteration order) can differ within last-ULP
// rounding, which can move a cell that sits exactly on the threshold.
type Engine struct {
	cfg     Config
	workers int
}

// NewEngine validates cfg and returns an engine running the given number of
// worker goroutines per stage (≤ 0 selects runtime.GOMAXPROCS(0) at each
// call). The configuration is fixed for the engine's lifetime.
func NewEngine(cfg Config, workers int) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, workers: workers}, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Workers returns the configured worker count (0 = GOMAXPROCS).
func (e *Engine) Workers() int {
	if e.workers <= 0 {
		return 0
	}
	return e.workers
}

func (e *Engine) effectiveWorkers() int {
	if e.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.workers
}

// ClusterParallel runs one AdaWave clustering through a throwaway Engine —
// the convenience form of NewEngine + Cluster for one-shot callers.
func ClusterParallel(points [][]float64, cfg Config, workers int) (*Result, error) {
	e, err := NewEngine(cfg, workers)
	if err != nil {
		return nil, err
	}
	return e.Cluster(points)
}

// Cluster runs the parallel AdaWave pipeline on points. The result is
// identical to the sequential Cluster for the same configuration.
func (e *Engine) Cluster(points [][]float64) (*Result, error) {
	if len(points) == 0 {
		return nil, grid.ErrNoPoints
	}
	cfg := resolveScale(e.cfg, points)
	w := e.effectiveWorkers()

	q, err := grid.NewQuantizerParallel(points, cfg.Scale, w)
	if err != nil {
		return nil, err
	}
	f := q.QuantizeFlat(points, w)
	cellsQuantized := f.Len()

	t := f
	if cfg.Levels > 0 {
		levels, err := grid.TransformLevelsFlat(f, cfg.Basis, cfg.Levels, w)
		if err != nil {
			return nil, err
		}
		t = levels[len(levels)-1]
	}
	dropLowCoefficientsFlat(t, cfg.CoeffEpsilon)

	out, err := finishClusteringFlat(t, q, points, cfg.Levels, cfg, w)
	if err != nil {
		return nil, err
	}
	out.CellsQuantized = cellsQuantized
	return out, nil
}

// ClusterMultiResolution runs the pipeline at every decomposition level
// from 1 to maxLevels in a single pass, like the sequential
// ClusterMultiResolution (which ignores cfg.Levels): the transform chain is
// computed level by level, and the per-level threshold/components/
// assignment stages — data-independent between levels — run concurrently.
func (e *Engine) ClusterMultiResolution(points [][]float64, maxLevels int) ([]*Result, error) {
	if maxLevels < 1 {
		maxLevels = 1
	}
	if len(points) == 0 {
		return nil, grid.ErrNoPoints
	}
	cfg := resolveScale(e.cfg, points)
	w := e.effectiveWorkers()

	q, err := grid.NewQuantizerParallel(points, cfg.Scale, w)
	if err != nil {
		return nil, err
	}
	f := q.QuantizeFlat(points, w)

	results := make([]*Result, maxLevels)
	errs := make([]error, maxLevels)
	var wg sync.WaitGroup
	cur := f
	levels := 0
	for level := 1; level <= maxLevels; level++ {
		tooSmall := false
		for _, s := range cur.Size {
			if s < 2 {
				tooSmall = true
				break
			}
		}
		if tooSmall {
			break
		}
		cur = grid.TransformFlat(cur, cfg.Basis, w)
		t := cur.Clone()
		levels = level
		wg.Add(1)
		go func(level int, t *grid.FlatGrid) {
			defer wg.Done()
			dropLowCoefficientsFlat(t, cfg.CoeffEpsilon)
			res, err := finishClusteringFlat(t, q, points, level, cfg, w)
			if err != nil {
				errs[level-1] = err
				return
			}
			res.CellsQuantized = f.Len()
			results[level-1] = res
		}(level, t)
	}
	wg.Wait()
	for _, err := range errs[:levels] {
		if err != nil {
			return nil, err
		}
	}
	return results[:levels], nil
}

// dropLowCoefficientsFlat mirrors dropLowCoefficients on the flat grid.
func dropLowCoefficientsFlat(t *grid.FlatGrid, eps float64) {
	var maxD float64
	for _, v := range t.Vals {
		if v > maxD {
			maxD = v
		}
	}
	cut := eps * maxD
	if cut <= 0 {
		cut = 1e-12 // always remove zero/negative coefficients
	}
	t.DropBelow(cut)
}

// finishClusteringFlat performs threshold filtering, component labeling and
// point assignment on an already-transformed flat grid — steps 3–6 of
// Alg. 1, the flat mirror of finishClustering. t must be in canonical cell
// order (quantization and the full transform guarantee it).
func finishClusteringFlat(t *grid.FlatGrid, q *grid.Quantizer, points [][]float64, levels int, cfg Config, workers int) (*Result, error) {
	res := &Result{
		CellsTransformed: t.Len(),
		Levels:           levels,
		Scale:            cfg.Scale,
	}
	res.Labels = make([]int, len(points))
	if t.Len() == 0 {
		for i := range res.Labels {
			res.Labels[i] = Noise
		}
		return res, nil
	}
	res.Curve = t.SortedDensities()
	res.Threshold, res.ThresholdIndex = cfg.Threshold.Cut(res.Curve)
	kept := t.Threshold(res.Threshold)
	if kept.Len() == 0 {
		kept = t
	}
	res.CellsKept = kept.Len()
	comp, ncomp, err := grid.ComponentsFlat(kept, cfg.Connectivity)
	if err != nil {
		return nil, err
	}
	labels, numClusters := relabelBySizeFlat(kept, comp, ncomp, cfg.MinClusterCells, cfg.MinClusterMass)
	res.NumClusters = numClusters

	// Lookup table: a point's base cell right-shifted once per level is its
	// transformed-space ancestor; binary-search it in the kept grid.
	d := q.Dim()
	grid.ParallelRanges(len(points), workers, func(_, lo, hi int) {
		coords := make([]uint16, d)
		for i := lo; i < hi; i++ {
			q.CellCoordsU16(points[i], coords)
			for j := range coords {
				coords[j] >>= uint(levels)
			}
			if idx := kept.Find(coords); idx >= 0 && labels[idx] >= 0 {
				res.Labels[i] = int(labels[idx])
			} else {
				res.Labels[i] = Noise
			}
		}
	})
	return res, nil
}

// relabelBySizeFlat is relabelBySize on flat component labels: renumber
// components 0…k−1 in decreasing mass order (ties by original id, which is
// the map engine's original label) and demote components below the
// cell-count or mass-fraction floor to −1, never demoting the heaviest.
// It returns the per-cell new labels and the surviving cluster count.
func relabelBySizeFlat(kept *grid.FlatGrid, comp []int32, ncomp, minCells int, minMassFrac float64) ([]int32, int) {
	cells := make([]int32, ncomp)
	mass := grid.ComponentMasses(kept, comp, ncomp)
	for _, l := range comp {
		cells[l]++
	}
	order := make([]int32, ncomp)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if mass[order[a]] != mass[order[b]] {
			return mass[order[a]] > mass[order[b]]
		}
		return order[a] < order[b]
	})
	remap := make([]int32, ncomp)
	next := int32(0)
	var heaviest float64
	if ncomp > 0 {
		heaviest = mass[order[0]]
	}
	for rank, c := range order {
		tooSmall := int(cells[c]) < minCells || (minMassFrac > 0 && mass[c] < minMassFrac*heaviest)
		if tooSmall && rank > 0 {
			remap[c] = -1
			continue
		}
		remap[c] = next
		next++
	}
	out := make([]int32, len(comp))
	for i, l := range comp {
		out[i] = remap[l]
	}
	return out, int(next)
}
