package core

import (
	"fmt"
	"sync"
	"testing"

	"adawave/internal/datasets"
	"adawave/internal/synth"
	"adawave/internal/wavelet"
)

// assertResultsEqual requires the parallel engine's result to match the
// sequential reference field for field: identical labels, threshold, curve
// and per-stage cell counts.
func assertResultsEqual(t *testing.T, want, got *Result) {
	t.Helper()
	if want.NumClusters != got.NumClusters {
		t.Fatalf("NumClusters: want %d, got %d", want.NumClusters, got.NumClusters)
	}
	if want.Threshold != got.Threshold {
		t.Fatalf("Threshold: want %v, got %v", want.Threshold, got.Threshold)
	}
	if want.ThresholdIndex != got.ThresholdIndex {
		t.Fatalf("ThresholdIndex: want %d, got %d", want.ThresholdIndex, got.ThresholdIndex)
	}
	if want.CellsQuantized != got.CellsQuantized || want.CellsTransformed != got.CellsTransformed || want.CellsKept != got.CellsKept {
		t.Fatalf("cell counts: want %d/%d/%d, got %d/%d/%d",
			want.CellsQuantized, want.CellsTransformed, want.CellsKept,
			got.CellsQuantized, got.CellsTransformed, got.CellsKept)
	}
	if len(want.Curve) != len(got.Curve) {
		t.Fatalf("curve length: want %d, got %d", len(want.Curve), len(got.Curve))
	}
	for i := range want.Curve {
		if want.Curve[i] != got.Curve[i] {
			t.Fatalf("curve[%d]: want %v, got %v", i, want.Curve[i], got.Curve[i])
		}
	}
	if len(want.Labels) != len(got.Labels) {
		t.Fatalf("label count: want %d, got %d", len(want.Labels), len(got.Labels))
	}
	for i := range want.Labels {
		if want.Labels[i] != got.Labels[i] {
			t.Fatalf("label %d: want %d, got %d", i, want.Labels[i], got.Labels[i])
		}
	}
}

// TestEngineMatchesSequentialRunningExample is the tentpole equivalence
// gate: on the paper's running example the parallel engine must reproduce
// the sequential pipeline label for label at every worker count.
func TestEngineMatchesSequentialRunningExample(t *testing.T) {
	ds := synth.RunningExampleSized(800, 1)
	cfg := DefaultConfig()
	want, err := Cluster(ds.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			eng, err := NewEngine(cfg, workers)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Cluster(ds.Points)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, want, got)
		})
	}
}

// TestEngineMatchesSequentialHighDim repeats the gate on the 33-dimensional
// dermatology stand-in (Haar basis, automatic scale — the high-dimensional
// protocol).
func TestEngineMatchesSequentialHighDim(t *testing.T) {
	ds, err := datasets.ByName("dermatology", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scale = 0
	cfg.Basis = wavelet.Haar()
	want, err := Cluster(ds.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		eng, err := NewEngine(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Cluster(ds.Points)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, want, got)
	}
}

// TestEngineMatchesSequentialEvaluation covers the Fig. 7/8 evaluation
// mixture at heavy noise, where threshold selection does real work.
func TestEngineMatchesSequentialEvaluation(t *testing.T) {
	ds := synth.Evaluation(700, 0.8, 1)
	cfg := DefaultConfig()
	want, err := Cluster(ds.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Cluster(ds.Points)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, want, got)
}

// TestEngineMultiResolutionMatchesSequential checks the concurrent
// per-level finishing stage against the sequential multi-resolution pass.
func TestEngineMultiResolutionMatchesSequential(t *testing.T) {
	ds := synth.RunningExampleSized(400, 1)
	cfg := DefaultConfig()
	want, err := ClusterMultiResolution(ds.Points, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.ClusterMultiResolution(ds.Points, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("levels: want %d, got %d", len(want), len(got))
	}
	for l := range want {
		assertResultsEqual(t, want[l], got[l])
	}
}

// TestEngineConcurrentClusterCalls exercises one shared Engine from many
// goroutines (the -race CI job runs this with the race detector): every
// concurrent call must reproduce the sequential labels exactly.
func TestEngineConcurrentClusterCalls(t *testing.T) {
	ds := synth.RunningExampleSized(500, 1)
	cfg := DefaultConfig()
	want, err := Cluster(ds.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got, err := eng.Cluster(ds.Points)
				if err != nil {
					errs <- err
					return
				}
				for i := range want.Labels {
					if want.Labels[i] != got.Labels[i] {
						errs <- fmt.Errorf("label %d: want %d, got %d", i, want.Labels[i], got.Labels[i])
						return
					}
				}
				if got.Threshold != want.Threshold {
					errs <- fmt.Errorf("threshold: want %v, got %v", want.Threshold, got.Threshold)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEngineValidation mirrors the sequential entry points' error behavior.
func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}, 0); err == nil {
		t.Fatal("zero config must not validate")
	}
	eng, err := NewEngine(DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Cluster(nil); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := ClusterParallel(nil, DefaultConfig(), 2); err == nil {
		t.Fatal("empty input must error")
	}
}

// TestEngineLevelsZero covers the ablation path that skips the transform.
func TestEngineLevelsZero(t *testing.T) {
	ds := synth.RunningExampleSized(300, 1)
	cfg := DefaultConfig()
	cfg.Levels = 0
	want, err := Cluster(ds.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Cluster(ds.Points)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, want, got)
}
