package core

import (
	"math"
)

// ThresholdStrategy chooses the noise-filtering density threshold from the
// descending sorted-density curve of the transformed grid (paper Fig. 6 and
// Algorithm 4). Implementations must be deterministic.
type ThresholdStrategy interface {
	// Name identifies the strategy in results and benchmarks.
	Name() string
	// Cut returns the density value at the chosen cut and its index into
	// the descending curve. Cells with density ≥ value are kept.
	Cut(desc []float64) (value float64, index int)
}

// ThreeSegmentFit is the default adaptive strategy and the closest
// executable rendering of the paper's intent: the sorted density curve
// after low-pass filtering splits into a “signal” line, a “middle” line and
// a near-horizontal “noise” line, and “the position where the middle line
// and the noise line intersects is generally the best threshold”. We fit
// the best piecewise-linear three-segment approximation (least squares,
// exact dynamic program over both breakpoints with prefix sums) to the
// curve normalized to the unit square and cut at the second breakpoint.
type ThreeSegmentFit struct {
	// MaxSamples bounds the O(k²) breakpoint search; the curve is
	// subsampled evenly to at most this many points. 0 means 512.
	MaxSamples int
}

// Name implements ThresholdStrategy.
func (ThreeSegmentFit) Name() string { return "three-segment-fit" }

// Cut implements ThresholdStrategy.
func (s ThreeSegmentFit) Cut(desc []float64) (float64, int) {
	m := len(desc)
	if m == 0 {
		return 0, 0
	}
	if m < 8 || desc[0] == desc[m-1] {
		return desc[m-1], m - 1 // degenerate curve: keep everything
	}
	maxS := s.MaxSamples
	if maxS <= 0 {
		maxS = 512
	}
	// Subsample the curve evenly (always including both endpoints).
	k := m
	if k > maxS {
		k = maxS
	}
	idx := make([]int, k)
	xs := make([]float64, k)
	ys := make([]float64, k)
	span := desc[0] - desc[m-1]
	for t := 0; t < k; t++ {
		i := t * (m - 1) / (k - 1)
		idx[t] = i
		xs[t] = float64(t) / float64(k-1)
		ys[t] = (desc[i] - desc[m-1]) / span
	}
	f := newSegmentFitter(xs, ys)
	best := math.Inf(1)
	b2best := k - 3
	// Each segment needs ≥ 2 points: b1 ∈ [1, k−5], b2 ∈ [b1+2, k−3]
	// (segments are [0,b1], [b1,b2], [b2,k−1] sharing breakpoints).
	for b1 := 1; b1 <= k-5; b1++ {
		left := f.sse(0, b1)
		if left >= best {
			continue // later terms only add cost
		}
		for b2 := b1 + 2; b2 <= k-3; b2++ {
			cost := left + f.sse(b1, b2) + f.sse(b2, k-1)
			if cost < best {
				best = cost
				b2best = b2
			}
		}
	}
	return desc[idx[b2best]], idx[b2best]
}

// SecondKnee renders the paper's Algorithm 4 mechanics (turning angles on
// the sorted density curve, running maximum θ₀, the θ₀/Ratio test)
// executable: angles are computed on the curve normalized to the unit
// square over a smoothing window, the sharpest knee defines θ₀, and the cut
// is placed at the strongest knee after it whose angle still exceeds
// θ₀/Ratio (falling back to the sharpest knee itself when the curve has
// only two segments).
type SecondKnee struct {
	// Ratio is the paper's θ₀/3 factor. 0 means 3.
	Ratio float64
	// Window is the smoothing window for direction vectors, as a fraction
	// denominator of the curve length (window = max(1, m/Window)).
	// 0 means 100.
	Window int
}

// Name implements ThresholdStrategy.
func (SecondKnee) Name() string { return "second-knee" }

// Cut implements ThresholdStrategy.
func (s SecondKnee) Cut(desc []float64) (float64, int) {
	m := len(desc)
	if m == 0 {
		return 0, 0
	}
	if m < 8 || desc[0] == desc[m-1] {
		return desc[m-1], m - 1
	}
	ratio := s.Ratio
	if ratio <= 0 {
		ratio = 3
	}
	wdiv := s.Window
	if wdiv <= 0 {
		wdiv = 100
	}
	w := m / wdiv
	if w < 1 {
		w = 1
	}
	span := desc[0] - desc[m-1]
	px := func(i int) float64 { return float64(i) / float64(m-1) }
	py := func(i int) float64 { return (desc[i] - desc[m-1]) / span }
	angle := func(i int) float64 {
		ux, uy := px(i)-px(i-w), py(i)-py(i-w)
		vx, vy := px(i+w)-px(i), py(i+w)-py(i)
		nu := math.Hypot(ux, uy)
		nv := math.Hypot(vx, vy)
		if nu == 0 || nv == 0 {
			return 0
		}
		c := (ux*vx + uy*vy) / (nu * nv)
		if c > 1 {
			c = 1
		}
		if c < -1 {
			c = -1
		}
		return math.Acos(c)
	}
	// Sharpest knee overall.
	i1, theta0 := w, 0.0
	for i := w; i < m-w; i++ {
		if a := angle(i); a > theta0 {
			theta0 = a
			i1 = i
		}
	}
	// Strongest knee strictly after the first one.
	i2, theta2 := -1, 0.0
	for i := i1 + w; i < m-w; i++ {
		if a := angle(i); a > theta2 {
			theta2 = a
			i2 = i
		}
	}
	if i2 >= 0 && theta2 >= theta0/ratio {
		return desc[i2], i2
	}
	return desc[i1], i1
}

// QuantileThreshold keeps cells whose density is at or above the given
// upper quantile of the curve — the non-adaptive baseline WaveCluster uses.
type QuantileThreshold struct {
	// Q is the fraction of cells to drop from the bottom, e.g. 0.8 keeps
	// the densest 20 % of cells.
	Q float64
}

// Name implements ThresholdStrategy.
func (q QuantileThreshold) Name() string { return "quantile" }

// Cut implements ThresholdStrategy.
func (q QuantileThreshold) Cut(desc []float64) (float64, int) {
	m := len(desc)
	if m == 0 {
		return 0, 0
	}
	i := int(math.Round(float64(m) * (1 - q.Q)))
	if i < 0 {
		i = 0
	}
	if i >= m {
		i = m - 1
	}
	return desc[i], i
}

// FixedThreshold keeps cells with density ≥ Value regardless of the curve.
type FixedThreshold struct{ Value float64 }

// Name implements ThresholdStrategy.
func (FixedThreshold) Name() string { return "fixed" }

// Cut implements ThresholdStrategy.
func (f FixedThreshold) Cut(desc []float64) (float64, int) {
	for i, v := range desc {
		if v < f.Value {
			return f.Value, i
		}
	}
	return f.Value, len(desc) - 1
}

// segmentFitter computes least-squares line-fit residuals over index ranges
// of a point sequence in O(1) per query via prefix sums.
type segmentFitter struct {
	sx, sy, sxx, syy, sxy []float64
}

func newSegmentFitter(xs, ys []float64) *segmentFitter {
	n := len(xs)
	f := &segmentFitter{
		sx:  make([]float64, n+1),
		sy:  make([]float64, n+1),
		sxx: make([]float64, n+1),
		syy: make([]float64, n+1),
		sxy: make([]float64, n+1),
	}
	for i := 0; i < n; i++ {
		f.sx[i+1] = f.sx[i] + xs[i]
		f.sy[i+1] = f.sy[i] + ys[i]
		f.sxx[i+1] = f.sxx[i] + xs[i]*xs[i]
		f.syy[i+1] = f.syy[i] + ys[i]*ys[i]
		f.sxy[i+1] = f.sxy[i] + xs[i]*ys[i]
	}
	return f
}

// sse returns the least-squares residual of fitting one line to points
// i..j inclusive.
func (f *segmentFitter) sse(i, j int) float64 {
	n := float64(j - i + 1)
	sx := f.sx[j+1] - f.sx[i]
	sy := f.sy[j+1] - f.sy[i]
	sxx := f.sxx[j+1] - f.sxx[i]
	syy := f.syy[j+1] - f.syy[i]
	sxy := f.sxy[j+1] - f.sxy[i]
	cxx := sxx - sx*sx/n
	cyy := syy - sy*sy/n
	cxy := sxy - sx*sy/n
	if cxx < 1e-18 {
		if cyy < 0 {
			return 0
		}
		return cyy
	}
	sse := cyy - cxy*cxy/cxx
	if sse < 0 {
		return 0
	}
	return sse
}
