package core

import (
	"adawave/internal/grid"
)

// ClusterMultiResolution runs the AdaWave pipeline at every decomposition
// level from 1 to maxLevels in a single pass (quantizing and transforming
// once), returning one Result per level — the paper's multi-resolution
// property: coarser levels merge nearby structures, finer levels separate
// them. cfg.Levels is ignored.
func ClusterMultiResolution(points [][]float64, cfg Config, maxLevels int) ([]*Result, error) {
	cfg.Levels = 1 // validate against the weakest requirement
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if maxLevels < 1 {
		maxLevels = 1
	}
	if len(points) == 0 {
		return nil, grid.ErrNoPoints
	}
	cfg = resolveScale(cfg, points)
	q, err := grid.NewQuantizer(points, cfg.Scale)
	if err != nil {
		return nil, err
	}
	g, baseCells := q.QuantizeWithCells(points)

	out := make([]*Result, 0, maxLevels)
	cur := g
	for level := 1; level <= maxLevels; level++ {
		tooSmall := false
		for _, s := range cur.Size {
			if s < 2 {
				tooSmall = true
				break
			}
		}
		if tooSmall {
			break
		}
		cur = grid.Transform(cur, cfg.Basis)
		t := cur.Clone()
		dropLowCoefficients(t, cfg.CoeffEpsilon)
		res, err := finishClustering(t, baseCells, level, cfg)
		if err != nil {
			return nil, err
		}
		res.CellsQuantized = g.Len()
		out = append(out, res)
	}
	return out, nil
}

// finishClustering performs threshold filtering, component labeling and
// point assignment on an already-transformed grid (steps 3–6 of Alg. 1).
func finishClustering(t *grid.Grid, baseCells []grid.Key, levels int, cfg Config) (*Result, error) {
	res := &Result{
		CellsTransformed: t.Len(),
		Levels:           levels,
		Scale:            cfg.Scale,
	}
	res.Labels = make([]int, len(baseCells))
	if t.Len() == 0 {
		for i := range res.Labels {
			res.Labels[i] = Noise
		}
		return res, nil
	}
	res.Curve = t.SortedDensities()
	res.Threshold, res.ThresholdIndex = cfg.Threshold.Cut(res.Curve)
	kept := t.Threshold(res.Threshold)
	if kept.Len() == 0 {
		kept = t
	}
	res.CellsKept = kept.Len()
	cells, err := grid.Components(kept, cfg.Connectivity)
	if err != nil {
		return nil, err
	}
	labels := relabelBySize(kept, cells, cfg.MinClusterCells, cfg.MinClusterMass)
	numClusters := 0
	for _, l := range labels {
		if l+1 > numClusters {
			numClusters = l + 1
		}
	}
	res.NumClusters = numClusters
	// Per-point assignment probes the label map through a reused key
	// buffer — an allocation-free lookup instead of one ShiftKey
	// allocation per point.
	var buf []byte
	if len(baseCells) > 0 {
		buf = make([]byte, 0, 2*baseCells[0].Dim())
	}
	for i, bk := range baseCells {
		buf = grid.AppendShiftedKey(buf[:0], bk, levels)
		if l, ok := labels[grid.Key(buf)]; ok {
			res.Labels[i] = l
		} else {
			res.Labels[i] = Noise
		}
	}
	return res, nil
}
