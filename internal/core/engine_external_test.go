package core

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"adawave/internal/datasets"
	"adawave/internal/grid"
	"adawave/internal/pointset"
	"adawave/internal/synth"
	"adawave/internal/wavelet"
)

// extFixture is one dataset + config of the out-of-core equivalence gate.
type extFixture struct {
	name string
	ds   *pointset.Dataset
	cfg  Config
}

// externalFixtures returns the equivalence fixtures of the out-of-core
// path: the paper's Fig. 2 running example, the Fig. 7 evaluation mixture,
// and the 33-dimensional dermatology stand-in (Haar basis — long filters
// densify high-dimensional grids). Each fixture runs with both merged-grid
// representations: the flat path and the block-compressed one must
// reproduce the in-RAM result bit for bit.
func externalFixtures(t *testing.T) []extFixture {
	t.Helper()
	derm, err := datasets.ByName("dermatology", 1)
	if err != nil {
		t.Fatal(err)
	}
	haar := DefaultConfig()
	haar.Basis = wavelet.Haar()
	haar.Scale = 0 // automatic scale, as the high-dimensional tests use
	base := []extFixture{
		{"fig2", synth.RunningExampleSized(800, 1).Flat(), DefaultConfig()},
		{"fig7", synth.Evaluation(700, 0.8, 1).Flat(), DefaultConfig()},
		{"dermatology", pointset.MustFromSlices(derm.Points), haar},
	}
	out := make([]extFixture, 0, 2*len(base))
	for _, fx := range base {
		packed, flat := fx.cfg, fx.cfg
		packed.PackedCells, flat.PackedCells = true, false
		out = append(out,
			extFixture{fx.name + "/packed", fx.ds, packed},
			extFixture{fx.name + "/flat", fx.ds, flat})
	}
	return out
}

// TestClusterDatasetExternalEquivalence is the out-of-core acceptance
// gate: across random chunk sizes and spill thresholds (always-spill
// included), ClusterDatasetExternal must reproduce ClusterDataset bit for
// bit on every fixture — labels, threshold, curve, cell counts — and leave
// the spill directory empty after every iteration.
func TestClusterDatasetExternalEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, fx := range externalFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			eng, err := NewEngine(fx.cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			want, err := eng.ClusterDataset(fx.ds)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(len(fx.name))))
			for iter := 0; iter < 6; iter++ {
				chunk := 1 + rng.Intn(fx.ds.N+500)
				spill := []int64{1, 1 << 14, 1 << 30}[iter%3]
				tmp := t.TempDir()
				got, err := eng.ClusterDatasetExternal(ctx, fx.ds, ExternalOptions{
					ChunkPoints: chunk,
					SpillBytes:  spill,
					TempDir:     tmp,
				})
				if err != nil {
					t.Fatalf("chunk=%d spill=%d: %v", chunk, spill, err)
				}
				assertResultsEqual(t, want, got)
				entries, err := os.ReadDir(tmp)
				if err != nil {
					t.Fatal(err)
				}
				if len(entries) != 0 {
					t.Fatalf("chunk=%d spill=%d: %d leaked spill entries", chunk, spill, len(entries))
				}
			}
		})
	}
}

// TestClusterDatasetExternalMapped runs the full out-of-core stack — write
// a mapped file, open it, cluster through the external sort — and checks
// it matches the in-RAM dataset path exactly.
func TestClusterDatasetExternalMapped(t *testing.T) {
	ds := synth.RunningExampleSized(600, 3).Flat()
	path := filepath.Join(t.TempDir(), "fig2.awds")
	w, err := pointset.CreateMapped(path, ds.D)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.N; i++ {
		if err := w.AppendRow(ds.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := pointset.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	eng, err := NewEngine(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.ClusterDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.ClusterDatasetExternal(context.Background(), m.Dataset(), ExternalOptions{
		MaxResidentBytes: 64 << 20,
		TempDir:          t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, want, got)
}

// TestClusterDatasetExternalBudgetTooSmall: a budget that cannot even hold
// the per-point outputs must fail with the invalid-input tag, not OOM.
func TestClusterDatasetExternalBudgetTooSmall(t *testing.T) {
	ds := synth.RunningExampleSized(400, 5).Flat()
	eng, err := NewEngine(DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.ClusterDatasetExternal(context.Background(), ds, ExternalOptions{MaxResidentBytes: 16})
	if err == nil {
		t.Fatal("absurd budget accepted")
	}
	if !errors.Is(err, grid.ErrInvalidInput) {
		t.Fatalf("error %v is not ErrInvalidInput", err)
	}
}

// TestClusterDatasetExternalCancel: cancellation must unwind with the
// taxonomy error and leave no spill files.
func TestClusterDatasetExternalCancel(t *testing.T) {
	ds := synth.Evaluation(2000, 0.5, 9).Flat()
	eng, err := NewEngine(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tmp := t.TempDir()
	_, err = eng.ClusterDatasetExternal(ctx, ds, ExternalOptions{ChunkPoints: 512, SpillBytes: 1, TempDir: tmp})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, grid.ErrCanceled) {
		t.Fatalf("error %v is not ErrCanceled", err)
	}
	entries, rerr := os.ReadDir(tmp)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(entries) != 0 {
		t.Fatalf("%d leaked spill entries after cancel", len(entries))
	}
}
