package core

import (
	"fmt"
	"testing"

	"adawave/internal/datasets"
	"adawave/internal/pointset"
	"adawave/internal/synth"
	"adawave/internal/wavelet"
)

// The Dataset equivalence gate (exercised with -race in CI): the flat
// row-major path — memoized cell ids, per-level ancestor tables — must
// reproduce both the [][]float64 engine path and the sequential reference
// label for label, threshold and cell counts included.

func assertDatasetPathMatches(t *testing.T, points [][]float64, cfg Config, workerCounts []int) {
	t.Helper()
	want, err := Cluster(points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := pointset.MustFromSlices(points)
	for _, workers := range workerCounts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			eng, err := NewEngine(cfg, workers)
			if err != nil {
				t.Fatal(err)
			}
			slicesRes, err := eng.Cluster(points)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, want, slicesRes)
			dsRes, err := eng.ClusterDataset(ds)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, want, dsRes)
		})
	}
}

// TestDatasetPathRunningExample covers the Fig. 1/2 running example.
func TestDatasetPathRunningExample(t *testing.T) {
	ds := synth.RunningExampleSized(800, 1)
	assertDatasetPathMatches(t, ds.Points, DefaultConfig(), []int{1, 2, 4})
}

// TestDatasetPathEvaluationMixture covers the Fig. 7 mixture at heavy
// noise, where threshold selection does real work.
func TestDatasetPathEvaluationMixture(t *testing.T) {
	ds := synth.Evaluation(700, 0.8, 1)
	assertDatasetPathMatches(t, ds.Points, DefaultConfig(), []int{1, 4})
}

// TestDatasetPathDermatology covers the 33-dimensional dermatology stand-in
// (Haar basis, automatic scale — the high-dimensional protocol).
func TestDatasetPathDermatology(t *testing.T) {
	ds, err := datasets.ByName("dermatology", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scale = 0
	cfg.Basis = wavelet.Haar()
	assertDatasetPathMatches(t, ds.Points, cfg, []int{1, 4})
}

// TestDatasetPathLevelsZero covers the transform-skipping ablation, whose
// dataset path must clone the base grid before coefficient dropping.
func TestDatasetPathLevelsZero(t *testing.T) {
	ds := synth.RunningExampleSized(300, 1)
	cfg := DefaultConfig()
	cfg.Levels = 0
	assertDatasetPathMatches(t, ds.Points, cfg, []int{1, 4})
}

// TestDatasetPathMultiResolution: every level of the multi-resolution pass
// must agree between the sequential reference, the slice adapter and the
// flat dataset path (which reuses one quantization and pooled per-level
// buffers).
func TestDatasetPathMultiResolution(t *testing.T) {
	ds := synth.RunningExampleSized(400, 1)
	cfg := DefaultConfig()
	want, err := ClusterMultiResolution(ds.Points, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	flat := ds.Flat()
	for _, workers := range []int{1, 4} {
		eng, err := NewEngine(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ { // repeat: pooled buffers must not leak state
			got, err := eng.ClusterMultiResolutionDataset(flat, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("levels: got %d, want %d", len(got), len(want))
			}
			for l := range want {
				assertResultsEqual(t, want[l], got[l])
			}
		}
	}
}

// TestDatasetPathValidation mirrors the slice entry points' error behavior.
func TestDatasetPathValidation(t *testing.T) {
	eng, err := NewEngine(DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ClusterDataset(nil); err == nil {
		t.Fatal("nil dataset must error")
	}
	if _, err := eng.ClusterDataset(&pointset.Dataset{}); err == nil {
		t.Fatal("empty dataset must error")
	}
	if _, err := eng.ClusterMultiResolutionDataset(nil, 3); err == nil {
		t.Fatal("nil dataset must error")
	}
	if _, err := eng.Cluster([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows must error")
	}
}

// TestAssignNoiseToNearestParallelMatchesSequential: the sharded
// nearest-centroid search must be bit-identical to one worker for any
// worker count (centroid sums stay sequential).
func TestAssignNoiseToNearestParallelMatchesSequential(t *testing.T) {
	ds := synth.Evaluation(700, 0.75, 9)
	res, err := Cluster(ds.Points, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := AssignNoiseToNearestParallel(ds.Points, res.Labels, 3, 1)
	for _, workers := range []int{2, 4, 7} {
		got := AssignNoiseToNearestParallel(ds.Points, res.Labels, 3, workers)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("workers=%d: label %d: got %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
	for _, l := range want {
		if l == Noise {
			t.Fatal("no noise label may survive assignment")
		}
	}
}
