package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"adawave/internal/embed"
	"adawave/internal/grid"
	"adawave/internal/persist"
	"adawave/internal/pointset"
)

// Session is a long-lived, incrementally maintained clustering: instead of
// paying the full quantize→transform→threshold→connect pipeline on an
// immutable point slice, a Session owns a live base grid plus the memoized
// per-point cell ids and folds mutations in as they arrive. AdaWave's grid
// masses are additive point counts, so an appended batch quantizes into its
// own small canonical grid and 2-way merges into the live grid by cell id —
// O(cells_live + cells_delta), never re-touching the points already folded —
// and a removed point subtracts its unit mass in place, leaving a zero-mass
// tombstone that is swept on the next merge or compaction. Only the
// downstream stages (transform, threshold, components, assignment), which
// read the grid and never the points, re-run on the next read.
//
// Lifecycle: Append and Remove mark the session dirty and return
// immediately; Labels, Result and MultiResolution lazily fold the pending
// mutations and recompute, then cache until the next mutation. A Session is
// safe for one writer and many concurrent readers: reads of a clean session
// share a read lock, and the recompute (like every mutation) runs under the
// write lock.
//
// Equivalence guarantee: after any sequence of Append and Remove calls, the
// session's labels are bit-identical to a one-shot Engine.ClusterDataset
// over the current point set, and MultiResolution matches
// ClusterMultiResolutionDataset the same way. The incremental path is used
// only while it provably preserves the one-shot quantization frame — the
// session falls back to a full requantization when a batch expands the
// bounding box, when a removal lets go of a boundary-touching point (the
// box may shrink), or when the automatic scale resolves differently for the
// new point count. Everything downstream of quantization is byte-for-byte
// the one-shot code path.
//
// With an embedding configured the guarantee is stated in projected space:
// the embedder is fitted once, on the first appended batch, then frozen, and
// the session's labels are bit-identical to a one-shot run over its own
// projection of the current rows. For the data-independent random
// projection that coincides with Engine.ClusterDataset on the raw rows
// exactly; for PCA the one-shot path fits on the full input instead, so the
// two agree only when fitted on the same rows.
type Session struct {
	eng *Engine

	mu sync.RWMutex
	// ds owns every current point, row-major; rows [0, folded) are folded
	// into base/ids, rows [folded, ds.N) are pending appends.
	ds *pointset.Dataset
	// With an embedding configured, emb is the fitted embedder — fitted
	// once, on the first appended batch, and never refit, so the projection
	// (and therefore every label) is a deterministic function of the append
	// sequence — and eds mirrors ds row for row in projected space. The
	// quantizer, grids and bounding-box checks all live in projected space;
	// ds keeps the raw rows for checkpoints. Both stay nil without an
	// embedding.
	emb embed.Embedder
	eds *pointset.Dataset
	q   *grid.Quantizer
	// The live canonical grid (may hold tombstones) lives in exactly one of
	// base and pbase once the first fold happens, chosen by
	// Config.PackedCells: flat, or block-compressed (~3–5× fewer resident
	// bytes, same cells in the same order, bit-identical labels).
	base   *grid.FlatGrid
	pbase  *grid.PackedGrid
	ids    []int32 // memoized base-cell id per folded point
	scale  int     // resolved scale the grid was quantized at
	folded int
	// tombstoned records that a removal zeroed at least one cell; rebuild
	// forces a full requantization (bounding box may have changed).
	tombstoned bool
	rebuild    bool
	dirty      bool // cached res is stale
	res        *Result
}

// NewSession validates cfg and returns an empty streaming session running
// the given number of workers per stage (≤ 0 selects GOMAXPROCS).
func NewSession(cfg Config, workers int) (*Session, error) {
	eng, err := NewEngine(cfg, workers)
	if err != nil {
		return nil, err
	}
	return eng.NewSession(), nil
}

// NewSession returns an empty streaming session sharing the engine's
// configuration and pooled buffers. Any number of sessions may share one
// engine.
func (e *Engine) NewSession() *Session {
	return &Session{eng: e, ds: &pointset.Dataset{}, dirty: true}
}

// Config returns the session's (validated) configuration.
func (s *Session) Config() Config { return s.eng.Config() }

// Len returns the current number of points.
func (s *Session) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ds.N
}

// Dim returns the dimensionality, 0 before the first append.
func (s *Session) Dim() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ds.D
}

// Append adds a batch of points (copied out of batch) and marks the session
// dirty; the clustering is not recomputed until the next read. The first
// batch fixes the session's dimensionality.
func (s *Session) Append(batch *pointset.Dataset) error {
	return s.AppendContext(context.Background(), batch)
}

// AppendContext is Append with cancellation: a context already dead when the
// mutation would apply returns its taxonomy error and leaves the session
// untouched, so an aborted client request never half-commits.
func (s *Session) AppendContext(ctx context.Context, batch *pointset.Dataset) error {
	if batch == nil || batch.N == 0 {
		return nil
	}
	if batch.D == 0 {
		return grid.InvalidInput(fmt.Errorf("core: cannot append zero-dimensional points"))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := grid.CtxErr(ctx); err != nil {
		return err
	}
	if s.ds.N == 0 && s.ds.D == 0 {
		s.ds.D = batch.D
	}
	if batch.D != s.ds.D {
		return grid.InvalidInput(fmt.Errorf("core: appending %d-dimensional points to a %d-dimensional session", batch.D, s.ds.D))
	}
	if s.eng.cfg.Embedding.Enabled() {
		// Fit once, on the first batch ever appended (the WAL journals
		// batches in order, so crash recovery refits on the same rows and
		// reproduces the projection exactly); every batch then projects
		// through the frozen embedder before anything commits, so a
		// rejected batch leaves the session untouched.
		emb := s.emb
		if emb == nil {
			var err error
			if emb, err = embed.New(s.eng.cfg.Embedding); err != nil {
				return err
			}
			if err := emb.Fit(batch); err != nil {
				return err
			}
		}
		pbatch, err := emb.Transform(batch)
		if err != nil {
			return err
		}
		s.emb = emb
		if s.eds == nil {
			s.eds = &pointset.Dataset{D: emb.OutDim()}
		}
		s.eds.Data = append(s.eds.Data, pbatch.Data...)
		s.eds.N += pbatch.N
	}
	s.ds.Data = append(s.ds.Data, batch.Data[:batch.N*batch.D]...)
	s.ds.N += batch.N
	s.dirty = true
	return nil
}

// dataset returns the rowset the grid side of the session works on: the
// projected mirror when an embedding is configured, the raw rows otherwise.
func (s *Session) dataset() *pointset.Dataset {
	if s.eds != nil {
		return s.eds
	}
	return s.ds
}

// Remove deletes the points at the given indices (into the session's
// current point order, as reported by Labels), preserving the order of the
// survivors. Folded points give their unit mass back to the live grid as a
// signed-mass subtraction — cells emptied this way become tombstones swept
// on the next read — so a removal costs O(removed + n) row compaction, not
// a requantization; only letting go of a bounding-box-touching point forces
// the full rebuild (the one-shot frame may shrink).
func (s *Session) Remove(indices []int) error {
	return s.RemoveContext(context.Background(), indices)
}

// RemoveContext is Remove with cancellation: a context already dead when the
// mutation would apply returns its taxonomy error and leaves the session
// untouched (the removal itself is O(n) row compaction and runs to
// completion once started — it is never left half-applied).
func (s *Session) RemoveContext(ctx context.Context, indices []int) error {
	if len(indices) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := grid.CtxErr(ctx); err != nil {
		return err
	}
	n, d := s.ds.N, s.ds.D
	idx := append([]int(nil), indices...)
	sort.Ints(idx)
	for k, i := range idx {
		if i < 0 || i >= n {
			return grid.InvalidInput(fmt.Errorf("core: remove index %d out of range [0,%d)", i, n))
		}
		if k > 0 && i == idx[k-1] {
			return grid.InvalidInput(fmt.Errorf("core: duplicate remove index %d", i))
		}
	}
	pds := s.dataset()
	pd := pds.D
	for _, i := range idx {
		if i >= s.folded {
			// A pending row never contributed to the grid or its bounding
			// box; deleting it cannot change the one-shot frame.
			continue
		}
		// The bounding box (like the whole grid side) lives in projected
		// space when an embedding is configured.
		if s.q != nil && s.touchesBBox(pds.Data[i*pd:(i+1)*pd]) {
			s.rebuild = true
		}
		if s.pbase != nil {
			// In-place bit-field decrement; shrinking a mass never outgrows
			// the block's encoded width.
			if s.pbase.DecMassAt(int(s.ids[i])) <= 0 {
				s.tombstoned = true
			}
		} else {
			s.base.Vals[s.ids[i]]--
			if s.base.Vals[s.ids[i]] <= 0 {
				s.tombstoned = true
			}
		}
	}
	// Compact rows (raw and, with an embedding, their projected mirror) and
	// ids in place, preserving order. Folded rows precede pending rows, and
	// survivors only move left, so ids stays aligned.
	w, k, removedFolded := 0, 0, 0
	for i := 0; i < n; i++ {
		if k < len(idx) && idx[k] == i {
			k++
			if i < s.folded {
				removedFolded++
			}
			continue
		}
		if w != i {
			copy(s.ds.Data[w*d:(w+1)*d], s.ds.Data[i*d:(i+1)*d])
			if s.eds != nil {
				copy(s.eds.Data[w*pd:(w+1)*pd], s.eds.Data[i*pd:(i+1)*pd])
			}
			if i < s.folded {
				s.ids[w] = s.ids[i]
			}
		}
		w++
	}
	s.ds.Data = s.ds.Data[:w*d]
	s.ds.N = w
	if s.eds != nil {
		s.eds.Data = s.eds.Data[:w*pd]
		s.eds.N = w
	}
	s.folded -= removedFolded
	s.ids = s.ids[:s.folded]
	s.dirty = true
	return nil
}

// touchesBBox reports whether any coordinate of row sits exactly on the
// session quantizer's bounding box (so removing the point may shrink the
// one-shot frame).
func (s *Session) touchesBBox(row []float64) bool {
	for j, v := range row {
		if v == s.q.Mins[j] || v == s.q.Maxs[j] {
			return true
		}
	}
	return false
}

// expandsBBox reports whether any pending row falls outside the session
// quantizer's bounding box (non-finite coordinates count as outside, so the
// full-rebuild path reports them exactly like the one-shot constructor).
// Like every grid-side check it reads the projected rows when an embedding
// is configured.
func (s *Session) expandsBBox() bool {
	pds := s.dataset()
	d := pds.D
	mins, maxs := s.q.Mins, s.q.Maxs
	for i := s.folded; i < pds.N; i++ {
		for j, v := range pds.Data[i*d : (i+1)*d] {
			if !(v >= mins[j] && v <= maxs[j]) {
				return true
			}
		}
	}
	return false
}

// syncLocked folds pending appends into the live grid (or requantizes from
// scratch when the incremental path cannot reproduce the one-shot frame)
// and sweeps tombstones. The caller holds the write lock. It returns the
// resolved configuration for the current point count.
//
// Cancellation safety: every cancellable step (quantizing the delta, the
// 2-way merge, the full requantization) computes into private buffers and
// only commits to the session's fields after it succeeded, so a cancelled
// fold leaves the session exactly as it was before the call — same grid,
// same ids, same dirty/pending markers — and the next read retries it.
func (s *Session) syncLocked(ctx context.Context) (Config, error) {
	// The grid side works on the projected mirror when an embedding is
	// configured — the scale resolves against the projected dimensionality,
	// exactly as the one-shot pipeline resolves it after its embed stage.
	pds := s.dataset()
	n, d := pds.N, pds.D
	if n == 0 {
		return Config{}, grid.ErrNoPoints
	}
	if err := stage(ctx, StageFold); err != nil {
		return Config{}, err
	}
	cfg := resolveScaleND(s.eng.cfg, n, d)
	w := s.eng.effectiveWorkers()
	if s.q == nil || s.rebuild || cfg.Scale != s.scale || s.expandsBBox() {
		q, err := grid.NewQuantizerDatasetCtx(ctx, pds, cfg.Scale, w)
		if err != nil {
			return Config{}, err
		}
		base, ids, err := q.QuantizeDatasetCtx(ctx, pds, w)
		if err != nil {
			return Config{}, err
		}
		if cfg.PackedCells {
			s.pbase, s.base = grid.PackFlat(base), nil
		} else {
			s.base, s.pbase = base, nil
		}
		s.q, s.ids = q, ids
		s.scale = cfg.Scale
		s.folded, s.tombstoned, s.rebuild = n, false, false
		return cfg, nil
	}
	if s.folded < n {
		delta := &pointset.Dataset{Data: pds.Data[s.folded*d:], N: n - s.folded, D: d}
		dg, dids, err := s.q.QuantizeDatasetCtx(ctx, delta, w)
		if err != nil {
			return Config{}, err
		}
		var liveRemap, deltaRemap []int32
		if s.pbase != nil {
			// The 2-way fold streams the compressed live grid and re-packs
			// the union as it is emitted — MergeFlatCtx semantics, block
			// representation throughout.
			var merged *grid.PackedGrid
			merged, liveRemap, deltaRemap, err = grid.MergePackedFlatCtx(ctx, s.pbase, dg)
			if err != nil {
				return Config{}, err
			}
			s.pbase = merged
		} else {
			var merged *grid.FlatGrid
			merged, liveRemap, deltaRemap, err = grid.MergeFlatCtx(ctx, s.base, dg)
			if err != nil {
				return Config{}, err
			}
			s.base = merged
		}
		// Commit point: nothing below can fail or be cancelled.
		for i, id := range s.ids {
			s.ids[i] = liveRemap[id]
		}
		for _, id := range dids {
			s.ids = append(s.ids, deltaRemap[id])
		}
		s.folded, s.tombstoned = n, false
	} else if s.tombstoned {
		// The compaction sweep is O(cells) and never left half-done; poll
		// before starting.
		if err := grid.CtxErr(ctx); err != nil {
			return Config{}, err
		}
		if s.pbase != nil {
			if cp, remap := s.pbase.Compact(); remap != nil {
				for i, id := range s.ids {
					s.ids[i] = remap[id]
				}
				s.pbase = cp
			}
		} else if remap := s.base.Compact(); remap != nil {
			for i, id := range s.ids {
				s.ids[i] = remap[id]
			}
		}
		s.tombstoned = false
	}
	return cfg, nil
}

// Result returns the clustering of the current point set, recomputing only
// if a mutation happened since the last read. The returned Result (its
// Labels included) is shared between callers and must not be modified; a
// later recompute replaces rather than mutates it, so concurrent readers
// holding an older Result stay safe.
func (s *Session) Result() (*Result, error) {
	return s.ResultContext(context.Background())
}

// ResultContext is Result with cooperative cancellation: the fold and every
// recompute stage poll ctx at shard boundaries. A cancelled read reports an
// ErrCanceled/ErrDeadlineExceeded-tagged error and leaves the session
// exactly as before the call — the live grid back in canonical order, the
// pending mutations still pending — so the next read recomputes the
// identical result.
func (s *Session) ResultContext(ctx context.Context) (*Result, error) {
	s.mu.RLock()
	if !s.dirty {
		res := s.res
		s.mu.RUnlock()
		return res, nil
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty {
		cfg, err := s.syncLocked(ctx)
		if err != nil {
			return nil, err
		}
		var res *Result
		if s.pbase != nil {
			res, err = s.eng.clusterFromPacked(ctx, s.pbase, s.ids, cfg, s.eng.effectiveWorkers())
		} else {
			res, err = s.eng.clusterFromBase(ctx, s.base, s.ids, cfg, s.eng.effectiveWorkers())
		}
		if err != nil {
			return nil, err
		}
		s.res = res
		s.dirty = false
	}
	return s.res, nil
}

// Labels returns the per-point labels of the current point set, in the
// session's point order (appends keep arrival order; removals close the
// gaps). The slice is shared — treat it as read-only.
func (s *Session) Labels() ([]int, error) {
	return s.LabelsContext(context.Background())
}

// LabelsContext is Labels with cooperative cancellation (see ResultContext).
func (s *Session) LabelsContext(ctx context.Context) ([]int, error) {
	res, err := s.ResultContext(ctx)
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}

// MultiResolution clusters the current point set at every decomposition
// level from 1 to maxLevels in one pass over the live grid (points are
// never re-quantized), matching ClusterMultiResolutionDataset on the same
// points level for level. Unlike Result it is not cached. The write lock
// is held only to fold pending mutations and snapshot the grid state; the
// multi-level pass itself runs on a private clone, so concurrent Labels
// readers (and other MultiResolution calls) proceed during the compute.
func (s *Session) MultiResolution(maxLevels int) ([]*Result, error) {
	return s.MultiResolutionContext(context.Background(), maxLevels)
}

// MultiResolutionContext is MultiResolution with cooperative cancellation.
// The multi-level pass computes on a private clone of the live grid, so a
// cancelled call cannot disturb the session state at all.
func (s *Session) MultiResolutionContext(ctx context.Context, maxLevels int) ([]*Result, error) {
	if maxLevels < 1 {
		maxLevels = 1
	}
	s.mu.Lock()
	cfg, err := s.syncLocked(ctx)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	// Clone under the lock: the transform permutes its input grid in
	// place, and a concurrent Remove mutates base masses and ids in place.
	// A packed base unpacks here — the clone and the integer→float64 mass
	// promotion in one pass.
	var base *grid.FlatGrid
	if s.pbase != nil {
		base = s.pbase.Unpack()
	} else {
		base = s.base.Clone()
	}
	ids := append([]int32(nil), s.ids...)
	s.mu.Unlock()
	return s.eng.multiResolutionFromBase(ctx, base, ids, cfg, maxLevels, s.eng.effectiveWorkers())
}

// ConfigFingerprint renders cfg as the persisted configuration fingerprint
// — the single canonical renderer shared by Session.Checkpoint,
// RestoreSession and the serving layer's config.json, so the two sides can
// never drift apart. The basis is named (the built-in filter banks are
// fixed by name); the threshold strategy is rendered with its parameter
// values (%#v of the concrete strategy), so restoring a checkpoint under
// e.g. a FixedThreshold with a different cut is a detected mismatch, not a
// silent divergence.
func ConfigFingerprint(cfg Config) persist.ConfigMeta {
	conn := "faces"
	if cfg.Connectivity == grid.Full {
		conn = "full"
	}
	return persist.ConfigMeta{
		Scale:           cfg.Scale,
		Levels:          cfg.Levels,
		Basis:           cfg.Basis.Name,
		Connectivity:    conn,
		CoeffEpsilon:    cfg.CoeffEpsilon,
		Threshold:       fmt.Sprintf("%s %#v", cfg.Threshold.Name(), cfg.Threshold),
		MinClusterCells: cfg.MinClusterCells,
		MinClusterMass:  cfg.MinClusterMass,
		Embedding:       cfg.Embedding.String(),
	}
}

// Checkpoint serializes the session's full state to w in the versioned,
// CRC-framed checkpoint format of internal/persist: configuration
// fingerprint, every current point row, the memoized per-point cell ids,
// the quantizer frame and the live grid. It runs under the writer lock and
// folds pending mutations first (which also sweeps any removal tombstones),
// so the written grid is canonical and compact at any point in an
// append/remove sequence — a checkpoint taken between a Remove and the next
// read round-trips like any other. RestoreSession rebuilds a session that
// reproduces this one's labels bit for bit without requantizing a point.
func (s *Session) Checkpoint(w io.Writer) error {
	return s.CheckpointContext(context.Background(), w)
}

// CheckpointContext is Checkpoint with cooperative cancellation of the fold
// that precedes serialization. A cancelled call writes nothing and leaves
// the session untouched; the serialization itself, once started, runs to
// completion (it is the caller's write path, not engine compute).
func (s *Session) CheckpointContext(ctx context.Context, w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := persist.SessionState{Config: ConfigFingerprint(s.eng.cfg), DS: s.ds}
	// A fitted embedder persists even with zero points (all rows removed):
	// it was fitted on the first batch ever appended and must never refit.
	st.Embedder = s.emb
	if s.ds.N > 0 {
		if _, err := s.syncLocked(ctx); err != nil {
			return err
		}
		st.IDs, st.Scale = s.ids, s.scale
		if s.pbase != nil {
			st.Packed = s.pbase // serialized as an AWG2 block snapshot
		} else {
			st.Grid = s.base
		}
		st.Mins, st.Maxs = s.q.Mins, s.q.Maxs
	}
	return persist.WriteSessionCheckpoint(w, &st)
}

// RestoreSession rebuilds a streaming session from a checkpoint written by
// Session.Checkpoint, attached to eng (which must be configured exactly as
// the checkpointing engine was; a differing fingerprint is reported as
// persist.ErrConfigMismatch, since restoring under a different
// configuration would silently break the bit-identical equivalence
// guarantee). The restored session is warm: its grid and memoized cell ids
// are adopted as-is, so the first read pays only the grid-side stages and
// subsequent appends fold in incrementally, exactly as if the process had
// never died.
func RestoreSession(r io.Reader, eng *Engine) (*Session, error) {
	st, err := persist.ReadSessionCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if err := persist.CheckConfig(st.Config, ConfigFingerprint(eng.cfg)); err != nil {
		return nil, err
	}
	s := eng.NewSession()
	s.ds = st.DS
	if st.Embedder != nil {
		// Adopt the fitted embedder and rebuild the projected mirror by
		// re-transforming the raw rows — the frozen parameters make the
		// re-projection bit-identical to the one the checkpointing session
		// quantized, so the adopted grid and ids stay consistent with it.
		s.emb = st.Embedder
		if s.eds, err = st.Embedder.Transform(st.DS); err != nil {
			return nil, err
		}
	}
	if st.DS.N == 0 {
		return s, nil
	}
	q, err := grid.RestoreQuantizer(st.Mins, st.Maxs, st.Scale)
	if err != nil {
		return nil, err
	}
	// Checkpoints are representation-portable: the snapshot always
	// restores as a flat grid, adopted directly or re-packed to match the
	// engine's configured representation.
	if eng.cfg.PackedCells {
		s.pbase = grid.PackFlat(st.Grid)
	} else {
		s.base = st.Grid
	}
	s.q, s.ids, s.scale = q, st.IDs, st.Scale
	s.folded = st.DS.N
	return s, nil
}

// ResidentBytes estimates the session's resident heap footprint: the raw
// points, the live base grid, the per-point cell memo, and the cached result.
// It never folds pending mutations — the eviction manager calls it on idle
// sessions and must not trigger compute. The estimate covers the dominant
// slices, not Go allocator overhead, so treat it as a budget input rather
// than an exact RSS.
func (s *Session) ResidentBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b := int64(cap(s.ds.Data)) * 8
	if s.eds != nil {
		b += int64(cap(s.eds.Data)) * 8
	}
	if s.base != nil {
		b += int64(cap(s.base.Coords))*2 + int64(cap(s.base.Vals))*8
	}
	if s.pbase != nil {
		b += s.pbase.Bytes()
	}
	b += int64(cap(s.ids)) * 4
	if s.res != nil {
		b += int64(cap(s.res.Labels))*8 + int64(cap(s.res.Curve))*8
	}
	return b
}

// Cells returns the number of occupied cells in the live base grid
// (tombstones excluded), folding pending mutations first.
func (s *Session) Cells() (int, error) {
	return s.CellsContext(context.Background())
}

// CellsContext is Cells with cooperative cancellation of the fold.
func (s *Session) CellsContext(ctx context.Context) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.syncLocked(ctx); err != nil {
		return 0, err
	}
	if s.pbase != nil {
		return s.pbase.Len(), nil
	}
	return s.base.Len(), nil
}
