// Package core implements AdaWave, the adaptive wavelet clustering
// algorithm of Chen et al. (ICDE 2019): quantize the feature space into a
// sparse grid, run a separable discrete wavelet transform keeping the
// scale-space (low-pass) subband, filter noise cells with an adaptively
// chosen density threshold, label connected components, and map points back
// through the lookup table. The algorithm is deterministic, linear in the
// number of points, input-order insensitive and shape insensitive.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"adawave/internal/embed"
	"adawave/internal/grid"
	"adawave/internal/pointset"
	"adawave/internal/wavelet"
)

// Noise is the label assigned to points that belong to no cluster.
const Noise = -1

// Config holds AdaWave parameters. The zero value is not valid; start from
// DefaultConfig. The paper calls AdaWave “parameter free” because every
// field has a data-independent default that was used for all experiments.
type Config struct {
	// Scale is the number of grid cells per dimension (paper default 128
	// for the 2-D experiments). 0 selects an automatic scale from the
	// data size and dimension: the smallest power of two ≥ (n/4)^(1/d),
	// clamped to [4, 256], so that high-dimensional data still produces
	// multi-point cells.
	Scale int
	// Basis is the wavelet filter bank (paper default CDF(2,2)).
	Basis wavelet.Basis
	// Levels is the number of wavelet decomposition levels (≥ 0; 0 skips
	// the transform entirely, which degrades AdaWave to plain grid
	// clustering and exists for ablation).
	Levels int
	// Connectivity selects the neighbor relation for connected components.
	Connectivity grid.Connectivity
	// CoeffEpsilon is the paper's preliminary “coefficient denoising”
	// (“remove … the low value of scaling coefficients”): transformed
	// cells with density below CoeffEpsilon × (max cell density) are
	// discarded before the adaptive threshold is estimated. Must be in
	// [0, 1). This also removes the small positive satellites produced by
	// the negative filter taps around isolated cells.
	CoeffEpsilon float64
	// Threshold picks the adaptive noise threshold from the sorted
	// density curve.
	Threshold ThresholdStrategy
	// MinClusterCells demotes connected components with fewer cells than
	// this to noise (1 disables the filter).
	MinClusterCells int
	// MinClusterMass demotes connected components carrying less than this
	// fraction of the heaviest component's density mass to noise
	// (0 disables). This suppresses fringe satellites without a fixed
	// cell-count assumption: real clusters carry mass comparable to each
	// other, satellites carry a sliver. The heaviest component is never
	// demoted, so a non-empty grid always yields at least one cluster.
	MinClusterMass float64
	// PackedCells selects the block-compressed cell representation
	// (delta-coded bit-packed coordinates, bit-packed integer masses;
	// see internal/grid's PackedGrid) for the grids that stay resident —
	// a streaming Session's live base grid and the external path's merged
	// output — cutting bytes per occupied cell ~3–5× at a small
	// pack/unpack cost per fold. Labels are bit-identical either way; the
	// representation never affects results, so checkpoints restore across
	// either setting. DefaultConfig enables it.
	PackedCells bool
	// Embedding, when enabled, prepends a fitted linear projection to the
	// pipeline: rows are embedded into Embedding.K dimensions (PCA over
	// the Jacobi eigensolver, or a seeded sparse random projection) before
	// quantization, and every later stage — grid, transform, threshold,
	// assignment, the external path — consumes the projected rows
	// unchanged. The zero Spec disables it (the paper's raw-space
	// pipeline). One-shot runs fit the embedder on the input itself; a
	// streaming Session fits once on its first appended batch and never
	// refits, and checkpoints carry the fitted parameters.
	Embedding embed.Spec
}

// DefaultConfig returns the paper's default parameters.
func DefaultConfig() Config {
	return Config{
		Scale:        128,
		Basis:        wavelet.CDF22(),
		Levels:       1,
		Connectivity: grid.Faces,
		// 0.01 keeps the low-density ring/segment cells that a larger
		// epsilon wipes out at low noise (calibrated on the paper's Fig. 8
		// sweep: 0.05 costs ≈0.2 AMI at γ=20 %, 0 breaks at γ=90 % because
		// filter satellites survive into the threshold estimate).
		CoeffEpsilon:    0.01,
		Threshold:       ThreeSegmentFit{},
		MinClusterCells: 1,
		MinClusterMass:  0.05,
		PackedCells:     true,
	}
}

// AutoScale returns the automatic grid scale for n points in d dimensions:
// the smallest power of two ≥ (n/4)^(1/d), clamped to [4, 256].
func AutoScale(n, d int) int {
	if n < 1 || d < 1 {
		return 4
	}
	target := powNthRoot(float64(n)/4, d)
	s := 4
	for s < 256 && float64(s) < target {
		s <<= 1
	}
	return s
}

func powNthRoot(x float64, d int) float64 {
	if x <= 0 {
		return 0
	}
	// x^(1/d) via exp/log without importing math for one call is not
	// worth it; keep it simple.
	return math.Pow(x, 1/float64(d))
}

// Result is the outcome of one AdaWave run.
type Result struct {
	// Labels holds one label per input point: 0…NumClusters−1, or Noise.
	Labels []int
	// NumClusters is the number of detected clusters.
	NumClusters int
	// Threshold is the adaptive density threshold in transformed space.
	Threshold float64
	// ThresholdIndex is the cut position on Curve.
	ThresholdIndex int
	// Curve is the descending sorted-density curve the threshold was
	// chosen on (paper Fig. 6). Shared, do not modify.
	Curve []float64
	// CellsQuantized, CellsTransformed and CellsKept count occupied grid
	// cells after quantization, after the wavelet transform (and
	// coefficient denoising), and after threshold filtering.
	CellsQuantized   int
	CellsTransformed int
	CellsKept        int
	// Levels and Scale echo the effective configuration.
	Levels int
	Scale  int
}

// ClusterSizes returns the number of points in each cluster label
// (excluding noise).
func (r *Result) ClusterSizes() map[int]int {
	out := make(map[int]int)
	for _, l := range r.Labels {
		if l != Noise {
			out[l]++
		}
	}
	return out
}

// NoiseCount returns the number of points labeled Noise.
func (r *Result) NoiseCount() int {
	n := 0
	for _, l := range r.Labels {
		if l == Noise {
			n++
		}
	}
	return n
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Scale != 0 && c.Scale < 2 {
		return fmt.Errorf("core: Scale must be 0 (auto) or ≥ 2, got %d", c.Scale)
	}
	if c.Levels < 0 {
		return fmt.Errorf("core: Levels must be ≥ 0, got %d", c.Levels)
	}
	if c.Scale != 0 && c.Scale>>uint(c.Levels) < 2 {
		return fmt.Errorf("core: Scale %d too small for %d levels", c.Scale, c.Levels)
	}
	if len(c.Basis.Lo) == 0 {
		return errors.New("core: Basis is unset (use DefaultConfig)")
	}
	if c.CoeffEpsilon < 0 || c.CoeffEpsilon >= 1 {
		return fmt.Errorf("core: CoeffEpsilon must be in [0,1), got %v", c.CoeffEpsilon)
	}
	if c.Threshold == nil {
		return errors.New("core: Threshold strategy is unset (use DefaultConfig)")
	}
	if c.MinClusterCells < 1 {
		return fmt.Errorf("core: MinClusterCells must be ≥ 1, got %d", c.MinClusterCells)
	}
	if c.MinClusterMass < 0 || c.MinClusterMass >= 1 {
		return fmt.Errorf("core: MinClusterMass must be in [0,1), got %v", c.MinClusterMass)
	}
	if err := c.Embedding.Validate(); err != nil {
		return err
	}
	return nil
}

// Cluster runs AdaWave on points (row-major, equal dimension) and returns
// per-point labels plus diagnostics. Points are not modified.
func Cluster(points [][]float64, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, grid.ErrNoPoints
	}
	// Step 0 — embedding, when configured: fit on the input rows and
	// project them, exactly as the parallel engine's embed stage does, so
	// the sequential reference stays label-identical to the Engine.
	if cfg.Embedding.Enabled() {
		ds, err := pointset.FromSlices(points)
		if err != nil {
			return nil, grid.InvalidInput(err)
		}
		emb, err := embed.New(cfg.Embedding)
		if err != nil {
			return nil, err
		}
		if err := emb.Fit(ds); err != nil {
			return nil, err
		}
		pds, err := emb.Transform(ds)
		if err != nil {
			return nil, err
		}
		points = pds.Rows()
	}
	cfg = resolveScale(cfg, points)

	// Step 1 — quantization (Alg. 2): sparse density grid, only occupied
	// cells stored.
	q, err := grid.NewQuantizer(points, cfg.Scale)
	if err != nil {
		return nil, err
	}
	g, baseCells := q.QuantizeWithCells(points)
	cellsQuantized := g.Len()

	// Step 2 — wavelet decomposition (Alg. 3): keep the scale-space
	// subband of each level; the detail subbands are the discarded
	// “wavelet coefficients close to zero … the noise part”.
	t := g
	if cfg.Levels > 0 {
		levels, err := grid.TransformLevels(g, cfg.Basis, cfg.Levels)
		if err != nil {
			return nil, err
		}
		t = levels[len(levels)-1]
	}
	dropLowCoefficients(t, cfg.CoeffEpsilon)

	// Steps 3–6 — adaptive threshold (Alg. 4 / Fig. 6), noise filtering,
	// connected components, and the lookup table mapping points through
	// their base cell to its transformed-space ancestor (coordinates
	// right-shifted once per level — the dyadic downsampling
	// correspondence).
	out, err := finishClustering(t, baseCells, cfg.Levels, cfg)
	if err != nil {
		return nil, err
	}
	out.CellsQuantized = cellsQuantized
	return out, nil
}

// resolveScale substitutes the automatic scale for Scale == 0 and clamps
// Levels so every dimension keeps at least two cells after decomposition.
func resolveScale(cfg Config, points [][]float64) Config {
	d := 1
	if len(points) > 0 {
		d = len(points[0])
	}
	return resolveScaleND(cfg, len(points), d)
}

// resolveScaleND is resolveScale given the point count and dimensionality
// directly (the flat-dataset path carries no [][]float64).
func resolveScaleND(cfg Config, n, d int) Config {
	if cfg.Scale == 0 {
		if d < 1 {
			d = 1
		}
		cfg.Scale = AutoScale(n, d)
		for cfg.Levels > 0 && cfg.Scale>>uint(cfg.Levels) < 2 {
			cfg.Levels--
		}
	}
	return cfg
}

// dropLowCoefficients implements the paper's “remove … the low value of
// scaling coefficients”: cells below eps × (max density) are discarded.
func dropLowCoefficients(t *grid.Grid, eps float64) {
	var maxD float64
	for _, v := range t.Cells {
		if v > maxD {
			maxD = v
		}
	}
	cut := eps * maxD
	if cut <= 0 {
		cut = 1e-12 // always remove zero/negative coefficients
	}
	t.DropBelow(cut)
}

// relabelBySize renumbers component labels 0…k−1 in decreasing mass order
// (so label 0 is always the heaviest cluster — convenient and
// deterministic) and demotes components below the cell-count or
// mass-fraction floor to Noise. If every component would be demoted, the
// heaviest survives: a non-empty grid always yields at least one cluster.
func relabelBySize(kept *grid.Grid, cells map[grid.Key]int, minCells int, minMassFrac float64) map[grid.Key]int {
	type comp struct {
		label, cells int
		mass         float64
	}
	byLabel := make(map[int]*comp)
	for k, l := range cells {
		c := byLabel[l]
		if c == nil {
			c = &comp{label: l}
			byLabel[l] = c
		}
		c.cells++
		c.mass += kept.Density(k)
	}
	comps := make([]*comp, 0, len(byLabel))
	for _, c := range byLabel {
		comps = append(comps, c)
	}
	// Sort by mass descending, breaking ties by original label for
	// determinism.
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].mass != comps[j].mass {
			return comps[i].mass > comps[j].mass
		}
		return comps[i].label < comps[j].label
	})
	remap := make(map[int]int, len(comps))
	next := 0
	var heaviest float64
	if len(comps) > 0 {
		heaviest = comps[0].mass
	}
	for i, c := range comps {
		tooSmall := c.cells < minCells || (minMassFrac > 0 && c.mass < minMassFrac*heaviest)
		if tooSmall && i > 0 {
			remap[c.label] = Noise
			continue
		}
		remap[c.label] = next
		next++
	}
	out := make(map[grid.Key]int, len(cells))
	for k, l := range cells {
		if nl := remap[l]; nl != Noise {
			out[k] = nl
		}
	}
	return out
}
