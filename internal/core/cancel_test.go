package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"adawave/internal/grid"
	"adawave/internal/pointset"
)

// The cancellation gate (exercised with -race in CI): cancelling the
// pipeline at ANY stage boundary must (a) surface an ErrCanceled-tagged
// error, (b) leave the engine/session state intact — pooled buffers
// returned, the session's live grid canonical, pending mutations still
// pending — and (c) change nothing about the eventual result: the next
// uncancelled read is bit-identical to a run that was never cancelled.

// pipelineStages is every boundary the stage hook reports, in order.
var pipelineStages = []string{StageQuantize, StageFold, StageTransform, StageThreshold, StageConnect, StageAssign}

// hookCancelAt installs a stage hook that cancels ctx when the k-th stage
// event fires (k counts every event, whatever its name); the returned
// counter reports how many events fired in total. The caller must
// SetStageHook(nil) afterwards.
func hookCancelAt(cancel context.CancelFunc, k int32) *atomic.Int32 {
	var count atomic.Int32
	SetStageHook(func(string) {
		if count.Add(1) == k {
			cancel()
		}
	})
	return &count
}

// TestEngineCancelAtEveryStage cancels a one-shot ClusterDatasetContext at
// each named stage boundary in turn and asserts the taxonomy error, then
// that the engine still produces the bit-identical reference result.
func TestEngineCancelAtEveryStage(t *testing.T) {
	for _, fx := range sessionFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			ds := pointset.MustFromSlices(fx.pts)
			eng, err := NewEngine(fx.cfg, 2)
			if err != nil {
				t.Fatal(err)
			}
			want, err := eng.ClusterDataset(ds)
			if err != nil {
				t.Fatal(err)
			}
			for _, target := range pipelineStages {
				if target == StageFold {
					continue // sessions only; exercised below
				}
				t.Run(target, func(t *testing.T) {
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					SetStageHook(func(st string) {
						if st == target {
							cancel()
						}
					})
					_, err := eng.ClusterDatasetContext(ctx, ds)
					SetStageHook(nil)
					if err == nil {
						t.Fatalf("cancel at %s: no error", target)
					}
					if !errors.Is(err, grid.ErrCanceled) || !errors.Is(err, context.Canceled) {
						t.Fatalf("cancel at %s: error %v not tagged ErrCanceled/context.Canceled", target, err)
					}
					got, err := eng.ClusterDataset(ds)
					if err != nil {
						t.Fatal(err)
					}
					assertResultsEqual(t, want, got)
				})
			}

			// A deadline-expired context classifies as ErrDeadlineExceeded.
			ctx, cancel := context.WithTimeout(context.Background(), -1)
			defer cancel()
			if _, err := eng.ClusterDatasetContext(ctx, ds); !errors.Is(err, grid.ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("expired deadline: error %v not tagged ErrDeadlineExceeded", err)
			}
		})
	}
}

// TestSessionCancellationProperty is the mid-pipeline cancellation property
// test: stream every fixture into a session through random batch splits with
// random removals, firing cancelled reads (Result and MultiResolution, each
// cancelled after a random number of stage events — which lands the cancel
// in the fold, the transform, the threshold, the components or the
// assignment, or occasionally nowhere) between the mutations. After the
// stream, the session must yield labels bit-identical to a one-shot
// never-cancelled clustering of the surviving points, and its live grid
// must equal the one-shot quantization cell for cell.
func TestSessionCancellationProperty(t *testing.T) {
	for _, fx := range sessionFixtures(t) {
		for round := int64(0); round < 3; round++ {
			t.Run(fmt.Sprintf("%s/round=%d", fx.name, round), func(t *testing.T) {
				rng := rand.New(rand.NewSource(round*101 + 7))
				ds := pointset.MustFromSlices(fx.pts)
				eng, err := NewEngine(fx.cfg, 1+int(round))
				if err != nil {
					t.Fatal(err)
				}
				sess := eng.NewSession()

				cancelledReads := 0
				cancelledRead := func() {
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					k := int32(1 + rng.Intn(8))
					counter := hookCancelAt(cancel, k)
					var rerr error
					if rng.Intn(3) == 0 {
						_, rerr = sess.MultiResolutionContext(ctx, 3)
					} else {
						_, rerr = sess.ResultContext(ctx)
					}
					SetStageHook(nil)
					if rerr != nil {
						if !errors.Is(rerr, grid.ErrCanceled) {
							t.Fatalf("cancelled read: error %v not tagged ErrCanceled", rerr)
						}
						cancelledReads++
					} else if counter.Load() >= k {
						t.Fatalf("read survived a cancel fired at stage event %d", k)
					}
				}

				var live []int
				off := 0
				for _, b := range randomBatches(ds.N, rng) {
					batch := &pointset.Dataset{Data: ds.Data[off*ds.D : (off+b)*ds.D], N: b, D: ds.D}
					if err := sess.Append(batch); err != nil {
						t.Fatal(err)
					}
					for i := off; i < off+b; i++ {
						live = append(live, i)
					}
					off += b
					if rng.Intn(2) == 0 {
						cancelledRead()
					}
					if rng.Intn(4) == 0 {
						if _, err := sess.Labels(); err != nil {
							t.Fatal(err)
						}
					}
					if rng.Intn(3) == 0 && len(live) > 20 {
						nrm := 1 + rng.Intn(len(live)/10+1)
						perm := rng.Perm(len(live))[:nrm]
						if err := sess.Remove(perm); err != nil {
							t.Fatal(err)
						}
						sortDesc(perm)
						for _, p := range perm {
							live = append(live[:p], live[p+1:]...)
						}
						if rng.Intn(2) == 0 {
							cancelledRead()
						}
					}
				}
				if cancelledReads == 0 {
					cancelledRead() // at least one cancelled read per round
				}

				// A context dead before the call leaves mutations unapplied.
				dead, cancel := context.WithCancel(context.Background())
				cancel()
				n := sess.Len()
				if err := sess.AppendContext(dead, &pointset.Dataset{Data: make([]float64, ds.D), N: 1, D: ds.D}); !errors.Is(err, grid.ErrCanceled) {
					t.Fatalf("dead-context append: %v", err)
				}
				if err := sess.RemoveContext(dead, []int{0}); !errors.Is(err, grid.ErrCanceled) {
					t.Fatalf("dead-context remove: %v", err)
				}
				if sess.Len() != n {
					t.Fatalf("dead-context mutation changed the session: %d → %d points", n, sess.Len())
				}

				// The session after all those aborts must be indistinguishable
				// from one that never saw a cancel.
				union := pointset.New(ds.D, len(live))
				for _, i := range live {
					union.AppendRow(ds.Row(i))
				}
				assertSessionGrid(t, sess)
				want, err := eng.ClusterDataset(union)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sess.Result()
				if err != nil {
					t.Fatal(err)
				}
				assertResultsEqual(t, want, got)
			})
		}
	}
}
