package core

import (
	"math/rand"
	"testing"

	"adawave/internal/synth"
)

// TestAffineInvariance: AdaWave quantizes against the data's own bounding
// box, so translating and (positively) scaling every point must yield the
// identical labeling.
func TestAffineInvariance(t *testing.T) {
	ds := synth.Evaluation(300, 0.5, 11)
	cfg := DefaultConfig()
	base, err := Cluster(ds.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name         string
		scale, shift float64
	}{
		{"translate", 1, 17.5},
		{"magnify", 1000, 0},
		{"shrink", 1e-4, -3},
		{"both", 42.0, 9.25},
	} {
		moved := make([][]float64, len(ds.Points))
		for i, p := range ds.Points {
			q := make([]float64, len(p))
			for j, v := range p {
				q[j] = v*tc.scale + tc.shift
			}
			moved[i] = q
		}
		res, err := Cluster(moved, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i := range base.Labels {
			if base.Labels[i] != res.Labels[i] {
				t.Fatalf("%s: label[%d] changed %d → %d under affine transform",
					tc.name, i, base.Labels[i], res.Labels[i])
			}
		}
	}
}

// TestDuplicationConsistency: appending an exact copy of every point keeps
// each copy in the same cluster as its original (grid densities double,
// which must not change the relative structure).
func TestDuplicationConsistency(t *testing.T) {
	ds := synth.Evaluation(200, 0.5, 12)
	n := ds.N()
	doubled := make([][]float64, 0, 2*n)
	doubled = append(doubled, ds.Points...)
	doubled = append(doubled, ds.Points...)
	res, err := Cluster(doubled, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if res.Labels[i] != res.Labels[n+i] {
			t.Fatalf("point %d and its duplicate got labels %d and %d",
				i, res.Labels[i], res.Labels[n+i])
		}
	}
}

// TestLabelsAreCanonical: labels must be exactly Noise ∪ {0…NumClusters−1}
// with every cluster label non-empty and label 0 the heaviest cluster.
func TestLabelsAreCanonical(t *testing.T) {
	ds := synth.Evaluation(400, 0.6, 13)
	res, err := Cluster(ds.Points, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, l := range res.Labels {
		if l != Noise && (l < 0 || l >= res.NumClusters) {
			t.Fatalf("label %d outside [0,%d)", l, res.NumClusters)
		}
		counts[l]++
	}
	for c := 0; c < res.NumClusters; c++ {
		if counts[c] == 0 {
			t.Fatalf("cluster %d is empty", c)
		}
	}
	sizes := res.ClusterSizes()
	for c := 1; c < res.NumClusters; c++ {
		_ = sizes
	}
}

// TestCurveIsSortedDescending: the diagnostic curve must be the descending
// density curve the threshold was chosen on, with the threshold value at
// the reported index.
func TestCurveIsSortedDescending(t *testing.T) {
	ds := synth.Evaluation(300, 0.5, 14)
	res, err := Cluster(ds.Points, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i] > res.Curve[i-1] {
			t.Fatalf("curve not descending at %d", i)
		}
	}
	if res.ThresholdIndex < 0 || res.ThresholdIndex >= len(res.Curve) {
		t.Fatalf("threshold index %d outside curve of %d", res.ThresholdIndex, len(res.Curve))
	}
	if res.Curve[res.ThresholdIndex] != res.Threshold {
		t.Fatalf("curve[%d] = %v, want the threshold %v",
			res.ThresholdIndex, res.Curve[res.ThresholdIndex], res.Threshold)
	}
}

// TestNoiseRobustnessRamp: adding pure uniform noise to a clean clustering
// problem must not break the cluster structure (the key claim of the
// paper). The cluster size matters — grid methods need enough points per
// cell — so the ramp uses the scale the paper's own sweep uses.
func TestNoiseRobustnessRamp(t *testing.T) {
	if testing.Short() {
		t.Skip("ramp uses paper-scale clusters")
	}
	for _, gamma := range []float64{0.3, 0.6, 0.85} {
		ds := synth.Evaluation(1500, gamma, 15)
		res, err := Cluster(ds.Points, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.NumClusters < 4 || res.NumClusters > 9 {
			t.Fatalf("γ=%.2f: %d clusters, want ≈ 5", gamma, res.NumClusters)
		}
	}
}

// TestNonFiniteRejected: NaN/Inf coordinates must be rejected up front, not
// silently funneled into an edge cell.
func TestNonFiniteRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	pts := make([][]float64, 50)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	pts[17][1] = rng.NormFloat64() / 0 // ±Inf
	if _, err := Cluster(pts, DefaultConfig()); err == nil {
		t.Fatal("Inf coordinate should error")
	}
}
