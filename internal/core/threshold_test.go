package core

import (
	"math/rand"
	"sort"
	"testing"
)

// threeSegmentCurve builds a synthetic descending density curve with the
// paper's Fig. 6 shape: a steep “signal” line, a “middle” line, and a long
// near-flat “noise” line. It returns the curve and the index where the
// noise segment begins (the ideal cut position).
func threeSegmentCurve(nSignal, nMiddle, nNoise int, rng *rand.Rand) ([]float64, int) {
	var curve []float64
	v := 1000.0
	for i := 0; i < nSignal; i++ {
		curve = append(curve, v)
		v -= 8 + rng.Float64()
	}
	for i := 0; i < nMiddle; i++ {
		curve = append(curve, v)
		v -= 1.5 + rng.Float64()*0.2
	}
	for i := 0; i < nNoise; i++ {
		curve = append(curve, v)
		v -= 0.01 + rng.Float64()*0.005
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(curve)))
	return curve, nSignal + nMiddle
}

func TestThreeSegmentFitFindsNoiseJunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	curve, ideal := threeSegmentCurve(60, 120, 800, rng)
	_, idx := ThreeSegmentFit{}.Cut(curve)
	// Allow 15% slack around the ideal junction.
	slack := len(curve) * 15 / 100
	if idx < ideal-slack || idx > ideal+slack {
		t.Fatalf("cut at %d, ideal %d (curve length %d)", idx, ideal, len(curve))
	}
}

func TestSecondKneeFindsNoiseJunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	curve, ideal := threeSegmentCurve(60, 120, 800, rng)
	_, idx := SecondKnee{}.Cut(curve)
	slack := len(curve) * 15 / 100
	if idx < ideal-slack || idx > ideal+slack {
		t.Fatalf("cut at %d, ideal %d (curve length %d)", idx, ideal, len(curve))
	}
}

func TestStrategiesAgreeOnThreeSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	curve, _ := threeSegmentCurve(80, 150, 1500, rng)
	_, i1 := ThreeSegmentFit{}.Cut(curve)
	_, i2 := SecondKnee{}.Cut(curve)
	diff := i1 - i2
	if diff < 0 {
		diff = -diff
	}
	if diff > len(curve)/8 {
		t.Fatalf("strategies disagree: %d vs %d on %d-long curve", i1, i2, len(curve))
	}
}

func TestThresholdDegenerateCurves(t *testing.T) {
	strategies := []ThresholdStrategy{ThreeSegmentFit{}, SecondKnee{}, QuantileThreshold{Q: 0.5}}
	for _, s := range strategies {
		if v, _ := s.Cut(nil); v != 0 {
			t.Errorf("%s: empty curve should cut at 0, got %v", s.Name(), v)
		}
		// Constant curve: keep everything.
		flat := []float64{5, 5, 5, 5, 5, 5, 5, 5, 5, 5}
		v, _ := s.Cut(flat)
		if v > 5 {
			t.Errorf("%s: constant curve cut %v would drop all cells", s.Name(), v)
		}
		// Tiny curves must not panic.
		for n := 1; n < 8; n++ {
			small := make([]float64, n)
			for i := range small {
				small[i] = float64(10 - i)
			}
			s.Cut(small)
		}
	}
}

func TestTwoSegmentCurveFallsBackToFirstKnee(t *testing.T) {
	// Steep drop then flat: a two-segment curve; SecondKnee must not
	// invent a junction far into the tail.
	var curve []float64
	v := 100.0
	for i := 0; i < 50; i++ {
		curve = append(curve, v)
		v -= 1.9
	}
	for i := 0; i < 500; i++ {
		curve = append(curve, v)
		v -= 0.001
	}
	_, idx := SecondKnee{}.Cut(curve)
	if idx > 120 {
		t.Fatalf("cut at %d, expected near the single knee (~50)", idx)
	}
}

func TestQuantileThreshold(t *testing.T) {
	curve := []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	v, idx := QuantileThreshold{Q: 0.8}.Cut(curve)
	if idx != 2 || v != 8 {
		t.Fatalf("Q=0.8 cut = %v at %d", v, idx)
	}
	v, _ = QuantileThreshold{Q: 0}.Cut(curve)
	if v != 1 {
		t.Fatalf("Q=0 should keep everything, cut %v", v)
	}
}

func TestFixedThreshold(t *testing.T) {
	curve := []float64{10, 8, 6, 4, 2}
	v, idx := FixedThreshold{Value: 5}.Cut(curve)
	if v != 5 || idx != 3 {
		t.Fatalf("fixed cut = %v at %d", v, idx)
	}
	v, idx = FixedThreshold{Value: 0.5}.Cut(curve)
	if v != 0.5 || idx != len(curve)-1 {
		t.Fatalf("below-min fixed cut = %v at %d", v, idx)
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[string]ThresholdStrategy{
		"three-segment-fit": ThreeSegmentFit{},
		"second-knee":       SecondKnee{},
		"quantile":          QuantileThreshold{},
		"fixed":             FixedThreshold{},
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestSegmentFitterExactLine(t *testing.T) {
	// Points exactly on a line have zero residual on any sub-range.
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*float64(i) - 7
	}
	f := newSegmentFitter(xs, ys)
	for _, r := range [][2]int{{0, 49}, {5, 20}, {30, 45}} {
		if sse := f.sse(r[0], r[1]); sse > 1e-9 {
			t.Errorf("sse(%d,%d) = %v on exact line", r[0], r[1], sse)
		}
	}
	// A V-shape has positive residual over the whole range.
	for i := range ys {
		if i > 25 {
			ys[i] = 3*50 - 3*float64(i) - 7
		}
	}
	f2 := newSegmentFitter(xs, ys)
	if f2.sse(0, 49) < 1 {
		t.Error("V-shape should have large residual")
	}
}
