package core

import (
	"context"
	"sync/atomic"

	"adawave/internal/grid"
)

// Pipeline stage names, in execution order, as reported to the stage hook:
// embed (only when an embedding is configured) → quantize → transform →
// threshold → connect → assign (plus "fold" when the streaming Session
// folds pending mutations before a read). Tests use them to target a
// cancellation at an exact pipeline position.
const (
	StageEmbed     = "embed"
	StageQuantize  = "quantize"
	StageFold      = "fold"
	StageTransform = "transform"
	StageThreshold = "threshold"
	StageConnect   = "connect"
	StageAssign    = "assign"
)

// stageHook holds the test-only stage observer as a func(string) (atomic, so
// the race-instrumented serving tests can install one while engine
// goroutines run). A nil func disables it; the hot path pays one atomic load
// and a nil check per stage boundary — six per clustering run.
var stageHook atomic.Value

func init() { stageHook.Store((func(string))(nil)) }

// SetStageHook installs h as the pipeline-stage observer: it is called at
// every stage boundary of every engine in the process, before the boundary's
// cancellation poll — so a hook that cancels a context makes that very
// boundary return ErrCanceled, deterministically. Passing nil uninstalls it.
// This is the cancellation test hook; production code must not use it.
func SetStageHook(h func(stage string)) { stageHook.Store(h) }

// stage marks a pipeline stage boundary: it notifies the test hook (if any)
// and returns the context's taxonomy error, nil while ctx is live.
func stage(ctx context.Context, name string) error {
	if h, _ := stageHook.Load().(func(string)); h != nil {
		h(name)
	}
	return grid.CtxErr(ctx)
}
