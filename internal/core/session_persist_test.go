package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"adawave/internal/persist"
	"adawave/internal/pointset"
	"adawave/internal/synth"
	"adawave/internal/wavelet"
)

// The checkpoint equivalence gate: a session restored from a checkpoint
// taken at ANY point in an append/remove sequence must reproduce the
// original session's labels bit for bit — and keep doing so as both
// sessions continue mutating identically afterwards (the restored quantizer
// frame must be exact, or the incremental merge paths would diverge).

// checkpointRestore round-trips s through the binary format onto a fresh
// engine with the same configuration.
func checkpointRestore(t *testing.T, s *Session, cfg Config, workers int) *Session {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(cfg, workers)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(&buf, eng)
	if err != nil {
		t.Fatal(err)
	}
	return restored
}

// assertSessionsAgree compares two live sessions label for label.
func assertSessionsAgree(t *testing.T, want, got *Session) {
	t.Helper()
	wres, err := want.Result()
	if err != nil {
		t.Fatal(err)
	}
	gres, err := got.Result()
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, wres, gres)
}

// TestSessionCheckpointEquivalence streams every fixture through random
// append/remove sequences, checkpoint-restores at random points (reads
// interleaved, so both synced and dirty states are hit), and asserts the
// restored session matches the original — immediately, and again after both
// apply the same further mutations.
func TestSessionCheckpointEquivalence(t *testing.T) {
	for _, fx := range sessionFixtures(t) {
		for round := int64(0); round < 2; round++ {
			t.Run(fmt.Sprintf("%s/round=%d", fx.name, round), func(t *testing.T) {
				rng := rand.New(rand.NewSource(round*101 + 7))
				ds := pointset.MustFromSlices(fx.pts)
				eng, err := NewEngine(fx.cfg, 1+int(round))
				if err != nil {
					t.Fatal(err)
				}
				sess := eng.NewSession()
				var restored *Session

				off := 0
				for _, b := range randomBatches(ds.N, rng) {
					batch := &pointset.Dataset{Data: ds.Data[off*ds.D : (off+b)*ds.D], N: b, D: ds.D}
					if err := sess.Append(batch); err != nil {
						t.Fatal(err)
					}
					if restored != nil {
						if err := restored.Append(batch); err != nil {
							t.Fatal(err)
						}
					}
					off += b
					if rng.Intn(2) == 0 && sess.Len() > 20 {
						nrm := 1 + rng.Intn(sess.Len()/10+1)
						perm := rng.Perm(sess.Len())[:nrm]
						if err := sess.Remove(perm); err != nil {
							t.Fatal(err)
						}
						if restored != nil {
							if err := restored.Remove(append([]int(nil), perm...)); err != nil {
								t.Fatal(err)
							}
						}
					}
					if rng.Intn(3) == 0 {
						if _, err := sess.Labels(); err != nil {
							t.Fatal(err)
						}
					}
					if rng.Intn(3) == 0 {
						restored = checkpointRestore(t, sess, fx.cfg, 1+int(round))
						assertSessionGrid(t, restored)
						assertSessionsAgree(t, sess, restored)
					}
				}
				if restored == nil {
					restored = checkpointRestore(t, sess, fx.cfg, 1)
				}
				assertSessionGrid(t, restored)
				assertSessionsAgree(t, sess, restored)
				// The restored session must also match a one-shot run over
				// its own points (transitively guaranteed, checked directly).
				want, err := eng.ClusterDataset(restored.ds)
				if err != nil {
					t.Fatal(err)
				}
				got, err := restored.Result()
				if err != nil {
					t.Fatal(err)
				}
				assertResultsEqual(t, want, got)
			})
		}
	}
}

// TestSessionCheckpointBetweenRemoveAndRead: the regression the snapshot
// tombstone fix exists for — a checkpoint taken after a Remove but before
// any read (the live grid still holds zero-mass tombstones) must write,
// restore, and agree with the uninterrupted session.
func TestSessionCheckpointBetweenRemoveAndRead(t *testing.T) {
	data := synth.RunningExampleSized(300, 1)
	sess, err := NewSession(DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Append(pointset.MustFromSlices(data.Points)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Labels(); err != nil { // fold, so Remove hits the grid
		t.Fatal(err)
	}
	// Remove interior points and checkpoint immediately: no read between.
	if err := sess.Remove([]int{50, 51, 52, 120, 121}); err != nil {
		t.Fatal(err)
	}
	restored := checkpointRestore(t, sess, DefaultConfig(), 1)
	assertSessionGrid(t, restored)
	assertSessionsAgree(t, sess, restored)
}

// TestSessionCheckpointRepresentationPortable: PackedCells is a runtime
// choice, not a durable one — a checkpoint taken under either grid
// representation must restore under the other (the fingerprint excludes
// the flag) and keep producing identical labels through further mutations.
func TestSessionCheckpointRepresentationPortable(t *testing.T) {
	packed := DefaultConfig()
	packed.PackedCells = true
	flat := DefaultConfig()
	flat.PackedCells = false
	data := synth.RunningExampleSized(400, 1)
	for _, dir := range []struct {
		name     string
		from, to Config
	}{
		{"packed-to-flat", packed, flat},
		{"flat-to-packed", flat, packed},
	} {
		t.Run(dir.name, func(t *testing.T) {
			sess, err := NewSession(dir.from, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.Append(pointset.MustFromSlices(data.Points)); err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Labels(); err != nil {
				t.Fatal(err)
			}
			if err := sess.Remove([]int{10, 11, 200}); err != nil {
				t.Fatal(err)
			}
			restored := checkpointRestore(t, sess, dir.to, 2)
			assertSessionGrid(t, restored)
			assertSessionsAgree(t, sess, restored)
			// Both sessions keep agreeing as they mutate identically past
			// the representation switch.
			more := synth.RunningExampleSized(100, 2).Flat()
			if err := sess.Append(more); err != nil {
				t.Fatal(err)
			}
			if err := restored.Append(more); err != nil {
				t.Fatal(err)
			}
			if err := sess.Remove([]int{0, 5}); err != nil {
				t.Fatal(err)
			}
			if err := restored.Remove([]int{0, 5}); err != nil {
				t.Fatal(err)
			}
			assertSessionsAgree(t, sess, restored)
		})
	}
}

// TestSessionCheckpointEmpty: an empty session (fresh, or drained by
// removals) checkpoints and restores, preserving a fixed dimensionality.
func TestSessionCheckpointEmpty(t *testing.T) {
	sess, err := NewSession(DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	restored := checkpointRestore(t, sess, DefaultConfig(), 1)
	if restored.Len() != 0 {
		t.Fatalf("restored %d points from an empty checkpoint", restored.Len())
	}
	if err := sess.Append(&pointset.Dataset{Data: []float64{1, 2, 3, 4}, N: 2, D: 2}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Remove([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	restored = checkpointRestore(t, sess, DefaultConfig(), 1)
	if restored.Len() != 0 || restored.Dim() != 2 {
		t.Fatalf("drained session restored as %d×%d, want 0×2", restored.Len(), restored.Dim())
	}
	// The restored dimensionality still rejects mismatched appends.
	if err := restored.Append(&pointset.Dataset{Data: []float64{1, 2, 3}, N: 1, D: 3}); err == nil {
		t.Fatal("restored session must keep its fixed dimensionality")
	}
}

// TestRestoreSessionConfigMismatch: restoring under any differing
// configuration is a typed error, never a silent restore.
func TestRestoreSessionConfigMismatch(t *testing.T) {
	sess, err := NewSession(DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Append(synth.RunningExampleSized(100, 1).Flat()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Basis = wavelet.Haar() },
		func(c *Config) { c.Levels = 2 },
		func(c *Config) { c.Scale = 64 },
		func(c *Config) { c.MinClusterMass = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		eng, err := NewEngine(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RestoreSession(bytes.NewReader(buf.Bytes()), eng); !errors.Is(err, persist.ErrConfigMismatch) {
			t.Fatalf("mutation %d: got %v, want ErrConfigMismatch", i, err)
		}
	}
}

// TestRestoreSessionThresholdParamMismatch: the fingerprint carries
// strategy parameters, not just names — a same-named threshold with a
// different cut must refuse to restore (it would silently change labels).
func TestRestoreSessionThresholdParamMismatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = FixedThreshold{Value: 0.8}
	sess, err := NewSession(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Append(synth.RunningExampleSized(80, 1).Flat()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Threshold = FixedThreshold{Value: 0.2}
	eng, err := NewEngine(other, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreSession(bytes.NewReader(buf.Bytes()), eng); !errors.Is(err, persist.ErrConfigMismatch) {
		t.Fatalf("differing threshold parameter: got %v, want ErrConfigMismatch", err)
	}
	same, err := NewEngine(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreSession(bytes.NewReader(buf.Bytes()), same); err != nil {
		t.Fatalf("identical threshold parameter must restore: %v", err)
	}
}
