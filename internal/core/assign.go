package core

import (
	"runtime"

	"adawave/internal/grid"
	"adawave/internal/linalg"
)

// assignParallelCutoff is the point count below which the nearest-centroid
// search runs single-threaded: under it, goroutine fan-out costs more than
// the distance loop itself.
const assignParallelCutoff = 2048

// AssignNoiseToNearest implements the paper's protocol for fully labeled
// real-world data (“we run the k-means iteration (based on Euclidean
// distance) on the final AdaWave result to assign every detected noise
// object to a ‘true’ cluster”): cluster centroids are computed from the
// non-noise points and every Noise point is reassigned to its nearest
// centroid; with iterations > 1 the centroids are recomputed and the former
// noise points reassigned again. Returns a new label slice; the input is
// not modified. If labels contains no clusters at all, every point is
// assigned to a single cluster 0. The O(n·k·d) nearest-centroid search runs
// sharded across all processors; see AssignNoiseToNearestParallel for an
// explicit worker count.
func AssignNoiseToNearest(points [][]float64, labels []int, iterations int) []int {
	return AssignNoiseToNearestParallel(points, labels, iterations, 0)
}

// AssignNoiseToNearestParallel is AssignNoiseToNearest with an explicit
// worker count (≤ 0 selects runtime.GOMAXPROCS(0)). Only the per-point
// nearest-centroid search — the O(n·k·d) stage — fans out over point
// shards; centroid accumulation stays sequential so its floating-point sums
// are bit-identical to the sequential path. The result therefore does not
// depend on the worker count.
func AssignNoiseToNearestParallel(points [][]float64, labels []int, iterations, workers int) []int {
	out := append([]int(nil), labels...)
	if len(points) == 0 {
		return out
	}
	if iterations < 1 {
		iterations = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(points) < assignParallelCutoff {
		workers = 1
	}
	k := 0
	for _, l := range out {
		if l+1 > k {
			k = l + 1
		}
	}
	if k == 0 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	d := len(points[0])
	wasNoise := make([]bool, len(out))
	for i, l := range out {
		wasNoise[i] = l == Noise
	}
	shardChanged := make([]bool, workers)
	for it := 0; it < iterations; it++ {
		centroids := make([][]float64, k)
		counts := make([]int, k)
		for c := range centroids {
			centroids[c] = make([]float64, d)
		}
		for i, l := range out {
			if l == Noise {
				continue
			}
			counts[l]++
			for j, v := range points[i] {
				centroids[l][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] /= float64(counts[c])
			}
		}
		for w := range shardChanged {
			shardChanged[w] = false
		}
		grid.ParallelRanges(len(out), workers, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				if !wasNoise[i] {
					continue
				}
				best, bestD := 0, -1.0
				for c := range centroids {
					if counts[c] == 0 {
						continue
					}
					dist := linalg.SqDist(points[i], centroids[c])
					if bestD < 0 || dist < bestD {
						best, bestD = c, dist
					}
				}
				if out[i] != best {
					out[i] = best
					shardChanged[w] = true
				}
			}
		})
		changed := false
		for _, c := range shardChanged {
			changed = changed || c
		}
		if !changed {
			break
		}
	}
	return out
}
