package core

import "adawave/internal/linalg"

// AssignNoiseToNearest implements the paper's protocol for fully labeled
// real-world data (“we run the k-means iteration (based on Euclidean
// distance) on the final AdaWave result to assign every detected noise
// object to a ‘true’ cluster”): cluster centroids are computed from the
// non-noise points and every Noise point is reassigned to its nearest
// centroid; with iterations > 1 the centroids are recomputed and the former
// noise points reassigned again. Returns a new label slice; the input is
// not modified. If labels contains no clusters at all, every point is
// assigned to a single cluster 0.
func AssignNoiseToNearest(points [][]float64, labels []int, iterations int) []int {
	out := append([]int(nil), labels...)
	if len(points) == 0 {
		return out
	}
	if iterations < 1 {
		iterations = 1
	}
	k := 0
	for _, l := range out {
		if l+1 > k {
			k = l + 1
		}
	}
	if k == 0 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	d := len(points[0])
	wasNoise := make([]bool, len(out))
	for i, l := range out {
		wasNoise[i] = l == Noise
	}
	for it := 0; it < iterations; it++ {
		centroids := make([][]float64, k)
		counts := make([]int, k)
		for c := range centroids {
			centroids[c] = make([]float64, d)
		}
		for i, l := range out {
			if l == Noise {
				continue
			}
			counts[l]++
			for j, v := range points[i] {
				centroids[l][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] /= float64(counts[c])
			}
		}
		changed := false
		for i := range out {
			if !wasNoise[i] {
				continue
			}
			best, bestD := 0, -1.0
			for c := range centroids {
				if counts[c] == 0 {
					continue
				}
				dist := linalg.SqDist(points[i], centroids[c])
				if bestD < 0 || dist < bestD {
					best, bestD = c, dist
				}
			}
			if out[i] != best {
				out[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return out
}
