package core

import (
	"context"
	"fmt"

	"adawave/internal/grid"
	"adawave/internal/pointset"
)

// Out-of-core clustering: ClusterDatasetExternal is ClusterDatasetContext
// with the point-side memory decoupled from the dataset size. Quantization
// runs through the external radix sort (chunked in-memory sort, sorted runs
// spilled to temp files, loser-tree merge — see grid.QuantizeDatasetExternalCtx)
// and re-enters the exact post-quantization pipeline via clusterFromBase,
// so the labels are bit-identical to the in-RAM path for every chunk size
// and spill threshold. Pair it with a pointset.Mapped dataset and the
// float64 payload never touches the Go heap either: resident memory is the
// O(points) label/memo outputs plus the configured working budget plus the
// O(cells) grid, independent of how many points stream through.

// ExternalOptions tunes ClusterDatasetExternal. The zero value derives
// everything from DefaultMaxResidentBytes.
type ExternalOptions struct {
	// MaxResidentBytes is the target resident-heap budget for the run,
	// covering the per-point outputs (4-byte cell memo + 8-byte label per
	// point), the chunk working set, and the in-memory run budget of the
	// external sort. ≤ 0 selects DefaultMaxResidentBytes. A budget too
	// small to hold even the per-point outputs fails with an
	// ErrInvalidInput-tagged error. The O(cells) grid and its transforms
	// are not charged against the budget: cells are bounded by Scaleᵈ and
	// the occupancy of the data, not by the point count.
	MaxResidentBytes int64
	// ChunkPoints overrides the derived points-per-chunk (0 = derive from
	// the budget).
	ChunkPoints int
	// SpillBytes overrides the derived in-memory sorted-run budget
	// (0 = derive from the budget; 1 forces every run to disk).
	SpillBytes int64
	// TempDir is the base directory for spill files ("" uses the system
	// default). Spill files live in a fresh os.MkdirTemp directory removed
	// before the call returns, on every path — error and cancel included.
	TempDir string
}

// DefaultMaxResidentBytes is the resident-memory budget assumed when
// ExternalOptions does not set one: 512 MiB, enough to cluster tens of
// millions of points comfortably while fitting modest containers.
const DefaultMaxResidentBytes int64 = 512 << 20

// perPointOutputBytes is the per-point resident cost that no chunking can
// remove: the memoized int32 cell id and the int label of the Result.
const perPointOutputBytes = 4 + 8

// deriveExtSort turns a resident-memory budget into external-sort knobs:
// the per-point outputs are reserved first, then half the remainder funds
// the chunk working set (coordinates, index payload, and their radix
// scratch doubles) and a quarter funds retained sorted runs — the rest is
// headroom for the merged grid and transform stages.
func deriveExtSort(opts ExternalOptions, n, d int) (grid.ExtSortOptions, error) {
	budget := opts.MaxResidentBytes
	if budget <= 0 {
		budget = DefaultMaxResidentBytes
	}
	working := budget - int64(n)*perPointOutputBytes
	out := grid.ExtSortOptions{
		ChunkPoints: opts.ChunkPoints,
		SpillBytes:  opts.SpillBytes,
		TempDir:     opts.TempDir,
	}
	if out.ChunkPoints <= 0 || out.SpillBytes == 0 {
		if working <= 0 {
			return out, grid.InvalidInput(fmt.Errorf(
				"core: resident budget %d bytes cannot hold the %d-byte per-point outputs of %d points; raise WithMaxResidentBytes",
				budget, perPointOutputBytes, n))
		}
	}
	if out.ChunkPoints <= 0 {
		// Chunk working set ≈ points × (2·d coord bytes + 4 idx bytes,
		// doubled for the radix scratch buffers).
		perPoint := int64(2 * (2*d + 4))
		chunk := working / 2 / perPoint
		const minChunk, maxChunk = 1 << 14, 16 << 20
		if chunk < minChunk {
			chunk = minChunk
		}
		if chunk > maxChunk {
			chunk = maxChunk
		}
		out.ChunkPoints = int(chunk)
	}
	if out.SpillBytes == 0 {
		// Retained runs are block-compressed (PackedGrid, ~2–4 bytes per
		// cell instead of the flat 2·d+8), so the same quarter-budget now
		// holds roughly 4× the cells before the first spill.
		out.SpillBytes = working / 4
		if out.SpillBytes < 1 {
			out.SpillBytes = 1
		}
	}
	return out, nil
}

// ClusterDatasetExternal runs the out-of-core AdaWave pipeline on ds with
// resident memory bounded by opts. Labels, threshold, curve — the whole
// Result — are bit-identical to ClusterDatasetContext on the same rows.
// ds is typically a pointset.Mapped view (OpenMapped), but any Dataset
// works: only the quantization stage changes, everything downstream is the
// shared clusterFromBase path.
func (e *Engine) ClusterDatasetExternal(ctx context.Context, ds *pointset.Dataset, opts ExternalOptions) (*Result, error) {
	if ds == nil || ds.N == 0 {
		return nil, grid.ErrNoPoints
	}
	// opts is cloned into the state: the embed stage may charge the
	// projected rows against the budget before the quantize stage derives
	// its chunk and spill sizes from what remains.
	st := &pipeState{cfg: e.cfg, w: e.effectiveWorkers(), ds: ds, ext: &opts}
	return e.runStages(ctx, st, stageList[stageFromTop:])
}
