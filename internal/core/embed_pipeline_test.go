package core

import (
	"bytes"
	"errors"
	"testing"

	"adawave/internal/embed"
	"adawave/internal/persist"
	"adawave/internal/pointset"
	"adawave/internal/synth"
)

// embedEquivCases are the dataset × spec grid of the embedding equivalence
// gate: 2-d data under a k=2 projection (PCA is then a rotation) and 8-d
// blobs compressed to 3.
func embedEquivCases() []struct {
	name string
	ds   *pointset.Dataset
	spec embed.Spec
} {
	return []struct {
		name string
		ds   *pointset.Dataset
		spec embed.Spec
	}{
		{"fig2/pca", synth.RunningExampleSized(200, 1).Flat(), embed.Spec{Kind: embed.KindPCA, K: 2}},
		{"fig2/rp", synth.RunningExampleSized(200, 1).Flat(), embed.Spec{Kind: embed.KindRP, K: 2, Seed: 7}},
		{"fig7/pca", synth.Evaluation(120, 0.6, 4).Flat(), embed.Spec{Kind: embed.KindPCA, K: 2}},
		{"blobs8d/pca", synth.Blobs(4, 150, 8, 0.5, 3).Flat(), embed.Spec{Kind: embed.KindPCA, K: 3}},
		{"blobs8d/rp", synth.Blobs(4, 150, 8, 0.5, 3).Flat(), embed.Spec{Kind: embed.KindRP, K: 3, Seed: 11}},
	}
}

// TestEmbeddingMatchesManualProjection is the embedding equivalence gate:
// clustering raw rows through a configured embedding must reproduce, bit
// for bit, clustering the manually projected rows without one — the embed
// stage is a pure front-end, with the packed and flat grid representations
// agreeing as always.
func TestEmbeddingMatchesManualProjection(t *testing.T) {
	for _, tc := range embedEquivCases() {
		for _, packed := range []bool{false, true} {
			name := tc.name + "/flat"
			if packed {
				name = tc.name + "/packed"
			}
			t.Run(name, func(t *testing.T) {
				base := DefaultConfig()
				base.Scale = 64
				base.PackedCells = packed

				emb, err := embed.New(tc.spec)
				if err != nil {
					t.Fatal(err)
				}
				if err := emb.Fit(tc.ds); err != nil {
					t.Fatal(err)
				}
				pds, err := emb.Transform(tc.ds)
				if err != nil {
					t.Fatal(err)
				}
				plain, err := NewEngine(base, 2)
				if err != nil {
					t.Fatal(err)
				}
				want, err := plain.ClusterDataset(pds)
				if err != nil {
					t.Fatal(err)
				}

				cfg := base
				cfg.Embedding = tc.spec
				eng, err := NewEngine(cfg, 2)
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.ClusterDataset(tc.ds)
				if err != nil {
					t.Fatal(err)
				}
				if got.NumClusters != want.NumClusters || got.Threshold != want.Threshold {
					t.Fatalf("got %d clusters at %v, want %d at %v", got.NumClusters, got.Threshold, want.NumClusters, want.Threshold)
				}
				for i := range want.Labels {
					if got.Labels[i] != want.Labels[i] {
						t.Fatalf("label %d: got %d, want %d", i, got.Labels[i], want.Labels[i])
					}
				}
			})
		}
	}
}

// TestEmbeddingExternalMatchesInRAM: the out-of-core path under an embedding
// must still be bit-identical to the in-RAM path — the embed stage charges
// the projected rows against the budget and hands the same projected dataset
// to the external sort.
func TestEmbeddingExternalMatchesInRAM(t *testing.T) {
	ds := synth.Blobs(4, 200, 8, 0.5, 3).Flat()
	cfg := DefaultConfig()
	cfg.Scale = 64
	cfg.Embedding = embed.Spec{Kind: embed.KindPCA, K: 3}
	eng, err := NewEngine(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.ClusterDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.ClusterDatasetExternal(t.Context(), ds, ExternalOptions{
		MaxResidentBytes: 1 << 20, SpillBytes: 1, TempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClusters != want.NumClusters {
		t.Fatalf("clusters: got %d, want %d", got.NumClusters, want.NumClusters)
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label %d: got %d, want %d", i, got.Labels[i], want.Labels[i])
		}
	}
}

// TestSessionEmbeddingRPMatchesOneShot: with a random projection (whose fit
// is data-independent), a session built from appends must match the one-shot
// embedded run bit for bit, through removals too — the streaming
// equivalence gate lifted into the embedded space.
func TestSessionEmbeddingRPMatchesOneShot(t *testing.T) {
	data := synth.Blobs(4, 200, 8, 0.5, 5)
	ds := data.Flat()
	cfg := DefaultConfig()
	cfg.Scale = 64
	cfg.Embedding = embed.Spec{Kind: embed.KindRP, K: 3, Seed: 13}
	for _, packed := range []bool{false, true} {
		name := "flat"
		if packed {
			name = "packed"
		}
		t.Run(name, func(t *testing.T) {
			c := cfg
			c.PackedCells = packed
			eng, err := NewEngine(c, 2)
			if err != nil {
				t.Fatal(err)
			}
			sess := eng.NewSession()
			for off := 0; off < ds.N; off += 333 {
				end := off + 333
				if end > ds.N {
					end = ds.N
				}
				batch := &pointset.Dataset{Data: ds.Data[off*ds.D : end*ds.D], N: end - off, D: ds.D}
				if err := sess.Append(batch); err != nil {
					t.Fatal(err)
				}
			}
			want, err := eng.ClusterDataset(ds)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sess.Labels()
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Labels {
				if got[i] != want.Labels[i] {
					t.Fatalf("label %d: got %d, want %d", i, got[i], want.Labels[i])
				}
			}

			// Remove a slice from the middle; survivors must match one-shot.
			idx := make([]int, 120)
			for i := range idx {
				idx[i] = 100 + i
			}
			if err := sess.Remove(idx); err != nil {
				t.Fatal(err)
			}
			surv := pointset.New(ds.D, ds.N-len(idx))
			for i := 0; i < ds.N; i++ {
				if i >= 100 && i < 220 {
					continue
				}
				surv.AppendRow(ds.Row(i))
			}
			wantAfter, err := eng.ClusterDataset(surv)
			if err != nil {
				t.Fatal(err)
			}
			gotAfter, err := sess.Labels()
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantAfter.Labels {
				if gotAfter[i] != wantAfter.Labels[i] {
					t.Fatalf("label %d after removal: got %d, want %d", i, gotAfter[i], wantAfter.Labels[i])
				}
			}
		})
	}
}

// TestSessionEmbeddingCheckpointRestore: a checkpoint taken from an
// embedding session restores the fitted projection bit for bit — labels
// identical before and after, and identical again after both sessions
// append the same further batch (the restored embedder is the original fit,
// never a refit). PCA makes this sharp: a refit on different rows would
// change the projection.
func TestSessionEmbeddingCheckpointRestore(t *testing.T) {
	data := synth.Blobs(4, 220, 8, 0.5, 9)
	ds := data.Flat()
	cfg := DefaultConfig()
	cfg.Scale = 64
	cfg.Embedding = embed.Spec{Kind: embed.KindPCA, K: 3}
	eng, err := NewEngine(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	sess := eng.NewSession()
	half := &pointset.Dataset{Data: ds.Data[:(ds.N/2)*ds.D], N: ds.N / 2, D: ds.D}
	rest := &pointset.Dataset{Data: ds.Data[(ds.N/2)*ds.D:], N: ds.N - ds.N/2, D: ds.D}
	if err := sess.Append(half); err != nil {
		t.Fatal(err)
	}
	before, err := sess.Labels()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(bytes.NewReader(buf.Bytes()), eng)
	if err != nil {
		t.Fatal(err)
	}
	after, err := restored.Labels()
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("label %d after restore: got %d, want %d", i, after[i], before[i])
		}
	}
	for _, s := range []*Session{sess, restored} {
		if err := s.Append(rest); err != nil {
			t.Fatal(err)
		}
	}
	wantFull, err := sess.Labels()
	if err != nil {
		t.Fatal(err)
	}
	gotFull, err := restored.Labels()
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantFull {
		if gotFull[i] != wantFull[i] {
			t.Fatalf("label %d after post-restore append: got %d, want %d", i, gotFull[i], wantFull[i])
		}
	}

	// Restoring under a different embedding spec — or none — is the typed
	// embedding mismatch, which still matches the broad config mismatch.
	other := cfg
	other.Embedding = embed.Spec{Kind: embed.KindRP, K: 3, Seed: 1}
	otherEng, err := NewEngine(other, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreSession(bytes.NewReader(buf.Bytes()), otherEng); !errors.Is(err, persist.ErrEmbeddingMismatch) {
		t.Fatalf("restore under different spec: got %v, want ErrEmbeddingMismatch", err)
	}
	none := cfg
	none.Embedding = embed.Spec{}
	noneEng, err := NewEngine(none, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RestoreSession(bytes.NewReader(buf.Bytes()), noneEng)
	if !errors.Is(err, persist.ErrEmbeddingMismatch) || !errors.Is(err, persist.ErrConfigMismatch) {
		t.Fatalf("restore without embedding: got %v, want ErrEmbeddingMismatch wrapping ErrConfigMismatch", err)
	}
}

// TestSessionEmbeddingEmptyCheckpoint: removing every point and
// checkpointing keeps the fitted embedder, so the restored session projects
// new appends with the original fit instead of refitting.
func TestSessionEmbeddingEmptyCheckpoint(t *testing.T) {
	ds := synth.Blobs(3, 100, 6, 0.5, 2).Flat()
	cfg := DefaultConfig()
	cfg.Scale = 32
	cfg.Embedding = embed.Spec{Kind: embed.KindPCA, K: 2}
	eng, err := NewEngine(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess := eng.NewSession()
	if err := sess.Append(ds); err != nil {
		t.Fatal(err)
	}
	all := make([]int, ds.N)
	for i := range all {
		all[i] = i
	}
	if err := sess.Remove(all); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(bytes.NewReader(buf.Bytes()), eng)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Session{sess, restored} {
		if err := s.Append(ds); err != nil {
			t.Fatal(err)
		}
	}
	want, err := sess.Labels()
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Labels()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label %d: got %d, want %d", i, got[i], want[i])
		}
	}
}
