package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"adawave/internal/datasets"
	"adawave/internal/grid"
	"adawave/internal/pointset"
	"adawave/internal/synth"
	"adawave/internal/wavelet"
)

// The streaming equivalence gate (exercised with -race in CI): a Session
// fed any sequence of random batches — with removals and concurrent
// readers — must hold exactly the one-shot grid and reproduce the one-shot
// ClusterDataset result bit for bit.

// sessionFixture is one dataset + config the property test streams.
type sessionFixture struct {
	name string
	pts  [][]float64
	cfg  Config
}

func sessionFixtures(t *testing.T) []sessionFixture {
	t.Helper()
	derm, err := datasets.ByName("dermatology", 1)
	if err != nil {
		t.Fatal(err)
	}
	dermCfg := DefaultConfig()
	dermCfg.Scale = 0 // automatic scale: changes as the stream grows
	dermCfg.Basis = wavelet.Haar()
	// Every fixture runs under both live-grid representations
	// (DefaultConfig enables the packed one); the equivalence assertions
	// below must hold bit for bit either way.
	base := []sessionFixture{
		{"fig2", synth.RunningExampleSized(500, 1).Points, DefaultConfig()},
		{"fig7", synth.Evaluation(400, 0.8, 1).Points, DefaultConfig()},
		{"dermatology", derm.Points, dermCfg},
	}
	out := make([]sessionFixture, 0, 2*len(base))
	for _, fx := range base {
		packed, flat := fx.cfg, fx.cfg
		packed.PackedCells, flat.PackedCells = true, false
		out = append(out,
			sessionFixture{fx.name + "/packed", fx.pts, packed},
			sessionFixture{fx.name + "/flat", fx.pts, flat})
	}
	return out
}

// randomBatches splits n into a random sequence of batch sizes.
func randomBatches(n int, rng *rand.Rand) []int {
	var out []int
	for n > 0 {
		b := 1 + rng.Intn(n)
		if rng.Intn(3) > 0 && n > 10 {
			b = 1 + rng.Intn(n/3+1) // mostly small batches, occasionally huge
		}
		out = append(out, b)
		n -= b
	}
	return out
}

// assertSessionGrid asserts the session's live grid equals the one-shot
// quantization of its current points, cell for cell and id for id.
func assertSessionGrid(t *testing.T, s *Session) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg, err := s.syncLocked(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	q, err := grid.NewQuantizerDataset(s.ds, cfg.Scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, wantIDs := q.QuantizeDataset(s.ds, 1)
	live := s.base
	if s.pbase != nil {
		live = s.pbase.Unpack()
	}
	if want.Len() != live.Len() {
		t.Fatalf("live grid has %d cells, one-shot %d", live.Len(), want.Len())
	}
	d := want.Dim()
	for i := 0; i < want.Len(); i++ {
		for j := 0; j < d; j++ {
			if want.Coords[i*d+j] != live.Coords[i*d+j] {
				t.Fatalf("cell %d coords diverge: one-shot %v, live %v", i, want.CellCoords(i), live.CellCoords(i))
			}
		}
		if want.Vals[i] != live.Vals[i] {
			t.Fatalf("cell %d mass: one-shot %v, live %v", i, want.Vals[i], live.Vals[i])
		}
	}
	for i, id := range wantIDs {
		if s.ids[i] != id {
			t.Fatalf("point %d cell id: one-shot %d, live %d", i, id, s.ids[i])
		}
	}
}

// TestSessionStreamingEquivalence: split every fixture into random batch
// sequences, append them (reading labels at random checkpoints, with
// concurrent readers hammering the session), and assert grid equality and
// label-for-label agreement with the one-shot ClusterDataset at the end of
// every round.
func TestSessionStreamingEquivalence(t *testing.T) {
	for _, fx := range sessionFixtures(t) {
		for round := int64(0); round < 3; round++ {
			t.Run(fmt.Sprintf("%s/round=%d", fx.name, round), func(t *testing.T) {
				rng := rand.New(rand.NewSource(round*31 + 17))
				ds := pointset.MustFromSlices(fx.pts)
				eng, err := NewEngine(fx.cfg, 1+int(round))
				if err != nil {
					t.Fatal(err)
				}
				sess := eng.NewSession()

				// Concurrent readers: hammer Labels/Result while the writer
				// appends. Their view is some consistent past state; the
				// race detector checks the locking discipline.
				stop := make(chan struct{})
				var wg sync.WaitGroup
				for r := 0; r < 3; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						for {
							select {
							case <-stop:
								return
							default:
							}
							if r == 0 {
								// One reader exercises the multi-level
								// path, which computes on a private
								// snapshot outside the session lock.
								_, _ = sess.MultiResolution(2)
								continue
							}
							if res, err := sess.Result(); err == nil && res != nil {
								_ = res.Labels[len(res.Labels)-1] // read through the shared slice
							}
						}
					}(r)
				}

				off := 0
				for _, b := range randomBatches(ds.N, rng) {
					batch := &pointset.Dataset{Data: ds.Data[off*ds.D : (off+b)*ds.D], N: b, D: ds.D}
					if err := sess.Append(batch); err != nil {
						t.Fatal(err)
					}
					off += b
					if rng.Intn(4) == 0 {
						if _, err := sess.Labels(); err != nil {
							t.Fatal(err)
						}
					}
				}
				close(stop)
				wg.Wait()

				assertSessionGrid(t, sess)
				want, err := eng.ClusterDataset(ds)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sess.Result()
				if err != nil {
					t.Fatal(err)
				}
				assertResultsEqual(t, want, got)
			})
		}
	}
}

// TestSessionRemoveEquivalence: interleave appends with random removals
// (interior points exercising the tombstone path, boundary points forcing
// the rebuild path) and assert the session still matches the one-shot run
// over the surviving points.
func TestSessionRemoveEquivalence(t *testing.T) {
	for _, fx := range sessionFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			ds := pointset.MustFromSlices(fx.pts)
			eng, err := NewEngine(fx.cfg, 2)
			if err != nil {
				t.Fatal(err)
			}
			sess := eng.NewSession()

			// Model the surviving point set as a slice of row indices.
			var live []int
			off := 0
			for _, b := range randomBatches(ds.N, rng) {
				batch := &pointset.Dataset{Data: ds.Data[off*ds.D : (off+b)*ds.D], N: b, D: ds.D}
				if err := sess.Append(batch); err != nil {
					t.Fatal(err)
				}
				for i := off; i < off+b; i++ {
					live = append(live, i)
				}
				off += b
				if rng.Intn(3) == 0 {
					if _, err := sess.Labels(); err != nil {
						t.Fatal(err)
					}
				}
				if rng.Intn(2) == 0 && len(live) > 20 {
					nrm := 1 + rng.Intn(len(live)/10+1)
					perm := rng.Perm(len(live))[:nrm]
					if err := sess.Remove(perm); err != nil {
						t.Fatal(err)
					}
					// Mirror the removal in the model (descending order so
					// earlier deletions don't shift later indices).
					sortDesc(perm)
					for _, p := range perm {
						live = append(live[:p], live[p+1:]...)
					}
				}
			}
			union := pointset.New(ds.D, len(live))
			for _, i := range live {
				union.AppendRow(ds.Row(i))
			}
			assertSessionGrid(t, sess)
			want, err := eng.ClusterDataset(union)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sess.Result()
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, want, got)
		})
	}
}

func sortDesc(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] > a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestSessionMultiResolutionEquivalence: the session's multi-resolution
// read must match the one-shot multi-resolution pass level for level after
// streaming appends.
func TestSessionMultiResolutionEquivalence(t *testing.T) {
	ds := synth.RunningExampleSized(400, 1)
	flat := ds.Flat()
	eng, err := NewEngine(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sess := eng.NewSession()
	rng := rand.New(rand.NewSource(2))
	off := 0
	for _, b := range randomBatches(flat.N, rng) {
		batch := &pointset.Dataset{Data: flat.Data[off*flat.D : (off+b)*flat.D], N: b, D: flat.D}
		if err := sess.Append(batch); err != nil {
			t.Fatal(err)
		}
		off += b
	}
	want, err := eng.ClusterMultiResolutionDataset(flat, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.MultiResolution(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("levels: got %d, want %d", len(got), len(want))
	}
	for l := range want {
		assertResultsEqual(t, want[l], got[l])
	}
	// A single-level read after the multi-resolution pass must still see an
	// intact canonical grid.
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	single, err := eng.ClusterDataset(flat)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, single, res)

	// An absurd level count is clamped to what the grid scale can yield
	// (scale 128 → 7 levels) instead of sizing result slices to it.
	huge, err := sess.MultiResolution(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(huge) == 0 || len(huge) > 7 {
		t.Fatalf("clamped levels: got %d", len(huge))
	}
	for l := range want {
		assertResultsEqual(t, want[l], huge[l])
	}
}

// TestSessionValidation covers the mutation-side error paths.
func TestSessionValidation(t *testing.T) {
	sess, err := NewSession(DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Labels(); err == nil {
		t.Fatal("empty session must error on read")
	}
	if err := sess.Append(&pointset.Dataset{Data: []float64{1, 2, 3, 4}, N: 2, D: 2}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Append(&pointset.Dataset{Data: []float64{1, 2, 3}, N: 1, D: 3}); err == nil {
		t.Fatal("dimension mismatch must error")
	}
	if err := sess.Remove([]int{2}); err == nil {
		t.Fatal("out-of-range removal must error")
	}
	if err := sess.Remove([]int{0, 0}); err == nil {
		t.Fatal("duplicate removal must error")
	}
	if err := sess.Append(nil); err != nil {
		t.Fatal(err)
	}
	if sess.Len() != 2 || sess.Dim() != 2 {
		t.Fatalf("shape: got %d/%d", sess.Len(), sess.Dim())
	}
}

// TestSessionNonFinite: a NaN appended mid-stream surfaces the quantizer's
// error on the next read, and removing the bad point heals the session.
func TestSessionNonFinite(t *testing.T) {
	sess, err := NewSession(DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	good := synth.RunningExampleSized(100, 3).Flat()
	if err := sess.Append(good); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Labels(); err != nil {
		t.Fatal(err)
	}
	nan := 0.0
	nan /= nan
	if err := sess.Append(&pointset.Dataset{Data: []float64{nan, 0.5}, N: 1, D: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Labels(); err == nil {
		t.Fatal("NaN point must surface the quantizer error on read")
	}
	if err := sess.Remove([]int{sess.Len() - 1}); err != nil {
		t.Fatal(err)
	}
	labels, err := sess.Labels()
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != good.N {
		t.Fatalf("labels: got %d, want %d", len(labels), good.N)
	}
	want, err := ClusterParallel(good.Rows(), DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if labels[i] != want.Labels[i] {
			t.Fatalf("label %d: got %d, want %d", i, labels[i], want.Labels[i])
		}
	}
}
