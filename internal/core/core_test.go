package core

import (
	"testing"

	"adawave/internal/metrics"
	"adawave/internal/synth"
	"adawave/internal/wavelet"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Scale = 1 },
		func(c *Config) { c.Levels = -1 },
		func(c *Config) { c.Scale = 8; c.Levels = 4 },
		func(c *Config) { c.Basis = wavelet.Basis{} },
		func(c *Config) { c.Threshold = nil },
		func(c *Config) { c.MinClusterCells = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestClusterEmptyInput(t *testing.T) {
	if _, err := Cluster(nil, DefaultConfig()); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestClusterTwoBlobsNoNoise(t *testing.T) {
	ds := synth.Blobs(2, 500, 2, 0.02, 1)
	res, err := Cluster(ds.Points, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("found %d clusters, want 2 (threshold %v, kept %d/%d cells)",
			res.NumClusters, res.Threshold, res.CellsKept, res.CellsTransformed)
	}
	// The paper's fully-labeled-data protocol: Gaussian fringes filtered
	// as noise are reassigned to the nearest cluster.
	full := AssignNoiseToNearest(ds.Points, res.Labels, 3)
	ami := metrics.AMI(ds.Labels, full)
	if ami < 0.95 {
		t.Fatalf("AMI on clean blobs = %v, want ≥ 0.95", ami)
	}
}

func TestAssignNoiseToNearest(t *testing.T) {
	points := [][]float64{{0, 0}, {0.1, 0}, {5, 5}, {5.1, 5}, {0.2, 0.1}, {4.9, 5.2}}
	labels := []int{0, 0, 1, 1, Noise, Noise}
	got := AssignNoiseToNearest(points, labels, 2)
	if got[4] != 0 || got[5] != 1 {
		t.Fatalf("noise assignment = %v", got)
	}
	// Non-noise labels untouched.
	for i := 0; i < 4; i++ {
		if got[i] != labels[i] {
			t.Fatalf("cluster label %d modified", i)
		}
	}
	// Input slice not mutated.
	if labels[4] != Noise {
		t.Fatal("input mutated")
	}
	// All-noise input: everything becomes cluster 0.
	allNoise := AssignNoiseToNearest(points, []int{Noise, Noise, Noise, Noise, Noise, Noise}, 1)
	for _, l := range allNoise {
		if l != 0 {
			t.Fatalf("all-noise fallback = %v", allNoise)
		}
	}
	if out := AssignNoiseToNearest(nil, nil, 1); len(out) != 0 {
		t.Fatal("empty input should return empty")
	}
}

func TestClusterSinglePointPerCell(t *testing.T) {
	// A degenerate but legal input: all points identical.
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	res, err := Cluster(pts, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("identical points should form one cluster, got %d", res.NumClusters)
	}
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatalf("labels = %v", res.Labels)
		}
	}
}

func TestClusterEvaluation50(t *testing.T) {
	ds := synth.Evaluation(2000, 0.50, 7)
	res, err := Cluster(ds.Points, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ami := metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
	if ami < 0.6 {
		t.Fatalf("AMI at 50%% noise = %v (clusters=%d, threshold=%v), want ≥ 0.6",
			ami, res.NumClusters, res.Threshold)
	}
}

func TestClusterRunningExample(t *testing.T) {
	ds := synth.RunningExample(3)
	res, err := Cluster(ds.Points, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ami := metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
	if ami < 0.5 {
		t.Fatalf("AMI on running example = %v (clusters=%d), want ≥ 0.5", ami, res.NumClusters)
	}
}

func TestOrderInsensitivity(t *testing.T) {
	ds := synth.Evaluation(800, 0.5, 11)
	res1, err := Cluster(ds.Points, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	shuffled := ds.Clone()
	shuffled.Shuffle(99)
	res2, err := Cluster(shuffled.Points, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Same partition regardless of input order (labels may be renumbered,
	// but sizes are sorted so they should match exactly here).
	if res1.NumClusters != res2.NumClusters {
		t.Fatalf("cluster count depends on order: %d vs %d", res1.NumClusters, res2.NumClusters)
	}
	if ami := metrics.AMI(res1.Labels, reorder(res2.Labels, shuffled, ds)); ami < 0.999 {
		t.Fatalf("partitions differ across input orders: AMI %v", ami)
	}
}

// reorder maps the labels of the shuffled run back to the original point
// order by matching coordinates (the shuffle permuted points in place).
func reorder(shuffledLabels []int, shuffled, orig *synth.Dataset) []int {
	type key [2]float64
	lookup := make(map[key]int, len(shuffledLabels))
	for i, p := range shuffled.Points {
		lookup[key{p[0], p[1]}] = shuffledLabels[i]
	}
	out := make([]int, len(orig.Points))
	for i, p := range orig.Points {
		out[i] = lookup[key{p[0], p[1]}]
	}
	return out
}

func TestDeterminism(t *testing.T) {
	ds := synth.Evaluation(500, 0.6, 21)
	res1, err := Cluster(ds.Points, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Cluster(ds.Points, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res1.Labels {
		if res1.Labels[i] != res2.Labels[i] {
			t.Fatalf("non-deterministic label at %d", i)
		}
	}
	if res1.Threshold != res2.Threshold {
		t.Fatalf("non-deterministic threshold %v vs %v", res1.Threshold, res2.Threshold)
	}
}

func TestHighNoiseRobustness(t *testing.T) {
	// At 80% noise AdaWave should still beat AMI 0.4 (the paper reports
	// ~0.6 at 80% on the full-size dataset).
	ds := synth.Evaluation(2000, 0.80, 13)
	res, err := Cluster(ds.Points, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ami := metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
	if ami < 0.4 {
		t.Fatalf("AMI at 80%% noise = %v (clusters=%d, threshold=%v)", ami, res.NumClusters, res.Threshold)
	}
}

func TestResultAccessors(t *testing.T) {
	ds := synth.Blobs(3, 200, 2, 0.02, 5)
	res, err := Cluster(ds.Points, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sizes := res.ClusterSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total+res.NoiseCount() != len(ds.Points) {
		t.Fatalf("sizes (%d) + noise (%d) != n (%d)", total, res.NoiseCount(), len(ds.Points))
	}
	if res.CellsQuantized == 0 || res.CellsTransformed == 0 || res.CellsKept == 0 {
		t.Fatalf("cell diagnostics missing: %+v", res)
	}
	if len(res.Curve) != res.CellsTransformed {
		t.Fatalf("curve length %d != transformed cells %d", len(res.Curve), res.CellsTransformed)
	}
}

func TestLevelsZeroSkipsTransform(t *testing.T) {
	ds := synth.Blobs(2, 300, 2, 0.02, 9)
	cfg := DefaultConfig()
	cfg.Levels = 0
	res, err := Cluster(ds.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsTransformed != res.CellsQuantized {
		t.Fatalf("levels=0 should not change the grid: %d vs %d", res.CellsTransformed, res.CellsQuantized)
	}
	if res.NumClusters < 2 {
		t.Fatalf("found %d clusters", res.NumClusters)
	}
}

func TestAllBasesWork(t *testing.T) {
	ds := synth.Evaluation(1000, 0.5, 31)
	for _, b := range wavelet.Bases() {
		cfg := DefaultConfig()
		cfg.Basis = b
		res, err := Cluster(ds.Points, cfg)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		ami := metrics.AMINonNoise(ds.Labels, res.Labels, synth.NoiseLabel)
		if ami < 0.5 {
			t.Errorf("%s: AMI %v below 0.5", b.Name, ami)
		}
	}
}

func TestMultiResolution(t *testing.T) {
	ds := synth.Evaluation(1500, 0.5, 41)
	cfg := DefaultConfig()
	results, err := ClusterMultiResolution(ds.Points, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d levels", len(results))
	}
	for i, r := range results {
		if r.Levels != i+1 {
			t.Fatalf("level field %d at index %d", r.Levels, i)
		}
		if len(r.Labels) != len(ds.Points) {
			t.Fatalf("level %d: %d labels", i+1, len(r.Labels))
		}
	}
	// Level 1 should be the most accurate on this data.
	ami1 := metrics.AMINonNoise(ds.Labels, results[0].Labels, synth.NoiseLabel)
	if ami1 < 0.55 {
		t.Fatalf("level-1 AMI %v", ami1)
	}
	// Deeper levels quantize coarser: cluster count should not explode.
	if results[2].NumClusters > results[0].NumClusters+5 {
		t.Fatalf("coarse level has more clusters (%d) than fine (%d)",
			results[2].NumClusters, results[0].NumClusters)
	}
}

func TestMultiResolutionMatchesCluster(t *testing.T) {
	// Level-ℓ multi-resolution output must equal a direct Cluster run with
	// Levels=ℓ.
	ds := synth.Evaluation(600, 0.4, 51)
	cfg := DefaultConfig()
	multi, err := ClusterMultiResolution(ds.Points, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l <= 2; l++ {
		cfg.Levels = l
		direct, err := Cluster(ds.Points, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range direct.Labels {
			if direct.Labels[i] != multi[l-1].Labels[i] {
				t.Fatalf("level %d: label mismatch at point %d", l, i)
			}
		}
	}
}

func TestThresholdSeparatesNoise(t *testing.T) {
	// Most ground-truth noise should be labeled Noise, and most cluster
	// points should not.
	ds := synth.Evaluation(2000, 0.5, 61)
	res, err := Cluster(ds.Points, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var noiseCaught, clusterKept, nNoise, nCluster int
	for i, l := range ds.Labels {
		if l == synth.NoiseLabel {
			nNoise++
			if res.Labels[i] == Noise {
				noiseCaught++
			}
		} else {
			nCluster++
			if res.Labels[i] != Noise {
				clusterKept++
			}
		}
	}
	if frac := float64(noiseCaught) / float64(nNoise); frac < 0.5 {
		t.Fatalf("only %.0f%% of noise filtered", frac*100)
	}
	if frac := float64(clusterKept) / float64(nCluster); frac < 0.75 {
		t.Fatalf("only %.0f%% of cluster points kept", frac*100)
	}
}
