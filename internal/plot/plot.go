// Package plot renders point sets and line series as ASCII charts — the
// terminal stand-in for the paper's figures, used by the examples and the
// experiment harness.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// clusterGlyphs label clusters 0, 1, 2, … in scatter plots; noise (label
// −1) renders as '·' and empty cells as space.
const clusterGlyphs = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

// Glyph returns the scatter glyph for a cluster label.
func Glyph(label int) byte {
	if label < 0 {
		return '.'
	}
	return clusterGlyphs[label%len(clusterGlyphs)]
}

// Scatter renders 2-D points into a width×height character canvas. Labels
// choose the glyph per point (nil labels render every point as 'A'); when
// several points land in one cell the non-noise label drawn last wins, so
// clusters stay visible over background noise. Points beyond two dimensions
// are projected onto their first two coordinates.
func Scatter(points [][]float64, labels []int, width, height int) string {
	if width < 2 {
		width = 2
	}
	if height < 2 {
		height = 2
	}
	if len(points) == 0 {
		return "(no points)\n"
	}
	minX, maxX := points[0][0], points[0][0]
	minY, maxY := points[0][1], points[0][1]
	for _, p := range points {
		minX = math.Min(minX, p[0])
		maxX = math.Max(maxX, p[0])
		minY = math.Min(minY, p[1])
		maxY = math.Max(maxY, p[1])
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	cells := make([][]byte, height)
	for r := range cells {
		cells[r] = []byte(strings.Repeat(" ", width))
	}
	for i, p := range points {
		c := int(float64(width-1) * (p[0] - minX) / spanX)
		r := height - 1 - int(float64(height-1)*(p[1]-minY)/spanY)
		l := 0
		if labels != nil {
			l = labels[i]
		}
		g := Glyph(l)
		// Noise never overwrites a cluster glyph.
		if g == '.' && cells[r][c] != ' ' && cells[r][c] != '.' {
			continue
		}
		cells[r][c] = g
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for _, row := range cells {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	return b.String()
}

// Line is one named series of a Chart.
type Line struct {
	Name string
	X, Y []float64
}

// Chart renders line series into a width×height canvas with a y-axis scale
// and a legend (one glyph per series, assigned in input order). Series may
// have different x grids; the x range is the union.
func Chart(lines []Line, width, height int) string {
	if len(lines) == 0 {
		return "(no series)\n"
	}
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, l := range lines {
		for i := range l.X {
			minX = math.Min(minX, l.X[i])
			maxX = math.Max(maxX, l.X[i])
			minY = math.Min(minY, l.Y[i])
			maxY = math.Max(maxY, l.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return "(no data)\n"
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	cells := make([][]byte, height)
	for r := range cells {
		cells[r] = []byte(strings.Repeat(" ", width))
	}
	for li, l := range lines {
		g := clusterGlyphs[li%len(clusterGlyphs)]
		for i := range l.X {
			c := int(float64(width-1) * (l.X[i] - minX) / spanX)
			r := height - 1 - int(float64(height-1)*(l.Y[i]-minY)/spanY)
			cells[r][c] = g
		}
	}
	var b strings.Builder
	for r, row := range cells {
		yv := maxY - float64(r)*spanY/float64(height-1)
		fmt.Fprintf(&b, "%8.3f |", yv)
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "%9s %-8.3g%*.3g\n", "", minX, width-8, maxX)
	for li, l := range lines {
		fmt.Fprintf(&b, "  %c = %s\n", clusterGlyphs[li%len(clusterGlyphs)], l.Name)
	}
	return b.String()
}

// Curve renders the values of ys against their indices — used for the
// sorted-density curve of the paper's Fig. 6.
func Curve(name string, ys []float64, width, height int) string {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i)
	}
	return Chart([]Line{{Name: name, X: xs, Y: ys}}, width, height)
}
