package plot

import (
	"strings"
	"testing"
)

func TestScatterBasic(t *testing.T) {
	points := [][]float64{{0, 0}, {1, 1}, {0.5, 0.5}}
	labels := []int{0, 1, -1}
	out := Scatter(points, labels, 20, 10)
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") || !strings.Contains(out, ".") {
		t.Fatalf("missing glyphs in:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12 { // border + 10 rows + border
		t.Fatalf("got %d lines, want 12", len(lines))
	}
	for _, l := range lines {
		if len(l) != 22 { // | + 20 + |
			t.Fatalf("row width %d, want 22: %q", len(l), l)
		}
	}
}

func TestScatterCornersMap(t *testing.T) {
	// (0,0) lands bottom-left, (1,1) top-right.
	points := [][]float64{{0, 0}, {1, 1}}
	out := Scatter(points, []int{0, 1}, 10, 5)
	rows := strings.Split(strings.TrimRight(out, "\n"), "\n")
	top, bottom := rows[1], rows[len(rows)-2]
	if !strings.Contains(bottom, "A") {
		t.Fatalf("origin not bottom-left:\n%s", out)
	}
	if !strings.Contains(top, "B") {
		t.Fatalf("(1,1) not top-right:\n%s", out)
	}
}

func TestScatterNoiseNeverCoversClusters(t *testing.T) {
	// A cluster point and a noise point in the same cell: glyph stays.
	points := [][]float64{{0, 0}, {1, 1}, {1, 1}}
	labels := []int{0, 2, -1}
	out := Scatter(points, labels, 8, 4)
	if !strings.Contains(out, "C") {
		t.Fatalf("cluster glyph overwritten by noise:\n%s", out)
	}
}

func TestScatterDegenerate(t *testing.T) {
	if out := Scatter(nil, nil, 10, 5); !strings.Contains(out, "no points") {
		t.Fatalf("empty scatter: %q", out)
	}
	// Identical points: span 0 must not divide by zero.
	out := Scatter([][]float64{{3, 3}, {3, 3}}, nil, 5, 3)
	if !strings.Contains(out, "A") {
		t.Fatalf("degenerate scatter:\n%s", out)
	}
}

func TestGlyph(t *testing.T) {
	if Glyph(-1) != '.' {
		t.Fatal("noise glyph should be '.'")
	}
	if Glyph(0) != 'A' || Glyph(1) != 'B' {
		t.Fatal("cluster glyphs should start at 'A'")
	}
	if Glyph(len(clusterGlyphs)) != 'A' {
		t.Fatal("glyphs should wrap")
	}
}

func TestChartRendersAllSeries(t *testing.T) {
	lines := []Line{
		{Name: "adawave", X: []float64{0, 1, 2}, Y: []float64{0.9, 0.8, 0.7}},
		{Name: "dbscan", X: []float64{0, 1, 2}, Y: []float64{0.8, 0.4, 0.1}},
	}
	out := Chart(lines, 30, 10)
	if !strings.Contains(out, "A = adawave") || !strings.Contains(out, "B = dbscan") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatalf("series glyphs missing:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	if out := Chart(nil, 20, 5); !strings.Contains(out, "no series") {
		t.Fatalf("empty chart: %q", out)
	}
	if out := Chart([]Line{{Name: "x"}}, 20, 5); !strings.Contains(out, "no data") {
		t.Fatalf("chart with empty series: %q", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	out := Chart([]Line{{Name: "flat", X: []float64{0, 1}, Y: []float64{2, 2}}}, 20, 5)
	if !strings.Contains(out, "A") {
		t.Fatalf("flat series vanished:\n%s", out)
	}
}

func TestCurve(t *testing.T) {
	out := Curve("density", []float64{9, 4, 1, 0.5, 0.1}, 20, 6)
	if !strings.Contains(out, "A = density") {
		t.Fatalf("curve legend missing:\n%s", out)
	}
}
