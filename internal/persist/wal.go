package persist

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"adawave/internal/pointset"
)

// The WAL is a single append-only file per session:
//
//	"AWL1" | record*
//	record: length uint32 | type uint8 | seq uint64 | payload | crc32c uint32
//
// length counts payload bytes; the CRC covers length, type, seq and the
// payload, so a torn write anywhere in the record is detected. Sequence
// numbers increase strictly across the session's lifetime and survive a
// Reset (the post-checkpoint truncation), which is what lets recovery
// replay exactly the records a checkpoint has not folded in: the checkpoint
// carries the last sequence it contains, and replay skips everything at or
// below it — so a crash between checkpoint rename and WAL truncation never
// double-applies a batch.
//
// Payloads:
//
//	append (type 1): n uint32 | d uint32 | data n·d float64
//	remove (type 2): k uint32 | indices k int64
const (
	walMagic     = "AWL1"
	recAppend    = 1
	recRemove    = 2
	walHeaderLen = 4 + 1 + 8 // length | type | seq
	// maxWALRecord bounds a single record so a corrupt length field cannot
	// demand an absurd read; 1 GiB is far above any real batch.
	maxWALRecord = 1 << 30
)

// SyncPolicy selects when WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record: a mutation is durable
	// before its HTTP response is written. Slowest, zero-loss.
	SyncAlways SyncPolicy = iota
	// SyncInterval leaves fsync to a periodic caller of Sync (the serving
	// layer's background ticker): a crash loses at most the last interval.
	SyncInterval
	// SyncNever never fsyncs explicitly; the OS flushes on its schedule. A
	// process crash loses nothing (the page cache survives), a machine
	// crash loses unflushed records.
	SyncNever
)

// ParseSyncPolicy maps the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("persist: unknown sync policy %q (want always, interval or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// WAL is an open write-ahead log. It is safe for concurrent use (one
// writer's appends interleaved with a background Sync ticker and any number
// of replication Tailers reading the file through their own descriptors).
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	bw      *bufio.Writer
	path    string
	policy  SyncPolicy
	seq     uint64 // last sequence number written (or recovered)
	records uint64 // records appended since the last Reset
	size    int64  // valid bytes (magic + intact records)
	gen     atomic.Uint64
}

// OpenWAL opens (creating if absent) the log at path. An existing log is
// scanned to the last intact record: the sequence counter resumes after it,
// and a torn trailing record — the signature of a crash mid-append — is
// truncated away. Corruption before the tail (a bad magic) is an error, not
// a truncation: it means the file is not a WAL at all.
func OpenWAL(path string, policy SyncPolicy) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open wal: %w", err)
	}
	w := &WAL{f: f, path: path, policy: policy, size: int64(len(walMagic))}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: open wal: %w", err)
	}
	if st.Size() < int64(len(walMagic)) {
		// New (or torn-before-magic) log: start fresh.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: init wal: %w", err)
		}
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: init wal: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: init wal: %w", err)
		}
	} else {
		lastSeq, validOff, records, _, _, err := scanWAL(f, 0, nil)
		if err != nil {
			f.Close()
			return nil, err
		}
		if validOff < st.Size() {
			// Torn or corrupt tail: discard it so new appends start at a
			// record boundary.
			if err := f.Truncate(validOff); err != nil {
				f.Close()
				return nil, fmt.Errorf("persist: truncate torn wal tail: %w", err)
			}
		}
		w.seq, w.size, w.records = lastSeq, validOff, records
	}
	if _, err := f.Seek(w.size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: open wal: %w", err)
	}
	w.bw = bufio.NewWriter(f)
	return w, nil
}

// Seq returns the last written (or recovered) sequence number.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Records returns the number of records appended since the last Reset — the
// serving layer's "does this session need a checkpoint" signal.
func (w *WAL) Records() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Size returns the current valid log size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// AppendBatch journals an append mutation and returns its sequence number.
func (w *WAL) AppendBatch(ds *pointset.Dataset) (uint64, error) {
	if ds == nil || ds.N == 0 {
		return 0, errors.New("persist: empty append batch")
	}
	if ds.N >= math.MaxUint32 || ds.D >= math.MaxUint32 {
		return 0, fmt.Errorf("persist: batch shape %d×%d exceeds the record format", ds.N, ds.D)
	}
	payload := 8 + 8*ds.N*ds.D
	return w.append(recAppend, payload, func(out io.Writer) error {
		if err := writeU32(out, uint32(ds.N)); err != nil {
			return err
		}
		if err := writeU32(out, uint32(ds.D)); err != nil {
			return err
		}
		return writeFloats(out, ds.Data[:ds.N*ds.D])
	})
}

// AppendRemove journals a remove mutation and returns its sequence number.
func (w *WAL) AppendRemove(indices []int) (uint64, error) {
	if len(indices) == 0 {
		return 0, errors.New("persist: empty remove batch")
	}
	payload := 4 + 8*len(indices)
	return w.append(recRemove, payload, func(out io.Writer) error {
		if err := writeU32(out, uint32(len(indices))); err != nil {
			return err
		}
		var b [8]byte
		for _, i := range indices {
			le.PutUint64(b[:], uint64(int64(i)))
			if _, err := out.Write(b[:]); err != nil {
				return err
			}
		}
		return nil
	})
}

// append frames one record: header, payload (streamed through body), CRC
// trailer, then the policy's fsync.
func (w *WAL) append(typ byte, payloadLen int, body func(io.Writer) error) (uint64, error) {
	if payloadLen > maxWALRecord {
		return 0, fmt.Errorf("persist: wal record of %d bytes exceeds the %d limit", payloadLen, maxWALRecord)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	seq := w.seq + 1
	cw := &crcWriter{w: w.bw}
	var hdr [walHeaderLen]byte
	le.PutUint32(hdr[0:4], uint32(payloadLen))
	hdr[4] = typ
	le.PutUint64(hdr[5:13], seq)
	if _, err := cw.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("persist: wal append: %w", err)
	}
	if err := body(cw); err != nil {
		return 0, fmt.Errorf("persist: wal append: %w", err)
	}
	if err := writeU32(w.bw, cw.crc); err != nil {
		return 0, fmt.Errorf("persist: wal append: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return 0, fmt.Errorf("persist: wal append: %w", err)
	}
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("persist: wal sync: %w", err)
		}
	}
	w.seq = seq
	w.records++
	w.size += int64(walHeaderLen + payloadLen + 4)
	return seq, nil
}

// Sync flushes buffered records and fsyncs the log — the interval policy's
// periodic call, also safe under the other policies.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("persist: wal sync: %w", err)
	}
	return w.f.Sync()
}

// Reset truncates the log back to its header after a checkpoint has folded
// its records in. The sequence counter is NOT reset — post-checkpoint
// records keep climbing past the checkpoint's sequence, which is how replay
// tells them apart.
//
// Reset deliberately does not flush first: every byte buffered (or already
// torn onto disk by a failed append) is superseded by the checkpoint, so
// the buffer is dropped and the writer reattached — which also clears
// bufio's sticky error, so a transient disk failure during an append
// cannot permanently wedge the checkpoint path that exists to recover
// from it.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.bw.Reset(w.f)
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("persist: wal reset: %w", err)
	}
	if _, err := w.f.Seek(int64(len(walMagic)), io.SeekStart); err != nil {
		return fmt.Errorf("persist: wal reset: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("persist: wal reset: %w", err)
	}
	w.size = int64(len(walMagic))
	w.records = 0
	// The truncation invalidates every Tailer's file offset; bumping the
	// generation (after the truncate, still under the lock) makes them
	// surface ErrWALReset instead of reading past a moved tail.
	w.gen.Add(1)
	return nil
}

// SkipTo advances the sequence counter to at least seq without writing a
// record. Recovery uses it when the newest checkpoint's sequence exceeds
// the reopened log's (the log was truncated by that checkpoint, so a fresh
// scan starts from zero): new records must keep climbing past the
// checkpoint, or replay-from-checkpoint would skip them.
func (w *WAL) SkipTo(seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq > w.seq {
		w.seq = seq
	}
}

// Close flushes and closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("persist: wal close: %w", err)
	}
	return w.f.Close()
}

// Record is one replayed WAL mutation: exactly one of Batch (append) and
// Indices (remove) is non-nil.
type Record struct {
	Seq     uint64
	Batch   *pointset.Dataset
	Indices []int
}

// Target is the mutation surface a WAL replays into; both core.Session and
// the adawave facade Session satisfy it.
type Target interface {
	Append(*pointset.Dataset) error
	Remove([]int) error
}

// ReplayWAL streams the intact records with sequence numbers above fromSeq
// through fn, in order. A torn or corrupt tail ends the replay silently —
// that is the crash-recovery contract: everything before the tear was
// applied, the tear itself never acknowledged. A missing file replays
// nothing. fn's errors abort the replay and are returned as-is. The
// returned lastSeq is the last intact record's sequence (0 for an empty or
// missing log); replayed counts the records handed to fn.
func ReplayWAL(path string, fromSeq uint64, fn func(Record) error) (lastSeq uint64, replayed int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("persist: replay wal: %w", err)
	}
	defer f.Close()
	lastSeq, _, _, replayed, _, err = scanWAL(f, fromSeq, fn)
	return lastSeq, replayed, err
}

// ReplayInto replays the log tail into a live session: appends re-fold,
// removes re-subtract. Only mutations that succeeded live are journaled, so
// an apply error here means the log and the session diverged — corruption —
// and aborts the recovery.
func ReplayInto(path string, fromSeq uint64, t Target) (lastSeq uint64, replayed int, err error) {
	return ReplayWAL(path, fromSeq, func(rec Record) error {
		if rec.Batch != nil {
			return t.Append(rec.Batch)
		}
		return t.Remove(rec.Indices)
	})
}

// scanWAL validates the magic and walks records until the first torn or
// corrupt one, returning the last intact sequence, the byte offset of the
// valid prefix, and the intact record count. Records with Seq > fromSeq are
// handed to fn (when non-nil); fn errors abort the scan. A scan that stops
// anywhere other than a clean record boundary additionally describes the
// tear (tear non-nil): crash recovery (OpenWAL, ReplayWAL) discards it as
// the unacknowledged tail, while the replication paths (ReplayWALStrict,
// the stream readers) surface it so a follower resuming from a mid-record
// offset is told the stream is incomplete instead of silently short.
func scanWAL(r io.Reader, fromSeq uint64, fn func(Record) error) (lastSeq uint64, validOff int64, records uint64, applied int, tear *TornRecordError, err error) {
	if seeker, ok := r.(io.Seeker); ok {
		if _, err := seeker.Seek(0, io.SeekStart); err != nil {
			return 0, 0, 0, 0, nil, fmt.Errorf("persist: scan wal: %w", err)
		}
	}
	torn := func(reason string) *TornRecordError {
		return &TornRecordError{Offset: validOff, LastSeq: lastSeq, Reason: reason}
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, 0, 0, 0, nil, fmt.Errorf("persist: wal too short for magic: %w", err)
	}
	if string(magic) != walMagic {
		return 0, 0, 0, 0, nil, fmt.Errorf("persist: bad wal magic %q", magic)
	}
	validOff = int64(len(walMagic))
	var payload []byte
	for {
		var hdr [walHeaderLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return lastSeq, validOff, records, applied, nil, nil // clean end
			}
			return lastSeq, validOff, records, applied, torn("torn header"), nil
		}
		length := le.Uint32(hdr[0:4])
		typ := hdr[4]
		seq := le.Uint64(hdr[5:13])
		if length > maxWALRecord || (typ != recAppend && typ != recRemove) || seq <= lastSeq {
			return lastSeq, validOff, records, applied, torn("corrupt header"), nil
		}
		// Read the payload in bounded chunks so a corrupt length that
		// passed the cap still only allocates what the file really holds.
		payload = payload[:0]
		for read := 0; read < int(length); {
			n := int(length) - read
			if n > 1<<16 {
				n = 1 << 16
			}
			if cap(payload) < read+n {
				payload = append(payload[:read], make([]byte, n)...)[:read]
			}
			if _, err := io.ReadFull(br, payload[read:read+n]); err != nil {
				return lastSeq, validOff, records, applied, torn("torn payload"), nil
			}
			payload = payload[:read+n]
			read += n
		}
		wantCRC, err := readU32(br)
		if err != nil {
			return lastSeq, validOff, records, applied, torn("torn trailer"), nil
		}
		crc := crc32.Update(0, castagnoli, hdr[:])
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != wantCRC {
			return lastSeq, validOff, records, applied, torn("crc mismatch"), nil
		}
		rec, ok := parseRecord(typ, seq, payload)
		if !ok {
			return lastSeq, validOff, records, applied, torn("malformed record"), nil
		}
		lastSeq = seq
		validOff += int64(walHeaderLen + int(length) + 4)
		records++
		if fn != nil && seq > fromSeq {
			if err := fn(rec); err != nil {
				return lastSeq, validOff, records, applied, nil, err
			}
			applied++
		}
	}
}

// parseRecord decodes one payload; a shape that disagrees with the record
// length is malformed. All shape arithmetic stays in uint64 against the
// actual payload size: n·d (two uint32s) can wrap any int product, and a
// wrapped check would admit a crafted tiny record whose declared shape then
// provokes a giant allocation — the overflow class ReadSnapshot guards
// against, applied here too.
func parseRecord(typ byte, seq uint64, payload []byte) (Record, bool) {
	switch typ {
	case recAppend:
		if len(payload) < 8 {
			return Record{}, false
		}
		n := uint64(le.Uint32(payload[0:4]))
		d := uint64(le.Uint32(payload[4:8]))
		// n, d < 2^32, so n*d < 2^64 never wraps; it must match the floats
		// the payload really carries, which maxWALRecord keeps small.
		if n < 1 || d < 1 || (uint64(len(payload))-8)%8 != 0 || n*d != (uint64(len(payload))-8)/8 {
			return Record{}, false
		}
		data := make([]float64, int(n*d))
		for i := range data {
			data[i] = math.Float64frombits(le.Uint64(payload[8+8*i:]))
		}
		return Record{Seq: seq, Batch: &pointset.Dataset{Data: data, N: int(n), D: int(d)}}, true
	case recRemove:
		if len(payload) < 4 {
			return Record{}, false
		}
		k := uint64(le.Uint32(payload[0:4]))
		if k < 1 || (uint64(len(payload))-4)%8 != 0 || k != (uint64(len(payload))-4)/8 {
			return Record{}, false
		}
		idx := make([]int, int(k))
		for i := range idx {
			idx[i] = int(int64(le.Uint64(payload[4+8*i:])))
		}
		return Record{Seq: seq, Indices: idx}, true
	}
	return Record{}, false
}

// writeFloats streams a float64 slice in little-endian without one giant
// intermediate buffer.
func writeFloats(w io.Writer, data []float64) error {
	var buf [8 << 10]byte
	for off := 0; off < len(data); {
		n := len(data) - off
		if n > len(buf)/8 {
			n = len(buf) / 8
		}
		for i := 0; i < n; i++ {
			le.PutUint64(buf[8*i:], math.Float64bits(data[off+i]))
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}
