package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"adawave/internal/embed"
	"adawave/internal/grid"
	"adawave/internal/pointset"
)

// embedState builds a session state with a fitted embedder: raw 3-d rows,
// a seeded random projection down to 2, and the grid built in the projected
// space — exactly what an embedding session checkpoints.
func embedState(t *testing.T, n int) *SessionState {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	ds := pointset.New(3, n)
	for i := 0; i < n; i++ {
		ds.AppendRow([]float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10})
	}
	spec := embed.Spec{Kind: embed.KindRP, K: 2, Seed: 5}
	emb, err := embed.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Fit(ds); err != nil {
		t.Fatal(err)
	}
	pds, err := emb.Transform(ds)
	if err != nil {
		t.Fatal(err)
	}
	q, err := grid.NewQuantizerDataset(pds, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, ids := q.QuantizeDataset(pds, 1)
	return &SessionState{
		Config: ConfigMeta{Scale: 16, Levels: 1, Basis: "cdf22", Connectivity: "faces",
			CoeffEpsilon: 0.01, Threshold: "three-segment-fit", MinClusterCells: 1, MinClusterMass: 0.05,
			Embedding: spec.String()},
		DS: ds, IDs: ids, Scale: 16, Mins: q.Mins, Maxs: q.Maxs, Grid: g, Embedder: emb,
	}
}

func TestCheckpointEmbeddingRoundTrip(t *testing.T) {
	want := embedState(t, 150)
	var buf bytes.Buffer
	if err := WriteSessionCheckpoint(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSessionCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertStatesEqual(t, want, got)
	if got.Embedder == nil {
		t.Fatal("embedder not restored")
	}
	wb, err := want.Embedder.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.Embedder.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb, gb) {
		t.Fatal("restored embedder parameters differ from the fitted ones")
	}
	if len(got.Mins) != 2 || len(got.Maxs) != 2 {
		t.Fatalf("frame restored in %d dims, want the 2-d projected space", len(got.Mins))
	}
}

// TestCheckpointEmptyFittedEmbedder: a session whose rows were all removed
// keeps its fitted embedder, so a restore followed by appends projects with
// the original fit.
func TestCheckpointEmptyFittedEmbedder(t *testing.T) {
	st := embedState(t, 40)
	st.DS = &pointset.Dataset{D: 3}
	st.IDs, st.Mins, st.Maxs, st.Grid = nil, nil, nil, nil
	var buf bytes.Buffer
	if err := WriteSessionCheckpoint(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSessionCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.DS.N != 0 || got.Embedder == nil {
		t.Fatalf("got %d points, embedder %v; want empty with a fitted embedder", got.DS.N, got.Embedder)
	}
}

// TestCheckpointNoEmbeddingLayoutUnchanged pins backward compatibility: a
// checkpoint without an embedding must be byte-for-byte the pre-embedding
// format — no embedding key in the config JSON, no embLen section, and a
// total length that matches the old layout arithmetic exactly.
func TestCheckpointNoEmbeddingLayoutUnchanged(t *testing.T) {
	st := testState(t, 32)
	var buf bytes.Buffer
	if err := WriteSessionCheckpoint(&buf, st); err != nil {
		t.Fatal(err)
	}
	cfg, err := json.Marshal(st.Config)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(cfg), "embedding") {
		t.Fatalf("config JSON %s leaks an embedding field into no-embedding checkpoints", cfg)
	}
	var gbuf bytes.Buffer
	if err := st.Grid.WriteSnapshot(&gbuf); err != nil {
		t.Fatal(err)
	}
	n, d := st.DS.N, st.DS.D
	want := 4 + 4 + len(cfg) + 8 + 4 + // magic, cfgLen, cfg, n, d
		8*n*d + // rows
		4 + 8*d + 8*d + // scale, mins, maxs
		4*n + // ids
		8 + gbuf.Len() + // gridLen, grid
		4 // crc
	if buf.Len() != want {
		t.Fatalf("no-embedding checkpoint is %d bytes, old format is %d", buf.Len(), want)
	}
}

func TestCheckConfigEmbeddingMismatch(t *testing.T) {
	a := ConfigMeta{Scale: 128, Basis: "cdf22", Threshold: "three-segment-fit", Embedding: "pca(k=4)"}
	if err := CheckConfig(a, a); err != nil {
		t.Fatal(err)
	}
	b := a
	b.Embedding = "rp(k=4,seed=1)"
	err := CheckConfig(a, b)
	if !errors.Is(err, ErrEmbeddingMismatch) {
		t.Fatalf("got %v, want ErrEmbeddingMismatch", err)
	}
	if !errors.Is(err, ErrConfigMismatch) {
		t.Fatal("ErrEmbeddingMismatch must still match ErrConfigMismatch")
	}
	c := a
	c.Embedding = ""
	if err := CheckConfig(a, c); !errors.Is(err, ErrEmbeddingMismatch) {
		t.Fatalf("embedding vs none: got %v, want ErrEmbeddingMismatch", err)
	}
	// A non-embedding difference stays the broad mismatch.
	d := a
	d.Basis = "haar"
	err = CheckConfig(a, d)
	if !errors.Is(err, ErrConfigMismatch) || errors.Is(err, ErrEmbeddingMismatch) {
		t.Fatalf("basis mismatch classified as %v", err)
	}
}

// TestCheckpointEmbeddingRejectsBadState: writer-side invariants and
// reader-side corruption of the embedder section.
func TestCheckpointEmbeddingRejectsBadState(t *testing.T) {
	st := embedState(t, 24)
	noEmb := *st
	noEmb.Embedder = nil
	if err := WriteSessionCheckpoint(io.Discard, &noEmb); err == nil {
		t.Fatal("points without a fitted embedder must refuse to checkpoint")
	}
	wrongSpec := *st
	wrongSpec.Config.Embedding = "pca(k=2)"
	if err := WriteSessionCheckpoint(io.Discard, &wrongSpec); err == nil {
		t.Fatal("embedder spec disagreeing with the config must refuse to checkpoint")
	}

	var buf bytes.Buffer
	if err := WriteSessionCheckpoint(&buf, st); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for _, cut := range []int{len(good) / 4, len(good) / 2, len(good) - 1} {
		if _, err := ReadSessionCheckpoint(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d must error", cut)
		}
	}
	for _, flip := range []int{20, len(good) / 3, len(good) - 2} {
		bad := append([]byte(nil), good...)
		bad[flip] ^= 0xFF
		if _, err := ReadSessionCheckpoint(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipped byte at %d must error", flip)
		}
	}
}
