// Package persist is the durability layer of streaming AdaWave sessions:
// a versioned, CRC-framed checkpoint format for a session's full state
// (configuration fingerprint, flat point rows, memoized cell ids, quantizer
// frame and an embedded grid snapshot) and a write-ahead log of append and
// remove batches with a configurable fsync policy.
//
// The combination makes log-structured crash recovery cheap in exactly the
// way AdaWave's additive cell masses promise: a recovered process loads the
// newest checkpoint (O(points + cells) sequential reads, no requantization)
// and replays the WAL tail, where each replayed batch folds into the live
// grid by one O(cells) merge — centroid-style methods would have to re-fit
// the whole model on every replayed record. Recovery at any crash point
// reproduces labels bit-identical to the never-crashed session, because
// only successfully applied mutations are journaled and the streaming
// session's equivalence guarantee holds for every append/remove sequence.
//
// The package speaks only pointset and grid (internal/core builds its
// Session checkpointing on top of it), and every reader treats its input as
// untrusted: sizes are bounds-checked before allocation, sections are read
// in bounded chunks, and a CRC mismatch or torn tail is reported (WAL
// replay: silently truncated) instead of restoring a quietly broken state.
package persist

import (
	"encoding/binary"
	"hash/crc32"
	"io"
)

// castagnoli is the CRC-32C table shared by checkpoint and WAL framing —
// the polynomial with hardware support on both amd64 and arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcWriter tees every written byte into a running CRC-32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// crcReader CRCs every byte actually consumed, so a reader that parses the
// framed body section by section accounts for exactly the bytes the trailer
// covers.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// le is the byte order of every integer in both formats.
var le = binary.LittleEndian

// writeU32/writeU64/readU32/readU64 are the scalar framing helpers.
func writeU32(w io.Writer, v uint32) error { return binary.Write(w, le, v) }
func writeU64(w io.Writer, v uint64) error { return binary.Write(w, le, v) }

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return le.Uint32(b[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return le.Uint64(b[:]), nil
}
