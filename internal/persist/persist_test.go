package persist

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"adawave/internal/grid"
	"adawave/internal/pointset"
)

// testState builds a small but structurally complete session state: random
// rows quantized into a real grid with memoized ids.
func testState(t *testing.T, n int) *SessionState {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	ds := pointset.New(2, n)
	for i := 0; i < n; i++ {
		ds.AppendRow([]float64{rng.Float64() * 10, rng.Float64() * 10})
	}
	q, err := grid.NewQuantizerDataset(ds, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, ids := q.QuantizeDataset(ds, 1)
	return &SessionState{
		Config: ConfigMeta{Scale: 16, Levels: 1, Basis: "cdf22", Connectivity: "faces",
			CoeffEpsilon: 0.01, Threshold: "three-segment-fit", MinClusterCells: 1, MinClusterMass: 0.05},
		DS: ds, IDs: ids, Scale: 16, Mins: q.Mins, Maxs: q.Maxs, Grid: g,
	}
}

func assertStatesEqual(t *testing.T, want, got *SessionState) {
	t.Helper()
	if got.Config != want.Config {
		t.Fatalf("config: got %+v, want %+v", got.Config, want.Config)
	}
	if got.DS.N != want.DS.N || got.DS.D != want.DS.D {
		t.Fatalf("shape: got %d×%d, want %d×%d", got.DS.N, got.DS.D, want.DS.N, want.DS.D)
	}
	for i, v := range want.DS.Data {
		if got.DS.Data[i] != v {
			t.Fatalf("row datum %d: got %v, want %v", i, got.DS.Data[i], v)
		}
	}
	for i, id := range want.IDs {
		if got.IDs[i] != id {
			t.Fatalf("id %d: got %d, want %d", i, got.IDs[i], id)
		}
	}
	if got.Scale != want.Scale {
		t.Fatalf("scale: got %d, want %d", got.Scale, want.Scale)
	}
	for j := range want.Mins {
		if got.Mins[j] != want.Mins[j] || got.Maxs[j] != want.Maxs[j] {
			t.Fatalf("frame dim %d: got [%v,%v], want [%v,%v]", j, got.Mins[j], got.Maxs[j], want.Mins[j], want.Maxs[j])
		}
	}
	if got.Grid.Len() != want.Grid.Len() {
		t.Fatalf("grid cells: got %d, want %d", got.Grid.Len(), want.Grid.Len())
	}
	for i := 0; i < want.Grid.Len(); i++ {
		if got.Grid.Vals[i] != want.Grid.Vals[i] {
			t.Fatalf("grid mass %d: got %v, want %v", i, got.Grid.Vals[i], want.Grid.Vals[i])
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	want := testState(t, 200)
	var buf bytes.Buffer
	if err := WriteSessionCheckpoint(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSessionCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertStatesEqual(t, want, got)
}

func TestCheckpointEmptySession(t *testing.T) {
	st := &SessionState{Config: ConfigMeta{Basis: "haar", Threshold: "three-segment-fit"}, DS: &pointset.Dataset{D: 3}}
	var buf bytes.Buffer
	if err := WriteSessionCheckpoint(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSessionCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.DS.N != 0 || got.DS.D != 3 || got.Grid != nil {
		t.Fatalf("empty checkpoint restored to %d×%d points, grid %v", got.DS.N, got.DS.D, got.Grid)
	}
}

// TestCheckpointRejectsCorruption: truncation anywhere and a flipped byte
// anywhere must be reported, never restored silently.
func TestCheckpointRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSessionCheckpoint(&buf, testState(t, 64)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for _, cut := range []int{0, 3, 10, len(good) / 2, len(good) - 1} {
		if _, err := ReadSessionCheckpoint(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d must error", cut)
		}
	}
	for _, flip := range []int{5, len(good) / 3, len(good) - 2} {
		bad := append([]byte(nil), good...)
		bad[flip] ^= 0xFF
		if _, err := ReadSessionCheckpoint(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipped byte at %d must error", flip)
		}
	}
}

func TestCheckConfig(t *testing.T) {
	a := ConfigMeta{Scale: 128, Basis: "cdf22", Threshold: "three-segment-fit"}
	if err := CheckConfig(a, a); err != nil {
		t.Fatal(err)
	}
	b := a
	b.Basis = "haar"
	if err := CheckConfig(a, b); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("got %v, want ErrConfigMismatch", err)
	}
}

// collect replays a WAL into memory.
func collect(t *testing.T, path string, fromSeq uint64) []Record {
	t.Helper()
	var recs []Record
	if _, _, err := ReplayWAL(path, fromSeq, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	batch := &pointset.Dataset{Data: []float64{1, 2, 3, 4}, N: 2, D: 2}
	if seq, err := w.AppendBatch(batch); err != nil || seq != 1 {
		t.Fatalf("first append: seq %d, err %v", seq, err)
	}
	if seq, err := w.AppendRemove([]int{0}); err != nil || seq != 2 {
		t.Fatalf("remove: seq %d, err %v", seq, err)
	}
	if seq, err := w.AppendBatch(batch); err != nil || seq != 3 {
		t.Fatalf("second append: seq %d, err %v", seq, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs := collect(t, path, 0)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if recs[0].Batch == nil || recs[0].Batch.N != 2 || recs[0].Batch.Data[3] != 4 {
		t.Fatalf("record 1 malformed: %+v", recs[0])
	}
	if recs[1].Indices == nil || recs[1].Indices[0] != 0 {
		t.Fatalf("record 2 malformed: %+v", recs[1])
	}
	// fromSeq filters already-checkpointed records.
	if tail := collect(t, path, 2); len(tail) != 1 || tail[0].Seq != 3 {
		t.Fatalf("tail replay from seq 2: %+v", tail)
	}
	// Reopening resumes the sequence counter after the last record.
	w2, err := OpenWAL(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Seq() != 3 {
		t.Fatalf("reopened seq %d, want 3", w2.Seq())
	}
	if seq, err := w2.AppendRemove([]int{1}); err != nil || seq != 4 {
		t.Fatalf("append after reopen: seq %d, err %v", seq, err)
	}
}

// TestWALTornTail: truncating the log at every byte inside the last record
// must recover exactly the intact prefix, and reopening must truncate the
// tear so new appends land on a record boundary.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := OpenWAL(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	batch := &pointset.Dataset{Data: []float64{1, 2}, N: 1, D: 2}
	var bounds []int64
	for i := 0; i < 3; i++ {
		if _, err := w.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, w.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := bounds[1] + 1; cut < bounds[2]; cut++ {
		torn := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if recs := collect(t, torn, 0); len(recs) != 2 {
			t.Fatalf("cut at %d: replayed %d records, want 2", cut, len(recs))
		}
		tw, err := OpenWAL(torn, SyncNever)
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", cut, err)
		}
		if tw.Seq() != 2 || tw.Size() != bounds[1] {
			t.Fatalf("cut at %d: reopened seq %d size %d, want 2/%d", cut, tw.Seq(), tw.Size(), bounds[1])
		}
		if _, err := tw.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
		tw.Close()
		if recs := collect(t, torn, 0); len(recs) != 3 {
			t.Fatalf("cut at %d: after healing append, %d records", cut, len(recs))
		}
	}
}

// TestWALReset: the post-checkpoint truncation keeps the sequence counter
// climbing, so replay-from-checkpoint-seq sees only newer records.
func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	batch := &pointset.Dataset{Data: []float64{9, 9}, N: 1, D: 2}
	for i := 0; i < 2; i++ {
		if _, err := w.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	ckptSeq := w.Seq()
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 {
		t.Fatalf("records after reset: %d", w.Records())
	}
	if seq, err := w.AppendRemove([]int{0}); err != nil || seq != ckptSeq+1 {
		t.Fatalf("post-reset seq %d, want %d", seq, ckptSeq+1)
	}
	recs := collect(t, path, ckptSeq)
	if len(recs) != 1 || recs[0].Indices == nil {
		t.Fatalf("post-reset replay: %+v", recs)
	}
}

// TestWALRejectsOverflowShapedRecord: a CRC-valid record whose declared
// n×d would overflow the shape check (n·d products past 2^31/2^63) must
// end the scan as corruption — not pass a wrapped length comparison and
// panic on a giant allocation.
func TestWALRejectsOverflowShapedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendBatch(&pointset.Dataset{Data: []float64{1, 2}, N: 1, D: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Craft record 2 by hand: 8-byte payload declaring n=2^31, d=2^30 —
	// 8+8·n·d wraps to 8 in 64-bit arithmetic — with a correct CRC.
	payload := make([]byte, 8)
	le.PutUint32(payload[0:4], 1<<31)
	le.PutUint32(payload[4:8], 1<<30)
	var hdr [walHeaderLen]byte
	le.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[4] = recAppend
	le.PutUint64(hdr[5:13], 2)
	crc := crc32.Update(0, castagnoli, hdr[:])
	crc = crc32.Update(crc, castagnoli, payload)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(hdr[:])
	f.Write(payload)
	var trailer [4]byte
	le.PutUint32(trailer[:], crc)
	f.Write(trailer[:])
	f.Close()

	recs := collect(t, path, 0) // must not panic, must stop at record 2
	if len(recs) != 1 {
		t.Fatalf("replayed %d records past the malformed one, want 1", len(recs))
	}
	w2, err := OpenWAL(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Seq() != 1 {
		t.Fatalf("reopened seq %d, want 1 (malformed tail truncated)", w2.Seq())
	}
}

func TestWALRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-wal")
	if err := os.WriteFile(path, []byte("definitely not a WAL header"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path, SyncNever); err == nil {
		t.Fatal("foreign file must not open as a WAL")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, s := range []string{"always", "interval", "never"} {
		p, err := ParseSyncPolicy(s)
		if err != nil || p.String() != s {
			t.Fatalf("%s: %v %v", s, p, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("unknown policy must error")
	}
}
