package persist

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Replication substrate: the WAL's length|type|seq|payload|crc frames are
// already self-delimiting and self-checking, so a primary ships them over
// the wire verbatim and a follower journals the same bytes into its own
// log. This file adds the pieces that make that safe:
//
//   - Tailer: a read-only cursor over a live WAL through its own file
//     descriptor, yielding complete frames as the writer appends them and
//     detecting the post-checkpoint truncation (ErrWALReset) instead of
//     reading past a moved tail.
//   - ReadFrame / ParseFrame: the follower's stream-side decoder — one
//     frame off a wire reader, CRC-verified, with a torn mid-record stream
//     surfaced as a typed TornRecordError rather than a silent short read.
//   - (*WAL).AppendFrame: verbatim journaling of a received frame with
//     strict sequence contiguity, so a reconnecting follower can prove it
//     neither lost nor double-applied a mutation.
//   - ReplayWALStrict: ReplayWAL with the crash-recovery leniency removed —
//     a torn tail is an error, because on the replication path the reader
//     was promised a complete log, not a best-effort prefix.

// ErrTornRecord is the sentinel matched by errors.Is for every
// TornRecordError: the scan or stream ended inside a record rather than at
// a frame boundary.
var ErrTornRecord = errors.New("persist: torn wal record")

// ErrNoFrame reports that a Tailer reached the durable end of the log: no
// complete frame is available yet. The caller waits and retries; it is a
// flow-control signal, not a failure.
var ErrNoFrame = errors.New("persist: no complete frame available")

// ErrWALReset reports that the WAL was truncated (a checkpoint folded its
// records in) since the Tailer was opened, invalidating its offset. The
// subscriber must re-sync from a checkpoint at or above the truncation's
// sequence and open a fresh Tailer.
var ErrWALReset = errors.New("persist: wal reset since tailer opened")

// TornRecordError describes where and why a WAL scan or frame stream
// stopped mid-record. Offset is the byte offset of the torn record in the
// file (-1 when the source is a wire stream with no file position), LastSeq
// the last intact sequence before the tear.
type TornRecordError struct {
	Offset  int64
	LastSeq uint64
	Reason  string
}

func (e *TornRecordError) Error() string {
	if e.Offset < 0 {
		return fmt.Sprintf("persist: torn wal record after seq %d: %s", e.LastSeq, e.Reason)
	}
	return fmt.Sprintf("persist: torn wal record at offset %d after seq %d: %s", e.Offset, e.LastSeq, e.Reason)
}

// Is makes errors.Is(err, ErrTornRecord) match any TornRecordError.
func (e *TornRecordError) Is(target error) bool { return target == ErrTornRecord }

// ReplayWALStrict is ReplayWAL without crash-recovery leniency: the intact
// records above fromSeq stream through fn in order, but a torn or corrupt
// tail is returned as a *TornRecordError (carrying the last intact
// sequence) instead of silently ending the replay. A missing file still
// replays nothing — absence is not a tear. Replication uses this form:
// a follower asking for a complete log must hear that it got a prefix.
func ReplayWALStrict(path string, fromSeq uint64, fn func(Record) error) (lastSeq uint64, replayed int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("persist: replay wal: %w", err)
	}
	defer f.Close()
	lastSeq, _, _, replayed, tear, err := scanWAL(f, fromSeq, fn)
	if err != nil {
		return lastSeq, replayed, err
	}
	if tear != nil {
		return lastSeq, replayed, tear
	}
	return lastSeq, replayed, nil
}

// ReadFrame reads one complete WAL frame (header, payload and CRC trailer,
// verbatim) from a wire stream and returns it with its sequence number. A
// clean end between frames returns io.EOF; a stream that ends or corrupts
// mid-frame returns a *TornRecordError — the follower's signal to drop the
// connection and resume from its last applied sequence.
func ReadFrame(br *bufio.Reader) (frame []byte, seq uint64, err error) {
	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, &TornRecordError{Offset: -1, Reason: "torn header"}
	}
	length := le.Uint32(hdr[0:4])
	typ := hdr[4]
	seq = le.Uint64(hdr[5:13])
	if length > maxWALRecord || (typ != recAppend && typ != recRemove) || seq == 0 {
		return nil, 0, &TornRecordError{Offset: -1, Reason: "corrupt header"}
	}
	frame = make([]byte, walHeaderLen+int(length)+4)
	copy(frame, hdr[:])
	if _, err := io.ReadFull(br, frame[walHeaderLen:]); err != nil {
		return nil, 0, &TornRecordError{Offset: -1, LastSeq: seq - 1, Reason: "torn payload"}
	}
	if crc32.Checksum(frame[:walHeaderLen+int(length)], castagnoli) != le.Uint32(frame[walHeaderLen+int(length):]) {
		return nil, 0, &TornRecordError{Offset: -1, LastSeq: seq - 1, Reason: "crc mismatch"}
	}
	return frame, seq, nil
}

// ParseFrame validates a complete frame (shape and CRC) and decodes it into
// a Record. The follower applies the Record to its warm session and
// journals the frame bytes untouched — one validation, two consumers.
func ParseFrame(frame []byte) (Record, error) {
	if len(frame) < walHeaderLen+4 {
		return Record{}, &TornRecordError{Offset: -1, Reason: "short frame"}
	}
	length := le.Uint32(frame[0:4])
	typ := frame[4]
	seq := le.Uint64(frame[5:13])
	if int(length) != len(frame)-walHeaderLen-4 || length > maxWALRecord || seq == 0 {
		return Record{}, &TornRecordError{Offset: -1, Reason: "corrupt header"}
	}
	if crc32.Checksum(frame[:walHeaderLen+int(length)], castagnoli) != le.Uint32(frame[walHeaderLen+int(length):]) {
		return Record{}, &TornRecordError{Offset: -1, LastSeq: seq - 1, Reason: "crc mismatch"}
	}
	rec, ok := parseRecord(typ, seq, frame[walHeaderLen:walHeaderLen+int(length)])
	if !ok {
		return Record{}, &TornRecordError{Offset: -1, LastSeq: seq - 1, Reason: "malformed record"}
	}
	return rec, nil
}

// AppendFrame journals a received frame verbatim. The frame is validated
// (shape and CRC) and its sequence must be exactly one past the log's —
// strict contiguity is what lets a follower prove it lost nothing across a
// reconnect. The frame bytes reach the file unchanged, so the follower's
// log is byte-identical to the primary's for the shared suffix.
func (w *WAL) AppendFrame(frame []byte) (uint64, error) {
	rec, err := ParseFrame(frame)
	if err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if rec.Seq != w.seq+1 {
		return 0, fmt.Errorf("persist: frame seq %d breaks contiguity after %d", rec.Seq, w.seq)
	}
	if _, err := w.bw.Write(frame); err != nil {
		return 0, fmt.Errorf("persist: wal append frame: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return 0, fmt.Errorf("persist: wal append frame: %w", err)
	}
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("persist: wal sync: %w", err)
		}
	}
	w.seq = rec.Seq
	w.records++
	w.size += int64(len(frame))
	return rec.Seq, nil
}

// Generation returns the WAL's reset generation; it increments on every
// Reset. Stream handlers snapshot it so a checkpoint racing a long-lived
// tail read is detected, not silently read through.
func (w *WAL) Generation() uint64 { return w.gen.Load() }

// Tailer is a read-only cursor over a live WAL, yielding complete frames in
// sequence order through its own file descriptor — the writer's buffered
// writer, offsets and mutex are never shared. Appends become visible to the
// Tailer once the writer's per-record flush lands (i.e. once the mutation
// is acknowledged); the durable end of the log shows up as ErrNoFrame, a
// checkpoint's truncation as ErrWALReset.
type Tailer struct {
	w    *WAL
	f    *os.File
	gen  uint64
	off  int64
	last uint64 // last yielded (or subscribed-from) sequence
}

// NewTailer opens a frame cursor that yields sequences strictly above
// fromSeq. The first yielded frame must be fromSeq+1 — if the log has been
// checkpointed past fromSeq the caller finds out via the contiguity check
// (or via ErrWALReset when the truncation races the tail), and must re-sync
// from a checkpoint instead.
func (w *WAL) NewTailer(fromSeq uint64) (*Tailer, error) {
	f, err := os.Open(w.path)
	if err != nil {
		return nil, fmt.Errorf("persist: open wal tail: %w", err)
	}
	return &Tailer{
		w:    w,
		f:    f,
		gen:  w.gen.Load(),
		off:  int64(len(walMagic)),
		last: fromSeq,
	}, nil
}

// LastSeq returns the sequence of the last frame Next yielded (or the
// subscription point if none has been yielded yet).
func (t *Tailer) LastSeq() uint64 { return t.last }

// Next returns the next complete frame and its sequence. ErrNoFrame means
// the durable end of the log was reached (retry after a wait or a
// writer-side notification); ErrWALReset means a checkpoint truncated the
// log under the cursor. Frames at or below the subscription point are
// skipped; a sequence gap above it is corruption and surfaces as a
// *TornRecordError.
func (t *Tailer) Next() ([]byte, uint64, error) {
	for {
		if t.w.gen.Load() != t.gen {
			return nil, 0, ErrWALReset
		}
		// Reads stop at the writer's account of valid bytes: everything
		// below w.size is a complete, flushed record, so the cursor never
		// observes a half-written append.
		limit := t.w.Size()
		if t.off+walHeaderLen+4 > limit {
			return nil, 0, ErrNoFrame
		}
		var hdr [walHeaderLen]byte
		if _, err := t.f.ReadAt(hdr[:], t.off); err != nil {
			if t.w.gen.Load() != t.gen {
				return nil, 0, ErrWALReset
			}
			return nil, 0, fmt.Errorf("persist: wal tail read: %w", err)
		}
		length := le.Uint32(hdr[0:4])
		typ := hdr[4]
		seq := le.Uint64(hdr[5:13])
		if length > maxWALRecord || (typ != recAppend && typ != recRemove) || seq == 0 {
			return nil, 0, &TornRecordError{Offset: t.off, LastSeq: t.last, Reason: "corrupt header"}
		}
		frameLen := int64(walHeaderLen) + int64(length) + 4
		if t.off+frameLen > limit {
			return nil, 0, ErrNoFrame
		}
		frame := make([]byte, frameLen)
		if _, err := t.f.ReadAt(frame, t.off); err != nil {
			if t.w.gen.Load() != t.gen {
				return nil, 0, ErrWALReset
			}
			return nil, 0, fmt.Errorf("persist: wal tail read: %w", err)
		}
		// A Reset that raced the reads above could have replaced the bytes;
		// re-check the generation before trusting them.
		if t.w.gen.Load() != t.gen {
			return nil, 0, ErrWALReset
		}
		if crc32.Checksum(frame[:walHeaderLen+int(length)], castagnoli) != le.Uint32(frame[walHeaderLen+int(length):]) {
			return nil, 0, &TornRecordError{Offset: t.off, LastSeq: t.last, Reason: "crc mismatch"}
		}
		t.off += frameLen
		if seq <= t.last {
			// Below or at the subscription point: already applied by the
			// subscriber, skip without yielding.
			continue
		}
		if seq != t.last+1 {
			return nil, 0, &TornRecordError{Offset: t.off - frameLen, LastSeq: t.last, Reason: fmt.Sprintf("sequence gap: want %d, found %d", t.last+1, seq)}
		}
		t.last = seq
		return frame, seq, nil
	}
}

// Close releases the Tailer's file descriptor.
func (t *Tailer) Close() error { return t.f.Close() }
