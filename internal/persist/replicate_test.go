package persist

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"adawave/internal/pointset"
)

func walWithRecords(t *testing.T, dir string, n int) (*WAL, string) {
	t.Helper()
	path := filepath.Join(dir, "wal.log")
	w, err := OpenWAL(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		batch := &pointset.Dataset{Data: []float64{float64(i), float64(i) + 0.5}, N: 1, D: 2}
		if _, err := w.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	return w, path
}

// TestReplayWALStrictTornTail: the strict replay must surface a mid-record
// tear as a typed error carrying the last intact sequence — the regression
// this guards is the silent-truncation behavior of the lenient replay
// leaking onto the replication path, where a follower asking for the log
// from a given sequence would quietly receive a prefix and believe itself
// caught up.
func TestReplayWALStrictTornTail(t *testing.T) {
	dir := t.TempDir()
	w, path := walWithRecords(t, dir, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Intact log: strict and lenient agree.
	lastSeq, replayed, err := ReplayWALStrict(path, 0, func(Record) error { return nil })
	if err != nil || lastSeq != 3 || replayed != 3 {
		t.Fatalf("intact strict replay: seq %d, replayed %d, err %v", lastSeq, replayed, err)
	}

	// Tear the last record mid-payload.
	torn := filepath.Join(dir, "torn.log")
	if err := os.WriteFile(torn, full[:len(full)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	lastSeq, replayed, err = ReplayWALStrict(torn, 0, func(r Record) error {
		got = append(got, r.Seq)
		return nil
	})
	if !errors.Is(err, ErrTornRecord) {
		t.Fatalf("torn strict replay: err %v, want ErrTornRecord", err)
	}
	var tre *TornRecordError
	if !errors.As(err, &tre) || tre.LastSeq != 2 {
		t.Fatalf("torn strict replay: %+v, want LastSeq 2", tre)
	}
	if lastSeq != 2 || replayed != 2 || len(got) != 2 {
		t.Fatalf("torn strict replay applied seq %d / %d records before the tear", lastSeq, replayed)
	}
	// The crash-recovery replay keeps its lenient contract on the same file.
	if _, n, err := ReplayWAL(torn, 0, func(Record) error { return nil }); err != nil || n != 2 {
		t.Fatalf("lenient replay on torn file: %d records, err %v", n, err)
	}
	// A missing file is absence, not a tear.
	if _, n, err := ReplayWALStrict(filepath.Join(dir, "gone.log"), 0, func(Record) error { return nil }); err != nil || n != 0 {
		t.Fatalf("missing file: %d records, err %v", n, err)
	}
}

// TestTailerStreamsVerbatim: frames pulled off a live WAL and journaled via
// AppendFrame must leave the replica log byte-identical to the source.
func TestTailerStreamsVerbatim(t *testing.T) {
	dir := t.TempDir()
	src, srcPath := walWithRecords(t, dir, 4)
	defer src.Close()
	dstPath := filepath.Join(dir, "replica.log")
	dst, err := OpenWAL(dstPath, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	tail, err := src.NewTailer(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	for want := uint64(1); want <= 4; want++ {
		frame, seq, err := tail.Next()
		if err != nil || seq != want {
			t.Fatalf("tail frame: seq %d, err %v, want %d", seq, err, want)
		}
		if got, err := dst.AppendFrame(frame); err != nil || got != want {
			t.Fatalf("append frame %d: got %d, err %v", want, got, err)
		}
	}
	if _, _, err := tail.Next(); !errors.Is(err, ErrNoFrame) {
		t.Fatalf("tail at end: err %v, want ErrNoFrame", err)
	}
	// A frame appended after the tailer drained becomes visible.
	if _, err := src.AppendRemove([]int{0}); err != nil {
		t.Fatal(err)
	}
	frame, seq, err := tail.Next()
	if err != nil || seq != 5 {
		t.Fatalf("tail after new append: seq %d, err %v", seq, err)
	}
	if _, err := dst.AppendFrame(frame); err != nil {
		t.Fatal(err)
	}

	if err := src.Sync(); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dstPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("replica log diverged: %d vs %d bytes", len(a), len(b))
	}
}

// TestAppendFrameContiguity: duplicates and gaps must be rejected, and a
// corrupted frame must never reach the replica log.
func TestAppendFrameContiguity(t *testing.T) {
	dir := t.TempDir()
	src, _ := walWithRecords(t, dir, 3)
	defer src.Close()
	dst, err := OpenWAL(filepath.Join(dir, "replica.log"), SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	tail, err := src.NewTailer(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	var frames [][]byte
	for i := 0; i < 3; i++ {
		frame, _, err := tail.Next()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
	}
	if _, err := dst.AppendFrame(frames[1]); err == nil {
		t.Fatal("gap (seq 2 before 1) must be rejected")
	}
	if _, err := dst.AppendFrame(frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.AppendFrame(frames[0]); err == nil {
		t.Fatal("duplicate frame must be rejected")
	}
	bad := append([]byte(nil), frames[1]...)
	bad[len(bad)-6] ^= 0xFF
	if _, err := dst.AppendFrame(bad); !errors.Is(err, ErrTornRecord) {
		t.Fatalf("corrupt frame: err %v, want ErrTornRecord", err)
	}
	if _, err := dst.AppendFrame(frames[1]); err != nil {
		t.Fatal(err)
	}
	if dst.Seq() != 2 {
		t.Fatalf("replica seq %d, want 2", dst.Seq())
	}
}

// TestTailerSubscriptionAndGap: a tailer skips frames at or below its
// subscription point, and a log whose first frame starts past the
// subscription (the WAL was checkpointed away underneath a stale follower)
// is a detected gap, not a silent skip.
func TestTailerSubscriptionAndGap(t *testing.T) {
	dir := t.TempDir()
	w, _ := walWithRecords(t, dir, 4)
	defer w.Close()

	tail, err := w.NewTailer(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, seq, err := tail.Next(); err != nil || seq != 3 {
		t.Fatalf("subscription from 2: first seq %d, err %v, want 3", seq, err)
	}
	tail.Close()

	// Checkpoint the log away: records 1..4 fold in, new records start at 5.
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendRemove([]int{1}); err != nil {
		t.Fatal(err)
	}
	stale, err := w.NewTailer(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	if _, _, err := stale.Next(); !errors.Is(err, ErrTornRecord) {
		t.Fatalf("stale subscription across a reset: err %v, want a sequence-gap tear", err)
	}
}

// TestTailerDetectsReset: a checkpoint truncation under a live tailer must
// surface ErrWALReset, and a fresh tailer over the post-reset log works.
func TestTailerDetectsReset(t *testing.T) {
	dir := t.TempDir()
	w, _ := walWithRecords(t, dir, 2)
	defer w.Close()
	tail, err := w.NewTailer(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if _, seq, err := tail.Next(); err != nil || seq != 1 {
		t.Fatalf("first frame: seq %d, err %v", seq, err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tail.Next(); !errors.Is(err, ErrWALReset) {
		t.Fatalf("tail across reset: err %v, want ErrWALReset", err)
	}
	w.SkipTo(2)
	if _, err := w.AppendRemove([]int{0}); err != nil {
		t.Fatal(err)
	}
	fresh, err := w.NewTailer(2)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, seq, err := fresh.Next(); err != nil || seq != 3 {
		t.Fatalf("fresh tailer after reset: seq %d, err %v, want 3", seq, err)
	}
}

// TestReadFrameTornStream: the wire-side reader must hand back complete
// frames, report a clean boundary as io.EOF, and classify a connection that
// died mid-frame as a torn record — which is what lets a follower reconnect
// and resume from its last applied sequence without double-applying.
func TestReadFrameTornStream(t *testing.T) {
	dir := t.TempDir()
	w, path := walWithRecords(t, dir, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stream := full[len(walMagic):] // the wire carries frames, no magic

	// Clean stream: three frames then EOF.
	br := bufio.NewReader(bytes.NewReader(stream))
	var frames [][]byte
	for {
		frame, seq, err := ReadFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(len(frames)+1) {
			t.Fatalf("stream frame seq %d at position %d", seq, len(frames))
		}
		if rec, err := ParseFrame(frame); err != nil || rec.Seq != seq {
			t.Fatalf("parse frame %d: %+v, %v", seq, rec, err)
		}
		frames = append(frames, frame)
	}
	if len(frames) != 3 {
		t.Fatalf("streamed %d frames, want 3", len(frames))
	}

	// The connection dies mid-frame: two intact frames, then a tear.
	cut := len(stream) - len(frames[2])/2
	br = bufio.NewReader(bytes.NewReader(stream[:cut]))
	intact := 0
	var streamErr error
	for {
		_, _, err := ReadFrame(br)
		if err != nil {
			streamErr = err
			break
		}
		intact++
	}
	if intact != 2 || !errors.Is(streamErr, ErrTornRecord) {
		t.Fatalf("torn stream: %d intact frames, err %v", intact, streamErr)
	}

	// Reconnect: the follower re-requests from its last applied seq (2) and
	// applies the remainder exactly once.
	dst, err := OpenWAL(filepath.Join(dir, "replica.log"), SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	for _, f := range frames[:2] {
		if _, err := dst.AppendFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	src, err := OpenWAL(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	resume, err := src.NewTailer(dst.Seq())
	if err != nil {
		t.Fatal(err)
	}
	defer resume.Close()
	frame, seq, err := resume.Next()
	if err != nil || seq != 3 {
		t.Fatalf("resume frame: seq %d, err %v, want 3", seq, err)
	}
	if _, err := dst.AppendFrame(frame); err != nil {
		t.Fatal(err)
	}
	if _, _, err := resume.Next(); !errors.Is(err, ErrNoFrame) {
		t.Fatalf("resume drained: err %v, want ErrNoFrame", err)
	}
	if dst.Seq() != 3 || dst.Records() != 3 {
		t.Fatalf("replica after resume: seq %d, %d records", dst.Seq(), dst.Records())
	}
}
