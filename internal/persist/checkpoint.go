package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"adawave/internal/embed"
	"adawave/internal/grid"
	"adawave/internal/pointset"
)

// A session checkpoint is the full durable state of one streaming session,
// versioned by its magic and framed by a CRC-32C trailer over everything
// between magic and trailer:
//
//	"AWC1"
//	| configLen uint32 | config JSON (ConfigMeta)
//	| n uint64 | d uint32
//	| — when the config names an embedding —
//	| embLen uint32 | fitted embedder (embed.MarshalBinary bytes)
//	| data n·d float64
//	| — when n > 0 —
//	| scale uint32 | mins g float64 | maxs g float64
//	| ids n int32
//	| gridLen uint64 | grid snapshot (FlatGrid.WriteSnapshot bytes)
//	| crc32c uint32
//
// d is always the raw row dimensionality. The quantizer frame and the grid
// live in grid space: g equals the embedder's output dimensionality when an
// embedding is configured (the embedder section restores the exact fitted
// projection, so a restored session re-projects its raw rows bit for bit),
// and g = d otherwise — a checkpoint without an embedding is byte-identical
// to the pre-embedding format, so old checkpoints keep restoring. embLen is
// 0 only for an empty session whose embedder was never fitted.
//
// The point rows and memoized cell ids are the session's warm state: a
// restore rebuilds the quantizer from the stored frame (scale + bounds) and
// re-adopts the embedded grid without requantizing a single point, so cold
// recovery is O(points + cells) sequential reads. The config fingerprint
// guards the restore: a checkpoint taken under one configuration silently
// restored under another would break the bit-identical equivalence
// guarantee, so the mismatch is a typed error instead.
const checkpointMagic = "AWC1"

// maxConfigJSON bounds the config section; a fingerprint is < 1 KiB.
const maxConfigJSON = 1 << 20

// maxEmbedderBytes bounds the fitted-embedder section: a (k+1)×d float64
// parameter block at the dimension caps is ~8 MiB; 16 MiB leaves headroom.
const maxEmbedderBytes = 1 << 24

// maxCheckpointPoints bounds the declared row count before any conversion
// to int, mirroring the grid snapshot's cell-count guard on 32-bit
// platforms.
const maxCheckpointPoints = 1 << 40

// ErrConfigMismatch reports a checkpoint restored under an engine whose
// configuration differs from the one the checkpoint was taken under.
var ErrConfigMismatch = errors.New("persist: checkpoint configuration does not match the engine")

// ErrEmbeddingMismatch is the embedding-specific refinement of
// ErrConfigMismatch: the checkpoint and the engine disagree on the
// embedding spec (one has an embedding the other lacks, or the kind, K or
// seed differ). It wraps ErrConfigMismatch, so callers matching the broad
// root keep working while the serving layer can answer with the dedicated
// embedding_mismatch wire code.
var ErrEmbeddingMismatch = fmt.Errorf("%w: embedding spec differs", ErrConfigMismatch)

// ConfigMeta is the serialized configuration fingerprint. The basis is
// stored by name (the built-in filter banks are fixed by their names); the
// threshold field carries the strategy's name plus its rendered parameter
// values, so two configs with equal fingerprints produce bit-identical
// pipelines — a same-named strategy with a different parameter is a
// mismatch. core.ConfigFingerprint is the canonical renderer.
type ConfigMeta struct {
	Scale           int     `json:"scale"`
	Levels          int     `json:"levels"`
	Basis           string  `json:"basis"`
	Connectivity    string  `json:"connectivity"`
	CoeffEpsilon    float64 `json:"coeffEpsilon"`
	Threshold       string  `json:"threshold"`
	MinClusterCells int     `json:"minClusterCells"`
	MinClusterMass  float64 `json:"minClusterMass"`
	// Embedding is the canonical embed.Spec rendering ("pca(k=8)",
	// "rp(k=16,seed=42)"), empty when no embedding is configured — old
	// fingerprints without the field decode to the empty spec.
	Embedding string `json:"embedding,omitempty"`
}

// CheckConfig returns ErrConfigMismatch (with both fingerprints in the
// message) unless the checkpoint's meta equals the engine's; a disagreement
// on the embedding spec reports the more specific ErrEmbeddingMismatch.
func CheckConfig(fromCheckpoint, fromEngine ConfigMeta) error {
	if fromCheckpoint == fromEngine {
		return nil
	}
	if fromCheckpoint.Embedding != fromEngine.Embedding {
		return fmt.Errorf("%w: checkpoint %q, engine %q", ErrEmbeddingMismatch, fromCheckpoint.Embedding, fromEngine.Embedding)
	}
	return fmt.Errorf("%w: checkpoint %+v, engine %+v", ErrConfigMismatch, fromCheckpoint, fromEngine)
}

// SessionState is the payload of one checkpoint. DS/IDs/Grid are shared
// with the caller (WriteSessionCheckpoint does not copy; callers serialize
// under their session lock).
type SessionState struct {
	Config ConfigMeta
	// DS holds every current point, row-major; IDs is the memoized
	// base-grid cell index of each point (len DS.N).
	DS  *pointset.Dataset
	IDs []int32
	// Scale, Mins and Maxs are the quantizer frame the grid was built in;
	// meaningful only when DS.N > 0.
	Scale      int
	Mins, Maxs []float64
	// Grid is the live canonical base grid; nil when DS.N == 0. Sessions
	// running the block-compressed representation set Packed instead —
	// exactly one of the two is non-nil for a non-empty checkpoint. Either
	// serializes into the same length-prefixed grid section (a packed grid
	// as the compact AWG2 snapshot), and the reader always restores a
	// *FlatGrid: representation is a runtime choice, not a durable one.
	Grid   *grid.FlatGrid
	Packed *grid.PackedGrid
	// Embedder is the session's fitted embedder; required when the config
	// names an embedding and DS.N > 0 (the frame and grid live in its
	// output space), nil otherwise. Its Spec must render to
	// Config.Embedding.
	Embedder embed.Embedder
}

// WriteSessionCheckpoint serializes st to w in the checkpoint format.
func WriteSessionCheckpoint(w io.Writer, st *SessionState) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return fmt.Errorf("persist: write checkpoint: %w", err)
	}
	cw := &crcWriter{w: bw}
	cfg, err := json.Marshal(st.Config)
	if err != nil {
		return fmt.Errorf("persist: marshal checkpoint config: %w", err)
	}
	if err := writeU32(cw, uint32(len(cfg))); err != nil {
		return fmt.Errorf("persist: write checkpoint: %w", err)
	}
	if _, err := cw.Write(cfg); err != nil {
		return fmt.Errorf("persist: write checkpoint: %w", err)
	}
	n, d := 0, 0
	if st.DS != nil {
		n, d = st.DS.N, st.DS.D
	}
	if err := writeU64(cw, uint64(n)); err != nil {
		return fmt.Errorf("persist: write checkpoint: %w", err)
	}
	if err := writeU32(cw, uint32(d)); err != nil {
		return fmt.Errorf("persist: write checkpoint: %w", err)
	}
	// g is the grid-space dimensionality the frame below is sized by: the
	// embedder's output dimension when one is configured, d otherwise.
	g := d
	if st.Config.Embedding != "" {
		var blob []byte
		if st.Embedder != nil {
			if got := st.Embedder.Spec().String(); got != st.Config.Embedding {
				return fmt.Errorf("persist: inconsistent session state: embedder %q under config embedding %q", got, st.Config.Embedding)
			}
			var err error
			if blob, err = st.Embedder.MarshalBinary(); err != nil {
				return fmt.Errorf("persist: write checkpoint embedder: %w", err)
			}
			g = st.Embedder.OutDim()
		} else if n > 0 {
			return fmt.Errorf("persist: inconsistent session state: %d points but no fitted embedder for embedding %q", n, st.Config.Embedding)
		}
		if err := writeU32(cw, uint32(len(blob))); err != nil {
			return fmt.Errorf("persist: write checkpoint embedder: %w", err)
		}
		if _, err := cw.Write(blob); err != nil {
			return fmt.Errorf("persist: write checkpoint embedder: %w", err)
		}
	}
	if n > 0 {
		if err := writeFloats(cw, st.DS.Data[:n*d]); err != nil {
			return fmt.Errorf("persist: write checkpoint rows: %w", err)
		}
		if len(st.IDs) != n || (st.Grid == nil && st.Packed == nil) || len(st.Mins) != g || len(st.Maxs) != g {
			return fmt.Errorf("persist: inconsistent session state: %d ids, %d mins, %d maxs for %d points", len(st.IDs), len(st.Mins), len(st.Maxs), n)
		}
		if err := writeU32(cw, uint32(st.Scale)); err != nil {
			return fmt.Errorf("persist: write checkpoint: %w", err)
		}
		if err := writeFloats(cw, st.Mins); err != nil {
			return fmt.Errorf("persist: write checkpoint frame: %w", err)
		}
		if err := writeFloats(cw, st.Maxs); err != nil {
			return fmt.Errorf("persist: write checkpoint frame: %w", err)
		}
		if err := writeInt32s(cw, st.IDs); err != nil {
			return fmt.Errorf("persist: write checkpoint ids: %w", err)
		}
		// The grid snapshot is length-prefixed so the reader can hand
		// ReadSnapshot an exactly bounded sub-reader (its internal
		// buffering must not consume past the snapshot into the trailer).
		var gbuf bytes.Buffer
		var gerr error
		if st.Packed != nil {
			gerr = st.Packed.WriteSnapshot(&gbuf)
		} else {
			gerr = st.Grid.WriteSnapshot(&gbuf)
		}
		if gerr != nil {
			return fmt.Errorf("persist: write checkpoint grid: %w", gerr)
		}
		if err := writeU64(cw, uint64(gbuf.Len())); err != nil {
			return fmt.Errorf("persist: write checkpoint: %w", err)
		}
		if _, err := cw.Write(gbuf.Bytes()); err != nil {
			return fmt.Errorf("persist: write checkpoint grid: %w", err)
		}
	}
	if err := writeU32(bw, cw.crc); err != nil {
		return fmt.Errorf("persist: write checkpoint trailer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("persist: write checkpoint: %w", err)
	}
	return nil
}

// ReadSessionCheckpoint restores a checkpoint written by
// WriteSessionCheckpoint, validating magic, section bounds, cross-section
// consistency (ids index the grid, grid mass equals the point count) and
// the CRC trailer, so a truncated or corrupted checkpoint is reported
// instead of restoring a quietly broken session.
func ReadSessionCheckpoint(r io.Reader) (*SessionState, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("persist: read checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("persist: bad checkpoint magic %q", magic)
	}
	cr := &crcReader{r: br}
	cfgLen, err := readU32(cr)
	if err != nil {
		return nil, fmt.Errorf("persist: read checkpoint config: %w", err)
	}
	if cfgLen > maxConfigJSON {
		return nil, fmt.Errorf("persist: checkpoint config of %d bytes out of range", cfgLen)
	}
	cfgBytes := make([]byte, cfgLen)
	if _, err := io.ReadFull(cr, cfgBytes); err != nil {
		return nil, fmt.Errorf("persist: read checkpoint config: %w", err)
	}
	st := &SessionState{}
	if err := json.Unmarshal(cfgBytes, &st.Config); err != nil {
		return nil, fmt.Errorf("persist: decode checkpoint config: %w", err)
	}
	n64, err := readU64(cr)
	if err != nil {
		return nil, fmt.Errorf("persist: read checkpoint header: %w", err)
	}
	d32, err := readU32(cr)
	if err != nil {
		return nil, fmt.Errorf("persist: read checkpoint header: %w", err)
	}
	const maxDim = 1 << 10
	if n64 > maxCheckpointPoints || (n64 > 0 && (d32 == 0 || d32 > maxDim)) {
		return nil, fmt.Errorf("persist: checkpoint shape %d×%d out of range", n64, d32)
	}
	d := int(d32)
	st.DS = &pointset.Dataset{D: d}
	// gd is the grid-space dimensionality of the frame and grid sections:
	// the embedder's output dimension when the config names an embedding,
	// d otherwise.
	gd := d
	if st.Config.Embedding != "" {
		embLen, err := readU32(cr)
		if err != nil {
			return nil, fmt.Errorf("persist: read checkpoint embedder: %w", err)
		}
		if embLen > maxEmbedderBytes {
			return nil, fmt.Errorf("persist: checkpoint embedder of %d bytes out of range", embLen)
		}
		if embLen == 0 {
			if n64 > 0 {
				return nil, fmt.Errorf("persist: checkpoint with %d points under embedding %q lacks a fitted embedder", n64, st.Config.Embedding)
			}
		} else {
			blob := make([]byte, embLen)
			if _, err := io.ReadFull(cr, blob); err != nil {
				return nil, fmt.Errorf("persist: read checkpoint embedder: %w", err)
			}
			emb, err := embed.Unmarshal(blob)
			if err != nil {
				return nil, fmt.Errorf("persist: decode checkpoint embedder: %w", err)
			}
			if got := emb.Spec().String(); got != st.Config.Embedding {
				return nil, fmt.Errorf("persist: checkpoint embedder %q disagrees with config embedding %q", got, st.Config.Embedding)
			}
			if n64 > 0 && emb.InDim() != d {
				return nil, fmt.Errorf("persist: checkpoint embedder input dimension %d disagrees with %d-dimensional rows", emb.InDim(), d)
			}
			st.Embedder = emb
			gd = emb.OutDim()
		}
	}
	if n64 == 0 {
		return st, finishCheckpoint(cr, br)
	}
	// All size math in uint64 until the data is actually in memory (the
	// 32-bit int truncation guard); chunked reads grow the buffers with the
	// bytes really present.
	data, err := readFloats(cr, n64*uint64(d))
	if err != nil {
		return nil, fmt.Errorf("persist: read checkpoint rows: %w", err)
	}
	st.DS.Data = data
	st.DS.N = int(n64)
	n := st.DS.N
	scale, err := readU32(cr)
	if err != nil {
		return nil, fmt.Errorf("persist: read checkpoint frame: %w", err)
	}
	if scale < 2 || scale > 0xFFFF {
		return nil, fmt.Errorf("persist: checkpoint scale %d out of range", scale)
	}
	st.Scale = int(scale)
	if st.Mins, err = readFloats(cr, uint64(gd)); err != nil {
		return nil, fmt.Errorf("persist: read checkpoint frame: %w", err)
	}
	if st.Maxs, err = readFloats(cr, uint64(gd)); err != nil {
		return nil, fmt.Errorf("persist: read checkpoint frame: %w", err)
	}
	for j := 0; j < gd; j++ {
		if math.IsNaN(st.Mins[j]) || math.IsInf(st.Mins[j], 0) ||
			math.IsNaN(st.Maxs[j]) || math.IsInf(st.Maxs[j], 0) || st.Mins[j] > st.Maxs[j] {
			return nil, fmt.Errorf("persist: checkpoint frame [%v, %v] invalid in dimension %d", st.Mins[j], st.Maxs[j], j)
		}
	}
	if st.IDs, err = readInt32s(cr, n64); err != nil {
		return nil, fmt.Errorf("persist: read checkpoint ids: %w", err)
	}
	gridLen, err := readU64(cr)
	if err != nil {
		return nil, fmt.Errorf("persist: read checkpoint: %w", err)
	}
	lim := &io.LimitedReader{R: cr, N: int64(gridLen)}
	g, err := grid.ReadSnapshot(lim)
	if err != nil {
		return nil, fmt.Errorf("persist: read checkpoint grid: %w", err)
	}
	// ReadSnapshot consumed exactly the snapshot; any slack in the declared
	// length must still flow through the CRC before the trailer.
	if _, err := io.Copy(io.Discard, lim); err != nil {
		return nil, fmt.Errorf("persist: read checkpoint grid: %w", err)
	}
	st.Grid = g
	if err := finishCheckpoint(cr, br); err != nil {
		return nil, err
	}
	// Cross-section consistency: every id must index a grid cell, and the
	// grid's additive masses must total exactly the point count.
	m := int32(g.Len())
	for i, id := range st.IDs {
		if id < 0 || id >= m {
			return nil, fmt.Errorf("persist: checkpoint id %d of point %d outside the %d-cell grid", id, i, m)
		}
	}
	if mass := g.TotalMass(); mass != float64(n) {
		return nil, fmt.Errorf("persist: checkpoint grid mass %v disagrees with %d points", mass, n)
	}
	if g.Dim() != gd {
		return nil, fmt.Errorf("persist: checkpoint grid dimension %d disagrees with the %d-dimensional quantizer frame", g.Dim(), gd)
	}
	return st, nil
}

// finishCheckpoint reads the CRC trailer (from the raw reader, outside the
// CRC accounting) and verifies it against the consumed body.
func finishCheckpoint(cr *crcReader, br *bufio.Reader) error {
	want, err := readU32(br)
	if err != nil {
		return fmt.Errorf("persist: read checkpoint trailer: %w", err)
	}
	if cr.crc != want {
		return fmt.Errorf("persist: checkpoint CRC mismatch (got %08x, want %08x)", cr.crc, want)
	}
	return nil
}

// writeInt32s streams an int32 slice in little-endian.
func writeInt32s(w io.Writer, data []int32) error {
	var buf [8 << 10]byte
	for off := 0; off < len(data); {
		n := len(data) - off
		if n > len(buf)/4 {
			n = len(buf) / 4
		}
		for i := 0; i < n; i++ {
			le.PutUint32(buf[4*i:], uint32(data[off+i]))
		}
		if _, err := w.Write(buf[:4*n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// readFloats reads count float64s in bounded chunks, growing the result
// with the data actually present.
func readFloats(r io.Reader, count uint64) ([]float64, error) {
	const chunk = 1 << 13
	initial := uint64(chunk)
	if count < initial {
		initial = count
	}
	out := make([]float64, 0, initial)
	var buf [8 * chunk]byte
	for read := uint64(0); read < count; {
		n := chunk
		if rem := count - read; rem < chunk {
			n = int(rem)
		}
		if _, err := io.ReadFull(r, buf[:8*n]); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out = append(out, math.Float64frombits(le.Uint64(buf[8*i:])))
		}
		read += uint64(n)
	}
	return out, nil
}

// readInt32s reads count int32s in bounded chunks.
func readInt32s(r io.Reader, count uint64) ([]int32, error) {
	const chunk = 1 << 14
	initial := uint64(chunk)
	if count < initial {
		initial = count
	}
	out := make([]int32, 0, initial)
	var buf [4 * chunk]byte
	for read := uint64(0); read < count; {
		n := chunk
		if rem := count - read; rem < chunk {
			n = int(rem)
		}
		if _, err := io.ReadFull(r, buf[:4*n]); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out = append(out, int32(le.Uint32(buf[4*i:])))
		}
		read += uint64(n)
	}
	return out, nil
}
