// Package cluster turns adawave-serve nodes into a shardable, replicated
// cluster with zero dependencies beyond the standard library:
//
//   - Placement: a consistent-hash ring with virtual nodes (ring.go) maps
//     session ids onto shards — primary/follower node pairs — and a static
//     membership prober (membership.go) tracks node liveness via /healthz.
//   - Replication: a follower pulls each primary session's checkpoint and
//     then tails its WAL frames over a long-lived HTTP stream (replica.go),
//     journaling the same bytes into its own data dir and applying them to
//     a warm in-memory session, so promotion needs no cold recovery.
//   - Failover: the router (proxy.go, mounted by cmd/adawave-router)
//     proxies /v1 traffic to each shard's active node, answers 503 +
//     Retry-After while a failover is in flight, and promotes the follower
//     when the primary stops answering probes.
//
// The correctness anchor is the engine's determinism: a replica that
// replays the same mutation sequence — and the WAL frames are shipped
// verbatim, byte for byte — converges to labels bit-identical to the
// primary's, which is what the kill-and-promote property test in
// cmd/adawave-serve proves end to end.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring: each member is hashed onto the circle at
// vnodes points, and a key is owned by the first member point clockwise of
// the key's hash. Adding or removing one member moves only the keys of its
// own arcs — the property that keeps session placement stable as a cluster
// grows. A Ring is immutable after construction and safe for concurrent
// lookups.
type Ring struct {
	members []string
	hashes  []uint64 // sorted vnode positions
	owner   []int    // owner[i] = index into members of hashes[i]
}

// NewRing builds a ring over the given members (any non-empty, distinct
// strings — the router uses shard names) with the given number of virtual
// nodes per member; vnodes <= 0 selects 128, enough to keep the expected
// per-member load imbalance in the low percents.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, errors.New("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = 128
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{members: append([]string(nil), members...)}
	for mi, m := range r.members {
		if m == "" {
			return nil, errors.New("cluster: empty ring member")
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate ring member %q", m)
		}
		seen[m] = true
		for v := 0; v < vnodes; v++ {
			r.hashes = append(r.hashes, ringHash(fmt.Sprintf("%s#%d", m, v)))
			r.owner = append(r.owner, mi)
		}
	}
	sort.Sort(byHash{r})
	return r, nil
}

// ringHash must be deterministic across processes (every router must agree
// on placement), which rules out seeded hashes. Raw FNV-64a clusters badly
// on the short sequential "member#i" vnode keys — neighbouring keys land on
// neighbouring circle positions and whole arcs collapse onto one member —
// so the sum is pushed through a SplitMix64 finalizer to scatter it.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// byHash co-sorts hashes and owner.
type byHash struct{ r *Ring }

func (s byHash) Len() int           { return len(s.r.hashes) }
func (s byHash) Less(a, b int) bool { return s.r.hashes[a] < s.r.hashes[b] }
func (s byHash) Swap(a, b int) {
	s.r.hashes[a], s.r.hashes[b] = s.r.hashes[b], s.r.hashes[a]
	s.r.owner[a], s.r.owner[b] = s.r.owner[b], s.r.owner[a]
}

// Members returns the ring's members in construction order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Lookup maps a key to its owning member (the key's primary placement) and
// the next distinct member clockwise (the natural follower placement).
// With a single member the follower is empty.
func (r *Ring) Lookup(key string) (primary, follower string) {
	h := ringHash(key)
	i := sort.Search(len(r.hashes), func(j int) bool { return r.hashes[j] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	first := r.owner[i]
	primary = r.members[first]
	for step := 1; step <= len(r.hashes); step++ {
		o := r.owner[(i+step)%len(r.hashes)]
		if o != first {
			return primary, r.members[o]
		}
	}
	return primary, ""
}
