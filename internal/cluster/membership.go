package cluster

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Membership tracks the liveness of a static node set by probing each
// node's /healthz on a fixed cadence. There is no gossip and no dynamic
// join — the member list is the -peers flag, and the only question answered
// is "did this node respond recently". A node flips dead after Threshold
// consecutive probe failures (so one dropped packet does not trigger a
// failover) and flips back alive on the first success.
type Membership struct {
	nodes     []string
	client    *http.Client
	interval  time.Duration
	threshold int

	mu     sync.RWMutex
	misses map[string]int
	alive  map[string]bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewMembership builds a prober over the node base URLs. interval <= 0
// selects 500ms, threshold <= 0 selects 2 consecutive failures, client nil
// selects a 2s-timeout default. Nodes start alive (a cluster boots
// optimistic; the first failed probes correct it).
func NewMembership(nodes []string, interval time.Duration, threshold int, client *http.Client) *Membership {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if threshold <= 0 {
		threshold = 2
	}
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	m := &Membership{
		nodes:     append([]string(nil), nodes...),
		client:    client,
		interval:  interval,
		threshold: threshold,
		misses:    make(map[string]int, len(nodes)),
		alive:     make(map[string]bool, len(nodes)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, n := range m.nodes {
		m.alive[n] = true
	}
	return m
}

// Start launches the probe loop; Stop ends it.
func (m *Membership) Start() {
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				for _, n := range m.nodes {
					m.Observe(n, Probe(m.client, n))
				}
			}
		}
	}()
}

// Stop ends the probe loop and waits for it to exit.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// Probe performs one liveness check against a node base URL: a 200 from
// /healthz within the client's timeout.
func Probe(client *http.Client, node string) bool {
	resp, err := client.Get(strings.TrimRight(node, "/") + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Observe folds one probe outcome into the liveness state — the probe loop
// calls it, and so can a caller that learned about a node out of band (the
// router feeds proxy failures in, so a dead primary is detected at request
// speed, not probe speed).
func (m *Membership) Observe(node string, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ok {
		m.misses[node] = 0
		m.alive[node] = true
		return
	}
	m.misses[node]++
	if m.misses[node] >= m.threshold {
		m.alive[node] = false
	}
}

// Alive reports whether the node answered a recent probe. Unknown nodes are
// dead.
func (m *Membership) Alive(node string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.alive[node]
}

// Snapshot returns the liveness of every member.
func (m *Membership) Snapshot() map[string]bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]bool, len(m.alive))
	for n, a := range m.alive {
		out[n] = a
	}
	return out
}

// Nodes returns the static member list.
func (m *Membership) Nodes() []string { return append([]string(nil), m.nodes...) }

func (m *Membership) String() string {
	snap := m.Snapshot()
	parts := make([]string, 0, len(m.nodes))
	for _, n := range m.nodes {
		parts = append(parts, fmt.Sprintf("%s:%v", n, snap[n]))
	}
	return strings.Join(parts, " ")
}
