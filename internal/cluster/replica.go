package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adawave"
	"adawave/internal/api"
	"adawave/internal/persist"
)

// ReplicaOptions configures a follower's replication engine.
type ReplicaOptions struct {
	// Primary is the base URL of the node to replicate from.
	Primary string
	// Root is the local sessions root (<data-dir>/sessions); replicated
	// sessions are journaled there in the exact layout the serving layer's
	// own recovery reads.
	Root    string
	Workers int
	Policy  persist.SyncPolicy
	// Client performs the HTTP calls. It must not carry a global Timeout —
	// the WAL stream is long-lived by design; per-call deadlines are set
	// through contexts. Nil selects a default client.
	Client *http.Client
	// Poll is the session-list poll cadence (default 1s): how fast new
	// primary sessions are discovered and the lag measurement refreshes.
	Poll time.Duration
	// Retry is the reconnect backoff after a failed or torn stream
	// (default 500ms).
	Retry time.Duration
	// Secret is the shared cluster credential sent on every request to the
	// primary's replication feed (see api.HeaderClusterSecret); empty sends
	// none.
	Secret string
	// CheckpointEvery bounds the local WAL: after this many journaled
	// frames the replica folds them into a local checkpoint (default 8192;
	// negative disables).
	CheckpointEvery int
}

// ReplicaSet replicates every session of one primary into warm local
// state: per session, an in-memory adawave.Session kept current by applying
// streamed WAL frames, and an on-disk journal of the same frames — so a
// promote is a map handoff, not a cold recovery, and a follower crash
// restarts from its own disk.
type ReplicaSet struct {
	opts ReplicaOptions

	mu       sync.Mutex
	replicas map[string]*Replica

	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	stopOnce sync.Once
	promoted atomic.Bool
}

// Replica is one replicated session.
type Replica struct {
	ID     string
	Tenant string

	dir       string
	workers   int
	policy    persist.SyncPolicy
	ckptEvery int
	meta      persist.ConfigMeta
	cfg       adawave.Config

	// mu guards the apply path (session mutation + journal) and the
	// promote handoff; the session object itself stays safe for concurrent
	// readers (status, detail reads) while the applier holds mu.
	mu      sync.Mutex
	sess    *adawave.Session
	wal     *persist.WAL
	ckptSeq uint64

	applied    atomic.Uint64
	primarySeq atomic.Uint64
	connected  atomic.Bool
	lastErr    atomic.Value // string

	cancel context.CancelFunc
}

// Promoted is one warm session handed from a promoted ReplicaSet to the
// serving registry: the live engine object plus its on-disk state, ready to
// serve mutations and labels immediately.
type Promoted struct {
	ID      string
	Tenant  string
	Config  adawave.Config
	Session *adawave.Session
	Disk    *SessionDisk
}

// NewReplicaSet builds (but does not start) a follower engine.
func NewReplicaSet(opts ReplicaOptions) *ReplicaSet {
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.Poll <= 0 {
		opts.Poll = time.Second
	}
	if opts.Retry <= 0 {
		opts.Retry = 500 * time.Millisecond
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = 8192
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &ReplicaSet{
		opts:     opts,
		replicas: make(map[string]*Replica),
		ctx:      ctx,
		cancel:   cancel,
	}
}

// Start recovers any previously replicated sessions from disk (so a
// follower restarted after its primary died can still be promoted), then
// launches the discovery loop.
func (rs *ReplicaSet) Start() {
	rs.recoverLocal()
	rs.wg.Add(1)
	go rs.pollLoop()
}

// Stop ends discovery and every stream, and waits for them to exit. After
// Stop the replicas' state is quiescent — this is the first half of a
// promote.
func (rs *ReplicaSet) Stop() {
	rs.stopOnce.Do(rs.cancel)
	rs.wg.Wait()
}

// recoverLocal loads every session directory under Root into a warm
// replica (newest checkpoint + WAL tail, the standard recovery path).
func (rs *ReplicaSet) recoverLocal() {
	entries, err := os.ReadDir(rs.opts.Root)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue // dot-dirs hold quarantined state, never live sessions
		}
		id := e.Name()
		dir := filepath.Join(rs.opts.Root, id)
		sess, disk, err := LoadSessionDir(dir, rs.opts.Workers, rs.opts.Policy)
		if err != nil {
			log.Printf("cluster: replica %s not recovered: %v", id, err)
			continue
		}
		r := &Replica{
			ID: id, Tenant: tenantOf(dir), dir: dir,
			workers: rs.opts.Workers, policy: rs.opts.Policy,
			ckptEvery: rs.opts.CheckpointEvery,
			sess:      sess, wal: disk.WAL, ckptSeq: disk.CkptSeq,
		}
		if raw, err := os.ReadFile(filepath.Join(dir, "config.json")); err == nil {
			_ = json.Unmarshal(raw, &r.meta)
		}
		r.cfg = sess.Config()
		r.applied.Store(disk.WAL.Seq())
		r.primarySeq.Store(disk.WAL.Seq())
		rs.replicas[id] = r
		rs.startReplica(r)
		log.Printf("cluster: replica %s recovered (%d points, applied seq %d)", id, sess.Len(), disk.WAL.Seq())
	}
}

// tenantOf reads a session directory's tenant marker; absence means the
// default tenant (the serving layer writes no marker for it).
func tenantOf(dir string) string {
	raw, err := os.ReadFile(filepath.Join(dir, "tenant"))
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(raw))
}

// pollLoop discovers primary sessions and refreshes the lag measurement.
func (rs *ReplicaSet) pollLoop() {
	defer rs.wg.Done()
	t := time.NewTicker(rs.opts.Poll)
	defer t.Stop()
	rs.pollOnce()
	for {
		select {
		case <-rs.ctx.Done():
			return
		case <-t.C:
			rs.pollOnce()
		}
	}
}

// feedRequest builds a GET against the primary's replication surface,
// attaching the shared cluster secret when one is configured.
func (rs *ReplicaSet) feedRequest(ctx context.Context, path string) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rs.opts.Primary+path, nil)
	if err != nil {
		return nil, err
	}
	if rs.opts.Secret != "" {
		req.Header.Set(api.HeaderClusterSecret, rs.opts.Secret)
	}
	return req, nil
}

func (rs *ReplicaSet) pollOnce() {
	ctx, cancel := context.WithTimeout(rs.ctx, rs.opts.Poll*3+time.Second)
	defer cancel()
	req, err := rs.feedRequest(ctx, "/v1/replication/sessions")
	if err != nil {
		return
	}
	resp, err := rs.opts.Client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var list api.ReplicationSessionsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return
	}
	listed := make(map[string]bool, len(list.Sessions))
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.ctx.Err() != nil {
		return
	}
	for _, info := range list.Sessions {
		listed[info.ID] = true
		if r, ok := rs.replicas[info.ID]; ok {
			if info.WALSeq > r.primarySeq.Load() {
				r.primarySeq.Store(info.WALSeq)
			}
			continue
		}
		r := &Replica{
			ID: info.ID, Tenant: info.Tenant,
			dir:     filepath.Join(rs.opts.Root, info.ID),
			workers: rs.opts.Workers, policy: rs.opts.Policy,
			ckptEvery: rs.opts.CheckpointEvery,
			meta:      info.Config,
		}
		r.primarySeq.Store(info.WALSeq)
		rs.replicas[info.ID] = r
		rs.startReplica(r)
	}
	// A session the primary no longer lists was deleted there; drop the
	// replica so a promote cannot resurrect it. The on-disk state is
	// quarantined, not deleted: an omitted id is also what a primary
	// restarted against a fresh or swapped data dir looks like, and in that
	// case this follower holds the only surviving copy of the session —
	// exactly the data a failover exists to protect.
	for id, r := range rs.replicas {
		if listed[id] {
			continue
		}
		if r.cancel != nil {
			r.cancel()
		}
		delete(rs.replicas, id)
		rs.quarantine(r)
	}
}

// quarantineDir is where dropped replicas' session directories are parked
// under Root. The leading dot keeps every recovery scan (this package's and
// the serving layer's) from picking them up; reclaiming the space — or the
// data — is an operator decision.
const quarantineDir = ".quarantine"

// quarantine closes a dropped replica's journal and moves its directory
// aside instead of deleting it.
func (rs *ReplicaSet) quarantine(r *Replica) {
	r.mu.Lock()
	if r.wal != nil {
		r.wal.Close()
	}
	r.sess, r.wal = nil, nil
	r.mu.Unlock()
	trash := filepath.Join(rs.opts.Root, quarantineDir)
	if err := os.MkdirAll(trash, 0o755); err != nil {
		log.Printf("cluster: replica %s dropped (absent on primary); quarantine failed, directory left in place: %v", r.ID, err)
		return
	}
	dst := filepath.Join(trash, r.ID)
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(trash, fmt.Sprintf("%s.%d", r.ID, i))
	}
	if err := os.Rename(r.dir, dst); err != nil {
		log.Printf("cluster: replica %s dropped (absent on primary); quarantine failed, directory left in place: %v", r.ID, err)
		return
	}
	log.Printf("cluster: replica %s dropped (absent on primary); state quarantined at %s", r.ID, dst)
}

// startReplica launches one session's stream loop. Caller holds rs.mu (or
// is single-threaded startup).
func (rs *ReplicaSet) startReplica(r *Replica) {
	ctx, cancel := context.WithCancel(rs.ctx)
	r.cancel = cancel
	rs.wg.Add(1)
	go func() {
		defer rs.wg.Done()
		rs.runReplica(ctx, r)
	}()
}

// runReplica drives one session: provision from checkpoint if needed, then
// stream WAL frames until the set stops, reconnecting (from the last
// applied sequence, so nothing is double-applied) after torn streams and
// re-syncing from a fresh checkpoint when the primary's log was truncated
// past the subscription.
func (rs *ReplicaSet) runReplica(ctx context.Context, r *Replica) {
	for ctx.Err() == nil {
		if r.sessionNil() {
			if err := rs.provision(ctx, r); err != nil {
				r.note(err)
				sleepCtx(ctx, rs.opts.Retry)
				continue
			}
		}
		err := rs.stream(ctx, r)
		r.connected.Store(false)
		if ctx.Err() != nil {
			return
		}
		if errors.Is(err, errResync) {
			if werr := rs.wipe(r); werr != nil {
				r.note(werr)
			}
			continue
		}
		if err != nil {
			r.note(err)
		}
		sleepCtx(ctx, rs.opts.Retry)
	}
}

// errResync signals that the local replica state is stale relative to the
// primary (its WAL was checkpointed past our subscription, or our own
// journal failed) and must be rebuilt from a fresh checkpoint.
var errResync = errors.New("cluster: replica requires checkpoint re-sync")

func (r *Replica) sessionNil() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sess == nil
}

func (r *Replica) note(err error) {
	if err != nil {
		r.lastErr.Store(err.Error())
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}

// wipe discards the replica's local state ahead of a full re-sync.
func (rs *ReplicaSet) wipe(r *Replica) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wal != nil {
		r.wal.Close()
	}
	r.sess, r.wal, r.ckptSeq = nil, nil, 0
	r.applied.Store(0)
	return os.RemoveAll(r.dir)
}

// provision builds the replica's local state from the primary's current
// checkpoint: directory, fingerprint, tenant marker, checkpoint file (or an
// empty session when the primary has never checkpointed), and a WAL whose
// sequence counter resumes after the checkpoint.
func (rs *ReplicaSet) provision(ctx context.Context, r *Replica) error {
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return err
	}
	cfgBytes, err := json.MarshalIndent(r.meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(r.dir, "config.json"), cfgBytes, 0o644); err != nil {
		return err
	}
	if r.Tenant != "" && r.Tenant != "default" {
		if err := os.WriteFile(filepath.Join(r.dir, "tenant"), []byte(r.Tenant+"\n"), 0o644); err != nil {
			return err
		}
	}
	cfg, err := ConfigFromMeta(r.meta)
	if err != nil {
		return err
	}

	req, err := rs.feedRequest(ctx, "/v1/replication/sessions/"+url.PathEscape(r.ID)+"/checkpoint")
	if err != nil {
		return err
	}
	resp, err := rs.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	var sess *adawave.Session
	var ckptSeq uint64
	switch resp.StatusCode {
	case http.StatusOK:
		ckptSeq, _ = strconv.ParseUint(resp.Header.Get(api.HeaderCheckpointSeq), 10, 64)
		tmp := filepath.Join(r.dir, "checkpoint.tmp")
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if _, err := io.Copy(f, resp.Body); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("checkpoint transfer: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		f.Close()
		final := filepath.Join(r.dir, CheckpointFileName(ckptSeq))
		if err := os.Rename(tmp, final); err != nil {
			os.Remove(tmp)
			return err
		}
		cf, err := os.Open(final)
		if err != nil {
			return err
		}
		sess, err = adawave.RestoreSession(cf, cfg, r.workers)
		cf.Close()
		if err != nil {
			os.Remove(final)
			return fmt.Errorf("checkpoint restore: %w", err)
		}
	case http.StatusNoContent:
		// The primary has never checkpointed this session: start empty and
		// let the WAL stream carry the whole history.
		if sess, err = adawave.NewSession(cfg, r.workers); err != nil {
			return err
		}
	default:
		return fmt.Errorf("checkpoint fetch: primary answered %d", resp.StatusCode)
	}

	wal, err := persist.OpenWAL(filepath.Join(r.dir, "wal.log"), r.policy)
	if err != nil {
		return err
	}
	wal.SkipTo(ckptSeq)

	r.mu.Lock()
	r.cfg = cfg
	r.sess = sess
	r.wal = wal
	r.ckptSeq = ckptSeq
	r.mu.Unlock()
	r.applied.Store(ckptSeq)
	if ckptSeq > r.primarySeq.Load() {
		r.primarySeq.Store(ckptSeq)
	}
	log.Printf("cluster: replica %s provisioned from checkpoint seq %d (%d points)", r.ID, ckptSeq, sess.Len())
	return nil
}

// stream opens the long-lived frame stream from the last applied sequence
// and applies frames until the connection ends. A clean EOF (the primary
// reset its WAL after a checkpoint, or shut down) returns nil and the
// caller reconnects; a torn frame reconnects the same way — the replica's
// applied sequence is the resume point either way, so nothing is lost or
// double-applied. A 409 from the primary means our subscription predates
// its checkpoint: return errResync.
func (rs *ReplicaSet) stream(ctx context.Context, r *Replica) error {
	from := r.applied.Load()
	req, err := rs.feedRequest(ctx, "/v1/replication/sessions/"+url.PathEscape(r.ID)+"/wal?from="+strconv.FormatUint(from, 10))
	if err != nil {
		return err
	}
	resp, err := rs.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return errResync
	case http.StatusNotFound:
		// Deleted on the primary; the poll loop will drop us shortly.
		return fmt.Errorf("session %s gone on primary", r.ID)
	default:
		return fmt.Errorf("wal stream: primary answered %d", resp.StatusCode)
	}
	if seq, err := strconv.ParseUint(resp.Header.Get(api.HeaderWALSeq), 10, 64); err == nil {
		// Session sequences are monotone across checkpoints, so the primary's
		// log ending BELOW our applied position means its history was
		// rewritten (it lost the WAL tail in a crash, or was restored from a
		// backup) and it will re-issue the sequences we already hold for new,
		// different mutations. Resuming would silently apply divergent frames
		// that pass the contiguity check; rebuild from its checkpoint instead.
		if applied := r.applied.Load(); seq < applied {
			return fmt.Errorf("%w (primary wal seq %d behind applied %d: primary history rewritten)", errResync, seq, applied)
		}
		if seq > r.primarySeq.Load() {
			r.primarySeq.Store(seq)
		}
	}
	r.connected.Store(true)
	r.lastErr.Store("")

	br := bufio.NewReaderSize(resp.Body, 1<<16)
	for {
		frame, seq, err := persist.ReadFrame(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// Torn mid-frame (connection died): reconnect from applied.
			return err
		}
		if err := r.apply(frame, seq); err != nil {
			return err
		}
	}
}

// apply folds one frame into the warm session and journals it verbatim.
// The order matches the primary's contract — only successfully applied
// mutations are journaled — so the local log can never replay a mutation
// the session refused.
func (r *Replica) apply(frame []byte, seq uint64) error {
	rec, err := persist.ParseFrame(frame)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sess == nil {
		return errResync
	}
	if rec.Batch != nil {
		err = r.sess.Append(rec.Batch)
	} else {
		err = r.sess.Remove(rec.Indices)
	}
	if err != nil {
		// The primary applied this mutation and we cannot: the states have
		// diverged (or our checkpoint base was stale). Rebuild from scratch.
		return fmt.Errorf("%w (apply seq %d: %v)", errResync, seq, err)
	}
	if _, err := r.wal.AppendFrame(frame); err != nil {
		// The session advanced but the journal did not; the only safe
		// recovery is a rebuild — continuing would leave the on-disk state
		// behind the acknowledged stream position.
		return fmt.Errorf("%w (journal seq %d: %v)", errResync, seq, err)
	}
	r.applied.Store(seq)
	if seq > r.primarySeq.Load() {
		r.primarySeq.Store(seq)
	}
	r.maybeCheckpointLocked()
	return nil
}

// maybeCheckpointLocked folds a grown local WAL into a checkpoint so the
// follower's own crash recovery stays O(checkpoint read + short tail) and
// its disk footprint stays bounded. Failures are logged, not fatal: the WAL
// still holds everything.
func (r *Replica) maybeCheckpointLocked() {
	if r.ckptEvery < 0 || r.wal.Records() < uint64(r.ckptEvery) {
		return
	}
	seq := r.wal.Seq()
	tmp := filepath.Join(r.dir, "checkpoint.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		log.Printf("cluster: replica %s checkpoint: %v", r.ID, err)
		return
	}
	if err := r.sess.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		log.Printf("cluster: replica %s checkpoint: %v", r.ID, err)
		return
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		log.Printf("cluster: replica %s checkpoint: %v", r.ID, err)
		return
	}
	f.Close()
	if err := os.Rename(tmp, filepath.Join(r.dir, CheckpointFileName(seq))); err != nil {
		os.Remove(tmp)
		log.Printf("cluster: replica %s checkpoint: %v", r.ID, err)
		return
	}
	if d, err := os.Open(r.dir); err == nil {
		d.Sync()
		d.Close()
	}
	if err := r.wal.Reset(); err != nil {
		log.Printf("cluster: replica %s wal reset: %v", r.ID, err)
		return
	}
	if entries, err := os.ReadDir(r.dir); err == nil {
		for _, e := range entries {
			if s, ok := CheckpointSeqOf(e.Name()); ok && s != seq {
				os.Remove(filepath.Join(r.dir, e.Name()))
			}
		}
	}
	r.ckptSeq = seq
}

// Status reports every replica's standing keyed by session id. After a
// promote the sessions belong to the serving registry and the map is empty.
func (rs *ReplicaSet) Status() map[string]api.ReplicationStatus {
	if rs.promoted.Load() {
		return map[string]api.ReplicationStatus{}
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make(map[string]api.ReplicationStatus, len(rs.replicas))
	for id, r := range rs.replicas {
		applied, primary := r.applied.Load(), r.primarySeq.Load()
		lag := uint64(0)
		if primary > applied {
			lag = primary - applied
		}
		lastErr, _ := r.lastErr.Load().(string)
		out[id] = api.ReplicationStatus{
			Role:       "follower",
			Primary:    rs.opts.Primary,
			AppliedSeq: applied,
			PrimarySeq: primary,
			Lag:        lag,
			Connected:  r.connected.Load(),
			LastError:  lastErr,
		}
	}
	return out
}

// Lookup returns one replica's warm session and shape for read-only
// serving (detail endpoints on a follower); ok is false for unknown ids or
// replicas still provisioning.
func (rs *ReplicaSet) Lookup(id string) (sess *adawave.Session, tenant string, ok bool) {
	if rs.promoted.Load() {
		return nil, "", false
	}
	rs.mu.Lock()
	r := rs.replicas[id]
	rs.mu.Unlock()
	if r == nil {
		return nil, "", false
	}
	r.mu.Lock()
	sess = r.sess
	r.mu.Unlock()
	if sess == nil {
		return nil, "", false
	}
	return sess, r.Tenant, true
}

// IDs lists the replicated session ids (empty after a promote).
func (rs *ReplicaSet) IDs() []string {
	if rs.promoted.Load() {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	ids := make([]string, 0, len(rs.replicas))
	for id := range rs.replicas {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Primary returns the primary base URL this set follows.
func (rs *ReplicaSet) Primary() string { return rs.opts.Primary }

// Promote stops replication and hands every warm replica over: the second
// half of a failover. Replicas still mid-provision (no session object yet)
// cannot be promoted and are skipped with a log line — their state never
// reached this node. Promote is idempotent; later calls return nothing.
func (rs *ReplicaSet) Promote() []Promoted {
	rs.Stop()
	if !rs.promoted.CompareAndSwap(false, true) {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]Promoted, 0, len(rs.replicas))
	for id, r := range rs.replicas {
		r.mu.Lock()
		sess, wal, ckptSeq := r.sess, r.wal, r.ckptSeq
		r.mu.Unlock()
		if sess == nil || wal == nil {
			log.Printf("cluster: replica %s skipped in promote (never finished provisioning)", id)
			continue
		}
		out = append(out, Promoted{
			ID: id, Tenant: r.Tenant, Config: r.cfg, Session: sess,
			Disk: &SessionDisk{Dir: r.dir, WAL: wal, CkptSeq: ckptSeq},
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Close stops replication and closes the replicas' WALs (flushing buffered
// frames). After a promote the WALs belong to the promoted sessions and are
// left open — their new owner closes them.
func (rs *ReplicaSet) Close() {
	rs.Stop()
	if rs.promoted.Load() {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, r := range rs.replicas {
		r.mu.Lock()
		if r.wal != nil {
			if err := r.wal.Close(); err != nil {
				log.Printf("cluster: replica %s wal close: %v", r.ID, err)
			}
		}
		r.mu.Unlock()
	}
}
