package cluster

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"adawave"
	"adawave/internal/core"
	"adawave/internal/embed"
	"adawave/internal/grid"
	"adawave/internal/persist"
)

// The session-directory layout (config.json / tenant / checkpoint-<seq>.awc
// / wal.log) is shared between the serving layer's own recovery and the
// replication path: a follower journals replicated sessions into the exact
// same shape, so a promoted follower's directories are indistinguishable
// from ones the node created itself. The helpers here are that layout's
// single source of truth; cmd/adawave-serve delegates to them.

const (
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".awc"
)

// CheckpointFileName renders a checkpoint file name for the WAL sequence it
// folds in; the fixed-width rendering keeps lexical and numeric order
// aligned.
func CheckpointFileName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, seq, ckptSuffix)
}

// CheckpointSeqOf parses a checkpoint file name back to its sequence.
func CheckpointSeqOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// NewestCheckpoint returns the newest checkpoint file in a session
// directory and the sequence it folds in; ok is false when none exists.
func NewestCheckpoint(dir string) (path string, seq uint64, ok bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, false
	}
	for _, e := range entries {
		if s, isCkpt := CheckpointSeqOf(e.Name()); isCkpt && (!ok || s > seq) {
			path, seq, ok = filepath.Join(dir, e.Name()), s, true
		}
	}
	return path, seq, ok
}

// ConfigFromMeta rebuilds the adawave.Config a recovered or replicated
// session runs under, then verifies it re-renders to exactly the stored
// fingerprint through core.ConfigFingerprint — the same canonical renderer
// session creation and checkpointing use — so neither the serving layer nor
// a follower can drift from the checkpoint format. Only threshold
// strategies the server can create (the default) are restorable.
func ConfigFromMeta(m persist.ConfigMeta) (adawave.Config, error) {
	cfg := adawave.DefaultConfig()
	cfg.Scale = m.Scale
	cfg.Levels = m.Levels
	basis, err := adawave.BasisByName(m.Basis)
	if err != nil {
		return cfg, err
	}
	cfg.Basis = basis
	switch m.Connectivity {
	case "faces":
		cfg.Connectivity = grid.Faces
	case "full":
		cfg.Connectivity = grid.Full
	default:
		return cfg, fmt.Errorf("unknown connectivity %q", m.Connectivity)
	}
	cfg.CoeffEpsilon = m.CoeffEpsilon
	cfg.MinClusterCells = m.MinClusterCells
	cfg.MinClusterMass = m.MinClusterMass
	if m.Embedding != "" {
		sp, err := embed.ParseSpec(m.Embedding)
		if err != nil {
			return cfg, err
		}
		cfg.Embedding = sp
	}
	if got := core.ConfigFingerprint(cfg); got != m {
		return cfg, fmt.Errorf("config fingerprint does not round-trip (stored %+v, rebuilt %+v)", m, got)
	}
	return cfg, nil
}

// SessionDisk is a recovered session's on-disk half: its directory, the
// reopened WAL (sequence counter resumed), and the sequence the newest
// restorable checkpoint folds in.
type SessionDisk struct {
	Dir     string
	WAL     *persist.WAL
	CkptSeq uint64
}

// LoadSessionDir recovers one session directory: fingerprint → engine
// config, newest restorable checkpoint → warm session, WAL tail replay
// (records above the checkpoint's sequence; a torn trailing record is
// discarded — the crash-recovery contract). It returns the live session
// ready to serve with its reopened WAL. Both boot-time recovery in
// cmd/adawave-serve and a restarting follower resume through this one path.
func LoadSessionDir(dir string, workers int, policy persist.SyncPolicy) (*adawave.Session, *SessionDisk, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "config.json"))
	if err != nil {
		return nil, nil, err
	}
	var meta persist.ConfigMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, nil, fmt.Errorf("config.json: %w", err)
	}
	cfg, err := ConfigFromMeta(meta)
	if err != nil {
		return nil, nil, fmt.Errorf("config.json: %w", err)
	}

	// Newest checkpoint first; on a restore failure fall back to older ones
	// (normally at most one exists — older files mean a crash interrupted
	// the post-checkpoint sweep).
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type ckpt struct {
		name string
		seq  uint64
	}
	var ckpts []ckpt
	for _, e := range entries {
		if seq, ok := CheckpointSeqOf(e.Name()); ok {
			ckpts = append(ckpts, ckpt{e.Name(), seq})
		}
	}
	sort.Slice(ckpts, func(a, b int) bool { return ckpts[a].seq > ckpts[b].seq })

	var sess *adawave.Session
	var ckptSeq, newestSeq uint64
	if len(ckpts) > 0 {
		newestSeq = ckpts[0].seq
	}
	for _, c := range ckpts {
		f, err := os.Open(filepath.Join(dir, c.name))
		if err != nil {
			continue
		}
		restored, rerr := adawave.RestoreSession(f, cfg, workers)
		f.Close()
		if rerr != nil {
			log.Printf("cluster: checkpoint %s unrestorable: %v", c.name, rerr)
			continue
		}
		sess, ckptSeq = restored, c.seq
		break
	}
	if sess == nil {
		// No (restorable) checkpoint: an empty session replays the whole log.
		if sess, err = adawave.NewSession(cfg, workers); err != nil {
			return nil, nil, err
		}
	}

	walPath := filepath.Join(dir, "wal.log")
	lastSeq, _, err := persist.ReplayInto(walPath, ckptSeq, sess)
	if err != nil {
		return nil, nil, fmt.Errorf("wal replay: %w", err)
	}
	// If recovery had to fall back past the newest checkpoint (it existed
	// but would not restore), the WAL must still cover every sequence the
	// newest checkpoint had folded in — otherwise mutations this node
	// acknowledged are gone, and serving the stale state as if it were
	// current would be a silent data loss. Refuse instead; the directory is
	// left untouched for inspection.
	if ckptSeq < newestSeq && lastSeq < newestSeq {
		return nil, nil, fmt.Errorf("newest checkpoint (seq %d) unrestorable and wal ends at seq %d: acknowledged state missing", newestSeq, lastSeq)
	}
	wal, err := persist.OpenWAL(walPath, policy)
	if err != nil {
		return nil, nil, err
	}
	// A fresh log (no checkpoint, no records — or a log orphaned by a
	// crash before its first record) must not restart sequences below an
	// existing checkpoint's.
	wal.SkipTo(ckptSeq)
	return sess, &SessionDisk{Dir: dir, WAL: wal, CkptSeq: ckptSeq}, nil
}
