package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRingLookupStable(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"a", "b", "c"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("s%d", i)
		p1, f1 := r.Lookup(key)
		p2, f2 := r2.Lookup(key)
		if p1 != p2 || f1 != f2 {
			t.Fatalf("lookup %q not deterministic: (%s,%s) vs (%s,%s)", key, p1, f1, p2, f2)
		}
		if p1 == f1 {
			t.Fatalf("lookup %q: follower equals primary %s", key, p1)
		}
		if f1 == "" {
			t.Fatalf("lookup %q: no follower with 3 members", key)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r, err := NewRing(members, 128)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		p, _ := r.Lookup(fmt.Sprintf("session-%d", i))
		counts[p]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys — ring badly imbalanced: %v", m, share*100, counts)
		}
	}
}

func TestRingMinimalMovement(t *testing.T) {
	r3, err := NewRing([]string{"a", "b", "c"}, 128)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing([]string{"a", "b", "c", "d"}, 128)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("s%d", i)
		p3, _ := r3.Lookup(key)
		p4, _ := r4.Lookup(key)
		if p3 != p4 {
			if p4 != "d" {
				t.Fatalf("key %q moved %s → %s, not to the new member", key, p3, p4)
			}
			moved++
		}
	}
	// Consistent hashing moves ~1/4 of keys to the new 4th member; far more
	// means the ring is rehashing everything.
	if share := float64(moved) / n; share > 0.40 {
		t.Fatalf("%.1f%% of keys moved when adding one member", share*100)
	}
}

func TestRingSingleMember(t *testing.T) {
	r, err := NewRing([]string{"solo"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	p, f := r.Lookup("anything")
	if p != "solo" || f != "" {
		t.Fatalf("got (%q,%q), want (solo, empty)", p, f)
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 8); err == nil {
		t.Fatal("empty member accepted")
	}
}

func TestMembershipObserve(t *testing.T) {
	m := NewMembership([]string{"n1", "n2"}, time.Hour, 2, nil)
	if !m.Alive("n1") {
		t.Fatal("nodes must start alive")
	}
	m.Observe("n1", false)
	if !m.Alive("n1") {
		t.Fatal("one miss must not kill a node")
	}
	m.Observe("n1", false)
	if m.Alive("n1") {
		t.Fatal("threshold misses must kill a node")
	}
	m.Observe("n1", true)
	if !m.Alive("n1") {
		t.Fatal("one success must revive a node")
	}
	if m.Alive("unknown") {
		t.Fatal("unknown nodes must be dead")
	}
}

func TestMembershipProbesHealthz(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s, want /healthz", r.URL.Path)
		}
		if healthy.Load() {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	defer srv.Close()

	m := NewMembership([]string{srv.URL}, 10*time.Millisecond, 2, srv.Client())
	m.Start()
	defer m.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for m.Alive(srv.URL) != true && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	healthy.Store(false)
	for m.Alive(srv.URL) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Alive(srv.URL) {
		t.Fatal("node never flipped dead after failing probes")
	}
	healthy.Store(true)
	for !m.Alive(srv.URL) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !m.Alive(srv.URL) {
		t.Fatal("node never revived after probes recovered")
	}
}

func TestParseShards(t *testing.T) {
	shards, err := ParseShards("http://a:1=http://a2:1, http://b:2=http://b2:2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Shard{
		{Primary: "http://a:1", Follower: "http://a2:1"},
		{Primary: "http://b:2", Follower: "http://b2:2"},
	}
	if len(shards) != len(want) {
		t.Fatalf("got %d shards, want %d", len(shards), len(want))
	}
	for i := range want {
		if shards[i] != want[i] {
			t.Fatalf("shard %d = %+v, want %+v", i, shards[i], want[i])
		}
	}

	solo, err := ParseShards("http://only:1")
	if err != nil {
		t.Fatal(err)
	}
	if solo[0].Follower != "" {
		t.Fatalf("bare peer must have no follower, got %q", solo[0].Follower)
	}

	for _, bad := range []string{"", "   ", "not-a-url=http://b:1", "http://a:1=also-bad", "=http://f:1"} {
		if _, err := ParseShards(bad); err == nil {
			t.Fatalf("ParseShards(%q) accepted", bad)
		}
	}
}

func TestCheckpointFileNameRoundTrip(t *testing.T) {
	for _, seq := range []uint64{0, 1, 8192, 1<<63 + 7} {
		name := CheckpointFileName(seq)
		got, ok := CheckpointSeqOf(name)
		if !ok || got != seq {
			t.Fatalf("round trip %d → %q → (%d,%v)", seq, name, got, ok)
		}
	}
	if _, ok := CheckpointSeqOf("wal.log"); ok {
		t.Fatal("wal.log parsed as checkpoint")
	}
	if _, ok := CheckpointSeqOf("checkpoint-x.awc"); ok {
		t.Fatal("non-numeric checkpoint name parsed")
	}
}

func TestRouterFailoverStateMachine(t *testing.T) {
	promoted := atomic.Int32{}
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.WriteHeader(http.StatusOK)
		case "/v1/replication/promote":
			promoted.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"role":"primary","promoted":1,"sessions":["s1"]}`))
		default:
			w.Write([]byte(`{"ok":true,"path":"` + r.URL.Path + `"}`))
		}
	}))
	defer follower.Close()

	primaryHealthy := atomic.Bool{}
	primaryHealthy.Store(true)
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !primaryHealthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Write([]byte(`{"node":"primary"}`))
	}))
	defer primary.Close()

	rt, err := NewRouter(RouterOptions{
		Shards:        []Shard{{Primary: primary.URL, Follower: follower.URL}},
		ProbeInterval: 10 * time.Millisecond,
		FailThreshold: 2,
		RetryAfter:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()

	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/sessions/s1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy shard answered %d", resp.StatusCode)
	}

	primaryHealthy.Store(false)
	deadline := time.Now().Add(3 * time.Second)
	for promoted.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if promoted.Load() == 0 {
		t.Fatal("router never promoted the follower")
	}
	for time.Now().Before(deadline) {
		st := rt.Status()
		if len(st) == 1 && st[0].State == ShardPromoted {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := rt.Status()
	if st[0].State != ShardPromoted || st[0].Active != follower.URL {
		t.Fatalf("shard state %+v after promote", st[0])
	}

	// Traffic now lands on the follower.
	resp, err = http.Get(front.URL + "/v1/sessions/s1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promoted shard answered %d", resp.StatusCode)
	}
}

func TestRouterUnavailableDuringFailover(t *testing.T) {
	// A follower that never answers promote keeps the shard in failover;
	// the router must answer 503 + Retry-After the whole time.
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer follower.Close()

	rt, err := NewRouter(RouterOptions{
		Shards:        []Shard{{Primary: "http://127.0.0.1:1", Follower: follower.URL}},
		ProbeInterval: 10 * time.Millisecond,
		FailThreshold: 1,
		RetryAfter:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if st := rt.Status(); st[0].State == ShardFailover {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := rt.Status(); st[0].State != ShardFailover {
		t.Fatalf("shard state %q, want failover", st[0].State)
	}

	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	resp, err := http.Get(front.URL + "/v1/sessions/s1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-failover request answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want 2", resp.Header.Get("Retry-After"))
	}
}

func TestRouterPinsSessionIDOnCreate(t *testing.T) {
	var gotID atomic.Value
	node := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/sessions" {
			gotID.Store(r.Header.Get("X-Adawave-Session-Id"))
		}
		w.Write([]byte(`{}`))
	}))
	defer node.Close()

	rt, err := NewRouter(RouterOptions{Shards: []Shard{{Primary: node.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Post(front.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id, _ := gotID.Load().(string)
	if len(id) != 17 || id[0] != 'c' {
		t.Fatalf("router minted id %q, want c+16 hex", id)
	}
	if rt.Place(id) != node.URL {
		t.Fatalf("minted id %q does not place on its shard", id)
	}
}

// TestRouterIgnoresClientAborts: httputil invokes ErrorHandler for
// client-side aborts too (the caller hung up or timed out mid-proxy);
// those must not count as liveness misses, or two impatient clients within
// one probe window would fence a perfectly healthy primary.
func TestRouterIgnoresClientAborts(t *testing.T) {
	rt, err := NewRouter(RouterOptions{
		Shards:        []Shard{{Primary: "http://127.0.0.1:1", Follower: "http://127.0.0.1:2"}},
		FailThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := rt.shards["http://127.0.0.1:1"]

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	aborted := httptest.NewRequest(http.MethodGet, "/v1/sessions/s1", nil).
		WithContext(context.WithValue(canceled, ctxShard, ss))
	for i := 0; i < 3; i++ {
		rt.proxy.ErrorHandler(httptest.NewRecorder(), aborted, context.Canceled)
	}
	ss.mu.Lock()
	misses, state := ss.misses, ss.state
	ss.mu.Unlock()
	if misses != 0 || state != ShardHealthy {
		t.Fatalf("client aborts counted as misses: misses=%d state=%s", misses, state)
	}

	// A genuine upstream failure (live request context) still counts —
	// request-speed failure detection stays intact.
	live := httptest.NewRequest(http.MethodGet, "/v1/sessions/s1", nil).
		WithContext(context.WithValue(context.Background(), ctxShard, ss))
	rt.proxy.ErrorHandler(httptest.NewRecorder(), live, errors.New("dial tcp 127.0.0.1:1: connection refused"))
	ss.mu.Lock()
	misses = ss.misses
	ss.mu.Unlock()
	if misses != 1 {
		t.Fatalf("genuine upstream failure not observed: misses=%d", misses)
	}
}

// TestRouterDownShardRecovers: a shard with no follower whose primary dies
// goes down — and must come back on its own when the primary answers
// probes again, instead of blackholing the shard until a router restart.
func TestRouterDownShardRecovers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	node := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Write([]byte(`{"node":"primary"}`))
	})
	hs := &http.Server{Handler: node}
	go hs.Serve(ln)

	rt, err := NewRouter(RouterOptions{
		Shards:        []Shard{{Primary: "http://" + addr}},
		ProbeInterval: 10 * time.Millisecond,
		FailThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()

	waitShardState := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if st := rt.Status(); st[0].State == want {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("shard state %q, want %q", rt.Status()[0].State, want)
	}

	hs.Close()
	waitShardState(ShardDown)

	// The node returns on the same address (same node, same data: no
	// promotion ever happened) and the router folds it back in.
	var ln2 net.Listener
	for deadline := time.Now().Add(5 * time.Second); ; {
		if ln2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	hs2 := &http.Server{Handler: node}
	go hs2.Serve(ln2)
	defer hs2.Close()
	waitShardState(ShardHealthy)

	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	resp, err := http.Get(front.URL + "/v1/sessions/s1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered shard answered %d", resp.StatusCode)
	}
}
