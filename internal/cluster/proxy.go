package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"adawave/internal/api"
)

// Shard is one primary/follower node pair. The primary serves all traffic;
// the follower replicates it and takes over when the router promotes it.
type Shard struct {
	Primary  string
	Follower string
}

// ParseShards parses the router's -peers flag: comma-separated
// primary=follower base-URL pairs ("http://a:8080=http://a2:8080,..."). A
// pair without '=' is a shard with no follower (no failover possible — the
// router still routes to it).
func ParseShards(spec string) ([]Shard, error) {
	var out []Shard
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sh := Shard{Primary: part}
		if i := strings.IndexByte(part, '='); i >= 0 {
			sh.Primary, sh.Follower = strings.TrimSpace(part[:i]), strings.TrimSpace(part[i+1:])
		}
		for _, u := range []string{sh.Primary, sh.Follower} {
			if u == "" {
				continue
			}
			parsed, err := url.Parse(u)
			if err != nil || parsed.Scheme == "" || parsed.Host == "" {
				return nil, fmt.Errorf("cluster: peer %q is not a base URL", u)
			}
		}
		if sh.Primary == "" {
			return nil, fmt.Errorf("cluster: shard %q has no primary", part)
		}
		out = append(out, sh)
	}
	if len(out) == 0 {
		return nil, errors.New("cluster: no shards in -peers")
	}
	return out, nil
}

// Shard states. A shard starts healthy (traffic to the primary); when the
// active node misses FailThreshold consecutive liveness checks the shard
// enters failover (requests answered 503 + Retry-After while the router
// promotes the follower); a successful promote moves it to promoted
// (traffic to the follower). A shard whose active node dies with no
// follower left to promote is down; the router keeps probing its primary
// and folds it back to healthy on the first answered probe — no promotion
// happened, so the returning node is the same node with the same data, and
// a transient blip must not blackhole the shard until a router restart.
// After a PROMOTION the old primary is NOT folded back in automatically —
// re-joining a node that may have diverged is an operator decision (wipe
// its data dir and restart it as the follower).
const (
	ShardHealthy  = "healthy"
	ShardFailover = "failover"
	ShardPromoted = "promoted"
	ShardDown     = "down"
)

// RouterOptions configures the cluster front door.
type RouterOptions struct {
	Shards []Shard
	// VNodes per ring member (<=0 → 128).
	VNodes int
	// Client probes node /healthz endpoints; nil selects a 2s-timeout
	// default.
	Client *http.Client
	// ProbeInterval is the liveness cadence (default 500ms).
	ProbeInterval time.Duration
	// FailThreshold is the consecutive-miss count that triggers a failover
	// (default 2).
	FailThreshold int
	// RetryAfter is the window advertised to clients while a failover is in
	// flight (default 1s) — the retrying client pairs with it.
	RetryAfter time.Duration
	// ClusterSecret authenticates the router's promote calls to nodes
	// started with the same -cluster-secret; empty sends no credential.
	ClusterSecret string
}

// Router is the cluster's stateless front door: it owns placement (the
// consistent-hash ring over shards), proxies /v1 traffic to each session's
// active node, and drives failover. It keeps no session state of its own —
// everything it knows is reconstructed from -peers at boot — so routers can
// themselves be restarted or load-balanced freely.
type Router struct {
	ring   *Ring
	shards map[string]*shardState // keyed by primary URL (the ring member)
	order  []string               // ring member order, for stable status output
	opts   RouterOptions
	proxy  *httputil.ReverseProxy

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

type shardState struct {
	mu         sync.Mutex
	cfg        Shard
	primaryURL *url.URL
	follower   *url.URL
	state      string
	misses     int
	promoting  bool
}

type ctxKey int

const (
	ctxTarget ctxKey = iota
	ctxShard
)

// NewRouter builds the router and its ring. Start launches the probe loop.
func NewRouter(opts RouterOptions) (*Router, error) {
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 2 * time.Second}
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 500 * time.Millisecond
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = 2
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	keys := make([]string, 0, len(opts.Shards))
	shards := make(map[string]*shardState, len(opts.Shards))
	for _, sh := range opts.Shards {
		if _, dup := shards[sh.Primary]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard primary %q", sh.Primary)
		}
		pu, err := url.Parse(sh.Primary)
		if err != nil {
			return nil, err
		}
		ss := &shardState{cfg: sh, primaryURL: pu, state: ShardHealthy}
		if sh.Follower != "" {
			if ss.follower, err = url.Parse(sh.Follower); err != nil {
				return nil, err
			}
		}
		shards[sh.Primary] = ss
		keys = append(keys, sh.Primary)
	}
	ring, err := NewRing(keys, opts.VNodes)
	if err != nil {
		return nil, err
	}
	r := &Router{
		ring: ring, shards: shards, order: keys, opts: opts,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	r.proxy = &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			t := pr.In.Context().Value(ctxTarget).(*url.URL)
			pr.SetURL(t)
			pr.Out.Host = t.Host
		},
		// Streamed label responses flow through the router; flush
		// immediately so chunk boundaries survive the hop.
		FlushInterval: -1,
		ErrorHandler: func(w http.ResponseWriter, req *http.Request, err error) {
			// A proxy failure is a liveness observation: feed it into the
			// same miss counter the probe loop uses, so a dead primary is
			// detected at request speed. But httputil routes CLIENT-side
			// aborts here too (the caller disconnected or its deadline
			// expired mid-proxy), and those say nothing about the upstream's
			// health — counting them would let two impatient clients fence a
			// perfectly healthy primary within one probe window.
			if req.Context().Err() == nil && !errors.Is(err, context.Canceled) {
				if ss, ok := req.Context().Value(ctxShard).(*shardState); ok {
					r.observe(ss, false)
				}
			}
			r.unavailable(w, "upstream unreachable: "+err.Error())
		},
	}
	return r, nil
}

// Start launches the probe/failover loop.
func (r *Router) Start() {
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.opts.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				for _, key := range r.order {
					ss := r.shards[key]
					active := ss.activeURL()
					if active == nil {
						// Mid-failover the promote loop owns the shard. A down
						// shard (no follower to promote) keeps its primary
						// probed so a transient outage heals without a restart.
						if ss.isDown() && Probe(r.opts.Client, ss.primaryURL.String()) {
							ss.revive()
							log.Printf("cluster: shard %s primary answering again, back in service", ss.cfg.Primary)
						}
						continue
					}
					r.observe(ss, Probe(r.opts.Client, active.String()))
				}
			}
		}
	}()
}

// Stop ends the probe loop.
func (r *Router) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// activeURL returns the node currently serving the shard, nil when the
// shard is down or mid-failover.
func (ss *shardState) activeURL() *url.URL {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	switch ss.state {
	case ShardHealthy:
		return ss.primaryURL
	case ShardPromoted:
		return ss.follower
	}
	return nil
}

func (ss *shardState) isDown() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.state == ShardDown
}

// revive puts a down shard back in service against its configured primary.
// Safe because a shard only reaches down with no follower promoted: the
// answering node is the same node with the same data.
func (ss *shardState) revive() {
	ss.mu.Lock()
	ss.state = ShardHealthy
	ss.misses = 0
	ss.mu.Unlock()
}

// observe folds one liveness observation of a shard's active node in, and
// triggers the failover state machine on threshold.
func (r *Router) observe(ss *shardState, ok bool) {
	ss.mu.Lock()
	if ok {
		ss.misses = 0
		ss.mu.Unlock()
		return
	}
	ss.misses++
	trigger := ss.misses >= r.opts.FailThreshold && ss.state == ShardHealthy
	if trigger {
		if ss.follower == nil {
			ss.state = ShardDown
			log.Printf("cluster: shard %s down (no follower to promote)", ss.cfg.Primary)
			trigger = false
		} else {
			ss.state = ShardFailover
			log.Printf("cluster: shard %s primary unreachable, failing over to %s", ss.cfg.Primary, ss.cfg.Follower)
		}
	}
	startPromote := trigger && !ss.promoting
	if startPromote {
		ss.promoting = true
	}
	ss.mu.Unlock()
	if startPromote {
		go r.promote(ss)
	}
}

// promote drives one shard's failover: ask the follower to promote itself,
// retrying on the probe cadence until it answers or the router stops. The
// shard serves 503 + Retry-After for the duration; the promote call itself
// is idempotent on the follower, so a retried request is harmless.
func (r *Router) promote(ss *shardState) {
	for attempt := 0; ; attempt++ {
		select {
		case <-r.stop:
			return
		default:
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ss.cfg.Follower+"/v1/replication/promote", nil)
		if err == nil {
			if r.opts.ClusterSecret != "" {
				req.Header.Set(api.HeaderClusterSecret, r.opts.ClusterSecret)
			}
			var resp *http.Response
			if resp, err = r.opts.Client.Do(req); err == nil {
				var pr api.PromoteResponse
				decodeErr := json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					cancel()
					ss.mu.Lock()
					ss.state = ShardPromoted
					ss.misses = 0
					ss.promoting = false
					ss.mu.Unlock()
					if decodeErr == nil {
						log.Printf("cluster: shard %s promoted %s (%d sessions warm)", ss.cfg.Primary, ss.cfg.Follower, pr.Promoted)
					} else {
						log.Printf("cluster: shard %s promoted %s", ss.cfg.Primary, ss.cfg.Follower)
					}
					return
				}
				err = fmt.Errorf("follower answered %d", resp.StatusCode)
			}
		}
		cancel()
		log.Printf("cluster: shard %s promote attempt %d: %v", ss.cfg.Primary, attempt+1, err)
		select {
		case <-r.stop:
			return
		case <-time.After(r.opts.ProbeInterval):
		}
	}
}

// Handler returns the router's HTTP front door.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /v1/cluster/status", r.status)
	mux.HandleFunc("POST /v1/sessions", r.createSession)
	mux.HandleFunc("/v1/sessions/{id}", r.sessionTraffic)
	mux.HandleFunc("/v1/sessions/{id}/{rest...}", r.sessionTraffic)
	mux.HandleFunc("/", r.defaultTraffic)
	return mux
}

// status reports every shard's placement and failover state.
func (r *Router) status(w http.ResponseWriter, _ *http.Request) {
	resp := api.RouterStatusResponse{Shards: r.Status()}
	sort.Slice(resp.Shards, func(a, b int) bool { return resp.Shards[a].Primary < resp.Shards[b].Primary })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// createSession places a new session: the router mints the id (so placement
// precedes creation), maps it onto a shard through the ring, and forwards
// the request with the id pinned in a header the serving node honors.
func (r *Router) createSession(w http.ResponseWriter, req *http.Request) {
	id := req.Header.Get(api.HeaderSessionID)
	if id == "" {
		var buf [8]byte
		if _, err := rand.Read(buf[:]); err != nil {
			http.Error(w, "id generation failed", http.StatusInternalServerError)
			return
		}
		id = "c" + hex.EncodeToString(buf[:])
	}
	req.Header.Set(api.HeaderSessionID, id)
	r.forward(w, req, id)
}

// sessionTraffic routes every per-session request by the id in the path.
func (r *Router) sessionTraffic(w http.ResponseWriter, req *http.Request) {
	r.forward(w, req, req.PathValue("id"))
}

// defaultTraffic handles requests that carry no session id (session list,
// metrics, tenant usage). They are forwarded to the first shard — a
// documented single-shard convenience; with multiple shards these
// node-local views are per-shard and callers should query nodes directly.
func (r *Router) defaultTraffic(w http.ResponseWriter, req *http.Request) {
	r.proxyTo(w, req, r.shards[r.order[0]])
}

func (r *Router) forward(w http.ResponseWriter, req *http.Request, id string) {
	owner, _ := r.ring.Lookup(id)
	r.proxyTo(w, req, r.shards[owner])
}

func (r *Router) proxyTo(w http.ResponseWriter, req *http.Request, ss *shardState) {
	target := ss.activeURL()
	if target == nil {
		r.unavailable(w, "shard failing over")
		return
	}
	ctx := context.WithValue(req.Context(), ctxTarget, target)
	ctx = context.WithValue(ctx, ctxShard, ss)
	r.proxy.ServeHTTP(w, req.WithContext(ctx))
}

// unavailable answers 503 with the Retry-After the retrying client honors.
func (r *Router) unavailable(w http.ResponseWriter, msg string) {
	secs := int(r.opts.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.ErrorBody{
		Code:    api.CodeUnavailable,
		Message: msg,
	}})
}

// Status returns the shard table for tests and the status endpoint.
func (r *Router) Status() []api.ShardStatus {
	resp := make([]api.ShardStatus, 0, len(r.order))
	for _, key := range r.order {
		ss := r.shards[key]
		ss.mu.Lock()
		st := api.ShardStatus{Primary: ss.cfg.Primary, Follower: ss.cfg.Follower, State: ss.state}
		switch ss.state {
		case ShardHealthy:
			st.Active = ss.cfg.Primary
		case ShardPromoted:
			st.Active = ss.cfg.Follower
		}
		ss.mu.Unlock()
		resp = append(resp, st)
	}
	return resp
}

// Place reports which shard primary a session id maps to (for tests and
// operational tooling).
func (r *Router) Place(id string) string {
	owner, _ := r.ring.Lookup(id)
	return owner
}
