// Package stats provides the statistics substrate for the clustering
// algorithms and the evaluation harness: descriptive statistics, empirical
// CDFs, Pearson correlation, and the Hartigan & Hartigan dip test of
// unimodality (the core primitive of the SkinnyDip and DipMeans baselines).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (divisor n), or 0 when
// len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs. It panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. The input need not be sorted.
// It panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for an already ascending-sorted slice.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: QuantileSorted of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Pearson returns the Pearson correlation coefficient between equal-length
// x and y. It returns 0 if either input is constant or shorter than 2.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ECDF is an empirical cumulative distribution function over a sorted
// sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns F(x) = P(X ≤ x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Column extracts column j from a row-major point set.
func Column(points [][]float64, j int) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p[j]
	}
	return out
}
