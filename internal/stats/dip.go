package stats

import (
	"math"
	"math/rand"
	"sort"
)

// DipResult carries the dip statistic together with the modal interval the
// algorithm identified.
type DipResult struct {
	// Dip is the Hartigan & Hartigan dip statistic: the maximum distance
	// between the empirical CDF and the closest unimodal CDF, in [1/(2n), 1/4].
	Dip float64
	// LowIdx and HighIdx delimit the modal interval [x[LowIdx], x[HighIdx]]
	// (indices into the sorted sample).
	LowIdx, HighIdx int
}

// Dip computes the Hartigan & Hartigan (1985) dip statistic of a sample.
// The input need not be sorted; it is copied. For n < 2 or a constant
// sample the dip is 0.
//
// The implementation follows the classical GCM/LCM interval-narrowing
// algorithm: compute the greatest convex minorant and least concave
// majorant of the empirical CDF on a shrinking interval, take the larger of
// the two one-sided dips, and stop when the interval no longer shrinks.
func Dip(sample []float64) DipResult {
	x := append([]float64(nil), sample...)
	sort.Float64s(x)
	return DipSorted(x)
}

// DipSorted computes the dip statistic of an ascending-sorted sample
// without copying.
func DipSorted(x []float64) DipResult {
	n := len(x)
	if n < 2 || x[0] == x[n-1] {
		return DipResult{Dip: 0, LowIdx: 0, HighIdx: maxInt(0, n-1)}
	}
	low, high := 0, n-1
	// The smallest possible dip for n distinct points.
	dip := 1.0

	// mn[j]: index of the previous vertex of the greatest convex minorant
	// (running convex hull of (x[i], i) from the left).
	mn := make([]int, n)
	mn[0] = 0
	for j := 1; j < n; j++ {
		mn[j] = j - 1
		for {
			mnj := mn[j]
			mnmnj := mn[mnj]
			if mnj == 0 || (x[j]-x[mnj])*float64(mnj-mnmnj) < (x[mnj]-x[mnmnj])*float64(j-mnj) {
				break
			}
			mn[j] = mnmnj
		}
	}
	// mj[k]: index of the next vertex of the least concave majorant
	// (running concave hull from the right).
	mj := make([]int, n)
	mj[n-1] = n - 1
	for k := n - 2; k >= 0; k-- {
		mj[k] = k + 1
		for {
			mjk := mj[k]
			mjmjk := mj[mjk]
			if mjk == n-1 || (x[k]-x[mjk])*float64(mjk-mjmjk) < (x[mjk]-x[mjmjk])*float64(k-mjk) {
				break
			}
			mj[k] = mjmjk
		}
	}

	gcm := make([]int, n+1) // gcm[0..lGCM], descending indices high..low
	lcm := make([]int, n+1) // lcm[0..lLCM], ascending indices low..high
	for {
		// Collect GCM vertices on [low, high], from high down to low.
		i := 0
		gcm[0] = high
		for gcm[i] > low {
			gcm[i+1] = mn[gcm[i]]
			i++
		}
		ig, lGCM := i, i
		// Collect LCM vertices on [low, high], from low up to high.
		i = 0
		lcm[0] = low
		for lcm[i] < high {
			lcm[i+1] = mj[lcm[i]]
			i++
		}
		ih, lLCM := i, i

		// d: maximum distance between the GCM and the LCM, in count units.
		var d float64
		if lGCM != 1 || lLCM != 1 {
			ix, iv := lGCM-1, 1
			for {
				gcmix, lcmiv := gcm[ix], lcm[iv]
				if gcmix > lcmiv {
					// The LCM vertex comes first: measure at lcm[iv].
					gcmi1 := gcm[ix+1]
					dx := float64(lcmiv-gcmi1+1) -
						(x[lcmiv]-x[gcmi1])*float64(gcmix-gcmi1)/(x[gcmix]-x[gcmi1])
					iv++
					if dx >= d {
						d = dx
						ig = ix + 1
						ih = iv - 1
					}
				} else {
					// The GCM vertex comes first: measure at gcm[ix].
					lcmiv1 := lcm[iv-1]
					dx := (x[gcmix]-x[lcmiv1])*float64(lcmiv-lcmiv1)/(x[lcmiv]-x[lcmiv1]) -
						float64(gcmix-lcmiv1-1)
					ix--
					if dx > d {
						d = dx
						ig = ix + 1
						ih = iv
					}
				}
				if ix < 0 {
					ix = 0
				}
				if iv > lLCM {
					iv = lLCM
				}
				if gcm[ix] == lcm[iv] {
					break
				}
			}
		} else {
			d = 1
		}
		if d < dip {
			break
		}

		// One-sided dip of the convex minorant on [gcm[lGCM] .. gcm[ig]].
		var dipL float64
		for j := ig; j < lGCM; j++ {
			maxT := 1.0
			jb, je := gcm[j+1], gcm[j]
			if je-jb > 1 && x[je] != x[jb] {
				c := float64(je-jb) / (x[je] - x[jb])
				for jj := jb; jj <= je; jj++ {
					t := float64(jj-jb+1) - (x[jj]-x[jb])*c
					if t > maxT {
						maxT = t
					}
				}
			}
			if maxT > dipL {
				dipL = maxT
			}
		}
		// One-sided dip of the concave majorant on [lcm[ih] .. lcm[lLCM]].
		var dipU float64
		for j := ih; j < lLCM; j++ {
			maxT := 1.0
			jb, je := lcm[j], lcm[j+1]
			if je-jb > 1 && x[je] != x[jb] {
				c := float64(je-jb) / (x[je] - x[jb])
				for jj := jb; jj <= je; jj++ {
					t := (x[jj]-x[jb])*c - float64(jj-jb-1)
					if t > maxT {
						maxT = t
					}
				}
			}
			if maxT > dipU {
				dipU = maxT
			}
		}

		dipNew := dipL
		if dipU > dipNew {
			dipNew = dipU
		}
		if dipNew > dip {
			dip = dipNew
		}
		if low == gcm[ig] && high == lcm[ih] {
			break // interval no longer shrinks; done
		}
		low = gcm[ig]
		high = lcm[ih]
	}
	return DipResult{Dip: dip / float64(2*n), LowIdx: low, HighIdx: high}
}

// DipCriticalValue returns an approximate critical value of the dip
// statistic for sample size n at significance level alpha (supported:
// 0.10, 0.05, 0.01; other values fall back to 0.05). A sample whose dip
// exceeds the critical value rejects unimodality at level alpha.
//
// The values use the √n scaling of the dip's null distribution under the
// uniform; the constants agree with the published simulation tables to
// within a few percent for n ≥ 50.
func DipCriticalValue(n int, alpha float64) float64 {
	if n < 4 {
		return 0.25 // cannot reject for tiny samples
	}
	var c float64
	switch {
	case alpha <= 0.01:
		c = 0.72
	case alpha <= 0.05:
		c = 0.62
	default:
		c = 0.56
	}
	return c / math.Sqrt(float64(n))
}

// DipPValueMC estimates the p-value of an observed dip for sample size n by
// Monte-Carlo simulation under the uniform null (b replicates, seeded rng).
// It returns (r+1)/(b+1) where r counts replicates with dip ≥ observed.
func DipPValueMC(observed float64, n, b int, seed int64) float64 {
	if n < 2 {
		return 1
	}
	if b <= 0 {
		b = 100
	}
	rng := rand.New(rand.NewSource(seed))
	buf := make([]float64, n)
	r := 0
	for rep := 0; rep < b; rep++ {
		for i := range buf {
			buf[i] = rng.Float64()
		}
		sort.Float64s(buf)
		if DipSorted(buf).Dip >= observed {
			r++
		}
	}
	return float64(r+1) / float64(b+1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
