package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice conventions violated")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("single-element variance should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax of empty slice should panic")
		}
	}()
	MinMax(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1. / 3., 2}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect positive correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect negative correlation = %v", got)
	}
	if Pearson(x, []float64{1, 1, 1, 1, 1}) != 0 {
		t.Fatal("constant input should give 0")
	}
	if Pearson(x, []float64{1, 2}) != 0 {
		t.Fatal("length mismatch should give 0")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("F(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
}

func TestColumn(t *testing.T) {
	pts := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	col := Column(pts, 1)
	if len(col) != 3 || col[0] != 2 || col[2] != 6 {
		t.Fatalf("Column = %v", col)
	}
}

// --- dip test ---

func TestDipTrivial(t *testing.T) {
	if d := Dip(nil).Dip; d != 0 {
		t.Fatalf("dip(nil) = %v", d)
	}
	if d := Dip([]float64{1}).Dip; d != 0 {
		t.Fatalf("dip(single) = %v", d)
	}
	if d := Dip([]float64{2, 2, 2}).Dip; d != 0 {
		t.Fatalf("dip(constant) = %v", d)
	}
	// Two distinct points: minimum possible dip 1/(2n) = 0.25.
	if d := Dip([]float64{0, 1}).Dip; math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("dip(two points) = %v, want 0.25", d)
	}
}

func TestDipEquallySpaced(t *testing.T) {
	// A perfectly uniform (flat) sample is unimodal: dip = 1/(2n).
	for _, n := range []int{5, 10, 100, 1000} {
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
		}
		got := Dip(x).Dip
		want := 1 / float64(2*n)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("n=%d: dip = %v, want %v", n, got, want)
		}
	}
}

func TestDipBimodalLarge(t *testing.T) {
	// Two well-separated tight clusters: dip approaches its maximum 0.25.
	rng := rand.New(rand.NewSource(1))
	n := 400
	x := make([]float64, n)
	for i := 0; i < n/2; i++ {
		x[i] = rng.NormFloat64() * 0.01
	}
	for i := n / 2; i < n; i++ {
		x[i] = 10 + rng.NormFloat64()*0.01
	}
	d := Dip(x).Dip
	if d < 0.2 {
		t.Fatalf("bimodal dip = %v, want > 0.2", d)
	}
	if d > 0.25+1e-9 {
		t.Fatalf("dip exceeded theoretical max: %v", d)
	}
}

func TestDipUnimodalSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 500
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	d := Dip(x).Dip
	if d > DipCriticalValue(n, 0.05) {
		t.Fatalf("gaussian dip = %v exceeds 5%% critical value %v", d, DipCriticalValue(n, 0.05))
	}
}

func TestDipDetectsBimodality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 500
	x := make([]float64, n)
	for i := 0; i < n/2; i++ {
		x[i] = rng.NormFloat64()
	}
	for i := n / 2; i < n; i++ {
		x[i] = 8 + rng.NormFloat64()
	}
	d := Dip(x).Dip
	if d <= DipCriticalValue(n, 0.01) {
		t.Fatalf("clearly bimodal dip = %v below 1%% critical value %v", d, DipCriticalValue(n, 0.01))
	}
}

// Property: the dip is invariant under positive affine transforms and under
// negation (mirroring), and always lies in [1/(2n), 0.25] for distinct data.
func TestDipProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + int(rng.Int31n(200))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
			if rng.Float64() < 0.3 {
				x[i] += 20
			}
		}
		d := Dip(x).Dip
		if d < 1/float64(2*n)-1e-12 || d > 0.25+1e-12 {
			return false
		}
		// Affine invariance.
		y := make([]float64, n)
		for i := range x {
			y[i] = 3.7*x[i] - 11
		}
		if math.Abs(Dip(y).Dip-d) > 1e-9 {
			return false
		}
		// Mirror invariance.
		for i := range x {
			y[i] = -x[i]
		}
		return math.Abs(Dip(y).Dip-d) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDipModalInterval(t *testing.T) {
	// Bimodal data: the modal interval should span the gap between modes.
	n := 200
	x := make([]float64, n)
	for i := 0; i < n/2; i++ {
		x[i] = float64(i) / float64(n) // cluster in [0, 0.5)
	}
	for i := n / 2; i < n; i++ {
		x[i] = 10 + float64(i)/float64(n)
	}
	res := Dip(x)
	if res.LowIdx >= res.HighIdx {
		t.Fatalf("degenerate modal interval [%d,%d]", res.LowIdx, res.HighIdx)
	}
}

func TestDipCriticalValueMonotone(t *testing.T) {
	// Stricter alpha ⇒ larger critical value; more data ⇒ smaller.
	if DipCriticalValue(100, 0.01) <= DipCriticalValue(100, 0.05) {
		t.Fatal("critical value should grow as alpha shrinks")
	}
	if DipCriticalValue(1000, 0.05) >= DipCriticalValue(100, 0.05) {
		t.Fatal("critical value should shrink with n")
	}
	if DipCriticalValue(2, 0.05) != 0.25 {
		t.Fatal("tiny n should return 0.25")
	}
}

func TestDipCriticalValueCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo calibration is slow")
	}
	// The 5% critical value should reject roughly 5% of uniform samples.
	n, b := 200, 200
	crit := DipCriticalValue(n, 0.05)
	rng := rand.New(rand.NewSource(42))
	rejected := 0
	buf := make([]float64, n)
	for rep := 0; rep < b; rep++ {
		for i := range buf {
			buf[i] = rng.Float64()
		}
		if Dip(buf).Dip > crit {
			rejected++
		}
	}
	rate := float64(rejected) / float64(b)
	if rate > 0.15 {
		t.Fatalf("uniform rejection rate %.2f far above nominal 0.05", rate)
	}
}

func TestDipPValueMC(t *testing.T) {
	// A huge observed dip should be significant; a tiny one should not.
	if p := DipPValueMC(0.2, 100, 50, 1); p > 0.05 {
		t.Fatalf("p-value of dip 0.2 at n=100 = %v, want tiny", p)
	}
	if p := DipPValueMC(0.001, 100, 50, 1); p < 0.5 {
		t.Fatalf("p-value of dip 0.001 at n=100 = %v, want large", p)
	}
	if p := DipPValueMC(0.1, 1, 10, 1); p != 1 {
		t.Fatalf("n<2 should return p=1, got %v", p)
	}
}

func BenchmarkDip1000(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 1000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dip(x)
	}
}
