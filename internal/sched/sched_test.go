package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShardsCoversRange: every element of [0, n) is processed exactly once,
// with the same range carving as grid.ParallelRanges (ceil-chunked,
// contiguous, distinct worker index per range).
func TestShardsCoversRange(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {5, 2}, {100, 7}, {4096, 4}, {10000, 16},
	} {
		seen := make([]int32, tc.n)
		var workersSeen sync.Map
		p.Shards("t", tc.n, tc.workers, func(w, lo, hi int) {
			if _, dup := workersSeen.LoadOrStore(w, true); dup {
				t.Errorf("n=%d workers=%d: worker index %d reused", tc.n, tc.workers, w)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: element %d processed %d times", tc.n, tc.workers, i, c)
			}
		}
	}
}

// TestShardsZeroWorkersProgress: the assist loop completes a fan-out even
// when the pool has no capacity of its own (one worker hogged by another
// tenant's long task).
func TestShardsZeroWorkersProgress(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Shards("hog", 1, 1, func(_, _, _ int) {
		close(started)
		<-block
	})
	<-started
	done := make(chan struct{})
	go func() {
		var n int64
		p.Shards("small", 1000, 8, func(_, lo, hi int) { atomic.AddInt64(&n, int64(hi-lo)) })
		if n != 1000 {
			t.Errorf("processed %d of 1000", n)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fan-out did not complete while the only pool worker was blocked")
	}
	close(block)
}

// TestShardsAfterClose: a closed pool degrades to inline execution.
func TestShardsAfterClose(t *testing.T) {
	p := NewPool(2)
	p.Close()
	var n int64
	p.Shards("t", 100, 4, func(_, lo, hi int) { atomic.AddInt64(&n, int64(hi-lo)) })
	if n != 100 {
		t.Fatalf("processed %d of 100 after Close", n)
	}
}

// TestDRRFairness: with a greedy tenant keeping the pool saturated, a small
// tenant's work still completes within a bounded factor of its uncontended
// latency — the deficit round-robin gives it a share of every scheduler
// round instead of queueing it behind the greedy tenant's backlog.
func TestDRRFairness(t *testing.T) {
	const (
		workers   = 4
		smallN    = 64
		greedyN   = 64 * 64
		taskSpin  = 20 * time.Microsecond
		smallRuns = 5
	)
	spin := func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			deadline := time.Now().Add(taskSpin)
			for time.Now().Before(deadline) {
			}
		}
	}

	// Uncontended baseline: the small tenant alone on the pool.
	base := NewPoolQuantum(workers, 64)
	t0 := time.Now()
	for r := 0; r < smallRuns; r++ {
		base.Shards("small", smallN, smallN, spin)
	}
	uncontended := time.Since(t0) / smallRuns
	base.Close()

	// Contended: a greedy tenant floods the pool from goroutines of its own
	// while the small tenant runs the same workload.
	p := NewPoolQuantum(workers, 64)
	defer p.Close()
	stop := make(chan struct{})
	var flood sync.WaitGroup
	for g := 0; g < workers; g++ {
		flood.Add(1)
		go func() {
			defer flood.Done()
			for {
				select {
				case <-stop:
					return
				default:
					p.Shards("greedy", greedyN, greedyN, spin)
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the backlog build
	var contended time.Duration
	for r := 0; r < smallRuns; r++ {
		t1 := time.Now()
		p.Shards("small", smallN, smallN, spin)
		contended += time.Since(t1)
	}
	contended /= smallRuns
	close(stop)
	flood.Wait()

	// The small tenant has its own goroutine (assist) plus a fair share of
	// the pool; a generous 10× bound catches starvation (an unfair FIFO
	// queue behind greedyN shards would be ~64× slower) without making the
	// test racy on loaded CI machines.
	if contended > 10*uncontended && contended > 100*time.Millisecond {
		t.Fatalf("small tenant starved: contended %v vs uncontended %v (>10×)", contended, uncontended)
	}
	if shards, _ := p.TenantStats("greedy"); shards == 0 {
		t.Fatal("greedy tenant ran no pooled shards — flood did not reach the pool")
	}
}

func TestQuotaQPS(t *testing.T) {
	g := NewGovernor(Quota{MaxQPS: 1}) // 1 QPS over a 10 s window = 10 requests
	now := time.Unix(1000, 0)
	g.now = func() time.Time { return now }
	for i := 0; i < qpsWindow; i++ {
		if qe := g.AdmitRequest("t"); qe != nil {
			t.Fatalf("request %d refused below the limit: %v", i, qe)
		}
	}
	qe := g.AdmitRequest("t")
	if qe == nil {
		t.Fatal("request over the QPS limit admitted")
	}
	if qe.Resource != "qps" || qe.RetryAfter <= 0 {
		t.Fatalf("bad quota error: %+v", qe)
	}
	if !errors.Is(qe, ErrResourceExhausted) {
		t.Fatal("QuotaError does not match ErrResourceExhausted")
	}
	// After the window slides past the burst the tenant is admitted again.
	now = now.Add(qpsWindow * time.Second)
	if qe := g.AdmitRequest("t"); qe != nil {
		t.Fatalf("request refused after the window slid: %v", qe)
	}
	// Other tenants are unaffected throughout.
	if qe := g.AdmitRequest("other"); qe != nil {
		t.Fatalf("unrelated tenant refused: %v", qe)
	}
}

func TestQuotaFolds(t *testing.T) {
	g := NewGovernor(Quota{MaxConcurrentFolds: 2})
	r1, qe := g.AcquireFold("t")
	if qe != nil {
		t.Fatal(qe)
	}
	r2, qe := g.AcquireFold("t")
	if qe != nil {
		t.Fatal(qe)
	}
	if _, qe = g.AcquireFold("t"); qe == nil || qe.Resource != "concurrent_folds" {
		t.Fatalf("third concurrent fold admitted: %v", qe)
	}
	if _, qe := g.AcquireFold("other"); qe != nil {
		t.Fatalf("unrelated tenant refused: %v", qe)
	}
	r1()
	r1() // release is idempotent
	if r3, qe := g.AcquireFold("t"); qe != nil {
		t.Fatalf("fold refused after release: %v", qe)
	} else {
		r3()
	}
	r2()
}

func TestQuotaPointsAndCells(t *testing.T) {
	g := NewGovernor(Quota{MaxPoints: 100, MaxCells: 50})
	if qe := g.AdmitPoints("t", 100); qe != nil {
		t.Fatal(qe)
	}
	g.AddPoints("t", 100)
	if qe := g.AdmitPoints("t", 1); qe == nil || qe.Resource != "points" {
		t.Fatalf("over-points append admitted: %v", qe)
	}
	g.AddPoints("t", -60)
	if qe := g.AdmitPoints("t", 10); qe != nil {
		t.Fatalf("append refused after removals freed quota: %v", qe)
	}
	g.SetSessionCells("t", "s1", 30)
	g.SetSessionCells("t", "s2", 40)
	if qe := g.AdmitPoints("t", 1); qe == nil || qe.Resource != "cells" {
		t.Fatalf("append admitted over the cells ceiling: %v", qe)
	}
	g.DropSession("t", "s2", 0)
	if qe := g.AdmitPoints("t", 1); qe != nil {
		t.Fatalf("append refused after a session dropped: %v", qe)
	}
	u := g.Usage("t")
	if u.Points != 40 || u.Cells != 30 || u.Quota.MaxPoints != 100 {
		t.Fatalf("bad usage snapshot: %+v", u)
	}
}

func TestQuotaOverride(t *testing.T) {
	g := NewGovernor(Quota{MaxPoints: 10})
	g.SetQuota("big", Quota{MaxPoints: 1000})
	if qe := g.AdmitPoints("big", 500); qe != nil {
		t.Fatalf("override not applied: %v", qe)
	}
	if qe := g.AdmitPoints("small", 500); qe == nil {
		t.Fatal("default quota not applied")
	}
}

func TestTenantContext(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	ctx := WithTenant(WithPool(t.Context(), p), "alice")
	if got, ok := PoolFrom(ctx); !ok || got != p {
		t.Fatal("pool not recovered from context")
	}
	if got := TenantFrom(ctx); got != "alice" {
		t.Fatalf("tenant %q", got)
	}
	if got := TenantFrom(t.Context()); got != DefaultTenant {
		t.Fatalf("default tenant %q", got)
	}
}
