package sched

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// DefaultTenant is the tenant a request without an API key (and every
// session created by one) is accounted under, so the single-user surface
// keeps working unchanged while still being governed.
const DefaultTenant = "default"

// qpsWindow is the sliding-window width of the request-rate quota, in
// one-second buckets.
const qpsWindow = 10

// ErrResourceExhausted is the taxonomy root of every quota rejection: a
// request refused at admission because the tenant is over one of its limits
// or the shared capacity is saturated. The request was NOT executed — after
// the QuotaError's RetryAfter it can be resent verbatim.
var ErrResourceExhausted = errors.New("adawave: resource exhausted")

// QuotaError reports which quota rejected the request, the tenant's current
// standing against the limit, and how long to wait before retrying. It
// matches errors.Is(err, ErrResourceExhausted).
type QuotaError struct {
	Tenant     string
	Resource   string // "points", "cells", "concurrent_folds", "qps", "resident_sessions"
	Current    float64
	Limit      float64
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("%v: tenant %q over %s quota (%.6g of limit %.6g), retry after %s",
		ErrResourceExhausted, e.Tenant, e.Resource, e.Current, e.Limit, e.RetryAfter)
}

func (e *QuotaError) Unwrap() error { return ErrResourceExhausted }

// Quota is one tenant's admission limits; a zero field means unlimited.
type Quota struct {
	// MaxPoints caps the tenant's total points across all its sessions.
	MaxPoints int64
	// MaxCells caps the tenant's total occupied grid cells across sessions,
	// as of each session's last fold (cells are a product of the data's
	// spread, so the ceiling is checked at the next mutation's admission,
	// not mid-pipeline).
	MaxCells int64
	// MaxConcurrentFolds caps how many of the tenant's requests may hold
	// engine compute (a fold/recluster/multiresolution pass) at once.
	MaxConcurrentFolds int
	// MaxQPS caps the tenant's request rate over a sliding 10 s window.
	MaxQPS float64
}

// usage is one tenant's live accounting.
type usage struct {
	points int64
	cells  map[string]int64 // session id → cells as of its last fold
	folds  int

	buckets [qpsWindow]int64 // per-second request counts, ring by unix second
	lastSec int64
}

// Governor enforces per-tenant quotas. It is safe for concurrent use. The
// serving layer calls Admit* at admission (cheap, O(1)) and the Add/Set/Drop
// bookkeeping methods as sessions mutate, so admission never has to walk the
// session registry.
type Governor struct {
	mu        sync.Mutex
	def       Quota
	overrides map[string]Quota
	tenants   map[string]*usage
	now       func() time.Time // injectable for tests
}

// NewGovernor returns a governor applying def to every tenant (override
// individual tenants with SetQuota).
func NewGovernor(def Quota) *Governor {
	return &Governor{
		def:       def,
		overrides: make(map[string]Quota),
		tenants:   make(map[string]*usage),
		now:       time.Now,
	}
}

// SetQuota overrides the default quota for one tenant.
func (g *Governor) SetQuota(tenant string, q Quota) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.overrides[tenant] = q
}

// QuotaFor returns the quota in force for a tenant.
func (g *Governor) QuotaFor(tenant string) Quota {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.quotaLocked(tenant)
}

func (g *Governor) quotaLocked(tenant string) Quota {
	if q, ok := g.overrides[tenant]; ok {
		return q
	}
	return g.def
}

func (g *Governor) usageLocked(tenant string) *usage {
	u := g.tenants[tenant]
	if u == nil {
		u = &usage{cells: make(map[string]int64)}
		g.tenants[tenant] = u
	}
	return u
}

// rollLocked advances the tenant's QPS ring to now, zeroing buckets that
// fell out of the window.
func (u *usage) rollLocked(nowSec int64) {
	if u.lastSec == 0 {
		u.lastSec = nowSec
		return
	}
	for s := u.lastSec + 1; s <= nowSec; s++ {
		u.buckets[s%qpsWindow] = 0
		if s-u.lastSec >= qpsWindow {
			for i := range u.buckets {
				u.buckets[i] = 0
			}
			break
		}
	}
	if nowSec > u.lastSec {
		u.lastSec = nowSec
	}
}

// AdmitRequest applies the QPS quota: within the rate the request is counted
// and admitted (nil); over it a QuotaError says how long until the window
// has room again. Unlimited (MaxQPS 0) still counts, so Usage can report the
// tenant's observed rate.
func (g *Governor) AdmitRequest(tenant string) *QuotaError {
	g.mu.Lock()
	defer g.mu.Unlock()
	q := g.quotaLocked(tenant)
	u := g.usageLocked(tenant)
	nowSec := g.now().Unix()
	u.rollLocked(nowSec)
	if q.MaxQPS > 0 {
		var sum int64
		for _, b := range u.buckets {
			sum += b
		}
		if rate := float64(sum) / qpsWindow; rate >= q.MaxQPS {
			// The oldest occupied bucket leaves the window after this many
			// seconds; that is the earliest the rate can have dropped.
			retry := time.Second
			for age := qpsWindow - 1; age >= 1; age-- {
				idx := ((nowSec-int64(age))%qpsWindow + qpsWindow) % qpsWindow
				if u.buckets[idx] > 0 {
					retry = time.Duration(qpsWindow-age) * time.Second
					break
				}
			}
			return &QuotaError{Tenant: tenant, Resource: "qps", Current: rate, Limit: q.MaxQPS, RetryAfter: retry}
		}
	}
	u.buckets[nowSec%qpsWindow]++
	return nil
}

// AcquireFold takes one of the tenant's concurrent-fold slots, returning the
// release function; over the cap it returns a QuotaError instead (retry once
// an in-flight fold finishes — the hint is one second).
func (g *Governor) AcquireFold(tenant string) (release func(), qe *QuotaError) {
	g.mu.Lock()
	defer g.mu.Unlock()
	q := g.quotaLocked(tenant)
	u := g.usageLocked(tenant)
	if q.MaxConcurrentFolds > 0 && u.folds >= q.MaxConcurrentFolds {
		return nil, &QuotaError{Tenant: tenant, Resource: "concurrent_folds",
			Current: float64(u.folds), Limit: float64(q.MaxConcurrentFolds), RetryAfter: time.Second}
	}
	u.folds++
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			u.folds--
			g.mu.Unlock()
		})
	}, nil
}

// AdmitPoints checks whether appending addPoints keeps the tenant within its
// points quota AND its current cell footprint within the cells quota; the
// caller commits with AddPoints only after the append succeeded.
func (g *Governor) AdmitPoints(tenant string, addPoints int64) *QuotaError {
	g.mu.Lock()
	defer g.mu.Unlock()
	q := g.quotaLocked(tenant)
	u := g.usageLocked(tenant)
	if q.MaxPoints > 0 && u.points+addPoints > q.MaxPoints {
		return &QuotaError{Tenant: tenant, Resource: "points",
			Current: float64(u.points), Limit: float64(q.MaxPoints), RetryAfter: time.Second}
	}
	if q.MaxCells > 0 {
		var cells int64
		for _, c := range u.cells {
			cells += c
		}
		if cells > q.MaxCells {
			return &QuotaError{Tenant: tenant, Resource: "cells",
				Current: float64(cells), Limit: float64(q.MaxCells), RetryAfter: time.Second}
		}
	}
	return nil
}

// AddPoints commits a point-count delta (appends positive, removals
// negative).
func (g *Governor) AddPoints(tenant string, delta int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.usageLocked(tenant)
	u.points += delta
	if u.points < 0 {
		u.points = 0
	}
}

// SetSessionCells records a session's occupied-cell count as of its last
// fold; the per-tenant sum is the cells quota's basis.
func (g *Governor) SetSessionCells(tenant, session string, cells int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.usageLocked(tenant).cells[session] = int64(cells)
}

// DropSession removes a deleted session's footprint from the tenant's
// accounting.
func (g *Governor) DropSession(tenant, session string, points int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.usageLocked(tenant)
	delete(u.cells, session)
	u.points -= int64(points)
	if u.points < 0 {
		u.points = 0
	}
}

// Usage is a tenant's standing, as reported by the usage endpoint.
type Usage struct {
	Points int64
	Cells  int64
	Folds  int
	QPS    float64 // observed request rate over the sliding window
	Quota  Quota
}

// Usage snapshots a tenant's accounting.
func (g *Governor) Usage(tenant string) Usage {
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.usageLocked(tenant)
	u.rollLocked(g.now().Unix())
	var sum, cells int64
	for _, b := range u.buckets {
		sum += b
	}
	for _, c := range u.cells {
		cells += c
	}
	return Usage{
		Points: u.points,
		Cells:  cells,
		Folds:  u.folds,
		QPS:    float64(sum) / qpsWindow,
		Quota:  g.quotaLocked(tenant),
	}
}
