package sched

import "context"

// The pool and the tenant ride the request context into the engine: the
// serving layer tags each request with WithPool + WithTenant, every
// ctx-taking pipeline stage hands its fan-out to grid.ParallelRangesCtx, and
// that helper draws shard execution from the context's pool under the
// context's tenant queue. Code without a pool in its context (the library
// facade, tests, the CLI) keeps the spawn-per-call behavior unchanged.

type poolKey struct{}
type tenantKey struct{}

// WithPool attaches the shared worker pool to ctx.
func WithPool(ctx context.Context, p *Pool) context.Context {
	return context.WithValue(ctx, poolKey{}, p)
}

// PoolFrom returns the pool attached to ctx, if any.
func PoolFrom(ctx context.Context) (*Pool, bool) {
	p, ok := ctx.Value(poolKey{}).(*Pool)
	return p, ok && p != nil
}

// WithTenant attaches the tenant id to ctx.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom returns the tenant attached to ctx, or DefaultTenant.
func TenantFrom(ctx context.Context) string {
	if t, ok := ctx.Value(tenantKey{}).(string); ok && t != "" {
		return t
	}
	return DefaultTenant
}
