// Package sched is the process-wide resource governor of the serving layer:
// one shared worker pool that every session's fan-out stages draw shard
// execution from (instead of spawning per-request goroutines), scheduled
// fairly across tenants by deficit round-robin; and per-tenant quotas —
// points, cells, concurrent folds, request rate — enforced at admission so
// an oversized tenant is answered with backpressure (a QuotaError carrying a
// retry-after hint, rendered as 429 + Retry-After on the wire) instead of
// queueing unboundedly behind everyone else's work.
//
// The pool is deliberately oblivious to what a shard computes: grid and core
// hand it the same (worker, lo, hi) closures they would have spawned
// goroutines for, tagged with the tenant carried by the request context (see
// context.go), so the engine's bit-identical-for-every-worker-count
// guarantee is untouched — the pool only changes *when* a shard runs, never
// what it computes or how the ranges are carved.
package sched

import (
	"runtime"
	"sync"
)

// DefaultQuantum is the deficit replenished per scheduler visit, in range
// elements (points or cells): one "turn" lets a tenant run about this much
// shard work before the scheduler moves on. Shards smaller than the quantum
// cost their true size; larger shards cost one full quantum.
const DefaultQuantum = 4096

// shard is one claimed range of a job's fan-out.
type shard struct{ w, lo, hi int }

// job is one Shards call: the closure, its pre-carved ranges, and the claim
// cursor. next is guarded by the pool mutex; every shard is claimed exactly
// once — by a pool worker through the DRR scheduler, or by the submitting
// goroutine's assist loop — and wg releases the submitter when the last
// claimed shard finishes.
type job struct {
	fn     func(worker, lo, hi int)
	shards []shard
	next   int
	wg     sync.WaitGroup
}

// tenantQueue is one tenant's FIFO of jobs plus its DRR deficit counter.
type tenantQueue struct {
	tenant  string
	deficit int
	jobs    []*job
	active  bool // currently in the scheduler ring

	// Cumulative scheduling stats, guarded by the pool mutex.
	shards int64
	elems  int64
}

// trim pops exhausted head jobs (their remaining shards were claimed by the
// submitter's assist loop).
func (q *tenantQueue) trim() {
	for len(q.jobs) > 0 && q.jobs[0].next >= len(q.jobs[0].shards) {
		q.jobs = q.jobs[1:]
	}
}

// Pool is the process-wide worker pool. Workers goroutines pull shards from
// the per-tenant queues under deficit round-robin: the scheduler visits
// tenants in ring order, each visit replenishes the tenant's deficit by one
// quantum when it cannot afford its next shard, and a tenant keeps serving
// shards while its deficit lasts — so a tenant with one queued job gets its
// turn within one ring pass no matter how many thousand shards a greedy
// tenant has queued ahead of it.
//
// Deadlock-freedom by construction: the goroutine that submits a fan-out
// also works on it. Shards handed to the pool can be claimed by the
// submitter's own assist loop while it waits, so a fan-out completes even
// when every pool worker is busy with other tenants (or the pool has zero
// workers); the pool bounds parallelism, it never gates progress.
type Pool struct {
	workers int
	quantum int

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string]*tenantQueue
	ring   []*tenantQueue
	cur    int
	closed bool
}

// NewPool starts a pool with the given worker count (≤ 0 selects
// runtime.GOMAXPROCS(0)) and the default quantum.
func NewPool(workers int) *Pool {
	return NewPoolQuantum(workers, DefaultQuantum)
}

// NewPoolQuantum is NewPool with an explicit DRR quantum (≤ 0 selects
// DefaultQuantum), exposed for fairness tests and tuning.
func NewPoolQuantum(workers, quantum int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	p := &Pool{workers: workers, quantum: quantum, queues: make(map[string]*tenantQueue)}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's worker goroutine count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the worker goroutines. Jobs still queued are finished by their
// submitters' assist loops; Shards called after Close runs inline.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// TenantStats reports the cumulative shards and range elements the scheduler
// has run for a tenant (work claimed by the tenant's own assist loops is not
// counted — it consumed the tenant's goroutine, not the shared pool).
func (p *Pool) TenantStats(tenant string) (shards, elems int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if q := p.queues[tenant]; q != nil {
		return q.shards, q.elems
	}
	return 0, 0
}

// queueLocked returns (creating if needed) the tenant's queue.
func (p *Pool) queueLocked(tenant string) *tenantQueue {
	q := p.queues[tenant]
	if q == nil {
		q = &tenantQueue{tenant: tenant}
		p.queues[tenant] = q
	}
	return q
}

// nextLocked claims the next shard under deficit round-robin, or reports
// none runnable. Every visit either serves the tenant at the cursor (cost
// charged to its deficit, cursor unmoved so its turn continues) or ends the
// tenant's turn (deficit replenished for its next turn, cursor advanced) —
// so after at most one full ring pass of replenishes some tenant serves, and
// an empty ring is the only way out without a claim.
func (p *Pool) nextLocked() (*job, shard, bool) {
	for len(p.ring) > 0 {
		if p.cur >= len(p.ring) {
			p.cur = 0
		}
		q := p.ring[p.cur]
		q.trim()
		if len(q.jobs) == 0 {
			q.active = false
			q.deficit = 0
			p.ring = append(p.ring[:p.cur], p.ring[p.cur+1:]...)
			continue
		}
		j := q.jobs[0]
		sh := j.shards[j.next]
		cost := sh.hi - sh.lo
		if cost > p.quantum {
			cost = p.quantum
		}
		if q.deficit < cost {
			q.deficit += p.quantum
			p.cur++
			continue
		}
		q.deficit -= cost
		j.next++
		q.shards++
		q.elems += int64(sh.hi - sh.lo)
		return j, sh, true
	}
	return nil, shard{}, false
}

func (p *Pool) worker() {
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return
		}
		if j, sh, ok := p.nextLocked(); ok {
			p.mu.Unlock()
			j.fn(sh.w, sh.lo, sh.hi)
			j.wg.Done()
			p.mu.Lock()
			continue
		}
		p.cond.Wait()
	}
}

// Shards runs fn over [0, n) split into at most maxShards contiguous ranges
// — the exact range carving of grid.ParallelRanges, so a pipeline stage
// computes identical results whether its shards ran on spawned goroutines or
// on the pool — under the given tenant's DRR queue. It returns after every
// range has been processed. With maxShards ≤ 1 (or n ≤ 1) fn runs inline.
func (p *Pool) Shards(tenant string, n, maxShards int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if maxShards > n {
		maxShards = n
	}
	if maxShards <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + maxShards - 1) / maxShards
	shards := make([]shard, 0, maxShards)
	w := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		shards = append(shards, shard{w, lo, hi})
		w++
	}
	j := &job{fn: fn, shards: shards}
	j.wg.Add(len(shards))

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		for _, sh := range shards {
			fn(sh.w, sh.lo, sh.hi)
			j.wg.Done()
		}
		return
	}
	q := p.queueLocked(tenant)
	q.jobs = append(q.jobs, j)
	if !q.active {
		q.active = true
		p.ring = append(p.ring, q)
	}
	p.cond.Broadcast()
	// Assist loop: claim this job's unclaimed shards and run them on the
	// submitting goroutine, so the fan-out makes progress even when every
	// pool worker is serving other tenants. Assisted work is not charged to
	// the tenant's deficit — it spends the request's own goroutine, not the
	// shared pool.
	for j.next < len(j.shards) {
		sh := j.shards[j.next]
		j.next++
		p.mu.Unlock()
		fn(sh.w, sh.lo, sh.hi)
		j.wg.Done()
		p.mu.Lock()
	}
	p.mu.Unlock()
	j.wg.Wait()
}
