package datasets

import (
	"math/rand"

	"adawave/internal/synth"
)

// classSpec drives the generic mixture generator: one Gaussian component
// per class with a mean vector and per-dimension standard deviations.
type classSpec struct {
	n     int
	mean  []float64
	std   []float64
	label int
}

// mixture samples every classSpec in order. The per-class order is fixed so
// generation is deterministic in the seed.
func mixture(name string, rng *rand.Rand, specs []classSpec) *synth.Dataset {
	d := &synth.Dataset{Name: name}
	for _, s := range specs {
		pts := synth.GaussianBlob(rng, s.n, s.mean, s.std)
		d.Points = append(d.Points, pts...)
		for range pts {
			d.Labels = append(d.Labels, s.label)
		}
	}
	return d
}

// constVec returns a d-vector filled with v.
func constVec(d int, v float64) []float64 {
	out := make([]float64, d)
	for i := range out {
		out[i] = v
	}
	return out
}

// Seeds mimics the UCI Seeds dataset: 210 wheat kernels × 7 geometric
// measurements, three varieties of 70. Kama and Rosa overlap moderately;
// Canadian sits a little apart — centroid methods do well, density methods
// merge the overlap (the paper scores k-means 0.607, DBSCAN 0.000).
func Seeds(seed int64) *synth.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := 7
	return mixture("seeds", rng, []classSpec{
		{70, []float64{0.35, 0.40, 0.45, 0.40, 0.35, 0.45, 0.40}, constVec(d, 0.105), 0},
		{70, []float64{0.55, 0.58, 0.50, 0.56, 0.55, 0.52, 0.58}, constVec(d, 0.105), 1},
		{70, []float64{0.78, 0.74, 0.80, 0.76, 0.78, 0.72, 0.78}, constVec(d, 0.09), 2},
	})
}

// Iris mimics the UCI Iris dataset: 150 × 4, three species of 50. Setosa is
// linearly separable; versicolor and virginica interlock (the classic
// difficulty that caps clustering metrics well below 1).
func Iris(seed int64) *synth.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := 4
	return mixture("iris", rng, []classSpec{
		{50, []float64{0.15, 0.60, 0.10, 0.08}, constVec(d, 0.05), 0}, // setosa: far pocket
		{50, []float64{0.55, 0.40, 0.55, 0.52}, constVec(d, 0.075), 1},
		{50, []float64{0.68, 0.45, 0.70, 0.70}, constVec(d, 0.085), 2}, // overlaps class 1
	})
}

// DUMDH mimics the paper's 869 × 13 dataset: four heavily overlapping
// components in 13 dimensions where only a subset of attributes carries
// class signal — every method lands in the 0.1–0.5 AMI band in Table I.
func DUMDH(seed int64) *synth.Dataset {
	rng := rand.New(rand.NewSource(seed))
	const dim = 13
	base := constVec(dim, 0.5)
	specs := make([]classSpec, 4)
	sizes := []int{290, 250, 190, 139} // 869 total
	// Each class shifts a different sparse subset of attributes.
	shifts := [][]int{{0, 3, 7}, {1, 4, 8}, {2, 5, 9}, {0, 6, 10}}
	for c := range specs {
		mean := append([]float64(nil), base...)
		for _, j := range shifts[c] {
			mean[j] += 0.22
			if c%2 == 1 {
				mean[j] -= 0.44
			}
		}
		specs[c] = classSpec{sizes[c], mean, constVec(dim, 0.11), c}
	}
	return mixture("dumdh", rng, specs)
}

// HTRU2 mimics the UCI HTRU2 pulsar dataset: 17 898 × 9 with a 9:1
// class imbalance (1 639 pulsars vs 16 259 spurious candidates). The
// majority class is a broad unimodal mass, the minority a denser offset
// pocket partially inside it — all methods score low (≤ 0.22 in Table I).
func HTRU2(seed int64) *synth.Dataset {
	rng := rand.New(rand.NewSource(seed))
	const dim = 9
	negMean := constVec(dim, 0.45)
	posMean := constVec(dim, 0.45)
	// The pulsar class separates on a minority of the profile statistics.
	for _, j := range []int{0, 2, 5} {
		posMean[j] = 0.72
	}
	return mixture("htru2", rng, []classSpec{
		{16259, negMean, constVec(dim, 0.10), 0},
		{1639, posMean, constVec(dim, 0.07), 1},
	})
}

// Dermatology mimics the UCI dermatology dataset: 366 × 33, six
// erythemato-squamous diseases with the published class sizes. Each disease
// activates its own block of clinical attributes, giving high-dimensional
// but fairly separable structure (most methods score ≥ 0.6 in Table I).
func Dermatology(seed int64) *synth.Dataset {
	rng := rand.New(rand.NewSource(seed))
	const dim = 33
	sizes := []int{112, 61, 72, 49, 52, 20}
	specs := make([]classSpec, len(sizes))
	for c := range specs {
		mean := constVec(dim, 0.2)
		// Each class raises a 5-attribute block plus one shared marker.
		for t := 0; t < 5; t++ {
			mean[(c*5+t)%30] = 0.75
		}
		mean[30+c%3] = 0.6
		specs[c] = classSpec{sizes[c], mean, constVec(dim, 0.09), c}
	}
	return mixture("dermatology", rng, specs)
}

// Motor mimics the paper's 94 × 3 Motor dataset, on which every working
// method scores AMI 1.000: three tiny, widely separated clusters.
func Motor(seed int64) *synth.Dataset {
	rng := rand.New(rand.NewSource(seed))
	return mixture("motor", rng, []classSpec{
		{32, []float64{0.15, 0.15, 0.20}, constVec(3, 0.02), 0},
		{32, []float64{0.50, 0.80, 0.50}, constVec(3, 0.02), 1},
		{30, []float64{0.85, 0.25, 0.80}, constVec(3, 0.02), 2},
	})
}

// Wholesale mimics the UCI Wholesale customers dataset: 440 × 8 with two
// channels (298 horeca, 142 retail) whose annual-spending profiles share a
// lot of mass — a mid-difficulty two-class problem.
func Wholesale(seed int64) *synth.Dataset {
	rng := rand.New(rand.NewSource(seed))
	const dim = 8
	horeca := constVec(dim, 0.40)
	retail := constVec(dim, 0.40)
	// Retail spends on grocery/detergents/milk-like axes.
	for _, j := range []int{1, 2, 5} {
		retail[j] = 0.72
	}
	// Horeca on fresh/frozen-like axes.
	for _, j := range []int{0, 3} {
		horeca[j] = 0.65
	}
	return mixture("wholesale", rng, []classSpec{
		{298, horeca, constVec(dim, 0.09), 0},
		{142, retail, constVec(dim, 0.09), 1},
	})
}
