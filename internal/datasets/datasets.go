// Package datasets provides deterministic stand-ins for the nine UCI
// datasets of the paper's Table I and the North Jutland road network of its
// Fig. 9 case study. The module is offline, so the real files cannot be
// downloaded; each generator reproduces the published shape of its dataset —
// the same number of points, dimensions and classes, and a comparable
// difficulty profile (class separability, attribute-class correlation,
// imbalance) — so that the ranking pressure on the clustering algorithms is
// preserved even though absolute metric values differ from the paper.
// See DESIGN.md §3 for the substitution rationale.
package datasets

import (
	"fmt"
	"sort"
	"strings"

	"adawave/internal/synth"
)

// Meta describes one Table I dataset: the published size and class count
// plus the number of clusters a clustering algorithm should be asked for.
type Meta struct {
	// Name is the paper's dataset name (lowercase key).
	Name string
	// N and D are the published point count and dimensionality.
	N, D int
	// Classes is the published number of semantic classes.
	Classes int
	// Description summarizes what the stand-in mimics.
	Description string
}

// registry lists the Table I datasets in paper order.
var registry = []struct {
	meta Meta
	gen  func(seed int64) *synth.Dataset
}{
	{Meta{"seeds", 210, 7, 3, "three moderately overlapping wheat varieties"}, Seeds},
	{Meta{"roadmap", 434874, 2, 9, "road network: dense city clusters in structured background (scaled default; see Roadmap)"},
		func(seed int64) *synth.Dataset { return Roadmap(DefaultRoadmapN, seed) }},
	{Meta{"iris", 150, 4, 3, "one separable class, two entangled"}, Iris},
	{Meta{"glass", 214, 9, 6, "weak per-attribute class correlation (Table II profile)"}, Glass},
	{Meta{"dumdh", 869, 13, 4, "mid-size, mid-dimension, heavy class overlap"}, DUMDH},
	{Meta{"htru2", 17898, 9, 2, "pulsar screening: 9:1 class imbalance"}, HTRU2},
	{Meta{"dermatology", 366, 33, 6, "high-dimensional clinical profiles, block-correlated attributes"}, Dermatology},
	{Meta{"motor", 94, 3, 3, "trivially separable (every working method scores 1.0)"}, Motor},
	{Meta{"wholesale", 440, 8, 2, "two spending profiles with shared mass"}, Wholesale},
}

// Names returns the dataset keys in Table I order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.meta.Name
	}
	return out
}

// Describe returns the Meta for a dataset key.
func Describe(name string) (Meta, error) {
	key := strings.ToLower(name)
	for _, e := range registry {
		if e.meta.Name == key {
			return e.meta, nil
		}
	}
	return Meta{}, fmt.Errorf("datasets: unknown dataset %q (have %s)", name, strings.Join(Names(), ", "))
}

// ByName generates the stand-in for a dataset key. Generation is
// deterministic in the seed.
func ByName(name string, seed int64) (*synth.Dataset, error) {
	key := strings.ToLower(name)
	for _, e := range registry {
		if e.meta.Name == key {
			return e.gen(seed), nil
		}
	}
	return nil, fmt.Errorf("datasets: unknown dataset %q (have %s)", name, strings.Join(Names(), ", "))
}

// All generates every Table I stand-in in paper order.
func All(seed int64) []*synth.Dataset {
	out := make([]*synth.Dataset, len(registry))
	for i, e := range registry {
		out[i] = e.gen(seed)
	}
	return out
}

// ClassSizes returns the per-class point counts of a labeled dataset in
// ascending label order (noise excluded).
func ClassSizes(d *synth.Dataset) []int {
	counts := make(map[int]int)
	for _, l := range d.Labels {
		if l != synth.NoiseLabel {
			counts[l]++
		}
	}
	labels := make([]int, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	out := make([]int, len(labels))
	for i, l := range labels {
		out[i] = counts[l]
	}
	return out
}
