package datasets

import (
	"math"
	"math/rand"

	"adawave/internal/synth"
)

// GlassAttributes names the nine attributes of the Glass dataset in the
// order of the paper's Table II.
var GlassAttributes = []string{"RI", "Na", "Mg", "Al", "Si", "K", "Ca", "Ba", "Fe"}

// GlassTargetCorrelations are the per-attribute correlations with the class
// reported in the paper's Table II; the stand-in generator is built to
// reproduce them in expectation.
var GlassTargetCorrelations = []float64{
	-0.1642, 0.5030, -0.7447, 0.5988, 0.1515, -0.0100, 0.0007, 0.5751, -0.1879,
}

// glassClassSizes are the published per-type counts of the UCI Glass
// identification dataset (214 samples, 6 present types).
var glassClassSizes = []int{70, 76, 17, 13, 9, 29}

// Glass mimics the UCI Glass identification dataset: 214 × 9, six classes
// with the published sizes, and — the property Table II documents and the
// paper's case study leans on — per-attribute class correlations matching
// the published values. Attribute j is generated as
//
//	xⱼ = rⱼ·z + √(1−rⱼ²)·(ρ·w + √(1−ρ²)·ε)
//
// where z is the standardized numeric class value, rⱼ the Table II target,
// w a per-class offset orthogonalized against z (class structure invisible
// to any single attribute's correlation), and ε unit Gaussian noise. By
// construction Pearson(xⱼ, class) ≈ rⱼ while the classes still occupy
// distinct regions of the 9-dimensional space.
func Glass(seed int64) *synth.Dataset {
	rng := rand.New(rand.NewSource(seed))
	nClasses := len(glassClassSizes)
	total := 0
	for _, n := range glassClassSizes {
		total += n
	}

	// Standardized numeric class values (size-weighted).
	z := make([]float64, nClasses)
	var mean, sq float64
	for c, n := range glassClassSizes {
		v := float64(c + 1)
		mean += v * float64(n)
	}
	mean /= float64(total)
	for c, n := range glassClassSizes {
		v := float64(c+1) - mean
		z[c] = v
		sq += v * v * float64(n)
	}
	sd := math.Sqrt(sq / float64(total))
	for c := range z {
		z[c] /= sd
	}

	// Per-class, per-attribute offsets w, orthogonalized against z under
	// the size weighting and scaled to unit weighted variance, so they add
	// class structure without moving the attribute-class correlation.
	dim := len(GlassTargetCorrelations)
	w := make([][]float64, nClasses)
	for c := range w {
		w[c] = make([]float64, dim)
		for j := range w[c] {
			w[c][j] = rng.NormFloat64()
		}
	}
	for j := 0; j < dim; j++ {
		var wz, ww float64
		for c, n := range glassClassSizes {
			wz += w[c][j] * z[c] * float64(n)
		}
		wz /= float64(total)
		for c := range w {
			w[c][j] -= wz * z[c]
		}
		for c, n := range glassClassSizes {
			ww += w[c][j] * w[c][j] * float64(n)
		}
		ww = math.Sqrt(ww / float64(total))
		if ww < 1e-12 {
			ww = 1
		}
		for c := range w {
			w[c][j] /= ww
		}
	}

	const (
		rho   = 0.5  // share of residual variance carrying class structure
		scale = 0.12 // map the standardized mix into a compact [0,1] range
	)
	d := &synth.Dataset{Name: "glass"}
	for c, n := range glassClassSizes {
		for i := 0; i < n; i++ {
			p := make([]float64, dim)
			for j := 0; j < dim; j++ {
				r := GlassTargetCorrelations[j]
				resid := math.Sqrt(1 - r*r)
				v := r*z[c] + resid*(rho*w[c][j]+math.Sqrt(1-rho*rho)*rng.NormFloat64())
				p[j] = 0.5 + scale*v
			}
			d.Points = append(d.Points, p)
			d.Labels = append(d.Labels, c)
		}
	}
	return d
}
