package datasets

import (
	"math"
	"testing"

	"adawave/internal/stats"
	"adawave/internal/synth"
)

func TestRegistryShapes(t *testing.T) {
	// Every stand-in must reproduce the published (n, d, classes) of
	// Table I. Roadmap's n is configurable (the registry default is the
	// scaled-down size), so it is checked separately.
	for _, name := range Names() {
		meta, err := Describe(name)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		wantN := meta.N
		if name == "roadmap" {
			wantN = DefaultRoadmapN
		}
		if got := ds.N(); got < wantN*95/100 || got > wantN*105/100 {
			t.Errorf("%s: n = %d, want ≈ %d", name, got, wantN)
		}
		if got := ds.Dim(); got != meta.D {
			t.Errorf("%s: d = %d, want %d", name, got, meta.D)
		}
		if got := ds.NumClusters(); got != meta.Classes {
			t.Errorf("%s: classes = %d, want %d", name, got, meta.Classes)
		}
	}
}

func TestExactSizes(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
	}{
		{"seeds", 210}, {"iris", 150}, {"glass", 214}, {"dumdh", 869},
		{"htru2", 17898}, {"dermatology", 366}, {"motor", 94}, {"wholesale", 440},
	} {
		ds, err := ByName(tc.name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ds.N() != tc.n {
			t.Errorf("%s: n = %d, want exactly %d", tc.name, ds.N(), tc.n)
		}
	}
}

func TestUnknownName(t *testing.T) {
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("unknown dataset should error")
	}
	if _, err := Describe("nope"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range []string{"seeds", "glass", "motor"} {
		a, _ := ByName(name, 7)
		b, _ := ByName(name, 7)
		if a.N() != b.N() {
			t.Fatalf("%s: sizes differ across identical seeds", name)
		}
		for i := range a.Points {
			for j := range a.Points[i] {
				if a.Points[i][j] != b.Points[i][j] {
					t.Fatalf("%s: point %d differs across identical seeds", name, i)
				}
			}
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	a, _ := ByName("seeds", 1)
	b, _ := ByName("seeds", 2)
	same := true
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != b.Points[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGlassCorrelationsMatchTableII(t *testing.T) {
	// The Glass stand-in is built so that each attribute's correlation
	// with the numeric class matches the paper's Table II. With n = 214
	// the sampling error of a correlation is ≈ 1/√214 ≈ 0.07.
	ds := Glass(5)
	class := make([]float64, ds.N())
	for i, l := range ds.Labels {
		class[i] = float64(l + 1)
	}
	for j, want := range GlassTargetCorrelations {
		got := stats.Pearson(stats.Column(ds.Points, j), class)
		if math.Abs(got-want) > 0.12 {
			t.Errorf("attribute %s: correlation %.4f, want %.4f ± 0.12",
				GlassAttributes[j], got, want)
		}
	}
}

func TestGlassClassSizes(t *testing.T) {
	ds := Glass(1)
	sizes := ClassSizes(ds)
	want := []int{70, 76, 17, 13, 9, 29}
	if len(sizes) != len(want) {
		t.Fatalf("got %d classes, want %d", len(sizes), len(want))
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("class sizes %v, want %v", sizes, want)
		}
	}
}

func TestHTRU2Imbalance(t *testing.T) {
	ds := HTRU2(1)
	sizes := ClassSizes(ds)
	if len(sizes) != 2 {
		t.Fatalf("got %d classes, want 2", len(sizes))
	}
	if sizes[0] != 16259 || sizes[1] != 1639 {
		t.Fatalf("class sizes %v, want [16259 1639]", sizes)
	}
}

func TestDermatologyClassSizes(t *testing.T) {
	sizes := ClassSizes(Dermatology(1))
	want := []int{112, 61, 72, 49, 52, 20}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("class sizes %v, want %v", sizes, want)
		}
	}
}

func TestRoadmapStructure(t *testing.T) {
	ds := Roadmap(20000, 2)
	if got := ds.N(); got < 19000 || got > 21000 {
		t.Fatalf("n = %d, want ≈ 20000", got)
	}
	if ds.Dim() != 2 {
		t.Fatalf("d = %d, want 2", ds.Dim())
	}
	if got := ds.NumClusters(); got != len(RoadmapCities()) {
		t.Fatalf("clusters = %d, want %d cities", got, len(RoadmapCities()))
	}
	// The majority of segments must be noise (arterials + countryside).
	if frac := ds.NoiseFraction(); frac < 0.5 || frac > 0.8 {
		t.Fatalf("noise fraction = %.2f, want within [0.5, 0.8]", frac)
	}
	// All points inside the bounding box (up to city-blob Gaussian tails).
	out := 0
	for _, p := range ds.Points {
		if p[0] < roadmapMin[0]-0.3 || p[0] > roadmapMax[0]+0.3 ||
			p[1] < roadmapMin[1]-0.3 || p[1] > roadmapMax[1]+0.3 {
			out++
		}
	}
	if out > ds.N()/100 {
		t.Fatalf("%d points far outside the bounding box", out)
	}
}

func TestRoadmapDefaultN(t *testing.T) {
	ds := Roadmap(0, 1)
	if got := ds.N(); got < DefaultRoadmapN*95/100 || got > DefaultRoadmapN*105/100 {
		t.Fatalf("default n = %d, want ≈ %d", got, DefaultRoadmapN)
	}
}

func TestAllCount(t *testing.T) {
	all := All(1)
	if len(all) != 9 {
		t.Fatalf("All returned %d datasets, want 9", len(all))
	}
}

func TestClassSizesIgnoresNoise(t *testing.T) {
	d := &synth.Dataset{
		Labels: []int{0, 0, 1, synth.NoiseLabel, 1, 1},
		Points: make([][]float64, 6),
	}
	sizes := ClassSizes(d)
	if len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 3 {
		t.Fatalf("ClassSizes = %v, want [2 3]", sizes)
	}
}

// TestFlatRoundTrip: every stand-in's Flat() dataset must mirror its
// [][]float64 points exactly — the flat clustering path sees the same data.
func TestFlatRoundTrip(t *testing.T) {
	for _, d := range All(1) {
		flat := d.Flat()
		if flat.N != d.N() || flat.D != d.Dim() {
			t.Fatalf("%s: flat shape %dx%d, want %dx%d", d.Name, flat.N, flat.D, d.N(), d.Dim())
		}
		for i, p := range d.Points {
			row := flat.Row(i)
			for j, v := range p {
				if row[j] != v {
					t.Fatalf("%s: point %d col %d: %v != %v", d.Name, i, j, row[j], v)
				}
			}
		}
	}
}
