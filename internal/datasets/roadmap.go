package datasets

import (
	"math/rand"

	"adawave/internal/synth"
)

// DefaultRoadmapN is the default size of the generated road network. The
// real dataset has 434 874 segments; the default keeps tests and examples
// quick while the benchmark harness generates the full size.
const DefaultRoadmapN = 40000

// RoadmapFullN is the published size of the North Jutland road network.
const RoadmapFullN = 434874

// City is a populated place of the simulated road network. Weight is
// proportional to its share of urban road segments.
type City struct {
	Name     string
	Lon, Lat float64
	Weight   float64
}

// roadmapCities approximates the real geography of North Jutland, Denmark
// (the Fig. 9 case study): the three cities the paper names as detected
// clusters plus smaller towns that thicken the urban share.
var roadmapCities = []City{
	{"Aalborg", 9.92, 57.05, 5.0},
	{"Hjørring", 9.98, 57.46, 1.4},
	{"Frederikshavn", 10.54, 57.44, 1.3},
	{"Thisted", 8.69, 56.96, 0.9},
	{"Brønderslev", 9.95, 57.27, 0.7},
	{"Hobro", 9.79, 56.64, 0.7},
	{"Sæby", 10.52, 57.33, 0.5},
	{"Aars", 9.51, 56.80, 0.5},
	{"Skagen", 10.58, 57.72, 0.4},
}

// roadmapEdges are the arterial connections between city indices.
var roadmapEdges = [][2]int{
	{0, 1}, {1, 2}, {0, 4}, {4, 1}, {2, 6}, {0, 6}, {0, 5}, {5, 7},
	{0, 7}, {3, 7}, {2, 8}, {1, 8},
}

// roadmap bounding box (lon, lat).
var (
	roadmapMin = []float64{8.15, 56.55}
	roadmapMax = []float64{10.65, 57.78}
)

// RoadmapCities returns the simulated cities (copy; safe to modify).
func RoadmapCities() []City {
	return append([]City(nil), roadmapCities...)
}

// Roadmap simulates the North Jutland 2-D road network of the paper's
// Fig. 9 case study with n road segments: dense city street grids (the
// ground-truth clusters — the paper verifies AdaWave's output against
// populated areas), arterial roads connecting the cities, and sparse
// countryside roads. Arterials and countryside are ground-truth noise: “the
// majority of road segments can be termed as noise: long arterials
// connecting cities, or less-dense road networks in the … countryside”.
func Roadmap(n int, seed int64) *synth.Dataset {
	if n <= 0 {
		n = DefaultRoadmapN
	}
	rng := rand.New(rand.NewSource(seed))
	d := &synth.Dataset{Name: "roadmap"}

	nCity := n * 38 / 100
	nArterial := n * 34 / 100
	nCountry := n - nCity - nArterial

	// City street grids: anisotropic Gaussian clouds sized by weight.
	var totalW float64
	for _, c := range roadmapCities {
		totalW += c.Weight
	}
	for ci, c := range roadmapCities {
		share := int(float64(nCity) * c.Weight / totalW)
		if share < 1 {
			share = 1
		}
		// Streets spread further along the coastline axis than inland.
		std := []float64{0.020 + 0.006*c.Weight/5, 0.012 + 0.004*c.Weight/5}
		pts := synth.GaussianBlob(rng, share, []float64{c.Lon, c.Lat}, std)
		for _, p := range pts {
			d.Points = append(d.Points, p)
			d.Labels = append(d.Labels, ci)
		}
	}

	// Arterials: points along the city-to-city segments with jitter —
	// structured noise, the hard part of the case study.
	perEdge := nArterial / len(roadmapEdges)
	for _, e := range roadmapEdges {
		a, b := roadmapCities[e[0]], roadmapCities[e[1]]
		pts := synth.Segment(rng, perEdge, a.Lon, a.Lat, b.Lon, b.Lat, 0.004)
		for _, p := range pts {
			d.Points = append(d.Points, p)
			d.Labels = append(d.Labels, synth.NoiseLabel)
		}
	}

	// Countryside: a blend of sparse uniform coverage and short rural road
	// stubs.
	nStub := nCountry / 2
	nUniform := nCountry - nStub
	for _, p := range synth.UniformBox(rng, nUniform, roadmapMin, roadmapMax) {
		d.Points = append(d.Points, p)
		d.Labels = append(d.Labels, synth.NoiseLabel)
	}
	stubs := nStub / 25
	if stubs < 1 {
		stubs = 1
	}
	for s := 0; s < stubs; s++ {
		x := roadmapMin[0] + rng.Float64()*(roadmapMax[0]-roadmapMin[0])
		y := roadmapMin[1] + rng.Float64()*(roadmapMax[1]-roadmapMin[1])
		dx := (rng.Float64() - 0.5) * 0.2
		dy := (rng.Float64() - 0.5) * 0.2
		for _, p := range synth.Segment(rng, 25, x, y, x+dx, y+dy, 0.002) {
			d.Points = append(d.Points, p)
			d.Labels = append(d.Labels, synth.NoiseLabel)
		}
	}
	return d
}
