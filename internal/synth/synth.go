// Package synth generates the synthetic datasets of the AdaWave paper:
// shape primitives (Gaussian blobs, rings, line segments, rotated
// ellipses, uniform background noise), the Fig. 7 evaluation mixture
// (ellipse + two projection-overlapping rings + two parallel sloping lines,
// with a configurable uniform-noise percentage), and the Fig. 1 running
// example. All generators are deterministic given a seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"adawave/internal/pointset"
)

// NoiseLabel marks ground-truth noise points.
const NoiseLabel = -1

// Dataset is a labeled point set. Labels[i] is the ground-truth cluster of
// Points[i], or NoiseLabel.
type Dataset struct {
	Name   string
	Points [][]float64
	Labels []int
}

// N returns the number of points.
func (d *Dataset) N() int { return len(d.Points) }

// Dim returns the dimensionality (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.Points) == 0 {
		return 0
	}
	return len(d.Points[0])
}

// NumClusters returns the number of distinct non-noise ground-truth labels.
func (d *Dataset) NumClusters() int {
	seen := make(map[int]struct{})
	for _, l := range d.Labels {
		if l != NoiseLabel {
			seen[l] = struct{}{}
		}
	}
	return len(seen)
}

// NoiseFraction returns the fraction of ground-truth noise points.
func (d *Dataset) NoiseFraction() float64 {
	if len(d.Labels) == 0 {
		return 0
	}
	n := 0
	for _, l := range d.Labels {
		if l == NoiseLabel {
			n++
		}
	}
	return float64(n) / float64(len(d.Labels))
}

// Flat returns the points as a flat row-major pointset.Dataset (one copy)
// for the allocation-free clustering entry points.
func (d *Dataset) Flat() *pointset.Dataset {
	return pointset.MustFromSlices(d.Points)
}

// append adds points with the given label.
func (d *Dataset) append(pts [][]float64, label int) {
	d.Points = append(d.Points, pts...)
	for range pts {
		d.Labels = append(d.Labels, label)
	}
}

// Shuffle permutes the dataset in place (points and labels together) —
// used by order-insensitivity tests.
func (d *Dataset) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(d.Points), func(i, j int) {
		d.Points[i], d.Points[j] = d.Points[j], d.Points[i]
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	})
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Name: d.Name, Labels: append([]int(nil), d.Labels...)}
	out.Points = make([][]float64, len(d.Points))
	for i, p := range d.Points {
		out.Points[i] = append([]float64(nil), p...)
	}
	return out
}

// GaussianBlob samples n points from an axis-aligned Gaussian centered at
// center with per-dimension standard deviations std (len(std) must equal
// len(center)).
func GaussianBlob(rng *rand.Rand, n int, center, std []float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, len(center))
		for j := range p {
			p[j] = center[j] + rng.NormFloat64()*std[j]
		}
		out[i] = p
	}
	return out
}

// Ring samples n points from an annulus of the given radius and Gaussian
// radial thickness around (cx, cy).
func Ring(rng *rand.Rand, n int, cx, cy, radius, thickness float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		theta := rng.Float64() * 2 * math.Pi
		r := radius + rng.NormFloat64()*thickness
		out[i] = []float64{cx + r*math.Cos(theta), cy + r*math.Sin(theta)}
	}
	return out
}

// Segment samples n points uniformly along the segment (x1,y1)–(x2,y2)
// with isotropic Gaussian jitter.
func Segment(rng *rand.Rand, n int, x1, y1, x2, y2, jitter float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		t := rng.Float64()
		out[i] = []float64{
			x1 + t*(x2-x1) + rng.NormFloat64()*jitter,
			y1 + t*(y2-y1) + rng.NormFloat64()*jitter,
		}
	}
	return out
}

// EllipseCloud samples n points from a rotated anisotropic Gaussian:
// semi-axis standard deviations (a, b), rotated by angle radians around
// (cx, cy) — the paper's “typical cluster roughly within an ellipse”.
func EllipseCloud(rng *rand.Rand, n int, cx, cy, a, b, angle float64) [][]float64 {
	cosA, sinA := math.Cos(angle), math.Sin(angle)
	out := make([][]float64, n)
	for i := range out {
		u := rng.NormFloat64() * a
		v := rng.NormFloat64() * b
		out[i] = []float64{cx + u*cosA - v*sinA, cy + u*sinA + v*cosA}
	}
	return out
}

// UniformBox samples n points uniformly from the axis-aligned box
// [mins, maxs].
func UniformBox(rng *rand.Rand, n int, mins, maxs []float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, len(mins))
		for j := range p {
			p[j] = mins[j] + rng.Float64()*(maxs[j]-mins[j])
		}
		out[i] = p
	}
	return out
}

// NoiseCountFor returns how many uniform-noise points must be added to
// nCluster cluster points for noise to make up fraction gamma of the total.
func NoiseCountFor(nCluster int, gamma float64) int {
	if gamma <= 0 {
		return 0
	}
	if gamma >= 1 {
		panic(fmt.Sprintf("synth: noise fraction %v must be < 1", gamma))
	}
	return int(math.Round(gamma / (1 - gamma) * float64(nCluster)))
}

// Evaluation builds the paper's Fig. 7 synthetic evaluation dataset:
// five clusters of perCluster points each in [0,1]² — one rotated ellipse,
// two rings whose x and y projections overlap (so no per-dimension
// projection is unimodal), and two parallel sloping line segments — plus
// uniform background noise making up fraction gamma of the full dataset.
// The paper uses perCluster = 5600 and gamma ∈ {0.20 … 0.90}.
func Evaluation(perCluster int, gamma float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: fmt.Sprintf("synthetic-%d%%", int(math.Round(gamma*100)))}
	// Cluster 0: rotated ellipse cloud, upper left.
	d.append(EllipseCloud(rng, perCluster, 0.20, 0.78, 0.08, 0.03, math.Pi/7), 0)
	// Clusters 1 and 2: rings of radius 0.10 whose centers differ by 0.19
	// in both x and y — their axis projections overlap (no dimension is
	// unimodal) while the circles themselves stay ≈0.07 apart.
	d.append(Ring(rng, perCluster, 0.56, 0.62, 0.10, 0.006), 1)
	d.append(Ring(rng, perCluster, 0.75, 0.43, 0.10, 0.006), 2)
	// Clusters 3 and 4: parallel sloping segments, lower left.
	d.append(Segment(rng, perCluster, 0.08, 0.08, 0.46, 0.28, 0.008), 3)
	d.append(Segment(rng, perCluster, 0.08, 0.20, 0.46, 0.40, 0.008), 4)
	noise := NoiseCountFor(5*perCluster, gamma)
	d.append(UniformBox(rng, noise, []float64{0, 0}, []float64{1, 1}), NoiseLabel)
	return d
}

// RunningExample builds the paper's Fig. 1 running example: five clusters
// of heterogeneous type (blob, nested ring around a blob, a large ring and
// two parallel lines) drowned in ~70 % uniform noise — the configuration on
// which the paper reports k-means 0.25, DBSCAN 0.28 and AdaWave 0.76 AMI.
func RunningExample(seed int64) *Dataset { return RunningExampleSized(1600, seed) }

// RunningExampleSized is RunningExample with a configurable cluster size,
// so quick test runs can shrink the workload without changing its shape.
func RunningExampleSized(per int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: "running-example"}
	// Cluster 0: dense blob upper-right.
	d.append(GaussianBlob(rng, per, []float64{0.78, 0.78}, []float64{0.05, 0.05}), 0)
	// Cluster 1: blob nested inside cluster 2's ring (concentric shapes).
	d.append(GaussianBlob(rng, per, []float64{0.25, 0.72}, []float64{0.03, 0.03}), 1)
	// Cluster 2: ring around cluster 1.
	d.append(Ring(rng, per, 0.25, 0.72, 0.14, 0.008), 2)
	// Cluster 3 and 4: parallel sloping lines, bottom.
	d.append(Segment(rng, per, 0.15, 0.12, 0.60, 0.28, 0.008), 3)
	d.append(Segment(rng, per, 0.15, 0.24, 0.60, 0.40, 0.008), 4)
	noise := NoiseCountFor(5*per, 0.70)
	d.append(UniformBox(rng, noise, []float64{0, 0}, []float64{1, 1}), NoiseLabel)
	return d
}

// Blobs builds k well-separated Gaussian blobs of perCluster points each in
// d dimensions on a diagonal lattice — a generic easy dataset for tests.
func Blobs(k, perCluster, dim int, std float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{Name: fmt.Sprintf("blobs-k%d-d%d", k, dim)}
	for c := 0; c < k; c++ {
		center := make([]float64, dim)
		stds := make([]float64, dim)
		for j := range center {
			center[j] = float64(c) / float64(k)
			if (c+j)%2 == 1 {
				center[j] = 1 - center[j]
			}
			stds[j] = std
		}
		ds.append(GaussianBlob(rng, perCluster, center, stds), c)
	}
	return ds
}

// StreamMixture generates an n-point, dim-dimensional Gaussian-blob
// mixture with a uniform-noise fraction and streams it row by row through
// emit — the out-of-core counterpart of Blobs for datasets too large to
// hold in memory (cmd/synthgen -format mapped, the scale benchmarks). The
// row slice passed to emit is reused between calls; copy it to retain.
// Generation is deterministic given (n, dim, k, noise, seed) and uses O(k)
// memory regardless of n. emit's first error aborts and is returned.
func StreamMixture(n, dim, k int, noise float64, seed int64, emit func(row []float64) error) error {
	if n < 0 || dim < 1 || k < 1 {
		return fmt.Errorf("synth: invalid mixture n=%d dim=%d k=%d", n, dim, k)
	}
	if noise < 0 || noise > 1 {
		return fmt.Errorf("synth: noise fraction %v outside [0,1]", noise)
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = 0.15 + 0.7*rng.Float64()
		}
	}
	const std = 0.03
	row := make([]float64, dim)
	for i := 0; i < n; i++ {
		if rng.Float64() < noise {
			for j := range row {
				row[j] = rng.Float64()
			}
		} else {
			c := centers[rng.Intn(k)]
			for j := range row {
				v := c[j] + rng.NormFloat64()*std
				// Clamp into the unit box so the bounding box — and with
				// it every cell assignment — is set by the data's shape,
				// not by one stray tail sample.
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				row[j] = v
			}
		}
		if err := emit(row); err != nil {
			return err
		}
	}
	return nil
}
