package synth

import (
	"math"
	"math/rand"
	"testing"
)

func TestEvaluationShape(t *testing.T) {
	ds := Evaluation(1000, 0.5, 1)
	if ds.NumClusters() != 5 {
		t.Fatalf("clusters = %d, want 5", ds.NumClusters())
	}
	if got := ds.NoiseFraction(); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("noise fraction = %v, want ≈ 0.5", got)
	}
	if ds.Dim() != 2 {
		t.Fatalf("dim = %d, want 2", ds.Dim())
	}
	// 5 clusters × 1000 + matching noise.
	if ds.N() != 10000 {
		t.Fatalf("n = %d, want 10000", ds.N())
	}
}

func TestEvaluationNoiseLevels(t *testing.T) {
	for _, gamma := range []float64{0.2, 0.65, 0.9} {
		ds := Evaluation(500, gamma, 2)
		if got := ds.NoiseFraction(); math.Abs(got-gamma) > 0.01 {
			t.Fatalf("γ=%v: noise fraction %v", gamma, got)
		}
	}
	if ds := Evaluation(500, 0, 2); ds.NoiseFraction() != 0 {
		t.Fatal("γ=0 should have no noise")
	}
}

func TestNoiseCountFor(t *testing.T) {
	if got := NoiseCountFor(100, 0.5); got != 100 {
		t.Fatalf("50%% of total means noise == cluster count, got %d", got)
	}
	if got := NoiseCountFor(100, 0.8); got != 400 {
		t.Fatalf("80%%: got %d, want 400", got)
	}
	if got := NoiseCountFor(100, 0); got != 0 {
		t.Fatalf("0%%: got %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("γ ≥ 1 should panic")
		}
	}()
	NoiseCountFor(100, 1)
}

func TestRunningExampleShape(t *testing.T) {
	ds := RunningExample(1)
	if ds.NumClusters() != 5 {
		t.Fatalf("clusters = %d, want 5", ds.NumClusters())
	}
	if got := ds.NoiseFraction(); math.Abs(got-0.7) > 0.01 {
		t.Fatalf("noise fraction = %v, want ≈ 0.7", got)
	}
	small := RunningExampleSized(100, 1)
	if small.N() >= ds.N() {
		t.Fatal("sized variant should be smaller")
	}
	if small.NumClusters() != 5 {
		t.Fatalf("sized variant clusters = %d, want 5", small.NumClusters())
	}
}

func TestRingGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := Ring(rng, 2000, 1, 2, 0.5, 0.01)
	for _, p := range pts {
		r := math.Hypot(p[0]-1, p[1]-2)
		if r < 0.4 || r > 0.6 {
			t.Fatalf("ring point at radius %v, want ≈ 0.5", r)
		}
	}
}

func TestSegmentGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := Segment(rng, 1000, 0, 0, 1, 1, 0.001)
	for _, p := range pts {
		// Distance from y=x line must be tiny.
		if d := math.Abs(p[1]-p[0]) / math.Sqrt2; d > 0.01 {
			t.Fatalf("segment point %v too far from the line", p)
		}
	}
}

func TestEllipseAnisotropy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := EllipseCloud(rng, 4000, 0, 0, 0.2, 0.02, 0)
	var vx, vy float64
	for _, p := range pts {
		vx += p[0] * p[0]
		vy += p[1] * p[1]
	}
	if vx < 20*vy {
		t.Fatalf("ellipse not anisotropic: var ratio %v", vx/vy)
	}
}

func TestUniformBoxBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := UniformBox(rng, 1000, []float64{-1, 2}, []float64{0, 3})
	for _, p := range pts {
		if p[0] < -1 || p[0] > 0 || p[1] < 2 || p[1] > 3 {
			t.Fatalf("point %v outside box", p)
		}
	}
}

func TestBlobsSeparation(t *testing.T) {
	ds := Blobs(3, 100, 4, 0.01, 7)
	if ds.NumClusters() != 3 || ds.N() != 300 || ds.Dim() != 4 {
		t.Fatalf("unexpected shape n=%d d=%d k=%d", ds.N(), ds.Dim(), ds.NumClusters())
	}
}

func TestShuffleKeepsPairs(t *testing.T) {
	ds := Evaluation(100, 0.4, 8)
	orig := ds.Clone()
	ds.Shuffle(99)
	// Same multiset of (point, label) pairs.
	find := func(p []float64) int {
		for i, q := range orig.Points {
			if q[0] == p[0] && q[1] == p[1] {
				return i
			}
		}
		return -1
	}
	for i := 0; i < 50; i++ { // spot check
		j := find(ds.Points[i])
		if j < 0 {
			t.Fatal("shuffled point not found in original")
		}
		if orig.Labels[j] != ds.Labels[i] {
			t.Fatal("shuffle separated a point from its label")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := Blobs(2, 50, 2, 0.1, 9)
	cp := ds.Clone()
	cp.Points[0][0] = 999
	cp.Labels[0] = 42
	if ds.Points[0][0] == 999 || ds.Labels[0] == 42 {
		t.Fatal("Clone shares storage with the original")
	}
}

func TestDatasetAccessorsEmpty(t *testing.T) {
	var ds Dataset
	if ds.N() != 0 || ds.Dim() != 0 || ds.NumClusters() != 0 || ds.NoiseFraction() != 0 {
		t.Fatal("empty dataset accessors should be zero")
	}
}

func TestDeterministicGenerators(t *testing.T) {
	a, b := Evaluation(200, 0.5, 11), Evaluation(200, 0.5, 11)
	for i := range a.Points {
		if a.Points[i][0] != b.Points[i][0] || a.Points[i][1] != b.Points[i][1] {
			t.Fatal("same seed produced different data")
		}
	}
}
