package synth

import (
	"fmt"
	"math"
	"math/rand"
)

// Scenario generators for the embedding front-end: workloads whose raw
// dimensionality is too high (or too redundant) for direct grid clustering
// and that become easy after a fitted linear projection.

// HighDimMixture builds k Gaussian clusters living on a random rank-r
// linear subspace of an ambient dim-dimensional space: cluster centers are
// sampled well-separated in subspace coordinates, points scatter around
// them inside the subspace, uniform background noise (fraction gamma) fills
// the subspace's unit box, and every point is perturbed by small isotropic
// ambient noise so the data only approximately spans the subspace. Direct
// grid clustering at dim = 64 is hopeless (a single occupied cell per
// point); after a PCA or random-projection embedding to ≈ rank dimensions
// the mixture is a standard blobs-in-noise problem. Deterministic in seed.
func HighDimMixture(k, perCluster, dim, rank int, gamma float64, seed int64) *Dataset {
	if rank < 1 || rank > dim {
		panic(fmt.Sprintf("synth: mixture rank %d outside [1, %d]", rank, dim))
	}
	rng := rand.New(rand.NewSource(seed))
	basis := orthonormalBasis(rng, rank, dim)
	centers := separatedCenters(rng, k, rank, 0.4)
	const (
		clusterStd = 0.02
		ambientStd = 0.008
	)
	d := &Dataset{Name: fmt.Sprintf("highd-k%d-d%d-r%d", k, dim, rank)}
	sub := make([]float64, rank)
	for c := 0; c < k; c++ {
		rows := make([][]float64, perCluster)
		for i := range rows {
			for r := 0; r < rank; r++ {
				sub[r] = centers[c][r] + rng.NormFloat64()*clusterStd
			}
			rows[i] = embedRow(rng, sub, basis, ambientStd)
		}
		d.append(rows, c)
	}
	noise := NoiseCountFor(k*perCluster, gamma)
	rows := make([][]float64, noise)
	for i := range rows {
		for r := 0; r < rank; r++ {
			sub[r] = rng.Float64()
		}
		rows[i] = embedRow(rng, sub, basis, ambientStd)
	}
	d.append(rows, NoiseLabel)
	return d
}

// embedRow maps subspace coordinates (centered on ½) through the basis into
// the ambient space around the box center, plus isotropic ambient noise.
func embedRow(rng *rand.Rand, sub []float64, basis [][]float64, ambientStd float64) []float64 {
	dim := len(basis[0])
	row := make([]float64, dim)
	for j := 0; j < dim; j++ {
		v := 0.5
		for r := range basis {
			v += (sub[r] - 0.5) * basis[r][j]
		}
		row[j] = v + rng.NormFloat64()*ambientStd
	}
	return row
}

// orthonormalBasis returns rank orthonormal dim-dimensional vectors
// (Gram-Schmidt over Gaussian draws).
func orthonormalBasis(rng *rand.Rand, rank, dim int) [][]float64 {
	basis := make([][]float64, rank)
	for r := range basis {
		v := make([]float64, dim)
		for {
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			for _, u := range basis[:r] {
				dot := 0.0
				for j := range v {
					dot += v[j] * u[j]
				}
				for j := range v {
					v[j] -= dot * u[j]
				}
			}
			norm := 0.0
			for _, x := range v {
				norm += x * x
			}
			if norm > 1e-12 {
				norm = math.Sqrt(norm)
				for j := range v {
					v[j] /= norm
				}
				break
			}
		}
		basis[r] = v
	}
	return basis
}

// separatedCenters samples k centers in [0.15, 0.85]^rank with pairwise
// distance at least minDist (rejection sampling; deterministic in rng).
func separatedCenters(rng *rand.Rand, k, rank int, minDist float64) [][]float64 {
	centers := make([][]float64, 0, k)
	for len(centers) < k {
		c := make([]float64, rank)
		for j := range c {
			c[j] = 0.15 + 0.7*rng.Float64()
		}
		ok := true
		for _, o := range centers {
			dist := 0.0
			for j := range c {
				dist += (c[j] - o[j]) * (c[j] - o[j])
			}
			if math.Sqrt(dist) < minDist {
				ok = false
				break
			}
		}
		if ok {
			centers = append(centers, c)
		}
	}
	return centers
}

// ImageSegmentation renders a size×size synthetic grayscale image of four
// intensity regions (background, disk, rectangle, ellipse, with additive
// pixel noise) and returns one feature row per pixel: intensity, local
// window means at two scales, horizontal/vertical Haar-style details, and
// weakly scaled pixel coordinates — the wavelet-feature pixel clustering
// setup of Chen & Frey (arXiv 1907.03591). The intensity-derived features
// are strongly correlated, so a PCA embedding compresses them onto a couple
// of components while the deliberately low-variance coordinate features
// drop out; AdaWave on the embedded rows recovers the regions. Labels are
// the ground-truth region ids (0 = background). Deterministic in seed.
func ImageSegmentation(size int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	// Region intensities are well separated against pixel noise of 0.02.
	img := make([]float64, size*size)
	lab := make([]int, size*size)
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			y := (float64(i) + 0.5) / float64(size)
			x := (float64(j) + 0.5) / float64(size)
			region, base := 0, 0.20
			switch {
			case (x-0.32)*(x-0.32)+(y-0.33)*(y-0.33) < 0.18*0.18:
				region, base = 1, 0.55
			case x > 0.55 && x < 0.92 && y > 0.12 && y < 0.45:
				region, base = 2, 0.85
			case (x-0.50)*(x-0.50)/(0.30*0.30)+(y-0.76)*(y-0.76)/(0.12*0.12) < 1:
				region, base = 3, 0.40
			}
			img[i*size+j] = base + rng.NormFloat64()*0.02
			lab[i*size+j] = region
		}
	}
	at := func(i, j int) float64 {
		if i < 0 {
			i = 0
		}
		if i >= size {
			i = size - 1
		}
		if j < 0 {
			j = 0
		}
		if j >= size {
			j = size - 1
		}
		return img[i*size+j]
	}
	mean := func(i, j, half int) float64 {
		sum, cnt := 0.0, 0
		for di := -half; di <= half; di++ {
			for dj := -half; dj <= half; dj++ {
				sum += at(i+di, j+dj)
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	d := &Dataset{Name: fmt.Sprintf("image-seg-%dx%d", size, size)}
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			// Haar-style window details: half-window mean differences.
			dh := mean(i, j+1, 1) - mean(i, j-1, 1)
			dv := mean(i+1, j, 1) - mean(i-1, j, 1)
			row := []float64{
				at(i, j),
				mean(i, j, 1),
				mean(i, j, 3),
				dh,
				dv,
				// Coordinates at deliberately low variance: PCA drops them,
				// so segmentation is driven by appearance, not position.
				0.05 * (float64(j) + 0.5) / float64(size),
				0.05 * (float64(i) + 0.5) / float64(size),
			}
			d.append([][]float64{row}, lab[i*size+j])
		}
	}
	return d
}
