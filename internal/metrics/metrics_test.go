package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestContingencyBasic(t *testing.T) {
	u := []int{0, 0, 1, 1}
	v := []int{5, 5, 9, 9}
	c, err := NewContingency(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 4 || len(c.RowSums) != 2 || len(c.ColSums) != 2 {
		t.Fatalf("unexpected table %+v", c)
	}
	if c.Counts[0][0] != 2 || c.Counts[1][1] != 2 || c.Counts[0][1] != 0 {
		t.Fatalf("counts wrong: %v", c.Counts)
	}
}

func TestContingencyLengthMismatch(t *testing.T) {
	if _, err := NewContingency([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestEntropy(t *testing.T) {
	// Uniform two-cluster entropy = ln 2.
	if got := Entropy([]int{5, 5}, 10); math.Abs(got-math.Ln2) > 1e-12 {
		t.Fatalf("entropy = %v, want ln2", got)
	}
	if Entropy([]int{10}, 10) != 0 {
		t.Fatal("single cluster entropy should be 0")
	}
	if Entropy(nil, 0) != 0 {
		t.Fatal("empty entropy should be 0")
	}
}

func TestMIIdenticalEqualsEntropy(t *testing.T) {
	u := []int{0, 0, 1, 1, 2, 2, 2}
	c, _ := NewContingency(u, u)
	h := Entropy(c.RowSums, c.N)
	if math.Abs(c.MI()-h) > 1e-12 {
		t.Fatalf("MI(U,U) = %v, want H(U) = %v", c.MI(), h)
	}
}

func TestAMIPerfect(t *testing.T) {
	u := []int{0, 0, 1, 1, 2, 2}
	v := []int{7, 7, 3, 3, 1, 1} // same partition, renamed labels
	if got := AMI(u, v); math.Abs(got-1) > 1e-9 {
		t.Fatalf("AMI of identical partitions = %v, want 1", got)
	}
}

func TestAMIRandomNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 2000
	u := make([]int, n)
	v := make([]int, n)
	for i := 0; i < n; i++ {
		u[i] = int(rng.Int31n(5))
		v[i] = int(rng.Int31n(5))
	}
	got := AMI(u, v)
	if math.Abs(got) > 0.03 {
		t.Fatalf("AMI of independent labelings = %v, want ≈0", got)
	}
	// Unadjusted NMI of the same labelings is biased above zero.
	if NMI(u, v) <= got {
		t.Fatalf("NMI (%v) should exceed AMI (%v) for random labelings", NMI(u, v), got)
	}
}

func TestAMISingleClusterConvention(t *testing.T) {
	u := []int{1, 1, 1}
	if got := AMI(u, u); got != 1 {
		t.Fatalf("AMI of two trivial partitions = %v, want 1", got)
	}
	// One trivial vs one informative: zero information.
	v := []int{0, 1, 2}
	if got := AMI(u, v); math.Abs(got) > 1e-9 {
		t.Fatalf("AMI(trivial, all-singletons) = %v, want 0", got)
	}
}

func TestAMINormalizationOrdering(t *testing.T) {
	u := []int{0, 0, 0, 1, 1, 2, 2, 2, 2}
	v := []int{0, 0, 1, 1, 1, 2, 2, 0, 2}
	amax := AMIWith(u, v, NormMax)
	amin := AMIWith(u, v, NormMin)
	// min-normalizer is the smallest denominator ⇒ largest score.
	if amin < amax {
		t.Fatalf("NormMin AMI (%v) should be ≥ NormMax AMI (%v)", amin, amax)
	}
}

func TestARIKnown(t *testing.T) {
	u := []int{0, 0, 1, 1}
	if got := ARI(u, u); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI identical = %v", got)
	}
	// Completely split prediction still scores below 1.
	v := []int{0, 1, 2, 3}
	if got := ARI(u, v); got >= 0.5 {
		t.Fatalf("ARI all-singletons = %v, want small", got)
	}
}

func TestARIRandomNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 2000
	u := make([]int, n)
	v := make([]int, n)
	for i := 0; i < n; i++ {
		u[i] = int(rng.Int31n(4))
		v[i] = int(rng.Int31n(4))
	}
	if got := ARI(u, v); math.Abs(got) > 0.03 {
		t.Fatalf("ARI of independent labelings = %v", got)
	}
}

func TestPurity(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{5, 5, 6, 6}
	if got := Purity(truth, pred); got != 1 {
		t.Fatalf("perfect purity = %v", got)
	}
	pred2 := []int{5, 6, 5, 6}
	if got := Purity(truth, pred2); got != 0.5 {
		t.Fatalf("mixed purity = %v, want 0.5", got)
	}
}

func TestFilter(t *testing.T) {
	truth := []int{0, -1, 1, -1, 2}
	pred := []int{9, 9, 8, 8, 7}
	ft, fp := Filter(truth, pred, -1)
	if len(ft) != 3 || len(fp) != 3 {
		t.Fatalf("filter kept %d/%d", len(ft), len(fp))
	}
	if ft[0] != 0 || ft[1] != 1 || ft[2] != 2 || fp[0] != 9 || fp[2] != 7 {
		t.Fatalf("filter result %v %v", ft, fp)
	}
}

func TestAMINonNoise(t *testing.T) {
	truth := []int{0, 0, 1, 1, -1, -1}
	pred := []int{3, 3, 4, 4, 0, 1} // perfect on non-noise, junk on noise
	if got := AMINonNoise(truth, pred, -1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("AMINonNoise = %v, want 1", got)
	}
	if got := AMINonNoise([]int{-1, -1}, []int{1, 2}, -1); got != 0 {
		t.Fatalf("all-noise should give 0, got %v", got)
	}
}

func TestClusterCount(t *testing.T) {
	labels := []int{0, 0, 1, -1, 2, 2, -1}
	if got := ClusterCount(labels, -1); got != 3 {
		t.Fatalf("ClusterCount = %d, want 3", got)
	}
}

// Property: AMI and ARI are symmetric and invariant to label permutation.
func TestSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + int(rng.Int31n(100))
		u := make([]int, n)
		v := make([]int, n)
		for i := 0; i < n; i++ {
			u[i] = int(rng.Int31n(4))
			v[i] = int(rng.Int31n(3))
		}
		if math.Abs(AMI(u, v)-AMI(v, u)) > 1e-9 {
			return false
		}
		if math.Abs(ARI(u, v)-ARI(v, u)) > 1e-9 {
			return false
		}
		// Relabel u by a fixed permutation; score must not change.
		perm := map[int]int{0: 17, 1: 3, 2: 99, 3: -7}
		w := make([]int, n)
		for i := range u {
			w[i] = perm[u[i]]
		}
		return math.Abs(AMI(u, v)-AMI(w, v)) < 1e-9 &&
			math.Abs(ARI(u, v)-ARI(w, v)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: AMI ≤ NMI + eps for the same normalization (the adjustment
// subtracts the positive chance baseline), and both are ≤ 1.
func TestAMIUpperBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + int(rng.Int31n(200))
		u := make([]int, n)
		v := make([]int, n)
		for i := 0; i < n; i++ {
			u[i] = int(rng.Int31n(5))
			v[i] = u[i]
			if rng.Float64() < 0.3 {
				v[i] = int(rng.Int31n(5))
			}
		}
		ami, nmi := AMI(u, v), NMI(u, v)
		return ami <= nmi+1e-9 && ami <= 1+1e-9 && nmi <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAMI10k(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 10000
	u := make([]int, n)
	v := make([]int, n)
	for i := 0; i < n; i++ {
		u[i] = int(rng.Int31n(8))
		v[i] = int(rng.Int31n(8))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AMI(u, v)
	}
}
