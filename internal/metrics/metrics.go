// Package metrics implements external cluster-validity indices used by the
// evaluation harness: mutual-information measures (MI, NMI, and AMI with the
// exact expected mutual information under the hypergeometric permutation
// model, following Vinh, Epps & Bailey 2010), the adjusted Rand index, and
// purity.
//
// All functions take two equal-length integer label slices. Label values are
// arbitrary; they are only compared for equality. The paper's fairness rule
// (evaluate only over ground-truth non-noise points) is provided by Filter.
package metrics

import (
	"fmt"
	"math"
)

// Contingency is the R×C contingency table of two labelings together with
// its marginals.
type Contingency struct {
	N         int     // total number of points
	RowSums   []int   // a_i: size of each cluster of the first labeling
	ColSums   []int   // b_j: size of each cluster of the second labeling
	Counts    [][]int // Counts[i][j]: points in row-cluster i and col-cluster j
	rowOf     map[int]int
	colOf     map[int]int
	RowLabels []int
	ColLabels []int
}

// NewContingency builds the contingency table of labelings u and v.
func NewContingency(u, v []int) (*Contingency, error) {
	if len(u) != len(v) {
		return nil, fmt.Errorf("metrics: labelings have different lengths %d and %d", len(u), len(v))
	}
	c := &Contingency{
		N:     len(u),
		rowOf: make(map[int]int),
		colOf: make(map[int]int),
	}
	for _, l := range u {
		if _, ok := c.rowOf[l]; !ok {
			c.rowOf[l] = len(c.RowLabels)
			c.RowLabels = append(c.RowLabels, l)
		}
	}
	for _, l := range v {
		if _, ok := c.colOf[l]; !ok {
			c.colOf[l] = len(c.ColLabels)
			c.ColLabels = append(c.ColLabels, l)
		}
	}
	r, cols := len(c.RowLabels), len(c.ColLabels)
	c.Counts = make([][]int, r)
	for i := range c.Counts {
		c.Counts[i] = make([]int, cols)
	}
	c.RowSums = make([]int, r)
	c.ColSums = make([]int, cols)
	for k := range u {
		i, j := c.rowOf[u[k]], c.colOf[v[k]]
		c.Counts[i][j]++
		c.RowSums[i]++
		c.ColSums[j]++
	}
	return c, nil
}

// Entropy returns the Shannon entropy (nats) of a cluster-size marginal.
func Entropy(sizes []int, n int) float64 {
	if n == 0 {
		return 0
	}
	var h float64
	for _, s := range sizes {
		if s == 0 {
			continue
		}
		p := float64(s) / float64(n)
		h -= p * math.Log(p)
	}
	return h
}

// MI returns the mutual information (nats) of the contingency table.
func (c *Contingency) MI() float64 {
	if c.N == 0 {
		return 0
	}
	n := float64(c.N)
	var mi float64
	for i, row := range c.Counts {
		a := float64(c.RowSums[i])
		for j, nij := range row {
			if nij == 0 {
				continue
			}
			b := float64(c.ColSums[j])
			p := float64(nij) / n
			mi += p * math.Log(n*float64(nij)/(a*b))
		}
	}
	if mi < 0 { // numerical guard
		mi = 0
	}
	return mi
}

// EMI returns the expected mutual information of two random labelings with
// the table's marginals, under the hypergeometric permutation model
// (Vinh et al. 2010, eq. 24a). Cost is O(R·C·min(a_i,b_j)).
func (c *Contingency) EMI() float64 {
	if c.N == 0 {
		return 0
	}
	n := float64(c.N)
	lgN, _ := math.Lgamma(n + 1)
	var emi float64
	for _, ai := range c.RowSums {
		a := float64(ai)
		lgA, _ := math.Lgamma(a + 1)
		lgNA, _ := math.Lgamma(n - a + 1)
		for _, bj := range c.ColSums {
			b := float64(bj)
			lgB, _ := math.Lgamma(b + 1)
			lgNB, _ := math.Lgamma(n - b + 1)
			lo := ai + bj - c.N
			if lo < 1 {
				lo = 1
			}
			hi := ai
			if bj < hi {
				hi = bj
			}
			for nij := lo; nij <= hi; nij++ {
				x := float64(nij)
				// log hypergeometric pmf
				l1, _ := math.Lgamma(x + 1)
				l2, _ := math.Lgamma(a - x + 1)
				l3, _ := math.Lgamma(b - x + 1)
				l4, _ := math.Lgamma(n - a - b + x + 1)
				logP := lgA + lgB + lgNA + lgNB - lgN - l1 - l2 - l3 - l4
				term := x / n * math.Log(n*x/(a*b))
				emi += math.Exp(logP) * term
			}
		}
	}
	return emi
}

// NormMethod selects the normalization used by AMI and NMI.
type NormMethod int

const (
	// NormMax normalizes by max(H(U), H(V)) — the default in Vinh et al.
	// and the variant cited by the AdaWave paper.
	NormMax NormMethod = iota
	// NormArithmetic normalizes by (H(U)+H(V))/2.
	NormArithmetic
	// NormGeometric normalizes by sqrt(H(U)·H(V)).
	NormGeometric
	// NormMin normalizes by min(H(U), H(V)).
	NormMin
)

func normalizer(hu, hv float64, m NormMethod) float64 {
	switch m {
	case NormArithmetic:
		return (hu + hv) / 2
	case NormGeometric:
		return math.Sqrt(hu * hv)
	case NormMin:
		return math.Min(hu, hv)
	default:
		return math.Max(hu, hv)
	}
}

// AMI returns the adjusted mutual information of labelings u and v with the
// NormMax normalization. Ranges in (-1, 1]; 1 means identical partitions,
// ~0 means no better than chance.
func AMI(u, v []int) float64 { return AMIWith(u, v, NormMax) }

// AMIWith is AMI with an explicit normalization method.
func AMIWith(u, v []int, m NormMethod) float64 {
	c, err := NewContingency(u, v)
	if err != nil || c.N == 0 {
		return 0
	}
	// Convention (as in the reference implementations): two trivial
	// single-cluster partitions are identical.
	if len(c.RowSums) == 1 && len(c.ColSums) == 1 {
		return 1
	}
	mi := c.MI()
	emi := c.EMI()
	hu := Entropy(c.RowSums, c.N)
	hv := Entropy(c.ColSums, c.N)
	den := normalizer(hu, hv, m) - emi
	num := mi - emi
	const eps = 1e-15
	if math.Abs(den) < eps {
		if den < 0 {
			den = -eps
		} else {
			den = eps
		}
	}
	return num / den
}

// NMI returns the normalized mutual information of u and v (NormMax).
func NMI(u, v []int) float64 { return NMIWith(u, v, NormMax) }

// NMIWith is NMI with an explicit normalization method.
func NMIWith(u, v []int, m NormMethod) float64 {
	c, err := NewContingency(u, v)
	if err != nil || c.N == 0 {
		return 0
	}
	if len(c.RowSums) == 1 && len(c.ColSums) == 1 {
		return 1
	}
	hu := Entropy(c.RowSums, c.N)
	hv := Entropy(c.ColSums, c.N)
	den := normalizer(hu, hv, m)
	if den == 0 {
		return 0
	}
	return c.MI() / den
}

// ARI returns the adjusted Rand index of u and v.
func ARI(u, v []int) float64 {
	c, err := NewContingency(u, v)
	if err != nil || c.N < 2 {
		return 0
	}
	if len(c.RowSums) == 1 && len(c.ColSums) == 1 {
		return 1
	}
	comb2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumIJ, sumA, sumB float64
	for i, row := range c.Counts {
		sumA += comb2(c.RowSums[i])
		for _, nij := range row {
			sumIJ += comb2(nij)
		}
	}
	for _, b := range c.ColSums {
		sumB += comb2(b)
	}
	total := comb2(c.N)
	expected := sumA * sumB / total
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 0
	}
	return (sumIJ - expected) / (maxIdx - expected)
}

// Purity returns the purity of predicted labeling v against truth u:
// the fraction of points assigned to the majority true class of their
// predicted cluster.
func Purity(truth, pred []int) float64 {
	c, err := NewContingency(pred, truth)
	if err != nil || c.N == 0 {
		return 0
	}
	var correct int
	for _, row := range c.Counts {
		best := 0
		for _, n := range row {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(c.N)
}

// Filter returns copies of truth and pred restricted to indices where truth
// is not noiseLabel. This implements the paper's fairness rule: methods
// without a noise concept are scored only on points that truly belong to a
// cluster.
func Filter(truth, pred []int, noiseLabel int) (ft, fp []int) {
	for i, t := range truth {
		if t == noiseLabel {
			continue
		}
		ft = append(ft, t)
		fp = append(fp, pred[i])
	}
	return ft, fp
}

// AMINonNoise is the metric used throughout the paper's evaluation: AMI
// over ground-truth non-noise points, NormMax normalization.
func AMINonNoise(truth, pred []int, noiseLabel int) float64 {
	ft, fp := Filter(truth, pred, noiseLabel)
	if len(ft) == 0 {
		return 0
	}
	return AMI(ft, fp)
}

// ClusterCount returns the number of distinct non-noise labels in a
// labeling.
func ClusterCount(labels []int, noiseLabel int) int {
	seen := make(map[int]struct{})
	for _, l := range labels {
		if l == noiseLabel {
			continue
		}
		seen[l] = struct{}{}
	}
	return len(seen)
}
