package metrics

import (
	"math"
	"testing"
)

// TestAMITable pins AMI (NormMax) against hand-computed references. The
// non-obvious entries were worked through the hypergeometric EMI model by
// hand:
//
//   - u=[0,0,1,1], v=[0,1,0,1]: MI = 0, H(U) = H(V) = ln 2, and
//     EMI = ln2/3, so AMI = (0 − ln2/3)/(ln2 − ln2/3) = −1/2 — complementary
//     partitions score strictly below chance.
//   - u=[0,0,1,1], v=[0,0,0,1]: MI = ½ln(4/3) + ¼ln(2/3) + ¼ln 2 ≈ 0.21576,
//     and the EMI sum over the four cells comes to exactly the same value,
//     so the adjusted score is 0: this overlap is precisely what chance
//     predicts for those marginals.
func TestAMITable(t *testing.T) {
	for _, tc := range []struct {
		name string
		u, v []int
		want float64
	}{
		{"identical", []int{0, 0, 1, 1, 2, 2}, []int{0, 0, 1, 1, 2, 2}, 1},
		{"renamed", []int{0, 0, 1, 1, 2, 2}, []int{9, 9, 4, 4, 0, 0}, 1},
		{"complementary-2x2", []int{0, 0, 1, 1}, []int{0, 1, 0, 1}, -0.5},
		{"chance-exact", []int{0, 0, 1, 1}, []int{0, 0, 0, 1}, 0},
		{"both-trivial", []int{7, 7, 7}, []int{2, 2, 2}, 1},
		{"trivial-vs-singletons", []int{1, 1, 1}, []int{0, 1, 2}, 0},
		{"empty", nil, nil, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := AMI(tc.u, tc.v); math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("AMI = %v, want %v", got, tc.want)
			}
			// AMI is symmetric; the references must hold both ways.
			if got := AMI(tc.v, tc.u); math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("AMI reversed = %v, want %v", got, tc.want)
			}
		})
	}

	// NMI on the chance-exact case for contrast: the unadjusted score is
	// MI/max(H) = 0.21576/ln2 ≈ 0.3113 — the adjustment is what removes
	// the illusory agreement.
	if got := NMI([]int{0, 0, 1, 1}, []int{0, 0, 0, 1}); math.Abs(got-0.311278124459) > 1e-9 {
		t.Fatalf("NMI(chance-exact) = %v, want ≈0.31128", got)
	}
}
