package wavelet

import "fmt"

// Lift53 computes one level of the CDF(2,2) (“5/3”) wavelet via the lifting
// scheme with symmetric boundary extension. It returns the approximation
// (even samples after the update step) and detail (odd samples after the
// predict step). The lifting formulation reconstructs *exactly* for any
// input length — the production path for biorthogonal PR — and its interior
// approximation coefficients coincide with Approx(x, CDF22()).
func Lift53(x []float64) (approx, detail []float64, err error) {
	n := len(x)
	if n < 2 {
		return nil, nil, fmt.Errorf("wavelet: Lift53 needs ≥ 2 samples, got %d", n)
	}
	ns := (n + 1) / 2
	nd := n / 2
	s := make([]float64, ns)
	d := make([]float64, nd)
	for i := 0; i < ns; i++ {
		s[i] = x[2*i]
	}
	for i := 0; i < nd; i++ {
		d[i] = x[2*i+1]
	}
	// Predict: d[i] -= (s[i] + s[i+1])/2, mirroring at the right edge.
	for i := 0; i < nd; i++ {
		right := i + 1
		if right >= ns {
			right = ns - 1
		}
		d[i] -= 0.5 * (s[i] + s[right])
	}
	// Update: s[i] += (d[i-1] + d[i])/4, mirroring at both edges.
	for i := 0; i < ns; i++ {
		left := i - 1
		if left < 0 {
			left = 0
		}
		cur := i
		if cur >= nd {
			cur = nd - 1
		}
		s[i] += 0.25 * (d[left] + d[cur])
	}
	return s, d, nil
}

// Unlift53 inverts Lift53 exactly. origLen is the original signal length
// (needed to distinguish even from odd lengths).
func Unlift53(approx, detail []float64, origLen int) ([]float64, error) {
	ns, nd := len(approx), len(detail)
	if ns != (origLen+1)/2 || nd != origLen/2 {
		return nil, fmt.Errorf("wavelet: Unlift53 length mismatch: approx %d, detail %d, origLen %d", ns, nd, origLen)
	}
	s := append([]float64(nil), approx...)
	d := append([]float64(nil), detail...)
	// Undo update.
	for i := 0; i < ns; i++ {
		left := i - 1
		if left < 0 {
			left = 0
		}
		cur := i
		if cur >= nd {
			cur = nd - 1
		}
		s[i] -= 0.25 * (d[left] + d[cur])
	}
	// Undo predict.
	for i := 0; i < nd; i++ {
		right := i + 1
		if right >= ns {
			right = ns - 1
		}
		d[i] += 0.5 * (s[i] + s[right])
	}
	x := make([]float64, origLen)
	for i := 0; i < ns; i++ {
		x[2*i] = s[i]
	}
	for i := 0; i < nd; i++ {
		x[2*i+1] = d[i]
	}
	return x, nil
}
