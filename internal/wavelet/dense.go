package wavelet

import "fmt"

// Approx computes the analysis low-pass (approximation/scale-space) branch
// of one DWT level with zero extension beyond the signal ends:
//
//	a[k] = Σ_t Lo[t] · x[2k + t − Center],  k = 0 … ⌈n/2⌉−1.
//
// This is exactly the dense counterpart of the sparse-grid scatter transform
// used by AdaWave, so the two can be cross-checked in tests.
func Approx(x []float64, b Basis) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]float64, (n+1)/2)
	for k := range out {
		var s float64
		base := 2*k - b.Center
		for t, h := range b.Lo {
			i := base + t
			if i >= 0 && i < n {
				s += h * x[i]
			}
		}
		out[k] = s
	}
	return out
}

// Detail computes the analysis high-pass (wavelet-space) branch of one DWT
// level with zero extension, phased like Approx.
func Detail(x []float64, b Basis) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]float64, (n+1)/2)
	for k := range out {
		var s float64
		base := 2*k - b.Center
		for t, g := range b.Hi {
			i := base + t
			if i >= 0 && i < n {
				s += g * x[i]
			}
		}
		out[k] = s
	}
	return out
}

// Decompose performs a multi-level Mallat decomposition with zero
// extension, returning the approximation at each level (level 1 first) —
// the “different resolutions” the paper's multi-resolution property refers
// to. levels must be ≥ 1 and small enough that every level has at least one
// coefficient.
func Decompose(x []float64, b Basis, levels int) ([][]float64, error) {
	if levels < 1 {
		return nil, fmt.Errorf("wavelet: levels must be ≥ 1, got %d", levels)
	}
	out := make([][]float64, 0, levels)
	cur := x
	for l := 0; l < levels; l++ {
		if len(cur) < 2 {
			return nil, fmt.Errorf("wavelet: signal of length %d too short for %d levels", len(x), levels)
		}
		cur = Approx(cur, b)
		out = append(out, cur)
	}
	return out, nil
}

// ForwardPeriodic computes one orthonormal DWT level with periodic
// extension: approx and detail each of length n/2. The input length must be
// even. Only valid for orthogonal bases (Haar, DB4); the taps are scaled by
// √2 internally so that ‖x‖² = ‖a‖² + ‖d‖² and InversePeriodic reconstructs
// exactly.
func ForwardPeriodic(x []float64, b Basis) (approx, detail []float64, err error) {
	n := len(x)
	if n%2 != 0 || n == 0 {
		return nil, nil, fmt.Errorf("wavelet: ForwardPeriodic needs even-length input, got %d", n)
	}
	if !b.Orthogonal {
		return nil, nil, fmt.Errorf("wavelet: ForwardPeriodic requires an orthogonal basis, got %s", b.Name)
	}
	lo, hi := scale(b.Lo, sqrt2), scale(b.Hi, sqrt2)
	h := n / 2
	approx = make([]float64, h)
	detail = make([]float64, h)
	for k := 0; k < h; k++ {
		var a, d float64
		for t := range lo {
			i := (2*k + t) % n
			a += lo[t] * x[i]
			d += hi[t] * x[i]
		}
		approx[k] = a
		detail[k] = d
	}
	return approx, detail, nil
}

// InversePeriodic reconstructs the signal from one ForwardPeriodic level.
func InversePeriodic(approx, detail []float64, b Basis) ([]float64, error) {
	if len(approx) != len(detail) {
		return nil, fmt.Errorf("wavelet: approx/detail length mismatch %d vs %d", len(approx), len(detail))
	}
	if !b.Orthogonal {
		return nil, fmt.Errorf("wavelet: InversePeriodic requires an orthogonal basis, got %s", b.Name)
	}
	lo, hi := scale(b.Lo, sqrt2), scale(b.Hi, sqrt2)
	n := 2 * len(approx)
	x := make([]float64, n)
	for k := 0; k < len(approx); k++ {
		for t := range lo {
			i := (2*k + t) % n
			x[i] += lo[t]*approx[k] + hi[t]*detail[k]
		}
	}
	return x, nil
}

const sqrt2 = 1.4142135623730951

func scale(taps []float64, f float64) []float64 {
	out := make([]float64, len(taps))
	for i, t := range taps {
		out[i] = t * f
	}
	return out
}
