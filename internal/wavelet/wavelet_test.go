package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFilterDCGains(t *testing.T) {
	for _, b := range Bases() {
		if !almostEq(DCGain(b.Lo), 1, 1e-12) {
			t.Errorf("%s: low-pass DC gain = %v, want 1", b.Name, DCGain(b.Lo))
		}
		if !almostEq(DCGain(b.Hi), 0, 1e-12) {
			t.Errorf("%s: high-pass DC gain = %v, want 0", b.Name, DCGain(b.Hi))
		}
		if b.Center < 0 || b.Center >= len(b.Lo) {
			t.Errorf("%s: center %d out of range", b.Name, b.Center)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"haar", "db4", "cdf22"} {
		b, err := ByName(name)
		if err != nil || b.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, b.Name, err)
		}
	}
	if b, err := ByName("bior2.2"); err != nil || b.Name != "cdf22" {
		t.Errorf("bior2.2 alias failed: %v %v", b.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown basis should error")
	}
}

func TestDB4Orthonormality(t *testing.T) {
	b := DB4()
	// √2-scaled taps must have unit energy and the shift-2 orthogonality.
	var energy, shift2 float64
	for i, h := range b.Lo {
		energy += 2 * h * h // (√2 h)² = 2h²
		if i+2 < len(b.Lo) {
			shift2 += 2 * h * b.Lo[i+2]
		}
	}
	if !almostEq(energy, 1, 1e-12) {
		t.Fatalf("db4 energy = %v, want 1", energy)
	}
	if !almostEq(shift2, 0, 1e-12) {
		t.Fatalf("db4 shift-2 product = %v, want 0", shift2)
	}
}

func TestApproxConstantSignal(t *testing.T) {
	// DC gain 1 ⇒ a constant interior stays constant at every level.
	x := make([]float64, 64)
	for i := range x {
		x[i] = 3.5
	}
	for _, b := range Bases() {
		a := Approx(x, b)
		// Interior coefficients (away from the zero-padded boundary).
		for k := 2; k < len(a)-2; k++ {
			if !almostEq(a[k], 3.5, 1e-12) {
				t.Errorf("%s: interior approx[%d] = %v, want 3.5", b.Name, k, a[k])
			}
		}
	}
}

func TestDetailKillsConstants(t *testing.T) {
	x := make([]float64, 32)
	for i := range x {
		x[i] = -2.25
	}
	for _, b := range Bases() {
		d := Detail(x, b)
		for k := 2; k < len(d)-2; k++ {
			if !almostEq(d[k], 0, 1e-12) {
				t.Errorf("%s: interior detail[%d] = %v, want 0", b.Name, k, d[k])
			}
		}
	}
}

func TestApproxHalvesLength(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 127, 128} {
		x := make([]float64, n)
		a := Approx(x, Haar())
		if len(a) != (n+1)/2 {
			t.Errorf("n=%d: approx length %d, want %d", n, len(a), (n+1)/2)
		}
	}
	if Approx(nil, Haar()) != nil {
		t.Error("empty input should return nil")
	}
}

func TestApproxLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 40
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	for _, b := range Bases() {
		ax, ay := Approx(x, b), Approx(y, b)
		sum := make([]float64, n)
		for i := range sum {
			sum[i] = 2*x[i] - 3*y[i]
		}
		asum := Approx(sum, b)
		for k := range asum {
			if !almostEq(asum[k], 2*ax[k]-3*ay[k], 1e-10) {
				t.Fatalf("%s: linearity violated at %d", b.Name, k)
			}
		}
	}
}

func TestDecompose(t *testing.T) {
	x := make([]float64, 64)
	for i := range x {
		x[i] = float64(i % 7)
	}
	levels, err := Decompose(x, CDF22(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("got %d levels", len(levels))
	}
	if len(levels[0]) != 32 || len(levels[1]) != 16 || len(levels[2]) != 8 {
		t.Fatalf("level lengths %d %d %d", len(levels[0]), len(levels[1]), len(levels[2]))
	}
	if _, err := Decompose(x, Haar(), 0); err == nil {
		t.Error("levels=0 should error")
	}
	if _, err := Decompose([]float64{1}, Haar(), 1); err == nil {
		t.Error("too-short signal should error")
	}
}

func TestPeriodicPerfectReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, b := range []Basis{Haar(), DB4()} {
		for _, n := range []int{2, 8, 64, 130} {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			a, d, err := ForwardPeriodic(x, b)
			if err != nil {
				t.Fatal(err)
			}
			// Parseval: energy preserved.
			var ex, ead float64
			for i := range x {
				ex += x[i] * x[i]
			}
			for i := range a {
				ead += a[i]*a[i] + d[i]*d[i]
			}
			if !almostEq(ex, ead, 1e-9*(1+ex)) {
				t.Fatalf("%s n=%d: energy %v → %v", b.Name, n, ex, ead)
			}
			back, err := InversePeriodic(a, d, b)
			if err != nil {
				t.Fatal(err)
			}
			for i := range x {
				if !almostEq(back[i], x[i], 1e-9) {
					t.Fatalf("%s n=%d: PR failed at %d: %v vs %v", b.Name, n, i, back[i], x[i])
				}
			}
		}
	}
}

func TestPeriodicErrors(t *testing.T) {
	if _, _, err := ForwardPeriodic([]float64{1, 2, 3}, Haar()); err == nil {
		t.Error("odd length should error")
	}
	if _, _, err := ForwardPeriodic([]float64{1, 2}, CDF22()); err == nil {
		t.Error("biorthogonal basis should error")
	}
	if _, err := InversePeriodic([]float64{1}, []float64{1, 2}, Haar()); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := InversePeriodic([]float64{1}, []float64{1}, CDF22()); err == nil {
		t.Error("biorthogonal basis should error")
	}
}

func TestLift53PerfectReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(rng.Int31n(200))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		a, d, err := Lift53(x)
		if err != nil {
			return false
		}
		back, err := Unlift53(a, d, n)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(back[i], x[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLift53MatchesConvolutionInterior(t *testing.T) {
	// Interior lifting approximation coefficients equal the CDF(2,2)
	// convolution output (they differ only in boundary handling).
	rng := rand.New(rand.NewSource(12))
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	lift, _, err := Lift53(x)
	if err != nil {
		t.Fatal(err)
	}
	conv := Approx(x, CDF22())
	for k := 2; k < len(conv)-2; k++ {
		if !almostEq(lift[k], conv[k], 1e-10) {
			t.Fatalf("interior mismatch at %d: lifting %v vs convolution %v", k, lift[k], conv[k])
		}
	}
}

func TestLift53Errors(t *testing.T) {
	if _, _, err := Lift53([]float64{1}); err == nil {
		t.Error("short input should error")
	}
	if _, err := Unlift53([]float64{1, 2}, []float64{1}, 5); err == nil {
		t.Error("length mismatch should error")
	}
}

// TestDenoisingEffect verifies the paper's Fig. 5 claim at the signal
// level: after low-pass filtering, isolated spikes (outliers) shrink
// relative to a dense block (cluster).
func TestDenoisingEffect(t *testing.T) {
	n := 128
	x := make([]float64, n)
	for i := 40; i < 56; i++ {
		x[i] = 10 // dense cluster block
	}
	x[100] = 10 // isolated outlier spike
	for _, b := range Bases() {
		a := Approx(x, b)
		blockMax, spikeMax := 0.0, 0.0
		for k, v := range a {
			if k >= 18 && k <= 30 {
				if v > blockMax {
					blockMax = v
				}
			}
			if k >= 47 && k <= 53 {
				if v > spikeMax {
					spikeMax = v
				}
			}
		}
		if spikeMax >= blockMax {
			t.Errorf("%s: outlier (%v) not suppressed relative to cluster (%v)", b.Name, spikeMax, blockMax)
		}
	}
}
