// Package wavelet implements the discrete wavelet transform substrate of
// AdaWave: hand-rolled filter banks (Haar, Daubechies-4, Cohen-Daubechies-
// Feauveau (2,2)), dense 1-D analysis/synthesis via convolution and via the
// lifting scheme, and multi-level Mallat decomposition.
//
// Two normalizations appear in the literature. Signal processing uses
// orthonormal filters (DC gain √2) so that the transform preserves energy.
// Grid-based clustering (WaveCluster, AdaWave) instead wants the transformed
// cell values to remain *densities*, so this package stores analysis
// low-pass taps with DC gain 1: a constant signal is mapped to the same
// constant at every level. Orthonormal variants are derived on demand where
// perfect reconstruction is exercised.
package wavelet

import (
	"fmt"
	"math"
)

// Basis is a wavelet filter bank in DC-gain-1 normalization.
type Basis struct {
	Name string
	// Lo is the analysis low-pass filter (sums to 1).
	Lo []float64
	// Hi is the analysis high-pass filter (sums to 0).
	Hi []float64
	// Center is the alignment index of the dominant tap: input sample i
	// contributes mainly to approximation coefficient floor(i/2) when the
	// convolution is phased as a[k] = Σ_t Lo[t]·x[2k+t−Center]. This phase
	// is what makes the WaveCluster “right shift” lookup table exact.
	Center int
	// Orthogonal reports whether √2·Lo is an orthonormal filter (true for
	// Haar and Daubechies families, false for biorthogonal CDF).
	Orthogonal bool
}

// Haar returns the Haar basis: the simplest orthogonal wavelet.
func Haar() Basis {
	return Basis{
		Name:       "haar",
		Lo:         []float64{0.5, 0.5},
		Hi:         []float64{0.5, -0.5},
		Center:     0,
		Orthogonal: true,
	}
}

// DB4 returns the 4-tap Daubechies basis (two vanishing moments; “db2” in
// some libraries' naming).
func DB4() Basis {
	s3 := math.Sqrt(3)
	lo := []float64{(1 + s3) / 8, (3 + s3) / 8, (3 - s3) / 8, (1 - s3) / 8}
	return Basis{
		Name:       "db4",
		Lo:         lo,
		Hi:         qmf(lo),
		Center:     1,
		Orthogonal: true,
	}
}

// CDF22 returns the Cohen-Daubechies-Feauveau (2,2) biorthogonal basis
// (the JPEG2000 5/3 wavelet) — the basis used by the AdaWave paper and by
// the original WaveCluster.
func CDF22() Basis {
	return Basis{
		Name:       "cdf22",
		Lo:         []float64{-0.125, 0.25, 0.75, 0.25, -0.125},
		Hi:         []float64{-0.5, 1, -0.5},
		Center:     2,
		Orthogonal: false,
	}
}

// DB6 returns the 6-tap Daubechies basis (three vanishing moments; “db3”
// in some libraries' naming). The closed form with a = 1+√10,
// b = √(5+2√10) keeps the DC gain exact at machine precision.
func DB6() Basis {
	s10 := math.Sqrt(10)
	b := math.Sqrt(5 + 2*s10)
	// Orthonormal taps are these values divided by 16√2; the package wants
	// DC gain 1, so divide by 32 instead (Σ of the numerators is 32).
	lo := scale([]float64{
		1 + s10 + b,
		5 + s10 + 3*b,
		10 - 2*s10 + 2*b,
		10 - 2*s10 - 2*b,
		5 + s10 - 3*b,
		1 + s10 - b,
	}, 1.0/32)
	return Basis{
		Name:       "db6",
		Lo:         lo,
		Hi:         qmf(lo),
		Center:     1,
		Orthogonal: true,
	}
}

// CDF13 returns the Cohen-Daubechies-Feauveau (1,3) biorthogonal basis: a
// Haar-like analysis low-pass with longer smoothing support — a cheap
// middle ground between Haar and CDF(2,2) for the paper's “flexibility of
// choosing basis” property.
func CDF13() Basis {
	return Basis{
		Name:       "cdf13",
		Lo:         []float64{-0.0625, 0.0625, 0.5, 0.5, 0.0625, -0.0625},
		Hi:         []float64{-0.5, 0.5},
		Center:     2,
		Orthogonal: false,
	}
}

// ByName returns the basis with the given name ("haar", "db4", "db6",
// "cdf22", "cdf13").
func ByName(name string) (Basis, error) {
	switch name {
	case "haar":
		return Haar(), nil
	case "db4":
		return DB4(), nil
	case "db6":
		return DB6(), nil
	case "cdf22", "cdf(2,2)", "bior2.2":
		return CDF22(), nil
	case "cdf13", "cdf(1,3)", "bior1.3":
		return CDF13(), nil
	}
	return Basis{}, fmt.Errorf("wavelet: unknown basis %q (want haar, db4, db6, cdf22 or cdf13)", name)
}

// Bases returns all built-in bases (for ablation sweeps).
func Bases() []Basis { return []Basis{Haar(), DB4(), DB6(), CDF22(), CDF13()} }

// qmf derives the quadrature-mirror high-pass from a low-pass filter:
// g[k] = (−1)^k · h[L−1−k].
func qmf(lo []float64) []float64 {
	l := len(lo)
	hi := make([]float64, l)
	for k := 0; k < l; k++ {
		v := lo[l-1-k]
		if k%2 == 1 {
			v = -v
		}
		hi[k] = v
	}
	return hi
}

// DCGain returns the sum of the filter taps.
func DCGain(taps []float64) float64 {
	var s float64
	for _, t := range taps {
		s += t
	}
	return s
}
