package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"adawave"
	"adawave/internal/sched"
)

// TestClassifyTaxonomy pins the error-taxonomy → wire-contract table: every
// sentinel of the adawave taxonomy (wrapped or bare) must map to its stable
// status/code pair, including the scheduler's quota rejections → 429.
func TestClassifyTaxonomy(t *testing.T) {
	quotaErr := &sched.QuotaError{
		Tenant: "acme", Resource: "qps", Current: 12, Limit: 10, RetryAfter: 3 * time.Second,
	}
	cases := []struct {
		name   string
		err    error
		status int
		code   string
	}{
		{"no-points", adawave.ErrNoPoints, http.StatusConflict, CodeNoPoints},
		{"config-mismatch", adawave.ErrConfigMismatch, http.StatusConflict, CodeConfigMismatch},
		{"invalid-input", fmt.Errorf("row 7: %w", adawave.ErrInvalidInput), http.StatusUnprocessableEntity, CodeInvalidInput},
		{"deadline", adawave.ErrDeadlineExceeded, http.StatusGatewayTimeout, CodeDeadlineExceeded},
		{"ctx-deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, CodeDeadlineExceeded},
		{"canceled", adawave.ErrCanceled, StatusClientClosedRequest, CodeCanceled},
		{"ctx-canceled", context.Canceled, StatusClientClosedRequest, CodeCanceled},
		{"quota-bare", adawave.ErrResourceExhausted, http.StatusTooManyRequests, CodeResourceExhausted},
		{"quota-scheduler", quotaErr, http.StatusTooManyRequests, CodeResourceExhausted},
		{"quota-wrapped", fmt.Errorf("admission: %w", quotaErr), http.StatusTooManyRequests, CodeResourceExhausted},
		{"too-large", &http.MaxBytesError{Limit: 64}, http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"unknown", errors.New("disk on fire"), http.StatusInternalServerError, CodeInternal},
	}
	for _, c := range cases {
		status, code := Classify(c.err)
		if status != c.status || code != c.code {
			t.Errorf("%s: Classify(%v) = %d %s, want %d %s", c.name, c.err, status, code, c.status, c.code)
		}
	}
}

// TestQuotaDetails pins the machine-readable shape of the resource_exhausted
// details: which quota tripped, the tenant's standing, and the retry hint —
// the contract a client backoff loop keys on.
func TestQuotaDetails(t *testing.T) {
	qe := &sched.QuotaError{
		Tenant: "acme", Resource: "points", Current: 900, Limit: 1000, RetryAfter: 5 * time.Second,
	}
	details, retry, ok := QuotaDetails(fmt.Errorf("append: %w", qe))
	if !ok || retry != 5*time.Second {
		t.Fatalf("QuotaDetails: ok=%v retry=%v", ok, retry)
	}
	for k, want := range map[string]any{
		"quota":             "points",
		"tenant":            "acme",
		"current":           float64(900),
		"limit":             float64(1000),
		"retryAfterSeconds": int64(5),
	} {
		if details[k] != want {
			t.Errorf("details[%q] = %v (%T), want %v", k, details[k], details[k], want)
		}
	}

	// Sub-second hints round up to one second so Retry-After is never 0.
	if _, retry, ok := QuotaDetails(&sched.QuotaError{Resource: "qps", RetryAfter: 10 * time.Millisecond}); !ok || retry != time.Second {
		t.Fatalf("sub-second hint: ok=%v retry=%v, want 1s", ok, retry)
	}

	// A bare sentinel carries no standing: callers fall back to defaults.
	if _, _, ok := QuotaDetails(adawave.ErrResourceExhausted); ok {
		t.Fatal("bare ErrResourceExhausted must not yield details")
	}
}
