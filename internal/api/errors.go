package api

import (
	"context"
	"errors"
	"net/http"
	"time"

	"adawave"
	"adawave/internal/sched"
)

// The v1 error envelope: every non-2xx response is
//
//	{"error": {"code": "...", "message": "...", "details": {...}}}
//
// Code is the stable, machine-matchable vocabulary below; Message is for
// humans and carries no contract; Details is optional structured context.

// Error codes of the v1 surface.
const (
	// CodeInvalidInput: the request body or the session data is at fault
	// (malformed JSON/CSV, ragged rows, non-finite coordinate, grid too
	// small for the decomposition depth) — fix the input before retrying.
	CodeInvalidInput = "invalid_input"
	// CodeNotFound: the session id does not exist.
	CodeNotFound = "not_found"
	// CodeNoPoints: a read on a session that holds no points yet.
	CodeNoPoints = "no_points"
	// CodeConfigMismatch: a checkpoint or restore under a configuration
	// other than the one the state was written with.
	CodeConfigMismatch = "config_mismatch"
	// CodeEmbeddingMismatch: the embedding-specific refinement of
	// config_mismatch — checkpoint and engine disagree on the embedding
	// spec. Classified before the broad code because the Go error wraps
	// ErrConfigMismatch.
	CodeEmbeddingMismatch = "embedding_mismatch"
	// CodeCanceled: the client went away and the in-flight pipeline was
	// aborted; nothing was computed or mutated.
	CodeCanceled = "canceled"
	// CodeDeadlineExceeded: the per-request deadline expired before the
	// pipeline finished; the session is untouched.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeTooLarge: the request body exceeded the configured byte cap.
	CodeTooLarge = "too_large"
	// CodeSessionLimit / CodePointLimit: a resource cap was reached.
	CodeSessionLimit = "session_limit"
	CodePointLimit   = "point_limit"
	// CodeConflict: the request is valid but the server state refuses it
	// (e.g. checkpointing with persistence disabled).
	CodeConflict = "conflict"
	// CodeDurability: the mutation applied but could not be journaled; the
	// session refuses further mutations until a checkpoint succeeds.
	CodeDurability = "durability"
	// CodeResourceExhausted: the request was refused at admission because a
	// tenant quota (points, cells, concurrent folds, request rate) is
	// exhausted. Rendered as 429 with a Retry-After header; Details carries
	// the machine-readable standing (see QuotaDetails). Nothing executed —
	// resend the identical request after the hint.
	CodeResourceExhausted = "resource_exhausted"
	// CodeNotPrimary: the request landed on a cluster follower, which only
	// serves reads of its replicated state; mutations and label reads belong
	// on the primary (or on this node after a promote). Rendered as 409.
	CodeNotPrimary = "not_primary"
	// CodeUnavailable: the router cannot reach a healthy node for this
	// session's shard right now (a failover is in progress). Rendered as 503
	// with a Retry-After header; resend the identical request after the
	// hint — idempotent requests are safe to retry automatically.
	CodeUnavailable = "unavailable"
	// CodeUnauthorized: a /v1/replication/ request without the cluster
	// secret the node was started with (see HeaderClusterSecret). Rendered
	// as 401.
	CodeUnauthorized = "unauthorized"
	// CodeReplicationRestart: a follower asked for the WAL stream from a
	// sequence the primary has already folded into a checkpoint (the log was
	// truncated underneath the subscription). Rendered as 409; the follower
	// must re-sync from the current checkpoint and resubscribe.
	CodeReplicationRestart = "replication_restart"
	// CodeInternal: an engine invariant or IO failure — the server's fault.
	CodeInternal = "internal"
)

// StatusClientClosedRequest is the nginx-convention 499 used when the
// pipeline was aborted because the client disconnected: the response is
// almost never delivered, but the status keeps access logs and metrics from
// counting a client hang-up as a 5xx server fault.
const StatusClientClosedRequest = 499

// ErrorBody is the inner object of the envelope.
type ErrorBody struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
}

// ErrorResponse is the envelope itself.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// Classify maps an error from the adawave taxonomy (or the raw context
// sentinels, or net/http's body-cap error) to the HTTP status and stable
// error code of the v1 contract:
//
//	ErrNoPoints                 → 409 no_points
//	ErrEmbeddingMismatch        → 409 embedding_mismatch
//	ErrConfigMismatch           → 409 config_mismatch
//	ErrInvalidInput             → 422 invalid_input
//	ErrCanceled                 → 499 canceled      (client abort, not a 5xx)
//	ErrDeadlineExceeded         → 504 deadline_exceeded
//	ErrResourceExhausted        → 429 resource_exhausted
//	http.MaxBytesError          → 413 too_large
//	anything else               → 500 internal
//
// The taxonomy is matched with errors.Is, so wrapped errors classify the
// same as bare ones.
func Classify(err error) (status int, code string) {
	var mbe *http.MaxBytesError
	switch {
	case errors.Is(err, adawave.ErrNoPoints):
		return http.StatusConflict, CodeNoPoints
	// ErrEmbeddingMismatch wraps ErrConfigMismatch, so the refinement must
	// be checked first or it would classify as the broad code.
	case errors.Is(err, adawave.ErrEmbeddingMismatch):
		return http.StatusConflict, CodeEmbeddingMismatch
	case errors.Is(err, adawave.ErrConfigMismatch):
		return http.StatusConflict, CodeConfigMismatch
	case errors.Is(err, adawave.ErrInvalidInput):
		return http.StatusUnprocessableEntity, CodeInvalidInput
	case errors.Is(err, adawave.ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeDeadlineExceeded
	case errors.Is(err, adawave.ErrCanceled), errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, CodeCanceled
	case errors.Is(err, adawave.ErrResourceExhausted):
		return http.StatusTooManyRequests, CodeResourceExhausted
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge, CodeTooLarge
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// QuotaDetails extracts the machine-readable standing of a quota rejection:
// the details map of the resource_exhausted envelope ({quota, current, limit,
// retryAfterSeconds, tenant}) and the Retry-After duration for the header.
// ok is false when err carries no *sched.QuotaError (e.g. a bare
// ErrResourceExhausted) — the caller then omits details and uses a default
// retry hint.
func QuotaDetails(err error) (details map[string]any, retryAfter time.Duration, ok bool) {
	var qe *sched.QuotaError
	if !errors.As(err, &qe) {
		return nil, 0, false
	}
	retryAfter = qe.RetryAfter
	if retryAfter < time.Second {
		retryAfter = time.Second
	}
	return map[string]any{
		"quota":             qe.Resource,
		"tenant":            qe.Tenant,
		"current":           qe.Current,
		"limit":             qe.Limit,
		"retryAfterSeconds": int64(retryAfter / time.Second),
	}, retryAfter, true
}
