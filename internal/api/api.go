// Package api is the versioned wire contract of the adawave HTTP surface:
// the typed request/response DTOs, the structured error envelope and the
// error-code vocabulary shared by cmd/adawave-serve (which renders them) and
// the adawave/client package (which consumes them). Keeping both sides on
// one set of types makes a silent server/client drift a compile error
// instead of a production incident.
//
// The wire surface is versioned under /v1; the DTOs here describe v1.
// Compatible additions (new optional fields, new endpoints) extend these
// types in place; an incompatible change must fork a v2 package and mount it
// beside /v1, never mutate v1.
package api

import "adawave/internal/persist"

// Version is the wire-contract version these DTOs describe, as mounted in
// the URL space.
const Version = "v1"

// SessionConfig is the JSON body of POST /v1/sessions; every field is
// optional (pointer or zero value = keep the paper's parameter-free
// default).
type SessionConfig struct {
	Scale           *int     `json:"scale,omitempty"`
	Levels          *int     `json:"levels,omitempty"`
	Basis           string   `json:"basis,omitempty"`
	Connectivity    string   `json:"connectivity,omitempty"`
	CoeffEpsilon    *float64 `json:"coeffEpsilon,omitempty"`
	MinClusterCells *int     `json:"minClusterCells,omitempty"`
	MinClusterMass  *float64 `json:"minClusterMass,omitempty"`
	// Embedding installs a dimensionality-reduction front-end as the
	// session pipeline's first stage; omitted = no embedding.
	Embedding *EmbeddingSpec `json:"embedding,omitempty"`
}

// EmbeddingSpec is the wire form of an embedding front-end: Kind is "pca" or
// "rp", K the output dimensionality, Seed the random-projection seed (pca
// ignores it). The session fits the embedding once, on its first appended
// batch, and checkpoints the fitted parameters; restoring the session under
// a different spec fails with embedding_mismatch.
type EmbeddingSpec struct {
	Kind string `json:"kind"`
	K    int    `json:"k"`
	Seed int64  `json:"seed,omitempty"`
}

// CreateSessionResponse answers POST /v1/sessions. Tenant is the tenant the
// session is accounted under — the API key's tenant, or "default" for keyless
// requests.
type CreateSessionResponse struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
}

// SessionInfo is one row of GET /v1/sessions. Resident reports whether the
// session is live in memory (false: evicted to its checkpoint, rehydrated
// transparently on next touch).
type SessionInfo struct {
	ID       string `json:"id"`
	Points   int    `json:"points"`
	Dim      int    `json:"dim"`
	Tenant   string `json:"tenant,omitempty"`
	Resident bool   `json:"resident"`
}

// ListSessionsResponse answers GET /v1/sessions.
type ListSessionsResponse struct {
	Sessions []SessionInfo `json:"sessions"`
}

// SessionDetail answers GET /v1/sessions/{id}: the session's shape plus its
// live-grid cell count (pending mutations folded first) and, when the server
// runs with -data-dir, its durability state.
type SessionDetail struct {
	ID     string `json:"id"`
	Points int    `json:"points"`
	Dim    int    `json:"dim"`
	Cells  int    `json:"cells"`
	// Durable reports whether the session is backed by a checkpoint + WAL
	// directory; LastCheckpointSeq is the WAL sequence the newest on-disk
	// checkpoint folds in (0 before the first checkpoint).
	Durable           bool   `json:"durable"`
	LastCheckpointSeq uint64 `json:"lastCheckpointSeq"`
	// Tenant is the tenant the session is accounted under; Resident reports
	// whether it is live in memory (a detail read rehydrates it, so Resident
	// is true in the response); ResidentBytes estimates its heap footprint.
	Tenant        string `json:"tenant,omitempty"`
	Resident      bool   `json:"resident"`
	ResidentBytes int64  `json:"residentBytes"`
	// Embedding echoes the session's embedding front-end; omitted when the
	// session runs without one.
	Embedding *EmbeddingSpec `json:"embedding,omitempty"`
	// Replication reports this node's replication standing for the session
	// (primary's WAL position, or a follower's applied position and lag);
	// omitted on a standalone node.
	Replication *ReplicationStatus `json:"replication,omitempty"`
}

// AppendRequest is the JSON body of POST /v1/sessions/{id}/points (the
// text/csv body is the streaming alternative).
type AppendRequest struct {
	Points [][]float64 `json:"points"`
}

// AppendResponse answers POST /v1/sessions/{id}/points.
type AppendResponse struct {
	Appended int `json:"appended"`
	Points   int `json:"points"`
}

// RemoveRequest is the JSON body of DELETE /v1/sessions/{id}/points.
type RemoveRequest struct {
	Indices []int `json:"indices"`
}

// RemoveResponse answers DELETE /v1/sessions/{id}/points.
type RemoveResponse struct {
	Removed int `json:"removed"`
	Points  int `json:"points"`
}

// Result is the serialized form of one clustering result. Labels is omitted
// where the endpoint (or ?labels=false) returns diagnostics only.
type Result struct {
	Labels           []int   `json:"labels,omitempty"`
	NumClusters      int     `json:"numClusters"`
	Noise            int     `json:"noise"`
	Threshold        float64 `json:"threshold"`
	Levels           int     `json:"levels"`
	Scale            int     `json:"scale"`
	CellsQuantized   int     `json:"cellsQuantized"`
	CellsTransformed int     `json:"cellsTransformed"`
	CellsKept        int     `json:"cellsKept"`
}

// MultiResolutionResponse answers GET /v1/sessions/{id}/multiresolution.
type MultiResolutionResponse struct {
	Levels []Result `json:"levels"`
}

// CheckpointResponse answers POST /v1/sessions/{id}/checkpoint.
type CheckpointResponse struct {
	Seq    uint64 `json:"seq"`
	Points int    `json:"points"`
}

// QuotaLimits mirrors a tenant's configured quota; a zero field means
// unlimited.
type QuotaLimits struct {
	MaxPoints          int64   `json:"maxPoints"`
	MaxCells           int64   `json:"maxCells"`
	MaxConcurrentFolds int     `json:"maxConcurrentFolds"`
	MaxQPS             float64 `json:"maxQps"`
}

// TenantUsage answers GET /v1/tenants/{id}/usage: the tenant's standing
// against its quotas plus its session residency.
type TenantUsage struct {
	Tenant string `json:"tenant"`
	// Points and Cells are the tenant's totals across all its sessions
	// (cells as of each session's last fold).
	Points int64 `json:"points"`
	Cells  int64 `json:"cells"`
	// Sessions counts the tenant's sessions; ResidentSessions those live in
	// memory; ResidentBytes their estimated heap footprint.
	Sessions         int   `json:"sessions"`
	ResidentSessions int   `json:"residentSessions"`
	ResidentBytes    int64 `json:"residentBytes"`
	// Folds is the tenant's in-flight compute passes; QPS its observed
	// request rate over the sliding 10 s admission window.
	Folds int     `json:"folds"`
	QPS   float64 `json:"qps"`
	// Quota is the limits in force (zero = unlimited).
	Quota QuotaLimits `json:"quota"`
}

// HealthzResponse answers GET /healthz.
type HealthzResponse struct {
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
}

// RouteMetrics is one route's counters in GET /v1/metrics: total requests,
// responses with a 5xx status, client-abort (499) responses, and latency
// aggregates in milliseconds.
type RouteMetrics struct {
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	ClientAborts int64   `json:"clientAborts"`
	TotalMs      float64 `json:"totalMs"`
	MaxMs        float64 `json:"maxMs"`
}

// MetricsResponse answers GET /v1/metrics — expvar-style JSON counters, no
// external metrics dependency.
type MetricsResponse struct {
	UptimeSeconds float64                 `json:"uptimeSeconds"`
	Routes        map[string]RouteMetrics `json:"routes"`
	// Replication is present on nodes running with a cluster role: the
	// node's role and, per session, the replication standing (on a follower,
	// the observable lag).
	Replication *ReplicationStatusResponse `json:"replication,omitempty"`
}

// NDJSON label streaming (GET /v1/sessions/{id}/labels with
// Accept: application/x-ndjson): the response is one LabelsMeta line
// followed by ⌈points/chunk⌉ LabelsChunk lines in ascending offset order,
// each flushed as soon as it is encoded — a million-label session streams in
// constant server memory instead of buffering one giant JSON array.

// LabelsMeta is the first NDJSON line: the result diagnostics (Labels
// omitted), the total point count and the chunk size of the following lines.
type LabelsMeta struct {
	Meta struct {
		Result Result `json:"result"`
		Points int    `json:"points"`
		Chunk  int    `json:"chunk"`
	} `json:"meta"`
}

// LabelsChunk is one streamed slice of the label vector: Labels holds the
// labels of points [Offset, Offset+len(Labels)).
type LabelsChunk struct {
	Offset int   `json:"offset"`
	Labels []int `json:"labels"`
}

// Cluster mode (see internal/cluster): a primary exposes its sessions'
// checkpoints and WAL frames under /v1/replication/, a follower streams
// them into warm replicas, and the router promotes the follower when the
// primary dies. The DTOs below are that control plane's wire surface.

// Wire headers of the cluster surface.
const (
	// HeaderSessionID lets the router pin a new session's id on
	// POST /v1/sessions so placement (consistent hash of the id) is decided
	// before the session exists.
	HeaderSessionID = "X-Adawave-Session-Id"
	// HeaderCheckpointSeq carries the WAL sequence a streamed checkpoint
	// folds in (GET /v1/replication/sessions/{id}/checkpoint).
	HeaderCheckpointSeq = "X-Adawave-Checkpoint-Seq"
	// HeaderWALSeq carries the primary's last WAL sequence at the moment a
	// frame stream opens (GET /v1/replication/sessions/{id}/wal).
	HeaderWALSeq = "X-Adawave-Wal-Seq"
	// HeaderClusterSecret carries the shared cluster credential on
	// node-to-node traffic: every /v1/replication/ request (the feed hands
	// out full session data, and promote mutates the cluster topology) must
	// present the -cluster-secret the receiving node was started with.
	HeaderClusterSecret = "X-Adawave-Cluster-Secret"
)

// ReplicationStatus is one session's replication standing on one node. On a
// primary, AppliedSeq and PrimarySeq are both the session's WAL position;
// on a follower, AppliedSeq is the last sequence applied locally,
// PrimarySeq the last position learned from the primary, and Lag their
// difference.
type ReplicationStatus struct {
	Role       string `json:"role"` // "primary" or "follower"
	Primary    string `json:"primary,omitempty"`
	AppliedSeq uint64 `json:"appliedSeq"`
	PrimarySeq uint64 `json:"primarySeq"`
	Lag        uint64 `json:"lag"`
	Connected  bool   `json:"connected"`
	LastError  string `json:"lastError,omitempty"`
}

// ReplicationSessionInfo is one row of GET /v1/replication/sessions — what a
// follower needs to provision a replica: the identity, the exact
// configuration fingerprint (round-tripped through the same canonical
// renderer as config.json), and the primary's durable positions.
type ReplicationSessionInfo struct {
	ID            string             `json:"id"`
	Tenant        string             `json:"tenant,omitempty"`
	Config        persist.ConfigMeta `json:"config"`
	CheckpointSeq uint64             `json:"checkpointSeq"`
	WALSeq        uint64             `json:"walSeq"`
	Points        int                `json:"points"`
	Dim           int                `json:"dim"`
}

// ReplicationSessionsResponse answers GET /v1/replication/sessions.
type ReplicationSessionsResponse struct {
	Role     string                   `json:"role"`
	Sessions []ReplicationSessionInfo `json:"sessions"`
}

// ReplicationStatusResponse answers GET /v1/replication/status and is
// embedded in /v1/metrics: the node's role, the primary it follows (if
// any), its configured peers, and the per-session standing.
type ReplicationStatusResponse struct {
	Role     string                       `json:"role"`
	Primary  string                       `json:"primary,omitempty"`
	Peers    []string                     `json:"peers,omitempty"`
	Sessions map[string]ReplicationStatus `json:"sessions,omitempty"`
}

// PromoteResponse answers POST /v1/replication/promote: the follower
// adopted its warm replicas into the serving registry and now answers as a
// primary.
type PromoteResponse struct {
	Role     string   `json:"role"`
	Promoted int      `json:"promoted"`
	Sessions []string `json:"sessions,omitempty"`
}

// ShardStatus is one shard's standing in the router's GET /v1/cluster/status:
// the configured pair, the node currently serving the shard's traffic, and
// the state machine position ("healthy", "failover" while promotion is in
// flight — traffic answers 503 + Retry-After — or "promoted").
type ShardStatus struct {
	Primary  string `json:"primary"`
	Follower string `json:"follower"`
	Active   string `json:"active"`
	State    string `json:"state"`
}

// RouterStatusResponse answers the router's GET /v1/cluster/status.
type RouterStatusResponse struct {
	Shards []ShardStatus `json:"shards"`
}
