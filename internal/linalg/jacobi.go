package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix: Values[i] is the
// i-th eigenvalue (ascending) and Vectors.Row(i) is NOT its eigenvector —
// eigenvectors are stored column-wise: column i of Vectors corresponds to
// Values[i].
type Eigen struct {
	Values  []float64
	Vectors *Matrix // column i ↔ Values[i]
}

// JacobiEigen computes all eigenvalues and eigenvectors of a symmetric
// matrix using the cyclic Jacobi rotation method. The input is not modified.
// Eigenvalues are returned in ascending order.
func JacobiEigen(m *Matrix, maxSweeps int) (*Eigen, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: eigendecomposition of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	if !m.IsSymmetric(1e-9) {
		return nil, fmt.Errorf("linalg: JacobiEigen requires a symmetric matrix")
	}
	n := m.Rows
	if maxSweeps <= 0 {
		maxSweeps = 64
	}
	a := m.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(a)
		if off < 1e-13 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(a, v, p, q, c, s)
			}
		}
	}
	eig := &Eigen{Values: make([]float64, n), Vectors: NewMatrix(n, n)}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = a.At(i, i)
	}
	sort.Slice(order, func(x, y int) bool { return diag[order[x]] < diag[order[y]] })
	for rank, col := range order {
		eig.Values[rank] = diag[col]
		for r := 0; r < n; r++ {
			eig.Vectors.Set(r, rank, v.At(r, col))
		}
	}
	return eig, nil
}

// rotate applies the Jacobi rotation G(p,q,θ) to a (two-sided) and v
// (one-sided, accumulating eigenvectors).
func rotate(a, v *Matrix, p, q int, c, s float64) {
	n := a.Rows
	for i := 0; i < n; i++ {
		aip, aiq := a.At(i, p), a.At(i, q)
		a.Set(i, p, c*aip-s*aiq)
		a.Set(i, q, s*aip+c*aiq)
	}
	for j := 0; j < n; j++ {
		apj, aqj := a.At(p, j), a.At(q, j)
		a.Set(p, j, c*apj-s*aqj)
		a.Set(q, j, s*apj+c*aqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(a *Matrix) float64 {
	var s float64
	for i := 0; i < a.Rows; i++ {
		for j := i + 1; j < a.Cols; j++ {
			s += a.At(i, j) * a.At(i, j)
		}
	}
	return math.Sqrt(2 * s)
}
