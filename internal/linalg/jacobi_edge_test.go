package linalg

import (
	"math"
	"testing"
)

// Edge cases of the Jacobi eigensolver that the PCA embedder leans on:
// degenerate spectra (repeated eigenvalues), rank-deficient covariance
// matrices (fewer samples than dimensions, or constant coordinates), the
// trivial 1×1 problem, and rejection of inputs outside the symmetric
// contract.

// TestJacobiRepeatedEigenvalues: a matrix with a degenerate eigenspace.
// Individual eigenvectors of a repeated eigenvalue are not unique, so the
// test checks the invariants that are: the multiset of eigenvalues, the
// eigenpair residual A·v = λ·v, and orthonormality of the returned basis.
func TestJacobiRepeatedEigenvalues(t *testing.T) {
	// Spectrum {1, 1, 4}: reflection of the all-ones direction scaled.
	// A = I + J where J is the all-ones 3×3 matrix (eigenvalues of J: 3,0,0).
	a, _ := FromRows([][]float64{
		{2, 1, 1},
		{1, 2, 1},
		{1, 1, 2},
	})
	eig, err := JacobiEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 4}
	for i, w := range want {
		if !almostEq(eig.Values[i], w, 1e-10) {
			t.Fatalf("eigenvalues = %v, want %v", eig.Values, want)
		}
	}
	checkEigenInvariants(t, a, eig, 1e-9)
}

// TestJacobiRankDeficient: a singular covariance-shaped matrix. PCA on
// fewer samples than dimensions produces exactly this: rank ≤ n-1 with a
// zero eigenvalue per null direction.
func TestJacobiRankDeficient(t *testing.T) {
	// A = x·xᵀ for x = (1, 2, 2): rank 1, spectrum {0, 0, |x|² = 9}.
	x := []float64{1, 2, 2}
	n := len(x)
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, x[i]*x[j])
		}
	}
	eig, err := JacobiEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(eig.Values[0], 0, 1e-10) || !almostEq(eig.Values[1], 0, 1e-10) || !almostEq(eig.Values[2], 9, 1e-10) {
		t.Fatalf("rank-1 spectrum = %v, want [0 0 9]", eig.Values)
	}
	checkEigenInvariants(t, a, eig, 1e-9)

	// The top eigenvector must span x (up to sign).
	dot := 0.0
	for r := 0; r < n; r++ {
		dot += eig.Vectors.At(r, 2) * x[r]
	}
	if !almostEq(math.Abs(dot), 3, 1e-9) { // |x| = 3, unit eigenvector
		t.Fatalf("top eigenvector not aligned with x: |v·x| = %v, want 3", math.Abs(dot))
	}
}

// TestJacobiZeroMatrix: the all-zero matrix (constant dataset covariance)
// must decompose cleanly rather than loop or divide by zero.
func TestJacobiZeroMatrix(t *testing.T) {
	a := NewMatrix(4, 4)
	eig, err := JacobiEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range eig.Values {
		if v != 0 {
			t.Fatalf("eigenvalue %d of zero matrix = %v", i, v)
		}
	}
	checkEigenInvariants(t, a, eig, 1e-12)
}

// TestJacobiOneByOne: the 1×1 problem is its own decomposition.
func TestJacobiOneByOne(t *testing.T) {
	a, _ := FromRows([][]float64{{-2.5}})
	eig, err := JacobiEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(eig.Values) != 1 || eig.Values[0] != -2.5 {
		t.Fatalf("1×1 eigenvalues = %v, want [-2.5]", eig.Values)
	}
	if eig.Vectors.At(0, 0) != 1 {
		t.Fatalf("1×1 eigenvector = %v, want 1", eig.Vectors.At(0, 0))
	}
}

// TestJacobiRejectsNonSymmetric: inputs outside the symmetric contract are
// refused outright — both the hard asymmetric case and one just past the
// symmetry tolerance.
func TestJacobiRejectsNonSymmetric(t *testing.T) {
	hard, _ := FromRows([][]float64{{1, 5}, {-5, 1}})
	if _, err := JacobiEigen(hard, 0); err == nil {
		t.Fatal("hard asymmetric matrix must be rejected")
	}
	slight, _ := FromRows([][]float64{{1, 1}, {1 + 1e-6, 1}})
	if _, err := JacobiEigen(slight, 0); err == nil {
		t.Fatal("matrix asymmetric beyond tolerance must be rejected")
	}
	rect := NewMatrix(3, 2)
	if _, err := JacobiEigen(rect, 0); err == nil {
		t.Fatal("rectangular matrix must be rejected")
	}
}

// checkEigenInvariants verifies A·v_i = λ_i·v_i for every returned pair and
// that the eigenvector columns form an orthonormal basis.
func checkEigenInvariants(t *testing.T, a *Matrix, eig *Eigen, tol float64) {
	t.Helper()
	n := a.Rows
	for k := 0; k < n; k++ {
		vec := make([]float64, n)
		for r := 0; r < n; r++ {
			vec[r] = eig.Vectors.At(r, k)
		}
		av, err := a.MulVec(vec)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < n; r++ {
			if !almostEq(av[r], eig.Values[k]*vec[r], tol) {
				t.Fatalf("eigenpair %d residual at row %d: %v vs %v", k, r, av[r], eig.Values[k]*vec[r])
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dot := 0.0
			for r := 0; r < n; r++ {
				dot += eig.Vectors.At(r, i) * eig.Vectors.At(r, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(dot, want, tol) {
				t.Fatalf("eigenvector columns %d,%d not orthonormal: dot = %v", i, j, dot)
			}
		}
	}
}
