package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, -4.5)
	if m.At(0, 0) != 1 || m.At(1, 2) != -4.5 {
		t.Fatalf("At/Set round trip failed: %+v", m)
	}
	if m.At(0, 1) != 0 {
		t.Fatalf("fresh matrix not zeroed")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected matrix %+v", m)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows should error")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Fatalf("empty FromRows: %v %+v", err, empty)
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	v, err := a.MulVec([]float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != -1 || v[1] != -1 {
		t.Fatalf("MulVec = %v", v)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestDistances(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if Dist(a, b) != 5 {
		t.Fatalf("Dist = %v, want 5", Dist(a, b))
	}
	if SqDist(a, b) != 25 {
		t.Fatalf("SqDist = %v, want 25", SqDist(a, b))
	}
	if Norm2(b) != 5 {
		t.Fatalf("Norm2 = %v, want 5", Norm2(b))
	}
	if Dot(a, b) != 0 {
		t.Fatalf("Dot = %v, want 0", Dot(a, b))
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	// A = L0·L0ᵀ is positive definite by construction.
	l0, _ := FromRows([][]float64{{2, 0, 0}, {1, 3, 0}, {-1, 0.5, 1.5}})
	a, _ := l0.Mul(l0.T())
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	back, _ := l.Mul(l.T())
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(back.At(i, j), a.At(i, j), 1e-10) {
				t.Fatalf("L·Lᵀ mismatch at %d,%d: %v vs %v", i, j, back.At(i, j), a.At(i, j))
			}
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square should error")
	}
}

func TestSolveCholesky(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := SolveCholesky(l, []float64{8, 7})
	if err != nil {
		t.Fatal(err)
	}
	// Verify A·x = b.
	b, _ := a.MulVec(x)
	if !almostEq(b[0], 8, 1e-10) || !almostEq(b[1], 7, 1e-10) {
		t.Fatalf("solve failed: A·x = %v", b)
	}
}

func TestJacobiEigenKnown(t *testing.T) {
	// diag(1, 2, 3) rotated is easy; use a matrix with known spectrum.
	a, _ := FromRows([][]float64{{2, 1}, {1, 2}}) // eigenvalues 1 and 3
	eig, err := JacobiEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(eig.Values[0], 1, 1e-10) || !almostEq(eig.Values[1], 3, 1e-10) {
		t.Fatalf("eigenvalues = %v, want [1 3]", eig.Values)
	}
}

func TestJacobiEigenResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 6
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	eig, err := JacobiEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Check A·v_i = λ_i·v_i for every eigenpair.
	for k := 0; k < n; k++ {
		vec := make([]float64, n)
		for r := 0; r < n; r++ {
			vec[r] = eig.Vectors.At(r, k)
		}
		av, _ := a.MulVec(vec)
		for r := 0; r < n; r++ {
			if !almostEq(av[r], eig.Values[k]*vec[r], 1e-8) {
				t.Fatalf("eigenpair %d residual at row %d: %v vs %v", k, r, av[r], eig.Values[k]*vec[r])
			}
		}
	}
	// Eigenvalues ascending.
	for k := 1; k < n; k++ {
		if eig.Values[k] < eig.Values[k-1] {
			t.Fatalf("eigenvalues not ascending: %v", eig.Values)
		}
	}
}

func TestJacobiEigenErrors(t *testing.T) {
	if _, err := JacobiEigen(NewMatrix(2, 3), 0); err == nil {
		t.Fatal("non-square should error")
	}
	m, _ := FromRows([][]float64{{0, 1}, {2, 0}})
	if _, err := JacobiEigen(m, 0); err == nil {
		t.Fatal("asymmetric should error")
	}
}

// Property: the trace of a symmetric matrix equals the sum of its
// eigenvalues (invariant of the Jacobi rotations).
func TestJacobiTraceInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(rng.Int31n(5))
		a := NewMatrix(n, n)
		trace := 0.0
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
			trace += a.At(i, i)
		}
		eig, err := JacobiEigen(a, 0)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, l := range eig.Values {
			sum += l
		}
		return almostEq(sum, trace, 1e-8*(1+math.Abs(trace)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky round-trips A = L·Lᵀ for random SPD matrices.
func TestCholeskyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(rng.Int31n(4))
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		// A = BᵀB + n·I is SPD.
		a, _ := b.T().Mul(b)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		back, _ := l.Mul(l.T())
		for i := range a.Data {
			if !almostEq(a.Data[i], back.Data[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
