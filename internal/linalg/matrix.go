// Package linalg provides the small dense linear-algebra kernel used by the
// clustering baselines (EM covariance handling, spectral embeddings). It is
// deliberately minimal: row-major dense matrices, Cholesky factorization and
// a Jacobi eigensolver for symmetric matrices. Everything is stdlib-only.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid matrix size %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("linalg: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(row))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range oi {
				oi[j] += a * bk[j]
			}
		}
	}
	return out, nil
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d · %d-vector", m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
	return out, nil
}

// IsSymmetric reports whether the matrix is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Dot returns the dot product of equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular L with m = L·Lᵀ. The input must be
// symmetric positive definite; otherwise ErrNotPositiveDefinite is returned.
func Cholesky(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := m.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}

// SolveCholesky solves m·x = b given the Cholesky factor L of m.
func SolveCholesky(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d != %d", len(b), n)
	}
	// Forward solve L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back solve Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
