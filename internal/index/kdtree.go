// Package index provides a KD-tree over d-dimensional points with radius
// and k-nearest-neighbor queries — the spatial-index substrate for the
// DBSCAN and spectral-clustering baselines. Build is O(n log n); queries
// prune by bounding box, degrading gracefully toward linear scans in high
// dimension (correctness never depends on pruning).
package index

import (
	"container/heap"
	"math"
	"sort"

	"adawave/internal/linalg"
)

// KDTree is an immutable spatial index over a point set. The tree holds
// indices into the original slice; points are not copied.
type KDTree struct {
	points [][]float64
	idx    []int // permutation of 0…n−1, partitioned recursively
	nodes  []node
	dim    int
}

type node struct {
	lo, hi      int // range into idx
	split       int // splitting dimension, -1 for leaf
	mid         int // index (into idx) of the median element
	left, right int // child node offsets, -1 for none
	min, max    []float64
}

const leafSize = 16

// Build constructs a KD-tree. It panics on ragged input; an empty input
// yields an empty tree whose queries return nothing.
func Build(points [][]float64) *KDTree {
	t := &KDTree{points: points}
	if len(points) == 0 {
		return t
	}
	t.dim = len(points[0])
	t.idx = make([]int, len(points))
	for i := range t.idx {
		t.idx[i] = i
	}
	t.build(0, len(points))
	return t
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.points) }

func (t *KDTree) build(lo, hi int) int {
	nd := node{lo: lo, hi: hi, split: -1, left: -1, right: -1}
	nd.min = make([]float64, t.dim)
	nd.max = make([]float64, t.dim)
	for j := 0; j < t.dim; j++ {
		nd.min[j] = math.Inf(1)
		nd.max[j] = math.Inf(-1)
	}
	for _, i := range t.idx[lo:hi] {
		p := t.points[i]
		for j, v := range p {
			if v < nd.min[j] {
				nd.min[j] = v
			}
			if v > nd.max[j] {
				nd.max[j] = v
			}
		}
	}
	self := len(t.nodes)
	t.nodes = append(t.nodes, nd)
	if hi-lo <= leafSize {
		return self
	}
	// Split on the widest dimension at the median.
	split := 0
	width := nd.max[0] - nd.min[0]
	for j := 1; j < t.dim; j++ {
		if w := nd.max[j] - nd.min[j]; w > width {
			split, width = j, w
		}
	}
	if width == 0 {
		return self // all points identical: keep as leaf
	}
	mid := (lo + hi) / 2
	sub := t.idx[lo:hi]
	sort.Slice(sub, func(a, b int) bool {
		return t.points[sub[a]][split] < t.points[sub[b]][split]
	})
	left := t.build(lo, mid)
	right := t.build(mid, hi)
	t.nodes[self].split = split
	t.nodes[self].mid = mid
	t.nodes[self].left = left
	t.nodes[self].right = right
	return self
}

// Radius calls fn with the index of every point within Euclidean distance r
// of q (including a point equal to q itself if indexed).
func (t *KDTree) Radius(q []float64, r float64, fn func(i int)) {
	if len(t.nodes) == 0 {
		return
	}
	r2 := r * r
	t.radius(0, q, r, r2, fn)
}

func (t *KDTree) radius(n int, q []float64, r, r2 float64, fn func(i int)) {
	nd := &t.nodes[n]
	if boxDist2(q, nd.min, nd.max) > r2 {
		return
	}
	if nd.split < 0 {
		for _, i := range t.idx[nd.lo:nd.hi] {
			if linalg.SqDist(q, t.points[i]) <= r2 {
				fn(i)
			}
		}
		return
	}
	t.radius(nd.left, q, r, r2, fn)
	t.radius(nd.right, q, r, r2, fn)
}

// Neighbor is one k-NN result.
type Neighbor struct {
	Index int
	Dist  float64
}

// KNN returns the k nearest neighbors of q in ascending distance order
// (fewer if the tree holds fewer points). A point equal to q is included.
func (t *KDTree) KNN(q []float64, k int) []Neighbor {
	if len(t.nodes) == 0 || k <= 0 {
		return nil
	}
	h := &nnHeap{}
	t.knn(0, q, k, h)
	out := make([]Neighbor, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Neighbor)
	}
	return out
}

func (t *KDTree) knn(n int, q []float64, k int, h *nnHeap) {
	nd := &t.nodes[n]
	if h.Len() == k && boxDist2(q, nd.min, nd.max) > (*h)[0].Dist {
		return
	}
	if nd.split < 0 {
		for _, i := range t.idx[nd.lo:nd.hi] {
			d := linalg.SqDist(q, t.points[i])
			if h.Len() < k {
				heap.Push(h, Neighbor{Index: i, Dist: d})
			} else if d < (*h)[0].Dist {
				(*h)[0] = Neighbor{Index: i, Dist: d}
				heap.Fix(h, 0)
			}
		}
		return
	}
	// Visit the child containing q first for better pruning.
	first, second := nd.left, nd.right
	if q[nd.split] > t.points[t.idx[nd.mid]][nd.split] {
		first, second = second, first
	}
	t.knn(first, q, k, h)
	t.knn(second, q, k, h)
}

// boxDist2 is the squared distance from q to the axis-aligned box
// [min, max] (0 if inside).
func boxDist2(q, min, max []float64) float64 {
	var s float64
	for j, v := range q {
		if v < min[j] {
			d := min[j] - v
			s += d * d
		} else if v > max[j] {
			d := v - max[j]
			s += d * d
		}
	}
	return s
}

// nnHeap is a max-heap on squared distance (root = farthest of the current
// k best).
type nnHeap []Neighbor

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
