package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"adawave/internal/linalg"
)

func randomPoints(rng *rand.Rand, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

func bruteRadius(pts [][]float64, q []float64, r float64) []int {
	var out []int
	for i, p := range pts {
		if linalg.Dist(q, p) <= r {
			out = append(out, i)
		}
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if tr.Len() != 0 {
		t.Fatal("empty tree length")
	}
	called := false
	tr.Radius([]float64{0}, 1, func(int) { called = true })
	if called {
		t.Fatal("radius on empty tree called fn")
	}
	if nn := tr.KNN([]float64{0}, 3); nn != nil {
		t.Fatal("knn on empty tree should be nil")
	}
}

func TestRadiusMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(rng.Int31n(300))
		d := 1 + int(rng.Int31n(4))
		pts := randomPoints(rng, n, d)
		tr := Build(pts)
		for trial := 0; trial < 5; trial++ {
			q := randomPoints(rng, 1, d)[0]
			r := rng.Float64() * 2
			var got []int
			tr.Radius(q, r, func(i int) { got = append(got, i) })
			sort.Ints(got)
			want := bruteRadius(pts, q, r)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(rng.Int31n(300))
		d := 1 + int(rng.Int31n(4))
		pts := randomPoints(rng, n, d)
		tr := Build(pts)
		k := 1 + int(rng.Int31n(10))
		q := randomPoints(rng, 1, d)[0]
		got := tr.KNN(q, k)
		// Brute force: sort all by distance.
		type pd struct {
			i int
			d float64
		}
		all := make([]pd, n)
		for i, p := range pts {
			all[i] = pd{i, linalg.SqDist(q, p)}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		want := k
		if n < k {
			want = n
		}
		if len(got) != want {
			return false
		}
		for i := range got {
			// Compare distances (indices may tie).
			if math.Abs(got[i].Dist-all[i].d) > 1e-12 {
				return false
			}
		}
		// Ascending order.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIdenticalPoints(t *testing.T) {
	pts := make([][]float64, 100)
	for i := range pts {
		pts[i] = []float64{1, 2, 3}
	}
	tr := Build(pts)
	count := 0
	tr.Radius([]float64{1, 2, 3}, 0.1, func(int) { count++ })
	if count != 100 {
		t.Fatalf("found %d of 100 identical points", count)
	}
	nn := tr.KNN([]float64{1, 2, 3}, 5)
	if len(nn) != 5 || nn[0].Dist != 0 {
		t.Fatalf("knn on identical points: %v", nn)
	}
}

func TestHighDimensional(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 500, 33)
	tr := Build(pts)
	q := pts[42]
	nn := tr.KNN(q, 1)
	if len(nn) != 1 || nn[0].Index != 42 || nn[0].Dist != 0 {
		t.Fatalf("nearest to an indexed point should be itself: %v", nn)
	}
}

func BenchmarkRadius10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 10000, 2)
	tr := Build(pts)
	q := []float64{0, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.Radius(q, 0.1, func(int) { n++ })
	}
}

func BenchmarkBuild10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 10000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}
