// Package dataio reads and writes point sets as CSV, the interchange format
// of the cmd tools: coordinates in columns x0…x(d−1) plus an optional
// trailing integer “label” column (−1 marks noise).
package dataio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"adawave/internal/pointset"
)

// WriteCSV writes points, one row each, with a header x0…x(d−1). When
// labels is non-nil it must be parallel to points and is appended as a
// final “label” column.
func WriteCSV(w io.Writer, points [][]float64, labels []int) error {
	if labels != nil && len(labels) != len(points) {
		return fmt.Errorf("dataio: %d labels for %d points", len(labels), len(points))
	}
	cw := csv.NewWriter(w)
	d := 0
	if len(points) > 0 {
		d = len(points[0])
	}
	header := make([]string, 0, d+1)
	for j := 0; j < d; j++ {
		header = append(header, fmt.Sprintf("x%d", j))
	}
	if labels != nil {
		header = append(header, "label")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataio: write header: %w", err)
	}
	row := make([]string, 0, d+1)
	for i, p := range points {
		if len(p) != d {
			return fmt.Errorf("dataio: point %d has dimension %d, want %d", i, len(p), d)
		}
		row = row[:0]
		for _, v := range p {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if labels != nil {
			row = append(row, strconv.Itoa(labels[i]))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataio: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSVDataset reads a point set written by WriteCSV or any compatible
// CSV — an optional header row (detected by its first field not parsing as
// a number), coordinate columns, and labels when the header's last column
// is named “label”; without a header every column is a coordinate —
// directly into a flat row-major Dataset: coordinates are parsed straight
// into the single backing slice, with no per-point allocation. The returned
// labels slice is nil when the file carries none, and the dataset is nil
// when the file holds no points.
func ReadCSVDataset(r io.Reader) (ds *pointset.Dataset, labels []int, err error) {
	// The one-shot read is the chunked reader draining the whole stream
	// into a single batch.
	ds, labels, err = NewBatchReader(r, 0).Next()
	if err == io.EOF {
		return nil, nil, nil
	}
	return ds, labels, err
}

// ReadCSV is ReadCSVDataset returning [][]float64: the rows are zero-copy
// views into one flat backing slice (see pointset.Dataset.Rows).
func ReadCSV(r io.Reader) (points [][]float64, labels []int, err error) {
	ds, labels, err := ReadCSVDataset(r)
	if err != nil || ds == nil || ds.N == 0 {
		return nil, nil, err
	}
	return ds.Rows(), labels, nil
}

// WriteCSVDataset writes a flat dataset, one row per point, with the same
// format as WriteCSV (header x0…x(d−1) plus an optional “label” column),
// reading strided rows out of the single backing slice.
func WriteCSVDataset(w io.Writer, ds *pointset.Dataset, labels []int) error {
	if labels != nil && len(labels) != ds.N {
		return fmt.Errorf("dataio: %d labels for %d points", len(labels), ds.N)
	}
	cw := csv.NewWriter(w)
	d := ds.D
	header := make([]string, 0, d+1)
	for j := 0; j < d; j++ {
		header = append(header, fmt.Sprintf("x%d", j))
	}
	if labels != nil {
		header = append(header, "label")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataio: write header: %w", err)
	}
	row := make([]string, 0, d+1)
	for i := 0; i < ds.N; i++ {
		row = row[:0]
		for _, v := range ds.Data[i*d : (i+1)*d] {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if labels != nil {
			row = append(row, strconv.Itoa(labels[i]))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataio: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFileDataset writes a flat dataset (and optional labels) to a CSV
// file.
func WriteFileDataset(path string, ds *pointset.Dataset, labels []int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	if err := WriteCSVDataset(f, ds, labels); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dataio: close %s: %w", path, err)
	}
	return nil
}

// ReadFileDataset reads a CSV file into a flat dataset.
func ReadFileDataset(path string) (*pointset.Dataset, []int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("dataio: %w", err)
	}
	defer f.Close()
	return ReadCSVDataset(f)
}

// WriteFile writes points (and optional labels) to a CSV file.
func WriteFile(path string, points [][]float64, labels []int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	if err := WriteCSV(f, points, labels); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dataio: close %s: %w", path, err)
	}
	return nil
}

// ReadFile reads a CSV file written by WriteFile (or compatible).
func ReadFile(path string) (points [][]float64, labels []int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("dataio: %w", err)
	}
	defer f.Close()
	return ReadCSV(f)
}
