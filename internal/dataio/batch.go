package dataio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"adawave/internal/pointset"
)

// BatchReader reads a CSV point stream in fixed-size chunks, so a large
// file (or an HTTP request body) feeds a streaming session batch by batch
// without ever materializing the whole point set. It accepts the same
// format as ReadCSVDataset: an optional header row (detected by its first
// field not parsing as a number), coordinate columns, and labels when the
// header's last column is named “label”. Row geometry is validated against
// the first data row, and errors carry absolute (1-based, header included)
// row numbers.
type BatchReader struct {
	cr        *csv.Reader
	batchSize int
	row       int // rows consumed so far (1-based numbering for errors)
	width     int // fields per data row, 0 until the first data row
	d         int // coordinate columns
	hasLabels bool
	started   bool // first record consumed (header detection done)
	err       error
}

// NewBatchReader returns a reader yielding batches of up to batchSize
// points per Next call; batchSize ≤ 0 drains the whole stream into one
// batch.
func NewBatchReader(r io.Reader, batchSize int) *BatchReader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for better messages
	cr.ReuseRecord = true   // fields are parsed, never retained
	return &BatchReader{cr: cr, batchSize: batchSize}
}

// HasLabels reports whether the stream's header declared a label column
// (meaningful after the first Next call).
func (br *BatchReader) HasLabels() bool { return br.hasLabels }

// Next returns the next batch of at most batchSize points, with a parallel
// label slice when the stream carries labels (nil otherwise). It returns
// io.EOF — and no batch — once the stream is exhausted; any other error is
// sticky.
func (br *BatchReader) Next() (*pointset.Dataset, []int, error) {
	if br.err != nil {
		return nil, nil, br.err
	}
	var ds *pointset.Dataset
	var labels []int
	for {
		rec, err := br.cr.Read()
		if err == io.EOF {
			if ds == nil || ds.N == 0 {
				return nil, nil, io.EOF
			}
			return ds, labels, nil
		}
		if err != nil {
			br.err = fmt.Errorf("dataio: read csv: %w", err)
			return nil, nil, br.err
		}
		br.row++
		if !br.started {
			br.started = true
			if _, ferr := strconv.ParseFloat(rec[0], 64); ferr != nil {
				// Header row.
				br.hasLabels = rec[len(rec)-1] == "label"
				continue
			}
		}
		if br.width == 0 {
			br.width = len(rec)
			br.d = br.width
			if br.hasLabels {
				br.d--
			}
			if br.d < 1 {
				br.err = fmt.Errorf("dataio: no coordinate columns (width %d)", br.width)
				return nil, nil, br.err
			}
		}
		if len(rec) != br.width {
			br.err = fmt.Errorf("dataio: row %d has %d fields, want %d", br.row, len(rec), br.width)
			return nil, nil, br.err
		}
		if ds == nil {
			capacity := br.batchSize
			if capacity <= 0 {
				capacity = 1024
			}
			ds = pointset.New(br.d, capacity)
		}
		for j := 0; j < br.d; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				br.err = fmt.Errorf("dataio: row %d column %d: %w", br.row, j, err)
				return nil, nil, br.err
			}
			ds.Data = append(ds.Data, v)
		}
		ds.N++
		if br.hasLabels {
			l, err := strconv.Atoi(rec[br.d])
			if err != nil {
				br.err = fmt.Errorf("dataio: row %d label: %w", br.row, err)
				return nil, nil, br.err
			}
			labels = append(labels, l)
		}
		if br.batchSize > 0 && ds.N >= br.batchSize {
			return ds, labels, nil
		}
	}
}

// EachBatch streams r through fn in batches of batchSize points, stopping
// on the first error (fn's errors are returned as-is, so a consumer can
// abort ingestion).
func EachBatch(r io.Reader, batchSize int, fn func(ds *pointset.Dataset, labels []int) error) error {
	br := NewBatchReader(r, batchSize)
	for {
		ds, labels, err := br.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(ds, labels); err != nil {
			return err
		}
	}
}
