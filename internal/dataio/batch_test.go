package dataio

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"adawave/internal/pointset"
)

// TestBatchReaderChunks: a labeled CSV streamed in small batches must
// reassemble into exactly the one-shot read.
func TestBatchReaderChunks(t *testing.T) {
	points := make([][]float64, 0, 23)
	labels := make([]int, 0, 23)
	for i := 0; i < 23; i++ {
		points = append(points, []float64{float64(i), float64(i) * 0.5, -float64(i)})
		labels = append(labels, i%3-1)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, points, labels); err != nil {
		t.Fatal(err)
	}
	for _, batchSize := range []int{1, 4, 23, 100} {
		br := NewBatchReader(bytes.NewReader(buf.Bytes()), batchSize)
		var gotPts []float64
		var gotLabels []int
		batches := 0
		for {
			ds, ls, err := br.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if batchSize > 0 && ds.N > batchSize {
				t.Fatalf("batch of %d exceeds size %d", ds.N, batchSize)
			}
			if ds.D != 3 {
				t.Fatalf("dimension: got %d", ds.D)
			}
			gotPts = append(gotPts, ds.Data...)
			gotLabels = append(gotLabels, ls...)
			batches++
		}
		if !br.HasLabels() {
			t.Fatal("label column not detected")
		}
		wantBatches := (len(points) + batchSize - 1) / batchSize
		if batches != wantBatches {
			t.Fatalf("batchSize %d: got %d batches, want %d", batchSize, batches, wantBatches)
		}
		if len(gotPts) != len(points)*3 || len(gotLabels) != len(labels) {
			t.Fatalf("batchSize %d: reassembled %d coords / %d labels", batchSize, len(gotPts), len(gotLabels))
		}
		for i, p := range points {
			for j, v := range p {
				if gotPts[i*3+j] != v {
					t.Fatalf("coord %d/%d: got %v, want %v", i, j, gotPts[i*3+j], v)
				}
			}
			if gotLabels[i] != labels[i] {
				t.Fatalf("label %d: got %d, want %d", i, gotLabels[i], labels[i])
			}
		}
	}
}

// TestBatchReaderHeaderless: without a header every column is a coordinate.
func TestBatchReaderHeaderless(t *testing.T) {
	br := NewBatchReader(strings.NewReader("1,2\n3,4\n5,6\n"), 2)
	ds, ls, err := br.Next()
	if err != nil || ds.N != 2 || ds.D != 2 || ls != nil {
		t.Fatalf("first batch: ds=%+v labels=%v err=%v", ds, ls, err)
	}
	ds, _, err = br.Next()
	if err != nil || ds.N != 1 {
		t.Fatalf("second batch: ds=%+v err=%v", ds, err)
	}
	if _, _, err = br.Next(); err != io.EOF {
		t.Fatalf("exhausted stream: err=%v", err)
	}
}

// TestBatchReaderErrors: malformed rows error with absolute row numbers,
// and the error is sticky.
func TestBatchReaderErrors(t *testing.T) {
	br := NewBatchReader(strings.NewReader("x0,x1\n1,2\n3\n"), 10)
	if _, _, err := br.Next(); err == nil || !strings.Contains(err.Error(), "row 3") {
		t.Fatalf("ragged row: err=%v", err)
	}
	if _, _, err := br.Next(); err == nil {
		t.Fatal("error must be sticky")
	}
	br = NewBatchReader(strings.NewReader("1,2\nx,4\n"), 10)
	if _, _, err := br.Next(); err == nil || !strings.Contains(err.Error(), "row 2") {
		t.Fatalf("bad float: err=%v", err)
	}
	br = NewBatchReader(strings.NewReader("x0,label\n1,oops\n"), 10)
	if _, _, err := br.Next(); err == nil || !strings.Contains(err.Error(), "label") {
		t.Fatalf("bad label: err=%v", err)
	}
	br = NewBatchReader(strings.NewReader("label\n"), 10)
	if _, _, err := br.Next(); err != io.EOF {
		t.Fatalf("header-only stream: err=%v", err)
	}
}

// TestEachBatch: the callback sees every point once and its error aborts
// the stream.
func TestEachBatch(t *testing.T) {
	var buf bytes.Buffer
	ds := pointset.New(2, 10)
	for i := 0; i < 10; i++ {
		ds.AppendRow([]float64{float64(i), 1})
	}
	if err := WriteCSVDataset(&buf, ds, nil); err != nil {
		t.Fatal(err)
	}
	total := 0
	err := EachBatch(bytes.NewReader(buf.Bytes()), 3, func(b *pointset.Dataset, labels []int) error {
		if labels != nil {
			t.Fatal("unexpected labels")
		}
		total += b.N
		return nil
	})
	if err != nil || total != 10 {
		t.Fatalf("total=%d err=%v", total, err)
	}
	sentinel := io.ErrClosedPipe
	err = EachBatch(bytes.NewReader(buf.Bytes()), 3, func(b *pointset.Dataset, labels []int) error {
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("callback error must propagate, got %v", err)
	}
}
