package dataio

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"adawave/internal/pointset"
)

func TestRoundTripWithLabels(t *testing.T) {
	points := [][]float64{{1.5, -2.25}, {0, 3e-9}, {math.Pi, 42}}
	labels := []int{0, -1, 2}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, points, labels); err != nil {
		t.Fatal(err)
	}
	gotP, gotL, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotP) != len(points) || len(gotL) != len(labels) {
		t.Fatalf("got %d points / %d labels, want %d / %d", len(gotP), len(gotL), len(points), len(labels))
	}
	for i := range points {
		for j := range points[i] {
			if gotP[i][j] != points[i][j] {
				t.Fatalf("point %d col %d: %v != %v", i, j, gotP[i][j], points[i][j])
			}
		}
		if gotL[i] != labels[i] {
			t.Fatalf("label %d: %d != %d", i, gotL[i], labels[i])
		}
	}
}

func TestRoundTripWithoutLabels(t *testing.T) {
	points := [][]float64{{1, 2, 3}, {4, 5, 6}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, points, nil); err != nil {
		t.Fatal(err)
	}
	gotP, gotL, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotL != nil {
		t.Fatalf("expected nil labels, got %v", gotL)
	}
	if len(gotP) != 2 || len(gotP[0]) != 3 {
		t.Fatalf("unexpected shape %dx%d", len(gotP), len(gotP[0]))
	}
}

func TestReadHeaderless(t *testing.T) {
	in := "1.0,2.0\n3.5,4.5\n"
	points, labels, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if labels != nil {
		t.Fatal("headerless csv should have no labels")
	}
	if len(points) != 2 || points[1][1] != 4.5 {
		t.Fatalf("parsed %v", points)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad float":     "x0,x1\n1.0,oops\n",
		"bad label":     "x0,label\n1.0,oops\n",
		"ragged row":    "x0,x1\n1.0,2.0\n3.0\n",
		"no coordinate": "label\n3\n",
	}
	for name, in := range cases {
		if _, _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, [][]float64{{1}}, []int{0, 1}); err == nil {
		t.Fatal("mismatched labels should error")
	}
	if err := WriteCSV(&buf, [][]float64{{1, 2}, {3}}, nil); err == nil {
		t.Fatal("ragged points should error")
	}
}

func TestEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	points, labels, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if points != nil || labels != nil {
		t.Fatalf("expected empty result, got %v %v", points, labels)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pts.csv")
	points := [][]float64{{0.5, 1.5}, {2.5, 3.5}}
	labels := []int{1, 0}
	if err := WriteFile(path, points, labels); err != nil {
		t.Fatal(err)
	}
	gotP, gotL, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotP) != 2 || gotL[0] != 1 || gotP[1][0] != 2.5 {
		t.Fatalf("round trip mismatch: %v %v", gotP, gotL)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "absent.csv")); err == nil {
		t.Fatal("missing file should error")
	}
	if _, _, err := ReadFileDataset(filepath.Join(t.TempDir(), "absent.csv")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	ds := pointset.MustFromSlices([][]float64{{1.5, -2.25}, {0, 3e-9}, {math.Pi, 42}})
	labels := []int{0, -1, 2}
	var buf bytes.Buffer
	if err := WriteCSVDataset(&buf, ds, labels); err != nil {
		t.Fatal(err)
	}
	got, gotL, err := ReadCSVDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != ds.N || got.D != ds.D {
		t.Fatalf("shape: got %dx%d, want %dx%d", got.N, got.D, ds.N, ds.D)
	}
	for i, v := range ds.Data {
		if got.Data[i] != v {
			t.Fatalf("data[%d]: %v != %v", i, got.Data[i], v)
		}
	}
	for i := range labels {
		if gotL[i] != labels[i] {
			t.Fatalf("label %d: %d != %d", i, gotL[i], labels[i])
		}
	}
}

// TestDatasetMatchesSliceWriter: the strided writer must emit byte-for-byte
// what the slice writer emits for the same rows, so the two formats stay
// interchangeable.
func TestDatasetMatchesSliceWriter(t *testing.T) {
	points := [][]float64{{0.5, 1.5}, {2.5, 3.5}}
	ds := pointset.MustFromSlices(points)
	var a, b bytes.Buffer
	if err := WriteCSV(&a, points, []int{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSVDataset(&b, ds, []int{1, 0}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("writer outputs diverge:\n%q\n%q", a.String(), b.String())
	}
}

func TestDatasetWriteErrors(t *testing.T) {
	var buf bytes.Buffer
	ds := pointset.MustFromSlices([][]float64{{1}})
	if err := WriteCSVDataset(&buf, ds, []int{0, 1}); err == nil {
		t.Fatal("mismatched labels should error")
	}
}

func TestDatasetFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pts.csv")
	ds := pointset.MustFromSlices([][]float64{{0.5, 1.5}, {2.5, 3.5}})
	if err := WriteFileDataset(path, ds, []int{1, 0}); err != nil {
		t.Fatal(err)
	}
	got, labels, err := ReadFileDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 2 || got.D != 2 || labels[0] != 1 || got.Row(1)[0] != 2.5 {
		t.Fatalf("round trip mismatch: %v %v", got, labels)
	}
}
