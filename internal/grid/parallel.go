package grid

import (
	"context"
	"sync"

	"adawave/internal/sched"
)

// ParallelRanges splits [0, n) into at most workers contiguous ranges and
// runs fn on each concurrently, passing a distinct worker index per range.
// With workers ≤ 1 (or n ≤ 1) fn runs inline on the whole range. It returns
// after every range has been processed.
func ParallelRanges(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	w := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
		w++
	}
	wg.Wait()
}

// ParallelRangesCtx is ParallelRanges sourcing its shard execution from the
// worker pool carried by ctx (see internal/sched), charged to the context's
// tenant. The pool replicates ParallelRanges' range carving exactly, so the
// computed results are bit-identical either way — only the scheduling of the
// ranges changes. Without a pool in ctx it falls back to spawning goroutines.
func ParallelRangesCtx(ctx context.Context, n, workers int, fn func(worker, lo, hi int)) {
	if p, ok := sched.PoolFrom(ctx); ok {
		p.Shards(sched.TenantFrom(ctx), n, workers, fn)
		return
	}
	ParallelRanges(n, workers, fn)
}
