package grid

import "sync"

// ParallelRanges splits [0, n) into at most workers contiguous ranges and
// runs fn on each concurrently, passing a distinct worker index per range.
// With workers ≤ 1 (or n ≤ 1) fn runs inline on the whole range. It returns
// after every range has been processed.
func ParallelRanges(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	w := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
		w++
	}
	wg.Wait()
}
