package grid

import (
	"bytes"
	"math/rand"
	"testing"

	"adawave/internal/pointset"
)

// flatGridsIdentical asserts two flat grids agree cell for cell, order
// included (the property the incremental path must preserve so memoized ids
// and downstream passes see exactly the one-shot grid).
func flatGridsIdentical(t *testing.T, want, got *FlatGrid) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("cell count: want %d, got %d", want.Len(), got.Len())
	}
	d := want.Dim()
	for i := 0; i < want.Len(); i++ {
		if cmpCoords(want.Coords[i*d:(i+1)*d], got.Coords[i*d:(i+1)*d]) != 0 {
			t.Fatalf("cell %d coords: want %v, got %v", i, want.CellCoords(i), got.CellCoords(i))
		}
		if want.Vals[i] != got.Vals[i] {
			t.Fatalf("cell %d mass: want %v, got %v", i, want.Vals[i], got.Vals[i])
		}
	}
}

// TestMergeFlatMatchesUnionQuantization: quantizing a prefix and a suffix
// separately and merging must reproduce the one-shot quantization of the
// union bit for bit — cells, masses, order, and the remapped point ids.
func TestMergeFlatMatchesUnionQuantization(t *testing.T) {
	for _, split := range []int{1, 500, 2500, 4999} {
		points, ds := randomDataset(5000, 3, 7)
		q, err := NewQuantizerDataset(ds, 32, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, wantIDs := q.QuantizeDataset(ds, 1)

		a := &pointset.Dataset{Data: ds.Data[:split*ds.D], N: split, D: ds.D}
		b := &pointset.Dataset{Data: ds.Data[split*ds.D:], N: ds.N - split, D: ds.D}
		ga, idsA := q.QuantizeDataset(a, 1)
		gb, idsB := q.QuantizeDataset(b, 1)
		merged, remapA, remapB := MergeFlat(ga, gb)
		flatGridsIdentical(t, want, merged)
		for i := 0; i < split; i++ {
			if remapA[idsA[i]] != wantIDs[i] {
				t.Fatalf("split %d: point %d id: want %d, got %d", split, i, wantIDs[i], remapA[idsA[i]])
			}
		}
		for i := split; i < len(points); i++ {
			if remapB[idsB[i-split]] != wantIDs[i] {
				t.Fatalf("split %d: point %d id: want %d, got %d", split, i, wantIDs[i], remapB[idsB[i-split]])
			}
		}
	}
}

// TestMergeFlatSignedRemoval: a delta with negative masses subtracts, and
// cells cancelled to zero are dropped with a −1 remap entry.
func TestMergeFlatSignedRemoval(t *testing.T) {
	live := NewFlat([]int{8, 8}, 4)
	live.Append([]uint16{1, 1}, 3)
	live.Append([]uint16{2, 5}, 1)
	live.Append([]uint16{4, 0}, 2)
	delta := NewFlat([]int{8, 8}, 2)
	delta.Append([]uint16{1, 1}, -1)
	delta.Append([]uint16{2, 5}, -1)
	merged, liveRemap, deltaRemap := MergeFlat(live, delta)
	if merged.Len() != 2 {
		t.Fatalf("cells: got %d, want 2", merged.Len())
	}
	if merged.Vals[0] != 2 || merged.Vals[1] != 2 {
		t.Fatalf("masses: got %v", merged.Vals)
	}
	if liveRemap[0] != 0 || liveRemap[1] != -1 || liveRemap[2] != 1 {
		t.Fatalf("liveRemap: got %v", liveRemap)
	}
	if deltaRemap[0] != 0 || deltaRemap[1] != -1 {
		t.Fatalf("deltaRemap: got %v", deltaRemap)
	}
}

// TestMergeFlatSweepsTombstones: zero-mass cells already in the live grid
// are swept by the merge even when the delta does not touch them.
func TestMergeFlatSweepsTombstones(t *testing.T) {
	live := NewFlat([]int{8, 8}, 3)
	live.Append([]uint16{0, 3}, 0) // tombstone left by an earlier removal
	live.Append([]uint16{5, 5}, 4)
	delta := NewFlat([]int{8, 8}, 1)
	delta.Append([]uint16{7, 7}, 1)
	merged, liveRemap, _ := MergeFlat(live, delta)
	if merged.Len() != 2 {
		t.Fatalf("cells: got %d, want 2", merged.Len())
	}
	if liveRemap[0] != -1 || liveRemap[1] != 0 {
		t.Fatalf("liveRemap: got %v", liveRemap)
	}
}

func TestCompact(t *testing.T) {
	f := NewFlat([]int{8, 8}, 4)
	f.Append([]uint16{0, 1}, 2)
	f.Append([]uint16{1, 0}, 0)
	f.Append([]uint16{3, 3}, 1)
	f.Append([]uint16{6, 2}, 0)
	remap := f.Compact()
	if f.Len() != 2 || f.Vals[0] != 2 || f.Vals[1] != 1 {
		t.Fatalf("compacted grid: len %d vals %v", f.Len(), f.Vals)
	}
	want := []int32{0, -1, 1, -1}
	for i, r := range remap {
		if r != want[i] {
			t.Fatalf("remap: got %v, want %v", remap, want)
		}
	}
	if f.Compact() != nil {
		t.Fatal("clean grid must report a nil remap")
	}
}

// TestSnapshotRoundTrip: WriteSnapshot → ReadSnapshot must reproduce the
// grid exactly, order included.
func TestSnapshotRoundTrip(t *testing.T) {
	_, ds := randomDataset(3000, 3, 11)
	q, err := NewQuantizerDataset(ds, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := q.QuantizeDataset(ds, 1)
	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	flatGridsIdentical(t, f, got)
}

// TestSnapshotRejectsCorruption: bad magic, truncation and out-of-range
// coordinates must all be reported, not restored.
func TestSnapshotRejectsCorruption(t *testing.T) {
	f := NewFlat([]int{8, 8}, 2)
	f.Append([]uint16{1, 2}, 3)
	f.Append([]uint16{4, 4}, 1)
	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadSnapshot(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("bad magic must error")
	}
	for _, cut := range []int{3, 6, len(good) / 2, len(good) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d must error", cut)
		}
	}
	bad := append([]byte(nil), good...)
	// Coordinate bytes follow the magic (4), dim (4), sizes (8) and cell
	// count (8); force the first coordinate out of the 8-cell range.
	bad[24] = 0xFF
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("out-of-range coordinate must error")
	}
	// Swap the two cells' coordinates in place: every value stays in
	// range, but the canonical order every consumer relies on is broken.
	swapped := append([]byte(nil), good...)
	copy(swapped[24:28], good[28:32])
	copy(swapped[28:32], good[24:28])
	if _, err := ReadSnapshot(bytes.NewReader(swapped)); err == nil {
		t.Fatal("out-of-order cells must error")
	}
	// Duplicate the first cell over the second: canonical order is
	// strictly increasing, so equal cells must also be rejected.
	dup := append([]byte(nil), good...)
	copy(dup[28:32], good[24:28])
	if _, err := ReadSnapshot(bytes.NewReader(dup)); err == nil {
		t.Fatal("duplicate cells must error")
	}
	// Tombstones (zero-mass cells) are transient in-session state:
	// WriteSnapshot sweeps them (see TestSnapshotSweepsTombstonesOnWrite),
	// so a stream carrying one was hand-crafted or corrupted and must be
	// rejected. Zero the first cell's mass bytes in an otherwise valid
	// stream (vals follow the 24-byte header and 8 coordinate bytes).
	tomb := append([]byte(nil), good...)
	for i := 32; i < 40; i++ {
		tomb[i] = 0
	}
	if _, err := ReadSnapshot(bytes.NewReader(tomb)); err == nil {
		t.Fatal("zero-mass cell must error")
	}
	// A header declaring billions of cells with no body must fail on the
	// first missing chunk, not allocate the declared size up front.
	var bomb bytes.Buffer
	bomb.Write([]byte("AWG1"))
	bomb.Write([]byte{2, 0, 0, 0})             // dim 2
	bomb.Write([]byte{0, 0, 1, 0, 0, 0, 1, 0}) // sizes 65536, 65536
	bomb.Write([]byte{0, 0, 0, 0, 1, 0, 0, 0}) // 2^32 cells
	if _, err := ReadSnapshot(&bomb); err == nil {
		t.Fatal("truncated giant-cell-count snapshot must error")
	}
}

// TestMergeFlatRandomized cross-checks the merge against a map-based model
// over many random grid pairs, including negative and cancelling deltas.
func TestMergeFlatRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 50; round++ {
		size := []int{16, 16}
		live, delta := NewFlat(size, 0), NewFlat(size, 0)
		model := map[[2]uint16]float64{}
		var coords [][2]uint16
		for i := 0; i < 40; i++ {
			c := [2]uint16{uint16(rng.Intn(16)), uint16(rng.Intn(16))}
			if _, dup := model[c]; dup {
				continue
			}
			m := float64(1 + rng.Intn(3))
			model[c] = m
			coords = append(coords, c)
		}
		sortCoordPairs(coords)
		for _, c := range coords {
			live.Append(c[:], model[c])
		}
		var dcoords [][2]uint16
		dmass := map[[2]uint16]float64{}
		for i := 0; i < 20; i++ {
			var c [2]uint16
			var m float64
			if rng.Intn(2) == 0 && len(coords) > 0 {
				// Subtract some or all of an existing cell's mass.
				c = coords[rng.Intn(len(coords))]
				m = -float64(rng.Intn(int(model[c]) + 1))
			} else {
				c = [2]uint16{uint16(rng.Intn(16)), uint16(rng.Intn(16))}
				m = float64(1 + rng.Intn(3))
			}
			if _, dup := dmass[c]; dup {
				continue
			}
			dmass[c] = m
			dcoords = append(dcoords, c)
		}
		sortCoordPairs(dcoords)
		for _, c := range dcoords {
			delta.Append(c[:], dmass[c])
			model[c] += dmass[c]
		}
		merged, _, _ := MergeFlat(live, delta)
		kept := 0
		for _, m := range model {
			if m > 0 {
				kept++
			}
		}
		if merged.Len() != kept {
			t.Fatalf("round %d: cells: got %d, want %d", round, merged.Len(), kept)
		}
		for i := 0; i < merged.Len(); i++ {
			c := [2]uint16{merged.CellCoords(i)[0], merged.CellCoords(i)[1]}
			if merged.Vals[i] != model[c] {
				t.Fatalf("round %d: cell %v: got %v, want %v", round, c, merged.Vals[i], model[c])
			}
			if i > 0 && cmpCoords(merged.CellCoords(i-1), merged.CellCoords(i)) >= 0 {
				t.Fatalf("round %d: not canonical at %d", round, i)
			}
		}
	}
}

func sortCoordPairs(cs [][2]uint16) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cmpCoords(cs[j][:], cs[j-1][:]) < 0; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
