package grid

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Compressed cell storage: PackedGrid is the block-compressed rendering of
// FlatGrid for grids that stay resident — a streaming session's live base
// grid, the external sort's retained runs and merged output, and snapshots.
// Cells are grouped into blocks of up to packedBlockCells cells; within a
// block every coordinate is frame-of-reference coded against the block's
// per-dimension minimum and bit-packed at the block's per-dimension width,
// and masses — integer point counts everywhere upstream of the wavelet
// transform — are bit-packed at the width of the block's largest count
// instead of spending a float64 each. A block whose masses are not small
// non-negative integers (fractional or ≥ 2³², which no quantization grid
// produces) stores raw float64s, so the encoding is lossless for any grid.
//
// The layout of one block payload (all integers little-endian):
//
//	base      d × uint16  per-dimension minimum coordinate
//	widths    d × uint8   bits per coordinate delta (0…16)
//	massMode  uint8       0 = bit-packed integer masses, 1 = raw float64
//	massWidth uint8       bits per mass when massMode == 0 (0…32)
//	count     uint16      cells in this block (1…packedBlockCells)
//	coords    ⌈count·Σwidths ⁄ 8⌉ bytes, cell-major, LSB-first
//	masses    ⌈count·massWidth ⁄ 8⌉ bytes, or count × 8 raw float64 bytes
//
// Sorted grids change slowly within a 4096-cell window, so the deltas pack
// to a few bits and a typical quantization grid costs ~2–4 bytes per cell
// against the flat 2·d+8 — the same resident budget holds 2–4× more cells.
// The same payload bytes are the unit of the spill-run format v2 and the
// AWG2 snapshot encoding, so spilling or checkpointing a packed grid is a
// straight copy of its blocks.
//
// Cell order is the caller's, exactly like FlatGrid; every producer in this
// package emits canonical order, which Find and the merges rely on. The
// representation is positional: cell i of the packed grid corresponds to
// cell i of the equivalent FlatGrid, so memoized cell ids work unchanged.
const (
	packedBlockCells = 4096

	packedMassInts   = 0
	packedMassFloats = 1
)

// PackedGrid is a block-compressed sparse grid; see the package comment
// above for the encoding. The zero value is an empty grid with no
// dimensions; build one with PackFlat, a PackedBuilder, or MergePackedFlatCtx.
type PackedGrid struct {
	// Size is the number of cells along each dimension.
	Size []int

	n     int    // stored cells, tombstones included
	tombs int    // cells whose mass is ≤ 0 (signed-mass removal tombstones)
	data  []byte // concatenated block payloads
	off   []uint32
}

// Dim returns the dimensionality of the grid.
func (p *PackedGrid) Dim() int { return len(p.Size) }

// Len returns the number of stored cells (tombstones included), matching
// FlatGrid.Len on the equivalent grid.
func (p *PackedGrid) Len() int { return p.n }

// Bytes returns the resident footprint of the packed representation: the
// block payload bytes plus the block offset index. This is the quantity the
// external sort's spill budget and the session eviction manager account.
func (p *PackedGrid) Bytes() int64 {
	return int64(len(p.data)) + int64(len(p.off))*4 + int64(len(p.Size))*8
}

// blocks returns the number of sealed blocks.
func (p *PackedGrid) blocks() int {
	if len(p.off) == 0 {
		return 0
	}
	return len(p.off) - 1
}

// payload returns the raw payload bytes of block b.
func (p *PackedGrid) payload(b int) []byte { return p.data[p.off[b]:p.off[b+1]] }

// Clone returns a deep copy (cheap: the payload bytes copy as one memmove).
func (p *PackedGrid) Clone() *PackedGrid {
	return &PackedGrid{
		Size:  append([]int(nil), p.Size...),
		n:     p.n,
		tombs: p.tombs,
		data:  append([]byte(nil), p.data...),
		off:   append([]uint32(nil), p.off...),
	}
}

// decodeBlockInto decodes block b into coords (count·d values) and masses
// (count values), which must be large enough, and returns the cell count.
// It trusts the payload — only this package writes blocks — so it performs
// no validation; file-facing readers go through decodePackedBlock instead.
func (p *PackedGrid) decodeBlockInto(b int, coords []uint16, masses []float64) int {
	d := len(p.Size)
	pl := p.payload(b)
	widths := pl[2*d : 3*d]
	mode := pl[3*d]
	mw := uint(pl[3*d+1])
	count := int(binary.LittleEndian.Uint16(pl[3*d+2:]))
	sumW := 0
	br := bitReader{b: pl[3*d+4:]}
	for j := 0; j < d; j++ {
		sumW += int(widths[j])
	}
	for i := 0; i < count; i++ {
		for j := 0; j < d; j++ {
			coords[i*d+j] = binary.LittleEndian.Uint16(pl[2*j:]) + uint16(br.read(uint(widths[j])))
		}
	}
	massOff := 3*d + 4 + (count*sumW+7)/8
	if mode == packedMassInts {
		mr := bitReader{b: pl[massOff:]}
		for i := 0; i < count; i++ {
			masses[i] = float64(mr.read(mw))
		}
	} else {
		for i := 0; i < count; i++ {
			masses[i] = math.Float64frombits(binary.LittleEndian.Uint64(pl[massOff+8*i:]))
		}
	}
	return count
}

// firstCell decodes only the first cell of block b into dst — the probe of
// Find's block-level binary search.
func (p *PackedGrid) firstCell(b int, dst []uint16) {
	d := len(p.Size)
	pl := p.payload(b)
	br := bitReader{b: pl[3*d+4:]}
	for j := 0; j < d; j++ {
		dst[j] = binary.LittleEndian.Uint16(pl[2*j:]) + uint16(br.read(uint(pl[2*d+j])))
	}
}

// UnpackInto decodes the whole grid into dst (reusing its capacity) and
// returns dst — the promotion point where bit-packed integer masses become
// the float64 densities the wavelet transform runs on.
func (p *PackedGrid) UnpackInto(dst *FlatGrid) *FlatGrid {
	d := len(p.Size)
	dst.Size = append(dst.Size[:0], p.Size...)
	if cap(dst.Coords) < p.n*d {
		dst.Coords = make([]uint16, p.n*d)
	}
	dst.Coords = dst.Coords[:p.n*d]
	if cap(dst.Vals) < p.n {
		dst.Vals = make([]float64, p.n)
	}
	dst.Vals = dst.Vals[:p.n]
	lo := 0
	for b := 0; b < p.blocks(); b++ {
		lo += p.decodeBlockInto(b, dst.Coords[lo*d:], dst.Vals[lo:])
	}
	return dst
}

// Unpack decodes the whole grid into a fresh FlatGrid.
func (p *PackedGrid) Unpack() *FlatGrid {
	return p.UnpackInto(&FlatGrid{})
}

// TotalMass returns the sum of all cell masses.
func (p *PackedGrid) TotalMass() float64 {
	var s float64
	for c := p.Cursor(); c.Next(); {
		s += c.Mass()
	}
	return s
}

// Find returns the index of the cell with the given coordinates, or −1.
// The grid must be in canonical order, like FlatGrid.Find.
func (p *PackedGrid) Find(coords []uint16) int {
	nb := p.blocks()
	if nb == 0 {
		return 0 - 1
	}
	d := len(p.Size)
	probe := make([]uint16, d)
	// Last block whose first cell is ≤ coords.
	lo, hi := 0, nb
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		p.firstCell(mid, probe)
		if cmpCoords(probe, coords) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b := lo - 1
	if b < 0 {
		return -1
	}
	bc := make([]uint16, packedBlockCells*d)
	bm := make([]float64, packedBlockCells)
	count := p.decodeBlockInto(b, bc, bm)
	clo, chi := 0, count
	for clo < chi {
		mid := int(uint(clo+chi) >> 1)
		if cmpCoords(bc[mid*d:(mid+1)*d], coords) < 0 {
			clo = mid + 1
		} else {
			chi = mid
		}
	}
	if clo < count && cmpCoords(bc[clo*d:(clo+1)*d], coords) == 0 {
		return b*packedBlockCells + clo
	}
	return -1
}

// massSection locates the mass encoding of cell i: its block payload, the
// byte offset of the mass section, the in-block index, the mode and the
// integer width.
func (p *PackedGrid) massSection(i int) (pl []byte, massOff, j int, mode byte, mw uint) {
	d := len(p.Size)
	b := i / packedBlockCells
	j = i % packedBlockCells
	pl = p.payload(b)
	sumW := 0
	for _, w := range pl[2*d : 3*d] {
		sumW += int(w)
	}
	count := int(binary.LittleEndian.Uint16(pl[3*d+2:]))
	massOff = 3*d + 4 + (count*sumW+7)/8
	return pl, massOff, j, pl[3*d], uint(pl[3*d+1])
}

// MassAt returns the mass of cell i.
func (p *PackedGrid) MassAt(i int) float64 {
	pl, massOff, j, mode, mw := p.massSection(i)
	if mode == packedMassFloats {
		return math.Float64frombits(binary.LittleEndian.Uint64(pl[massOff+8*j:]))
	}
	return float64(getBits(pl[massOff:], uint64(j)*uint64(mw), mw))
}

// DecMassAt subtracts one unit of mass from cell i in place and returns the
// new mass — the packed form of a streaming session's signed-mass removal
// (FlatGrid: Vals[i]--). Decrementing never widens a value, so the block's
// bit width stays valid; a cell already at zero mass stays at zero. A cell
// reaching mass ≤ 0 becomes a tombstone, swept by the next Compact or merge.
func (p *PackedGrid) DecMassAt(i int) float64 {
	pl, massOff, j, mode, mw := p.massSection(i)
	if mode == packedMassFloats {
		old := math.Float64frombits(binary.LittleEndian.Uint64(pl[massOff+8*j:]))
		nm := old - 1
		binary.LittleEndian.PutUint64(pl[massOff+8*j:], math.Float64bits(nm))
		if nm <= 0 && old > 0 {
			p.tombs++
		}
		return nm
	}
	u := getBits(pl[massOff:], uint64(j)*uint64(mw), mw)
	if u == 0 {
		return 0
	}
	u--
	putBits(pl[massOff:], uint64(j)*uint64(mw), mw, u)
	if u == 0 {
		p.tombs++
	}
	return float64(u)
}

// Compact returns the grid without its tombstone cells (mass ≤ 0) plus the
// remap: remap[i] is cell i's new index, or −1 if it was swept — the packed
// mirror of FlatGrid.Compact. A grid holding no tombstones is returned
// unchanged with a nil remap.
func (p *PackedGrid) Compact() (*PackedGrid, []int32) {
	if p.tombs == 0 {
		return p, nil
	}
	bld := NewPackedBuilder(p.Size, p.n-p.tombs)
	remap := make([]int32, p.n)
	i := 0
	for c := p.Cursor(); c.Next(); i++ {
		if m := c.Mass(); m > 0 {
			remap[i] = int32(bld.Len())
			bld.Append(c.Coords(), m)
		} else {
			remap[i] = -1
		}
	}
	return bld.Grid(), remap
}

// PackFlat compresses f into the block representation, preserving cell
// order (cell i of the result is cell i of f).
func PackFlat(f *FlatGrid) *PackedGrid {
	d := f.Dim()
	bld := NewPackedBuilder(f.Size, f.Len())
	for i := 0; i < f.Len(); i++ {
		bld.Append(f.Coords[i*d:(i+1)*d], f.Vals[i])
	}
	return bld.Grid()
}

// PackedCursor streams a packed grid's cells in order, decoding one block
// at a time — the iteration primitive of the merges, the external sort and
// the snapshot writer, which never materialize the uncompressed grid. The
// Coords view is valid until the next Next call.
type PackedCursor struct {
	p      *PackedGrid
	d      int
	i      int // current cell (global index); -1 before the first Next
	blk    int // decoded block, -1 before the first
	lo     int // global index of the decoded block's first cell
	coords []uint16
	masses []float64
}

// Cursor returns a cursor positioned before the first cell.
func (p *PackedGrid) Cursor() *PackedCursor {
	d := len(p.Size)
	buf := min(p.n, packedBlockCells)
	return &PackedCursor{
		p: p, d: d, i: -1, blk: -1,
		coords: make([]uint16, buf*d),
		masses: make([]float64, buf),
	}
}

// Next advances to the next cell, reporting whether one exists.
func (c *PackedCursor) Next() bool {
	c.i++
	if c.i >= c.p.n {
		return false
	}
	if b := c.i / packedBlockCells; b != c.blk {
		c.p.decodeBlockInto(b, c.coords, c.masses)
		c.blk, c.lo = b, b*packedBlockCells
	}
	return true
}

// Coords returns the current cell's coordinates (a view into the cursor's
// decode buffer — copy it if it must outlive the next Next).
func (c *PackedCursor) Coords() []uint16 {
	j := c.i - c.lo
	return c.coords[j*c.d : (j+1)*c.d]
}

// Mass returns the current cell's mass.
func (c *PackedCursor) Mass() float64 { return c.masses[c.i-c.lo] }

// AncestorLabelsCtx is AncestorLabelsIntoCtx with the packed grid as the
// base: each worker decodes its own block range and streams the shifted
// coordinates straight into the kept-grid lookups, so per-point assignment
// runs off the compressed base without materializing it. Block boundaries
// are deterministic, so the result is identical for every worker count.
func (p *PackedGrid) AncestorLabelsCtx(ctx context.Context, dst []int32, kept *FlatGrid, levels int, keptLabels []int32, workers int) ([]int32, error) {
	d := len(p.Size)
	m := p.n
	if cap(dst) < m {
		dst = make([]int32, m)
	}
	out := dst[:m]
	shift := uint(levels)
	buf := min(m, packedBlockCells)
	ParallelRangesCtx(ctx, p.blocks(), workers, func(_, blo, bhi int) {
		if ctx.Err() != nil {
			return
		}
		coords := make([]uint16, buf*d)
		masses := make([]float64, buf)
		cc := make([]uint16, d)
		for b := blo; b < bhi; b++ {
			if ctx.Err() != nil {
				return
			}
			count := p.decodeBlockInto(b, coords, masses)
			lo := b * packedBlockCells
			for i := 0; i < count; i++ {
				bc := coords[i*d : (i+1)*d]
				for j := 0; j < d; j++ {
					cc[j] = bc[j] >> shift
				}
				if k := kept.Find(cc); k >= 0 && keptLabels[k] >= 0 {
					out[lo+i] = keptLabels[k]
				} else {
					out[lo+i] = -1
				}
			}
		}
	})
	return out, CtxErr(ctx)
}

// AncestorLabelsCtx is AncestorLabelsIntoCtx as a method, so the engine's
// finishing pass can take either representation as its assignment base.
func (f *FlatGrid) AncestorLabelsCtx(ctx context.Context, dst []int32, kept *FlatGrid, levels int, keptLabels []int32, workers int) ([]int32, error) {
	return AncestorLabelsIntoCtx(ctx, dst, f, kept, levels, keptLabels, workers)
}

// PackedBuilder appends cells (in the caller's order) into a growing
// PackedGrid, sealing a block every packedBlockCells cells. The last
// appended cell stays mutable until the next Append or Grid call, which the
// k-way merges use to fold duplicate cells (AddLast) without re-encoding.
type PackedBuilder struct {
	g        *PackedGrid
	d        int
	coords   []uint16 // staging block, up to packedBlockCells·d
	masses   []float64
	min, max []uint16 // per-dimension frame scratch of seal
}

// NewPackedBuilder returns a builder for a grid with the given
// per-dimension sizes; expected (≥ 0) sizes the staging buffers for grids
// smaller than one block so tiny merges do not pay full-block scratch.
func NewPackedBuilder(size []int, expected int) *PackedBuilder {
	s := append([]int(nil), size...)
	d := len(s)
	buf := packedBlockCells
	if expected >= 0 && expected < buf {
		buf = expected
	}
	return &PackedBuilder{
		g:      &PackedGrid{Size: s, off: []uint32{0}},
		d:      d,
		coords: make([]uint16, 0, buf*d),
		masses: make([]float64, 0, buf),
		min:    make([]uint16, d),
		max:    make([]uint16, d),
	}
}

// Len returns the number of cells appended so far (sealed plus staged).
func (b *PackedBuilder) Len() int { return b.g.n + len(b.masses) }

// Append adds one cell. The caller keeps cells unique and ordered, exactly
// as with FlatGrid.Append.
func (b *PackedBuilder) Append(coords []uint16, mass float64) {
	if len(b.masses) == packedBlockCells {
		b.seal()
	}
	b.coords = append(b.coords, coords...)
	b.masses = append(b.masses, mass)
}

// AddLast adds mass to the most recently appended cell. At least one cell
// must have been appended.
func (b *PackedBuilder) AddLast(mass float64) {
	b.masses[len(b.masses)-1] += mass
}

// LastCoords returns the coordinates of the most recently appended cell.
func (b *PackedBuilder) LastCoords() []uint16 {
	n := len(b.masses)
	return b.coords[(n-1)*b.d : n*b.d]
}

// Grid seals any staged cells and returns the built grid. The builder must
// not be used afterwards.
func (b *PackedBuilder) Grid() *PackedGrid {
	if len(b.masses) > 0 {
		b.seal()
	}
	return b.g
}

// seal encodes the staging block (see the format comment at the top of the
// file) and appends it to the grid.
func (b *PackedBuilder) seal() {
	count := len(b.masses)
	d := b.d
	for j := 0; j < d; j++ {
		b.min[j], b.max[j] = b.coords[j], b.coords[j]
	}
	for i := 1; i < count; i++ {
		for j := 0; j < d; j++ {
			c := b.coords[i*d+j]
			if c < b.min[j] {
				b.min[j] = c
			}
			if c > b.max[j] {
				b.max[j] = c
			}
		}
	}
	mode, mw := byte(packedMassInts), uint(0)
	for _, v := range b.masses {
		u := uint64(v)
		if !(v >= 0 && float64(u) == v && u < 1<<32) {
			mode, mw = packedMassFloats, 0
			break
		}
		if w := uint(bits.Len64(u)); w > mw {
			mw = w
		}
	}
	g := b.g
	data := g.data
	for j := 0; j < d; j++ {
		data = append(data, byte(b.min[j]), byte(b.min[j]>>8))
	}
	widthsOff := len(data)
	for j := 0; j < d; j++ {
		data = append(data, byte(bits.Len16(b.max[j]-b.min[j])))
	}
	data = append(data, mode, byte(mw), byte(count), byte(count>>8))
	bw := bitWriter{out: data}
	for i := 0; i < count; i++ {
		for j := 0; j < d; j++ {
			bw.write(uint64(b.coords[i*d+j]-b.min[j]), uint(data[widthsOff+j]))
		}
	}
	bw.flushByte()
	data = bw.out
	if mode == packedMassInts {
		bw = bitWriter{out: data}
		for _, v := range b.masses {
			bw.write(uint64(v), mw)
		}
		bw.flushByte()
		data = bw.out
	} else {
		var raw [8]byte
		for _, v := range b.masses {
			binary.LittleEndian.PutUint64(raw[:], math.Float64bits(v))
			data = append(data, raw[:]...)
		}
	}
	for _, v := range b.masses {
		if v <= 0 {
			g.tombs++
		}
	}
	g.data = data
	g.n += count
	g.off = append(g.off, uint32(len(data)))
	b.coords = b.coords[:0]
	b.masses = b.masses[:0]
}

// MergePackedFlat is MergePackedFlatCtx without cancellation.
func MergePackedFlat(live *PackedGrid, delta *FlatGrid) (*PackedGrid, []int32, []int32) {
	merged, liveRemap, deltaRemap, _ := MergePackedFlatCtx(context.Background(), live, delta)
	return merged, liveRemap, deltaRemap
}

// MergePackedFlatCtx is MergeFlatCtx with a packed live grid: the live side
// streams through a block cursor and the merged result is re-packed as it
// is emitted, so the 2-way fold of a streaming session never materializes
// the uncompressed union. Semantics are identical to MergeFlatCtx — cells
// merged in canonical order, duplicate masses summed, tombstones (merged
// mass ≤ 0) dropped with a −1 remap — and the live grid is never modified,
// so a cancelled merge leaves the session state untouched.
func MergePackedFlatCtx(ctx context.Context, live *PackedGrid, delta *FlatGrid) (merged *PackedGrid, liveRemap, deltaRemap []int32, err error) {
	d := len(live.Size)
	nl, nd := live.Len(), delta.Len()
	bld := NewPackedBuilder(live.Size, nl+nd)
	liveRemap = make([]int32, nl)
	deltaRemap = make([]int32, nd)
	cur := live.Cursor()
	haveLive := cur.Next()
	i, j := 0, 0
	for iter := 0; haveLive || j < nd; iter++ {
		if iter%ctxCheckStride == ctxCheckStride-1 {
			if err := CtxErr(ctx); err != nil {
				return nil, nil, nil, err
			}
		}
		var c int
		switch {
		case !haveLive:
			c = 1
		case j == nd:
			c = -1
		default:
			c = cmpCoords(cur.Coords(), delta.Coords[j*d:(j+1)*d])
		}
		out := int32(bld.Len())
		// Append before advancing the cursor: its Coords view dies with the
		// next block decode.
		switch {
		case c < 0:
			if mass := cur.Mass(); mass > 0 {
				bld.Append(cur.Coords(), mass)
				liveRemap[i] = out
			} else {
				liveRemap[i] = -1
			}
			i++
			haveLive = cur.Next()
		case c > 0:
			if mass := delta.Vals[j]; mass > 0 {
				bld.Append(delta.Coords[j*d:(j+1)*d], mass)
				deltaRemap[j] = out
			} else {
				deltaRemap[j] = -1
			}
			j++
		default:
			if mass := cur.Mass() + delta.Vals[j]; mass > 0 {
				bld.Append(cur.Coords(), mass)
				liveRemap[i], deltaRemap[j] = out, out
			} else {
				liveRemap[i], deltaRemap[j] = -1, -1
			}
			i++
			j++
			haveLive = cur.Next()
		}
	}
	return bld.Grid(), liveRemap, deltaRemap, nil
}

// --- bit-level plumbing ---------------------------------------------------

// bitWriter appends LSB-first bit fields to a byte slice. Values are at
// most 32 bits wide, so the accumulator never overflows (n < 8 between
// writes).
type bitWriter struct {
	out []byte
	acc uint64
	n   uint
}

func (w *bitWriter) write(v uint64, bitCount uint) {
	if bitCount == 0 {
		return
	}
	w.acc |= v << w.n
	w.n += bitCount
	for w.n >= 8 {
		w.out = append(w.out, byte(w.acc))
		w.acc >>= 8
		w.n -= 8
	}
}

// flushByte pads the pending bits to a byte boundary.
func (w *bitWriter) flushByte() {
	if w.n > 0 {
		w.out = append(w.out, byte(w.acc))
		w.acc, w.n = 0, 0
	}
}

// bitReader consumes LSB-first bit fields from a byte slice. Fields are at
// most 32 bits wide; the invariant n < 8 between reads bounds the
// accumulator exactly like bitWriter's.
type bitReader struct {
	b   []byte
	pos int
	acc uint64
	n   uint
}

func (r *bitReader) read(bitCount uint) uint64 {
	if bitCount == 0 {
		return 0
	}
	for r.n < bitCount {
		r.acc |= uint64(r.b[r.pos]) << r.n
		r.pos++
		r.n += 8
	}
	v := r.acc & (1<<bitCount - 1)
	r.acc >>= bitCount
	r.n -= bitCount
	return v
}

// getBits reads a bit field at an arbitrary bit offset (random access; the
// sequential decoders use bitReader).
func getBits(b []byte, off uint64, bitCount uint) uint64 {
	if bitCount == 0 {
		return 0
	}
	byteOff := int(off >> 3)
	shift := uint(off & 7)
	nb := int((shift + bitCount + 7) / 8)
	var v uint64
	for i := 0; i < nb; i++ {
		v |= uint64(b[byteOff+i]) << (8 * uint(i))
	}
	return (v >> shift) & (1<<bitCount - 1)
}

// putBits writes a bit field at an arbitrary bit offset, preserving the
// neighboring bits.
func putBits(b []byte, off uint64, bitCount uint, v uint64) {
	if bitCount == 0 {
		return
	}
	byteOff := int(off >> 3)
	shift := uint(off & 7)
	nb := int((shift + bitCount + 7) / 8)
	var cur uint64
	for i := 0; i < nb; i++ {
		cur |= uint64(b[byteOff+i]) << (8 * uint(i))
	}
	mask := (uint64(1)<<bitCount - 1) << shift
	cur = (cur &^ mask) | (v << shift)
	for i := 0; i < nb; i++ {
		b[byteOff+i] = byte(cur >> (8 * uint(i)))
	}
}

// decodePackedBlock validates and decodes one block payload read from an
// untrusted source (a spill file or an AWG2 snapshot) into coords and
// masses, which must hold packedBlockCells·d and packedBlockCells values —
// the decode is bounded by the block size no matter what the stream claims.
// It returns the cell count or a descriptive error; it never panics.
func decodePackedBlock(payload []byte, d int, coords []uint16, masses []float64) (int, error) {
	hdr := 3*d + 4
	if len(payload) < hdr {
		return 0, fmt.Errorf("block payload of %d bytes shorter than its %d-byte header", len(payload), hdr)
	}
	widths := payload[2*d : 3*d]
	sumW := 0
	for j, w := range widths {
		if w > 16 {
			return 0, fmt.Errorf("coordinate width %d of dimension %d exceeds 16 bits", w, j)
		}
		sumW += int(w)
	}
	mode := payload[3*d]
	mw := uint(payload[3*d+1])
	if mode != packedMassInts && mode != packedMassFloats {
		return 0, fmt.Errorf("unknown mass mode %d", mode)
	}
	if mode == packedMassInts && mw > 32 {
		return 0, fmt.Errorf("mass width %d exceeds 32 bits", mw)
	}
	count := int(binary.LittleEndian.Uint16(payload[3*d+2:]))
	if count == 0 || count > packedBlockCells {
		return 0, fmt.Errorf("block cell count %d out of range [1,%d]", count, packedBlockCells)
	}
	if count*d > len(coords) || count > len(masses) {
		return 0, fmt.Errorf("block cell count %d exceeds the stream's declared size", count)
	}
	coordBytes := (count*sumW + 7) / 8
	massBytes := count * 8
	if mode == packedMassInts {
		massBytes = (count*int(mw) + 7) / 8
	}
	if len(payload) != hdr+coordBytes+massBytes {
		return 0, fmt.Errorf("block payload of %d bytes, want %d for %d cells", len(payload), hdr+coordBytes+massBytes, count)
	}
	br := bitReader{b: payload[hdr:]}
	for i := 0; i < count; i++ {
		for j := 0; j < d; j++ {
			base := int(binary.LittleEndian.Uint16(payload[2*j:]))
			c := base + int(br.read(uint(widths[j])))
			if c > 0xFFFF {
				return 0, fmt.Errorf("cell %d coordinate %d overflows uint16 in dimension %d", i, c, j)
			}
			coords[i*d+j] = uint16(c)
		}
	}
	massOff := hdr + coordBytes
	if mode == packedMassInts {
		mr := bitReader{b: payload[massOff:]}
		for i := 0; i < count; i++ {
			masses[i] = float64(mr.read(mw))
		}
	} else {
		for i := 0; i < count; i++ {
			masses[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[massOff+8*i:]))
		}
	}
	return count, nil
}

// maxPackedPayload bounds a d-dimensional block payload: header plus
// full-width coordinates plus raw float64 masses. Readers use it to reject
// an adversarial length prefix before allocating or reading anything.
func maxPackedPayload(d int) int {
	return 3*d + 4 + (packedBlockCells*16*d+7)/8 + packedBlockCells*8
}
