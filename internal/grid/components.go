package grid

import "fmt"

// Connectivity selects which cells count as neighbors during
// connected-component labeling.
type Connectivity int

const (
	// Faces connects cells that differ by ±1 in exactly one dimension
	// (2d neighbors; 4-connectivity in 2-D). This is the default and the
	// only option that scales to high dimension.
	Faces Connectivity = iota
	// Full connects cells that differ by at most 1 in every dimension
	// (3ᵈ−1 neighbors; 8-connectivity in 2-D). Limited to d ≤ 8.
	Full
)

// maxFullDim bounds Full connectivity: 3⁸−1 = 6560 neighbor offsets is the
// largest fan-out we allow per cell.
const maxFullDim = 8

// Components labels the occupied cells of g with consecutive component ids
// starting at 0, using breadth-first search over the chosen connectivity.
// Iteration order is made deterministic by visiting cells in sorted key
// order, so the same grid always yields the same labeling (the paper's
// order-insensitivity property).
func Components(g *Grid, conn Connectivity) (map[Key]int, error) {
	if conn == Full && g.Dim() > maxFullDim {
		return nil, fmt.Errorf("grid: Full connectivity limited to %d dimensions, grid has %d", maxFullDim, g.Dim())
	}
	labels := make(map[Key]int, g.Len())
	// Neighbor candidates are packed into a reused buffer; interning over
	// the grid's own keys turns each probe into an allocation-free map
	// lookup that yields the retained Key — a candidate missing from the
	// intern map is simply unoccupied. Visit order matches the previous
	// allocating implementation exactly, so labels are unchanged.
	intern := make(map[Key]Key, g.Len())
	for k := range g.Cells {
		intern[k] = k
	}
	next := 0
	var queue []Key
	d := g.Dim()
	off := make([]int, d)
	curCoords := make([]int, d)
	buf := make([]byte, 2*d)
	// probe checks the candidate currently packed in buf; hoisted out of
	// the BFS loops so the closure is allocated once per call.
	probe := func() {
		nb, ok := intern[Key(buf)]
		if !ok {
			return
		}
		if _, seen := labels[nb]; seen {
			return
		}
		labels[nb] = next
		queue = append(queue, nb)
	}
	for _, start := range g.SortedKeys() {
		if _, seen := labels[start]; seen {
			continue
		}
		labels[start] = next
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			cur := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			switch conn {
			case Faces:
				copy(buf, cur)
				for j := 0; j < d; j++ {
					c := cur.Coord(j)
					if c > 0 {
						putCoord(buf, j, c-1)
						probe()
					}
					if c+1 < g.Size[j] {
						putCoord(buf, j, c+1)
						probe()
					}
					putCoord(buf, j, c)
				}
			case Full:
				for j := 0; j < d; j++ {
					curCoords[j] = cur.Coord(j)
					off[j] = -1
				}
				for {
					// Skip the all-zero offset.
					allZero := true
					for _, o := range off {
						if o != 0 {
							allZero = false
							break
						}
					}
					if !allZero && packOffset(buf, curCoords, off, g.Size) {
						probe()
					}
					// Advance mixed-radix counter over {-1,0,1}ᵈ.
					j := 0
					for ; j < len(off); j++ {
						off[j]++
						if off[j] <= 1 {
							break
						}
						off[j] = -1
					}
					if j == len(off) {
						break
					}
				}
			}
		}
		next++
	}
	return labels, nil
}

// packOffset packs coords+off into the key buffer buf, reporting false if
// the shifted cell falls outside the grid.
func packOffset(buf []byte, coords, off, size []int) bool {
	for j, o := range off {
		c := coords[j] + o
		if c < 0 || c >= size[j] {
			return false
		}
		putCoord(buf, j, c)
	}
	return true
}

// ComponentSizes returns the total density mass of each component label.
func ComponentSizes(g *Grid, labels map[Key]int) map[int]float64 {
	out := make(map[int]float64)
	for k, l := range labels {
		out[l] += g.Cells[k]
	}
	return out
}
