package grid

import "fmt"

// Connectivity selects which cells count as neighbors during
// connected-component labeling.
type Connectivity int

const (
	// Faces connects cells that differ by ±1 in exactly one dimension
	// (2d neighbors; 4-connectivity in 2-D). This is the default and the
	// only option that scales to high dimension.
	Faces Connectivity = iota
	// Full connects cells that differ by at most 1 in every dimension
	// (3ᵈ−1 neighbors; 8-connectivity in 2-D). Limited to d ≤ 8.
	Full
)

// maxFullDim bounds Full connectivity: 3⁸−1 = 6560 neighbor offsets is the
// largest fan-out we allow per cell.
const maxFullDim = 8

// Components labels the occupied cells of g with consecutive component ids
// starting at 0, using breadth-first search over the chosen connectivity.
// Iteration order is made deterministic by visiting cells in sorted key
// order, so the same grid always yields the same labeling (the paper's
// order-insensitivity property).
func Components(g *Grid, conn Connectivity) (map[Key]int, error) {
	if conn == Full && g.Dim() > maxFullDim {
		return nil, fmt.Errorf("grid: Full connectivity limited to %d dimensions, grid has %d", maxFullDim, g.Dim())
	}
	labels := make(map[Key]int, g.Len())
	next := 0
	var queue []Key
	coords := make([]int, g.Dim())
	for _, start := range g.SortedKeys() {
		if _, seen := labels[start]; seen {
			continue
		}
		labels[start] = next
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			cur := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			visit := func(nb Key) {
				if _, ok := g.Cells[nb]; !ok {
					return
				}
				if _, seen := labels[nb]; seen {
					return
				}
				labels[nb] = next
				queue = append(queue, nb)
			}
			switch conn {
			case Faces:
				for j := 0; j < g.Dim(); j++ {
					c := cur.Coord(j)
					if c > 0 {
						visit(cur.With(j, c-1))
					}
					if c+1 < g.Size[j] {
						visit(cur.With(j, c+1))
					}
				}
			case Full:
				for j := range coords {
					coords[j] = -1
				}
				for {
					// Skip the all-zero offset.
					allZero := true
					for _, o := range coords {
						if o != 0 {
							allZero = false
							break
						}
					}
					if !allZero {
						nb, ok := offsetKey(cur, coords, g.Size)
						if ok {
							visit(nb)
						}
					}
					// Advance mixed-radix counter over {-1,0,1}ᵈ.
					j := 0
					for ; j < len(coords); j++ {
						coords[j]++
						if coords[j] <= 1 {
							break
						}
						coords[j] = -1
					}
					if j == len(coords) {
						break
					}
				}
			}
		}
		next++
	}
	return labels, nil
}

// offsetKey returns cur shifted by off, reporting false if out of bounds.
func offsetKey(cur Key, off []int, size []int) (Key, bool) {
	coords := cur.Coords()
	for j, o := range off {
		coords[j] += o
		if coords[j] < 0 || coords[j] >= size[j] {
			return "", false
		}
	}
	return MakeKey(coords), true
}

// ComponentSizes returns the total density mass of each component label.
func ComponentSizes(g *Grid, labels map[Key]int) map[int]float64 {
	out := make(map[int]float64)
	for k, l := range labels {
		out[l] += g.Cells[k]
	}
	return out
}
