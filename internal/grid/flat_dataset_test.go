package grid

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"adawave/internal/pointset"
)

func randomDataset(n, d int, seed int64) ([][]float64, *pointset.Dataset) {
	rng := rand.New(rand.NewSource(seed))
	points := make([][]float64, n)
	for i := range points {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		points[i] = p
	}
	return points, pointset.MustFromSlices(points)
}

// TestNewQuantizerDatasetMatchesSlices: the strided bounding-box scan must
// reproduce the slice-based quantizer exactly at every worker count.
func TestNewQuantizerDatasetMatchesSlices(t *testing.T) {
	points, ds := randomDataset(5000, 3, 1)
	want, err := NewQuantizer(points, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7} {
		got, err := NewQuantizerDataset(ds, 64, workers)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			if got.Mins[j] != want.Mins[j] || got.Maxs[j] != want.Maxs[j] {
				t.Fatalf("workers=%d dim %d: bbox (%v,%v) want (%v,%v)",
					workers, j, got.Mins[j], got.Maxs[j], want.Mins[j], want.Maxs[j])
			}
		}
	}
}

// TestNewQuantizerDatasetErrors mirrors the slice constructor's validation.
func TestNewQuantizerDatasetErrors(t *testing.T) {
	_, ds := randomDataset(10, 2, 2)
	if _, err := NewQuantizerDataset(nil, 8, 1); err == nil {
		t.Fatal("nil dataset must error")
	}
	if _, err := NewQuantizerDataset(&pointset.Dataset{}, 8, 1); err == nil {
		t.Fatal("empty dataset must error")
	}
	if _, err := NewQuantizerDataset(ds, 1, 1); err == nil {
		t.Fatal("scale 1 must error")
	}
	bad := ds.Clone()
	bad.Data[7] = math.NaN()
	for _, workers := range []int{1, 4} {
		if _, err := NewQuantizerDataset(bad, 8, workers); err == nil {
			t.Fatalf("workers=%d: NaN coordinate must error", workers)
		}
	}
}

// TestQuantizeDatasetMatchesQuantizeFlat: identical grid (size, canonical
// cell order, densities) for every worker count, plus a valid cell-id memo:
// ids[i] must point at exactly the cell CellCoordsU16 puts point i in.
func TestQuantizeDatasetMatchesQuantizeFlat(t *testing.T) {
	points, ds := randomDataset(6000, 2, 3)
	q, err := NewQuantizer(points, 32)
	if err != nil {
		t.Fatal(err)
	}
	want := q.QuantizeFlat(points, 1)
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, ids := q.QuantizeDataset(ds, workers)
			if got.Len() != want.Len() {
				t.Fatalf("cells: got %d, want %d", got.Len(), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				if cmpCoords(got.CellCoords(i), want.CellCoords(i)) != 0 || got.Vals[i] != want.Vals[i] {
					t.Fatalf("cell %d: got %v/%v, want %v/%v",
						i, got.CellCoords(i), got.Vals[i], want.CellCoords(i), want.Vals[i])
				}
			}
			coords := make([]uint16, 2)
			for i, p := range points {
				q.CellCoordsU16(p, coords)
				id := int(ids[i])
				if id < 0 || cmpCoords(got.CellCoords(id), coords) != 0 {
					t.Fatalf("point %d: memoized cell %d does not match coords %v", i, id, coords)
				}
			}
		})
	}
}

// TestQuantizeMoreWorkersThanRanges: ParallelRanges can produce fewer
// ranges than workers (ceil-chunking), leaving nil shard slots; the merge
// must skip them instead of panicking, and the memo must stay valid
// (regression test for a nil-dereference in the mapped shard merge).
func TestQuantizeMoreWorkersThanRanges(t *testing.T) {
	points, ds := randomDataset(parallelCellCutoff+1, 2, 9)
	q, err := NewQuantizer(points, 32)
	if err != nil {
		t.Fatal(err)
	}
	want := q.QuantizeFlat(points, 1)
	for _, workers := range []int{64, 1024} {
		flatGot := q.QuantizeFlat(points, workers)
		got, ids := q.QuantizeDataset(ds, workers)
		for _, g := range []*FlatGrid{flatGot, got} {
			if g.Len() != want.Len() {
				t.Fatalf("workers=%d: cells %d, want %d", workers, g.Len(), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				if cmpCoords(g.CellCoords(i), want.CellCoords(i)) != 0 || g.Vals[i] != want.Vals[i] {
					t.Fatalf("workers=%d: cell %d diverged", workers, i)
				}
			}
		}
		coords := make([]uint16, 2)
		for i, p := range points {
			q.CellCoordsU16(p, coords)
			if id := int(ids[i]); id < 0 || cmpCoords(got.CellCoords(id), coords) != 0 {
				t.Fatalf("workers=%d: point %d memo %d wrong", workers, i, ids[i])
			}
		}
	}
}

// TestAncestorLabels checks the per-level table against the definition: the
// label of the kept cell whose coordinates are the base cell's shifted by
// the level, −1 when absent or demoted.
func TestAncestorLabels(t *testing.T) {
	points, ds := randomDataset(4000, 2, 4)
	q, err := NewQuantizer(points, 64)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := q.QuantizeDataset(ds, 1)
	for _, levels := range []int{0, 1, 2} {
		// A synthetic kept grid: every other ancestor of the base cells.
		shift := uint(levels)
		anc := NewFlat([]int{64 >> shift, 64 >> shift}, 0)
		seen := map[[2]uint16]bool{}
		coords := make([]uint16, 2)
		for c := 0; c < base.Len(); c++ {
			bc := base.CellCoords(c)
			coords[0], coords[1] = bc[0]>>shift, bc[1]>>shift
			k := [2]uint16{coords[0], coords[1]}
			if !seen[k] {
				seen[k] = true
				anc.Append(coords, 1)
			}
		}
		anc.SortCanonical()
		kept := NewFlat(anc.Size, 0)
		keptLabels := make([]int32, 0)
		for i := 0; i < anc.Len(); i += 2 {
			kept.Append(anc.CellCoords(i), anc.Vals[i])
			label := int32(len(keptLabels) % 3)
			if label == 2 {
				label = -1 // demoted component
			}
			keptLabels = append(keptLabels, label)
		}
		for _, workers := range []int{1, 4} {
			table := AncestorLabels(base, kept, levels, keptLabels, workers)
			for c := 0; c < base.Len(); c++ {
				bc := base.CellCoords(c)
				coords[0], coords[1] = bc[0]>>shift, bc[1]>>shift
				want := int32(-1)
				if j := kept.Find(coords); j >= 0 && keptLabels[j] >= 0 {
					want = keptLabels[j]
				}
				if table[c] != want {
					t.Fatalf("levels=%d workers=%d cell %d: got %d, want %d",
						levels, workers, c, table[c], want)
				}
			}
		}
	}
}

// TestSortedDensitiesInto: the pooled form must equal SortedDensities and
// reuse the buffer's capacity.
func TestSortedDensitiesInto(t *testing.T) {
	points, ds := randomDataset(3000, 2, 5)
	q, err := NewQuantizer(points, 32)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := q.QuantizeDataset(ds, 1)
	want := f.SortedDensities()
	buf := make([]float64, 0, f.Len())
	got := f.SortedDensitiesInto(buf)
	if len(got) != len(want) {
		t.Fatalf("length: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("curve[%d]: got %v, want %v", i, got[i], want[i])
		}
	}
	if f.Len() > 0 && &got[0] != &buf[:1][0] {
		t.Fatal("SortedDensitiesInto must reuse the buffer's capacity")
	}
}

// TestCloneInto: deep copy that reuses destination capacity.
func TestCloneInto(t *testing.T) {
	points, ds := randomDataset(1000, 2, 6)
	q, err := NewQuantizer(points, 16)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := q.QuantizeDataset(ds, 1)
	dst := &FlatGrid{}
	got := f.CloneInto(dst)
	if got != dst {
		t.Fatal("CloneInto must return its destination")
	}
	if got.Len() != f.Len() {
		t.Fatalf("cells: got %d, want %d", got.Len(), f.Len())
	}
	got.Vals[0] = -42
	if f.Vals[0] == -42 {
		t.Fatal("CloneInto must not share backing storage")
	}
	// Cloning a smaller grid into the same destination reuses capacity.
	small := NewFlat(f.Size, 1)
	small.Append(f.CellCoords(0), 7)
	prev := &got.Vals[:1][0]
	got = small.CloneInto(dst)
	if got.Len() != 1 || &got.Vals[0] != prev {
		t.Fatal("CloneInto must reuse the destination's backing array")
	}
}
