package grid

import (
	"context"
	"fmt"
	"sort"
)

// ComponentsFlat labels the cells of f with consecutive component ids
// starting at 0 under the chosen connectivity, returning one label per cell
// index plus the component count. It is the flat counterpart of Components:
// instead of BFS over map probes it unions sorted-adjacent cells (one
// sorted pass per dimension for Faces; binary search per offset for Full)
// and then numbers the components in Key byte order of their first cell —
// exactly the order the map BFS assigns ids in, so the two labelings agree
// cell for cell. f's cell order is left untouched.
func ComponentsFlat(f *FlatGrid, conn Connectivity) ([]int32, int, error) {
	return ComponentsFlatCtx(context.Background(), f, conn)
}

// ComponentsFlatCtx is ComponentsFlat with cooperative cancellation, polled
// between the per-dimension union passes (Faces), every ctxCheckStride cells
// of the neighbor enumeration (Full), and before the final numbering pass.
// f is never modified, so a cancelled run has no side effects.
func ComponentsFlatCtx(ctx context.Context, f *FlatGrid, conn Connectivity) ([]int32, int, error) {
	d := f.Dim()
	m := f.Len()
	if conn == Full && d > maxFullDim {
		return nil, 0, invalidInput(fmt.Errorf("grid: Full connectivity limited to %d dimensions, grid has %d", maxFullDim, d))
	}
	labels := make([]int32, m)
	if m == 0 {
		return labels, 0, nil
	}
	parent := make([]int32, m)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	perm := make([]int32, m)
	switch conn {
	case Faces:
		// One sorted pass per dimension: cells adjacent in (others-major,
		// j-minor) order that agree on every other coordinate and differ by
		// one in j are face neighbors.
		for j := 0; j < d; j++ {
			if err := CtxErr(ctx); err != nil {
				return nil, 0, err
			}
			for i := range perm {
				perm[i] = int32(i)
			}
			sort.Slice(perm, func(a, b int) bool {
				ca := f.CellCoords(int(perm[a]))
				cb := f.CellCoords(int(perm[b]))
				for p := 0; p < d; p++ {
					if p != j && ca[p] != cb[p] {
						return ca[p] < cb[p]
					}
				}
				return ca[j] < cb[j]
			})
			for t := 1; t < m; t++ {
				a, b := perm[t-1], perm[t]
				ca, cb := f.CellCoords(int(a)), f.CellCoords(int(b))
				if cb[j] == ca[j]+1 && sameLineExcept(f.Coords, d, int(a), int(b), j) {
					union(a, b)
				}
			}
		}
	case Full:
		// Canonical order for binary-search neighbor lookups.
		for i := range perm {
			perm[i] = int32(i)
		}
		sort.Slice(perm, func(a, b int) bool {
			return cmpCoords(f.CellCoords(int(perm[a])), f.CellCoords(int(perm[b]))) < 0
		})
		lookup := func(coords []uint16) int32 {
			lo, hi := 0, m
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if cmpCoords(f.CellCoords(int(perm[mid])), coords) < 0 {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < m && cmpCoords(f.CellCoords(int(perm[lo])), coords) == 0 {
				return perm[lo]
			}
			return -1
		}
		off := make([]int, d)
		nb := make([]uint16, d)
		for i := 0; i < m; i++ {
			if i%ctxCheckStride == ctxCheckStride-1 {
				if err := CtxErr(ctx); err != nil {
					return nil, 0, err
				}
			}
			cell := f.CellCoords(i)
			for j := range off {
				off[j] = -1
			}
			for {
				allZero := true
				for _, o := range off {
					if o != 0 {
						allZero = false
						break
					}
				}
				if !allZero {
					ok := true
					for j, o := range off {
						c := int(cell[j]) + o
						if c < 0 || c >= f.Size[j] {
							ok = false
							break
						}
						nb[j] = uint16(c)
					}
					if ok {
						if t := lookup(nb); t >= 0 {
							union(int32(i), t)
						}
					}
				}
				j := 0
				for ; j < len(off); j++ {
					off[j]++
					if off[j] <= 1 {
						break
					}
					off[j] = -1
				}
				if j == len(off) {
					break
				}
			}
		}
	}

	// Number components by the Key byte order of their first cell, matching
	// the map BFS visit order.
	if err := CtxErr(ctx); err != nil {
		return nil, 0, err
	}
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		return keyByteLess(f.CellCoords(int(perm[a])), f.CellCoords(int(perm[b])))
	})
	rootLabel := make([]int32, m)
	for i := range rootLabel {
		rootLabel[i] = -1
	}
	next := int32(0)
	for _, i := range perm {
		r := find(i)
		if rootLabel[r] < 0 {
			rootLabel[r] = next
			next++
		}
	}
	for i := 0; i < m; i++ {
		labels[i] = rootLabel[find(int32(i))]
	}
	return labels, int(next), nil
}

// ComponentMasses returns the total density mass of each component label
// (flat counterpart of ComponentSizes), summed in cell order.
func ComponentMasses(f *FlatGrid, labels []int32, ncomp int) []float64 {
	out := make([]float64, ncomp)
	for i, l := range labels {
		out[l] += f.Vals[i]
	}
	return out
}
