package grid

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"

	"adawave/internal/pointset"
)

// clusteredDataset builds a clustered-plus-noise dataset that occupies many
// cells with duplicate hits, exercising dedupe and cross-run merging.
func clusteredDataset(n, d int, seed int64) *pointset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := pointset.New(d, n)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 { // uniform background
			for j := range row {
				row[j] = rng.Float64() * 100
			}
		} else { // one of 8 tight blobs
			c := float64(rng.Intn(8)) * 12
			for j := range row {
				row[j] = c + rng.NormFloat64()*2
			}
		}
		ds.AppendRow(row)
	}
	return ds
}

// sameGrid fails the test unless a and b are bit-identical flat grids.
func sameGrid(t *testing.T, a, b *FlatGrid, label string) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: %d cells vs %d", label, a.Len(), b.Len())
	}
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			t.Fatalf("%s: coords diverge at %d", label, i)
		}
	}
	for i := range a.Vals {
		if math.Float64bits(a.Vals[i]) != math.Float64bits(b.Vals[i]) {
			t.Fatalf("%s: cell %d mass %v vs %v", label, i, a.Vals[i], b.Vals[i])
		}
	}
}

// TestQuantizeDatasetExternalEquivalence sweeps chunk sizes and spill
// thresholds (including "spill everything") and checks the external sort
// reproduces QuantizeDatasetCtx's grid and point→cell memo bit for bit,
// at several worker counts, leaving no spill files behind.
func TestQuantizeDatasetExternalEquivalence(t *testing.T) {
	ds := clusteredDataset(20000, 3, 42)
	q, err := NewQuantizerDataset(ds, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantGrid, wantIDs, err := q.QuantizeDatasetCtx(context.Background(), ds, 4)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 12; iter++ {
		chunk := 1 + rng.Intn(ds.N+1000)
		spill := int64(1) // force everything to disk
		if iter%3 == 1 {
			spill = 1 << 16 // mixed retain/spill
		} else if iter%3 == 2 {
			spill = 1 << 30 // all in memory
		}
		workers := 1 + rng.Intn(4)
		tmp := t.TempDir()
		g, ids, err := q.QuantizeDatasetExternalCtx(context.Background(), ds, workers,
			ExtSortOptions{ChunkPoints: chunk, SpillBytes: spill, TempDir: tmp})
		if err != nil {
			t.Fatalf("chunk=%d spill=%d workers=%d: %v", chunk, spill, workers, err)
		}
		sameGrid(t, wantGrid, g, "grid")
		for i := range wantIDs {
			if ids[i] != wantIDs[i] {
				t.Fatalf("chunk=%d spill=%d workers=%d: ids[%d] = %d, want %d",
					chunk, spill, workers, i, ids[i], wantIDs[i])
			}
		}
		// The packed-output variant of the same external sort must agree
		// bit for bit after unpacking.
		pg, pids, err := q.QuantizeDatasetExternalPackedCtx(context.Background(), ds, workers,
			ExtSortOptions{ChunkPoints: chunk, SpillBytes: spill, TempDir: tmp})
		if err != nil {
			t.Fatalf("packed chunk=%d spill=%d workers=%d: %v", chunk, spill, workers, err)
		}
		sameGrid(t, wantGrid, pg.Unpack(), "packed grid")
		for i := range wantIDs {
			if pids[i] != wantIDs[i] {
				t.Fatalf("packed chunk=%d spill=%d workers=%d: ids[%d] = %d, want %d",
					chunk, spill, workers, i, pids[i], wantIDs[i])
			}
		}
		// Spill hygiene: every temp file and the spill dir itself must be
		// gone after the call.
		entries, err := os.ReadDir(tmp)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Fatalf("chunk=%d spill=%d: %d leaked entries in spill base dir", chunk, spill, len(entries))
		}
	}
}

// TestQuantizeDatasetExternalCancel checks a cancelled external sort
// unwinds with the taxonomy error and removes its spill directory.
func TestQuantizeDatasetExternalCancel(t *testing.T) {
	ds := clusteredDataset(50000, 2, 7)
	q, err := NewQuantizerDataset(ds, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tmp := t.TempDir()
	_, _, err = q.QuantizeDatasetExternalCtx(ctx, ds, 2,
		ExtSortOptions{ChunkPoints: 1024, SpillBytes: 1, TempDir: tmp})
	if err == nil {
		t.Fatal("cancelled external sort returned no error")
	}
	entries, rerr := os.ReadDir(tmp)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(entries) != 0 {
		t.Fatalf("%d leaked entries after cancellation", len(entries))
	}
}

// TestSpillRunRoundTrip round-trips the packed run encoding directly,
// including masses that need the raw-float64 block mode.
func TestSpillRunRoundTrip(t *testing.T) {
	g := NewFlat([]int{16, 16}, 4)
	g.Append([]uint16{0, 3}, 1)
	g.Append([]uint16{2, 1}, 7)
	g.Append([]uint16{2, 2}, 0.5)     // non-integral → float mass mode
	g.Append([]uint16{15, 15}, 1<<33) // too big for uint32 → float mass mode
	path := t.TempDir() + "/run.spill"
	if err := writeSpillRun(path, PackFlat(g)); err != nil {
		t.Fatal(err)
	}
	st, err := openRunStream(&extRun{path: path, cells: g.Len()}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer st.close()
	for i := 0; i < g.Len(); i++ {
		if st.done {
			t.Fatalf("stream exhausted at cell %d", i)
		}
		if cmpCoords(st.cur, g.CellCoords(i)) != 0 {
			t.Fatalf("cell %d coords %v, want %v", i, st.cur, g.CellCoords(i))
		}
		if math.Float64bits(st.curMass) != math.Float64bits(g.Vals[i]) {
			t.Fatalf("cell %d mass %v, want %v", i, st.curMass, g.Vals[i])
		}
		if err := st.advance(); err != nil {
			t.Fatal(err)
		}
	}
	if !st.done {
		t.Fatal("stream not exhausted after last cell")
	}
}

// drainSpillRun opens path as a spill run of declared cells and streams it
// to the end, returning the first error.
func drainSpillRun(path string, cells, d int) error {
	st, err := openRunStream(&extRun{path: path, cells: cells}, d)
	if err != nil {
		return err
	}
	defer st.close()
	for !st.done {
		if err := st.advance(); err != nil {
			return err
		}
	}
	return nil
}

// FuzzReadSpillRun feeds arbitrary bytes to the spill-run reader: any
// input must either stream to completion or fail with an error wrapping
// ErrCorruptSpillRun — never panic, and never allocate beyond the fixed
// per-block decode buffers (the t.TempDir file is the only unbounded
// input, and it is the fuzzer's own).
func FuzzReadSpillRun(f *testing.F) {
	// Seed with valid runs (integer and float masses, multiple blocks) and
	// a few adversarial prefixes.
	big := NewFlat([]int{64, 64}, 0)
	for x := 0; x < 64; x++ {
		for y := 0; y < 64; y++ {
			big.Append([]uint16{uint16(x), uint16(y)}, float64(1+(x+y)%7))
		}
	}
	small := NewFlat([]int{16, 16}, 2)
	small.Append([]uint16{1, 2}, 0.25)
	small.Append([]uint16{3, 4}, 1<<40)
	dir := f.TempDir()
	for i, g := range []*FlatGrid{big, small} {
		path := fmt.Sprintf("%s/seed-%d.spill", dir, i)
		if err := writeSpillRun(path, PackFlat(g)); err != nil {
			f.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw, g.Len())
	}
	f.Add([]byte{}, 0)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, 12)
	f.Add([]byte{4, 200, 1}, 4)

	f.Fuzz(func(t *testing.T, data []byte, cells int) {
		if cells < 0 || cells > 1<<20 {
			cells = 1 << 20
		}
		path := t.TempDir() + "/fuzz.spill"
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		if err := drainSpillRun(path, cells, 2); err != nil && !errors.Is(err, ErrCorruptSpillRun) {
			t.Fatalf("spill decode error not typed as ErrCorruptSpillRun: %v", err)
		}
	})
}
