package grid

import (
	"errors"
	"fmt"
	"math"
)

// Quantizer maps d-dimensional points into grid cells (paper Alg. 2).
// The bounding box is padded by a tiny epsilon on the upper side so the
// maxima land in the last cell (cells are right-open intervals [l, h)).
type Quantizer struct {
	Mins, Maxs []float64
	Scale      int // M: number of cells per dimension
	inv        []float64
}

// ErrNoPoints is returned when a quantizer is requested for an empty set.
var ErrNoPoints = errors.New("grid: no points to quantize")

// checkScale validates the per-dimension cell count — shared by every
// quantizer constructor so the error wording cannot diverge between the
// slice and dataset paths.
func checkScale(scale int) error {
	if scale < 2 {
		return fmt.Errorf("grid: scale must be ≥ 2, got %d", scale)
	}
	if scale > 0xFFFF {
		return fmt.Errorf("grid: scale %d exceeds the 65535 cells/dimension key limit", scale)
	}
	return nil
}

// bboxShard accumulates one shard of the bounding-box scan; the sequential
// constructors use a single shard.
type bboxShard struct {
	mins, maxs []float64
	err        error
	errAt      int
}

// init seeds the shard's extrema from its first row.
func (st *bboxShard) init(row []float64) {
	st.errAt = -1
	st.mins = append([]float64(nil), row...)
	st.maxs = append([]float64(nil), row...)
}

// scan folds row (point index i) into the shard's bounding box. It returns
// false after recording the first non-finite coordinate: a single NaN/Inf
// would silently poison the bounding box and funnel every point into one
// clamped edge cell.
func (st *bboxShard) scan(i int, row []float64) bool {
	for j, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			st.err = invalidInput(fmt.Errorf("grid: point %d has non-finite coordinate %v in dimension %d", i, v, j))
			st.errAt = i
			return false
		}
		if v < st.mins[j] {
			st.mins[j] = v
		}
		if v > st.maxs[j] {
			st.maxs[j] = v
		}
	}
	return true
}

// finishQuantizer merges the per-shard bounding boxes into a quantizer.
// Min/max merging is exact and errors are reported for the lowest offending
// point index, so the result (and any error) is identical for every shard
// layout, one included.
func finishQuantizer(states []bboxShard, scale, d int) (*Quantizer, error) {
	var firstErr error
	firstAt := -1
	for w := range states {
		st := &states[w]
		if st.err != nil && (firstAt < 0 || st.errAt < firstAt) {
			firstErr, firstAt = st.err, st.errAt
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	q := &Quantizer{Scale: scale}
	for w := range states {
		st := &states[w]
		if st.mins == nil {
			continue
		}
		if q.Mins == nil {
			q.Mins = append([]float64(nil), st.mins...)
			q.Maxs = append([]float64(nil), st.maxs...)
			continue
		}
		for j := 0; j < d; j++ {
			if st.mins[j] < q.Mins[j] {
				q.Mins[j] = st.mins[j]
			}
			if st.maxs[j] > q.Maxs[j] {
				q.Maxs[j] = st.maxs[j]
			}
		}
	}
	q.inv = make([]float64, d)
	for j := range q.inv {
		w := q.Maxs[j] - q.Mins[j]
		if w <= 0 {
			// Degenerate (constant) dimension: everything in cell 0.
			q.inv[j] = 0
			continue
		}
		q.inv[j] = float64(scale) / w
	}
	return q, nil
}

// NewQuantizer computes the bounding box of points and prepares a quantizer
// with scale cells per dimension. All points must share the same dimension.
func NewQuantizer(points [][]float64, scale int) (*Quantizer, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if err := checkScale(scale); err != nil {
		return nil, err
	}
	d := len(points[0])
	if d == 0 {
		return nil, errors.New("grid: zero-dimensional points")
	}
	var st bboxShard
	st.init(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("grid: inconsistent dimensions %d and %d", d, len(p))
		}
		if !st.scan(i, p) {
			return nil, st.err
		}
	}
	return finishQuantizer([]bboxShard{st}, scale, d)
}

// RestoreQuantizer rebuilds a quantizer from a persisted frame — the exact
// bounds and scale a checkpointed session was quantized in. The cell-width
// inverses are derived with the same float arithmetic as finishQuantizer,
// so a restored quantizer maps every point to the same cell the original
// did, bit for bit.
func RestoreQuantizer(mins, maxs []float64, scale int) (*Quantizer, error) {
	if err := checkScale(scale); err != nil {
		return nil, err
	}
	d := len(mins)
	if d == 0 || len(maxs) != d {
		return nil, fmt.Errorf("grid: quantizer frame with %d mins and %d maxs", d, len(maxs))
	}
	q := &Quantizer{
		Mins:  append([]float64(nil), mins...),
		Maxs:  append([]float64(nil), maxs...),
		Scale: scale,
		inv:   make([]float64, d),
	}
	for j := range q.inv {
		if math.IsNaN(mins[j]) || math.IsInf(mins[j], 0) || math.IsNaN(maxs[j]) || math.IsInf(maxs[j], 0) || mins[j] > maxs[j] {
			return nil, fmt.Errorf("grid: quantizer frame [%v, %v] invalid in dimension %d", mins[j], maxs[j], j)
		}
		w := q.Maxs[j] - q.Mins[j]
		if w <= 0 {
			// Degenerate (constant) dimension: everything in cell 0.
			q.inv[j] = 0
			continue
		}
		q.inv[j] = float64(scale) / w
	}
	return q, nil
}

// Dim returns the quantizer's dimensionality.
func (q *Quantizer) Dim() int { return len(q.Mins) }

// CellCoords returns the cell coordinates of point p (clamped to the grid).
func (q *Quantizer) CellCoords(p []float64, out []int) []int {
	if out == nil {
		out = make([]int, q.Dim())
	}
	for j := range q.Mins {
		c := int((p[j] - q.Mins[j]) * q.inv[j])
		if c < 0 {
			c = 0
		}
		if c >= q.Scale {
			c = q.Scale - 1
		}
		out[j] = c
	}
	return out
}

// Cell returns the grid key of point p.
func (q *Quantizer) Cell(p []float64) Key {
	return MakeKey(q.CellCoords(p, nil))
}

// Quantize builds the sparse density grid of points (each point adds mass 1
// to its cell). This is the paper's Algorithm 2: linear in n, storing only
// occupied cells. Keys are packed into a reused buffer and interned once
// per distinct cell, so the per-point cost is allocation-free — cells, not
// points, bound the allocations.
func (q *Quantizer) Quantize(points [][]float64) *Grid {
	size := make([]int, q.Dim())
	for j := range size {
		size[j] = q.Scale
	}
	g := New(size)
	coords := make([]int, q.Dim())
	buf := make([]byte, 2*q.Dim())
	slot := make(map[Key]int32)
	masses := make([]float64, 0, 1024)
	for _, p := range points {
		q.CellCoords(p, coords)
		for j, c := range coords {
			putCoord(buf, j, c)
		}
		s, ok := slot[Key(buf)]
		if !ok {
			s = int32(len(masses))
			masses = append(masses, 0)
			slot[Key(buf)] = s
		}
		masses[s] += 1
	}
	g.Cells = make(map[Key]float64, len(slot))
	for k, s := range slot {
		g.Cells[k] = masses[s]
	}
	return g
}

// CellOfPoint returns, for every point, the key of its cell at the
// quantizer's base resolution — the first half of the paper's lookup table.
// Keys are interned, so points sharing a cell share one Key allocation.
func (q *Quantizer) CellOfPoint(points [][]float64) []Key {
	out := make([]Key, len(points))
	coords := make([]int, q.Dim())
	buf := make([]byte, 2*q.Dim())
	intern := make(map[Key]Key)
	for i, p := range points {
		q.CellCoords(p, coords)
		for j, c := range coords {
			putCoord(buf, j, c)
		}
		k, ok := intern[Key(buf)]
		if !ok {
			k = Key(buf)
			intern[k] = k
		}
		out[i] = k
	}
	return out
}

// QuantizeWithCells fuses Quantize and CellOfPoint into one pass over the
// points: a single slot map serves as density accumulator and key intern,
// so the grid and the per-point base-cell table are built for one map's
// worth of work instead of two (the sequential pipeline needs both).
func (q *Quantizer) QuantizeWithCells(points [][]float64) (*Grid, []Key) {
	size := make([]int, q.Dim())
	for j := range size {
		size[j] = q.Scale
	}
	g := New(size)
	cells := make([]Key, len(points))
	coords := make([]int, q.Dim())
	buf := make([]byte, 2*q.Dim())
	slot := make(map[Key]int32)
	keys := make([]Key, 0, 1024)
	masses := make([]float64, 0, 1024)
	for i, p := range points {
		q.CellCoords(p, coords)
		for j, c := range coords {
			putCoord(buf, j, c)
		}
		s, ok := slot[Key(buf)]
		if !ok {
			s = int32(len(masses))
			k := Key(buf)
			keys = append(keys, k)
			masses = append(masses, 0)
			slot[k] = s
		}
		masses[s] += 1
		cells[i] = keys[s]
	}
	g.Cells = make(map[Key]float64, len(masses))
	for s, k := range keys {
		g.Cells[k] = masses[s]
	}
	return g, cells
}

// ShiftKey maps a base-resolution cell key to its ancestor cell after
// `levels` dyadic downsamplings (coordinates right-shifted) — the second
// half of the lookup table: a transformed-space cell at level ℓ covers the
// base cells whose coordinates shift down to it.
func ShiftKey(k Key, levels int) Key {
	d := k.Dim()
	coords := make([]int, d)
	for j := 0; j < d; j++ {
		coords[j] = k.Coord(j) >> uint(levels)
	}
	return MakeKey(coords)
}
