// Package grid implements the sparse-grid substrate of AdaWave: the “grid
// labeling” data structure from the paper (only non-zero cells are stored,
// so memory is O(occupied cells) instead of O(Mᵈ)), the feature-space
// quantizer, the per-dimension sparse wavelet transform, and connected-
// component labeling over occupied cells.
package grid

import (
	"fmt"
	"sort"

	"adawave/internal/wavelet"
)

// Key identifies a cell by its integer coordinates, packed little-endian as
// one uint16 per dimension. Strings hash in O(d) and support arbitrary
// dimension (a packed uint64 caps out at 9 dimensions × 7 bits, too small
// for the paper's 33-dimensional Dermatology workload).
type Key string

// MakeKey packs coords into a Key. Coordinates must be in [0, 65535].
func MakeKey(coords []int) Key {
	buf := make([]byte, 2*len(coords))
	for j, c := range coords {
		if c < 0 || c > 0xFFFF {
			panic(fmt.Sprintf("grid: coordinate %d out of range [0,65535]", c))
		}
		buf[2*j] = byte(c)
		buf[2*j+1] = byte(c >> 8)
	}
	return Key(buf)
}

// Dim returns the number of dimensions encoded in the key.
func (k Key) Dim() int { return len(k) / 2 }

// Coord returns the coordinate of dimension j.
func (k Key) Coord(j int) int {
	return int(k[2*j]) | int(k[2*j+1])<<8
}

// Coords decodes all coordinates.
func (k Key) Coords() []int {
	d := k.Dim()
	out := make([]int, d)
	for j := 0; j < d; j++ {
		out[j] = k.Coord(j)
	}
	return out
}

// With returns a copy of the key with dimension j replaced by c.
func (k Key) With(j, c int) Key {
	if c < 0 || c > 0xFFFF {
		panic(fmt.Sprintf("grid: coordinate %d out of range [0,65535]", c))
	}
	buf := []byte(k)
	buf[2*j] = byte(c)
	buf[2*j+1] = byte(c >> 8)
	return Key(buf)
}

// putCoord stamps coordinate c into dimension j of a packed key buffer.
func putCoord(buf []byte, j, c int) {
	buf[2*j] = byte(c)
	buf[2*j+1] = byte(c >> 8)
}

// AppendShiftedKey appends the packed bytes of k's ancestor key after
// `levels` dyadic downsamplings to dst and returns dst — ShiftKey without
// the per-call allocation: probing a map via
// m[Key(AppendShiftedKey(buf[:0], k, levels))] compiles to an
// allocation-free lookup, so per-point assignment sweeps reuse one buffer.
func AppendShiftedKey(dst []byte, k Key, levels int) []byte {
	d := k.Dim()
	for j := 0; j < d; j++ {
		c := k.Coord(j) >> uint(levels)
		dst = append(dst, byte(c), byte(c>>8))
	}
	return dst
}

// Grid is a sparse d-dimensional grid of cell densities. Only cells with a
// recorded (usually non-zero) density are stored.
type Grid struct {
	// Size is the number of cells along each dimension at the grid's
	// current resolution.
	Size []int
	// Cells maps occupied cells to their density.
	Cells map[Key]float64
}

// New returns an empty grid with the given per-dimension sizes.
func New(size []int) *Grid {
	s := append([]int(nil), size...)
	return &Grid{Size: s, Cells: make(map[Key]float64)}
}

// Dim returns the dimensionality of the grid.
func (g *Grid) Dim() int { return len(g.Size) }

// Len returns the number of occupied cells (the paper's m).
func (g *Grid) Len() int { return len(g.Cells) }

// Add accumulates w into the cell at key.
func (g *Grid) Add(key Key, w float64) { g.Cells[key] += w }

// Density returns the density of the cell (0 when unoccupied).
func (g *Grid) Density(key Key) float64 { return g.Cells[key] }

// TotalMass returns the sum of all cell densities.
func (g *Grid) TotalMass() float64 {
	var s float64
	for _, v := range g.Cells {
		s += v
	}
	return s
}

// Densities returns all cell densities in unspecified order.
func (g *Grid) Densities() []float64 {
	out := make([]float64, 0, len(g.Cells))
	for _, v := range g.Cells {
		out = append(out, v)
	}
	return out
}

// SortedDensities returns all cell densities in descending order — the
// curve on which the adaptive threshold (paper Fig. 6) is chosen.
func (g *Grid) SortedDensities() []float64 {
	out := g.Densities()
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// Threshold returns a new grid keeping only cells with density ≥ min.
func (g *Grid) Threshold(min float64) *Grid {
	out := New(g.Size)
	for k, v := range g.Cells {
		if v >= min {
			out.Cells[k] = v
		}
	}
	return out
}

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	out := New(g.Size)
	for k, v := range g.Cells {
		out.Cells[k] = v
	}
	return out
}

// SortedKeys returns occupied cell keys in lexicographic order; used to
// make iteration deterministic.
func (g *Grid) SortedKeys() []Key {
	keys := make([]Key, 0, len(g.Cells))
	for k := range g.Cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// TransformDim applies one level of the analysis low-pass wavelet filter
// along dimension j, downsampling that dimension by 2. It is the sparse
// scatter counterpart of wavelet.Approx: each occupied cell contributes to
// at most ⌈len(Lo)/2⌉ output cells, so the cost is O(m·len(Lo)) and the
// full Mᵈ grid is never materialized. Boundary handling is zero extension,
// which is exact here because absent cells really do have density zero.
func TransformDim(g *Grid, j int, b wavelet.Basis) *Grid {
	if j < 0 || j >= g.Dim() {
		panic(fmt.Sprintf("grid: TransformDim dimension %d out of range (grid is %d-D)", j, g.Dim()))
	}
	newSize := append([]int(nil), g.Size...)
	outLen := (g.Size[j] + 1) / 2
	newSize[j] = outLen
	out := New(newSize)
	// Contributions accumulate into a values slice indexed through a
	// slot map keyed by a reused key buffer: the map probe converts the
	// buffer without allocating, so the per-(cell × tap) cost is one
	// lookup plus a slice add — only a distinct output cell pays a key
	// allocation. (The previous key.With per contribution dominated the
	// sequential path's allocation profile.) Accumulation order is
	// unchanged — same cell iteration, same tap loop — so the sums are
	// bit-identical.
	keyBuf := make([]byte, 2*g.Dim())
	// Sized for the common case (downsampling keeps the occupied-cell
	// count near the input's) so accumulation rarely rehashes; the output
	// map is then built at its exact final size.
	slot := make(map[Key]int32, len(g.Cells))
	vals := make([]float64, 0, len(g.Cells))
	for key, v := range g.Cells {
		i := key.Coord(j)
		copy(keyBuf, key)
		for t, h := range b.Lo {
			pos := i + b.Center - t
			if pos < 0 || pos%2 != 0 {
				continue
			}
			k := pos / 2
			if k >= outLen {
				continue
			}
			putCoord(keyBuf, j, k)
			s, ok := slot[Key(keyBuf)]
			if !ok {
				s = int32(len(vals))
				vals = append(vals, 0)
				slot[Key(keyBuf)] = s
			}
			vals[s] += h * v
		}
	}
	out.Cells = make(map[Key]float64, len(slot))
	for k, s := range slot {
		out.Cells[k] = vals[s]
	}
	return out
}

// Transform applies one full decomposition level: the low-pass filter along
// every dimension in turn (the separable d-D DWT of the paper's Alg. 3,
// keeping only the LL…L subband).
func Transform(g *Grid, b wavelet.Basis) *Grid {
	out, _ := transformCapped(g, b, 0)
	return out
}

// transformCapped is Transform with an occupied-cell growth cap. Filters
// longer than two taps scatter each cell into several output cells per
// dimension, so in high dimension the sparse grid can densify exponentially
// (m × 2ᵈ in the worst case); exceeding maxCells aborts with an error
// instead of consuming the machine. maxCells ≤ 0 disables the cap.
func transformCapped(g *Grid, b wavelet.Basis, maxCells int) (*Grid, error) {
	out := g
	for j := 0; j < g.Dim(); j++ {
		out = TransformDim(out, j, b)
		if maxCells > 0 && out.Len() > maxCells {
			return nil, fmt.Errorf(
				"grid: wavelet transform densified the sparse grid to %d cells after dimension %d (cap %d); use the 2-tap haar basis for high-dimensional data",
				out.Len(), j+1, maxCells)
		}
	}
	return out, nil
}

// DefaultTransformCellCap bounds the occupied cells the sparse transform
// may produce before aborting (see transformCapped). It is far above any
// healthy workload — a densifying high-dimensional transform crosses it
// within seconds, a legitimate one never does.
const DefaultTransformCellCap = 1 << 23

// growthCap returns the per-level occupied-cell budget for an input of m
// cells: healthy transforms either shrink the cell count (dense low-d
// grids merge under downsampling) or scatter by at most ⌈L/2⌉ per
// dimension bounded by the output grid size; 32× input with a 2¹⁶ floor
// accommodates every legitimate case while catching exponential
// densification after a couple of dimensions instead of gigabytes later.
func growthCap(m int) int {
	cap := 32 * m
	if cap < 1<<16 {
		cap = 1 << 16
	}
	if cap > DefaultTransformCellCap {
		cap = DefaultTransformCellCap
	}
	return cap
}

// TransformLevels applies levels full decomposition levels and returns the
// approximation grid of each level (level 1 first) — the multi-resolution
// stack the paper's property list advertises. Growth beyond
// DefaultTransformCellCap occupied cells aborts with an error (long filters
// densify sparse high-dimensional grids exponentially; switch to Haar).
func TransformLevels(g *Grid, b wavelet.Basis, levels int) ([]*Grid, error) {
	if levels < 1 {
		return nil, fmt.Errorf("grid: levels must be ≥ 1, got %d", levels)
	}
	out := make([]*Grid, 0, levels)
	cur := g
	for l := 0; l < levels; l++ {
		for j := 0; j < cur.Dim(); j++ {
			if cur.Size[j] < 2 {
				return nil, fmt.Errorf("grid: dimension %d of size %d too small for level %d", j, cur.Size[j], l+1)
			}
		}
		next, err := transformCapped(cur, b, growthCap(cur.Len()))
		if err != nil {
			return nil, err
		}
		cur = next
		out = append(out, cur)
	}
	return out, nil
}

// DropBelow removes cells with density < min in place and returns the
// number of cells removed. The paper's “coefficient denoising” step uses
// this with a small epsilon to discard near-zero wavelet coefficients.
func (g *Grid) DropBelow(min float64) int {
	removed := 0
	for k, v := range g.Cells {
		if v < min {
			delete(g.Cells, k)
			removed++
		}
	}
	return removed
}
