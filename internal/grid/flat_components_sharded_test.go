package grid

import (
	"context"
	"math/rand"
	"testing"
)

// randomCanonicalGrid builds a sparse canonical grid with clumped occupancy
// so components of many shapes and sizes appear.
func randomCanonicalGrid(t *testing.T, d, size, cells int, seed int64) *FlatGrid {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(make([]int, d))
	for j := range g.Size {
		g.Size[j] = size
	}
	coords := make([]int, d)
	for len(g.Cells) < cells {
		// Seed a clump center, then a short random walk from it.
		for j := range coords {
			coords[j] = rng.Intn(size)
		}
		g.Cells[MakeKey(coords)] = 1
		for s := 0; s < 6; s++ {
			j := rng.Intn(d)
			coords[j] += rng.Intn(3) - 1
			if coords[j] < 0 {
				coords[j] = 0
			}
			if coords[j] >= size {
				coords[j] = size - 1
			}
			g.Cells[MakeKey(coords)] = 1
		}
	}
	return FlatFromGrid(g)
}

// TestComponentsFlatShardedMatchesSequential: the range-parallel labeling
// must reproduce ComponentsFlatCtx exactly — labels and component count —
// for both connectivities across dimensions and worker counts.
func TestComponentsFlatShardedMatchesSequential(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		d, size, cells int
		conn           Connectivity
	}{
		{1, 64, 40, Faces},
		{2, 64, 900, Faces},
		{2, 64, 900, Full},
		{3, 32, 1200, Faces},
		{3, 32, 1200, Full},
		{5, 8, 700, Faces},
	} {
		f := randomCanonicalGrid(t, tc.d, tc.size, tc.cells, int64(tc.d*1000+tc.cells))
		want, wantN, err := ComponentsFlatCtx(ctx, f, tc.conn)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 7} {
			got, gotN, err := ComponentsFlatShardedCtx(ctx, f, tc.conn, workers)
			if err != nil {
				t.Fatalf("d=%d conn=%v workers=%d: %v", tc.d, tc.conn, workers, err)
			}
			if gotN != wantN {
				t.Fatalf("d=%d conn=%v workers=%d: %d components, want %d", tc.d, tc.conn, workers, gotN, wantN)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("d=%d conn=%v workers=%d: label[%d] = %d, want %d",
						tc.d, tc.conn, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestComponentsFlatAuto: the dispatcher must fall back to the sequential
// path on non-canonical grids and still produce identical labels.
func TestComponentsFlatAuto(t *testing.T) {
	ctx := context.Background()
	f := randomCanonicalGrid(t, 2, 64, 3000, 5)
	want, wantN, err := ComponentsFlatCtx(ctx, f, Faces)
	if err != nil {
		t.Fatal(err)
	}
	got, gotN, err := ComponentsFlatAutoCtx(ctx, f, Faces, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != wantN {
		t.Fatalf("auto: %d components, want %d", gotN, wantN)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("auto: label[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	// Scramble the order: auto must detect non-canonical and still agree
	// with the sequential labeling of the scrambled grid.
	d := f.Dim()
	swap := func(a, b int) {
		for j := 0; j < d; j++ {
			f.Coords[a*d+j], f.Coords[b*d+j] = f.Coords[b*d+j], f.Coords[a*d+j]
		}
		f.Vals[a], f.Vals[b] = f.Vals[b], f.Vals[a]
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		swap(rng.Intn(f.Len()), rng.Intn(f.Len()))
	}
	want, wantN, err = ComponentsFlatCtx(ctx, f, Faces)
	if err != nil {
		t.Fatal(err)
	}
	got, gotN, err = ComponentsFlatAutoCtx(ctx, f, Faces, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != wantN {
		t.Fatalf("scrambled auto: %d components, want %d", gotN, wantN)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scrambled auto: label[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
