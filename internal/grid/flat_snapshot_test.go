package grid

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// tombstonedGrid returns a canonical 2-D grid whose middle cell is a
// tombstone (mass 0), as left behind by a session's signed-mass removal
// between a Remove and the next sweep.
func tombstonedGrid() *FlatGrid {
	f := NewFlat([]int{8, 8}, 4)
	f.Append([]uint16{1, 2}, 3)
	f.Append([]uint16{2, 5}, 0) // tombstone
	f.Append([]uint16{4, 1}, 1)
	f.Append([]uint16{7, 7}, 2)
	return f
}

// TestSnapshotSweepsTombstonesOnWrite: a snapshot taken between a removal
// and the next sweep (the grid still holds a zero-mass tombstone) must
// round-trip — WriteSnapshot sweeps the tombstone, and ReadSnapshot yields
// exactly the live cells.
func TestSnapshotSweepsTombstonesOnWrite(t *testing.T) {
	f := tombstonedGrid()
	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot on tombstoned grid: %v", err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot of tombstone-swept snapshot: %v", err)
	}
	want := f.Clone()
	want.Compact()
	if got.Len() != want.Len() {
		t.Fatalf("restored %d cells, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if cmpCoords(got.CellCoords(i), want.CellCoords(i)) != 0 || got.Vals[i] != want.Vals[i] {
			t.Fatalf("cell %d: got %v=%v, want %v=%v",
				i, got.CellCoords(i), got.Vals[i], want.CellCoords(i), want.Vals[i])
		}
	}
}

// TestSnapshotNegativeMassSwept: over-cancelled cells (mass < 0) are
// tombstones too and must be swept, not serialized.
func TestSnapshotNegativeMassSwept(t *testing.T) {
	f := NewFlat([]int{4, 4}, 2)
	f.Append([]uint16{0, 1}, 2)
	f.Append([]uint16{3, 3}, -1)
	var buf bytes.Buffer
	if err := f.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Vals[0] != 2 {
		t.Fatalf("got %d cells (vals %v), want the single live cell", got.Len(), got.Vals)
	}
}

// TestSnapshotRejectsNonFiniteMass: NaN/Inf masses are corruption, not
// tombstones — WriteSnapshot reports them instead of writing a stream
// ReadSnapshot would reject.
func TestSnapshotRejectsNonFiniteMass(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		f := NewFlat([]int{4}, 1)
		f.Append([]uint16{1}, v)
		if err := f.WriteSnapshot(&bytes.Buffer{}); !errors.Is(err, ErrUnserializableGrid) {
			t.Fatalf("mass %v: got %v, want ErrUnserializableGrid", v, err)
		}
	}
}

// snapshotHeader assembles an adversarial snapshot header: magic, dim,
// sizes, and a declared cell count, with no cell data behind it.
func snapshotHeader(sizes []uint32, cells uint64) []byte {
	var buf bytes.Buffer
	buf.Write(snapshotMagic[:])
	binary.Write(&buf, binary.LittleEndian, uint32(len(sizes)))
	binary.Write(&buf, binary.LittleEndian, sizes)
	binary.Write(&buf, binary.LittleEndian, cells)
	return buf.Bytes()
}

// TestSnapshotAdversarialCellCounts: headers declaring huge cell counts must
// fail on the missing data without a giant up-front allocation — including
// counts crafted so that a conversion to int (or the product cells*dim)
// would truncate or wrap on 32-bit platforms and bypass the bounded-chunk
// guard. The bounds math must therefore stay in uint64.
func TestSnapshotAdversarialCellCounts(t *testing.T) {
	max4 := []uint32{0x10000, 0x10000, 0x10000, 0x10000} // volume cap 2^40
	cases := []struct {
		name  string
		sizes []uint32
		cells uint64
	}{
		// int32(cells) is negative; int(cells)*4 wraps on 32-bit.
		{"int32-truncation", max4, 1<<31 + 1},
		// int(cells)*d overflows 32-bit int while int(cells) stays positive.
		{"product-wrap", max4, 1 << 30},
		// Largest count the volume check admits.
		{"volume-cap", max4, 1 << 40},
		// Declared count exceeding the grid volume is rejected outright.
		{"over-volume", []uint32{4, 4}, 17},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadSnapshot(bytes.NewReader(snapshotHeader(tc.sizes, tc.cells))); err == nil {
				t.Fatal("adversarial header must not restore")
			}
		})
	}
}

// FuzzReadSnapshot: arbitrary bytes must never panic or provoke unbounded
// allocation, and any stream that does restore must re-serialize and
// restore again to the same grid.
func FuzzReadSnapshot(f *testing.F) {
	g := NewFlat([]int{8, 8}, 2)
	g.Append([]uint16{1, 2}, 2)
	g.Append([]uint16{3, 0}, 1)
	var seed bytes.Buffer
	if err := g.WriteSnapshot(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(snapshotHeader([]uint32{0x10000, 0x10000, 0x10000, 0x10000}, 1<<31+1))
	f.Add([]byte("AWG1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := restored.WriteSnapshot(&buf); err != nil {
			t.Fatalf("restored grid failed to re-serialize: %v", err)
		}
		again, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("re-serialized snapshot failed to restore: %v", err)
		}
		if again.Len() != restored.Len() {
			t.Fatalf("round-trip changed cell count: %d → %d", restored.Len(), again.Len())
		}
	})
}
