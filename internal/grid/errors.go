package grid

import "errors"

// ErrInvalidInput tags failures caused by the caller's points or effective
// configuration — non-finite coordinates, a grid too small for the requested
// decomposition depth, a transform densified past the growth cap, a
// connectivity that does not support the data's dimensionality. Serving
// layers use errors.Is(err, ErrInvalidInput) to separate these (the client
// can fix them by changing the data or the session configuration) from
// internal faults. ErrNoPoints is its own sentinel and is not tagged.
var ErrInvalidInput = errors.New("grid: invalid input")

// invalidInputError wraps an error so errors.Is(err, ErrInvalidInput) holds
// without altering its message or its own wrap chain.
type invalidInputError struct{ err error }

func (e invalidInputError) Error() string        { return e.err.Error() }
func (e invalidInputError) Unwrap() error        { return e.err }
func (e invalidInputError) Is(target error) bool { return target == ErrInvalidInput }

// invalidInput tags err as input-shaped; nil stays nil.
func invalidInput(err error) error {
	if err == nil {
		return nil
	}
	return invalidInputError{err}
}

// InvalidInput is the exported form of the input-shaped tag, for higher
// layers (e.g. core's session mutation validation) whose failures are the
// caller's to fix and must classify as ErrInvalidInput, not as internal
// faults.
func InvalidInput(err error) error { return invalidInput(err) }
