package grid

import (
	"context"
	"errors"
	"fmt"
)

// Cooperative cancellation for the flat engine. Every parallel stage —
// bounding-box scan, sharded quantization, line-sweep transform, incremental
// merge, connected components, assignment — has a ctx-taking variant that
// checks ctx.Err() at its shard boundaries (and, inside long single-shard
// loops, every ctxCheckStride iterations) and unwinds without publishing
// partial results. The non-ctx entry points delegate with
// context.Background(), whose Err is a constant nil — so the hot path pays
// one predictable-branch nil check per shard, nothing more.
//
// A cancelled stage never mutates its inputs beyond what the non-ctx path
// already documents (the transform permutes its input grid's cell order in
// place; callers restore canonical order on any error, cancellation
// included), so a caller that sees ErrCanceled can simply retry.

// ErrCanceled tags computation abandoned because the caller's context was
// canceled (client disconnect, explicit CancelFunc). It wraps the original
// context error, so errors.Is matches both ErrCanceled and context.Canceled.
// Re-exported as the adawave facade's taxonomy root of the same name.
var ErrCanceled = errors.New("adawave: computation canceled")

// ErrDeadlineExceeded tags computation abandoned because the caller's
// context deadline expired. It wraps the original context error, so
// errors.Is matches both ErrDeadlineExceeded and context.DeadlineExceeded.
var ErrDeadlineExceeded = errors.New("adawave: deadline exceeded")

// ctxCheckStride is how many loop iterations a long single-shard loop runs
// between ctx.Err() polls: rare enough to vanish in the arithmetic, frequent
// enough to bound cancellation latency to microseconds.
const ctxCheckStride = 1 << 16

// CtxErr translates ctx's state into the exported taxonomy: nil while ctx is
// live, an ErrDeadlineExceeded-tagged error after its deadline, an
// ErrCanceled-tagged error after a cancel. The context's own error stays in
// the wrap chain.
func CtxErr(ctx context.Context) error {
	err := ctx.Err()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	default:
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
}
