package grid

import (
	"context"
	"fmt"

	"adawave/internal/wavelet"
)

// parallelCellCutoff is the occupied-cell count below which the transform
// and quantizer run single-threaded: under it, goroutine fan-out costs more
// than the sweep itself.
const parallelCellCutoff = 2048

// TransformDimFlat is the flat-engine counterpart of TransformDim: one
// level of the analysis low-pass filter along dimension j, downsampling
// that dimension by 2. Instead of rebuilding a map, it radix-sorts the
// cells so dimension j varies fastest, then sweeps each grid line with an
// epoch-stamped accumulator — every output cell is written once, in order,
// with no hashing and no per-cell allocation. Lines are data-independent,
// so they are sharded across workers (≤ 1 runs inline). The input grid's
// cell order is permuted in place; its contents are unchanged. The result
// is sorted with dimension j fastest, so a full dimension sweep ending at
// j = Dim()−1 yields canonical order.
func TransformDimFlat(f *FlatGrid, j int, b wavelet.Basis, workers int) *FlatGrid {
	out, _ := transformDimFlatCtx(context.Background(), f, j, b, workers)
	return out
}

// transformDimFlatCtx is TransformDimFlat with cooperative cancellation:
// each line-sweep shard polls ctx at its boundary and a cancelled transform
// returns no output grid. The input's cell order may already be permuted by
// the radix sort when the cancel lands — exactly the non-error contract —
// so callers restore canonical order on any error, as they do on success.
func transformDimFlatCtx(ctx context.Context, f *FlatGrid, j int, b wavelet.Basis, workers int) (*FlatGrid, error) {
	if j < 0 || j >= f.Dim() {
		panic(fmt.Sprintf("grid: TransformDimFlat dimension %d out of range (grid is %d-D)", j, f.Dim()))
	}
	d := f.Dim()
	m := f.Len()
	outLen := (f.Size[j] + 1) / 2
	newSize := append([]int(nil), f.Size...)
	newSize[j] = outLen
	out := &FlatGrid{Size: newSize}
	if m == 0 {
		return out, nil
	}
	// Poll before the radix permute: a request already dead skips the sort.
	if err := CtxErr(ctx); err != nil {
		return nil, err
	}

	s := getFlatScratch()
	f.sortForDim(j, s)

	// Line boundaries: a line is a maximal run of cells sharing every
	// coordinate except dimension j.
	starts := append(s.ints[:0], 0)
	for i := 1; i < m; i++ {
		if !sameLineExcept(f.Coords, d, i-1, i, j) {
			starts = append(starts, int32(i))
		}
	}
	starts = append(starts, int32(m))
	s.ints = starts
	nLines := len(starts) - 1

	if workers <= 1 || m < parallelCellCutoff || nLines < 2 {
		est := m + m*(len(b.Lo)/2)
		out.Coords = make([]uint16, 0, est*d)
		out.Vals = make([]float64, 0, est)
		out.Coords, out.Vals = sweepLines(ctx, f, j, b, starts, 0, nLines, outLen, s, out.Coords, out.Vals)
		putFlatScratch(s)
		if err := CtxErr(ctx); err != nil {
			return nil, err
		}
		return out, nil
	}

	// Partition lines into worker ranges of roughly equal cell counts; each
	// worker sweeps its lines into pooled buffers which are concatenated in
	// line order, so the result is identical for every worker count.
	bounds := balanceLines(starts, workers)
	type chunk struct {
		s      *flatScratch
		coords []uint16
		vals   []float64
	}
	chunks := make([]chunk, len(bounds)-1)
	// One shard per balanced line range (maxShards == n forces chunk 1), so
	// the sweep draws from the shared pool when the request carries one.
	ParallelRangesCtx(ctx, len(chunks), len(chunks), func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			if ctx.Err() != nil {
				return
			}
			ws := getFlatScratch()
			c, v := sweepLines(ctx, f, j, b, starts, bounds[w], bounds[w+1], outLen, ws, ws.outCoords[:0], ws.outVals[:0])
			chunks[w] = chunk{s: ws, coords: c, vals: v}
		}
	})
	if err := CtxErr(ctx); err != nil {
		for _, c := range chunks {
			if c.s != nil {
				c.s.outCoords, c.s.outVals = c.coords, c.vals
				putFlatScratch(c.s)
			}
		}
		putFlatScratch(s)
		return nil, err
	}
	total := 0
	for _, c := range chunks {
		total += len(c.vals)
	}
	out.Coords = make([]uint16, 0, total*d)
	out.Vals = make([]float64, 0, total)
	for _, c := range chunks {
		out.Coords = append(out.Coords, c.coords...)
		out.Vals = append(out.Vals, c.vals...)
		c.s.outCoords, c.s.outVals = c.coords, c.vals
		putFlatScratch(c.s)
	}
	putFlatScratch(s)
	return out, nil
}

// sortForDim reorders cells so dimension j varies fastest and the remaining
// dimensions are lexicographic (dimension 0 most significant) — the order
// in which cells of one grid line are contiguous and ascending in j.
func (f *FlatGrid) sortForDim(j int, s *flatScratch) {
	d := f.Dim()
	if f.Len() < 2 {
		return
	}
	passes := make([]int, 0, d)
	passes = append(passes, j)
	for p := d - 1; p >= 0; p-- {
		if p != j {
			passes = append(passes, p)
		}
	}
	f.Coords, f.Vals, _ = radixSortCells(f.Coords, f.Vals, nil, d, f.Size, passes, s)
}

// sameLineExcept reports whether cells a and b agree on every coordinate
// except dimension j.
func sameLineExcept(coords []uint16, d, a, b, j int) bool {
	ca, cb := coords[a*d:(a+1)*d], coords[b*d:(b+1)*d]
	for p := 0; p < d; p++ {
		if p != j && ca[p] != cb[p] {
			return false
		}
	}
	return true
}

// balanceLines splits the lines described by starts into ≤ workers
// contiguous ranges of roughly equal total cell count. It returns the range
// boundaries as line indices (first element 0, last nLines).
func balanceLines(starts []int32, workers int) []int {
	nLines := len(starts) - 1
	m := int(starts[nLines])
	if workers > nLines {
		workers = nLines
	}
	bounds := make([]int, 1, workers+1)
	target := (m + workers - 1) / workers
	cells := 0
	for li := 0; li < nLines; li++ {
		cells += int(starts[li+1] - starts[li])
		if cells >= target && len(bounds) < workers {
			bounds = append(bounds, li+1)
			cells = 0
		}
	}
	return append(bounds, nLines)
}

// sweepLines applies the low-pass filter to lines [lo, hi), appending the
// output cells (ascending in the transformed dimension, lines in input
// order) to outCoords/outVals. Contributions to one output cell are
// accumulated in ascending input order, so the result is deterministic and
// independent of how lines are distributed across workers. Output cells
// whose accumulated value is zero are kept, matching the map engine (which
// stores them until coefficient denoising drops them).
func sweepLines(ctx context.Context, f *FlatGrid, j int, b wavelet.Basis, starts []int32, lo, hi, outLen int, s *flatScratch, outCoords []uint16, outVals []float64) ([]uint16, []float64) {
	d := f.Dim()
	taps := b.Lo
	center := b.Center
	s.ensureAcc(outLen)
	touched := s.touched
	for li := lo; li < hi; li++ {
		// Cancellation poll every 1024 lines: the partial output is
		// discarded by the caller, which reports CtxErr.
		if (li-lo)%1024 == 1023 && ctx.Err() != nil {
			break
		}
		start, end := int(starts[li]), int(starts[li+1])
		cur := s.nextEpoch()
		touched = touched[:0]
		for i := start; i < end; i++ {
			ci := int(f.Coords[i*d+j])
			v := f.Vals[i]
			for t, h := range taps {
				pos := ci + center - t
				if pos < 0 || pos&1 != 0 {
					continue
				}
				k := pos >> 1
				if k >= outLen {
					continue
				}
				if s.epoch[k] != cur {
					s.epoch[k] = cur
					s.acc[k] = 0
					touched = append(touched, int32(k))
				}
				s.acc[k] += h * v
			}
		}
		// Inputs ascend in j, so touched is nearly sorted: insertion sort.
		for a := 1; a < len(touched); a++ {
			x := touched[a]
			p := a - 1
			for p >= 0 && touched[p] > x {
				touched[p+1] = touched[p]
				p--
			}
			touched[p+1] = x
		}
		line := f.Coords[start*d : start*d+d]
		for _, k := range touched {
			outCoords = append(outCoords, line...)
			outCoords[len(outCoords)-d+j] = uint16(k)
			outVals = append(outVals, s.acc[k])
		}
	}
	s.touched = touched
	return outCoords, outVals
}

// TransformFlat applies one full decomposition level (the low-pass filter
// along every dimension in turn), leaving the result in canonical order.
func TransformFlat(f *FlatGrid, b wavelet.Basis, workers int) *FlatGrid {
	out, _ := transformCappedFlat(context.Background(), f, b, 0, workers)
	return out
}

// TransformFlatCtx is TransformFlat with cooperative cancellation between
// (and within) the per-dimension sweeps. On cancellation the input grid's
// cell order may be permuted, exactly like any other transform error;
// callers restore canonical order before reusing it.
func TransformFlatCtx(ctx context.Context, f *FlatGrid, b wavelet.Basis, workers int) (*FlatGrid, error) {
	return transformCappedFlat(ctx, f, b, 0, workers)
}

// transformCappedFlat is TransformFlat with the same occupied-cell growth
// cap (and error wording) as the map engine's transformCapped.
func transformCappedFlat(ctx context.Context, f *FlatGrid, b wavelet.Basis, maxCells, workers int) (*FlatGrid, error) {
	out := f
	for j := 0; j < f.Dim(); j++ {
		next, err := transformDimFlatCtx(ctx, out, j, b, workers)
		if err != nil {
			return nil, err
		}
		out = next
		if maxCells > 0 && out.Len() > maxCells {
			return nil, invalidInput(fmt.Errorf(
				"grid: wavelet transform densified the sparse grid to %d cells after dimension %d (cap %d); use the 2-tap haar basis for high-dimensional data",
				out.Len(), j+1, maxCells))
		}
	}
	return out, nil
}

// TransformLevelsFlat mirrors TransformLevels on the flat representation:
// `levels` full decomposition levels, returning the approximation grid of
// each level (level 1 first), with the same growth caps and errors. The
// input grid's cell order is permuted (see TransformDimFlat); every
// returned level is in canonical order — deeper levels transform a clone,
// so earlier returned grids are never re-sorted out from under the caller.
func TransformLevelsFlat(f *FlatGrid, b wavelet.Basis, levels, workers int) ([]*FlatGrid, error) {
	return TransformLevelsFlatCtx(context.Background(), f, b, levels, workers)
}

// TransformLevelsFlatCtx is TransformLevelsFlat with cooperative
// cancellation. A cancelled chain returns no levels; the input grid's cell
// order may be permuted (like any transform error), so callers restore
// canonical order before reusing it.
func TransformLevelsFlatCtx(ctx context.Context, f *FlatGrid, b wavelet.Basis, levels, workers int) ([]*FlatGrid, error) {
	if levels < 1 {
		return nil, fmt.Errorf("grid: levels must be ≥ 1, got %d", levels)
	}
	out := make([]*FlatGrid, 0, levels)
	cur := f
	for l := 0; l < levels; l++ {
		for j := 0; j < cur.Dim(); j++ {
			if cur.Size[j] < 2 {
				return nil, invalidInput(fmt.Errorf("grid: dimension %d of size %d too small for level %d", j, cur.Size[j], l+1))
			}
		}
		if l > 0 {
			cur = cur.Clone()
		}
		next, err := transformCappedFlat(ctx, cur, b, growthCap(cur.Len()), workers)
		if err != nil {
			return nil, err
		}
		cur = next
		out = append(out, cur)
	}
	return out, nil
}
