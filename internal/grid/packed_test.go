package grid

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"
)

// randomCanonicalGrid builds a canonical-order grid of n distinct random
// cells. With prob intMass a cell's mass is a small positive integer count
// (the common post-quantization shape); otherwise an arbitrary float.
func randomPackedGrid(rng *rand.Rand, n, d, scale int, intMass float64) *FlatGrid {
	size := make([]int, d)
	vol := 1
	for j := range size {
		size[j] = scale
		if vol < 1<<30 {
			vol *= scale
		}
	}
	// Asking for more distinct cells than half the grid volume would make
	// rejection sampling crawl (or never finish); clamp.
	if n > vol/2 {
		n = vol / 2
	}
	if n < 1 {
		n = 1
	}
	seen := map[string]bool{}
	g := NewFlat(size, n)
	coords := make([][]uint16, 0, n)
	for len(coords) < n {
		c := make([]uint16, d)
		for j := range c {
			c[j] = uint16(rng.Intn(scale))
		}
		k := string(keyBytes(c))
		if seen[k] {
			continue
		}
		seen[k] = true
		coords = append(coords, c)
	}
	sortCoords(coords)
	for _, c := range coords {
		var mass float64
		if rng.Float64() < intMass {
			mass = float64(1 + rng.Intn(1000))
		} else {
			mass = rng.NormFloat64() * 1e6
			if mass == 0 {
				mass = 0.5
			}
		}
		g.Append(c, mass)
	}
	return g
}

func keyBytes(c []uint16) []byte {
	b := make([]byte, 2*len(c))
	for j, v := range c {
		b[2*j], b[2*j+1] = byte(v>>8), byte(v)
	}
	return b
}

func sortCoords(cs [][]uint16) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cmpCoords(cs[j], cs[j-1]) < 0; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// TestPackedRoundTrip packs random grids across dimensions, sizes (within
// one block and spanning several), and mass shapes, and checks the packed
// form reproduces every cell bit for bit through UnpackInto, the cursor,
// MassAt and Find — and that integer-mass grids actually compress below
// the flat 2·d+8 bytes per cell.
func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 40; iter++ {
		d := 1 + rng.Intn(4)
		n := 1 + rng.Intn(3*packedBlockCells)
		scale := 8 << rng.Intn(5)
		if maxCells := 1; true {
			for j := 0; j < d; j++ {
				maxCells *= scale
			}
			if n > maxCells/2 {
				n = maxCells / 2
			}
		}
		if n == 0 {
			n = 1
		}
		intMass := 1.0
		if iter%3 == 1 {
			intMass = 0.5
		}
		f := randomPackedGrid(rng, n, d, scale, intMass)
		p := PackFlat(f)
		if p.Len() != f.Len() || p.Dim() != f.Dim() {
			t.Fatalf("iter %d: packed %d cells dim %d, want %d dim %d", iter, p.Len(), p.Dim(), f.Len(), f.Dim())
		}
		sameGrid(t, f, p.Unpack(), "unpack")
		cur := p.Cursor()
		for i := 0; i < f.Len(); i++ {
			if !cur.Next() {
				t.Fatalf("iter %d: cursor exhausted at %d", iter, i)
			}
			if cmpCoords(cur.Coords(), f.CellCoords(i)) != 0 {
				t.Fatalf("iter %d: cursor cell %d coords %v, want %v", iter, i, cur.Coords(), f.CellCoords(i))
			}
			if math.Float64bits(cur.Mass()) != math.Float64bits(f.Vals[i]) {
				t.Fatalf("iter %d: cursor cell %d mass %v, want %v", iter, i, cur.Mass(), f.Vals[i])
			}
		}
		if cur.Next() {
			t.Fatalf("iter %d: cursor past the end", iter)
		}
		for _, i := range []int{0, f.Len() / 2, f.Len() - 1} {
			if got := p.MassAt(i); math.Float64bits(got) != math.Float64bits(f.Vals[i]) {
				t.Fatalf("iter %d: MassAt(%d) = %v, want %v", iter, i, got, f.Vals[i])
			}
			if got := p.Find(f.CellCoords(i)); got != i {
				t.Fatalf("iter %d: Find(cell %d) = %d", iter, i, got)
			}
		}
		if tm, want := p.TotalMass(), f.TotalMass(); math.Abs(tm-want) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Fatalf("iter %d: total mass %v, want %v", iter, tm, want)
		}
		if intMass == 1.0 {
			flat := int64(f.Len()) * int64(2*d+8)
			if p.Bytes() >= flat {
				t.Fatalf("iter %d: packed %d bytes not below flat %d (n=%d d=%d scale=%d)", iter, p.Bytes(), flat, n, d, scale)
			}
		}
	}
}

// TestPackedFindMissing checks Find on absent cells and empty grids.
func TestPackedFindMissing(t *testing.T) {
	empty := PackFlat(NewFlat([]int{8, 8}, 0))
	if got := empty.Find([]uint16{1, 1}); got != -1 {
		t.Fatalf("empty Find = %d", got)
	}
	g := NewFlat([]int{8, 8}, 3)
	g.Append([]uint16{1, 1}, 1)
	g.Append([]uint16{4, 0}, 2)
	g.Append([]uint16{4, 7}, 3)
	p := PackFlat(g)
	for _, c := range [][]uint16{{0, 0}, {1, 2}, {4, 1}, {7, 7}} {
		if got := p.Find(c); got != -1 {
			t.Fatalf("Find(%v) = %d, want -1", c, got)
		}
	}
}

// TestMergePackedFlatEquivalence checks MergePackedFlatCtx produces the
// same merged cells and remaps as MergeFlatCtx on the flat equivalents,
// including tombstone drops from signed-mass deltas.
func TestMergePackedFlatEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 30; iter++ {
		d := 1 + rng.Intn(3)
		scale := 32
		live := randomPackedGrid(rng, 1+rng.Intn(2*packedBlockCells), d, scale, 1.0)
		delta := randomPackedGrid(rng, 1+rng.Intn(packedBlockCells), d, scale, 1.0)
		// Make some delta masses negative enough to tombstone an
		// overlapping live cell, and some exactly cancelling.
		for j := 0; j < delta.Len(); j++ {
			switch rng.Intn(4) {
			case 0:
				if i := live.Find(delta.CellCoords(j)); i >= 0 {
					delta.Vals[j] = -live.Vals[i]
				}
			case 1:
				delta.Vals[j] = -delta.Vals[j]
			}
		}
		wantMerged, wantLR, wantDR := MergeFlat(live, delta)
		p := PackFlat(live)
		merged, lr, dr, err := MergePackedFlatCtx(context.Background(), p, delta)
		if err != nil {
			t.Fatal(err)
		}
		sameGrid(t, wantMerged, merged.Unpack(), "merged")
		for i := range wantLR {
			if lr[i] != wantLR[i] {
				t.Fatalf("iter %d: liveRemap[%d] = %d, want %d", iter, i, lr[i], wantLR[i])
			}
		}
		for i := range wantDR {
			if dr[i] != wantDR[i] {
				t.Fatalf("iter %d: deltaRemap[%d] = %d, want %d", iter, i, dr[i], wantDR[i])
			}
		}
	}
}

// TestPackedDecMassCompact exercises the in-place decrement and the
// tombstone sweep against the flat equivalent.
func TestPackedDecMassCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := randomPackedGrid(rng, 2*packedBlockCells+17, 2, 128, 1.0)
	p := PackFlat(f)
	for k := 0; k < 5000; k++ {
		i := rng.Intn(f.Len())
		if f.Vals[i] <= 0 {
			continue
		}
		f.Vals[i]--
		if got, want := p.DecMassAt(i), f.Vals[i]; math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("DecMassAt(%d) = %v, want %v", i, got, want)
		}
	}
	wantRemap := f.Compact()
	cp, remap := p.Compact()
	if wantRemap == nil {
		if remap != nil {
			t.Fatal("packed Compact saw tombstones the flat grid did not")
		}
		return
	}
	sameGrid(t, f, cp.Unpack(), "compacted")
	for i := range wantRemap {
		if remap[i] != wantRemap[i] {
			t.Fatalf("remap[%d] = %d, want %d", i, remap[i], wantRemap[i])
		}
	}
	if cp2, r2 := cp.Compact(); r2 != nil || cp2 != cp {
		t.Fatal("second Compact not a no-op")
	}
}

// TestPackedSnapshotRoundTrip writes AWG2 snapshots and restores them
// through the shared ReadSnapshot dispatch, including a tombstoned grid
// (swept on write) and an unserializable one.
func TestPackedSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 10; iter++ {
		intMass := 1.0
		if iter%2 == 1 {
			intMass = 0.5
		}
		f := randomPackedGrid(rng, 1+rng.Intn(2*packedBlockCells), 2, 256, intMass)
		for i := range f.Vals {
			if f.Vals[i] < 0 {
				f.Vals[i] = -f.Vals[i] // snapshots hold live cells only
			}
		}
		p := PackFlat(f)
		var buf bytes.Buffer
		if err := p.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		var flatBuf bytes.Buffer
		if err := f.WriteSnapshot(&flatBuf); err != nil {
			t.Fatal(err)
		}
		if intMass == 1.0 && buf.Len() >= flatBuf.Len() {
			t.Fatalf("iter %d: AWG2 snapshot %d bytes, not below AWG1 %d", iter, buf.Len(), flatBuf.Len())
		}
		got, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}
		sameGrid(t, f, got, "AWG2 round trip")
	}

	// Tombstones are swept on write.
	g := NewFlat([]int{8, 8}, 3)
	g.Append([]uint16{1, 1}, 2)
	g.Append([]uint16{2, 2}, 0)
	g.Append([]uint16{3, 3}, 1)
	var buf bytes.Buffer
	if err := PackFlat(g).WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Vals[0] != 2 || got.Vals[1] != 1 {
		t.Fatalf("tombstone sweep produced %d cells %v", got.Len(), got.Vals)
	}

	// Non-finite masses are rejected, as for AWG1.
	bad := NewFlat([]int{4}, 1)
	bad.Append([]uint16{1}, math.NaN())
	if err := PackFlat(bad).WriteSnapshot(&buf); err == nil {
		t.Fatal("NaN mass serialized")
	}
}

// TestPackedAncestorLabels checks block-parallel ancestor-label assignment
// from the packed base matches the flat implementation at several worker
// counts.
func TestPackedAncestorLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := randomPackedGrid(rng, packedBlockCells+777, 2, 256, 1.0)
	levels := 2
	// Build the kept grid: every distinct ancestor cell, half labelled.
	kept := NewFlat([]int{64, 64}, 0)
	prev := []uint16{0xffff, 0xffff}
	for i := 0; i < base.Len(); i++ {
		c := base.CellCoords(i)
		a := []uint16{c[0] >> uint(levels), c[1] >> uint(levels)}
		if cmpCoords(a, prev) != 0 {
			if kept.Len() == 0 || cmpCoords(kept.CellCoords(kept.Len()-1), a) < 0 {
				kept.Append(a, 1)
			}
			prev = a
		}
	}
	keptLabels := make([]int32, kept.Len())
	for i := range keptLabels {
		if i%2 == 0 {
			keptLabels[i] = int32(i / 2)
		} else {
			keptLabels[i] = -1
		}
	}
	want, err := AncestorLabelsIntoCtx(context.Background(), nil, base, kept, levels, keptLabels, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := PackFlat(base)
	for _, workers := range []int{1, 2, 7} {
		got, err := p.AncestorLabelsCtx(context.Background(), nil, kept, levels, keptLabels, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: label[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}
