package grid

import (
	"fmt"
	"math"
)

// CellCoordsU16 writes the cell coordinates of point p into out (length
// Dim), clamped to the grid exactly like CellCoords.
func (q *Quantizer) CellCoordsU16(p []float64, out []uint16) []uint16 {
	for j := range q.Mins {
		c := int((p[j] - q.Mins[j]) * q.inv[j])
		if c < 0 {
			c = 0
		}
		if c >= q.Scale {
			c = q.Scale - 1
		}
		out[j] = uint16(c)
	}
	return out
}

// QuantizeFlat builds the sparse density grid of points as a FlatGrid in
// canonical order: each worker quantizes a contiguous shard of points,
// radix-sorts and run-length-dedupes its cells, and the per-shard
// accumulators are k-way merged (summing duplicate cells) at the end. Cell
// masses are integer point counts, so the merge is exact and the result is
// identical to Quantize for every worker count.
func (q *Quantizer) QuantizeFlat(points [][]float64, workers int) *FlatGrid {
	d := q.Dim()
	size := make([]int, d)
	for j := range size {
		size[j] = q.Scale
	}
	n := len(points)
	if n == 0 {
		return &FlatGrid{Size: size}
	}
	if workers <= 1 || n < parallelCellCutoff {
		workers = 1
	}
	passes := make([]int, 0, d)
	for p := d - 1; p >= 0; p-- {
		passes = append(passes, p)
	}
	shards := make([]*FlatGrid, workers)
	ParallelRanges(n, workers, func(w, lo, hi int) {
		s := getFlatScratch()
		defer putFlatScratch(s)
		nn := hi - lo
		coords := make([]uint16, nn*d)
		for i := lo; i < hi; i++ {
			q.CellCoordsU16(points[i], coords[(i-lo)*d:(i-lo+1)*d])
		}
		sorted, _ := radixSortCells(coords, nil, d, size, passes, s)
		cells, counts := dedupeRuns(sorted, d)
		shards[w] = &FlatGrid{Size: size, Coords: cells, Vals: counts}
	})
	if workers == 1 {
		return shards[0]
	}
	return mergeSortedShards(shards, size, d)
}

// dedupeRuns collapses equal consecutive coordinate tuples of a sorted cell
// list in place, returning the compacted coords and the run lengths as
// densities.
func dedupeRuns(coords []uint16, d int) ([]uint16, []float64) {
	n := len(coords) / d
	if n == 0 {
		return coords[:0], nil
	}
	vals := make([]float64, 0, n)
	w := 0
	for i := 0; i < n; {
		r := i + 1
		for r < n && cmpCoords(coords[i*d:(i+1)*d], coords[r*d:(r+1)*d]) == 0 {
			r++
		}
		copy(coords[w*d:(w+1)*d], coords[i*d:(i+1)*d])
		vals = append(vals, float64(r-i))
		w++
		i = r
	}
	return coords[:w*d], vals
}

// mergeSortedShards k-way merges canonically sorted shard grids, summing
// the densities of cells present in several shards (shard order, so the
// integer sums are deterministic).
func mergeSortedShards(shards []*FlatGrid, size []int, d int) *FlatGrid {
	total := 0
	live := shards[:0]
	for _, sh := range shards {
		if sh != nil && sh.Len() > 0 {
			total += sh.Len()
			live = append(live, sh)
		}
	}
	out := NewFlat(size, total)
	heads := make([]int, len(live))
	for {
		min := -1
		for si, sh := range live {
			if heads[si] >= sh.Len() {
				continue
			}
			if min < 0 || cmpCoords(sh.CellCoords(heads[si]), live[min].CellCoords(heads[min])) < 0 {
				min = si
			}
		}
		if min < 0 {
			break
		}
		cell := live[min].CellCoords(heads[min])
		var mass float64
		for si, sh := range live {
			if heads[si] < sh.Len() && cmpCoords(sh.CellCoords(heads[si]), cell) == 0 {
				mass += sh.Vals[heads[si]]
				heads[si]++
			}
		}
		out.Append(cell, mass)
	}
	return out
}

// NewQuantizerParallel computes the same quantizer as NewQuantizer with the
// bounding-box scan sharded across workers. Min/max merging is exact, and
// validation errors are reported for the lowest offending point index, so
// the result (and any error) is identical to the sequential constructor.
func NewQuantizerParallel(points [][]float64, scale, workers int) (*Quantizer, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	if scale < 2 {
		return nil, fmt.Errorf("grid: scale must be ≥ 2, got %d", scale)
	}
	if scale > 0xFFFF {
		return nil, fmt.Errorf("grid: scale %d exceeds the 65535 cells/dimension key limit", scale)
	}
	d := len(points[0])
	if d == 0 {
		return nil, fmt.Errorf("grid: zero-dimensional points")
	}
	if workers <= 1 || n < parallelCellCutoff {
		return NewQuantizer(points, scale)
	}
	type shardState struct {
		mins, maxs []float64
		err        error
		errAt      int
	}
	nShards := workers
	states := make([]shardState, nShards)
	ParallelRanges(n, workers, func(w, lo, hi int) {
		st := &states[w]
		st.errAt = -1
		st.mins = append([]float64(nil), points[lo]...)
		st.maxs = append([]float64(nil), points[lo]...)
		for i := lo; i < hi; i++ {
			p := points[i]
			if len(p) != d {
				st.err = fmt.Errorf("grid: inconsistent dimensions %d and %d", d, len(p))
				st.errAt = i
				return
			}
			for j, v := range p {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					st.err = fmt.Errorf("grid: point %d has non-finite coordinate %v in dimension %d", i, v, j)
					st.errAt = i
					return
				}
				if v < st.mins[j] {
					st.mins[j] = v
				}
				if v > st.maxs[j] {
					st.maxs[j] = v
				}
			}
		}
	})
	q := &Quantizer{
		Mins:  append([]float64(nil), points[0]...),
		Maxs:  append([]float64(nil), points[0]...),
		Scale: scale,
	}
	var firstErr error
	firstAt := -1
	for w := range states {
		st := &states[w]
		if st.err != nil && (firstAt < 0 || st.errAt < firstAt) {
			firstErr, firstAt = st.err, st.errAt
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for w := range states {
		st := &states[w]
		if st.mins == nil {
			continue
		}
		for j := 0; j < d; j++ {
			if st.mins[j] < q.Mins[j] {
				q.Mins[j] = st.mins[j]
			}
			if st.maxs[j] > q.Maxs[j] {
				q.Maxs[j] = st.maxs[j]
			}
		}
	}
	q.inv = make([]float64, d)
	for j := range q.inv {
		w := q.Maxs[j] - q.Mins[j]
		if w <= 0 {
			q.inv[j] = 0
			continue
		}
		q.inv[j] = float64(scale) / w
	}
	return q, nil
}
