package grid

import (
	"fmt"
)

// CellCoordsU16 writes the cell coordinates of point p into out (length
// Dim), clamped to the grid exactly like CellCoords.
func (q *Quantizer) CellCoordsU16(p []float64, out []uint16) []uint16 {
	for j := range q.Mins {
		c := int((p[j] - q.Mins[j]) * q.inv[j])
		if c < 0 {
			c = 0
		}
		if c >= q.Scale {
			c = q.Scale - 1
		}
		out[j] = uint16(c)
	}
	return out
}

// QuantizeFlat builds the sparse density grid of points as a FlatGrid in
// canonical order: each worker quantizes a contiguous shard of points,
// radix-sorts and run-length-dedupes its cells, and the per-shard
// accumulators are k-way merged (summing duplicate cells) at the end. Cell
// masses are integer point counts, so the merge is exact and the result is
// identical to Quantize for every worker count.
func (q *Quantizer) QuantizeFlat(points [][]float64, workers int) *FlatGrid {
	d := q.Dim()
	size := make([]int, d)
	for j := range size {
		size[j] = q.Scale
	}
	n := len(points)
	if n == 0 {
		return &FlatGrid{Size: size}
	}
	if workers <= 1 || n < parallelCellCutoff {
		workers = 1
	}
	passes := make([]int, 0, d)
	for p := d - 1; p >= 0; p-- {
		passes = append(passes, p)
	}
	shards := make([]*FlatGrid, workers)
	ParallelRanges(n, workers, func(w, lo, hi int) {
		s := getFlatScratch()
		defer putFlatScratch(s)
		nn := hi - lo
		coords := make([]uint16, nn*d)
		for i := lo; i < hi; i++ {
			q.CellCoordsU16(points[i], coords[(i-lo)*d:(i-lo+1)*d])
		}
		sorted, _, _ := radixSortCells(coords, nil, nil, d, size, passes, s)
		cells, counts := dedupeRuns(sorted, d)
		shards[w] = &FlatGrid{Size: size, Coords: cells, Vals: counts}
	})
	if workers == 1 {
		return shards[0]
	}
	return mergeSortedShards(shards, size, d)
}

// dedupeRuns collapses equal consecutive coordinate tuples of a sorted cell
// list in place, returning the compacted coords and the run lengths as
// densities.
func dedupeRuns(coords []uint16, d int) ([]uint16, []float64) {
	return dedupeRunsIdx(coords, nil, d, nil)
}

// mergeSortedShards k-way merges canonically sorted shard grids, summing
// the densities of cells present in several shards (shard order, so the
// integer sums are deterministic). Nil shards (ranges ParallelRanges never
// produced) are skipped.
func mergeSortedShards(shards []*FlatGrid, size []int, d int) *FlatGrid {
	out, _ := mergeSortedShardsInto(shards, size, d, false)
	return out
}

// NewQuantizerParallel computes the same quantizer as NewQuantizer with the
// bounding-box scan sharded across workers. Min/max merging is exact, and
// validation errors are reported for the lowest offending point index, so
// the result (and any error) is identical to the sequential constructor.
func NewQuantizerParallel(points [][]float64, scale, workers int) (*Quantizer, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	if err := checkScale(scale); err != nil {
		return nil, err
	}
	d := len(points[0])
	if d == 0 {
		return nil, fmt.Errorf("grid: zero-dimensional points")
	}
	if workers <= 1 || n < parallelCellCutoff {
		return NewQuantizer(points, scale)
	}
	states := make([]bboxShard, workers)
	ParallelRanges(n, workers, func(w, lo, hi int) {
		st := &states[w]
		st.init(points[lo])
		for i := lo; i < hi; i++ {
			p := points[i]
			if len(p) != d {
				st.err = fmt.Errorf("grid: inconsistent dimensions %d and %d", d, len(p))
				st.errAt = i
				return
			}
			if !st.scan(i, p) {
				return
			}
		}
	})
	return finishQuantizer(states, scale, d)
}
