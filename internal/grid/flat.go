package grid

import (
	"slices"
	"sync"
)

// FlatGrid is the struct-of-arrays rendering of Grid: packed uint16 cell
// coordinates plus a parallel density slice. Where Grid pays a string hash,
// a map probe and a key allocation per cell per stage, FlatGrid is two flat
// slices that radix-sort in O(m·d) and sweep with sequential memory access —
// the representation the parallel engine (quantize shards, line-sweep
// transform, union-find components) runs on. Cell order is an explicit,
// documented property of each operation rather than map-iteration noise:
// quantization and the full separable transform leave the grid in canonical
// order (lexicographic by dimension 0 first), which Find relies on.
type FlatGrid struct {
	// Size is the number of cells along each dimension.
	Size []int
	// Coords holds the cell coordinates, Dim() values per cell:
	// cell i occupies Coords[i*Dim() : (i+1)*Dim()].
	Coords []uint16
	// Vals holds one density per cell.
	Vals []float64
}

// NewFlat returns an empty flat grid with the given per-dimension sizes and
// room for capacity cells.
func NewFlat(size []int, capacity int) *FlatGrid {
	s := append([]int(nil), size...)
	return &FlatGrid{
		Size:   s,
		Coords: make([]uint16, 0, capacity*len(s)),
		Vals:   make([]float64, 0, capacity),
	}
}

// Dim returns the dimensionality of the grid.
func (f *FlatGrid) Dim() int { return len(f.Size) }

// Len returns the number of stored cells (the paper's m).
func (f *FlatGrid) Len() int { return len(f.Vals) }

// CellCoords returns the coordinate slice of cell i (a view, not a copy).
func (f *FlatGrid) CellCoords(i int) []uint16 {
	d := f.Dim()
	return f.Coords[i*d : (i+1)*d]
}

// Append adds a cell. The caller is responsible for keeping cells unique.
func (f *FlatGrid) Append(coords []uint16, v float64) {
	f.Coords = append(f.Coords, coords...)
	f.Vals = append(f.Vals, v)
}

// TotalMass returns the sum of all cell densities.
func (f *FlatGrid) TotalMass() float64 {
	var s float64
	for _, v := range f.Vals {
		s += v
	}
	return s
}

// SortedDensities returns all cell densities in descending order — the
// curve on which the adaptive threshold (paper Fig. 6) is chosen.
func (f *FlatGrid) SortedDensities() []float64 {
	return f.SortedDensitiesInto(nil)
}

// SortedDensitiesInto is SortedDensities filling buf (whose capacity is
// reused) instead of allocating — the pooled form for callers that sort one
// density curve per level.
func (f *FlatGrid) SortedDensitiesInto(buf []float64) []float64 {
	buf = append(buf[:0], f.Vals...)
	slices.Sort(buf)
	slices.Reverse(buf)
	return buf
}

// DropBelow removes cells with density < min in place, preserving cell
// order, and returns the number of cells removed.
func (f *FlatGrid) DropBelow(min float64) int {
	d := f.Dim()
	w := 0
	for i, v := range f.Vals {
		if v < min {
			continue
		}
		if w != i {
			copy(f.Coords[w*d:(w+1)*d], f.Coords[i*d:(i+1)*d])
			f.Vals[w] = v
		}
		w++
	}
	removed := len(f.Vals) - w
	f.Coords = f.Coords[:w*d]
	f.Vals = f.Vals[:w]
	return removed
}

// Threshold returns a new grid keeping only cells with density ≥ min, in
// the receiver's cell order.
func (f *FlatGrid) Threshold(min float64) *FlatGrid {
	out := NewFlat(f.Size, 0)
	d := f.Dim()
	for i, v := range f.Vals {
		if v >= min {
			out.Coords = append(out.Coords, f.Coords[i*d:(i+1)*d]...)
			out.Vals = append(out.Vals, v)
		}
	}
	return out
}

// Clone returns a deep copy preserving cell order.
func (f *FlatGrid) Clone() *FlatGrid {
	return f.CloneInto(&FlatGrid{})
}

// CloneInto deep-copies f into dst, reusing dst's slice capacity, and
// returns dst — Clone for pooled grids.
func (f *FlatGrid) CloneInto(dst *FlatGrid) *FlatGrid {
	dst.Size = append(dst.Size[:0], f.Size...)
	dst.Coords = append(dst.Coords[:0], f.Coords...)
	dst.Vals = append(dst.Vals[:0], f.Vals...)
	return dst
}

// KeyAt returns the map-representation Key of cell i.
func (f *FlatGrid) KeyAt(i int) Key {
	d := f.Dim()
	buf := make([]byte, 2*d)
	for j, c := range f.CellCoords(i) {
		buf[2*j] = byte(c)
		buf[2*j+1] = byte(c >> 8)
	}
	return Key(buf)
}

// ToGrid converts to the map representation.
func (f *FlatGrid) ToGrid() *Grid {
	g := New(f.Size)
	for i, v := range f.Vals {
		g.Cells[f.KeyAt(i)] = v
	}
	return g
}

// FlatFromGrid converts a map grid to flat form in canonical order.
func FlatFromGrid(g *Grid) *FlatGrid {
	d := g.Dim()
	f := NewFlat(g.Size, g.Len())
	for k, v := range g.Cells {
		for j := 0; j < d; j++ {
			f.Coords = append(f.Coords, uint16(k.Coord(j)))
		}
		f.Vals = append(f.Vals, v)
	}
	f.SortCanonical()
	return f
}

// SortCanonical reorders cells into canonical order: lexicographic by
// coordinate, dimension 0 most significant.
func (f *FlatGrid) SortCanonical() {
	d := f.Dim()
	if f.Len() < 2 || d == 0 {
		return
	}
	s := getFlatScratch()
	defer putFlatScratch(s)
	passes := make([]int, 0, d)
	for p := d - 1; p >= 0; p-- {
		passes = append(passes, p)
	}
	f.Coords, f.Vals, _ = radixSortCells(f.Coords, f.Vals, nil, d, f.Size, passes, s)
}

// Find returns the index of the cell with the given coordinates, or −1.
// The grid must be in canonical order (see SortCanonical); quantization and
// the full separable transform produce canonical grids.
func (f *FlatGrid) Find(coords []uint16) int {
	d := f.Dim()
	n := f.Len()
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmpCoords(f.Coords[mid*d:(mid+1)*d], coords) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n && cmpCoords(f.Coords[lo*d:(lo+1)*d], coords) == 0 {
		return lo
	}
	return -1
}

// cmpCoords compares coordinate tuples in canonical (dimension-0-first
// lexicographic) order.
func cmpCoords(a, b []uint16) int {
	for j := range a {
		if a[j] != b[j] {
			if a[j] < b[j] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// keyByteLess compares coordinate tuples in Key byte order — the order
// Grid.SortedKeys yields (per dimension: low byte, then high byte). The
// flat component labeling numbers components in this order so its labels
// coincide with the map-based BFS labeling cell for cell.
func keyByteLess(a, b []uint16) bool {
	for j := range a {
		al, bl := a[j]&0xFF, b[j]&0xFF
		if al != bl {
			return al < bl
		}
		ah, bh := a[j]>>8, b[j]>>8
		if ah != bh {
			return ah < bh
		}
	}
	return false
}

// flatScratch holds the reusable buffers of the flat engine: radix-sort
// ping-pong arrays, counting-sort buckets, and the epoch-tracked line
// accumulator of the sparse transform. Instances are pooled so repeated
// Cluster calls (and concurrent workers) do not reallocate per pass.
type flatScratch struct {
	coords  []uint16  // radix scatter buffer (m·d)
	vals    []float64 // radix scatter buffer (m)
	idx     []int32   // radix scatter buffer for index payloads (m)
	counts  []int32   // counting-sort buckets (max dimension size)
	ints    []int32   // line-start offsets of the transform sweep
	acc     []float64 // per-line output accumulator (outLen)
	epoch   []uint32  // acc validity stamps, paired with epochN
	epochN  uint32
	touched []int32 // output coordinates hit by the current line
	// outCoords/outVals collect one worker's transform output before
	// concatenation into the result grid.
	outCoords []uint16
	outVals   []float64
}

var flatScratchPool = sync.Pool{New: func() any { return new(flatScratch) }}

func getFlatScratch() *flatScratch  { return flatScratchPool.Get().(*flatScratch) }
func putFlatScratch(s *flatScratch) { flatScratchPool.Put(s) }

// ensureAcc sizes the line accumulator for n output positions, preserving
// epoch stamps when the backing array is reused (stale stamps are always
// strictly below the next epoch, so reuse is safe).
func (s *flatScratch) ensureAcc(n int) {
	if cap(s.acc) < n {
		s.acc = make([]float64, n)
		s.epoch = make([]uint32, n)
		s.epochN = 0
	}
	s.acc = s.acc[:n]
	s.epoch = s.epoch[:n]
}

// nextEpoch advances the accumulator stamp, clearing on wraparound.
func (s *flatScratch) nextEpoch() uint32 {
	s.epochN++
	if s.epochN == 0 {
		for i := range s.epoch {
			s.epoch[i] = 0
		}
		s.epochN = 1
	}
	return s.epochN
}

// growCounts returns a zeroed bucket slice of length n.
func (s *flatScratch) growCounts(n int) []int32 {
	if cap(s.counts) < n {
		s.counts = make([]int32, n)
	}
	c := s.counts[:n]
	for i := range c {
		c[i] = 0
	}
	return c
}

// radixSortCells stable-sorts cells by the given key dimensions, least
// significant pass first (LSD radix with one counting sort per pass). It
// returns the sorted coords/vals/idx slices, which may be the scratch
// buffers; the displaced buffers are retained in s for reuse. vals may be
// nil when only coordinates are being sorted, and idx is an optional int32
// payload (quantization threads point indices through the sort so each
// point's cell index falls out of the dedupe pass for free).
func radixSortCells(coords []uint16, vals []float64, idx []int32, d int, sizes []int, passes []int, s *flatScratch) ([]uint16, []float64, []int32) {
	n := len(coords) / d
	if n < 2 {
		return coords, vals, idx
	}
	if cap(s.coords) < n*d {
		s.coords = make([]uint16, n*d)
	}
	srcC, dstC := coords, s.coords[:n*d]
	var srcV, dstV []float64
	if vals != nil {
		if cap(s.vals) < n {
			s.vals = make([]float64, n)
		}
		srcV, dstV = vals, s.vals[:n]
	}
	var srcI, dstI []int32
	if idx != nil {
		if cap(s.idx) < n {
			s.idx = make([]int32, n)
		}
		srcI, dstI = idx, s.idx[:n]
	}
	for _, p := range passes {
		if sizes[p] <= 1 {
			continue
		}
		counts := s.growCounts(sizes[p])
		for i := 0; i < n; i++ {
			counts[srcC[i*d+p]]++
		}
		var sum int32
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			key := srcC[i*d+p]
			pos := int(counts[key])
			counts[key]++
			copy(dstC[pos*d:(pos+1)*d], srcC[i*d:(i+1)*d])
			if vals != nil {
				dstV[pos] = srcV[i]
			}
			if idx != nil {
				dstI[pos] = srcI[i]
			}
		}
		srcC, dstC = dstC, srcC
		srcV, dstV = dstV, srcV
		srcI, dstI = dstI, srcI
	}
	s.coords = dstC
	if vals != nil {
		s.vals = dstV
	}
	if idx != nil {
		s.idx = dstI
	}
	return srcC, srcV, srcI
}
